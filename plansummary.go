package ontario

import (
	"fmt"
	"strings"
	"time"

	"ontario/internal/core"
)

// Estimate is the cost model's prediction for one plan node, present when
// the cost optimizer planned it.
type Estimate struct {
	// Cardinality is the estimated number of output bindings.
	Cardinality float64 `json:"cardinality"`
	// Messages is the estimated number of simulated network messages
	// needed to produce the node's output.
	Messages float64 `json:"messages"`
	// Cost is the scalar optimization objective in millisecond-
	// equivalents: message latency under the active network profile plus
	// transferred-binding volume.
	Cost float64 `json:"cost"`
}

// PlanSummary is one node of a query execution plan, rendered into public
// value types: a tree of operators with their sources, details and cost
// estimates. It is a snapshot for inspection; Explain renders the same
// tree as text.
type PlanSummary struct {
	// Operator is the node kind: "service", "merged-service", "join",
	// "left-join", "filter" or "union".
	Operator string `json:"operator"`
	// Source is the answering source ID of service nodes.
	Source string `json:"source,omitempty"`
	// Detail describes the node: the stars of a service ("?d:Disease(2
	// patterns)"), the operator of a join ("symmetric-hash"), the filter
	// expressions of a filter node.
	Detail string `json:"detail,omitempty"`
	// JoinVars are the join variables of join nodes.
	JoinVars []string `json:"join_vars,omitempty"`
	// Estimate is the cost model's prediction, nil when the plan was not
	// produced by the cost optimizer.
	Estimate *Estimate `json:"estimate,omitempty"`
	// Actual is the node's observed runtime behaviour, populated by
	// Results.Analyze (EXPLAIN ANALYZE); nil on a plain Explain.
	Actual *Actual `json:"actual,omitempty"`
	// Remote holds the spans of the federated requests a service node
	// issued to a remote source, populated by Results.Analyze.
	Remote   []RemoteSpan   `json:"remote,omitempty"`
	Children []*PlanSummary `json:"children,omitempty"`
}

// String renders the plan tree.
func (s *PlanSummary) String() string {
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *PlanSummary) render(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.Operator)
	if s.Source != "" {
		fmt.Fprintf(b, "[%s]", s.Source)
	}
	if s.Detail != "" {
		b.WriteString(" " + s.Detail)
	}
	if len(s.JoinVars) > 0 {
		fmt.Fprintf(b, " on %v", s.JoinVars)
	}
	if s.Estimate != nil {
		fmt.Fprintf(b, "  {est card=%.0f msgs=%.0f cost=%.1f}",
			s.Estimate.Cardinality, s.Estimate.Messages, s.Estimate.Cost)
	}
	if s.Actual != nil {
		fmt.Fprintf(b, "  {act card=%d in=%d wall=%s blocked=%s/%s",
			s.Actual.BindingsOut, s.Actual.BindingsIn,
			s.Actual.Wall.Round(time.Microsecond),
			s.Actual.BlockedRecv.Round(time.Microsecond),
			s.Actual.BlockedSend.Round(time.Microsecond))
		if s.Actual.HashEntries > 0 {
			fmt.Fprintf(b, " hash=%d", s.Actual.HashEntries)
		}
		if s.Actual.BlocksIssued > 0 {
			fmt.Fprintf(b, " blocks=%d", s.Actual.BlocksIssued)
		}
		b.WriteByte('}')
	}
	b.WriteByte('\n')
	for _, sp := range s.Remote {
		sp.render(b, depth+1)
	}
	for _, c := range s.Children {
		c.render(b, depth+1)
	}
}

// summarize renders an internal plan tree into public value types.
func summarize(n core.PlanNode) *PlanSummary {
	switch v := n.(type) {
	case *core.ServiceNode:
		s := &PlanSummary{Operator: "service", Source: v.SourceID, Estimate: estimate(v.Est)}
		if v.Merged {
			s.Operator = "merged-service"
		}
		var parts []string
		for _, star := range v.Req.Stars {
			parts = append(parts, fmt.Sprintf("?%s:%s(%d patterns)",
				star.SubjectVar, localName(star.Class), len(star.Patterns)))
		}
		if len(v.Req.Filters) > 0 {
			var fs []string
			for _, f := range v.Req.Filters {
				fs = append(fs, f.String())
			}
			parts = append(parts, "pushed-filters{"+strings.Join(fs, "; ")+"}")
		}
		s.Detail = strings.Join(parts, " ")
		return s
	case *core.JoinNode:
		return &PlanSummary{
			Operator: "join",
			Detail:   v.Op.String(),
			JoinVars: append([]string(nil), v.JoinVars...),
			Estimate: estimate(v.Est),
			Children: []*PlanSummary{summarize(v.L), summarize(v.R)},
		}
	case *core.LeftJoinNode:
		s := &PlanSummary{
			Operator: "left-join",
			Children: []*PlanSummary{summarize(v.L), summarize(v.R)},
		}
		if len(v.Filters) > 0 {
			var fs []string
			for _, f := range v.Filters {
				fs = append(fs, f.String())
			}
			s.Detail = "filters{" + strings.Join(fs, "; ") + "}"
		}
		return s
	case *core.FilterNode:
		var fs []string
		for _, f := range v.Exprs {
			fs = append(fs, f.String())
		}
		return &PlanSummary{
			Operator: "filter",
			Detail:   strings.Join(fs, "; "),
			Children: []*PlanSummary{summarize(v.Child)},
		}
	case *core.UnionNode:
		s := &PlanSummary{Operator: "union"}
		for _, c := range v.Children {
			s.Children = append(s.Children, summarize(c))
		}
		return s
	default:
		return &PlanSummary{Operator: fmt.Sprintf("%T", n)}
	}
}

func estimate(e *core.Estimate) *Estimate {
	if e == nil {
		return nil
	}
	return &Estimate{Cardinality: e.Card, Messages: e.Msgs, Cost: e.Cost}
}

func localName(iri string) string {
	if i := strings.LastIndexAny(iri, "/#"); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}
