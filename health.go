package ontario

import (
	"time"

	"ontario/internal/wrapper"
	"ontario/lake"
)

// Resilience is the engine's policy for talking to live remote sources
// (SPARQL endpoints and SQL databases): per-request timeouts, bounded
// retries with exponential backoff, and a per-source circuit breaker. The
// zero value means all defaults; a zero field means that field's default;
// a negative field disables the mechanism (no timeout, no retries, no
// breaker).
type Resilience struct {
	// Timeout bounds each individual attempt (default 10s; negative
	// disables the per-attempt deadline).
	Timeout time.Duration
	// MaxRetries is the number of re-attempts after a failed request
	// (default 3; negative means fail on the first error).
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts: base<<attempt capped at max, jittered (defaults 50ms and
	// 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold is the consecutive-failure streak that opens a
	// source's circuit breaker (default 5; negative disables the
	// breaker). BreakerCooldown is how long an open breaker rejects
	// requests before allowing a half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed fixes the backoff jitter stream (default 1).
	Seed int64
}

// WithResilience installs the policy for the engine's remote sources. The
// policy is engine-wide: all queries share the per-source breakers and
// health accounting, so one query's failures protect the next.
func WithResilience(r Resilience) EngineOption {
	return func(e *Engine) {
		e.inner.Executor.Health = wrapper.NewHealthRegistry(wrapper.ResilienceConfig{
			Timeout:          r.Timeout,
			MaxRetries:       r.MaxRetries,
			RetryBase:        r.RetryBase,
			RetryMax:         r.RetryMax,
			BreakerThreshold: r.BreakerThreshold,
			BreakerCooldown:  r.BreakerCooldown,
			Seed:             r.Seed,
		})
	}
}

// SourceHealth is a snapshot of one remote source's observed behaviour
// under the engine's resilience policy.
type SourceHealth struct {
	// Source is the source ID.
	Source string
	// State is the source's circuit-breaker state: "closed", "open" or
	// "half-open".
	State string
	// Requests counts attempts issued (retries included), Failures the
	// failed ones, Retries the re-attempts after a failure.
	Requests int64
	Failures int64
	Retries  int64
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int
	// FailureRate is Failures/Requests.
	FailureRate float64
	// Latency is the moving average of successful request latencies; the
	// cost model prices calls against the source with this measured value
	// (inflated by the failure rate) instead of the static network
	// profile.
	Latency time.Duration
	// LastError is the most recent failure's message, "" when none.
	LastError string
}

// SourceHealth reports the engine's per-source health gauges, sorted by
// source ID. Sources appear after their first request.
func (e *Engine) SourceHealth() []SourceHealth {
	if e.inner.Executor.Health == nil {
		return nil
	}
	snap := e.inner.Executor.Health.Snapshot()
	out := make([]SourceHealth, len(snap))
	for i, s := range snap {
		out[i] = SourceHealth{
			Source:              s.Source,
			State:               s.State.String(),
			Requests:            s.Requests,
			Failures:            s.Failures,
			Retries:             s.Retries,
			ConsecutiveFailures: s.ConsecutiveFailures,
			FailureRate:         s.FailureRate,
			Latency:             s.Latency,
			LastError:           s.LastError,
		}
	}
	return out
}

// Molecules returns the molecule templates of the engine's lake — what an
// ontario-server node advertises on /molecules for peers to federate over
// (see lake.DiscoverMolecules).
func (e *Engine) Molecules() []lake.Molecule { return e.lake.Molecules() }
