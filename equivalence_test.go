package ontario_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"ontario"
	"ontario/internal/bridge"
	"ontario/internal/lslod"
)

// The columnar data plane (dictionary IDs, ColBatch exchange, presence
// bitmaps) must be answer-equivalent to the row-at-a-time reference
// pipeline for every execution configuration: same solution multisets
// across batch sizes, probe parallelism, and plan modes, with OPTIONAL
// unbound columns, ORDER BY over materialized values, and typed literals
// decoded from SQL wrappers all surviving the ID round-trip.

const rdfTypeIRI = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

func buildEquivLake(t *testing.T) *lslod.Lake {
	t.Helper()
	lk, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		t.Fatalf("building LSLOD lake: %v", err)
	}
	return lk
}

func rowExchangeOpt(t *testing.T) ontario.Option {
	t.Helper()
	opt, ok := bridge.RowExchangeOption.(ontario.Option)
	if !ok {
		t.Fatal("bridge.RowExchangeOption is not wired")
	}
	return opt
}

// canonRow renders a solution canonically: variables sorted, every term
// field included, so two bindings collide exactly when they are equal.
func canonRow(b ontario.Binding) string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var sb strings.Builder
	for _, v := range vars {
		tm := b[v]
		fmt.Fprintf(&sb, "%s=%d\x1f%s\x1f%s\x1f%s\x1e", v, tm.Kind, tm.Value, tm.Datatype, tm.Lang)
	}
	return sb.String()
}

// runCanon executes the query and returns its solutions both in delivery
// order and as a sorted multiset.
func runCanon(t *testing.T, eng *ontario.Engine, text string, opts ...ontario.Option) (ordered, multiset []string) {
	t.Helper()
	res, err := eng.Query(context.Background(), text, opts...)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer res.Close()
	rows, err := res.Collect()
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	ordered = make([]string, len(rows))
	for i, b := range rows {
		ordered[i] = canonRow(b)
	}
	multiset = append([]string(nil), ordered...)
	sort.Strings(multiset)
	return ordered, multiset
}

func diffMultisets(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: row reference has %d solutions, columnar has %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: multisets differ at sorted position %d:\n  row:      %q\n  columnar: %q", label, i, want[i], got[i])
		}
	}
}

// TestColumnarRowEquivalenceLSLOD sweeps the five LSLOD benchmark queries
// across batch size x probe parallelism x plan mode and requires every
// columnar configuration to reproduce the row reference's multiset. Each
// columnar cell also runs twice on the same engine, so a repeated query —
// the configuration the lake-level response cache memoizes — must return
// the identical multiset.
func TestColumnarRowEquivalenceLSLOD(t *testing.T) {
	lk := buildEquivLake(t)
	rowOpt := rowExchangeOpt(t)
	eng := ontario.New(lk.Lake)

	modes := []struct {
		name string
		opt  ontario.Option
	}{
		{"aware", ontario.WithAwarePlan()},
		{"unaware", ontario.WithUnawarePlan()},
	}
	for _, q := range lslod.Queries() {
		for _, mode := range modes {
			base := []ontario.Option{
				mode.opt,
				ontario.WithNetwork(ontario.NoDelay),
				ontario.WithNetworkScale(0),
				ontario.WithSeed(1),
			}
			_, want := runCanon(t, eng, q.Text, append([]ontario.Option{rowOpt}, base...)...)
			if len(want) == 0 {
				t.Fatalf("%s/%s: row reference returned no solutions", q.ID, mode.name)
			}
			for _, batch := range []int{1, 16, 64, 256} {
				for _, par := range []int{1, 4} {
					label := fmt.Sprintf("%s/%s/batch=%d/par=%d", q.ID, mode.name, batch, par)
					opts := append([]ontario.Option{
						ontario.WithBatchSize(batch),
						ontario.WithProbeParallelism(par),
					}, base...)
					_, got := runCanon(t, eng, q.Text, opts...)
					diffMultisets(t, label, want, got)
					_, again := runCanon(t, eng, q.Text, opts...)
					diffMultisets(t, label+"/repeat", want, again)
				}
			}
		}
	}
}

// TestColumnarEquivalenceOptional exercises OPTIONAL through the presence
// bitmaps: diseases without a possibleDrug link must come back with the
// ?drug column unbound — absent from the binding — identically in both
// exchanges, and the small scale's sparse drug links guarantee both bound
// and unbound rows exist.
func TestColumnarEquivalenceOptional(t *testing.T) {
	lk := buildEquivLake(t)
	rowOpt := rowExchangeOpt(t)
	eng := ontario.New(lk.Lake)

	query := fmt.Sprintf(`
SELECT ?disease ?name ?drug WHERE {
  ?disease <%s> <%s> .
  ?disease <%s> ?name .
  OPTIONAL { ?disease <%s> ?drug }
}`, rdfTypeIRI, lslod.ClassDisease, lslod.PredDiseaseName, lslod.PredPossibleDrug)

	base := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithNetwork(ontario.NoDelay),
		ontario.WithNetworkScale(0),
		ontario.WithSeed(1),
	}
	_, want := runCanon(t, eng, query, append([]ontario.Option{rowOpt}, base...)...)
	bound, unbound := 0, 0
	for _, row := range want {
		if strings.Contains(row, "drug=") {
			bound++
		} else {
			unbound++
		}
	}
	if bound == 0 || unbound == 0 {
		t.Fatalf("OPTIONAL coverage needs both bound and unbound ?drug rows, got bound=%d unbound=%d", bound, unbound)
	}
	for _, batch := range []int{1, 64, 256} {
		for _, par := range []int{1, 4} {
			opts := append([]ontario.Option{
				ontario.WithBatchSize(batch),
				ontario.WithProbeParallelism(par),
			}, base...)
			_, got := runCanon(t, eng, query, opts...)
			diffMultisets(t, fmt.Sprintf("optional/batch=%d/par=%d", batch, par), want, got)
		}
	}
}

// TestColumnarEquivalenceOrderBy checks ORDER BY over late-materialized
// values: sorting happens on terms resolved from dictionary IDs, and the
// disease names are pairwise distinct, so both exchanges must deliver the
// exact same sequence, not just the same multiset.
func TestColumnarEquivalenceOrderBy(t *testing.T) {
	lk := buildEquivLake(t)
	rowOpt := rowExchangeOpt(t)
	eng := ontario.New(lk.Lake)

	query := fmt.Sprintf(`
SELECT ?disease ?name WHERE {
  ?disease <%s> <%s> .
  ?disease <%s> ?name .
} ORDER BY ?name LIMIT 40`, rdfTypeIRI, lslod.ClassDisease, lslod.PredDiseaseName)

	base := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithNetwork(ontario.NoDelay),
		ontario.WithNetworkScale(0),
		ontario.WithSeed(1),
	}
	wantSeq, _ := runCanon(t, eng, query, append([]ontario.Option{rowOpt}, base...)...)
	if len(wantSeq) != 40 {
		t.Fatalf("expected LIMIT 40 solutions, got %d", len(wantSeq))
	}
	for _, batch := range []int{1, 64} {
		gotSeq, _ := runCanon(t, eng, query,
			append([]ontario.Option{ontario.WithBatchSize(batch)}, base...)...)
		if len(gotSeq) != len(wantSeq) {
			t.Fatalf("batch=%d: sequence length %d, want %d", batch, len(gotSeq), len(wantSeq))
		}
		for i := range wantSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Fatalf("batch=%d: ORDER BY sequences diverge at position %d:\n  row:      %q\n  columnar: %q", batch, i, wantSeq[i], gotSeq[i])
			}
		}
	}
}

// TestColumnarEquivalenceTypedLiterals pulls typed literals out of the
// relational Diseasome source (gene lengths are integers, disease degrees
// too) and checks the SQL wrapper's decoded datatypes survive the
// dictionary round-trip bit-for-bit in both exchanges.
func TestColumnarEquivalenceTypedLiterals(t *testing.T) {
	lk := buildEquivLake(t)
	rowOpt := rowExchangeOpt(t)
	eng := ontario.New(lk.Lake)

	query := fmt.Sprintf(`
SELECT ?gene ?len WHERE {
  ?gene <%s> <%s> .
  ?gene <%s> ?len .
}`, rdfTypeIRI, lslod.ClassGene, lslod.PredGeneLength)

	base := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithNetwork(ontario.NoDelay),
		ontario.WithNetworkScale(0),
		ontario.WithSeed(1),
	}
	res, err := eng.Query(context.Background(), query, append([]ontario.Option{rowOpt}, base...)...)
	if err != nil {
		t.Fatalf("row query: %v", err)
	}
	rows, err := res.Collect()
	res.Close()
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no gene length solutions")
	}
	typed := 0
	for _, b := range rows {
		if tm, ok := b["len"]; ok && tm.Kind == ontario.KindLiteral && tm.Datatype != "" {
			typed++
		}
	}
	if typed == 0 {
		t.Fatal("expected typed ?len literals from the SQL wrapper")
	}

	want := make([]string, len(rows))
	for i, b := range rows {
		want[i] = canonRow(b)
	}
	sort.Strings(want)
	for _, batch := range []int{1, 64} {
		_, got := runCanon(t, eng, query,
			append([]ontario.Option{ontario.WithBatchSize(batch)}, base...)...)
		diffMultisets(t, fmt.Sprintf("typed/batch=%d", batch), want, got)
	}
}
