package ontario_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ontario"
	"ontario/internal/core"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
)

func facadeLake(t *testing.T) *lslod.Lake {
	t.Helper()
	lake, err := lslod.BuildLake(lslod.SmallScale(), 11)
	if err != nil {
		t.Fatal(err)
	}
	return lake
}

func TestFacadeQuery(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	res, err := eng.Query(context.Background(), lslod.Queries()[0].Text,
		ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	if len(res.Variables) != 3 {
		t.Errorf("variables = %v", res.Variables)
	}
	if res.Trace == nil || res.Trace.Count() != len(res.Answers) {
		t.Error("trace inconsistent with answers")
	}
	if res.Messages == 0 {
		t.Error("no messages recorded")
	}
	if res.ExecutionTime() <= 0 || res.TimeToFirstAnswer() <= 0 {
		t.Error("timings missing")
	}
	if res.Plan == nil || !res.Plan.Opts.Aware {
		t.Error("plan missing or not aware")
	}
}

func TestFacadeModesAgree(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	ctx := context.Background()
	var counts []int
	for _, opts := range [][]ontario.Option{
		{ontario.WithUnawarePlan()},
		{ontario.WithAwarePlan()},
		{ontario.WithAwarePlan(), ontario.WithNaiveTranslation()},
		{ontario.WithHeuristic2(), ontario.WithNetwork(netsim.Gamma3)},
		{ontario.WithAwarePlan(), ontario.WithJoinOperator(core.JoinNestedLoop)},
		{ontario.WithAwarePlan(), ontario.WithJoinOperator(core.JoinBind)},
	} {
		opts = append(opts, ontario.WithNetworkScale(0), ontario.WithSeed(5))
		res, err := eng.Query(ctx, lslod.Queries()[4].Text, opts...)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(res.Answers))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("mode %d returned %d answers, mode 0 returned %d", i, counts[i], counts[0])
		}
	}
}

func TestFacadeExplain(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	out, err := eng.Explain(lslod.Queries()[1].Text, ontario.WithAwarePlan())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MergedService") {
		t.Errorf("Q2 aware explain missing merged service:\n%s", out)
	}
	if _, err := eng.Explain("not sparql"); err == nil {
		t.Error("bad query accepted by Explain")
	}
}

func TestFacadeErrors(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	ctx := context.Background()
	if _, err := eng.Query(ctx, "SELECT nothing"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := eng.Query(ctx, `SELECT ?s WHERE { ?s <http://unknown/pred> ?o . }`); err == nil {
		t.Error("source-selection error not surfaced")
	}
}

func TestFacadeSimulatedDelayAccounting(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	res, err := eng.Query(context.Background(), lslod.Queries()[2].Text,
		ontario.WithUnawarePlan(), ontario.WithNetwork(netsim.Gamma2), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedDelay == 0 {
		t.Error("Gamma2 run recorded no simulated delay")
	}
	mean := res.SimulatedDelay / 3 / 1e6 // ms per message roughly = delay/messages
	_ = mean
	if res.Messages == 0 {
		t.Error("no messages")
	}
}

// TestFacadeConcurrentQueries drives many simultaneous Query calls with
// mixed configurations over one shared engine; run under -race it is the
// audit that concurrent executions share no mutable state. Every run must
// also report its own (per-execution) message accounting.
func TestFacadeConcurrentQueries(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog, ontario.WithSourceLimit(4))
	ctx := context.Background()

	// Reference counts per query, computed sequentially.
	want := make(map[string]int)
	for _, q := range lslod.Queries() {
		res, err := eng.Query(ctx, q.Text, ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
		if err != nil {
			t.Fatal(err)
		}
		want[q.ID] = len(res.Answers)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := lslod.Queries()[i%len(lslod.Queries())]
			opts := []ontario.Option{ontario.WithNetworkScale(0), ontario.WithNetwork(netsim.Gamma1)}
			switch i % 3 {
			case 0:
				opts = append(opts, ontario.WithAwarePlan())
			case 1:
				opts = append(opts, ontario.WithUnawarePlan())
			default:
				opts = append(opts, ontario.WithAwarePlan(),
					ontario.WithJoinOperator(core.JoinBlockBind), ontario.WithBindBlockSize(8))
			}
			res, err := eng.Query(ctx, q.Text, opts...)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", q.ID, err)
				return
			}
			if len(res.Answers) != want[q.ID] {
				errs <- fmt.Errorf("%s: got %d answers, want %d", q.ID, len(res.Answers), want[q.ID])
			}
			if res.Messages == 0 {
				errs <- fmt.Errorf("%s: no per-execution messages recorded", q.ID)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if lim := eng.SourceLimiter(); lim != nil {
		for _, src := range lim.Sources() {
			if p := lim.Peak(src); p > lim.Limit() {
				t.Errorf("source %s peak in-flight %d exceeds limit %d", src, p, lim.Limit())
			}
		}
	}
}

// TestFacadeSourceLimitBindJoinSameSource is the deadlock regression for
// the per-source limiter: with a limit of 1 and a bind join whose left and
// right services hit the SAME source, the left request's slot must not be
// held hostage to the consumer's read pace (the bind join blocks on the
// right service before draining the left stream). The query must complete
// with the same answers as the unlimited engine.
func TestFacadeSourceLimitBindJoinSameSource(t *testing.T) {
	lake := facadeLake(t)
	q := lslod.Queries()[1].Text // Q2: two stars over the same source (diseasome)
	opts := []ontario.Option{
		ontario.WithUnawarePlan(), // keep the stars separate so the join runs at the engine
		ontario.WithJoinOperator(core.JoinBind),
		ontario.WithBindBlockSize(1), // strictly sequential bind join
		ontario.WithNetworkScale(0),
	}

	ref, err := ontario.New(lake.Catalog).Query(context.Background(), q, opts...)
	if err != nil {
		t.Fatal(err)
	}

	eng := ontario.New(lake.Catalog, ontario.WithSourceLimit(1))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := eng.Query(ctx, q, opts...)
	if err != nil {
		t.Fatalf("limited engine failed (deadlock would surface as deadline exceeded): %v", err)
	}
	if len(res.Answers) != len(ref.Answers) {
		t.Errorf("limited engine returned %d answers, want %d", len(res.Answers), len(ref.Answers))
	}
}

// TestFacadeQueryStream checks the streaming API: answers must be
// consumable incrementally and cancelling the context must close the
// answer channel without draining the query.
func TestFacadeQueryStream(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)

	run, err := eng.QueryStream(context.Background(), lslod.Queries()[0].Text,
		ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range run.Answers() {
		n++
	}
	if n == 0 {
		t.Fatal("no streamed answers")
	}
	if run.Messages() == 0 {
		t.Error("no messages recorded")
	}
	if len(run.SourceMessages()) == 0 {
		t.Error("no per-source message accounting")
	}

	ctx, cancel := context.WithCancel(context.Background())
	run, err = eng.QueryStream(ctx, lslod.Queries()[2].Text,
		ontario.WithUnawarePlan(), ontario.WithNetwork(netsim.Gamma3), ontario.WithNetworkScale(1))
	if err != nil {
		t.Fatal(err)
	}
	<-run.Answers() // first answer arrived
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-run.Answers():
			if !ok {
				return // channel closed after cancellation: plan torn down
			}
		case <-deadline:
			t.Fatal("answer channel still open 5s after cancellation")
		}
	}
}

func TestFacadeBlockBindJoinOptions(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	ctx := context.Background()
	q := lslod.Queries()[2].Text // Q3 has an engine-level join

	ref, err := eng.Query(ctx, q, ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := eng.Query(ctx, q, ontario.WithAwarePlan(), ontario.WithNetworkScale(0),
		ontario.WithJoinOperator(core.JoinBind), ontario.WithBindBlockSize(1))
	if err != nil {
		t.Fatal(err)
	}
	blk, err := eng.Query(ctx, q, ontario.WithAwarePlan(), ontario.WithNetworkScale(0),
		ontario.WithJoinOperator(core.JoinBlockBind),
		ontario.WithBindBlockSize(16), ontario.WithBindConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Answers) != len(ref.Answers) || len(seq.Answers) != len(ref.Answers) {
		t.Fatalf("answer counts differ: ref %d, bind %d, block-bind %d",
			len(ref.Answers), len(seq.Answers), len(blk.Answers))
	}
	if !strings.Contains(blk.Plan.Explain(), "block-bind") {
		t.Errorf("block-bind plan not selected:\n%s", blk.Plan.Explain())
	}
	if blk.Messages >= seq.Messages {
		t.Errorf("block bind join should use fewer messages: block %d vs sequential %d",
			blk.Messages, seq.Messages)
	}
}
