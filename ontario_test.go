package ontario_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ontario"
	"ontario/internal/lslod"
)

func facadeLake(t *testing.T) *lslod.Lake {
	t.Helper()
	lake, err := lslod.BuildLake(lslod.SmallScale(), 11)
	if err != nil {
		t.Fatal(err)
	}
	return lake
}

func TestFacadeQuery(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	res, err := eng.Query(context.Background(), lslod.Queries()[0].Text,
		ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	answers, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	if len(res.Vars()) != 3 {
		t.Errorf("variables = %v", res.Vars())
	}
	st := res.Stats()
	if st.Answers != len(answers) {
		t.Errorf("stats report %d answers, collected %d", st.Answers, len(answers))
	}
	if st.Messages == 0 {
		t.Error("no messages recorded")
	}
	if st.Duration <= 0 || st.TimeToFirstAnswer <= 0 {
		t.Error("timings missing")
	}
	if res.Plan() == nil || res.Plan().Operator == "" {
		t.Error("plan summary missing")
	}
}

func TestFacadeModesAgree(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	ctx := context.Background()
	var counts []int
	for _, opts := range [][]ontario.Option{
		{ontario.WithUnawarePlan()},
		{ontario.WithAwarePlan()},
		{ontario.WithAwarePlan(), ontario.WithNaiveTranslation()},
		{ontario.WithHeuristic2(), ontario.WithNetwork(ontario.Gamma3)},
		{ontario.WithAwarePlan(), ontario.WithJoinOperator(ontario.JoinNestedLoop)},
		{ontario.WithAwarePlan(), ontario.WithJoinOperator(ontario.JoinBind)},
	} {
		opts = append(opts, ontario.WithNetworkScale(0), ontario.WithSeed(5))
		res, err := eng.Query(ctx, lslod.Queries()[4].Text, opts...)
		if err != nil {
			t.Fatal(err)
		}
		answers, err := res.Collect()
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(answers))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("mode %d returned %d answers, mode 0 returned %d", i, counts[i], counts[0])
		}
	}
}

func TestFacadeExplain(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	out, err := eng.Explain(lslod.Queries()[1].Text, ontario.WithAwarePlan())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MergedService") {
		t.Errorf("Q2 aware explain missing merged service:\n%s", out)
	}
	if _, err := eng.Explain("not sparql"); err == nil {
		t.Error("bad query accepted by Explain")
	}
	prep, err := eng.Prepare(lslod.Queries()[1].Text, ontario.WithAwarePlan())
	if err != nil {
		t.Fatal(err)
	}
	sum := prep.Summary()
	if sum.Operator != "merged-service" || sum.Source != lslod.DSDiseasome {
		t.Errorf("plan summary = %+v", sum)
	}
	if sum.Estimate == nil || sum.Estimate.Cardinality <= 0 {
		t.Errorf("cost estimate missing from summary: %+v", sum.Estimate)
	}
}

func TestFacadeErrors(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	ctx := context.Background()
	if _, err := eng.Query(ctx, "SELECT nothing"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := eng.Query(ctx, `SELECT ?s WHERE { ?s <http://unknown/pred> ?o . }`); err == nil {
		t.Error("source-selection error not surfaced")
	}
}

func TestFacadeSimulatedDelayAccounting(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	res, err := eng.Query(context.Background(), lslod.Queries()[2].Text,
		ontario.WithUnawarePlan(), ontario.WithNetwork(ontario.Gamma2), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Collect(); err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.SimulatedDelay == 0 {
		t.Error("Gamma2 run recorded no simulated delay")
	}
	if st.Messages == 0 {
		t.Error("no messages")
	}
	if len(st.SourceMessages) == 0 || len(st.SourceDelays) == 0 {
		t.Error("no per-source accounting")
	}
}

// TestFacadeConcurrentQueries drives many simultaneous Query calls with
// mixed configurations over one shared engine; run under -race it is the
// audit that concurrent executions share no mutable state. Every run must
// also report its own (per-execution) message accounting.
func TestFacadeConcurrentQueries(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake, ontario.WithSourceLimit(4))
	ctx := context.Background()

	// Reference counts per query, computed sequentially.
	want := make(map[string]int)
	for _, q := range lslod.Queries() {
		res, err := eng.Query(ctx, q.Text, ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
		if err != nil {
			t.Fatal(err)
		}
		answers, err := res.Collect()
		if err != nil {
			t.Fatal(err)
		}
		want[q.ID] = len(answers)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := lslod.Queries()[i%len(lslod.Queries())]
			opts := []ontario.Option{ontario.WithNetworkScale(0), ontario.WithNetwork(ontario.Gamma1)}
			switch i % 3 {
			case 0:
				opts = append(opts, ontario.WithAwarePlan())
			case 1:
				opts = append(opts, ontario.WithUnawarePlan())
			default:
				opts = append(opts, ontario.WithAwarePlan(),
					ontario.WithJoinOperator(ontario.JoinBlockBind), ontario.WithBindBlockSize(8))
			}
			res, err := eng.Query(ctx, q.Text, opts...)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", q.ID, err)
				return
			}
			answers, err := res.Collect()
			if err != nil {
				errs <- fmt.Errorf("%s: %w", q.ID, err)
				return
			}
			if len(answers) != want[q.ID] {
				errs <- fmt.Errorf("%s: got %d answers, want %d", q.ID, len(answers), want[q.ID])
			}
			if res.Stats().Messages == 0 {
				errs <- fmt.Errorf("%s: no per-execution messages recorded", q.ID)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if lim := eng.SourceLimits(); lim != nil {
		for _, src := range lim.Sources() {
			if p := lim.Peak(src); p > lim.Limit() {
				t.Errorf("source %s peak in-flight %d exceeds limit %d", src, p, lim.Limit())
			}
		}
	}
}

// TestFacadeSourceLimitBindJoinSameSource is the deadlock regression for
// the per-source limiter: with a limit of 1 and a bind join whose left and
// right services hit the SAME source, the left request's slot must not be
// held hostage to the consumer's read pace (the bind join blocks on the
// right service before draining the left stream). The query must complete
// with the same answers as the unlimited engine.
func TestFacadeSourceLimitBindJoinSameSource(t *testing.T) {
	lake := facadeLake(t)
	q := lslod.Queries()[1].Text // Q2: two stars over the same source (diseasome)
	opts := []ontario.Option{
		ontario.WithUnawarePlan(), // keep the stars separate so the join runs at the engine
		ontario.WithJoinOperator(ontario.JoinBind),
		ontario.WithBindBlockSize(1), // strictly sequential bind join
		ontario.WithNetworkScale(0),
	}

	refRes, err := ontario.New(lake.Lake).Query(context.Background(), q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refRes.Collect()
	if err != nil {
		t.Fatal(err)
	}

	eng := ontario.New(lake.Lake, ontario.WithSourceLimit(1))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := eng.Query(ctx, q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := res.Collect()
	if err != nil {
		t.Fatalf("limited engine failed (deadlock would surface as deadline exceeded): %v", err)
	}
	if len(answers) != len(ref) {
		t.Errorf("limited engine returned %d answers, want %d", len(answers), len(ref))
	}
}

// TestFacadeCursor checks the streaming cursor: answers must be consumable
// incrementally, and cancelling the context must terminate iteration with
// the context's error without draining the query.
func TestFacadeCursor(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)

	res, err := eng.Query(context.Background(), lslod.Queries()[0].Text,
		ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for res.Next() {
		if len(res.Binding()) == 0 {
			t.Fatal("empty binding")
		}
		n++
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no streamed answers")
	}
	st := res.Stats()
	if st.Messages == 0 || len(st.SourceMessages) == 0 {
		t.Error("no per-source message accounting")
	}

	ctx, cancel := context.WithCancel(context.Background())
	res, err = eng.Query(ctx, lslod.Queries()[2].Text,
		ontario.WithUnawarePlan(), ontario.WithNetwork(ontario.Gamma3), ontario.WithNetworkScale(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Next() {
		t.Fatalf("no first answer: %v", res.Err())
	}
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for res.Next() {
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cursor still delivering 5s after cancellation")
	}
	if res.Err() != context.Canceled {
		t.Errorf("Err after cancellation = %v, want context.Canceled", res.Err())
	}
}

// TestFacadeCloseEarly checks that closing a cursor mid-iteration tears
// the execution down without reporting an error.
func TestFacadeCloseEarly(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	res, err := eng.Query(context.Background(), lslod.Queries()[2].Text,
		ontario.WithUnawarePlan(), ontario.WithNetwork(ontario.Gamma3), ontario.WithNetworkScale(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Next() {
		t.Fatalf("no first answer: %v", res.Err())
	}
	if err := res.Close(); err != nil {
		t.Fatalf("Close returned %v", err)
	}
	if res.Next() {
		t.Error("Next returned true after Close")
	}
	if res.Err() != nil {
		t.Errorf("Err after Close = %v, want nil", res.Err())
	}
}

func TestFacadeBlockBindJoinOptions(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	ctx := context.Background()
	q := lslod.Queries()[2].Text // Q3 has an engine-level join

	collect := func(opts ...ontario.Option) ([]ontario.Binding, *ontario.Results) {
		res, err := eng.Query(ctx, q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		answers, err := res.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return answers, res
	}
	ref, _ := collect(ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	seq, seqRes := collect(ontario.WithAwarePlan(), ontario.WithNetworkScale(0),
		ontario.WithJoinOperator(ontario.JoinBind), ontario.WithBindBlockSize(1))
	blk, blkRes := collect(ontario.WithAwarePlan(), ontario.WithNetworkScale(0),
		ontario.WithJoinOperator(ontario.JoinBlockBind),
		ontario.WithBindBlockSize(16), ontario.WithBindConcurrency(4))
	if len(blk) != len(ref) || len(seq) != len(ref) {
		t.Fatalf("answer counts differ: ref %d, bind %d, block-bind %d",
			len(ref), len(seq), len(blk))
	}
	if !strings.Contains(blkRes.Plan().String(), "block-bind") {
		t.Errorf("block-bind plan not selected:\n%s", blkRes.Plan())
	}
	if blkRes.Stats().Messages >= seqRes.Stats().Messages {
		t.Errorf("block bind join should use fewer messages: block %d vs sequential %d",
			blkRes.Stats().Messages, seqRes.Stats().Messages)
	}
}
