package ontario_test

import (
	"context"
	"strings"
	"testing"

	"ontario"
	"ontario/internal/core"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
)

func facadeLake(t *testing.T) *lslod.Lake {
	t.Helper()
	lake, err := lslod.BuildLake(lslod.SmallScale(), 11)
	if err != nil {
		t.Fatal(err)
	}
	return lake
}

func TestFacadeQuery(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	res, err := eng.Query(context.Background(), lslod.Queries()[0].Text,
		ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	if len(res.Variables) != 3 {
		t.Errorf("variables = %v", res.Variables)
	}
	if res.Trace == nil || res.Trace.Count() != len(res.Answers) {
		t.Error("trace inconsistent with answers")
	}
	if res.Messages == 0 {
		t.Error("no messages recorded")
	}
	if res.ExecutionTime() <= 0 || res.TimeToFirstAnswer() <= 0 {
		t.Error("timings missing")
	}
	if res.Plan == nil || !res.Plan.Opts.Aware {
		t.Error("plan missing or not aware")
	}
}

func TestFacadeModesAgree(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	ctx := context.Background()
	var counts []int
	for _, opts := range [][]ontario.Option{
		{ontario.WithUnawarePlan()},
		{ontario.WithAwarePlan()},
		{ontario.WithAwarePlan(), ontario.WithNaiveTranslation()},
		{ontario.WithHeuristic2(), ontario.WithNetwork(netsim.Gamma3)},
		{ontario.WithAwarePlan(), ontario.WithJoinOperator(core.JoinNestedLoop)},
		{ontario.WithAwarePlan(), ontario.WithJoinOperator(core.JoinBind)},
	} {
		opts = append(opts, ontario.WithNetworkScale(0), ontario.WithSeed(5))
		res, err := eng.Query(ctx, lslod.Queries()[4].Text, opts...)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(res.Answers))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("mode %d returned %d answers, mode 0 returned %d", i, counts[i], counts[0])
		}
	}
}

func TestFacadeExplain(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	out, err := eng.Explain(lslod.Queries()[1].Text, ontario.WithAwarePlan())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MergedService") {
		t.Errorf("Q2 aware explain missing merged service:\n%s", out)
	}
	if _, err := eng.Explain("not sparql"); err == nil {
		t.Error("bad query accepted by Explain")
	}
}

func TestFacadeErrors(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	ctx := context.Background()
	if _, err := eng.Query(ctx, "SELECT nothing"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := eng.Query(ctx, `SELECT ?s WHERE { ?s <http://unknown/pred> ?o . }`); err == nil {
		t.Error("source-selection error not surfaced")
	}
}

func TestFacadeSimulatedDelayAccounting(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	res, err := eng.Query(context.Background(), lslod.Queries()[2].Text,
		ontario.WithUnawarePlan(), ontario.WithNetwork(netsim.Gamma2), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedDelay == 0 {
		t.Error("Gamma2 run recorded no simulated delay")
	}
	mean := res.SimulatedDelay / 3 / 1e6 // ms per message roughly = delay/messages
	_ = mean
	if res.Messages == 0 {
		t.Error("no messages")
	}
}

func TestFacadeBlockBindJoinOptions(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Catalog)
	ctx := context.Background()
	q := lslod.Queries()[2].Text // Q3 has an engine-level join

	ref, err := eng.Query(ctx, q, ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := eng.Query(ctx, q, ontario.WithAwarePlan(), ontario.WithNetworkScale(0),
		ontario.WithJoinOperator(core.JoinBind), ontario.WithBindBlockSize(1))
	if err != nil {
		t.Fatal(err)
	}
	blk, err := eng.Query(ctx, q, ontario.WithAwarePlan(), ontario.WithNetworkScale(0),
		ontario.WithJoinOperator(core.JoinBlockBind),
		ontario.WithBindBlockSize(16), ontario.WithBindConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Answers) != len(ref.Answers) || len(seq.Answers) != len(ref.Answers) {
		t.Fatalf("answer counts differ: ref %d, bind %d, block-bind %d",
			len(ref.Answers), len(seq.Answers), len(blk.Answers))
	}
	if !strings.Contains(blk.Plan.Explain(), "block-bind") {
		t.Errorf("block-bind plan not selected:\n%s", blk.Plan.Explain())
	}
	if blk.Messages >= seq.Messages {
		t.Errorf("block bind join should use fewer messages: block %d vs sequential %d",
			blk.Messages, seq.Messages)
	}
}
