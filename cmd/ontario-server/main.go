// Command ontario-server runs the federated SPARQL endpoint over the
// synthetic LSLOD lake:
//
//	POST /sparql   SPARQL Protocol-style query endpoint (also GET ?query=,
//	               form-encoded POST); answers stream as
//	               application/sparql-results+json while the executor
//	               produces them. Optional parameters: mode=aware|unaware,
//	               network=nodelay|gamma1|gamma2|gamma3, timeout=<dur>,
//	               optimizer=cost|greedy, explain=1 (render the plan with
//	               cost estimates instead of executing), analyze=1 (append
//	               the EXPLAIN ANALYZE report — per-operator actuals and
//	               remote spans — to the streamed result document).
//	/metrics       Prometheus text-format counters and latency histograms,
//	               including plan-cache hits/misses, per-operator wall
//	               times, and the estimate-vs-actual cardinality error.
//	/healthz       liveness probe with build info, uptime and counters.
//	/debug/queries slow-query log (?threshold=250ms filters).
//	/debug/pprof/  runtime profiling (disable with -pprof=false).
//
// Plans are cached server-side in an LRU keyed by normalized query text
// plus the plan-shaping parameters (-plan-cache bounds it); a repeated
// query skips parsing and planning.
//
// Admission control: at most -max-concurrent queries execute at once; up
// to -queue-depth more wait; beyond that, requests get 503 with a
// Retry-After hint. -source-limit bounds concurrently in-flight wrapper
// requests per source across all queries.
//
// Federation: -federate "id=http://host:port,..." registers peer
// ontario-server nodes as live remote sources. Each peer's molecule
// templates are discovered from its /molecules endpoint and its queries go
// over real HTTP under the resilience policy (-remote-timeout,
// -remote-retries, -breaker-threshold, -breaker-cooldown); this node
// advertises its own templates on /molecules in turn, so nodes can
// federate over each other. Discovery runs in the background after the
// node starts serving: peers are retried with backoff for up to
// -federate-wait and swapped into the running server when they answer, so
// two nodes federating over each other can bootstrap in either order and
// a transient peer outage never prevents a restart. Per-source health
// gauges (breaker state, failure rate, measured latency) are on /metrics.
//
// Cluster: -role selects the node's place in a partitioned scale-out
// deployment (see the README's "Running a cluster"):
//
//   - single (default): the standalone node described above.
//   - worker: owns hash-partition -partition i/N of the lake and executes
//     plan fragments the coordinator ships over the shuffle wire protocol
//     on -cluster-addr; the HTTP endpoint still serves the partition
//     locally (useful for /healthz and /metrics probes).
//   - coordinator: plans queries against the full catalog and distributes
//     execution over the -workers pool; /healthz and /metrics report
//     per-worker health and shuffle traffic.
//   - router: spreads clients over -replicas coordinator/single nodes
//     with plan-cache affinity (rendezvous hashing on normalized query
//     text) under a shared -admission-budget.
//
// Every role shuts down gracefully on SIGINT/SIGTERM: the HTTP listener
// stops accepting, in-flight (and admission-queued) queries get
// -shutdown-grace to drain, and a worker drains its running fragments the
// same way.
//
// Every query gets a trace identity: a W3C traceparent arriving on
// /sparql is adopted (this node becomes a child span of the caller),
// otherwise fresh IDs are assigned. The query ID returns in the
// X-Ontario-Query-Id header, correlates every access-log line, and is
// forwarded to federated peers on each hop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ontario"
	"ontario/internal/bridge"
	"ontario/internal/buildinfo"
	"ontario/internal/cluster"
	"ontario/internal/lslod"
	"ontario/internal/server"
	"ontario/internal/wrapper"
	"ontario/lake"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		small     = flag.Bool("small", false, "use the small data scale")
		seed      = flag.Int64("seed", 1, "data and network seed")
		scalef    = flag.Float64("net-scale", 1.0, "network sleep scale (0 disables sleeping)")
		network   = flag.String("network", "nodelay", "default network profile: nodelay | gamma1 | gamma2 | gamma3")
		mode      = flag.String("mode", "aware", "default plan mode: aware | unaware")
		maxConc   = flag.Int("max-concurrent", 4, "max concurrently executing queries")
		queue     = flag.Int("queue-depth", 16, "max queries waiting for an execution slot (negative disables queueing)")
		srcLimit  = flag.Int("source-limit", 4, "max in-flight wrapper requests per source (0 = unlimited)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-query deadline")
		planCache = flag.Int("plan-cache", 128, "plan cache capacity (negative disables)")
		slowLog   = flag.Int("slow-query-log", 128, "slow-query log capacity for /debug/queries (negative disables)")
		enablePpf = flag.Bool("pprof", true, "mount net/http/pprof under /debug/pprof/")
		logJSON   = flag.Bool("log-json", false, "emit access and server logs as JSON instead of text")

		federate      = flag.String("federate", "", `peer ontario-server nodes as "id=http://host:port,id2=..." (molecules discovered from each peer's /molecules)`)
		federateWait  = flag.Duration("federate-wait", 2*time.Minute, "how long background discovery keeps retrying an unreachable -federate peer before starting without it")
		remoteTimeout = flag.Duration("remote-timeout", 10*time.Second, "per-attempt timeout for remote sources (negative disables)")
		remoteRetries = flag.Int("remote-retries", 3, "retries per remote request (negative disables)")
		breakerThresh = flag.Int("breaker-threshold", 5, "consecutive remote failures that open a source's circuit breaker (negative disables)")
		breakerCool   = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker rejects requests before a half-open probe")

		role          = flag.String("role", "single", "node role: single | coordinator | worker | router")
		clusterAddr   = flag.String("cluster-addr", ":9090", "worker role: TCP listen address for the shuffle wire protocol")
		workers       = flag.String("workers", "", `coordinator role: comma-separated worker shuffle addresses ("host:9090,host2:9090"), in partition order`)
		partition     = flag.String("partition", "", `worker role: this node's hash-partition as "i/N" (0-based, e.g. "0/2")`)
		replicas      = flag.String("replicas", "", `router role: comma-separated replica base URLs ("http://host:8080,...")`)
		admBudget     = flag.Int("admission-budget", 0, "router role: queries in flight across all replicas before 503 (0 = 64 per replica)")
		shutdownGrace = flag.Duration("shutdown-grace", 10*time.Second, "how long SIGINT/SIGTERM lets in-flight queries drain before forcing exit")
	)
	flag.Parse()

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *role == "router" {
		if err := runRouter(ctx, logger, *addr, *replicas, *admBudget, *shutdownGrace); err != nil {
			fail(err)
		}
		return
	}

	profile, err := ontario.ProfileByName(*network)
	if err != nil {
		fail(err)
	}

	scale := lslod.DefaultScale()
	if *small {
		scale = lslod.SmallScale()
	}

	// -federate entries are validated up front (a malformed flag is a
	// config error and fails fast), but the peers themselves are resolved
	// in the background after the server is up: each one's molecule
	// templates come from its live /molecules endpoint, which may not be
	// reachable yet — in particular when two nodes federate over each
	// other, neither can be required to start first.
	type peerSpec struct{ id, base string }
	var peerSpecs []peerSpec
	if *federate != "" {
		if *role != "single" {
			fail(fmt.Errorf("-federate only applies to -role single (put federation peers behind the coordinator's workers, or route over federated singles)"))
		}
		for _, part := range strings.Split(*federate, ",") {
			id, base, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok || id == "" || base == "" {
				fail(fmt.Errorf(`invalid -federate entry %q (want "id=http://host:port")`, part))
			}
			peerSpecs = append(peerSpecs, peerSpec{id: id, base: base})
		}
	}
	type peer struct {
		id, url string
		mols    []lake.Molecule
	}

	engOpts := []ontario.EngineOption{
		ontario.WithResilience(ontario.Resilience{
			Timeout:          *remoteTimeout,
			MaxRetries:       *remoteRetries,
			BreakerThreshold: *breakerThresh,
			BreakerCooldown:  *breakerCool,
		}),
	}
	if *srcLimit > 0 {
		engOpts = append(engOpts, ontario.WithSourceLimit(*srcLimit))
	}

	var workerPart, workerOf int
	if *role == "worker" {
		workerPart, workerOf, err = parsePartition(*partition)
		if err != nil {
			fail(err)
		}
	}

	buildLake := func(peers []peer) (*lslod.Lake, error) {
		l, err := lslod.BuildLakeCustom(scale, *seed, func(b *lake.Builder) {
			for _, p := range peers {
				b.AddSPARQLEndpoint(p.id, p.url, p.mols...)
			}
		})
		if err != nil {
			return nil, err
		}
		if *role == "worker" {
			// The worker owns one hash-partition: the lake is built in
			// full (cheap, synthetic) and thinned in place, so every
			// worker ends up with the same catalog shape over disjoint
			// data.
			if err := cluster.PartitionLake(l.Lake, workerPart, workerOf); err != nil {
				return nil, err
			}
		}
		return l, nil
	}
	buildEngine := func(peers []peer) (*ontario.Engine, error) {
		l, err := buildLake(peers)
		if err != nil {
			return nil, err
		}
		return ontario.New(l.Lake, engOpts...), nil
	}

	logger.Info("building LSLOD lake",
		slog.Bool("small", *small), slog.Int64("seed", *seed), slog.String("role", *role))

	var clusterWorker *cluster.Worker
	var eng *ontario.Engine
	if *role == "worker" {
		l, err := buildLake(nil)
		if err != nil {
			fail(err)
		}
		clusterWorker, err = cluster.NewWorker(l.Lake, cluster.WorkerConfig{
			Partition:     workerPart,
			Of:            workerOf,
			MaxConcurrent: *maxConc,
			Logger:        log.New(os.Stderr, "cluster-worker: ", log.LstdFlags),
		})
		if err != nil {
			fail(err)
		}
		eng = ontario.New(l.Lake, engOpts...)
	} else {
		eng, err = buildEngine(nil)
		if err != nil {
			fail(err)
		}
	}

	defaults := []ontario.Option{
		ontario.WithNetwork(profile),
		ontario.WithNetworkScale(*scalef),
		ontario.WithSeed(*seed),
	}
	switch *mode {
	case "aware":
		defaults = append(defaults, ontario.WithAwarePlan())
	case "unaware":
		defaults = append(defaults, ontario.WithUnawarePlan())
	default:
		fail(fmt.Errorf("unknown mode %q (want aware or unaware)", *mode))
	}

	// Coordinator role: every query executes distributed over the worker
	// pool; /healthz and /metrics report the pool's state.
	var clusterStatus func() []server.WorkerStatus
	switch *role {
	case "coordinator":
		if *workers == "" {
			fail(fmt.Errorf("-role coordinator requires -workers"))
		}
		var addrs []string
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		client, err := cluster.NewClient(addrs, cluster.ClientConfig{
			Resilience: wrapper.ResilienceConfig{
				Timeout:          *remoteTimeout,
				MaxRetries:       *remoteRetries,
				BreakerThreshold: *breakerThresh,
				BreakerCooldown:  *breakerCool,
			},
		})
		if err != nil {
			fail(err)
		}
		defer client.Close()
		opt, ok := bridge.ClusterOption(client).(ontario.Option)
		if !ok {
			fail(fmt.Errorf("cluster option bridge returned an unexpected type"))
		}
		defaults = append(defaults, opt)
		clusterStatus = func() []server.WorkerStatus {
			pctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			return serverWorkerStatus(client.Probe(pctx))
		}
		logger.Info("coordinating over worker pool", slog.Int("workers", len(addrs)))
	case "single", "worker":
	default:
		fail(fmt.Errorf("unknown -role %q (want single, coordinator, worker or router)", *role))
	}

	srv := server.New(eng, server.Config{
		MaxConcurrent:    *maxConc,
		QueueDepth:       *queue,
		QueryTimeout:     *timeout,
		PlanCacheSize:    *planCache,
		SlowQueryLogSize: *slowLog,
		EnablePprof:      *enablePpf,
		Logger:           logger,
		DefaultOptions:   defaults,
		ClusterStatus:    clusterStatus,
	})

	if len(peerSpecs) > 0 {
		// Deferred federation: the node serves its local lake immediately;
		// once the peers answer, the lake is rebuilt with them and swapped
		// into the running server. An unreachable peer is a warning, not a
		// startup failure.
		go func() {
			ctx, cancel := context.WithTimeout(ctx, *federateWait)
			defer cancel()
			var peers []peer
			for _, ps := range peerSpecs {
				mols, err := discoverWithRetry(ctx, ps.base, logger)
				if err != nil {
					logger.Warn("federation: peer unreachable, serving without it",
						slog.String("peer", ps.id), slog.String("base", ps.base),
						slog.Duration("waited", *federateWait), slog.String("error", err.Error()))
					continue
				}
				logger.Info("federating over peer",
					slog.String("peer", ps.id), slog.String("base", ps.base),
					slog.Int("molecules", len(mols)))
				peers = append(peers, peer{id: ps.id, url: strings.TrimRight(ps.base, "/") + "/sparql", mols: mols})
			}
			if len(peers) == 0 {
				return
			}
			feng, err := buildEngine(peers)
			if err != nil {
				logger.Warn("federation: rebuilding the lake with peers failed, serving locally",
					slog.String("error", err.Error()))
				return
			}
			srv.SetEngine(feng)
			logger.Info("federation active",
				slog.Int("registered", len(peers)), slog.Int("configured", len(peerSpecs)))
		}()
	}

	if clusterWorker != nil {
		lis, err := net.Listen("tcp", *clusterAddr)
		if err != nil {
			fail(err)
		}
		logger.Info("worker serving fragments",
			slog.String("cluster_addr", lis.Addr().String()),
			slog.Int("partition", workerPart), slog.Int("of", workerOf))
		go func() {
			if err := clusterWorker.Serve(lis); err != nil {
				logger.Error("worker shuffle listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	version, commit := buildinfo.Info()
	logger.Info("ontario-server listening",
		slog.String("addr", *addr),
		slog.String("role", *role),
		slog.String("version", version),
		slog.String("commit", commit),
		slog.String("mode", *mode),
		slog.String("network", profile.Name),
		slog.Int("max_concurrent", *maxConc),
		slog.Int("queue_depth", *queue),
		slog.Int("source_limit", *srcLimit),
		slog.Duration("timeout", *timeout))
	err = serveHTTP(ctx, logger, *addr, srv, *shutdownGrace)
	if clusterWorker != nil {
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		if werr := clusterWorker.Shutdown(sctx); werr != nil && err == nil {
			err = werr
		}
		cancel()
	}
	if err != nil {
		fail(err)
	}
}

// serveHTTP runs the handler until it fails or ctx is cancelled (SIGINT/
// SIGTERM), then drains gracefully: the listener closes, in-flight and
// admission-queued requests get grace to finish, stragglers are cut off.
func serveHTTP(ctx context.Context, logger *slog.Logger, addr string, h http.Handler, grace time.Duration) error {
	hs := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down", slog.Duration("grace", grace))
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("shutdown complete")
	return nil
}

// runRouter serves the replica router role: no lake, no engine — just
// plan-cache-affinity routing and the shared admission budget.
func runRouter(ctx context.Context, logger *slog.Logger, addr, replicas string, budget int, grace time.Duration) error {
	if replicas == "" {
		return fmt.Errorf("-role router requires -replicas")
	}
	var urls []string
	for _, r := range strings.Split(replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, r)
		}
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{Replicas: urls, Budget: budget})
	if err != nil {
		return err
	}
	version, commit := buildinfo.Info()
	logger.Info("ontario-server routing",
		slog.String("addr", addr),
		slog.String("version", version),
		slog.String("commit", commit),
		slog.Int("replicas", len(urls)))
	return serveHTTP(ctx, logger, addr, rt, grace)
}

// parsePartition parses a "-partition i/N" value.
func parsePartition(s string) (part, of int, err error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf(`-role worker requires -partition "i/N" (e.g. "0/2"), got %q`, s)
	}
	part, err = strconv.Atoi(strings.TrimSpace(i))
	if err == nil {
		of, err = strconv.Atoi(strings.TrimSpace(n))
	}
	if err != nil || part < 0 || of < 1 || part >= of {
		return 0, 0, fmt.Errorf(`invalid -partition %q (want "i/N" with 0 <= i < N)`, s)
	}
	return part, of, nil
}

// serverWorkerStatus mirrors the cluster client's worker view into the
// serving layer's transport-free type.
func serverWorkerStatus(ws []cluster.WorkerStatus) []server.WorkerStatus {
	out := make([]server.WorkerStatus, len(ws))
	for i, w := range ws {
		s := server.WorkerStatus{
			Addr: w.Addr, Up: w.Up, Breaker: w.Breaker, Err: w.Err,
			BatchesIn: w.BatchesIn, BatchesOut: w.BatchesOut,
			BytesIn: w.BytesIn, BytesOut: w.BytesOut,
			DictDeltaBytes: w.DictDeltaBytes,
			RemapEntries:   w.RemapEntries,
			Reconnects:     w.Reconnects,
			Epoch:          w.Epoch,
		}
		if w.Info != nil {
			s.Partition, s.Of = w.Info.Partition, w.Info.Of
			s.Scheme = w.Info.Scheme
			s.ActiveFragments, s.QueuedFragments = w.Info.Active, w.Info.Queued
		}
		out[i] = s
	}
	return out
}

// discoverWithRetry polls the peer's /molecules with exponential backoff
// (1s doubling to 10s, 5s per attempt) until it answers or ctx expires,
// returning the last discovery error on give-up.
func discoverWithRetry(ctx context.Context, base string, logger *slog.Logger) ([]lake.Molecule, error) {
	backoff := time.Second
	for {
		actx, cancel := context.WithTimeout(ctx, 5*time.Second)
		mols, err := lake.DiscoverMolecules(actx, base)
		cancel()
		if err == nil {
			return mols, nil
		}
		logger.Info("federation: discovery retry",
			slog.String("base", strings.TrimRight(base, "/")),
			slog.String("error", err.Error()),
			slog.Duration("backoff", backoff))
		select {
		case <-ctx.Done():
			return nil, err
		case <-time.After(backoff):
		}
		if backoff < 10*time.Second {
			backoff *= 2
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ontario-server:", err)
	os.Exit(1)
}
