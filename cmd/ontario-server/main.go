// Command ontario-server runs the federated SPARQL endpoint over the
// synthetic LSLOD lake:
//
//	POST /sparql   SPARQL Protocol-style query endpoint (also GET ?query=,
//	               form-encoded POST); answers stream as
//	               application/sparql-results+json while the executor
//	               produces them. Optional parameters: mode=aware|unaware,
//	               network=nodelay|gamma1|gamma2|gamma3, timeout=<dur>,
//	               optimizer=cost|greedy, explain=1 (render the plan with
//	               cost estimates instead of executing), analyze=1 (append
//	               the EXPLAIN ANALYZE report — per-operator actuals and
//	               remote spans — to the streamed result document).
//	/metrics       Prometheus text-format counters and latency histograms,
//	               including plan-cache hits/misses, per-operator wall
//	               times, and the estimate-vs-actual cardinality error.
//	/healthz       liveness probe with build info, uptime and counters.
//	/debug/queries slow-query log (?threshold=250ms filters).
//	/debug/pprof/  runtime profiling (disable with -pprof=false).
//
// Plans are cached server-side in an LRU keyed by normalized query text
// plus the plan-shaping parameters (-plan-cache bounds it); a repeated
// query skips parsing and planning.
//
// Admission control: at most -max-concurrent queries execute at once; up
// to -queue-depth more wait; beyond that, requests get 503 with a
// Retry-After hint. -source-limit bounds concurrently in-flight wrapper
// requests per source across all queries.
//
// Federation: -federate "id=http://host:port,..." registers peer
// ontario-server nodes as live remote sources. Each peer's molecule
// templates are discovered from its /molecules endpoint and its queries go
// over real HTTP under the resilience policy (-remote-timeout,
// -remote-retries, -breaker-threshold, -breaker-cooldown); this node
// advertises its own templates on /molecules in turn, so nodes can
// federate over each other. Discovery runs in the background after the
// node starts serving: peers are retried with backoff for up to
// -federate-wait and swapped into the running server when they answer, so
// two nodes federating over each other can bootstrap in either order and
// a transient peer outage never prevents a restart. Per-source health
// gauges (breaker state, failure rate, measured latency) are on /metrics.
//
// Every query gets a trace identity: a W3C traceparent arriving on
// /sparql is adopted (this node becomes a child span of the caller),
// otherwise fresh IDs are assigned. The query ID returns in the
// X-Ontario-Query-Id header, correlates every access-log line, and is
// forwarded to federated peers on each hop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"ontario"
	"ontario/internal/buildinfo"
	"ontario/internal/lslod"
	"ontario/internal/server"
	"ontario/lake"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		small     = flag.Bool("small", false, "use the small data scale")
		seed      = flag.Int64("seed", 1, "data and network seed")
		scalef    = flag.Float64("net-scale", 1.0, "network sleep scale (0 disables sleeping)")
		network   = flag.String("network", "nodelay", "default network profile: nodelay | gamma1 | gamma2 | gamma3")
		mode      = flag.String("mode", "aware", "default plan mode: aware | unaware")
		maxConc   = flag.Int("max-concurrent", 4, "max concurrently executing queries")
		queue     = flag.Int("queue-depth", 16, "max queries waiting for an execution slot (negative disables queueing)")
		srcLimit  = flag.Int("source-limit", 4, "max in-flight wrapper requests per source (0 = unlimited)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-query deadline")
		planCache = flag.Int("plan-cache", 128, "plan cache capacity (negative disables)")
		slowLog   = flag.Int("slow-query-log", 128, "slow-query log capacity for /debug/queries (negative disables)")
		enablePpf = flag.Bool("pprof", true, "mount net/http/pprof under /debug/pprof/")
		logJSON   = flag.Bool("log-json", false, "emit access and server logs as JSON instead of text")

		federate      = flag.String("federate", "", `peer ontario-server nodes as "id=http://host:port,id2=..." (molecules discovered from each peer's /molecules)`)
		federateWait  = flag.Duration("federate-wait", 2*time.Minute, "how long background discovery keeps retrying an unreachable -federate peer before starting without it")
		remoteTimeout = flag.Duration("remote-timeout", 10*time.Second, "per-attempt timeout for remote sources (negative disables)")
		remoteRetries = flag.Int("remote-retries", 3, "retries per remote request (negative disables)")
		breakerThresh = flag.Int("breaker-threshold", 5, "consecutive remote failures that open a source's circuit breaker (negative disables)")
		breakerCool   = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker rejects requests before a half-open probe")
	)
	flag.Parse()

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	profile, err := ontario.ProfileByName(*network)
	if err != nil {
		fail(err)
	}

	scale := lslod.DefaultScale()
	if *small {
		scale = lslod.SmallScale()
	}

	// -federate entries are validated up front (a malformed flag is a
	// config error and fails fast), but the peers themselves are resolved
	// in the background after the server is up: each one's molecule
	// templates come from its live /molecules endpoint, which may not be
	// reachable yet — in particular when two nodes federate over each
	// other, neither can be required to start first.
	type peerSpec struct{ id, base string }
	var peerSpecs []peerSpec
	if *federate != "" {
		for _, part := range strings.Split(*federate, ",") {
			id, base, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok || id == "" || base == "" {
				fail(fmt.Errorf(`invalid -federate entry %q (want "id=http://host:port")`, part))
			}
			peerSpecs = append(peerSpecs, peerSpec{id: id, base: base})
		}
	}
	type peer struct {
		id, url string
		mols    []lake.Molecule
	}

	engOpts := []ontario.EngineOption{
		ontario.WithResilience(ontario.Resilience{
			Timeout:          *remoteTimeout,
			MaxRetries:       *remoteRetries,
			BreakerThreshold: *breakerThresh,
			BreakerCooldown:  *breakerCool,
		}),
	}
	if *srcLimit > 0 {
		engOpts = append(engOpts, ontario.WithSourceLimit(*srcLimit))
	}

	buildEngine := func(peers []peer) (*ontario.Engine, error) {
		l, err := lslod.BuildLakeCustom(scale, *seed, func(b *lake.Builder) {
			for _, p := range peers {
				b.AddSPARQLEndpoint(p.id, p.url, p.mols...)
			}
		})
		if err != nil {
			return nil, err
		}
		return ontario.New(l.Lake, engOpts...), nil
	}

	logger.Info("building LSLOD lake", slog.Bool("small", *small), slog.Int64("seed", *seed))
	eng, err := buildEngine(nil)
	if err != nil {
		fail(err)
	}

	defaults := []ontario.Option{
		ontario.WithNetwork(profile),
		ontario.WithNetworkScale(*scalef),
		ontario.WithSeed(*seed),
	}
	switch *mode {
	case "aware":
		defaults = append(defaults, ontario.WithAwarePlan())
	case "unaware":
		defaults = append(defaults, ontario.WithUnawarePlan())
	default:
		fail(fmt.Errorf("unknown mode %q (want aware or unaware)", *mode))
	}

	srv := server.New(eng, server.Config{
		MaxConcurrent:    *maxConc,
		QueueDepth:       *queue,
		QueryTimeout:     *timeout,
		PlanCacheSize:    *planCache,
		SlowQueryLogSize: *slowLog,
		EnablePprof:      *enablePpf,
		Logger:           logger,
		DefaultOptions:   defaults,
	})

	if len(peerSpecs) > 0 {
		// Deferred federation: the node serves its local lake immediately;
		// once the peers answer, the lake is rebuilt with them and swapped
		// into the running server. An unreachable peer is a warning, not a
		// startup failure.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), *federateWait)
			defer cancel()
			var peers []peer
			for _, ps := range peerSpecs {
				mols, err := discoverWithRetry(ctx, ps.base, logger)
				if err != nil {
					logger.Warn("federation: peer unreachable, serving without it",
						slog.String("peer", ps.id), slog.String("base", ps.base),
						slog.Duration("waited", *federateWait), slog.String("error", err.Error()))
					continue
				}
				logger.Info("federating over peer",
					slog.String("peer", ps.id), slog.String("base", ps.base),
					slog.Int("molecules", len(mols)))
				peers = append(peers, peer{id: ps.id, url: strings.TrimRight(ps.base, "/") + "/sparql", mols: mols})
			}
			if len(peers) == 0 {
				return
			}
			feng, err := buildEngine(peers)
			if err != nil {
				logger.Warn("federation: rebuilding the lake with peers failed, serving locally",
					slog.String("error", err.Error()))
				return
			}
			srv.SetEngine(feng)
			logger.Info("federation active",
				slog.Int("registered", len(peers)), slog.Int("configured", len(peerSpecs)))
		}()
	}

	version, commit := buildinfo.Info()
	logger.Info("ontario-server listening",
		slog.String("addr", *addr),
		slog.String("version", version),
		slog.String("commit", commit),
		slog.String("mode", *mode),
		slog.String("network", profile.Name),
		slog.Int("max_concurrent", *maxConc),
		slog.Int("queue_depth", *queue),
		slog.Int("source_limit", *srcLimit),
		slog.Duration("timeout", *timeout))
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fail(err)
	}
}

// discoverWithRetry polls the peer's /molecules with exponential backoff
// (1s doubling to 10s, 5s per attempt) until it answers or ctx expires,
// returning the last discovery error on give-up.
func discoverWithRetry(ctx context.Context, base string, logger *slog.Logger) ([]lake.Molecule, error) {
	backoff := time.Second
	for {
		actx, cancel := context.WithTimeout(ctx, 5*time.Second)
		mols, err := lake.DiscoverMolecules(actx, base)
		cancel()
		if err == nil {
			return mols, nil
		}
		logger.Info("federation: discovery retry",
			slog.String("base", strings.TrimRight(base, "/")),
			slog.String("error", err.Error()),
			slog.Duration("backoff", backoff))
		select {
		case <-ctx.Done():
			return nil, err
		case <-time.After(backoff):
		}
		if backoff < 10*time.Second {
			backoff *= 2
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ontario-server:", err)
	os.Exit(1)
}
