// Command ontario-server runs the federated SPARQL endpoint over the
// synthetic LSLOD lake:
//
//	POST /sparql   SPARQL Protocol-style query endpoint (also GET ?query=,
//	               form-encoded POST); answers stream as
//	               application/sparql-results+json while the executor
//	               produces them. Optional parameters: mode=aware|unaware,
//	               network=nodelay|gamma1|gamma2|gamma3, timeout=<dur>,
//	               optimizer=cost|greedy, explain=1 (render the plan with
//	               cost estimates instead of executing).
//	/metrics       Prometheus text-format counters and latency histograms,
//	               including plan-cache hits/misses.
//	/healthz       liveness probe.
//
// Plans are cached server-side in an LRU keyed by normalized query text
// plus the plan-shaping parameters (-plan-cache bounds it); a repeated
// query skips parsing and planning.
//
// Admission control: at most -max-concurrent queries execute at once; up
// to -queue-depth more wait; beyond that, requests get 503 with a
// Retry-After hint. -source-limit bounds concurrently in-flight wrapper
// requests per source across all queries.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"ontario"
	"ontario/internal/lslod"
	"ontario/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		small     = flag.Bool("small", false, "use the small data scale")
		seed      = flag.Int64("seed", 1, "data and network seed")
		scalef    = flag.Float64("net-scale", 1.0, "network sleep scale (0 disables sleeping)")
		network   = flag.String("network", "nodelay", "default network profile: nodelay | gamma1 | gamma2 | gamma3")
		mode      = flag.String("mode", "aware", "default plan mode: aware | unaware")
		maxConc   = flag.Int("max-concurrent", 4, "max concurrently executing queries")
		queue     = flag.Int("queue-depth", 16, "max queries waiting for an execution slot (negative disables queueing)")
		srcLimit  = flag.Int("source-limit", 4, "max in-flight wrapper requests per source (0 = unlimited)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-query deadline")
		planCache = flag.Int("plan-cache", 128, "plan cache capacity (negative disables)")
	)
	flag.Parse()

	profile, err := ontario.ProfileByName(*network)
	if err != nil {
		fail(err)
	}

	scale := lslod.DefaultScale()
	if *small {
		scale = lslod.SmallScale()
	}
	log.Printf("building LSLOD lake (small=%v, seed=%d)...", *small, *seed)
	lake, err := lslod.BuildLake(scale, *seed)
	if err != nil {
		fail(err)
	}

	var engOpts []ontario.EngineOption
	if *srcLimit > 0 {
		engOpts = append(engOpts, ontario.WithSourceLimit(*srcLimit))
	}
	eng := ontario.New(lake.Lake, engOpts...)

	defaults := []ontario.Option{
		ontario.WithNetwork(profile),
		ontario.WithNetworkScale(*scalef),
		ontario.WithSeed(*seed),
	}
	switch *mode {
	case "aware":
		defaults = append(defaults, ontario.WithAwarePlan())
	case "unaware":
		defaults = append(defaults, ontario.WithUnawarePlan())
	default:
		fail(fmt.Errorf("unknown mode %q (want aware or unaware)", *mode))
	}

	srv := server.New(eng, server.Config{
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queue,
		QueryTimeout:   *timeout,
		PlanCacheSize:  *planCache,
		DefaultOptions: defaults,
	})

	log.Printf("ontario-server listening on %s (mode=%s network=%s max-concurrent=%d queue-depth=%d source-limit=%d timeout=%s)",
		*addr, *mode, profile.Name, *maxConc, *queue, *srcLimit, *timeout)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ontario-server:", err)
	os.Exit(1)
}
