// Command ontario runs SPARQL queries against the synthetic LSLOD data
// lake, printing answers or the query execution plan.
//
// Usage:
//
//	ontario -query Q3 -mode aware -network gamma2
//	ontario -sparql 'SELECT ?s WHERE { ... }' -explain
//	ontario -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ontario"
	"ontario/internal/lslod"
)

func main() {
	var (
		queryID   = flag.String("query", "", "benchmark query ID (Q1..Q5)")
		sparqlIn  = flag.String("sparql", "", "SPARQL query text (alternative to -query)")
		mode      = flag.String("mode", "aware", "plan mode: aware | unaware | h2")
		network   = flag.String("network", "none", "network profile: none | gamma1 | gamma2 | gamma3")
		explain   = flag.Bool("explain", false, "print the plan instead of executing")
		analyze   = flag.Bool("analyze", false, "execute, then print the plan annotated with per-operator actuals (EXPLAIN ANALYZE)")
		list      = flag.Bool("list", false, "list the benchmark queries and exit")
		mixed     = flag.String("mixed", "", "comma-separated datasets to keep as native RDF")
		scalef    = flag.Float64("net-scale", 1.0, "network sleep scale (0 disables sleeping)")
		seed      = flag.Int64("seed", 1, "data and network random seed")
		small     = flag.Bool("small", false, "use the small data scale")
		limit     = flag.Int("print", 20, "print at most this many answers")
		naive     = flag.Bool("naive-translation", false, "use the naive SPARQL-to-SQL translation")
		optimizer = flag.String("optimizer", "", "join ordering / operator selection: cost | greedy (default: cost for aware plans, greedy for unaware)")
		joinOp    = flag.String("join", "hash", "engine join operator: hash | nested | bind | block-bind (forces the operator for every join)")
		bindBlk   = flag.Int("bind-block", 0, "block bind join: left bindings per multi-seed request (0 = default)")
		bindConc  = flag.Int("bind-concurrency", 0, "block bind join: concurrent in-flight block requests (0 = default)")
		batchSz   = flag.Int("batch", 0, "exchange batch size: bindings per batch in the execution data plane (0 = default 256, 1 = binding-at-a-time)")
		probePar  = flag.Int("probe-par", 0, "symmetric hash join: morsel-parallel probe workers / hash shards (0 = default, 1 = serial)")
		rawSQL    = flag.String("sql", "", "run raw SQL directly against one dataset (requires -dataset)")
		dataset   = flag.String("dataset", "", "dataset for -sql (e.g. diseasome)")
	)
	flag.Parse()

	if *list {
		for _, q := range lslod.Queries() {
			fmt.Printf("%s: %s\n%s\n\n", q.ID, q.Intent, strings.TrimSpace(q.Text))
		}
		return
	}

	if *rawSQL != "" {
		if err := runRawSQL(*rawSQL, *dataset, *small, *seed, *limit); err != nil {
			fmt.Fprintln(os.Stderr, "ontario:", err)
			os.Exit(1)
		}
		return
	}

	queryText := *sparqlIn
	if queryText == "" {
		if *queryID == "" {
			fmt.Fprintln(os.Stderr, "ontario: provide -query Q1..Q5 or -sparql '...' (or -list)")
			os.Exit(2)
		}
		found := false
		for _, q := range lslod.Queries() {
			if strings.EqualFold(q.ID, *queryID) {
				queryText, found = q.Text, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "ontario: unknown query %s\n", *queryID)
			os.Exit(2)
		}
	}

	profile, err := profileByName(*network)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ontario:", err)
		os.Exit(2)
	}

	scale := lslod.DefaultScale()
	if *small {
		scale = lslod.SmallScale()
	}
	var lake *lslod.Lake
	if *mixed != "" {
		lake, err = lslod.BuildMixedLake(scale, *seed, strings.Split(*mixed, ","))
	} else {
		lake, err = lslod.BuildLake(scale, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ontario:", err)
		os.Exit(1)
	}

	opts := []ontario.Option{
		ontario.WithNetwork(profile),
		ontario.WithNetworkScale(*scalef),
		ontario.WithSeed(*seed),
	}
	switch strings.ToLower(*mode) {
	case "aware":
		opts = append(opts, ontario.WithAwarePlan())
	case "unaware":
		opts = append(opts, ontario.WithUnawarePlan())
	case "h2":
		opts = append(opts, ontario.WithAwarePlan(), ontario.WithHeuristic2())
	default:
		fmt.Fprintf(os.Stderr, "ontario: unknown mode %s\n", *mode)
		os.Exit(2)
	}
	if *naive {
		opts = append(opts, ontario.WithNaiveTranslation())
	}
	if *optimizer != "" {
		mode, err := ontario.OptimizerByName(*optimizer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ontario:", err)
			os.Exit(2)
		}
		opts = append(opts, ontario.WithOptimizer(mode))
	}
	op, err := ontario.JoinOperatorByName(*joinOp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ontario:", err)
		os.Exit(2)
	}
	if op != ontario.JoinSymmetricHash {
		opts = append(opts, ontario.WithJoinOperator(op))
	}
	if *bindBlk > 0 {
		opts = append(opts, ontario.WithBindBlockSize(*bindBlk))
	}
	if *bindConc > 0 {
		opts = append(opts, ontario.WithBindConcurrency(*bindConc))
	}
	if *batchSz > 0 {
		opts = append(opts, ontario.WithBatchSize(*batchSz))
	}
	if *probePar > 0 {
		opts = append(opts, ontario.WithProbeParallelism(*probePar))
	}

	eng := ontario.New(lake.Lake)
	if *explain {
		out, err := eng.Explain(queryText, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ontario:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	res, err := eng.Query(context.Background(), queryText, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ontario:", err)
		os.Exit(1)
	}
	defer res.Close()
	vars := res.Vars()
	sort.Strings(vars)
	fmt.Println(strings.Join(vars, "\t"))
	printed, extra := 0, 0
	for res.Next() {
		if printed >= *limit {
			extra++
			continue
		}
		printed++
		b := res.Binding()
		parts := make([]string, len(vars))
		for j, v := range vars {
			parts[j] = b[v].String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	if err := res.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ontario:", err)
		os.Exit(1)
	}
	if extra > 0 {
		fmt.Printf("... (%d more answers)\n", extra)
	}
	st := res.Stats()
	fmt.Printf("\n%d answers in %s (first answer after %s, %d network messages, %s simulated delay)\n",
		st.Answers,
		st.Duration.Round(100*time.Microsecond),
		st.TimeToFirstAnswer.Round(100*time.Microsecond),
		st.Messages, st.SimulatedDelay.Round(100*time.Microsecond))
	if *analyze {
		fmt.Print("\n" + res.Analyze().String())
	}
}

// runRawSQL executes a SQL statement against one dataset's relational
// database and prints the rows and the physical plan — an inspection tool
// for the lake's physical design.
func runRawSQL(stmt, dataset string, small bool, seed int64, limit int) error {
	if dataset == "" {
		return fmt.Errorf("-sql requires -dataset (one of %s)", strings.Join(lslod.Datasets(), ", "))
	}
	scale := lslod.DefaultScale()
	if small {
		scale = lslod.SmallScale()
	}
	lake, err := lslod.BuildLake(scale, seed)
	if err != nil {
		return err
	}
	src := lake.Catalog.Source(dataset)
	if src == nil || src.DB == nil {
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	res, err := src.DB.Query(stmt)
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(res.Columns, "\t"))
	for i, row := range res.Rows {
		if i >= limit {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-limit)
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Printf("\n%d rows\nplan:\n%s", len(res.Rows), res.Plan)
	return nil
}

func profileByName(name string) (ontario.Profile, error) {
	return ontario.ProfileByName(name)
}
