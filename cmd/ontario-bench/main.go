// Command ontario-bench reruns the paper's evaluation against the
// synthetic LSLOD lake:
//
//	-experiment grid   the eight configurations (2 QEP types × 4 networks)
//	                   for Q1–Q5, with the aware/unaware speedup table (E3)
//	-experiment fig2   the Figure-2 answer traces for Q3 (E2); use -csv to
//	                   emit the trace points for plotting
//	-experiment h1     Q2 translation-quality sensitivity (E6)
//	-experiment h2     Q1/Q3 filter-placement comparison (E4/E5)
//	-experiment bind   sequential vs block bind join: requests, messages
//	                   and wall-clock per block size (-bind-block, comma
//	                   separated; -bind-concurrency bounds in-flight blocks)
//	-experiment optimizer
//	                   cost-based join ordering + per-join operator
//	                   selection vs the greedy baseline: messages and
//	                   elapsed time per LSLOD query (aware plans)
//	-experiment serve  serving-layer load test: -serve-clients concurrent
//	                   clients drive the HTTP endpoint (admission control
//	                   -serve-concurrency/-serve-queue, per-source limit
//	                   -serve-source-limit) per network profile, reporting
//	                   throughput, p50/p95 latency, and time-to-first-answer
//	-experiment exchange
//	                   vectorized data plane sweep: the serve workload per
//	                   exchange batch size (-exchange-batches, 1 = the
//	                   binding-at-a-time baseline) × probe parallelism
//	                   (-exchange-par), reporting bindings/sec throughput
//	-experiment columnar
//	                   data-plane ablation: the LSLOD query mix in-process
//	                   under the row-at-a-time reference exchange vs the
//	                   default dictionary-encoded columnar exchange, per
//	                   batch size (-exchange-batches), reporting
//	                   bindings/sec and the columnar/row speedup
//	-experiment cluster
//	                   distributed scale-out: the query mix against a
//	                   coordinator shuffling fragments over N in-process
//	                   partitioned workers, per pool size
//	                   (-cluster-workers), reporting bindings/sec and the
//	                   1→N speedup of the columnar shuffle data plane
//	-experiment all    all of the paper experiments above (serve and
//	                   exchange must be requested explicitly: at
//	                   -net-scale 1 a multi-client load test over the gamma
//	                   profiles takes far longer than the single-query
//	                   experiments)
//
// With -json <dir>, every experiment also writes its results as
// <dir>/BENCH_<experiment>.json so the performance trajectory is recorded
// across code revisions.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ontario/internal/exp"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
)

func main() {
	var (
		which    = flag.String("experiment", "all", "grid | fig2 | h1 | h2 | bind | optimizer | serve | exchange | columnar | cluster | all")
		small    = flag.Bool("small", false, "use the small data scale")
		seed     = flag.Int64("seed", 1, "data and network seed")
		scalef   = flag.Float64("net-scale", 1.0, "network sleep scale (0 disables sleeping, 1 real time)")
		csvOut   = flag.String("csv", "", "write Figure-2 answer traces as CSV to this file")
		jsonDir  = flag.String("json", "", "write experiment results as BENCH_<experiment>.json into this directory")
		bindBlk  = flag.String("bind-block", "8,16,32", "comma-separated block sizes for -experiment bind")
		bindConc = flag.Int("bind-concurrency", 0, "in-flight block requests for -experiment bind (0 = default)")

		serveClients  = flag.Int("serve-clients", 8, "concurrent clients for -experiment serve")
		serveRequests = flag.Int("serve-requests", 40, "total requests for -experiment serve")
		serveConc     = flag.Int("serve-concurrency", 4, "server max concurrently executing queries")
		serveQueue    = flag.Int("serve-queue", 16, "server admission queue depth")
		serveSrcLimit = flag.Int("serve-source-limit", 4, "per-source in-flight request limit (0 = unlimited)")
		serveTimeout  = flag.Duration("serve-timeout", 60*time.Second, "per-query deadline for -experiment serve")

		exchBatches = flag.String("exchange-batches", "1,16,64,256,1024", "comma-separated exchange batch sizes for -experiment exchange")
		exchPar     = flag.String("exchange-par", "1,4", "comma-separated probe parallelism levels for -experiment exchange")
		exchNetwork = flag.String("exchange-network", "none", "network profile for -experiment exchange")

		columnarRepeats = flag.Int("columnar-repeats", 0, "query-mix repetitions per cell for -experiment columnar (0 = default)")

		clusterWorkers = flag.String("cluster-workers", "1,2,3,4", "comma-separated worker pool sizes for -experiment cluster")
		clusterNet     = flag.String("cluster-network", "gamma1", "simulated source-latency profile for -experiment cluster (none disables)")
	)
	flag.Parse()

	scale := lslod.DefaultScale()
	if *small {
		scale = lslod.SmallScale()
	}
	lake, err := lslod.BuildLake(scale, *seed)
	if err != nil {
		fail(err)
	}
	runner := exp.NewRunner(lake)
	runner.NetworkScale = *scalef
	runner.Seed = *seed
	ctx := context.Background()

	run := strings.ToLower(*which)
	doAll := run == "all"

	emitJSON := func(write func(dir string) (string, error)) {
		if *jsonDir == "" {
			return
		}
		path, err := write(*jsonDir)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nresults written to %s\n", path)
	}
	writeJSON := func(experiment string, rows []*exp.Row) {
		emitJSON(func(dir string) (string, error) {
			return exp.WriteRowsJSON(dir, experiment, rows)
		})
	}

	if doAll || run == "grid" {
		header("E3: full configuration grid (2 QEP types x 4 networks x Q1-Q5)")
		rows, err := runner.RunGrid(ctx)
		if err != nil {
			fail(err)
		}
		exp.WriteTable(os.Stdout, rows)
		fmt.Println()
		header("aware vs unaware speedups")
		exp.WriteSpeedups(os.Stdout, exp.Speedups(rows))
		writeJSON("grid", rows)
	}

	if doAll || run == "fig2" {
		header("E2 (Figure 2): answer traces for Q3, both QEP types x 4 networks")
		rows, err := runner.RunFig2(ctx)
		if err != nil {
			fail(err)
		}
		exp.WriteTable(os.Stdout, rows)
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fail(err)
			}
			if err := exp.WriteTraceCSV(f, rows); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("\ntrace points written to %s\n", *csvOut)
		}
		writeJSON("fig2", rows)
	}

	if doAll || run == "h1" {
		header("E6: Heuristic 1 translation sensitivity on Q2 (paper: optimized SQL approx. halves the unaware time)")
		var all []*exp.Row
		for _, net := range []netsim.Profile{netsim.NoDelay, netsim.Gamma2} {
			rows, err := runner.RunH1(ctx, net)
			if err != nil {
				fail(err)
			}
			exp.WriteTable(os.Stdout, rows)
			fmt.Println()
			all = append(all, rows...)
		}
		writeJSON("h1", all)
	}

	if doAll || run == "bind" {
		blocks, err := parseBlockSizes(*bindBlk)
		if err != nil {
			fail(err)
		}
		runner.BindConcurrency = *bindConc
		header("bind joins: sequential (one request per left binding) vs block (one multi-seed request per block)")
		rows, err := runner.RunBindJoin(ctx, netsim.Gamma2, blocks)
		if err != nil {
			fail(err)
		}
		exp.WriteTable(os.Stdout, rows)
		writeJSON("bind", rows)
	}

	if doAll || run == "optimizer" {
		header("optimizer: cost-based ordering + per-join operator selection vs greedy (aware plans, Gamma 2)")
		rows, err := runner.RunOptimizer(ctx, netsim.Gamma2)
		if err != nil {
			fail(err)
		}
		exp.WriteTable(os.Stdout, rows)
		writeJSON("optimizer", rows)
	}

	if doAll || run == "h2" {
		header("E4/E5: Heuristic 2 filter placement on Q1 (engine-level wins on fast nets) and Q3 (source-level wins)")
		rows, err := runner.RunH2(ctx)
		if err != nil {
			fail(err)
		}
		exp.WriteTable(os.Stdout, rows)
		writeJSON("h2", rows)
	}

	if run == "serve" {
		header(fmt.Sprintf("serve: %d clients, %d requests against the HTTP endpoint (C=%d, queue=%d, source-limit=%d)",
			*serveClients, *serveRequests, *serveConc, *serveQueue, *serveSrcLimit))
		var results []*exp.ServeResult
		for _, net := range netsim.Profiles() {
			res, err := runner.RunServe(ctx, exp.ServeConfig{
				Clients:       *serveClients,
				Requests:      *serveRequests,
				MaxConcurrent: *serveConc,
				QueueDepth:    *serveQueue,
				SourceLimit:   *serveSrcLimit,
				Network:       net,
				Timeout:       *serveTimeout,
			})
			if err != nil {
				fail(err)
			}
			results = append(results, res)
		}
		exp.WriteServeTable(os.Stdout, results)
		emitJSON(func(dir string) (string, error) {
			return exp.WriteServeJSON(dir, results)
		})
	}

	if run == "resilience" {
		header("resilience: two federated ontario-server nodes over live HTTP; the orgs backend is healthy, slow, flaky (50% 503s) or down")
		rows, err := exp.RunResilience(ctx, exp.ResilienceExpConfig{})
		if err != nil {
			fail(err)
		}
		exp.WriteResilienceTable(os.Stdout, rows)
		emitJSON(func(dir string) (string, error) {
			return exp.WriteResilienceJSON(dir, rows)
		})
	}

	if run == "exchange" {
		batches, err := parseIntList(*exchBatches, 1)
		if err != nil {
			fail(err)
		}
		pars, err := parseIntList(*exchPar, 1)
		if err != nil {
			fail(err)
		}
		net, err := netsim.ProfileByName(*exchNetwork)
		if err != nil {
			fail(err)
		}
		header(fmt.Sprintf("exchange: batch sizes %v x probe parallelism %v on the serve workload (%d clients, %d requests, %s)",
			batches, pars, *serveClients, *serveRequests, net.Name))
		rows, err := runner.RunExchange(ctx, exp.ExchangeConfig{
			Serve: exp.ServeConfig{
				Clients:       *serveClients,
				Requests:      *serveRequests,
				MaxConcurrent: *serveConc,
				QueueDepth:    *serveQueue,
				SourceLimit:   *serveSrcLimit,
				Network:       net,
				Timeout:       *serveTimeout,
			},
			BatchSizes:  batches,
			Parallelism: pars,
		})
		if err != nil {
			fail(err)
		}
		exp.WriteExchangeTable(os.Stdout, rows)
		emitJSON(func(dir string) (string, error) {
			return exp.WriteExchangeJSON(dir, rows)
		})
	}

	if run == "cluster" {
		counts, err := parseIntList(*clusterWorkers, 1)
		if err != nil {
			fail(err)
		}
		net, err := netsim.ProfileByName(*clusterNet)
		if err != nil {
			fail(err)
		}
		header(fmt.Sprintf("cluster: the query mix distributed over worker pools of %v (%d clients, %d requests per cell, %s x%g)",
			counts, *serveClients, *serveRequests, net.Name, *scalef))
		rows, err := exp.RunCluster(ctx, exp.ClusterExpConfig{
			Scale:        scale,
			Seed:         *seed,
			Workers:      counts,
			Clients:      *serveClients,
			Requests:     *serveRequests,
			Network:      net,
			NetworkScale: *scalef,
			Timeout:      *serveTimeout,
		})
		if err != nil {
			fail(err)
		}
		exp.WriteClusterTable(os.Stdout, rows)
		emitJSON(func(dir string) (string, error) {
			return exp.WriteClusterJSON(dir, rows)
		})
	}

	if run == "columnar" {
		batches, err := parseIntList(*exchBatches, 1)
		if err != nil {
			fail(err)
		}
		net, err := netsim.ProfileByName(*exchNetwork)
		if err != nil {
			fail(err)
		}
		header(fmt.Sprintf("columnar: row vs columnar exchange on the LSLOD query mix, batch sizes %v (%s)",
			batches, net.Name))
		rows, err := runner.RunColumnar(ctx, exp.ColumnarConfig{
			BatchSizes: batches,
			Network:    net,
			Repeats:    *columnarRepeats,
		})
		if err != nil {
			fail(err)
		}
		exp.WriteColumnarTable(os.Stdout, rows)
		emitJSON(func(dir string) (string, error) {
			return exp.WriteColumnarJSON(dir, rows)
		})
	}
}

// parseIntList parses a comma-separated list of integers >= min.
func parseIntList(s string, min int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < min {
			return nil, fmt.Errorf("invalid value %q (want integers >= %d)", part, min)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseBlockSizes(s string) ([]int, error) { return parseIntList(s, 2) }

func header(s string) {
	fmt.Println()
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", len(s)))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ontario-bench:", err)
	os.Exit(1)
}
