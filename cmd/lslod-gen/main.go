// Command lslod-gen generates the synthetic LSLOD data lake and reports
// its physical design: per-dataset tables, row counts, indexes, and the
// index requests denied by the paper's 15% rule. With -export it writes the
// RDF view of each dataset as N-Triples files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ontario/internal/catalog"
	"ontario/internal/lslod"
	"ontario/internal/rdf"
)

func main() {
	var (
		small  = flag.Bool("small", false, "use the small data scale")
		seed   = flag.Int64("seed", 1, "generation seed")
		export = flag.String("export", "", "directory to write per-dataset N-Triples exports")
	)
	flag.Parse()

	scale := lslod.DefaultScale()
	if *small {
		scale = lslod.SmallScale()
	}
	lake, err := lslod.BuildLake(scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lslod-gen:", err)
		os.Exit(1)
	}

	fmt.Println("Synthetic LSLOD Semantic Data Lake")
	fmt.Println(strings.Repeat("=", 60))
	totalRows := 0
	for _, id := range lake.Catalog.SourceIDs() {
		src := lake.Catalog.Source(id)
		fmt.Printf("\n%s (%s)\n", id, src.Model)
		if src.Model != catalog.ModelRelational {
			continue
		}
		for _, tn := range src.DB.TableNames() {
			t := src.DB.Table(tn)
			totalRows += t.RowCount()
			var idx []string
			for _, s := range t.Indexes() {
				idx = append(idx, fmt.Sprintf("%s(%s)", s.Column, s.Kind))
			}
			fmt.Printf("  %-16s %6d rows  pk=%s", tn, t.RowCount(), t.Schema.PrimaryKey)
			if len(idx) > 0 {
				fmt.Printf("  indexes: %s", strings.Join(idx, ", "))
			}
			fmt.Println()
		}
	}
	fmt.Printf("\ntotal rows: %d\n", totalRows)
	fmt.Printf("\nindex requests denied by the 15%% rule:\n")
	for _, d := range lake.DeniedIndexes {
		fmt.Printf("  %s\n", d)
	}

	if *export != "" {
		if err := exportAll(lake, *export); err != nil {
			fmt.Fprintln(os.Stderr, "lslod-gen:", err)
			os.Exit(1)
		}
		fmt.Printf("\nexported N-Triples to %s\n", *export)
	}
}

func exportAll(lake *lslod.Lake, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, id := range lake.Catalog.SourceIDs() {
		src := lake.Catalog.Source(id)
		g, err := lslod.GraphFromSource(src)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, id+".nt"))
		if err != nil {
			return err
		}
		if err := rdf.WriteNTriples(f, g.Triples()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
