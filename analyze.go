package ontario

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ontario/internal/core"
	"ontario/internal/engine"
	"ontario/internal/trace"
)

// Actual is the observed runtime behaviour of one plan operator — the
// EXPLAIN ANALYZE counterpart of Estimate. Counters are a snapshot while
// the query is still running and final once the cursor is exhausted or
// closed.
type Actual struct {
	// Kind is the physical operator as executed ("service", "hash-join",
	// "bind-join", "block-bind-join", "nested-loop-join", ...); it may be
	// more specific than the plan node's Operator.
	Kind string `json:"kind"`
	// Label carries operator detail: the source ID of a service, the join
	// variables of a join, the projected variables of a projection.
	Label string `json:"label,omitempty"`
	// BindingsIn/BatchesIn count the operator's consumed input (both join
	// sides combined); BindingsOut/BatchesOut its produced output —
	// BindingsOut is the actual cardinality to hold against
	// Estimate.Cardinality.
	BindingsIn  int64 `json:"bindings_in"`
	BatchesIn   int64 `json:"batches_in"`
	BindingsOut int64 `json:"bindings_out"`
	BatchesOut  int64 `json:"batches_out"`
	// Wall is construction-to-completion wall time; BlockedRecv/BlockedSend
	// the time spent waiting on the input exchange and on the downstream
	// consumer.
	Wall        time.Duration `json:"wall_ns"`
	BlockedRecv time.Duration `json:"blocked_recv_ns"`
	BlockedSend time.Duration `json:"blocked_send_ns"`
	// HashEntries counts a symmetric hash join's table insertions across
	// shards; BlocksIssued a (block) bind join's service requests. Zero for
	// other operators.
	HashEntries  int64 `json:"hash_entries,omitempty"`
	BlocksIssued int64 `json:"blocks_issued,omitempty"`
}

// RemoteSpan is one federated request to a remote source as seen from this
// node: attempts made by the resilience layer, the circuit-breaker state
// after the call, total latency, and — when the peer is itself an ontario
// server — the peer's query ID and its own nested spans, so a federation
// tree is visible from its root.
type RemoteSpan struct {
	Source string `json:"source"`
	// QueryID is the peer-assigned query ID propagated back on the
	// response; empty for non-ontario endpoints.
	QueryID   string       `json:"query_id,omitempty"`
	Attempts  int          `json:"attempts"`
	Breaker   string       `json:"breaker,omitempty"`
	LatencyMS float64      `json:"latency_ms"`
	Error     string       `json:"error,omitempty"`
	Children  []RemoteSpan `json:"children,omitempty"`
}

func (sp RemoteSpan) render(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "remote[%s] attempts=%d latency=%.1fms", sp.Source, sp.Attempts, sp.LatencyMS)
	if sp.Breaker != "" {
		fmt.Fprintf(b, " breaker=%s", sp.Breaker)
	}
	if sp.QueryID != "" {
		fmt.Fprintf(b, " query=%s", sp.QueryID)
	}
	if sp.Error != "" {
		fmt.Fprintf(b, " error=%q", sp.Error)
	}
	b.WriteByte('\n')
	for _, c := range sp.Children {
		c.render(b, depth+1)
	}
}

// Analysis is the result of EXPLAIN ANALYZE: the executed plan annotated
// with per-operator actuals and federated request spans, plus the query's
// trace identity.
type Analysis struct {
	// TraceID is the W3C trace ID shared across every node of a federated
	// query; QueryID is this node's span ID (the ID access logs and the
	// slow-query log correlate on).
	TraceID string `json:"trace_id"`
	QueryID string `json:"query_id"`
	// Plan is the executed plan with Actual (and Remote, for federated
	// service nodes) populated.
	Plan *PlanSummary `json:"plan"`
	// Modifiers holds the actuals of the solution-modifier pipeline above
	// the plan root (project, distinct, order-by, offset, limit), in
	// execution order.
	Modifiers []Actual `json:"modifiers,omitempty"`
}

// String renders the analysis as text: the plan tree with `{act ...}`
// annotations and remote spans, headed by the trace identity.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query=%s trace=%s\n", a.QueryID, a.TraceID)
	for i := len(a.Modifiers) - 1; i >= 0; i-- {
		m := a.Modifiers[i]
		b.WriteString(m.Kind)
		if m.Label != "" {
			fmt.Fprintf(&b, " [%s]", m.Label)
		}
		fmt.Fprintf(&b, "  {act card=%d in=%d wall=%s}\n",
			m.BindingsOut, m.BindingsIn, m.Wall.Round(time.Microsecond))
	}
	a.Plan.render(&b, len(a.Modifiers))
	return b.String()
}

// Analyze returns the EXPLAIN ANALYZE view of this query: the executed
// plan annotated with observed per-operator cardinalities, wall and
// blocked times, join gauges, and the spans of federated requests. Safe to
// call while the cursor is open (a snapshot) or after it finished (final
// numbers).
func (r *Results) Analyze() *Analysis {
	a := &Analysis{Plan: r.Plan()}
	if qt := r.exec.Trace(); qt != nil {
		a.TraceID = qt.TraceID
		a.QueryID = qt.QueryID
		spans := make(map[string][]RemoteSpan)
		for _, sp := range qt.RemoteSpans() {
			spans[sp.Source] = append(spans[sp.Source], remoteSpanFromInternal(sp))
		}
		attachActuals(a.Plan, r.plan.Root, r.exec, spans)
	}
	for _, m := range r.exec.ModifierActuals() {
		a.Modifiers = append(a.Modifiers, actualFromInternal(m))
	}
	return a
}

// QueryID returns the query's span ID — the identifier the server's access
// log, slow-query log and federated peers correlate on. Empty before the
// execution started.
func (r *Results) QueryID() string {
	if qt := r.exec.Trace(); qt != nil {
		return qt.QueryID
	}
	return ""
}

// TraceID returns the W3C trace ID shared by every node this query
// touched. Empty before the execution started.
func (r *Results) TraceID() string {
	if qt := r.exec.Trace(); qt != nil {
		return qt.TraceID
	}
	return ""
}

// ExplainAnalyze runs the query to completion, discards the answers, and
// returns the rendered analysis: the plan annotated with actual per-node
// cardinalities and times alongside the cost model's estimates, plus a
// summary footer. The error (if the execution failed mid-stream) is
// returned together with the analysis of the partial run.
func (e *Engine) ExplainAnalyze(ctx context.Context, queryText string, options ...Option) (string, error) {
	res, err := e.Query(ctx, queryText, options...)
	if err != nil {
		return "", err
	}
	defer res.Close()
	for res.Next() {
	}
	st := res.Stats()
	var b strings.Builder
	b.WriteString(res.Analyze().String())
	fmt.Fprintf(&b, "answers=%d messages=%d duration=%s ttfa=%s\n",
		st.Answers, st.Messages, st.Duration.Round(time.Microsecond),
		st.TimeToFirstAnswer.Round(time.Microsecond))
	return b.String(), res.Err()
}

// attachActuals walks the summary tree and the plan tree in lockstep
// (summarize mirrors the plan structure exactly), pairing every node with
// its observed stats and every service node with its remote spans.
func attachActuals(s *PlanSummary, n core.PlanNode, exec *core.Execution, spans map[string][]RemoteSpan) {
	if act, ok := exec.NodeActuals(n); ok {
		a := actualFromInternal(act)
		s.Actual = &a
	}
	switch v := n.(type) {
	case *core.ServiceNode:
		s.Remote = spans[v.SourceID]
	case *core.JoinNode:
		if len(s.Children) == 2 {
			attachActuals(s.Children[0], v.L, exec, spans)
			attachActuals(s.Children[1], v.R, exec, spans)
		}
	case *core.LeftJoinNode:
		if len(s.Children) == 2 {
			attachActuals(s.Children[0], v.L, exec, spans)
			attachActuals(s.Children[1], v.R, exec, spans)
		}
	case *core.FilterNode:
		if len(s.Children) == 1 {
			attachActuals(s.Children[0], v.Child, exec, spans)
		}
	case *core.UnionNode:
		if len(s.Children) == len(v.Children) {
			for i, c := range v.Children {
				attachActuals(s.Children[i], c, exec, spans)
			}
		}
	}
}

func actualFromInternal(a engine.OpActuals) Actual {
	return Actual{
		Kind:         a.Kind,
		Label:        a.Label,
		BindingsIn:   a.BindingsIn,
		BatchesIn:    a.BatchesIn,
		BindingsOut:  a.BindingsOut,
		BatchesOut:   a.BatchesOut,
		Wall:         a.Wall,
		BlockedRecv:  a.BlockedRecv,
		BlockedSend:  a.BlockedSend,
		HashEntries:  a.HashEntries,
		BlocksIssued: a.BlocksIssued,
	}
}

func remoteSpanFromInternal(sp trace.RemoteSpan) RemoteSpan {
	out := RemoteSpan{
		Source:    sp.Source,
		QueryID:   sp.QueryID,
		Attempts:  sp.Attempts,
		Breaker:   sp.Breaker,
		LatencyMS: sp.LatencyMS,
		Error:     sp.Error,
	}
	for _, c := range sp.Children {
		out.Children = append(out.Children, remoteSpanFromInternal(c))
	}
	return out
}
