package ontario_test

// The external-consumer proof: a throwaway module OUTSIDE this repository
// (wired up with a replace directive) imports ontario and ontario/lake,
// builds a lake, and runs a smoke query through the cursor API. If any
// exported surface referenced an internal type, or the library otherwise
// only worked from inside the module, this build would fail. The CI
// external-module job runs the same check with the go tool directly.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const extMainGo = `package main

import (
	"context"
	"fmt"
	"log"

	"ontario"
	"ontario/lake"
)

func main() {
	l, err := lake.NewBuilder().
		AddTable("hr", lake.TableSpec{
			Name: "employee",
			Columns: []lake.Column{
				{Name: "id", Type: lake.TypeInt, NotNull: true},
				{Name: "name", Type: lake.TypeString},
			},
			PrimaryKey: "id",
			Rows:       [][]any{{1, "Ada"}, {2, "Grace"}},
		}).
		MapClass("hr", lake.ClassMapping{
			Class:           "http://x/Employee",
			Table:           "employee",
			SubjectTemplate: "http://x/e/{value}",
			Properties: []lake.PropertyMapping{
				{Predicate: "http://x/name", Column: "name"},
			},
		}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(l, ontario.WithSourceLimit(2))
	res, err := eng.Query(context.Background(),
		"SELECT ?n WHERE { ?e <http://x/name> ?n . }",
		ontario.WithAwarePlan(), ontario.WithNetwork(ontario.Gamma1), ontario.WithNetworkScale(0))
	if err != nil {
		log.Fatal(err)
	}
	answers, err := res.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("external consumer got %d answers, %d messages\n",
		len(answers), res.Stats().Messages)
}
`

func TestExternalModuleConsumesLibrary(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gomod := "module extconsumer\n\ngo 1.22\n\nrequire ontario v0.0.0\n\nreplace ontario => " + repo + "\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(extMainGo), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("external module failed: %v\n%s", err, out)
	}
	if want := "external consumer got 2 answers"; !strings.Contains(string(out), want) {
		t.Errorf("output %q does not contain %q", out, want)
	}
}
