package ontario_test

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"ontario"
	"ontario/internal/bridge"
	"ontario/internal/cluster"
	"ontario/internal/lslod"
	"ontario/internal/trace"
	"ontario/internal/wrapper"
)

// Distributed execution must be answer-equivalent to single-node
// execution: the coordinator plans exactly as a single node does, but
// scans fan out over hash-partitioned workers and symmetric-hash joins
// run as distributed shuffles over the columnar wire protocol, so the
// multiset of solutions — unbound OPTIONAL columns, typed literals and
// all — must survive partitioning, the dictionary-delta remap, and
// reassembly.

// testCluster is a booted worker pool plus the coordinator-side client:
// tests that only need the query option use .opt; the restart and
// pushdown tests also reach the client (Probe counters) and individual
// workers (Shutdown / restart on the same port).
type testCluster struct {
	t       *testing.T
	n       int
	opt     ontario.Option
	client  *cluster.Client
	addrs   []string
	workers []*cluster.Worker
}

// bootCluster partitions the small LSLOD lake over n in-process workers
// on loopback listeners and returns the pool handle whose opt
// distributes executions over them.
func bootCluster(t *testing.T, n int, cfg cluster.ClientConfig) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, n: n, addrs: make([]string, n), workers: make([]*cluster.Worker, n)}
	for i := 0; i < n; i++ {
		tc.startWorker(i, "127.0.0.1:0")
	}
	client, err := cluster.NewClient(tc.addrs, cfg)
	if err != nil {
		t.Fatalf("cluster client: %v", err)
	}
	t.Cleanup(client.Close)
	opt, ok := bridge.ClusterOption(client).(ontario.Option)
	if !ok {
		t.Fatal("bridge.ClusterOption is not wired")
	}
	tc.client = client
	tc.opt = opt
	return tc
}

// startWorker builds partition i's lake and serves a worker for it on
// addr ("127.0.0.1:0" picks a port; a concrete addr rebinds it, which is
// how restartWorker keeps the pool's addresses stable).
func (tc *testCluster) startWorker(i int, addr string) {
	tc.t.Helper()
	lk, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		tc.t.Fatalf("building worker %d lake: %v", i, err)
	}
	if err := cluster.PartitionLake(lk.Lake, i, tc.n); err != nil {
		tc.t.Fatalf("partitioning worker %d: %v", i, err)
	}
	w, err := cluster.NewWorker(lk.Lake, cluster.WorkerConfig{Partition: i, Of: tc.n})
	if err != nil {
		tc.t.Fatalf("worker %d: %v", i, err)
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		tc.t.Fatalf("worker %d listener on %s: %v", i, addr, err)
	}
	go w.Serve(lis)
	tc.t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		w.Shutdown(ctx)
	})
	tc.addrs[i] = lis.Addr().String()
	tc.workers[i] = w
}

// stopWorker shuts worker i down; its port stays recorded so
// restartWorker can bring a fresh process-equivalent worker back up on
// the same address.
func (tc *testCluster) stopWorker(i int) {
	tc.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tc.workers[i].Shutdown(ctx); err != nil {
		tc.t.Fatalf("worker %d shutdown: %v", i, err)
	}
}

func (tc *testCluster) restartWorker(i int) {
	tc.t.Helper()
	tc.startWorker(i, tc.addrs[i])
}

// TestClusterEquivalenceLSLOD runs the five LSLOD benchmark queries on a
// two-worker cluster under both plan modes and requires the distributed
// multiset to match the single-node columnar run on the same engine —
// including a repeat per cell, so cached plans shared between clustered
// and local executions stay correct.
func TestClusterEquivalenceLSLOD(t *testing.T) {
	lk := buildEquivLake(t)
	eng := ontario.New(lk.Lake)
	clusterOpt := bootCluster(t, 2, cluster.ClientConfig{}).opt

	modes := []struct {
		name string
		opt  ontario.Option
	}{
		{"aware", ontario.WithAwarePlan()},
		{"unaware", ontario.WithUnawarePlan()},
	}
	for _, q := range lslod.Queries() {
		for _, mode := range modes {
			base := []ontario.Option{
				mode.opt,
				ontario.WithNetwork(ontario.NoDelay),
				ontario.WithNetworkScale(0),
				ontario.WithSeed(1),
			}
			label := fmt.Sprintf("%s/%s", q.ID, mode.name)
			_, want := runCanon(t, eng, q.Text, base...)
			if len(want) == 0 {
				t.Fatalf("%s: single-node run returned no solutions", label)
			}
			_, got := runCanon(t, eng, q.Text, append([]ontario.Option{clusterOpt}, base...)...)
			diffMultisets(t, label, want, got)
			_, again := runCanon(t, eng, q.Text, append([]ontario.Option{clusterOpt}, base...)...)
			diffMultisets(t, label+"/repeat", want, again)
		}
	}
}

// TestClusterEquivalenceOptional shuffles OPTIONAL-unbound rows across
// the wire: the presence bitmap for the absent ?drug column must survive
// the worker hop in both directions.
func TestClusterEquivalenceOptional(t *testing.T) {
	lk := buildEquivLake(t)
	eng := ontario.New(lk.Lake)
	clusterOpt := bootCluster(t, 2, cluster.ClientConfig{}).opt

	query := fmt.Sprintf(`
SELECT ?disease ?name ?drug WHERE {
  ?disease <%s> <%s> .
  ?disease <%s> ?name .
  OPTIONAL { ?disease <%s> ?drug }
}`, rdfTypeIRI, lslod.ClassDisease, lslod.PredDiseaseName, lslod.PredPossibleDrug)

	base := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithNetwork(ontario.NoDelay),
		ontario.WithNetworkScale(0),
		ontario.WithSeed(1),
	}
	_, want := runCanon(t, eng, query, base...)
	bound, unbound := 0, 0
	for _, row := range want {
		if strings.Contains(row, "drug=") {
			bound++
		} else {
			unbound++
		}
	}
	if bound == 0 || unbound == 0 {
		t.Fatalf("OPTIONAL coverage needs both bound and unbound ?drug rows, got bound=%d unbound=%d", bound, unbound)
	}
	_, got := runCanon(t, eng, query, append([]ontario.Option{clusterOpt}, base...)...)
	diffMultisets(t, "cluster/optional", want, got)
}

// TestClusterSingleWorkerDegenerate checks the N=1 edge: one worker
// owning the whole lake behind the wire protocol is still
// answer-identical (the scaling experiment's baseline cell).
func TestClusterSingleWorkerDegenerate(t *testing.T) {
	lk := buildEquivLake(t)
	eng := ontario.New(lk.Lake)
	clusterOpt := bootCluster(t, 1, cluster.ClientConfig{}).opt

	q := lslod.Queries()[0]
	base := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithNetwork(ontario.NoDelay),
		ontario.WithNetworkScale(0),
		ontario.WithSeed(1),
	}
	_, want := runCanon(t, eng, q.Text, base...)
	_, got := runCanon(t, eng, q.Text, append([]ontario.Option{clusterOpt}, base...)...)
	diffMultisets(t, "cluster/one-worker", want, got)
}

// TestClusterWorkerRestart kills a worker mid-pool and brings a fresh one
// up on the same port: queries against the dead worker must fail cleanly
// (not hang), and after the restart the persistent link must re-dial,
// reset its dictionary-remap state against the worker's new epoch, and
// answer the full LSLOD suite exactly.
func TestClusterWorkerRestart(t *testing.T) {
	lk := buildEquivLake(t)
	eng := ontario.New(lk.Lake)
	// No retries and no breaker: a dead worker should surface immediately
	// as an error, and the restarted worker should be usable on the very
	// next query rather than after a cooldown.
	tc := bootCluster(t, 2, cluster.ClientConfig{
		Resilience: wrapper.ResilienceConfig{MaxRetries: -1, BreakerThreshold: -1},
	})

	base := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithNetwork(ontario.NoDelay),
		ontario.WithNetworkScale(0),
		ontario.WithSeed(1),
	}
	q := lslod.Queries()[0]
	_, want := runCanon(t, eng, q.Text, base...)
	_, got := runCanon(t, eng, q.Text, append([]ontario.Option{tc.opt}, base...)...)
	diffMultisets(t, "restart/before", want, got)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	before := tc.client.Probe(ctx)
	if !before[0].Up || before[0].Info == nil {
		t.Fatalf("worker 0 not up before restart: %+v", before[0])
	}
	epochBefore := before[0].Info.Epoch

	tc.stopWorker(0)
	res, err := eng.Query(context.Background(), q.Text, append([]ontario.Option{tc.opt}, base...)...)
	if err == nil {
		_, err = res.Collect()
		res.Close()
	}
	if err == nil {
		t.Fatal("query with worker 0 down succeeded; want a clean failure")
	}

	tc.restartWorker(0)
	for _, lq := range lslod.Queries() {
		_, want := runCanon(t, eng, lq.Text, base...)
		_, got := runCanon(t, eng, lq.Text, append([]ontario.Option{tc.opt}, base...)...)
		diffMultisets(t, "restart/after/"+lq.ID, want, got)
	}

	after := tc.client.Probe(ctx)
	if !after[0].Up || after[0].Info == nil {
		t.Fatalf("worker 0 not up after restart: %+v", after[0])
	}
	if after[0].Info.Epoch == epochBefore {
		t.Fatalf("worker 0 epoch unchanged across restart: %d", epochBefore)
	}
	if after[0].Reconnects < 1 {
		t.Fatalf("link 0 reconnects = %d after restart, want >= 1", after[0].Reconnects)
	}
}

// TestClusterCoPartitionedPushdown forces a subject-subject
// symmetric-hash join (triple decomposition, greedy ordering) whose two
// scans are both partitioned by the join variable: the coordinator must
// push the join subtree down to the co-partitioned workers — the
// executed operator is "co-join" and zero batches cross the wire as
// shuffle traffic — while the answer multiset stays identical to the
// single-node run. A subject-object join over the same pool is the
// control: not co-partitioned, so it must shuffle.
func TestClusterCoPartitionedPushdown(t *testing.T) {
	lk := buildEquivLake(t)
	eng := ontario.New(lk.Lake)
	tc := bootCluster(t, 2, cluster.ClientConfig{})

	base := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithTripleDecomposition(),
		ontario.WithOptimizer(ontario.OptimizerGreedy),
		ontario.WithNetwork(ontario.NoDelay),
		ontario.WithNetworkScale(0),
		ontario.WithSeed(1),
	}

	// Both patterns share the subject ?disease, so both sides of the join
	// are partitioned by the join variable.
	coQuery := fmt.Sprintf(`SELECT ?disease ?name ?drug WHERE {
  ?disease <%s> ?name .
  ?disease <%s> ?drug .
}`, lslod.PredDiseaseName, lslod.PredPossibleDrug)
	_, want := runCanon(t, eng, coQuery, base...)
	if len(want) == 0 {
		t.Fatal("co-partitioned query returned no solutions single-node")
	}
	// Inject a query trace to observe the executed (post-unmerge) operator
	// kinds — the plan summary shows the merged-service plan, not the
	// distributed tree execution actually ran.
	qt := trace.NewQueryTrace()
	res, err := eng.Query(trace.WithQuery(context.Background(), qt), coQuery,
		append([]ontario.Option{tc.opt}, base...)...)
	if err != nil {
		t.Fatalf("cluster query: %v", err)
	}
	rows, err := res.Collect()
	if err != nil {
		t.Fatalf("cluster collect: %v", err)
	}
	res.Close()
	got := make([]string, len(rows))
	for i, b := range rows {
		got[i] = canonRow(b)
	}
	sort.Strings(got)
	diffMultisets(t, "co-partitioned", want, got)
	kinds := make([]string, 0, 8)
	coJoin := false
	for _, op := range qt.Ops() {
		kinds = append(kinds, op.Kind)
		if op.Kind == "co-join" {
			coJoin = true
		}
	}
	if !coJoin {
		t.Fatalf("co-partitioned join did not execute as co-join; executed operators: %v", kinds)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, ws := range tc.client.Probe(ctx) {
		if !ws.Up {
			t.Fatalf("worker %s down: %s", ws.Addr, ws.Err)
		}
		if ws.ShuffledBatches != 0 {
			t.Fatalf("worker %s shuffled %d batches; co-partitioned pushdown must shuffle none", ws.Addr, ws.ShuffledBatches)
		}
	}

	// Control: ?drug is the first pattern's object, so the sides are
	// partitioned by different variables and the join must shuffle.
	ctrlQuery := fmt.Sprintf(`SELECT ?disease ?drug ?gname WHERE {
  ?disease <%s> ?drug .
  ?drug <%s> ?gname .
}`, lslod.PredPossibleDrug, lslod.PredGenericName)
	_, wantCtrl := runCanon(t, eng, ctrlQuery, base...)
	if len(wantCtrl) == 0 {
		t.Fatal("control query returned no solutions single-node")
	}
	_, gotCtrl := runCanon(t, eng, ctrlQuery, append([]ontario.Option{tc.opt}, base...)...)
	diffMultisets(t, "control", wantCtrl, gotCtrl)
	var shuffled int64
	for _, ws := range tc.client.Probe(ctx) {
		shuffled += ws.ShuffledBatches
	}
	if shuffled == 0 {
		t.Fatal("subject-object control join shuffled no batches; the shuffle counter is not measuring")
	}
}
