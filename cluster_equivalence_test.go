package ontario_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"ontario"
	"ontario/internal/bridge"
	"ontario/internal/cluster"
	"ontario/internal/lslod"
)

// Distributed execution must be answer-equivalent to single-node
// execution: the coordinator plans exactly as a single node does, but
// scans fan out over hash-partitioned workers and symmetric-hash joins
// run as distributed shuffles over the columnar wire protocol, so the
// multiset of solutions — unbound OPTIONAL columns, typed literals and
// all — must survive partitioning, the dictionary-delta remap, and
// reassembly.

// bootCluster partitions the small LSLOD lake over n in-process workers
// on loopback listeners and returns the coordinator-side query option
// that distributes executions over them.
func bootCluster(t *testing.T, n int) ontario.Option {
	t.Helper()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lk, err := lslod.BuildLake(lslod.SmallScale(), 1)
		if err != nil {
			t.Fatalf("building worker %d lake: %v", i, err)
		}
		if err := cluster.PartitionLake(lk.Lake, i, n); err != nil {
			t.Fatalf("partitioning worker %d: %v", i, err)
		}
		w, err := cluster.NewWorker(lk.Lake, cluster.WorkerConfig{Partition: i, Of: n})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("worker %d listener: %v", i, err)
		}
		go w.Serve(lis)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			w.Shutdown(ctx)
		})
		addrs = append(addrs, lis.Addr().String())
	}
	client, err := cluster.NewClient(addrs, cluster.ClientConfig{})
	if err != nil {
		t.Fatalf("cluster client: %v", err)
	}
	opt, ok := bridge.ClusterOption(client).(ontario.Option)
	if !ok {
		t.Fatal("bridge.ClusterOption is not wired")
	}
	return opt
}

// TestClusterEquivalenceLSLOD runs the five LSLOD benchmark queries on a
// two-worker cluster under both plan modes and requires the distributed
// multiset to match the single-node columnar run on the same engine —
// including a repeat per cell, so cached plans shared between clustered
// and local executions stay correct.
func TestClusterEquivalenceLSLOD(t *testing.T) {
	lk := buildEquivLake(t)
	eng := ontario.New(lk.Lake)
	clusterOpt := bootCluster(t, 2)

	modes := []struct {
		name string
		opt  ontario.Option
	}{
		{"aware", ontario.WithAwarePlan()},
		{"unaware", ontario.WithUnawarePlan()},
	}
	for _, q := range lslod.Queries() {
		for _, mode := range modes {
			base := []ontario.Option{
				mode.opt,
				ontario.WithNetwork(ontario.NoDelay),
				ontario.WithNetworkScale(0),
				ontario.WithSeed(1),
			}
			label := fmt.Sprintf("%s/%s", q.ID, mode.name)
			_, want := runCanon(t, eng, q.Text, base...)
			if len(want) == 0 {
				t.Fatalf("%s: single-node run returned no solutions", label)
			}
			_, got := runCanon(t, eng, q.Text, append([]ontario.Option{clusterOpt}, base...)...)
			diffMultisets(t, label, want, got)
			_, again := runCanon(t, eng, q.Text, append([]ontario.Option{clusterOpt}, base...)...)
			diffMultisets(t, label+"/repeat", want, again)
		}
	}
}

// TestClusterEquivalenceOptional shuffles OPTIONAL-unbound rows across
// the wire: the presence bitmap for the absent ?drug column must survive
// the worker hop in both directions.
func TestClusterEquivalenceOptional(t *testing.T) {
	lk := buildEquivLake(t)
	eng := ontario.New(lk.Lake)
	clusterOpt := bootCluster(t, 2)

	query := fmt.Sprintf(`
SELECT ?disease ?name ?drug WHERE {
  ?disease <%s> <%s> .
  ?disease <%s> ?name .
  OPTIONAL { ?disease <%s> ?drug }
}`, rdfTypeIRI, lslod.ClassDisease, lslod.PredDiseaseName, lslod.PredPossibleDrug)

	base := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithNetwork(ontario.NoDelay),
		ontario.WithNetworkScale(0),
		ontario.WithSeed(1),
	}
	_, want := runCanon(t, eng, query, base...)
	bound, unbound := 0, 0
	for _, row := range want {
		if strings.Contains(row, "drug=") {
			bound++
		} else {
			unbound++
		}
	}
	if bound == 0 || unbound == 0 {
		t.Fatalf("OPTIONAL coverage needs both bound and unbound ?drug rows, got bound=%d unbound=%d", bound, unbound)
	}
	_, got := runCanon(t, eng, query, append([]ontario.Option{clusterOpt}, base...)...)
	diffMultisets(t, "cluster/optional", want, got)
}

// TestClusterSingleWorkerDegenerate checks the N=1 edge: one worker
// owning the whole lake behind the wire protocol is still
// answer-identical (the scaling experiment's baseline cell).
func TestClusterSingleWorkerDegenerate(t *testing.T) {
	lk := buildEquivLake(t)
	eng := ontario.New(lk.Lake)
	clusterOpt := bootCluster(t, 1)

	q := lslod.Queries()[0]
	base := []ontario.Option{
		ontario.WithAwarePlan(),
		ontario.WithNetwork(ontario.NoDelay),
		ontario.WithNetworkScale(0),
		ontario.WithSeed(1),
	}
	_, want := runCanon(t, eng, q.Text, base...)
	_, got := runCanon(t, eng, q.Text, append([]ontario.Option{clusterOpt}, base...)...)
	diffMultisets(t, "cluster/one-worker", want, got)
}
