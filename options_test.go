package ontario

import (
	"reflect"
	"testing"

	"ontario/internal/core"
	"ontario/internal/netsim"
	"ontario/internal/wrapper"
)

// resolveOptions is the test hook for the option-resolution pipeline.
func resolveOptions(options ...Option) core.Options {
	return newConfig(options).resolve()
}

// TestOptionOrderIndependence is the regression for the v0 trap where
// WithOptimizer/WithJoinOperator applied before WithAwarePlan/
// WithUnawarePlan were silently reset: every permutation of a fixed option
// set must resolve to the same planner options.
func TestOptionOrderIndependence(t *testing.T) {
	opts := []Option{
		WithAwarePlan(),
		WithHeuristic2(),
		WithNetwork(Gamma2),
		WithOptimizer(OptimizerGreedy),
		WithJoinOperator(JoinBind),
		WithNaiveTranslation(),
		WithTripleDecomposition(),
		WithBindBlockSize(8),
	}
	want := resolveOptions(opts...)

	// Heap's algorithm over all len(opts)! orderings.
	var permute func(k int, a []Option)
	checked := 0
	permute = func(k int, a []Option) {
		if t.Failed() {
			return
		}
		if k == 1 {
			checked++
			if got := resolveOptions(a...); !reflect.DeepEqual(got, want) {
				t.Errorf("permutation %d resolved to %+v, want %+v", checked, got, want)
			}
			return
		}
		for i := 0; i < k; i++ {
			permute(k-1, a)
			if k%2 == 0 {
				a[i], a[k-1] = a[k-1], a[i]
			} else {
				a[0], a[k-1] = a[k-1], a[0]
			}
		}
	}
	permute(len(opts), append([]Option(nil), opts...))
	if want := 40320; checked != want { // 8!
		t.Fatalf("checked %d permutations, want %d", checked, want)
	}
}

// TestOptionResolutionV0Trap pins the exact case the v0 docs warned about:
// WithOptimizer before WithAwarePlan must not be reset to the aware
// default.
func TestOptionResolutionV0Trap(t *testing.T) {
	before := resolveOptions(WithOptimizer(OptimizerGreedy), WithAwarePlan())
	after := resolveOptions(WithAwarePlan(), WithOptimizer(OptimizerGreedy))
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("order-dependent resolution: before=%+v after=%+v", before, after)
	}
	if before.Optimizer != core.OptimizerGreedy {
		t.Errorf("optimizer override lost: %v", before.Optimizer)
	}
	if !before.Aware {
		t.Error("aware mode lost")
	}

	joinFirst := resolveOptions(WithJoinOperator(JoinNestedLoop), WithUnawarePlan())
	if joinFirst.JoinOperator != core.JoinNestedLoop {
		t.Errorf("join operator override lost: %v", joinFirst.JoinOperator)
	}
}

// TestOptionResolutionDefaults pins the resolved defaults of each plan
// mode.
func TestOptionResolutionDefaults(t *testing.T) {
	unaware := resolveOptions()
	if unaware.Aware || unaware.Optimizer != core.OptimizerGreedy || unaware.Network != netsim.NoDelay {
		t.Errorf("default options = %+v", unaware)
	}
	aware := resolveOptions(WithAwarePlan(), WithNetwork(Gamma3))
	if !aware.Aware || aware.Optimizer != core.OptimizerCost ||
		aware.FilterPolicy != core.FilterAtSourceIfIndexed ||
		aware.Translation != wrapper.TranslationOptimized ||
		aware.Network.Name != "Gamma 3" {
		t.Errorf("aware options = %+v", aware)
	}
	h2 := resolveOptions(WithHeuristic2(), WithNetwork(Gamma3))
	if !h2.Aware || h2.FilterPolicy != core.FilterHeuristic2 {
		t.Errorf("heuristic2 options = %+v", h2)
	}
	// WithHeuristic2 implies an aware plan even when WithUnawarePlan is
	// also present, in either order.
	if a, b := resolveOptions(WithUnawarePlan(), WithHeuristic2()), resolveOptions(WithHeuristic2(), WithUnawarePlan()); !reflect.DeepEqual(a, b) || !a.Aware {
		t.Errorf("h2+unaware resolution: %+v vs %+v", a, b)
	}
}
