package ontario_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"ontario"
	"ontario/internal/lslod"
)

// canonAnswers renders an answer set as a sorted multiset of canonical
// binding strings, so two runs compare byte-identically regardless of
// arrival order.
func canonAnswers(t *testing.T, answers []ontario.Binding) []string {
	t.Helper()
	out := make([]string, len(answers))
	for i, b := range answers {
		vars := make([]string, 0, len(b))
		for v := range b {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		var sb strings.Builder
		for _, v := range vars {
			fmt.Fprintf(&sb, "%s=%s;", v, b[v].String())
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

// TestBatchSizesAnswerEquivalenceLSLOD is the correctness contract of the
// vectorized data plane: on every LSLOD benchmark query, every batch size
// × probe parallelism combination must return the byte-identical answer
// multiset that batch=1/par=1 — the binding-at-a-time semantics of the
// pre-vectorization engine — returns, in both plan modes.
func TestBatchSizesAnswerEquivalenceLSLOD(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	ctx := context.Background()

	modes := []struct {
		name string
		opt  ontario.Option
	}{
		{"aware", ontario.WithAwarePlan()},
		{"unaware", ontario.WithUnawarePlan()},
	}
	for _, q := range lslod.Queries() {
		for _, mode := range modes {
			run := func(batch, par int) []string {
				res, err := eng.Query(ctx, q.Text, mode.opt,
					ontario.WithNetworkScale(0),
					ontario.WithBatchSize(batch),
					ontario.WithProbeParallelism(par))
				if err != nil {
					t.Fatalf("%s %s batch=%d par=%d: %v", q.ID, mode.name, batch, par, err)
				}
				answers, err := res.Collect()
				if err != nil {
					t.Fatalf("%s %s batch=%d par=%d: %v", q.ID, mode.name, batch, par, err)
				}
				return canonAnswers(t, answers)
			}
			want := run(1, 1) // binding-at-a-time reference semantics
			for _, cfg := range [][2]int{{2, 1}, {64, 4}, {256, 1}, {256, 8}, {4096, 3}} {
				got := run(cfg[0], cfg[1])
				if len(got) != len(want) {
					t.Fatalf("%s %s batch=%d par=%d: %d answers, reference %d",
						q.ID, mode.name, cfg[0], cfg[1], len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s %s batch=%d par=%d: answer multiset differs at %d:\n got %s\nwant %s",
							q.ID, mode.name, cfg[0], cfg[1], i, got[i], want[i])
					}
				}
			}
		}
	}
}

// settleGoroutines GCs and waits briefly so finished goroutines are
// reaped before counting — the NumGoroutine-settling pattern from the
// server tests, applied to the public cursor API.
func settleGoroutines() int {
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	return runtime.NumGoroutine()
}

// TestResultsCloseMidStreamDoesNotLeak closes the cursor after the first
// answer of a slow streaming query: the whole execution pipeline —
// wrapper producers, batch writers, join workers — must unwind instead of
// blocking on the abandoned exchange.
func TestResultsCloseMidStreamDoesNotLeak(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	before := settleGoroutines()

	res, err := eng.Query(context.Background(), lslod.Queries()[2].Text,
		ontario.WithUnawarePlan(),
		ontario.WithNetwork(ontario.Gamma3),
		ontario.WithNetworkScale(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Next() {
		t.Fatalf("no first answer: %v", res.Err())
	}
	if err := res.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.Next() {
		t.Error("Next returned true after Close")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		after := settleGoroutines()
		if after <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after Close mid-stream: %d before, %d after", before, after)
		}
	}
}

// TestResultsContextCancelMidBatch cancels the query context while the
// cursor still holds an unconsumed buffered batch: iteration must stop,
// Err must report the cancellation, and no goroutine may stay behind.
func TestResultsContextCancelMidBatch(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	before := settleGoroutines()

	ctx, cancel := context.WithCancel(context.Background())
	res, err := eng.Query(ctx, lslod.Queries()[2].Text,
		ontario.WithUnawarePlan(),
		ontario.WithNetwork(ontario.Gamma3),
		ontario.WithNetworkScale(1),
		ontario.WithBatchSize(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Next() {
		t.Fatalf("no first answer: %v", res.Err())
	}
	cancel()
	// The cursor may serve a few more solutions from its buffered batch —
	// that is the documented iterate-within-the-batch behaviour — but must
	// terminate promptly once the buffer drains.
	for n := 0; res.Next(); n++ {
		if n > 100000 {
			t.Fatal("cursor did not stop after context cancellation")
		}
	}
	if err := res.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", err)
	}
	res.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		after := settleGoroutines()
		if after <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancel mid-batch: %d before, %d after", before, after)
		}
	}
}
