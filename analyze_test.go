package ontario_test

import (
	"context"
	"strings"
	"testing"

	"ontario"
	"ontario/internal/lslod"
)

// walkSummaries flattens the annotated plan tree.
func walkSummaries(p *ontario.PlanSummary) []*ontario.PlanSummary {
	if p == nil {
		return nil
	}
	out := []*ontario.PlanSummary{p}
	for _, c := range p.Children {
		out = append(out, walkSummaries(c)...)
	}
	return out
}

func TestResultsAnalyzeActuals(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	res, err := eng.Query(context.Background(), lslod.Queries()[2].Text,
		ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	answers, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}

	a := res.Analyze()
	if a == nil || a.Plan == nil {
		t.Fatal("Analyze returned no plan")
	}
	if a.QueryID != res.QueryID() || a.TraceID != res.TraceID() {
		t.Errorf("identity mismatch: analysis %s/%s, results %s/%s",
			a.QueryID, a.TraceID, res.QueryID(), res.TraceID())
	}
	if len(a.QueryID) != 16 || len(a.TraceID) != 32 {
		t.Errorf("ids = %q / %q, want 16/32 hex chars", a.QueryID, a.TraceID)
	}

	// Q3 is a multi-source join: every node in the executed plan must carry
	// actuals, estimates must still be present where the planner put them,
	// and the root's output must equal the collected answer count.
	nodes := walkSummaries(a.Plan)
	if len(nodes) < 3 {
		t.Fatalf("plan has %d nodes, want a multi-operator tree", len(nodes))
	}
	services := 0
	for _, n := range nodes {
		if n.Actual == nil {
			t.Fatalf("node %s (%s) lacks actuals", n.Operator, n.Detail)
		}
		if n.Operator == "service" {
			services++
			if n.Actual.BindingsOut == 0 {
				t.Errorf("service %s produced no bindings", n.Source)
			}
		}
	}
	if services < 2 {
		t.Errorf("analyzed plan has %d service leaves, want >= 2 (multi-source)", services)
	}
	if a.Plan.Estimate == nil {
		t.Error("root estimate lost during analyze annotation")
	}
	if got := a.Plan.Actual.BindingsOut; int(got) != len(answers) {
		t.Errorf("root emitted %d, collected %d", got, len(answers))
	}
	if len(a.Modifiers) == 0 {
		t.Error("no modifier actuals (expected at least project)")
	}

	// The rendered report interleaves estimates and actuals.
	text := a.String()
	if !strings.Contains(text, "{est ") || !strings.Contains(text, "{act ") {
		t.Errorf("rendered analysis lacks est/act annotations:\n%s", text)
	}
	if !strings.Contains(text, "query="+a.QueryID) {
		t.Errorf("rendered analysis lacks the query id:\n%s", text)
	}
}

func TestAnalyzeBeforeDrainIsPartial(t *testing.T) {
	// Analyze on an unfinished execution is allowed (the slow-query log and
	// a dashboard may sample mid-flight) — it must be safe, not complete.
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	res, err := eng.Query(context.Background(), lslod.Queries()[0].Text,
		ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	if a := res.Analyze(); a == nil || a.Plan == nil {
		t.Fatal("mid-flight Analyze returned nil")
	}
	res.Close()
}

func TestExplainAnalyzeFacade(t *testing.T) {
	lake := facadeLake(t)
	eng := ontario.New(lake.Lake)
	text, err := eng.ExplainAnalyze(context.Background(), lslod.Queries()[0].Text,
		ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"{est ", "{act ", "answers=", "duration="} {
		if !strings.Contains(text, want) {
			t.Errorf("ExplainAnalyze output lacks %q:\n%s", want, text)
		}
	}
}
