package ontario

import (
	"fmt"
	"strings"
	"time"

	"ontario/internal/core"
	"ontario/internal/netsim"
	"ontario/internal/wrapper"
)

// Profile describes one simulated network condition: the retrieval of each
// answer from a source is delayed by a sample from a gamma distribution
// with shape Alpha and scale Beta (in milliseconds). Alpha == 0 means no
// delay.
type Profile struct {
	// Name identifies the profile in reports and EXPLAIN output.
	Name        string
	Alpha, Beta float64
}

// The paper's four network settings.
var (
	// NoDelay is a perfect network.
	NoDelay = Profile{Name: "No Delay"}
	// Gamma1 is a fast network (≈ 0.3 ms mean latency).
	Gamma1 = Profile{Name: "Gamma 1", Alpha: 1, Beta: 0.3}
	// Gamma2 is a medium network (≈ 3 ms mean latency).
	Gamma2 = Profile{Name: "Gamma 2", Alpha: 3, Beta: 1}
	// Gamma3 is a slow network (≈ 4.5 ms mean latency).
	Gamma3 = Profile{Name: "Gamma 3", Alpha: 3, Beta: 1.5}
)

// Profiles lists the paper's network settings in evaluation order.
func Profiles() []Profile { return []Profile{NoDelay, Gamma1, Gamma2, Gamma3} }

// GammaProfile returns a custom network profile with gamma-distributed
// per-message latency (shape alpha, scale beta, in milliseconds).
func GammaProfile(name string, alpha, beta float64) Profile {
	return Profile{Name: name, Alpha: alpha, Beta: beta}
}

// ProfileByName resolves one of the named profiles from its CLI/HTTP
// parameter name. The empty string, "none", "nodelay" and "no-delay" all
// mean NoDelay.
func ProfileByName(name string) (Profile, error) {
	p, err := netsim.ProfileByName(name)
	if err != nil {
		return Profile{}, err
	}
	return Profile{Name: p.Name, Alpha: p.Alpha, Beta: p.Beta}, nil
}

// MeanLatency returns the distribution mean (α·β) as a duration.
func (p Profile) MeanLatency() time.Duration {
	return p.netsim().MeanLatency()
}

// IsSlow reports whether the profile counts as a "slow network" for
// Heuristic 2 (mean latency of 3 ms and above).
func (p Profile) IsSlow() bool { return p.netsim().IsSlow() }

func (p Profile) netsim() netsim.Profile {
	return netsim.Profile{Name: p.Name, Alpha: p.Alpha, Beta: p.Beta}
}

// JoinOperator selects the engine-level join implementation.
type JoinOperator int

// Join operators.
const (
	// JoinSymmetricHash is the non-blocking adaptive operator (default).
	JoinSymmetricHash JoinOperator = iota
	// JoinNestedLoop is the blocking baseline.
	JoinNestedLoop
	// JoinBind re-invokes the right service once per left binding,
	// strictly sequentially.
	JoinBind
	// JoinBlockBind gathers left bindings into blocks and answers each
	// block with a single multi-seed service request, dispatching several
	// blocks concurrently.
	JoinBlockBind
)

// String names the operator.
func (j JoinOperator) String() string { return j.core().String() }

func (j JoinOperator) core() core.JoinOperator {
	switch j {
	case JoinNestedLoop:
		return core.JoinNestedLoop
	case JoinBind:
		return core.JoinBind
	case JoinBlockBind:
		return core.JoinBlockBind
	default:
		return core.JoinSymmetricHash
	}
}

// JoinOperatorByName resolves a join operator from its CLI/HTTP parameter
// name. The empty string, "hash" and "symmetric-hash" all mean
// JoinSymmetricHash.
func JoinOperatorByName(name string) (JoinOperator, error) {
	switch strings.ToLower(name) {
	case "", "hash", "symmetric-hash":
		return JoinSymmetricHash, nil
	case "nested", "nested-loop":
		return JoinNestedLoop, nil
	case "bind":
		return JoinBind, nil
	case "block-bind", "block":
		return JoinBlockBind, nil
	default:
		return 0, fmt.Errorf("ontario: unknown join operator %q", name)
	}
}

// Optimizer selects the join-ordering and operator-selection strategy.
type Optimizer int

// Optimizers.
const (
	// OptimizerCost orders joins with the statistics-backed cost model and
	// picks the physical operator per join — the default of aware plans.
	OptimizerCost Optimizer = iota
	// OptimizerGreedy is the legacy strategy: order joins greedily by
	// shared-variable count and apply one global join operator (the
	// ablation baseline, and the default of unaware plans).
	OptimizerGreedy
)

// String names the optimizer.
func (o Optimizer) String() string { return o.core().String() }

func (o Optimizer) core() core.OptimizerMode {
	if o == OptimizerGreedy {
		return core.OptimizerGreedy
	}
	return core.OptimizerCost
}

// OptimizerByName resolves an optimizer from its CLI/HTTP parameter name
// ("cost" or "greedy", case-insensitive).
func OptimizerByName(name string) (Optimizer, error) {
	m, err := core.OptimizerByName(name)
	if err != nil {
		return 0, err
	}
	if m == core.OptimizerGreedy {
		return OptimizerGreedy, nil
	}
	return OptimizerCost, nil
}

// Option configures one query execution. Options are order-independent:
// each records a setting, and the engine resolves them all at once when
// the query is planned — the plan mode (aware/unaware/Heuristic 2) is
// applied first, then the overlays (network, optimizer, join operator,
// translation, decomposition), so WithOptimizer works the same before or
// after WithAwarePlan.
type Option func(*config)

type planMode int

const (
	modeDefault planMode = iota // unaware
	modeAware
	modeUnaware
)

type config struct {
	mode       planMode
	heuristic2 bool
	network    Profile
	networkSet bool
	optimizer  *Optimizer
	joinOp     *JoinOperator
	naive      bool
	triples    bool
	bindBlock  int
	bindConc   int
	batchSize  int
	probePar   int
	scale      float64
	seed       int64
	// rowExchange selects the row-at-a-time reference pipeline instead of
	// the default dictionary-encoded columnar exchange. Internal-only (via
	// internal/bridge): kept for equivalence testing and ablation, not part
	// of the public option surface.
	rowExchange bool
	// cluster distributes the execution over a partitioned worker pool.
	// Internal-only (via internal/bridge, wired by cmd/ontario-server's
	// coordinator role). Like scale/seed it is an execution-time setting:
	// it is injected when a query starts, never planned into a cached
	// Prepared, so clustered and single-node runs share plans.
	cluster core.Distributor
}

func newConfig(options []Option) config {
	cfg := config{scale: 1.0, seed: 1}
	for _, o := range options {
		o(&cfg)
	}
	return cfg
}

// resolve computes the planner options: the plan mode fixes the defaults,
// then every explicitly-set overlay is applied on top. The result is the
// same for every permutation of the same option set.
func (c config) resolve() core.Options {
	network := netsim.NoDelay
	if c.networkSet {
		network = c.network.netsim()
	}
	var opts core.Options
	if c.mode == modeAware || c.heuristic2 {
		opts = core.AwareOptions(network)
	} else {
		opts = core.UnawareOptions(network)
	}
	if c.heuristic2 {
		opts.FilterPolicy = core.FilterHeuristic2
	}
	if c.optimizer != nil {
		opts.Optimizer = c.optimizer.core()
	}
	if c.joinOp != nil {
		opts.JoinOperator = c.joinOp.core()
	}
	if c.naive {
		opts.Translation = wrapper.TranslationNaive
	}
	if c.triples {
		opts.Decomposition = core.DecomposeTriples
	}
	opts.BindBlockSize = c.bindBlock
	opts.BindConcurrency = c.bindConc
	opts.BatchSize = c.batchSize
	opts.ProbeParallelism = c.probePar
	opts.RowExchange = c.rowExchange
	return opts
}

// WithAwarePlan selects the physical-design-aware plan: Heuristic 1 join
// pushdown, filters pushed when the attribute is indexed, and the
// cost-based optimizer.
func WithAwarePlan() Option {
	return func(c *config) { c.mode = modeAware }
}

// WithUnawarePlan selects the physical-design-unaware baseline plan.
func WithUnawarePlan() Option {
	return func(c *config) { c.mode = modeUnaware }
}

// WithHeuristic2 applies Heuristic 2 verbatim for filter placement (engine
// level unless the attribute is indexed and the network is slow). It
// implies an aware plan.
func WithHeuristic2() Option {
	return func(c *config) { c.heuristic2 = true }
}

// WithNetwork sets the simulated network profile.
func WithNetwork(p Profile) Option {
	return func(c *config) { c.network, c.networkSet = p, true }
}

// WithOptimizer overrides the plan mode's join-ordering / operator-
// selection strategy (aware plans default to OptimizerCost, unaware plans
// to OptimizerGreedy).
func WithOptimizer(o Optimizer) Option {
	return func(c *config) { c.optimizer = &o }
}

// WithJoinOperator forces one engine-level join implementation for every
// join, instead of the optimizer's per-join choice.
func WithJoinOperator(op JoinOperator) Option {
	return func(c *config) { c.joinOp = &op }
}

// WithNaiveTranslation uses the unoptimized SPARQL-to-SQL translation for
// merged stars (the limitation the paper reports for Ontario).
func WithNaiveTranslation() Option {
	return func(c *config) { c.naive = true }
}

// WithTripleDecomposition decomposes the query into one sub-query per
// triple pattern instead of star-shaped sub-queries.
func WithTripleDecomposition() Option {
	return func(c *config) { c.triples = true }
}

// WithBindBlockSize sets the number of left bindings the block bind join
// gathers into one multi-seed service request (default 16). The block is
// pushed down as a single SQL IN/OR predicate at relational sources and
// evaluated in one graph pass at RDF sources, so each block costs one
// simulated network message instead of one per left binding. A size of 1
// degenerates to per-binding requests.
func WithBindBlockSize(n int) Option {
	return func(c *config) { c.bindBlock = n }
}

// WithBindConcurrency bounds how many block bind-join requests may be in
// flight at once (default 4).
func WithBindConcurrency(n int) Option {
	return func(c *config) { c.bindConc = n }
}

// WithBatchSize sets the number of solution bindings the execution data
// plane packs into one exchange batch (default 256). Operators consume and
// emit whole batches, amortizing per-tuple channel and scheduling costs;
// leaf producers flush a partial batch after a short interval and on
// close, so streaming semantics and time-to-first-answer are preserved. A
// size of 1 degenerates to binding-at-a-time execution (the pre-batching
// behaviour, useful as an ablation baseline).
func WithBatchSize(n int) Option {
	return func(c *config) { c.batchSize = n }
}

// WithProbeParallelism sets the number of morsel-parallel probe workers —
// and hash-table shards — of every symmetric hash join (default derived
// from GOMAXPROCS, capped at 8). Input batches are partitioned by
// join-key hash and each worker owns its shard's hash tables exclusively,
// so insert and probe run lock-free. A value of 1 disables intra-operator
// parallelism.
func WithProbeParallelism(n int) Option {
	return func(c *config) { c.probePar = n }
}

// WithNetworkScale multiplies the real sleeping of the network simulation;
// 0 disables sleeping (sampled delays are still recorded), 1 reproduces
// the sampled delays in real time.
func WithNetworkScale(scale float64) Option {
	return func(c *config) { c.scale = scale }
}

// WithSeed fixes the network simulation's random streams.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}
