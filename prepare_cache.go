package ontario

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// preparedCache memoizes Prepared plans at lake lifetime. Planning is
// deterministic in (query text, resolved plan options, coarse source
// health), and a plan tree is read-only during execution, so one Prepared
// can back every engine over the catalog: a freshly built engine serving
// the same workload starts with the lake's plans — and, because the
// wrapper response cache keys on plan identity, with its decoded
// responses — already warm.
type preparedCache struct {
	mu      sync.RWMutex
	entries map[string]*Prepared
}

// preparedCacheCap bounds the cache; crossing it drops everything (a
// workload with that many distinct plan keys is churn, not reuse).
const preparedCacheCap = 512

func newPreparedCache() *preparedCache {
	return &preparedCache{entries: make(map[string]*Prepared)}
}

func (c *preparedCache) get(key string) *Prepared {
	c.mu.RLock()
	p := c.entries[key]
	c.mu.RUnlock()
	return p
}

func (c *preparedCache) put(key string, p *Prepared) {
	c.mu.Lock()
	if len(c.entries) >= preparedCacheCap {
		clear(c.entries)
	}
	c.entries[key] = p
	c.mu.Unlock()
}

// fingerprint canonically renders every plan-shaping field of the config.
// The execution-time fields (network scale, seed) are excluded: they are
// honored when a prepared plan starts, not when it is planned.
func (c config) fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "m%d|h2=%t", c.mode, c.heuristic2)
	if c.networkSet {
		fmt.Fprintf(&b, "|net=%s:%g:%g", c.network.Name, c.network.Alpha, c.network.Beta)
	}
	if c.optimizer != nil {
		fmt.Fprintf(&b, "|opt=%d", *c.optimizer)
	}
	if c.joinOp != nil {
		fmt.Fprintf(&b, "|join=%d", *c.joinOp)
	}
	fmt.Fprintf(&b, "|naive=%t|triples=%t|bb=%d|bc=%d|bs=%d|pp=%d|rx=%t",
		c.naive, c.triples, c.bindBlock, c.bindConc, c.batchSize, c.probePar, c.rowExchange)
	return b.String()
}

// healthFingerprint buckets the engine's measured per-source health the
// same way the serving layer's plan cache does (failure-inflated latency
// EWMA to a power of two of milliseconds): a plan priced with live
// cost-model gamma is re-planned when a source drifts materially, and
// engines without remote observations share one key.
func (e *Engine) healthFingerprint() string {
	health := e.SourceHealth()
	if len(health) == 0 {
		return ""
	}
	var b strings.Builder
	for _, h := range health {
		if h.Latency <= 0 {
			continue
		}
		ms := float64(h.Latency) / float64(time.Millisecond)
		rate := h.FailureRate
		if rate > 0.9 {
			rate = 0.9
		}
		ms /= 1 - rate
		bucket := 0
		for v := ms; v >= 1; v /= 2 {
			bucket++
		}
		fmt.Fprintf(&b, "|%s:%d", h.Source, bucket)
	}
	return b.String()
}
