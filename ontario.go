// Package ontario is the public facade of Ontario-Go, a federated SPARQL
// query engine for Semantic Data Lakes that optimizes query execution
// plans based on the physical design of the lake — a from-scratch
// reproduction of Rohde & Vidal, "Optimizing Federated Queries Based on
// the Physical Design of a Data Lake" (EDBT 2020).
//
// A data lake is a collection of heterogeneous sources — in-memory RDF
// graphs, relational databases with R2RML-style mappings and declared
// indexes, and custom backends — described by RDF Molecule Templates.
// Lakes are assembled with the ontario/lake package:
//
//	l, err := lake.NewBuilder().
//	    AddTable("hr", lake.TableSpec{...}).
//	    MapClass("hr", lake.ClassMapping{...}).
//	    AddGraph("people", triples).
//	    Build()
//	eng := ontario.New(l)
//
// Queries are SPARQL SELECT queries; the engine decomposes them into
// star-shaped sub-queries, selects sources, and builds either
// physical-design-unaware plans (the baseline: every join and filter
// above the sources) or physical-design-aware plans applying the paper's
// heuristics:
//
//   - Heuristic 1: star-shaped sub-queries over the same relational
//     endpoint are combined into a single SQL query when the join
//     attribute is indexed.
//   - Heuristic 2: filters over relational sources run at the engine
//     unless the filtered attribute is indexed and the network is slow.
//
// Network conditions are simulated per retrieved answer with the paper's
// gamma-distributed latency profiles (Gamma1..Gamma3, or a custom
// GammaProfile).
//
// Results stream through a database/sql-style cursor:
//
//	res, err := eng.Query(ctx, text,
//	    ontario.WithAwarePlan(), ontario.WithNetwork(ontario.Gamma2))
//	if err != nil { ... }
//	defer res.Close()
//	for res.Next() {
//	    b := res.Binding() // ontario.Binding: variable -> ontario.Term
//	}
//	if err := res.Err(); err != nil { ... }
//	st := res.Stats()     // answers, messages, simulated delay, TTFA
//
// The engine is safe for concurrent use: every query runs on an isolated
// execution, and WithSourceLimit bounds in-flight wrapper requests per
// source across all running queries. internal/server exposes an engine as
// a concurrent HTTP SPARQL endpoint with admission control and streaming
// results (see cmd/ontario-server).
package ontario

import (
	"context"
	"fmt"
	"time"

	"ontario/internal/bridge"
	"ontario/internal/core"
	"ontario/internal/sparql"
	"ontario/internal/wrapper"
	"ontario/lake"
)

// Term is an RDF term, the value type of query solutions; it is the
// ontario/lake package's Term. Construct terms with IRI, Literal,
// TypedLiteral, LangLiteral, Integer, Float, Bool and Blank.
type Term = lake.Term

// TermKind enumerates the kinds of RDF terms (lake.KindIRI,
// lake.KindLiteral, lake.KindBlank).
type TermKind = lake.TermKind

// Term kinds.
const (
	KindIRI     = lake.KindIRI
	KindLiteral = lake.KindLiteral
	KindBlank   = lake.KindBlank
)

// Binding is one query solution: a mapping from variable names (without
// the leading "?") to RDF terms.
type Binding = lake.Binding

// IRI returns an IRI term.
func IRI(iri string) Term { return lake.IRI(iri) }

// Literal returns a plain string literal.
func Literal(lex string) Term { return lake.Literal(lex) }

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lex, datatype string) Term { return lake.TypedLiteral(lex, datatype) }

// LangLiteral returns a language-tagged string literal.
func LangLiteral(lex, lang string) Term { return lake.LangLiteral(lex, lang) }

// Integer returns an xsd:integer literal.
func Integer(v int64) Term { return lake.Integer(v) }

// Float returns an xsd:double literal.
func Float(v float64) Term { return lake.Float(v) }

// Bool returns an xsd:boolean literal.
func Bool(v bool) Term { return lake.Bool(v) }

// Blank returns a blank node term.
func Blank(label string) Term { return lake.Blank(label) }

// Engine is a configured query engine over one data lake. It is safe for
// concurrent use: every Query call runs on its own execution (own
// wrappers, own network simulators), so any number of queries may be in
// flight at once.
type Engine struct {
	inner *core.Engine
	lake  *lake.Lake

	// jsonTerms caches the sparql-results+json encoding of terms by
	// dictionary ID across queries. The dictionary lives as long as the
	// lake's catalog and its IDs are stable, so a term crossing the HTTP
	// boundary is marshaled once per lake — shared, like the dictionary
	// itself, by every engine over the same catalog.
	jsonTerms *termJSONCache

	// plans memoizes prepared plans at lake lifetime (see preparedCache).
	plans *preparedCache
}

// EngineOption configures the engine itself (as opposed to Option, which
// configures one query execution).
type EngineOption func(*Engine)

// WithSourceLimit bounds the number of concurrently in-flight wrapper
// requests per source, across all queries running on the engine: a burst
// of bind-join blocks from many concurrent queries queues at the source's
// semaphore instead of stampeding it. n < 1 is treated as 1.
func WithSourceLimit(n int) EngineOption {
	return func(e *Engine) {
		e.inner.Executor.Limiter = wrapper.NewSourceLimiter(n)
	}
}

// New returns an engine over a lake built with the ontario/lake package.
func New(l *lake.Lake, opts ...EngineOption) *Engine {
	cat := bridge.LakeCatalog(l)
	if cat == nil {
		panic("ontario: New requires a lake built with lake.NewBuilder")
	}
	jt := cat.Shared("json.terms", func() any { return newTermJSONCache() }).(*termJSONCache)
	pc := cat.Shared("prepared.plans", func() any { return newPreparedCache() }).(*preparedCache)
	e := &Engine{inner: core.NewEngine(cat), lake: l, jsonTerms: jt, plans: pc}
	for _, o := range opts {
		o(e)
	}
	return e
}

// SourceLimits reports on the per-source in-flight limiter installed with
// WithSourceLimit; it returns nil when the engine is unlimited.
func (e *Engine) SourceLimits() *SourceLimits {
	if e.inner.Executor.Limiter == nil {
		return nil
	}
	return &SourceLimits{lim: e.inner.Executor.Limiter}
}

// SourceLimits exposes the state of the engine's per-source in-flight
// limiter.
type SourceLimits struct {
	lim *wrapper.SourceLimiter
}

// Limit returns the per-source in-flight limit.
func (s *SourceLimits) Limit() int { return s.lim.Limit() }

// Sources returns the IDs of the sources that have seen requests.
func (s *SourceLimits) Sources() []string { return s.lim.Sources() }

// InFlight returns the source's current in-flight request count.
func (s *SourceLimits) InFlight(source string) int { return s.lim.InFlight(source) }

// Peak returns the source's highest observed in-flight request count.
func (s *SourceLimits) Peak(source string) int { return s.lim.Peak(source) }

// Query parses, plans and starts a SPARQL query, returning a streaming
// cursor over its solutions. Cancelling ctx aborts the execution: wrappers
// stop issuing requests and Next returns false with Err reporting the
// cancellation. Planning goes through the lake's prepared-plan cache, so
// a repeated query skips parsing and planning (see Prepare).
func (e *Engine) Query(ctx context.Context, queryText string, options ...Option) (*Results, error) {
	prep, err := e.Prepare(queryText, options...)
	if err != nil {
		return nil, err
	}
	return e.start(ctx, prep.plan, newConfig(options))
}

// planOptions resolves the query options and wires in the engine's health
// registry, so the cost model prices remote sources by their measured
// latency and failure rate instead of the static network profile.
func (e *Engine) planOptions(cfg config) core.Options {
	opts := cfg.resolve()
	if h := e.inner.Executor.Health; h != nil {
		opts.MeasuredLatency = h.MeasuredLatency
	}
	return opts
}

func (e *Engine) start(ctx context.Context, plan *core.Plan, cfg config) (*Results, error) {
	if cfg.cluster != nil {
		// Distributed execution is injected per start, not per plan: the
		// prepared-plan cache outlives any one coordinator's worker pool,
		// so embedding the distributor in a cached plan would leak stale
		// clients across engines. A shallow copy keeps the shared plan
		// tree read-only.
		p2 := *plan
		p2.Opts.Cluster = cfg.cluster
		plan = &p2
	}
	ctx, cancel := context.WithCancel(ctx)
	exec := e.inner.Executor.NewExecution(cfg.scale, cfg.seed)
	start := time.Now()
	if plan.Opts.RowExchange {
		stream, err := exec.Execute(ctx, plan)
		if err != nil {
			cancel()
			return nil, err
		}
		return newResults(ctx, cancel, plan, exec, stream, start), nil
	}
	// The default data plane: terms are interned into dictionary IDs at
	// the wrapper boundary and only columnar ID batches flow between
	// operators; the cursor materializes terms on delivery.
	cs, d, err := exec.ExecuteColumnar(ctx, plan)
	if err != nil {
		cancel()
		return nil, err
	}
	r := newColumnarResults(ctx, cancel, plan, exec, cs, d, start)
	r.jsonCache = e.jsonTerms
	return r, nil
}

// Prepared is a planned query ready for repeated execution. The plan tree
// is read-only during execution, so one Prepared may back any number of
// concurrent QueryPrepared calls — the unit a server-side plan cache
// stores.
type Prepared struct {
	plan *core.Plan
}

// Explain renders the prepared plan (with cost estimates under the cost
// optimizer).
func (p *Prepared) Explain() string { return p.plan.Explain() }

// Summary returns the prepared plan as a public summary tree.
func (p *Prepared) Summary() *PlanSummary { return summarize(p.plan.Root) }

// Prepare parses and plans a query without executing it. All plan-shaping
// options (mode, network, optimizer, join operator, ...) are fixed at
// Prepare time. Plans are memoized at lake lifetime: a repeated Prepare —
// same query text, same plan options, source health in the same coarse
// bucket — returns the lake's cached Prepared instead of planning again.
func (e *Engine) Prepare(queryText string, options ...Option) (*Prepared, error) {
	cfg := newConfig(options)
	key := queryText + "\x00" + cfg.fingerprint() + "\x00" + e.healthFingerprint()
	if p := e.plans.get(key); p != nil {
		return p, nil
	}
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, err
	}
	plan, err := e.inner.Planner.Plan(q, e.planOptions(cfg))
	if err != nil {
		return nil, err
	}
	p := &Prepared{plan: plan}
	e.plans.put(key, p)
	return p, nil
}

// QueryPrepared starts a prepared query on its own execution, skipping
// parsing and planning. Only the execution-time options (WithNetworkScale,
// WithSeed) are honored; the plan — including its network profile — was
// fixed at Prepare time.
func (e *Engine) QueryPrepared(ctx context.Context, prep *Prepared, options ...Option) (*Results, error) {
	if prep == nil || prep.plan == nil {
		return nil, fmt.Errorf("ontario: QueryPrepared on an empty Prepared")
	}
	return e.start(ctx, prep.plan, newConfig(options))
}

// Explain plans the query without executing it and returns the rendered
// plan, including the cost model's estimates under the cost optimizer.
func (e *Engine) Explain(queryText string, options ...Option) (string, error) {
	prep, err := e.Prepare(queryText, options...)
	if err != nil {
		return "", err
	}
	return prep.Explain(), nil
}
