// Package ontario is the public facade of Ontario-Go, a federated SPARQL
// query engine for Semantic Data Lakes that optimizes query execution plans
// based on the physical design of the lake — a from-scratch reproduction of
// Rohde & Vidal, "Optimizing Federated Queries Based on the Physical Design
// of a Data Lake" (EDBT 2020).
//
// A data lake is a collection of heterogeneous sources (in-memory RDF
// graphs and relational databases with R2RML-style mappings) described by
// RDF Molecule Templates. Queries are SPARQL SELECT queries; the engine
// decomposes them into star-shaped sub-queries, selects sources, and builds
// either physical-design-unaware plans (the baseline: every join and filter
// above the sources) or physical-design-aware plans applying the paper's
// heuristics:
//
//   - Heuristic 1: star-shaped sub-queries over the same relational
//     endpoint are combined into a single SQL query when the join
//     attribute is indexed.
//   - Heuristic 2: filters over relational sources run at the engine
//     unless the filtered attribute is indexed and the network is slow.
//
// Network conditions are simulated per retrieved answer with the paper's
// gamma-distributed latency profiles (netsim).
//
// Engine-level joins default to the non-blocking symmetric hash join;
// dependent joins are available as the strictly sequential bind join
// (core.JoinBind) and the batched block bind join (core.JoinBlockBind),
// which gathers left bindings into blocks of WithBindBlockSize, answers
// each block with a single multi-seed wrapper request — pushed down as an
// IN/OR predicate at relational sources, one graph pass at RDF sources —
// and keeps up to WithBindConcurrency block requests in flight. When the
// join operator is core.JoinBind, the planner upgrades a join to the block
// variant automatically whenever the left input's estimated cardinality
// fills at least one block.
//
// The engine is safe for concurrent use: every query runs on an isolated
// execution, and WithSourceLimit bounds in-flight wrapper requests per
// source across all running queries. internal/server exposes an engine as
// a concurrent HTTP SPARQL endpoint with admission control and streaming
// results (see cmd/ontario-server).
//
// Minimal usage:
//
//	lake, _ := lslod.BuildLake(lslod.DefaultScale(), 1)
//	eng := ontario.New(lake.Catalog)
//	res, _ := eng.Query(ctx, `SELECT ?s WHERE { ... }`,
//	    ontario.WithAwarePlan(), ontario.WithNetwork(netsim.Gamma2))
//	for _, b := range res.Answers { ... }
package ontario

import (
	"context"
	"fmt"
	"time"

	"ontario/internal/catalog"
	"ontario/internal/core"
	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/sparql"
	"ontario/internal/trace"
	"ontario/internal/wrapper"
)

// Engine is a configured query engine over one data-lake catalog. It is
// safe for concurrent use: every Query/QueryParsed/QueryStream call runs
// on its own core.Execution (own wrappers, own network simulators), so any
// number of queries may be in flight at once.
type Engine struct {
	inner *core.Engine
}

// EngineOption configures the engine itself (as opposed to Option, which
// configures one query execution).
type EngineOption func(*Engine)

// WithSourceLimit bounds the number of concurrently in-flight wrapper
// requests per source, across all queries running on the engine: a burst
// of bind-join blocks from many concurrent queries queues at the source's
// semaphore instead of stampeding it. n < 1 is treated as 1.
func WithSourceLimit(n int) EngineOption {
	return func(e *Engine) {
		e.inner.Executor.Limiter = wrapper.NewSourceLimiter(n)
	}
}

// New returns an engine over the catalog.
func New(cat *catalog.Catalog, opts ...EngineOption) *Engine {
	e := &Engine{inner: core.NewEngine(cat)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// SourceLimiter returns the per-source in-flight limiter installed with
// WithSourceLimit, or nil when the engine is unlimited.
func (e *Engine) SourceLimiter() *wrapper.SourceLimiter {
	return e.inner.Executor.Limiter
}

// Option configures one query execution.
type Option func(*config)

type config struct {
	opts  core.Options
	scale float64
	seed  int64
}

// WithAwarePlan selects the physical-design-aware plan (Heuristic 1 join
// pushdown, filters pushed when the attribute is indexed).
func WithAwarePlan() Option {
	return func(c *config) {
		aware := core.AwareOptions(c.opts.Network)
		aware.Translation = c.opts.Translation
		aware.JoinOperator = c.opts.JoinOperator
		aware.Decomposition = c.opts.Decomposition
		aware.BindBlockSize = c.opts.BindBlockSize
		aware.BindConcurrency = c.opts.BindConcurrency
		c.opts = aware
	}
}

// WithUnawarePlan selects the physical-design-unaware baseline plan.
func WithUnawarePlan() Option {
	return func(c *config) {
		un := core.UnawareOptions(c.opts.Network)
		un.Translation = c.opts.Translation
		un.JoinOperator = c.opts.JoinOperator
		un.Decomposition = c.opts.Decomposition
		un.BindBlockSize = c.opts.BindBlockSize
		un.BindConcurrency = c.opts.BindConcurrency
		c.opts = un
	}
}

// WithNetwork sets the simulated network profile.
func WithNetwork(p netsim.Profile) Option {
	return func(c *config) { c.opts.Network = p }
}

// WithHeuristic2 applies Heuristic 2 verbatim for filter placement (engine
// level unless the attribute is indexed and the network is slow). Implies
// an aware plan.
func WithHeuristic2() Option {
	return func(c *config) {
		c.opts.Aware = true
		c.opts.FilterPolicy = core.FilterHeuristic2
	}
}

// WithNaiveTranslation uses the unoptimized SPARQL-to-SQL translation for
// merged stars (the limitation the paper reports for Ontario).
func WithNaiveTranslation() Option {
	return func(c *config) { c.opts.Translation = wrapper.TranslationNaive }
}

// WithJoinOperator selects the engine-level join implementation.
func WithJoinOperator(op core.JoinOperator) Option {
	return func(c *config) { c.opts.JoinOperator = op }
}

// WithBindBlockSize sets the number of left bindings the block bind join
// gathers into one multi-seed service request (default
// core.DefaultBindBlockSize). The block is pushed down as a single SQL
// IN/OR predicate at relational sources and evaluated in one graph pass at
// RDF sources, so each block costs one simulated network message instead
// of one per left binding. A size of 1 degenerates to per-binding
// requests. The planner picks the block variant automatically when a bind
// join's left input is estimated to fill at least one block; combine with
// WithJoinOperator(core.JoinBlockBind) to force it.
func WithBindBlockSize(n int) Option {
	return func(c *config) { c.opts.BindBlockSize = n }
}

// WithBindConcurrency bounds how many block bind-join requests may be in
// flight at once (default core.DefaultBindConcurrency). Higher values
// overlap the per-block network latency at the cost of more concurrent
// load on the source.
func WithBindConcurrency(n int) Option {
	return func(c *config) { c.opts.BindConcurrency = n }
}

// WithTripleDecomposition decomposes the query into one sub-query per
// triple pattern instead of star-shaped sub-queries (the alternative the
// paper's future work proposes to study).
func WithTripleDecomposition() Option {
	return func(c *config) { c.opts.Decomposition = core.DecomposeTriples }
}

// WithOptimizer selects the join-ordering / operator-selection strategy:
// core.OptimizerCost (the statistics-backed cost model, the default of
// aware plans) or core.OptimizerGreedy (the legacy shared-variable
// ordering with one global operator, kept as the ablation baseline). Apply
// it after WithAwarePlan/WithUnawarePlan, which reset the mode to their
// respective defaults.
func WithOptimizer(mode core.OptimizerMode) Option {
	return func(c *config) { c.opts.Optimizer = mode }
}

// WithNetworkScale multiplies the real sleeping of the network simulation;
// 0 disables sleeping (sampled delays are still recorded), 1 reproduces the
// sampled delays in real time.
func WithNetworkScale(scale float64) Option {
	return func(c *config) { c.scale = scale }
}

// WithSeed fixes the network simulation's random streams.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// Result is a completed query execution.
type Result struct {
	// Answers are the solution bindings in arrival order.
	Answers []sparql.Binding
	// Variables are the projected variable names.
	Variables []string
	// Plan is the executed query execution plan.
	Plan *core.Plan
	// Trace is the answer trace (arrival time of every answer).
	Trace *trace.Trace
	// Messages is the number of simulated network messages.
	Messages int
	// SimulatedDelay is the total sampled network latency.
	SimulatedDelay time.Duration
}

// ExecutionTime returns the wall-clock execution time.
func (r *Result) ExecutionTime() time.Duration { return r.Trace.Total }

// TimeToFirstAnswer returns the arrival time of the first answer.
func (r *Result) TimeToFirstAnswer() time.Duration { return r.Trace.TimeToFirst() }

// Query parses and runs a SPARQL query, draining the answer stream.
func (e *Engine) Query(ctx context.Context, queryText string, options ...Option) (*Result, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, err
	}
	return e.QueryParsed(ctx, q, options...)
}

// QueryParsed runs an already-parsed query on its own execution, so
// concurrent calls never share mutable state.
func (e *Engine) QueryParsed(ctx context.Context, q *sparql.Query, options ...Option) (*Result, error) {
	run, err := e.QueryStreamParsed(ctx, q, options...)
	if err != nil {
		return nil, err
	}
	tr := trace.CollectAnswers(planLabel(run.Plan), run.Start, run.stream)
	return &Result{
		Answers:        tr.Answers,
		Variables:      run.Variables,
		Plan:           run.Plan,
		Trace:          tr,
		Messages:       run.Messages(),
		SimulatedDelay: run.SimulatedDelay(),
	}, nil
}

// RunningQuery is an in-flight query execution handed out by QueryStream:
// the answers arrive on Answers() as the executor produces them, so the
// caller can forward the first solution before the query completes. The
// accounting accessors (Messages, SimulatedDelay, SourceDelays,
// SourceMessages) reflect the messages retrieved so far and are final once
// the answer channel closes.
type RunningQuery struct {
	// Variables are the projected variable names.
	Variables []string
	// Plan is the executing query execution plan.
	Plan *core.Plan
	// Start is when execution began.
	Start time.Time

	exec   *core.Execution
	stream *engine.Stream
}

// Answers streams the solution bindings in arrival order. The channel
// closes when the query completes or its context is cancelled.
func (r *RunningQuery) Answers() <-chan sparql.Binding { return r.stream.Chan() }

// Messages returns the number of simulated network messages retrieved so
// far.
func (r *RunningQuery) Messages() int { return r.exec.Messages() }

// SimulatedDelay returns the total sampled network latency so far.
func (r *RunningQuery) SimulatedDelay() time.Duration { return r.exec.SimulatedDelay() }

// SourceDelays returns the sampled network latency per contacted source.
func (r *RunningQuery) SourceDelays() map[string]time.Duration { return r.exec.SourceDelays() }

// SourceMessages returns the simulated message count per contacted source.
func (r *RunningQuery) SourceMessages() map[string]int { return r.exec.SourceMessages() }

// QueryStream parses and starts a SPARQL query, returning the running
// execution without draining it. Cancelling ctx aborts the execution:
// wrappers stop issuing requests and the answer channel closes.
func (e *Engine) QueryStream(ctx context.Context, queryText string, options ...Option) (*RunningQuery, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, err
	}
	return e.QueryStreamParsed(ctx, q, options...)
}

// QueryStreamParsed starts an already-parsed query, returning the running
// execution without draining it.
func (e *Engine) QueryStreamParsed(ctx context.Context, q *sparql.Query, options ...Option) (*RunningQuery, error) {
	cfg := newConfig(options)
	plan, err := e.inner.Planner.Plan(q, cfg.opts)
	if err != nil {
		return nil, err
	}
	return e.startExecution(ctx, plan, cfg)
}

func newConfig(options []Option) config {
	cfg := config{opts: core.UnawareOptions(netsim.NoDelay), scale: 1.0, seed: 1}
	for _, o := range options {
		o(&cfg)
	}
	return cfg
}

func (e *Engine) startExecution(ctx context.Context, plan *core.Plan, cfg config) (*RunningQuery, error) {
	exec := e.inner.Executor.NewExecution(cfg.scale, cfg.seed)
	start := time.Now()
	stream, err := exec.Execute(ctx, plan)
	if err != nil {
		return nil, err
	}
	return &RunningQuery{
		Variables: plan.Query.ProjectedVars(),
		Plan:      plan,
		Start:     start,
		exec:      exec,
		stream:    stream,
	}, nil
}

// Prepared is a planned query ready for repeated execution. The plan tree
// is read-only during execution, so one Prepared may back any number of
// concurrent StreamPrepared calls — the unit a server-side plan cache
// stores.
type Prepared struct {
	plan *core.Plan
}

// Plan exposes the prepared execution plan.
func (p *Prepared) Plan() *core.Plan { return p.plan }

// Explain renders the prepared plan (with cost estimates under the cost
// optimizer).
func (p *Prepared) Explain() string { return p.plan.Explain() }

// Prepare parses and plans a query without executing it. All plan-shaping
// options (mode, network, optimizer, join operator, ...) are fixed at
// Prepare time.
func (e *Engine) Prepare(queryText string, options ...Option) (*Prepared, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, err
	}
	cfg := newConfig(options)
	plan, err := e.inner.Planner.Plan(q, cfg.opts)
	if err != nil {
		return nil, err
	}
	return &Prepared{plan: plan}, nil
}

// StreamPrepared starts a prepared query on its own execution, skipping
// parsing and planning. Only the execution-time options (WithNetworkScale,
// WithSeed) are honored; the plan — including its network profile — was
// fixed at Prepare time.
func (e *Engine) StreamPrepared(ctx context.Context, prep *Prepared, options ...Option) (*RunningQuery, error) {
	return e.startExecution(ctx, prep.plan, newConfig(options))
}

// Explain plans the query without executing it and returns the rendered
// plan, including the cost model's estimates under the cost optimizer.
func (e *Engine) Explain(queryText string, options ...Option) (string, error) {
	prep, err := e.Prepare(queryText, options...)
	if err != nil {
		return "", err
	}
	return prep.Explain(), nil
}

func planLabel(p *core.Plan) string {
	mode := "unaware"
	if p.Opts.Aware {
		mode = "aware"
	}
	return fmt.Sprintf("%s/%s", mode, p.Opts.Network.Name)
}
