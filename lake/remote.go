package lake

import (
	"context"
	dbsql "database/sql"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// AddSPARQLEndpoint registers a live remote SPARQL-protocol endpoint —
// typically another ontario-server node — as a federation source. url is
// the query URL (e.g. "http://host:1234/sparql"); molecules describe the
// classes the endpoint answers (their Sources field is overridden with
// sourceID). Obtain them from DiscoverMolecules when the endpoint is an
// ontario-server, or declare them by hand. Remote sources run under the
// engine's resilience policy (ontario.WithResilience).
func (b *Builder) AddSPARQLEndpoint(sourceID, url string, molecules ...Molecule) *Builder {
	if !b.track(sourceID, "sparql-endpoint") {
		return b
	}
	if url == "" {
		return b.errf("lake: endpoint source %s has empty URL", sourceID)
	}
	if prev, ok := b.endpoints[sourceID]; ok && prev != url {
		return b.errf("lake: endpoint source %s registered with two URLs", sourceID)
	}
	b.endpoints[sourceID] = url
	for _, m := range molecules {
		m.Sources = []string{sourceID}
		b.explicit = append(b.explicit, m)
	}
	return b
}

// AddSQLDatabase backs the relational source sourceID with a live
// database/sql connection: the tables declared with AddTable provide the
// schema the SPARQL-to-SQL translation plans against (their Rows are
// ignored), MapClass provides the mappings, and the generated SQL executes
// on db under the engine's resilience policy.
func (b *Builder) AddSQLDatabase(sourceID string, db *dbsql.DB) *Builder {
	if !b.track(sourceID, "relational") {
		return b
	}
	if db == nil {
		return b.errf("lake: AddSQLDatabase(%s, nil)", sourceID)
	}
	if _, dup := b.sqldbs[sourceID]; dup {
		return b.errf("lake: source %s given two connections", sourceID)
	}
	b.sqldbs[sourceID] = db
	return b
}

// moleculeDoc is the JSON shape of one molecule on an ontario-server's
// /molecules endpoint.
type moleculeDoc struct {
	Class      string `json:"class"`
	Predicates []struct {
		IRI         string `json:"iri"`
		LinkedClass string `json:"linked_class,omitempty"`
	} `json:"predicates"`
	Sources []string `json:"sources,omitempty"`
}

// DiscoverMolecules fetches the molecule templates an ontario-server node
// advertises on its /molecules endpoint. baseURL is the server root (e.g.
// "http://host:1234"); pass the result to AddSPARQLEndpoint.
func DiscoverMolecules(ctx context.Context, baseURL string) ([]Molecule, error) {
	url := strings.TrimRight(baseURL, "/") + "/molecules"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("lake: discovering molecules: %w", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("lake: discovering molecules: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("lake: discovering molecules: %s returned HTTP %d: %s",
			url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var docs []moleculeDoc
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		return nil, fmt.Errorf("lake: decoding molecules from %s: %w", url, err)
	}
	out := make([]Molecule, 0, len(docs))
	for _, d := range docs {
		m := Molecule{Class: d.Class, Sources: append([]string(nil), d.Sources...)}
		for _, p := range d.Predicates {
			m.Predicates = append(m.Predicates, Predicate{IRI: p.IRI, LinkedClass: p.LinkedClass})
		}
		out = append(out, m)
	}
	return out, nil
}
