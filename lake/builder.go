// Package lake builds Semantic Data Lakes for the ontario query engine:
// heterogeneous collections of sources — in-memory RDF graphs, relational
// tables with R2RML-style mappings and declared indexes, and custom
// backends implementing the Source interface — described by RDF Molecule
// Templates for source selection.
//
// A lake is assembled with a Builder:
//
//	l, err := lake.NewBuilder().
//	    AddGraph("people", triples).
//	    AddTable("hr", lake.TableSpec{...}).
//	    MapClass("hr", lake.ClassMapping{...}).
//	    AddSource(myCSVSource).
//	    Build()
//	eng := ontario.New(l)
//
// Molecule templates are derived automatically from the registered graphs
// and table mappings; AddMolecule declares them explicitly when the
// derivation cannot see a link (custom sources' molecules come from their
// Molecules method).
package lake

import (
	dbsql "database/sql"
	"fmt"
	"io"
	"sort"

	"ontario/internal/catalog"
	"ontario/internal/rdb"
	"ontario/internal/rdf"
)

// ColumnType enumerates relational column types.
type ColumnType int

// Column types.
const (
	TypeInt ColumnType = iota
	TypeFloat
	TypeString
	TypeBool
)

// String names the type.
func (t ColumnType) String() string { return rdbType(t).String() }

func rdbType(t ColumnType) rdb.Type {
	switch t {
	case TypeInt:
		return rdb.TypeInt
	case TypeFloat:
		return rdb.TypeFloat
	case TypeBool:
		return rdb.TypeBool
	default:
		return rdb.TypeString
	}
}

// Column declares one table column.
type Column struct {
	Name string
	Type ColumnType
	// NotNull marks the column as non-nullable.
	NotNull bool
}

// IndexKind enumerates secondary index representations.
type IndexKind int

// Index kinds.
const (
	// HashIndex is an equality-only hash index.
	HashIndex IndexKind = iota
	// BTreeIndex is an ordered index also serving range predicates.
	BTreeIndex
)

// Index declares a single-column secondary index — the physical-design
// metadata the engine's heuristics and cost model exploit.
type Index struct {
	Column string
	Kind   IndexKind
	Unique bool
}

// TableSpec declares one relational table with its rows. Row values are
// native Go values per column: int/int64 (Int), float64 (Float), string
// (String), bool (Bool); nil is NULL.
type TableSpec struct {
	Name       string
	Columns    []Column
	PrimaryKey string
	Rows       [][]any
	Indexes    []Index
}

// PropertyMapping maps one RDF predicate of a class to relational storage.
// Exactly one of Column or (JoinTable, JoinFK, ValueColumn) is set: a
// direct attribute on the class's base table, or a normalized side table
// whose JoinFK references the base table's subject column and whose
// ValueColumn holds the value.
type PropertyMapping struct {
	Predicate string
	// Column is the direct attribute on the base table.
	Column string
	// JoinTable/JoinFK/ValueColumn describe a side-table property.
	JoinTable   string
	JoinFK      string
	ValueColumn string
	// ObjectTemplate, when non-empty, renders the stored value into an IRI
	// ("...{value}..."), marking the object as a resource rather than a
	// literal; ObjectClass optionally names that resource's class (it
	// becomes the molecule's link).
	ObjectTemplate string
	ObjectClass    string
}

// ClassMapping maps one RDF class onto a relational star rooted at Table —
// the R2RML-style transformation record of the paper.
type ClassMapping struct {
	// Class is the mapped class IRI.
	Class string
	// Table is the base table.
	Table string
	// SubjectColumn identifies the subject: the primary key for normalized
	// layouts, a repeated column for denormalized ones. Empty defaults to
	// the table's primary key.
	SubjectColumn string
	// SubjectTemplate renders a key into the subject IRI, e.g.
	// "http://lake/hr/employee/{value}".
	SubjectTemplate string
	// Denormalized marks a non-3NF wide-table layout: the subject column
	// repeats across rows and wrappers de-duplicate to recover RDF set
	// semantics.
	Denormalized bool
	Properties   []PropertyMapping
}

// Builder assembles a Lake. Methods record declarations and defer all
// validation to Build, so they chain without per-call error handling.
type Builder struct {
	order     []string // source IDs in registration order
	graphs    map[string]*rdf.Graph
	tables    map[string][]TableSpec
	mappings  map[string][]ClassMapping
	customs   map[string]Source
	endpoints map[string]string    // remote SPARQL endpoints by source ID
	sqldbs    map[string]*dbsql.DB // live connections backing relational sources
	explicit  []Molecule
	errs      []error
}

// NewBuilder returns an empty lake builder.
func NewBuilder() *Builder {
	return &Builder{
		graphs:    make(map[string]*rdf.Graph),
		tables:    make(map[string][]TableSpec),
		mappings:  make(map[string][]ClassMapping),
		customs:   make(map[string]Source),
		endpoints: make(map[string]string),
		sqldbs:    make(map[string]*dbsql.DB),
	}
}

func (b *Builder) errf(format string, args ...any) *Builder {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	return b
}

// track registers the source ID the first time it is seen and checks the
// ID names at most one kind of source.
func (b *Builder) track(id string, kind string) bool {
	if id == "" {
		b.errf("lake: %s source has empty ID", kind)
		return false
	}
	_, g := b.graphs[id]
	_, t := b.tables[id]
	_, c := b.customs[id]
	_, e := b.endpoints[id]
	if !g && !t && !c && !e {
		b.order = append(b.order, id)
		return true
	}
	switch {
	case g && kind != "graph", t && kind != "relational", c && kind != "custom", e && kind != "sparql-endpoint":
		b.errf("lake: source %s registered as more than one kind", id)
		return false
	}
	return true
}

// AddGraph registers (or extends) an in-memory RDF graph source with the
// given triples.
func (b *Builder) AddGraph(sourceID string, triples []Triple) *Builder {
	if !b.track(sourceID, "graph") {
		return b
	}
	g := b.graphs[sourceID]
	if g == nil {
		g = rdf.NewGraph()
		b.graphs[sourceID] = g
	}
	for _, t := range triples {
		g.Add(rdf.Triple{S: termToRDF(t.S), P: termToRDF(t.P), O: termToRDF(t.O)})
	}
	return b
}

// AddGraphNTriples registers (or extends) an in-memory RDF graph source
// from an N-Triples stream.
func (b *Builder) AddGraphNTriples(sourceID string, r io.Reader) *Builder {
	if !b.track(sourceID, "graph") {
		return b
	}
	triples, err := rdf.ParseNTriples(r)
	if err != nil {
		return b.errf("lake: source %s: %w", sourceID, err)
	}
	g := b.graphs[sourceID]
	if g == nil {
		g = rdf.NewGraph()
		b.graphs[sourceID] = g
	}
	for _, t := range triples {
		g.Add(t)
	}
	return b
}

// AddTable declares one table of a relational source, creating the source
// on first use. Tables of one source share a database and can serve merged
// (pushed-down) star joins.
func (b *Builder) AddTable(sourceID string, t TableSpec) *Builder {
	if !b.track(sourceID, "relational") {
		return b
	}
	b.tables[sourceID] = append(b.tables[sourceID], t)
	return b
}

// MapClass maps an RDF class onto tables of the relational source declared
// with AddTable.
func (b *Builder) MapClass(sourceID string, cm ClassMapping) *Builder {
	if !b.track(sourceID, "relational") {
		return b
	}
	b.mappings[sourceID] = append(b.mappings[sourceID], cm)
	return b
}

// AddSource registers a custom backend. Its molecule templates come from
// its Molecules method.
func (b *Builder) AddSource(s Source) *Builder {
	if s == nil {
		return b.errf("lake: AddSource(nil)")
	}
	id := s.ID()
	if _, dup := b.customs[id]; dup {
		return b.errf("lake: custom source %s registered twice", id)
	}
	if !b.track(id, "custom") {
		return b
	}
	b.customs[id] = s
	return b
}

// AddMolecule registers a molecule template explicitly, merging with any
// derived one for the same class. Use it to declare links the automatic
// derivation cannot see (e.g. a predicate whose objects live in another
// source); explicit predicates take precedence over derived ones.
func (b *Builder) AddMolecule(m Molecule) *Builder {
	b.explicit = append(b.explicit, m)
	return b
}

// Build validates the declarations, assembles the sources, derives the
// molecule templates and returns the lake.
func (b *Builder) Build() (*Lake, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.order) == 0 {
		return nil, fmt.Errorf("lake: no sources registered")
	}
	cat := catalog.New()
	for _, id := range b.order {
		src, err := b.buildSource(id)
		if err != nil {
			return nil, err
		}
		if err := cat.AddSource(src); err != nil {
			return nil, err
		}
	}
	// Explicit molecules first: on a predicate collision, the first
	// registration's link metadata wins.
	for _, m := range b.explicit {
		for _, s := range m.Sources {
			if cat.Source(s) == nil {
				return nil, fmt.Errorf("lake: molecule %s names unknown source %s", m.Class, s)
			}
		}
		cat.AddMT(moleculeToMT(m))
	}
	for _, id := range b.order {
		for _, m := range b.deriveMolecules(id, cat) {
			cat.AddMT(moleculeToMT(m))
		}
	}
	return &Lake{cat: cat}, nil
}

func (b *Builder) buildSource(id string) (*catalog.Source, error) {
	if g, ok := b.graphs[id]; ok {
		return &catalog.Source{ID: id, Model: catalog.ModelRDF, Graph: g}, nil
	}
	if s, ok := b.customs[id]; ok {
		return &catalog.Source{ID: id, Model: catalog.ModelCustom, External: externalAdapter{src: s}}, nil
	}
	if url, ok := b.endpoints[id]; ok {
		return &catalog.Source{ID: id, Model: catalog.ModelSPARQLEndpoint, Endpoint: url}, nil
	}
	specs := b.tables[id]
	if len(specs) == 0 {
		return nil, fmt.Errorf("lake: relational source %s has mappings but no tables", id)
	}
	db := rdb.NewDatabase(id)
	for _, spec := range specs {
		if err := buildTable(db, spec); err != nil {
			return nil, fmt.Errorf("lake: source %s: %w", id, err)
		}
	}
	mappings := make(map[string]*catalog.ClassMapping, len(b.mappings[id]))
	for _, cm := range b.mappings[id] {
		converted, err := classMappingToInternal(db, cm)
		if err != nil {
			return nil, fmt.Errorf("lake: source %s: %w", id, err)
		}
		if _, dup := mappings[cm.Class]; dup {
			return nil, fmt.Errorf("lake: source %s maps class %s twice", id, cm.Class)
		}
		mappings[cm.Class] = converted
	}
	if conn, ok := b.sqldbs[id]; ok {
		// A live connection executes the generated SQL; the rdb database
		// carries only the schema for the translation (declared rows, if
		// any, are planning stand-ins and never queried).
		return &catalog.Source{ID: id, Model: catalog.ModelSQLDatabase, DB: db, SQLDB: conn, Mappings: mappings}, nil
	}
	return &catalog.Source{ID: id, Model: catalog.ModelRelational, DB: db, Mappings: mappings}, nil
}

func buildTable(db *rdb.Database, spec TableSpec) error {
	schema := &rdb.Schema{Name: spec.Name, PrimaryKey: spec.PrimaryKey}
	for _, c := range spec.Columns {
		schema.Columns = append(schema.Columns, rdb.Column{Name: c.Name, Type: rdbType(c.Type), NotNull: c.NotNull})
	}
	t, err := db.CreateTable(schema)
	if err != nil {
		return err
	}
	for ri, row := range spec.Rows {
		if len(row) != len(spec.Columns) {
			return fmt.Errorf("table %s row %d has %d values, want %d", spec.Name, ri, len(row), len(spec.Columns))
		}
		r := make(rdb.Row, len(row))
		for ci, v := range row {
			val, err := toValue(v, rdbType(spec.Columns[ci].Type))
			if err != nil {
				return fmt.Errorf("table %s row %d column %s: %w", spec.Name, ri, spec.Columns[ci].Name, err)
			}
			r[ci] = val
		}
		if err := t.Insert(r); err != nil {
			return fmt.Errorf("table %s row %d: %w", spec.Name, ri, err)
		}
	}
	for _, ix := range spec.Indexes {
		kind := rdb.IndexHash
		if ix.Kind == BTreeIndex {
			kind = rdb.IndexBTree
		}
		if err := t.CreateIndex(rdb.IndexSpec{Column: ix.Column, Kind: kind, Unique: ix.Unique}); err != nil {
			return err
		}
	}
	return nil
}

// toValue coerces a native Go value to a typed SQL value.
func toValue(v any, t rdb.Type) (rdb.Value, error) {
	if v == nil {
		return rdb.NullValue(t), nil
	}
	switch t {
	case rdb.TypeInt:
		switch n := v.(type) {
		case int:
			return rdb.IntValue(int64(n)), nil
		case int64:
			return rdb.IntValue(n), nil
		case int32:
			return rdb.IntValue(int64(n)), nil
		}
	case rdb.TypeFloat:
		switch n := v.(type) {
		case float64:
			return rdb.FloatValue(n), nil
		case float32:
			return rdb.FloatValue(float64(n)), nil
		case int:
			return rdb.FloatValue(float64(n)), nil
		case int64:
			return rdb.FloatValue(float64(n)), nil
		}
	case rdb.TypeString:
		if s, ok := v.(string); ok {
			return rdb.StringValue(s), nil
		}
	case rdb.TypeBool:
		if bv, ok := v.(bool); ok {
			return rdb.BoolValue(bv), nil
		}
	}
	return rdb.Value{}, fmt.Errorf("cannot store %T as %s", v, t)
}

func classMappingToInternal(db *rdb.Database, cm ClassMapping) (*catalog.ClassMapping, error) {
	if cm.Class == "" || cm.Table == "" {
		return nil, fmt.Errorf("class mapping needs Class and Table (got %q, %q)", cm.Class, cm.Table)
	}
	subject := cm.SubjectColumn
	if subject == "" {
		t := db.Table(cm.Table)
		if t == nil {
			return nil, fmt.Errorf("class %s maps to unknown table %s", cm.Class, cm.Table)
		}
		subject = t.Schema.PrimaryKey
	}
	out := &catalog.ClassMapping{
		Class:           cm.Class,
		Table:           cm.Table,
		SubjectColumn:   subject,
		SubjectTemplate: cm.SubjectTemplate,
		Denormalized:    cm.Denormalized,
		Properties:      make(map[string]*catalog.PropertyMapping, len(cm.Properties)),
	}
	for _, pm := range cm.Properties {
		if pm.Predicate == "" {
			return nil, fmt.Errorf("class %s has a property mapping without a predicate", cm.Class)
		}
		if _, dup := out.Properties[pm.Predicate]; dup {
			return nil, fmt.Errorf("class %s maps predicate %s twice", cm.Class, pm.Predicate)
		}
		direct := pm.Column != ""
		side := pm.JoinTable != "" || pm.JoinFK != "" || pm.ValueColumn != ""
		if direct == side {
			return nil, fmt.Errorf("class %s predicate %s: set exactly one of Column or JoinTable/JoinFK/ValueColumn",
				cm.Class, pm.Predicate)
		}
		out.Properties[pm.Predicate] = &catalog.PropertyMapping{
			Predicate:      pm.Predicate,
			Column:         pm.Column,
			JoinTable:      pm.JoinTable,
			JoinFK:         pm.JoinFK,
			ValueColumn:    pm.ValueColumn,
			ObjectTemplate: pm.ObjectTemplate,
			ObjectClass:    pm.ObjectClass,
		}
	}
	return out, nil
}

func moleculeToMT(m Molecule) *catalog.RDFMT {
	mt := &catalog.RDFMT{Class: m.Class, Sources: append([]string(nil), m.Sources...)}
	for _, p := range m.Predicates {
		mt.Predicates = append(mt.Predicates, catalog.PredicateDesc{Predicate: p.IRI, LinkedClass: p.LinkedClass})
	}
	return mt
}

// deriveMolecules derives the molecule templates of one source: from the
// class mappings for relational sources, from rdf:type assertions for
// graphs, and from the Molecules method for custom backends.
func (b *Builder) deriveMolecules(id string, cat *catalog.Catalog) []Molecule {
	if _, ok := b.endpoints[id]; ok {
		// Remote endpoints describe themselves through the molecules passed
		// to AddSPARQLEndpoint (or discovered via DiscoverMolecules); there
		// is nothing local to derive from.
		return nil
	}
	if s, ok := b.customs[id]; ok {
		var out []Molecule
		for _, m := range s.Molecules() {
			m.Sources = []string{id}
			out = append(out, m)
		}
		return out
	}
	if g, ok := b.graphs[id]; ok {
		return deriveGraphMolecules(id, g)
	}
	var out []Molecule
	for _, cm := range b.mappings[id] {
		m := Molecule{Class: cm.Class, Sources: []string{id}}
		preds := make([]string, 0, len(cm.Properties))
		byPred := make(map[string]PropertyMapping, len(cm.Properties))
		for _, pm := range cm.Properties {
			preds = append(preds, pm.Predicate)
			byPred[pm.Predicate] = pm
		}
		sort.Strings(preds)
		for _, p := range preds {
			m.Predicates = append(m.Predicates, Predicate{IRI: p, LinkedClass: byPred[p].ObjectClass})
		}
		out = append(out, m)
	}
	return out
}

// deriveGraphMolecules scans a graph: each rdf:type assertion types a
// subject, every predicate of a typed subject joins its classes' molecules
// (rdf:type itself excluded), and an object that is itself typed in the
// graph contributes its class as the predicate's link.
func deriveGraphMolecules(id string, g *rdf.Graph) []Molecule {
	types := make(map[rdf.Term][]string) // subject -> classes
	for _, t := range g.Triples() {
		if t.P.Value == rdf.RDFType && t.P.Kind == rdf.TermIRI && t.O.Kind == rdf.TermIRI {
			types[t.S] = append(types[t.S], t.O.Value)
		}
	}
	preds := make(map[string]map[string]string) // class -> predicate -> linked class
	for _, t := range g.Triples() {
		if t.P.Value == rdf.RDFType {
			continue
		}
		linked := ""
		if t.O.Kind == rdf.TermIRI {
			if cls := types[t.O]; len(cls) > 0 {
				linked = cls[0]
			}
		}
		for _, class := range types[t.S] {
			pm := preds[class]
			if pm == nil {
				pm = make(map[string]string)
				preds[class] = pm
			}
			if prev, ok := pm[t.P.Value]; !ok || (prev == "" && linked != "") {
				pm[t.P.Value] = linked
			}
		}
	}
	classes := make([]string, 0, len(preds))
	for c := range preds {
		classes = append(classes, c)
	}
	for s := range types {
		for _, c := range types[s] {
			if _, ok := preds[c]; !ok {
				preds[c] = map[string]string{}
				classes = append(classes, c)
			}
		}
	}
	sort.Strings(classes)
	var out []Molecule
	seen := map[string]bool{}
	for _, class := range classes {
		if seen[class] {
			continue
		}
		seen[class] = true
		m := Molecule{Class: class, Sources: []string{id}}
		ps := make([]string, 0, len(preds[class]))
		for p := range preds[class] {
			ps = append(ps, p)
		}
		sort.Strings(ps)
		for _, p := range ps {
			m.Predicates = append(m.Predicates, Predicate{IRI: p, LinkedClass: preds[class][p]})
		}
		out = append(out, m)
	}
	return out
}
