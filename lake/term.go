package lake

import (
	"sort"
	"strings"

	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// TermKind enumerates the kinds of RDF terms.
type TermKind uint8

// Term kinds.
const (
	// KindIRI is an IRI reference such as <http://example.org/x>.
	KindIRI TermKind = iota
	// KindLiteral is a literal, optionally carrying a datatype IRI or a
	// language tag.
	KindLiteral
	// KindBlank is a blank node identified by a label local to a graph.
	KindBlank
)

// Term is an RDF term, the value type of query solutions and lake data.
// The zero value is not a valid term; use IRI, Literal, TypedLiteral,
// LangLiteral, Integer, Float, Bool or Blank.
type Term struct {
	Kind     TermKind
	Value    string // IRI string, literal lexical form, or blank node label
	Datatype string // literal datatype IRI; empty means xsd:string
	Lang     string // literal language tag; mutually exclusive with Datatype
}

// Common XSD datatype IRIs.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
)

// RDFType is the rdf:type predicate IRI.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// Literal returns a plain string literal.
func Literal(lex string) Term { return Term{Kind: KindLiteral, Value: lex} }

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lex, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// LangLiteral returns a language-tagged string literal.
func LangLiteral(lex, lang string) Term {
	return Term{Kind: KindLiteral, Value: lex, Lang: lang}
}

// Integer returns an xsd:integer literal.
func Integer(v int64) Term { return termFromRDF(rdf.IntLiteral(v)) }

// Float returns an xsd:double literal.
func Float(v float64) Term { return termFromRDF(rdf.FloatLiteral(v)) }

// Bool returns an xsd:boolean literal.
func Bool(v bool) Term { return termFromRDF(rdf.BoolLiteral(v)) }

// Blank returns a blank node with the given label (without the "_:"
// prefix).
func Blank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// Equal reports whether two terms are identical.
func (t Term) Equal(o Term) bool { return t == o }

// String renders the term in N-Triples syntax.
func (t Term) String() string { return termToRDF(t).String() }

// Triple is an RDF statement of an in-memory graph source.
type Triple struct {
	S, P, O Term
}

// Binding is one query solution: a mapping from variable names (without
// the leading "?") to RDF terms.
type Binding map[string]Term

// Get returns the term bound to the variable and whether it is bound.
func (b Binding) Get(v string) (Term, bool) {
	t, ok := b[v]
	return t, ok
}

// Compatible reports whether b and o agree on every shared variable —
// the join condition of SPARQL solution mappings. Custom sources use it
// to honor the seed blocks of dependent joins.
func (b Binding) Compatible(o Binding) bool {
	if len(o) < len(b) {
		b, o = o, b
	}
	for k, v := range b {
		if ov, ok := o[k]; ok && ov != v {
			return false
		}
	}
	return true
}

// Vars returns the bound variable names, sorted.
func (b Binding) Vars() []string {
	out := make([]string, 0, len(b))
	for v := range b {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders the binding deterministically for debugging.
func (b Binding) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range b.Vars() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("?" + v + " -> " + b[v].String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// Term kinds mirror rdf.TermKind value-for-value; the conversions below
// rely on it.

func termToRDF(t Term) rdf.Term {
	return rdf.Term{Kind: rdf.TermKind(t.Kind), Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
}

func termFromRDF(t rdf.Term) Term {
	return Term{Kind: TermKind(t.Kind), Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
}

func bindingFromInternal(b sparql.Binding) Binding {
	out := make(Binding, len(b))
	for v, t := range b {
		out[v] = termFromRDF(t)
	}
	return out
}

func bindingToInternal(b Binding) sparql.Binding {
	out := make(sparql.Binding, len(b))
	for v, t := range b {
		out[v] = termToRDF(t)
	}
	return out
}
