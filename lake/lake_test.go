package lake_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"ontario"
	"ontario/lake"
)

const (
	classBook   = "http://t/Book"
	classPerson = "http://t/Person"
	predTitle   = "http://t/title"
	predYear    = "http://t/year"
	predAuthor  = "http://t/author"
	predName    = "http://t/name"
)

// testLake builds a two-source lake: books in a relational source (with a
// side table for the multi-valued author link) and people in a graph.
func testLake(t *testing.T) *lake.Lake {
	t.Helper()
	l, err := lake.NewBuilder().
		AddTable("shop", lake.TableSpec{
			Name: "book",
			Columns: []lake.Column{
				{Name: "id", Type: lake.TypeInt, NotNull: true},
				{Name: "title", Type: lake.TypeString},
				{Name: "year", Type: lake.TypeInt},
			},
			PrimaryKey: "id",
			Rows: [][]any{
				{1, "A Study in Scarlet", 1887},
				{2, "Frankenstein", 1818},
				{3, "Middlemarch", 1871},
			},
			Indexes: []lake.Index{{Column: "year", Kind: lake.BTreeIndex}},
		}).
		AddTable("shop", lake.TableSpec{
			Name: "book_author",
			Columns: []lake.Column{
				{Name: "id", Type: lake.TypeInt, NotNull: true},
				{Name: "book_id", Type: lake.TypeInt},
				{Name: "person_id", Type: lake.TypeInt},
			},
			PrimaryKey: "id",
			Rows: [][]any{
				{1, 1, 10},
				{2, 2, 11},
				{3, 3, 12},
			},
			Indexes: []lake.Index{{Column: "book_id"}, {Column: "person_id"}},
		}).
		MapClass("shop", lake.ClassMapping{
			Class:           classBook,
			Table:           "book",
			SubjectTemplate: "http://t/book/{value}",
			Properties: []lake.PropertyMapping{
				{Predicate: predTitle, Column: "title"},
				{Predicate: predYear, Column: "year"},
				{Predicate: predAuthor, JoinTable: "book_author", JoinFK: "book_id", ValueColumn: "person_id",
					ObjectTemplate: "http://t/person/{value}", ObjectClass: classPerson},
			},
		}).
		AddGraph("people", []lake.Triple{
			{S: lake.IRI("http://t/person/10"), P: lake.IRI(lake.RDFType), O: lake.IRI(classPerson)},
			{S: lake.IRI("http://t/person/10"), P: lake.IRI(predName), O: lake.Literal("Doyle")},
			{S: lake.IRI("http://t/person/11"), P: lake.IRI(lake.RDFType), O: lake.IRI(classPerson)},
			{S: lake.IRI("http://t/person/11"), P: lake.IRI(predName), O: lake.Literal("Shelley")},
			{S: lake.IRI("http://t/person/12"), P: lake.IRI(lake.RDFType), O: lake.IRI(classPerson)},
			{S: lake.IRI("http://t/person/12"), P: lake.IRI(predName), O: lake.Literal("Eliot")},
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBuilderFederatedQuery(t *testing.T) {
	l := testLake(t)
	eng := ontario.New(l)
	res, err := eng.Query(context.Background(), `
SELECT ?title ?name WHERE {
  ?b <`+predTitle+`> ?title .
  ?b <`+predYear+`> ?y .
  ?b <`+predAuthor+`> ?p .
  ?p <`+predName+`> ?name .
  FILTER (?y < 1880)
}`, ontario.WithAwarePlan())
	if err != nil {
		t.Fatal(err)
	}
	answers, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, b := range answers {
		got = append(got, b["title"].Value+"/"+b["name"].Value)
	}
	sort.Strings(got)
	want := []string{"Frankenstein/Shelley", "Middlemarch/Eliot"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("answers = %v, want %v", got, want)
	}
}

func TestLakeAccessors(t *testing.T) {
	l := testLake(t)
	if got := l.SourceIDs(); fmt.Sprint(got) != "[people shop]" {
		t.Errorf("SourceIDs = %v", got)
	}
	if got := l.Classes(); fmt.Sprint(got) != fmt.Sprint([]string{classBook, classPerson}) {
		t.Errorf("Classes = %v", got)
	}
	var book, person *lake.Molecule
	for _, m := range l.Molecules() {
		m := m
		switch m.Class {
		case classBook:
			book = &m
		case classPerson:
			person = &m
		}
	}
	if book == nil || person == nil {
		t.Fatalf("molecules missing: %+v", l.Molecules())
	}
	linked := ""
	for _, p := range book.Predicates {
		if p.IRI == predAuthor {
			linked = p.LinkedClass
		}
	}
	if linked != classPerson {
		t.Errorf("author link derived as %q, want %q", linked, classPerson)
	}
	if fmt.Sprint(person.Sources) != "[people]" {
		t.Errorf("person sources = %v", person.Sources)
	}
}

func TestAddGraphNTriples(t *testing.T) {
	nt := `<http://t/person/1> <` + lake.RDFType + `> <` + classPerson + `> .
<http://t/person/1> <` + predName + `> "Woolf" .
`
	l, err := lake.NewBuilder().
		AddGraphNTriples("people", strings.NewReader(nt)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ontario.New(l).Query(context.Background(),
		`SELECT ?n WHERE { ?p <`+predName+`> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0]["n"].Value != "Woolf" {
		t.Errorf("answers = %v", answers)
	}
}

// staticSource is a minimal custom backend for error and molecule tests.
type staticSource struct {
	id   string
	sols []lake.Binding
	err  error
	// lastSeeds records the seed block of the most recent Execute call.
	lastSeeds int
}

func (s *staticSource) ID() string { return s.id }
func (s *staticSource) Molecules() []lake.Molecule {
	return []lake.Molecule{{Class: classPerson, Predicates: []lake.Predicate{{IRI: predName}}}}
}
func (s *staticSource) Execute(ctx context.Context, req *lake.Request) ([]lake.Binding, error) {
	s.lastSeeds = len(req.Seeds)
	if s.err != nil {
		return nil, s.err
	}
	return s.sols, nil
}

func TestCustomSourceQuery(t *testing.T) {
	src := &staticSource{id: "static", sols: []lake.Binding{
		{"p": lake.IRI("http://t/person/1"), "n": lake.Literal("Lovelace")},
	}}
	l, err := lake.NewBuilder().AddSource(src).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ontario.New(l).Query(context.Background(),
		`SELECT ?n WHERE { ?p <`+predName+`> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0]["n"].Value != "Lovelace" {
		t.Errorf("answers = %v", answers)
	}
}

func TestCustomSourceError(t *testing.T) {
	src := &staticSource{id: "broken", err: fmt.Errorf("backend down")}
	l, err := lake.NewBuilder().AddSource(src).Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = ontario.New(l).Query(context.Background(),
		`SELECT ?n WHERE { ?p <`+predName+`> ?n . }`)
	if err == nil || !strings.Contains(err.Error(), "backend down") {
		t.Fatalf("custom source error not surfaced: %v", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]*lake.Builder{
		"no sources": lake.NewBuilder(),
		"two kinds under one ID": lake.NewBuilder().
			AddGraph("x", nil).
			AddTable("x", lake.TableSpec{Name: "t"}),
		"mapping without tables": lake.NewBuilder().
			MapClass("rel", lake.ClassMapping{Class: classBook, Table: "book"}),
		"property with both column and side table": lake.NewBuilder().
			AddTable("rel", lake.TableSpec{
				Name:       "t",
				Columns:    []lake.Column{{Name: "id", Type: lake.TypeInt, NotNull: true}},
				PrimaryKey: "id",
			}).
			MapClass("rel", lake.ClassMapping{
				Class: classBook, Table: "t", SubjectTemplate: "http://t/b/{value}",
				Properties: []lake.PropertyMapping{
					{Predicate: predTitle, Column: "id", JoinTable: "j", JoinFK: "f", ValueColumn: "v"},
				},
			}),
		"row type mismatch": lake.NewBuilder().
			AddTable("rel", lake.TableSpec{
				Name:       "t",
				Columns:    []lake.Column{{Name: "id", Type: lake.TypeInt, NotNull: true}},
				PrimaryKey: "id",
				Rows:       [][]any{{"not-an-int"}},
			}),
		"molecule with unknown source": lake.NewBuilder().
			AddGraph("g", nil).
			AddMolecule(lake.Molecule{Class: classBook, Sources: []string{"missing"}}),
		"custom source registered twice": lake.NewBuilder().
			AddSource(&staticSource{id: "dup"}).
			AddSource(&staticSource{id: "dup"}),
	}
	for name, b := range cases {
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", name)
		}
	}
}
