package lake

import (
	"ontario/internal/bridge"
	"ontario/internal/catalog"
)

// Lake is an assembled Semantic Data Lake, ready to hand to ontario.New.
// It is immutable and safe for concurrent use.
type Lake struct {
	cat *catalog.Catalog
}

// SourceIDs returns the sorted IDs of the lake's sources.
func (l *Lake) SourceIDs() []string { return l.cat.SourceIDs() }

// Classes returns the sorted class IRIs with registered molecule
// templates.
func (l *Lake) Classes() []string { return l.cat.Classes() }

// Molecules returns the lake's molecule templates, sorted by class.
func (l *Lake) Molecules() []Molecule {
	var out []Molecule
	for _, class := range l.cat.Classes() {
		mt := l.cat.MT(class)
		m := Molecule{Class: mt.Class, Sources: append([]string(nil), mt.Sources...)}
		for _, pd := range mt.Predicates {
			m.Predicates = append(m.Predicates, Predicate{IRI: pd.Predicate, LinkedClass: pd.LinkedClass})
		}
		out = append(out, m)
	}
	return out
}

// The engine extracts the internal catalog through the bridge so no
// exported signature of this package mentions internal types.
func init() {
	bridge.LakeCatalog = func(v any) *catalog.Catalog {
		if l, ok := v.(*Lake); ok {
			return l.cat
		}
		return nil
	}
}
