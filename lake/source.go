package lake

import (
	"context"

	"ontario/internal/catalog"
	"ontario/internal/sparql"
)

// Predicate describes one predicate of a molecule.
type Predicate struct {
	// IRI is the predicate IRI.
	IRI string
	// LinkedClass names the class of the objects when the predicate links
	// to another molecule (an intra- or inter-source link); empty for
	// attribute predicates.
	LinkedClass string
}

// Molecule is an RDF Molecule Template: the abstract description of the
// entities of one class — the predicates they share and the sources able
// to answer them. Molecules drive source selection; the builder derives
// them automatically from graphs and table mappings, and AddMolecule
// registers them explicitly (required for custom sources' cross-source
// links the derivation cannot see).
type Molecule struct {
	// Class is the class IRI the molecule describes.
	Class      string
	Predicates []Predicate
	// Sources lists the IDs of the sources able to answer the molecule.
	Sources []string
}

// PatternNode is one position of a triple pattern: a variable or a
// constant term.
type PatternNode struct {
	// Var names the variable (without "?") when non-empty.
	Var string
	// Term is the constant when Var is empty.
	Term Term
}

// IsVar reports whether the node is a variable.
func (n PatternNode) IsVar() bool { return n.Var != "" }

// TriplePattern is one SPARQL triple pattern.
type TriplePattern struct {
	S, P, O PatternNode
}

// Star is one star-shaped sub-query: all patterns share the subject
// variable, and source selection has resolved the molecule class.
type Star struct {
	// SubjectVar is the shared subject variable (without "?").
	SubjectVar string
	// Class is the molecule class selected for this star.
	Class    string
	Patterns []TriplePattern
}

// Request is one invocation of a custom source: one or more star
// sub-queries, optionally constrained by a block of seed bindings from a
// dependent join.
type Request struct {
	Stars []Star
	// Seeds, when non-empty, is a bind-join seed block: the engine only
	// needs solutions compatible with at least one seed. Implementations
	// may use the seeds to constrain their evaluation (recommended — it is
	// the difference between a scan and a lookup) or ignore them; the
	// engine re-checks compatibility either way.
	Seeds []Binding
}

// Source is a custom data-lake backend registered with Builder.AddSource:
// any data reachable from Go — CSV or JSON files, key-value stores, remote
// APIs — can join the federation by implementing it. Implementations must
// be safe for concurrent use; every running query calls into the same
// value.
type Source interface {
	// ID identifies the source in the lake. It must be unique and non-empty.
	ID() string
	// Molecules describes the classes the source can answer. The builder
	// registers them as the source's molecule templates.
	Molecules() []Molecule
	// Execute evaluates the request and returns every matching solution,
	// binding the stars' variables. Solutions must bind at least the
	// variables the patterns mention; extra bindings are ignored.
	Execute(ctx context.Context, req *Request) ([]Binding, error)
}

// externalAdapter bridges a public Source to the engine's internal
// custom-source contract.
type externalAdapter struct {
	src Source
}

func (a externalAdapter) ExecuteStars(ctx context.Context, stars []catalog.ExternalStar, seeds []sparql.Binding) ([]sparql.Binding, error) {
	req := &Request{Stars: make([]Star, len(stars))}
	for i, s := range stars {
		req.Stars[i] = starFromInternal(s)
	}
	if len(seeds) > 0 {
		req.Seeds = make([]Binding, len(seeds))
		for i, b := range seeds {
			req.Seeds[i] = bindingFromInternal(b)
		}
	}
	sols, err := a.src.Execute(ctx, req)
	if err != nil {
		return nil, err
	}
	out := make([]sparql.Binding, len(sols))
	for i, b := range sols {
		out[i] = bindingToInternal(b)
	}
	return out, nil
}

func starFromInternal(s catalog.ExternalStar) Star {
	star := Star{SubjectVar: s.SubjectVar, Class: s.Class, Patterns: make([]TriplePattern, len(s.Patterns))}
	for i, tp := range s.Patterns {
		star.Patterns[i] = TriplePattern{
			S: nodeFromInternal(tp.S),
			P: nodeFromInternal(tp.P),
			O: nodeFromInternal(tp.O),
		}
	}
	return star
}

func nodeFromInternal(n sparql.Node) PatternNode {
	if n.IsVar {
		return PatternNode{Var: n.Var}
	}
	return PatternNode{Term: termFromRDF(n.Term)}
}
