package ontario

import (
	"encoding/json"
	"sort"
	"sync"
	"time"

	"ontario/internal/dict"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// termJSONCache memoizes marshaled terms by dictionary ID across every
// query of a lake. IDs come from the catalog's lake-lifetime dictionary,
// so an entry stays valid as long as the catalog; concurrent cursors (of
// any engine over that catalog) share it under a read-mostly lock.
type termJSONCache struct {
	mu    sync.RWMutex
	terms map[dict.ID][]byte
}

func newTermJSONCache() *termJSONCache {
	return &termJSONCache{terms: make(map[dict.ID][]byte)}
}

func (c *termJSONCache) get(id dict.ID) ([]byte, bool) {
	c.mu.RLock()
	enc, ok := c.terms[id]
	c.mu.RUnlock()
	return enc, ok
}

func (c *termJSONCache) put(id dict.ID, enc []byte) {
	c.mu.Lock()
	c.terms[id] = enc
	c.mu.Unlock()
}

// jsonBufPool recycles encode buffers between cursors: a query's payload
// buffer grows to one batch's JSON and is returned on Close, so steady
// service traffic stops allocating encode space per query.
var jsonBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 16<<10); return &b },
}

// resultsJSON is the cursor's pre-encoding state for the server's JSON
// fast path. The encoding it produces is byte-identical to marshaling a
// map[var]term object per solution (keys sorted, no whitespace), but the
// work is memoized: variable keys are marshaled once per schema, and in
// columnar mode each distinct term is marshaled once per query, keyed by
// its dictionary ID.
type resultsJSON struct {
	// cols pairs each output column with its pre-marshaled `"var":` key
	// prefix, ordered by variable name so the object keys come out sorted.
	cols []jsonCol
	// shared is the engine's cross-query term cache; terms is the
	// per-cursor fallback used when the cursor has no engine behind it
	// (columnar mode only; exactly one of the two is set).
	shared *termJSONCache
	terms  map[dict.ID][]byte
	// buf is the encode buffer, borrowed from jsonBufPool via pooled and
	// handed back when the cursor closes.
	buf    []byte
	pooled *[]byte
}

// release returns the encode buffer to the pool; the cursor must not
// encode again afterwards.
func (j *resultsJSON) release() {
	if j.pooled == nil {
		return
	}
	*j.pooled = j.buf[:0]
	jsonBufPool.Put(j.pooled)
	j.pooled, j.buf = nil, nil
}

type jsonCol struct {
	pos int // column in the batch schema (columnar mode)
	key []byte
}

func marshalKey(v string) []byte {
	k, _ := json.Marshal(v)
	return append(k, ':')
}

// marshalTerm appends the sparql-results+json encoding of one term:
// {"type":...,"value":...} with datatype and xml:lang only when present —
// the same member set and order encoding/json produces for the server's
// jsonTerm struct.
func marshalTerm(dst []byte, t rdf.Term) []byte {
	dst = append(dst, `{"type":`...)
	switch t.Kind {
	case rdf.TermIRI:
		dst = append(dst, `"uri"`...)
	case rdf.TermBlank:
		dst = append(dst, `"bnode"`...)
	default:
		dst = append(dst, `"literal"`...)
	}
	dst = append(dst, `,"value":`...)
	v, _ := json.Marshal(t.Value)
	dst = append(dst, v...)
	if t.Kind == rdf.TermLiteral && t.Datatype != "" {
		dst = append(dst, `,"datatype":`...)
		dt, _ := json.Marshal(t.Datatype)
		dst = append(dst, dt...)
	}
	if t.Kind == rdf.TermLiteral && t.Lang != "" {
		dst = append(dst, `,"xml:lang":`...)
		l, _ := json.Marshal(t.Lang)
		dst = append(dst, l...)
	}
	return append(dst, '}')
}

func (r *Results) jsonState() *resultsJSON {
	if r.json != nil {
		return r.json
	}
	j := &resultsJSON{pooled: jsonBufPool.Get().(*[]byte)}
	j.buf = (*j.pooled)[:0]
	if r.cstream != nil {
		if j.shared = r.jsonCache; j.shared == nil {
			j.terms = make(map[dict.ID][]byte)
		}
		schema := r.cstream.Schema()
		for pos, v := range schema.Vars {
			j.cols = append(j.cols, jsonCol{pos: pos, key: marshalKey(v)})
		}
		sort.Slice(j.cols, func(a, b int) bool {
			return schema.Vars[j.cols[a].pos] < schema.Vars[j.cols[b].pos]
		})
	}
	r.json = j
	return j
}

// term returns the cached encoding of the term behind id, marshaling and
// memoizing it on first sight.
func (j *resultsJSON) term(d *dict.Dict, id dict.ID) []byte {
	if j.shared != nil {
		if enc, ok := j.shared.get(id); ok {
			return enc
		}
		enc := marshalTerm(nil, d.MustLookup(id))
		j.shared.put(id, enc)
		return enc
	}
	if enc, ok := j.terms[id]; ok {
		return enc
	}
	enc := marshalTerm(nil, d.MustLookup(id))
	j.terms[id] = enc
	return enc
}

// nextBatchJSON returns the rest of the buffered batch — or pulls the
// next one — encoded as comma-separated sparql-results+json binding
// objects. The payload starts with a ',' separator before every object,
// including the first; the consumer drops the leading byte when the
// object is the first of the document. n is the number of solutions
// encoded. The returned slice is only valid until the next call.
func (r *Results) nextBatchJSON() ([]byte, int, bool) {
	if !r.fill() {
		return nil, 0, false
	}
	j := r.jsonState()
	buf := j.buf[:0]
	n := 0
	if r.cstream != nil {
		b := r.cbuf
		for ; r.cidx < b.Len; r.cidx++ {
			buf = append(buf, ',', '{')
			rowStart := len(buf)
			for _, c := range j.cols {
				id := b.Cols[c.pos][r.cidx]
				if id == dict.Unbound {
					continue
				}
				if len(buf) > rowStart {
					buf = append(buf, ',')
				}
				buf = append(buf, c.key...)
				buf = append(buf, j.term(r.dict, id)...)
			}
			buf = append(buf, '}')
			n++
		}
	} else {
		for ; r.idx < len(r.buf); r.idx++ {
			buf = appendRowJSON(buf, r.buf[r.idx])
			n++
		}
	}
	j.buf = buf
	if r.n == 0 {
		r.firstAt = time.Since(r.start)
	}
	r.n += n
	return buf, n, true
}

// appendRowJSON encodes one row-mode solution with sorted keys (the
// reference pipeline has no dictionary to cache by, so terms are
// marshaled in place).
func appendRowJSON(dst []byte, b sparql.Binding) []byte {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	dst = append(dst, ',', '{')
	for i, v := range vars {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, marshalKey(v)...)
		dst = marshalTerm(dst, b[v])
	}
	return append(dst, '}')
}
