package ontario_test

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	"ontario"
	"ontario/internal/lslod"
	"ontario/lake"
)

// Example runs one federated query with both plan types and compares the
// transferred intermediate results.
func Example() {
	l, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(l.Lake)

	query := `
SELECT ?disease ?gene WHERE {
  ?disease <` + lslod.PredDiseaseName + `> ?name .
  ?disease <` + lslod.PredAssociatedGene + `> ?gene .
  ?gene <` + lslod.PredGeneChromosome + `> "chr7" .
}`
	ctx := context.Background()
	run := func(opts ...ontario.Option) (int, int) {
		res, err := eng.Query(ctx, query, append(opts, ontario.WithNetworkScale(0))...)
		if err != nil {
			log.Fatal(err)
		}
		answers, err := res.Collect()
		if err != nil {
			log.Fatal(err)
		}
		return len(answers), res.Stats().Messages
	}
	unawareAnswers, unawareMessages := run(ontario.WithUnawarePlan())
	awareAnswers, awareMessages := run(ontario.WithAwarePlan())
	fmt.Printf("same answers: %v\n", unawareAnswers == awareAnswers)
	fmt.Printf("aware transfers fewer intermediate results: %v\n",
		awareMessages < unawareMessages)
	// Output:
	// same answers: true
	// aware transfers fewer intermediate results: true
}

// exampleLake builds a two-source lake with the public builder: a
// relational HR database and an RDF graph about the same departments.
func exampleLake() *lake.Lake {
	const (
		classEmployee = "http://example.org/Employee"
		predName      = "http://example.org/name"
		predDept      = "http://example.org/dept"
	)
	l, err := lake.NewBuilder().
		AddTable("hr", lake.TableSpec{
			Name: "employee",
			Columns: []lake.Column{
				{Name: "id", Type: lake.TypeInt, NotNull: true},
				{Name: "name", Type: lake.TypeString},
				{Name: "dept", Type: lake.TypeString},
			},
			PrimaryKey: "id",
			Rows: [][]any{
				{1, "Ada", "eng"},
				{2, "Grace", "eng"},
				{3, "Lin", "ops"},
			},
			Indexes: []lake.Index{{Column: "dept"}},
		}).
		MapClass("hr", lake.ClassMapping{
			Class:           classEmployee,
			Table:           "employee",
			SubjectTemplate: "http://example.org/employee/{value}",
			Properties: []lake.PropertyMapping{
				{Predicate: predName, Column: "name"},
				{Predicate: predDept, Column: "dept"},
			},
		}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	return l
}

// ExampleResults iterates a query's solutions through the cursor API.
func ExampleResults() {
	eng := ontario.New(exampleLake())
	res, err := eng.Query(context.Background(), `
SELECT ?n WHERE {
  ?e <http://example.org/name> ?n .
  ?e <http://example.org/dept> "eng" .
}`)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	var names []string
	for res.Next() {
		names = append(names, res.Binding()["n"].Value)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	sort.Strings(names)
	fmt.Println(strings.Join(names, ", "))
	// Output:
	// Ada, Grace
}

// ExampleEngine_Prepare plans a query once and executes it repeatedly —
// the unit a server-side plan cache stores.
func ExampleEngine_Prepare() {
	eng := ontario.New(exampleLake())
	prep, err := eng.Prepare(`
SELECT ?n WHERE { ?e <http://example.org/name> ?n . }`,
		ontario.WithAwarePlan())
	if err != nil {
		log.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		res, err := eng.QueryPrepared(context.Background(), prep)
		if err != nil {
			log.Fatal(err)
		}
		answers, err := res.Collect()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: %d answers\n", run, len(answers))
	}
	// Output:
	// run 0: 3 answers
	// run 1: 3 answers
}

// ExampleEngine_Explain shows a physical-design-aware plan: both stars
// live in Diseasome and the join attribute is indexed, so Heuristic 1
// merges them into one SQL request.
func ExampleEngine_Explain() {
	l, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(l.Lake)
	plan, err := eng.Explain(`
SELECT ?d ?g WHERE {
  ?d <`+lslod.PredDiseaseName+`> ?n .
  ?d <`+lslod.PredAssociatedGene+`> ?g .
  ?g <`+lslod.PredGeneLabel+`> ?l .
}`, ontario.WithAwarePlan())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	// Output:
	// Plan[physical-design-aware, optimizer=cost, filters=source-if-indexed, translation=optimized, join=per-join, decomposition=star-shaped]
	//   MergedService[diseasome] star(?d:Disease, 2 patterns) star(?g:Gene, 1 patterns)  {est card=150 msgs=150 cost=9.0}
}

// ExampleEngine_Query_heuristic2 shows Heuristic 2: on a fast network the
// filter stays at the engine; on a slow network it is pushed into the
// relational source.
func ExampleEngine_Query_heuristic2() {
	l, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(l.Lake)
	query := `
SELECT ?p WHERE {
  ?p <` + lslod.PredProbeChromosome + `> ?c .
  ?p <` + lslod.PredSignal + `> ?s .
  FILTER (?c = "chr5")
}`
	for _, net := range []ontario.Profile{ontario.Gamma1, ontario.Gamma3} {
		res, err := eng.Query(context.Background(), query,
			ontario.WithHeuristic2(), ontario.WithNetwork(net), ontario.WithNetworkScale(0))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := res.Collect(); err != nil {
			log.Fatal(err)
		}
		pushed := strings.Contains(res.Plan().String(), "pushed-filters")
		fmt.Printf("%s: filter pushed to source: %v\n", net.Name, pushed)
	}
	// Output:
	// Gamma 1: filter pushed to source: false
	// Gamma 3: filter pushed to source: true
}
