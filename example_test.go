package ontario_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"ontario"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
)

// Example runs one federated query with both plan types and compares the
// transferred intermediate results.
func Example() {
	lake, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(lake.Catalog)

	query := `
SELECT ?disease ?gene WHERE {
  ?disease <` + lslod.PredDiseaseName + `> ?name .
  ?disease <` + lslod.PredAssociatedGene + `> ?gene .
  ?gene <` + lslod.PredGeneChromosome + `> "chr7" .
}`
	ctx := context.Background()
	unaware, err := eng.Query(ctx, query,
		ontario.WithUnawarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		log.Fatal(err)
	}
	aware, err := eng.Query(ctx, query,
		ontario.WithAwarePlan(), ontario.WithNetworkScale(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same answers: %v\n", len(unaware.Answers) == len(aware.Answers))
	fmt.Printf("aware transfers fewer intermediate results: %v\n",
		aware.Messages < unaware.Messages)
	// Output:
	// same answers: true
	// aware transfers fewer intermediate results: true
}

// ExampleEngine_Explain shows a physical-design-aware plan: both stars live
// in Diseasome and the join attribute is indexed, so Heuristic 1 merges
// them into one SQL request.
func ExampleEngine_Explain() {
	lake, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(lake.Catalog)
	plan, err := eng.Explain(`
SELECT ?d ?g WHERE {
  ?d <`+lslod.PredDiseaseName+`> ?n .
  ?d <`+lslod.PredAssociatedGene+`> ?g .
  ?g <`+lslod.PredGeneLabel+`> ?l .
}`, ontario.WithAwarePlan())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	// Output:
	// Plan[physical-design-aware, optimizer=cost, filters=source-if-indexed, translation=optimized, join=per-join, decomposition=star-shaped]
	//   MergedService[diseasome] star(?d:Disease, 2 patterns) star(?g:Gene, 1 patterns)  {est card=150 msgs=150 cost=9.0}
}

// ExampleEngine_Query_heuristic2 shows Heuristic 2: on a fast network the
// filter stays at the engine; on a slow network it is pushed into the
// relational source.
func ExampleEngine_Query_heuristic2() {
	lake, err := lslod.BuildLake(lslod.SmallScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(lake.Catalog)
	query := `
SELECT ?p WHERE {
  ?p <` + lslod.PredProbeChromosome + `> ?c .
  ?p <` + lslod.PredSignal + `> ?s .
  FILTER (?c = "chr5")
}`
	for _, net := range []netsim.Profile{netsim.Gamma1, netsim.Gamma3} {
		res, err := eng.Query(context.Background(), query,
			ontario.WithHeuristic2(), ontario.WithNetwork(net), ontario.WithNetworkScale(0))
		if err != nil {
			log.Fatal(err)
		}
		pushed := strings.Contains(res.Plan.Explain(), "pushed-filters")
		fmt.Printf("%s: filter pushed to source: %v\n", net.Name, pushed)
	}
	// Output:
	// Gamma 1: filter pushed to source: false
	// Gamma 3: filter pushed to source: true
}
