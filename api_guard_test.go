package ontario_test

// The API leak guard: no exported identifier of the public packages
// (ontario and ontario/lake) may reference a type from ontario/internal/...
// in its exported surface — Go forbids external modules from importing
// internal packages, so any such reference makes the API unusable outside
// this repository. The guard type-checks the public packages from source
// and walks every exported object's type.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const modulePath = "ontario"

// repoImporter resolves this module's import paths from the repository
// source tree and delegates everything else (the standard library) to the
// source importer.
type repoImporter struct {
	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*types.Package
	root string
}

func newRepoImporter(root string) *repoImporter {
	fset := token.NewFileSet()
	return &repoImporter{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: map[string]*types.Package{},
		root: root,
	}
}

func (ri *repoImporter) Import(path string) (*types.Package, error) {
	return ri.ImportFrom(path, "", 0)
}

func (ri *repoImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := ri.pkgs[path]; ok {
		return pkg, nil
	}
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/")
		pkg, err := ri.check(path, filepath.Join(ri.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		ri.pkgs[path] = pkg
		return pkg, nil
	}
	return ri.std.ImportFrom(path, dir, mode)
}

func (ri *repoImporter) check(path, dir string) (*types.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ri.fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: ri}
	return conf.Check(path, ri.fset, files, nil)
}

// leakChecker walks types looking for named types from internal packages.
type leakChecker struct {
	t    *testing.T
	seen map[types.Type]bool
}

func isInternal(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == modulePath+"/internal" || strings.HasPrefix(p, modulePath+"/internal/")
}

// checkType reports internal named types reachable through the exported
// surface of typ. Named types from non-internal packages terminate the
// walk: their own surface is guarded where they are declared.
func (lc *leakChecker) checkType(where string, typ types.Type) {
	if lc.seen[typ] {
		return
	}
	lc.seen[typ] = true
	switch v := typ.(type) {
	case *types.Named:
		if isInternal(v.Obj().Pkg()) {
			lc.t.Errorf("%s references internal type %s", where, v)
		}
	case *types.Alias:
		lc.checkType(where, types.Unalias(v))
	case *types.Pointer:
		lc.checkType(where, v.Elem())
	case *types.Slice:
		lc.checkType(where, v.Elem())
	case *types.Array:
		lc.checkType(where, v.Elem())
	case *types.Chan:
		lc.checkType(where, v.Elem())
	case *types.Map:
		lc.checkType(where, v.Key())
		lc.checkType(where, v.Elem())
	case *types.Signature:
		for i := 0; i < v.Params().Len(); i++ {
			lc.checkType(where, v.Params().At(i).Type())
		}
		for i := 0; i < v.Results().Len(); i++ {
			lc.checkType(where, v.Results().At(i).Type())
		}
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if f := v.Field(i); f.Exported() {
				lc.checkType(fmt.Sprintf("%s field %s", where, f.Name()), f.Type())
			}
		}
	case *types.Interface:
		for i := 0; i < v.NumExplicitMethods(); i++ {
			m := v.ExplicitMethod(i)
			lc.checkType(fmt.Sprintf("%s method %s", where, m.Name()), m.Type())
		}
		for i := 0; i < v.NumEmbeddeds(); i++ {
			lc.checkType(where, v.EmbeddedType(i))
		}
	}
}

func (lc *leakChecker) checkObject(pkgPath string, obj types.Object) {
	where := pkgPath + "." + obj.Name()
	switch o := obj.(type) {
	case *types.TypeName:
		if o.IsAlias() {
			lc.checkType(where, o.Type())
			return
		}
		named, ok := o.Type().(*types.Named)
		if !ok {
			lc.checkType(where, o.Type())
			return
		}
		// The underlying type is part of the API (map values, slice
		// elements, exported struct fields all reach the user).
		lc.checkType(where, named.Underlying())
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Exported() {
				lc.checkType(fmt.Sprintf("%s.%s", where, m.Name()), m.Type())
			}
		}
	default:
		lc.checkType(where, obj.Type())
	}
}

// TestPublicAPIDoesNotLeakInternalTypes fails when any exported signature,
// field, alias, method or interface of the public packages mentions an
// ontario/internal type.
func TestPublicAPIDoesNotLeakInternalTypes(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	ri := newRepoImporter(root)
	for _, pkgPath := range []string{modulePath, modulePath + "/lake"} {
		pkg, err := ri.Import(pkgPath)
		if err != nil {
			t.Fatalf("type-checking %s: %v", pkgPath, err)
		}
		lc := &leakChecker{t: t, seen: map[types.Type]bool{}}
		scope := pkg.Scope()
		exported := 0
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() {
				continue
			}
			exported++
			lc.checkObject(pkgPath, obj)
		}
		if exported == 0 {
			t.Errorf("%s exports nothing — guard is vacuous", pkgPath)
		}
	}
}
