module ontario

go 1.22
