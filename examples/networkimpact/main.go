// Networkimpact: reproduce the shape of Figure 2 — answer traces for Q3
// under both QEP types and the four network settings, printed as ASCII
// curves of answers over time.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"ontario/internal/exp"
	"ontario/internal/lslod"
)

func main() {
	lake, err := lslod.BuildLake(lslod.DefaultScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	runner := exp.NewRunner(lake)
	runner.NetworkScale = 0.25 // sleep at 25% of the sampled delays

	rows, err := runner.RunFig2(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Scale all traces to a common time axis.
	var maxT time.Duration
	for _, r := range rows {
		if r.Trace.Total > maxT {
			maxT = r.Trace.Total
		}
	}
	const width = 60
	fmt.Println("Q3 answer traces (each column ≈", (maxT / width).Round(10*time.Microsecond), ")")
	fmt.Println()
	for _, r := range rows {
		curve := make([]rune, width)
		total := r.Answers
		for i := range curve {
			t := maxT * time.Duration(i+1) / width
			n := r.Trace.AnswersAt(t)
			switch {
			case total == 0:
				curve[i] = ' '
			case n == total:
				curve[i] = '#'
			case n > 0:
				curve[i] = rune('0' + (9*n)/total)
			default:
				curve[i] = '.'
			}
		}
		fmt.Printf("%-28s |%s| %s, dief@25%%=%.1f\n",
			r.Config.Label(), string(curve),
			r.Trace.Total.Round(time.Millisecond),
			r.Trace.DiefAt(maxT/4))
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 100))
	fmt.Println("Digits show the fraction of answers produced (9 ≈ all); '#' marks completion.")
	fmt.Println("Physical-design-aware plans complete earlier, and the gap widens as the network slows —")
	fmt.Println("slow networks have a higher impact on physical-design-unaware QEPs (paper, Figure 2).")
}
