// Customsource: register a CSV file as a data-lake source through the
// public lake.Source interface and run a federated query joining it with
// an in-memory RDF graph — no internal packages involved; this is exactly
// what an external module importing ontario can do.
package main

import (
	"context"
	"encoding/csv"
	"fmt"
	"log"
	"strconv"
	"strings"

	"ontario"
	"ontario/lake"
)

// The example vocabulary.
const (
	classCity    = "http://example.org/City"
	classCountry = "http://example.org/Country"

	predCityName   = "http://example.org/city/name"
	predCityIn     = "http://example.org/city/country"
	predPopulation = "http://example.org/city/population"

	predCountryName = "http://example.org/country/name"
	predContinent   = "http://example.org/country/continent"

	cityIRIPrefix    = "http://example.org/city/"
	countryIRIPrefix = "http://example.org/country/"
)

const citiesCSV = `id,name,country,population
1,Berlin,de,3700000
2,Hamburg,de,1800000
3,Paris,fr,2100000
4,Lyon,fr,520000
5,Osaka,jp,2700000
6,Nagoya,jp,2300000
7,Montevideo,uy,1300000
`

// csvSource serves a parsed CSV file as a lake source. It implements
// lake.Source: Molecules advertises the City class so source selection
// finds it, and Execute answers star sub-queries by scanning the rows.
type csvSource struct {
	header []string
	rows   [][]string
}

func newCSVSource(data string) (*csvSource, error) {
	records, err := csv.NewReader(strings.NewReader(data)).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("empty CSV")
	}
	return &csvSource{header: records[0], rows: records[1:]}, nil
}

// ID implements lake.Source.
func (s *csvSource) ID() string { return "cities-csv" }

// Molecules implements lake.Source. The country predicate links to the
// Country class, whose molecules live in the RDF graph source — a
// cross-source link the engine joins over.
func (s *csvSource) Molecules() []lake.Molecule {
	return []lake.Molecule{{
		Class: classCity,
		Predicates: []lake.Predicate{
			{IRI: predCityName},
			{IRI: predCityIn, LinkedClass: classCountry},
			{IRI: predPopulation},
		},
	}}
}

func (s *csvSource) field(row []string, name string) string {
	for i, h := range s.header {
		if h == name && i < len(row) {
			return row[i]
		}
	}
	return ""
}

// term renders one CSV cell as the RDF term of a predicate.
func (s *csvSource) term(row []string, pred string) (ontario.Term, bool) {
	switch pred {
	case predCityName:
		return lake.Literal(s.field(row, "name")), true
	case predCityIn:
		return lake.IRI(countryIRIPrefix + s.field(row, "country")), true
	case predPopulation:
		n, err := strconv.ParseInt(s.field(row, "population"), 10, 64)
		if err != nil {
			return ontario.Term{}, false
		}
		return lake.Integer(n), true
	default:
		return ontario.Term{}, false
	}
}

// Execute implements lake.Source: each CSV row is one City entity; a row
// matches a star when every pattern agrees with it. Seed blocks from
// dependent joins prune non-compatible rows before they are returned.
func (s *csvSource) Execute(ctx context.Context, req *lake.Request) ([]lake.Binding, error) {
	var out []lake.Binding
	for _, star := range req.Stars {
		for _, row := range s.rows {
			b := lake.Binding{}
			subject := lake.IRI(cityIRIPrefix + s.field(row, "id"))
			matched := true
			for _, tp := range star.Patterns {
				// Subject: the star's subject variable or a fixed IRI.
				if tp.S.IsVar() {
					b[tp.S.Var] = subject
				} else if !tp.S.Term.Equal(subject) {
					matched = false
					break
				}
				if tp.P.IsVar() {
					matched = false // predicate variables are not supported
					break
				}
				if tp.P.Term.Value == lake.RDFType {
					if !tp.O.IsVar() && tp.O.Term.Value != classCity {
						matched = false
						break
					}
					continue
				}
				obj, ok := s.term(row, tp.P.Term.Value)
				if !ok {
					matched = false
					break
				}
				if tp.O.IsVar() {
					if prev, bound := b[tp.O.Var]; bound && !prev.Equal(obj) {
						matched = false
						break
					}
					b[tp.O.Var] = obj
				} else if !tp.O.Term.Equal(obj) {
					matched = false
					break
				}
			}
			if !matched {
				continue
			}
			if len(req.Seeds) > 0 {
				compatible := false
				for _, seed := range req.Seeds {
					if seed.Compatible(b) {
						compatible = true
						break
					}
				}
				if !compatible {
					continue
				}
			}
			out = append(out, b)
		}
	}
	return out, nil
}

// countryTriples is the RDF side of the lake: countries with names and
// continents, typed so molecule derivation finds them.
func countryTriples() []lake.Triple {
	countries := []struct{ code, name, continent string }{
		{"de", "Germany", "Europe"},
		{"fr", "France", "Europe"},
		{"jp", "Japan", "Asia"},
		{"uy", "Uruguay", "South America"},
	}
	var out []lake.Triple
	for _, c := range countries {
		iri := lake.IRI(countryIRIPrefix + c.code)
		out = append(out,
			lake.Triple{S: iri, P: lake.IRI(lake.RDFType), O: lake.IRI(classCountry)},
			lake.Triple{S: iri, P: lake.IRI(predCountryName), O: lake.Literal(c.name)},
			lake.Triple{S: iri, P: lake.IRI(predContinent), O: lake.Literal(c.continent)},
		)
	}
	return out
}

func main() {
	src, err := newCSVSource(citiesCSV)
	if err != nil {
		log.Fatal(err)
	}
	l, err := lake.NewBuilder().
		AddSource(src).
		AddGraph("countries", countryTriples()).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(l)

	// European cities over a million inhabitants: the city star answers
	// from the CSV source, the country star from the RDF graph, and the
	// engine joins them across sources.
	query := `
SELECT ?city ?country ?pop WHERE {
  ?c <` + predCityName + `> ?city .
  ?c <` + predCityIn + `> ?co .
  ?c <` + predPopulation + `> ?pop .
  ?co <` + predCountryName + `> ?country .
  ?co <` + predContinent + `> "Europe" .
  FILTER (?pop > 1000000)
}`
	res, err := eng.Query(context.Background(), query, ontario.WithAwarePlan())
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	fmt.Println("European cities with more than a million inhabitants:")
	for res.Next() {
		b := res.Binding()
		fmt.Printf("  %-12s %-8s %s\n", b["city"].Value, b["country"].Value, b["pop"].Value)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	st := res.Stats()
	fmt.Printf("\n%d answers, %d simulated network messages\n", st.Answers, st.Messages)

	fmt.Println("\nplan:")
	fmt.Print(res.Plan())
}
