// Quickstart: build the synthetic LSLOD Semantic Data Lake, run one
// federated SPARQL query with both plan types, and compare.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ontario"
	"ontario/internal/lslod"
)

func main() {
	// A Semantic Data Lake: ten life-science datasets, each stored in its
	// own relational database with 3NF tables and selective indexes.
	lake, err := lslod.BuildLake(lslod.DefaultScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(lake.Lake)

	// Which diseases are associated with genes on chromosome 7?
	query := `
SELECT ?disease ?name ?glabel WHERE {
  ?disease <` + lslod.PredDiseaseName + `> ?name .
  ?disease <` + lslod.PredAssociatedGene + `> ?gene .
  ?gene <` + lslod.PredGeneLabel + `> ?glabel .
  ?gene <` + lslod.PredGeneChromosome + `> ?chrom .
  FILTER (?chrom = "chr7")
}`

	ctx := context.Background()
	for _, mode := range []string{"unaware", "aware"} {
		opts := []ontario.Option{
			ontario.WithNetwork(ontario.Gamma2), // ~3 ms mean latency per answer
			ontario.WithNetworkScale(0.2),      // sleep at 20% of sampled delays
		}
		if mode == "aware" {
			opts = append(opts, ontario.WithAwarePlan())
		} else {
			opts = append(opts, ontario.WithUnawarePlan())
		}
		res, err := eng.Query(ctx, query, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := res.Collect(); err != nil {
			log.Fatal(err)
		}
		st := res.Stats()
		fmt.Printf("%-8s plan: %3d answers in %8s (first after %8s, %4d network messages)\n",
			mode, st.Answers,
			st.Duration.Round(10*time.Microsecond),
			st.TimeToFirstAnswer.Round(10*time.Microsecond),
			st.Messages)
	}

	// Show the physical-design-aware plan: both stars live in Diseasome
	// and the join attribute is indexed, so Heuristic 1 merged them into a
	// single SQL query.
	plan, err := eng.Explain(query, ontario.WithAwarePlan())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphysical-design-aware plan:\n%s", plan)
}
