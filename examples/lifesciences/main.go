// Lifesciences: federated queries spanning several datasets of the lake,
// including a mixed lake where some sources stay native RDF — the
// heterogeneity a Semantic Data Lake is built for.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"ontario"
	"ontario/internal/lslod"
)

func main() {
	ctx := context.Background()

	// A mixed lake: Diseasome and KEGG stay native RDF, the other eight
	// datasets are relational.
	lake, err := lslod.BuildMixedLake(lslod.DefaultScale(), 1,
		[]string{lslod.DSDiseasome, lslod.DSKEGG})
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(lake.Lake)

	// 1. Which recruiting trials study drugs for diseases linked to a gene
	//    on chromosome 17? (LinkedCT ⋈ Diseasome ⋈ DrugBank)
	trialQuery := `
SELECT ?title ?dname ?drugname WHERE {
  ?trial <` + lslod.PredTrialTitle + `> ?title .
  ?trial <` + lslod.PredStatus + `> ?status .
  ?trial <` + lslod.PredCondition + `> ?disease .
  ?trial <` + lslod.PredIntervention + `> ?drug .
  ?disease <` + lslod.PredDiseaseName + `> ?dname .
  ?disease <` + lslod.PredAssociatedGene + `> ?gene .
  ?gene <` + lslod.PredGeneChromosome + `> "chr17" .
  ?drug <` + lslod.PredGenericName + `> ?drugname .
  FILTER (?status = "Recruiting")
}`
	res, err := eng.Query(ctx, trialQuery,
		ontario.WithAwarePlan(), ontario.WithNetwork(ontario.NoDelay))
	if err != nil {
		log.Fatal(err)
	}
	answers, err := res.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recruiting trials for chr17-linked diseases: %d\n", len(answers))
	for i, b := range answers {
		if i >= 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s  (drug %s)\n", b["title"].Value, b["drugname"].Value)
	}

	// 2. Side effects shared by drugs targeting the same gene
	//    (SIDER ⋈ DrugBank ⋈ Diseasome), aggregated client-side.
	effectQuery := `
SELECT ?effect ?drugname WHERE {
  ?se <` + lslod.PredEffectName + `> ?effect .
  ?se <` + lslod.PredCausedBy + `> ?drug .
  ?drug <` + lslod.PredGenericName + `> ?drugname .
  ?drug <` + lslod.PredDrugCategory + `> "antineoplastic" .
}`
	res, err = eng.Query(ctx, effectQuery,
		ontario.WithAwarePlan(), ontario.WithNetwork(ontario.NoDelay))
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	reports := 0
	for res.Next() {
		reports++
		counts[res.Binding()["effect"].Value]++
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	type ec struct {
		name string
		n    int
	}
	var top []ec
	for n, c := range counts {
		top = append(top, ec{n, c})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].name < top[j].name
	})
	fmt.Printf("\nmost reported side effects of antineoplastic drugs (%d reports):\n", reports)
	for i, e := range top {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-20s %d\n", e.name, e.n)
	}

	// 3. Gene–drug evidence from PharmGKB joined with patient mutations
	//    from TCGA.
	pgkbQuery := `
SELECT ?patient ?glabel ?drugname WHERE {
  ?assoc <` + lslod.PredPAGene + `> ?gene .
  ?assoc <` + lslod.PredPADrug + `> ?drug .
  ?assoc <` + lslod.PredEvidence + `> "clinical-annotation" .
  ?gene <` + lslod.PredGeneLabel + `> ?glabel .
  ?patient <` + lslod.PredMutatedGene + `> ?gene .
  ?drug <` + lslod.PredGenericName + `> ?drugname .
}`
	res, err = eng.Query(ctx, pgkbQuery,
		ontario.WithAwarePlan(), ontario.WithNetwork(ontario.NoDelay))
	if err != nil {
		log.Fatal(err)
	}
	matches, err := res.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npatients with mutations in clinically annotated genes: %d matches\n", len(matches))

	// 4. OPTIONAL and UNION: every antineoplastic drug, with its trials if
	//    any, and anything referencing it from SIDER or PharmGKB.
	optUnionQuery := `
SELECT ?drugname ?title ?ref WHERE {
  ?drug <` + lslod.PredGenericName + `> ?drugname .
  ?drug <` + lslod.PredDrugCategory + `> "antineoplastic" .
  { ?ref <` + lslod.PredCausedBy + `> ?drug . }
  UNION
  { ?ref <` + lslod.PredPADrug + `> ?drug . }
  OPTIONAL {
    ?trial <` + lslod.PredIntervention + `> ?drug .
    ?trial <` + lslod.PredTrialTitle + `> ?title .
  }
}`
	res, err = eng.Query(ctx, optUnionQuery,
		ontario.WithAwarePlan(), ontario.WithNetwork(ontario.NoDelay))
	if err != nil {
		log.Fatal(err)
	}
	refs, err := res.Collect()
	if err != nil {
		log.Fatal(err)
	}
	withTrial := 0
	for _, b := range refs {
		if _, ok := b["title"]; ok {
			withTrial++
		}
	}
	fmt.Printf("\nreferences to antineoplastic drugs (SIDER ∪ PharmGKB): %d, of which %d are in trials\n",
		len(refs), withTrial)
}
