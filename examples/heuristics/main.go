// Heuristics: show exactly what the two heuristics change — the plan
// shapes for the motivating example (Figure 1), the SQL produced by the
// optimized vs naive translation for Q2, and Heuristic 2's network-
// dependent filter placement.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ontario"
	"ontario/internal/lslod"
)

func main() {
	lake, err := lslod.BuildLake(lslod.DefaultScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	eng := ontario.New(lake.Lake)
	ctx := context.Background()

	q4 := ""
	for _, q := range lslod.Queries() {
		if q.ID == "Q4" {
			q4 = q.Text
		}
	}

	fmt.Println("=== Motivating example (Figure 1): Q4 ===")
	fmt.Println("\n(b) physical-design-UNAWARE plan — every join and filter at the engine:")
	plan, err := eng.Explain(q4, ontario.WithUnawarePlan())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)

	fmt.Println("\n(c) physical-design-AWARE plan — the Diseasome join is pushed down (Heuristic 1),")
	fmt.Println("    the species filter stays at the engine (not indexed, 15% rule):")
	plan, err = eng.Explain(q4, ontario.WithAwarePlan())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)

	fmt.Println("\n=== Heuristic 2: filter placement depends on the network ===")
	q3 := ""
	for _, q := range lslod.Queries() {
		if q.ID == "Q3" {
			q3 = q.Text
		}
	}
	for _, net := range []ontario.Profile{ontario.Gamma1, ontario.Gamma3} {
		plan, err := eng.Explain(q3,
			ontario.WithAwarePlan(), ontario.WithHeuristic2(), ontario.WithNetwork(net))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nnetwork %s (mean %s):\n%s", net.Name, net.MeanLatency(), plan)
	}

	fmt.Println("\n=== Heuristic 1 and translation quality (Q2) ===")
	q2 := ""
	for _, q := range lslod.Queries() {
		if q.ID == "Q2" {
			q2 = q.Text
		}
	}
	for _, cfg := range []struct {
		label string
		opts  []ontario.Option
	}{
		{"unaware (two services, engine join)", []ontario.Option{ontario.WithUnawarePlan()}},
		{"aware + naive translation", []ontario.Option{ontario.WithAwarePlan(), ontario.WithNaiveTranslation()}},
		{"aware + optimized translation", []ontario.Option{ontario.WithAwarePlan()}},
	} {
		opts := append(cfg.opts, ontario.WithNetwork(ontario.Gamma2), ontario.WithNetworkScale(0.2))
		res, err := eng.Query(ctx, q2, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := res.Collect(); err != nil {
			log.Fatal(err)
		}
		st := res.Stats()
		fmt.Printf("%-38s %3d answers, %8s, %4d messages\n",
			cfg.label, st.Answers,
			st.Duration.Round(10*time.Microsecond), st.Messages)
	}
	fmt.Println("\nThe naive translation fetches each star separately and joins inside the wrapper,")
	fmt.Println("so pushing the join down buys nothing — Ontario's reported limitation. The optimized")
	fmt.Println("translation sends one SQL query and cuts both time and transferred messages.")
}
