// Benchmarks regenerating the paper's evaluation artifacts, one benchmark
// family per table/figure (see DESIGN.md's experiment index), plus the
// ablations of the design choices DESIGN.md calls out. Network sleeping is
// scaled down so runs stay fast; the relative shapes (who wins, by roughly
// what factor) are what matters.
//
// Run with: go test -bench=. -benchmem
package ontario_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ontario"
	"ontario/internal/core"
	"ontario/internal/exp"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
	"ontario/internal/rdb"
	"ontario/internal/sparql"
	"ontario/internal/sql"
)

// benchNetScale shrinks real sleeping during benchmarks while keeping the
// sampled delays (and thus the relative network impact) intact.
const benchNetScale = 0.02

var (
	benchOnce sync.Once
	benchL    *lslod.Lake
)

func benchLake(b *testing.B) *lslod.Lake {
	b.Helper()
	benchOnce.Do(func() {
		lake, err := lslod.BuildLake(lslod.SmallScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		benchL = lake
	})
	return benchL
}

func runCell(b *testing.B, cfg exp.Config) {
	b.Helper()
	lake := benchLake(b)
	runner := exp.NewRunner(lake)
	runner.NetworkScale = benchNetScale
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var answers, messages int
	for i := 0; i < b.N; i++ {
		row, err := runner.Run(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		answers, messages = row.Answers, row.Messages
	}
	b.ReportMetric(float64(answers), "answers")
	b.ReportMetric(float64(messages), "messages")
}

// BenchmarkGrid regenerates E3: the paper's eight configurations (2 QEP
// types × 4 network settings) for each of Q1–Q5. Expected shape: aware ≤
// unaware, with the gap growing from No Delay to Gamma 3.
func BenchmarkGrid(b *testing.B) {
	for _, q := range []string{"Q1", "Q2", "Q3", "Q4", "Q5"} {
		for _, aware := range []bool{false, true} {
			for _, net := range netsim.Profiles() {
				mode := "unaware"
				if aware {
					mode = "aware"
				}
				name := fmt.Sprintf("%s/%s/%s", q, mode, profileSlug(net.Name))
				b.Run(name, func(b *testing.B) {
					runCell(b, exp.Config{QueryID: q, Aware: aware, Network: net})
				})
			}
		}
	}
}

// BenchmarkFig2AnswerTraces regenerates E2 (Figure 2): Q3 under both QEP
// types and all network settings. The aware plan pushes the indexed
// chromosome filter down, shrinking the transferred intermediate result;
// slow networks hit the unaware plan hardest.
func BenchmarkFig2AnswerTraces(b *testing.B) {
	for _, aware := range []bool{false, true} {
		for _, net := range netsim.Profiles() {
			mode := "unaware"
			if aware {
				mode = "aware"
			}
			b.Run(fmt.Sprintf("%s/%s", mode, profileSlug(net.Name)), func(b *testing.B) {
				runCell(b, exp.Config{QueryID: "Q3", Aware: aware, Network: net})
			})
		}
	}
}

// BenchmarkH2FilterPlacement regenerates E4/E5: filter placement for Q1
// (weakly selective LIKE the source serves poorly) and Q3 (selective
// indexed equality the source serves well).
func BenchmarkH2FilterPlacement(b *testing.B) {
	for _, q := range []string{"Q1", "Q3"} {
		for _, net := range []netsim.Profile{netsim.NoDelay, netsim.Gamma3} {
			for _, aware := range []bool{false, true} {
				place := "engine"
				if aware {
					place = "source"
				}
				b.Run(fmt.Sprintf("%s/filter-at-%s/%s", q, place, profileSlug(net.Name)), func(b *testing.B) {
					runCell(b, exp.Config{QueryID: q, Aware: aware, Network: net})
				})
			}
		}
	}
}

// BenchmarkH1TranslationQuality regenerates E6: Q2 with the join of two
// same-source stars. Expected shape (paper): naive translation makes the
// pushdown useless or worse; the optimized translation at least halves the
// unaware time.
func BenchmarkH1TranslationQuality(b *testing.B) {
	for _, net := range []netsim.Profile{netsim.NoDelay, netsim.Gamma2} {
		b.Run("unaware/"+profileSlug(net.Name), func(b *testing.B) {
			runCell(b, exp.Config{QueryID: "Q2", Aware: false, Network: net})
		})
		b.Run("aware-naive/"+profileSlug(net.Name), func(b *testing.B) {
			runCell(b, exp.Config{QueryID: "Q2", Aware: true, Naive: true, Network: net})
		})
		b.Run("aware-optimized/"+profileSlug(net.Name), func(b *testing.B) {
			runCell(b, exp.Config{QueryID: "Q2", Aware: true, Network: net})
		})
	}
}

// BenchmarkJoinOperators is ablation A2: the engine-level join operator
// under network delay. The non-blocking symmetric hash join (ANAPSID's
// adaptive operator) should dominate the blocking nested loop.
func BenchmarkJoinOperators(b *testing.B) {
	ops := []struct {
		name string
		op   core.JoinOperator
	}{
		{"symmetric-hash", core.JoinSymmetricHash},
		{"nested-loop", core.JoinNestedLoop},
		{"bind", core.JoinBind},
	}
	for _, o := range ops {
		for _, net := range []netsim.Profile{netsim.NoDelay, netsim.Gamma2} {
			b.Run(o.name+"/"+profileSlug(net.Name), func(b *testing.B) {
				runCell(b, exp.Config{QueryID: "Q5", Aware: false, Network: net, JoinOp: o.op})
			})
		}
	}
}

// BenchmarkSelectivityRule is ablation A3: the paper's 15% indexing rule.
// Equality on probeset.chromosome (indexed, 24 values) vs equality on
// probeset.species (index denied: Homo sapiens exceeds 15% of records).
func BenchmarkSelectivityRule(b *testing.B) {
	lake := benchLake(b)
	db := lake.Catalog.Source(lslod.DSAffymetrix).DB
	queries := map[string]string{
		"indexed-chromosome": "SELECT id FROM probeset WHERE chromosome = 'chr11'",
		"denied-species":     "SELECT id FROM probeset WHERE species = 'Homo sapiens'",
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexKinds is ablation A1: hash vs B+tree secondary indexes vs
// a sequential scan, for point lookups and range scans.
func BenchmarkIndexKinds(b *testing.B) {
	mk := func(kind string) *rdb.Database {
		db := rdb.NewDatabase("ablate")
		t, err := db.CreateTable(&rdb.Schema{
			Name: "rows",
			Columns: []rdb.Column{
				{Name: "id", Type: rdb.TypeInt, NotNull: true},
				{Name: "k", Type: rdb.TypeInt},
			},
			PrimaryKey: "id",
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 20000; i++ {
			if err := t.Insert(rdb.Row{rdb.IntValue(int64(i)), rdb.IntValue(int64(i % 997))}); err != nil {
				b.Fatal(err)
			}
		}
		switch kind {
		case "hash":
			if err := t.CreateIndex(rdb.IndexSpec{Column: "k", Kind: rdb.IndexHash}); err != nil {
				b.Fatal(err)
			}
		case "btree":
			if err := t.CreateIndex(rdb.IndexSpec{Column: "k", Kind: rdb.IndexBTree}); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	for _, kind := range []string{"scan", "hash", "btree"} {
		db := mk(kind)
		b.Run("point/"+kind, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query("SELECT id FROM rows WHERE k = 500"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, kind := range []string{"scan", "btree"} {
		db := mk(kind)
		b.Run("range/"+kind, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query("SELECT id FROM rows WHERE k >= 100 AND k <= 120"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecomposition is ablation A4 (the paper's future-work
// question): star-shaped vs triple-based decomposition. Triple-based plans
// issue more service requests and transfer more intermediate results.
func BenchmarkDecomposition(b *testing.B) {
	lake := benchLake(b)
	ctx := context.Background()
	for _, mode := range []string{"star", "triple"} {
		for _, net := range []ontario.Profile{ontario.NoDelay, ontario.Gamma2} {
			b.Run(mode+"/"+profileSlug(net.Name), func(b *testing.B) {
				eng := ontario.New(lake.Lake)
				opts := []ontario.Option{
					ontario.WithUnawarePlan(),
					ontario.WithNetwork(net),
					ontario.WithNetworkScale(benchNetScale),
				}
				if mode == "triple" {
					opts = append(opts, ontario.WithTripleDecomposition(), ontario.WithUnawarePlan())
				}
				b.ReportAllocs()
				var answers, messages int
				for i := 0; i < b.N; i++ {
					res, err := eng.Query(ctx, lslod.Queries()[1].Text, opts...)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := res.Collect(); err != nil {
						b.Fatal(err)
					}
					st := res.Stats()
					answers, messages = st.Answers, st.Messages
				}
				b.ReportMetric(float64(answers), "answers")
				b.ReportMetric(float64(messages), "messages")
			})
		}
	}
}

// BenchmarkNormalization is ablation A5 (the paper's future-work
// question): 3NF vs denormalized storage of Diseasome, on Q2 (same-source
// star join).
func BenchmarkNormalization(b *testing.B) {
	den, err := lslod.BuildDenormalizedLake(lslod.SmallScale(), 1)
	if err != nil {
		b.Fatal(err)
	}
	lakes := map[string]*lslod.Lake{"3nf": benchLake(b), "denormalized": den}
	ctx := context.Background()
	for _, layout := range []string{"3nf", "denormalized"} {
		for _, aware := range []bool{false, true} {
			mode := "unaware"
			if aware {
				mode = "aware"
			}
			b.Run(layout+"/"+mode, func(b *testing.B) {
				eng := ontario.New(lakes[layout].Lake)
				opts := []ontario.Option{ontario.WithNetworkScale(0)}
				if aware {
					opts = append(opts, ontario.WithAwarePlan())
				} else {
					opts = append(opts, ontario.WithUnawarePlan())
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := eng.Query(ctx, lslod.Queries()[1].Text, opts...)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := res.Collect(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPlanGeneration measures the planner alone (decomposition,
// source selection, heuristics).
func BenchmarkPlanGeneration(b *testing.B) {
	lake := benchLake(b)
	eng := ontario.New(lake.Lake)
	for _, q := range lslod.Queries() {
		b.Run(q.ID, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Explain(q.Text, ontario.WithAwarePlan()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSPARQLParse and BenchmarkSQLParse measure the frontends.
func BenchmarkSPARQLParse(b *testing.B) {
	text := lslod.Queries()[3].Text
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLParse(b *testing.B) {
	const stmt = "SELECT t1.c0, t2.c1 FROM disease t1 JOIN disease_gene t2 ON t2.disease_id = t1.id WHERE t1.name LIKE '%itis%' AND t2.gene_id >= 10 ORDER BY t1.id LIMIT 100"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sql.Parse(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGammaSampler measures the netsim gamma sampler.
func BenchmarkGammaSampler(b *testing.B) {
	sim := netsim.NewSimulator(netsim.Gamma3, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Sample()
	}
}

func profileSlug(name string) string {
	switch name {
	case "No Delay":
		return "nodelay"
	case "Gamma 1":
		return "gamma1"
	case "Gamma 2":
		return "gamma2"
	default:
		return "gamma3"
	}
}
