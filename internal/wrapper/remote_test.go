package wrapper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

const resultsDoc = `{"head":{"vars":["s","name"]},"results":{"bindings":[` +
	`{"s":{"type":"uri","value":"http://ex/p1"},"name":{"type":"literal","value":"Ada"}},` +
	`{"s":{"type":"uri","value":"http://ex/p2"},"name":{"type":"literal","value":"Grace","xml:lang":"en"}}` +
	`]}}`

func personStar() *StarQuery {
	return &StarQuery{
		SubjectVar: "s",
		Class:      "http://ex/Person",
		Patterns: []sparql.TriplePattern{
			{S: sparql.VarNode("s"), P: sparql.TermNode(rdf.NewIRI("http://ex/name")), O: sparql.VarNode("name")},
		},
	}
}

func newRemote(t *testing.T, url string, cfg ResilienceConfig) *RemoteSPARQLWrapper {
	t.Helper()
	return NewRemoteSPARQLWrapper("remote", url, NewHealthRegistry(cfg), nil, 0)
}

func drain(t *testing.T, s interface {
	Batches() <-chan []sparql.Binding
}) []sparql.Binding {
	t.Helper()
	var out []sparql.Binding
	for batch := range s.Batches() {
		out = append(out, batch...)
	}
	return out
}

func TestRemoteWrapperFetchesAndDecodes(t *testing.T) {
	var gotQuery atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/sparql-query" {
			t.Errorf("Content-Type = %q", ct)
		}
		body, _ := io.ReadAll(r.Body)
		gotQuery.Store(string(body))
		fmt.Fprint(w, resultsDoc)
	}))
	defer srv.Close()
	w := newRemote(t, srv.URL, fastResilience())
	s, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personStar()}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sols := drain(t, s)
	if len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2", len(sols))
	}
	if got := sols[0]["s"]; got != rdf.NewIRI("http://ex/p1") {
		t.Fatalf("sols[0][s] = %v", got)
	}
	if got := sols[1]["name"]; got != rdf.NewLangLiteral("Grace", "en") {
		t.Fatalf("sols[1][name] = %v", got)
	}
	q, _ := gotQuery.Load().(string)
	if !strings.Contains(q, "?s <http://ex/name> ?name .") {
		t.Fatalf("query text %q lacks the star pattern", q)
	}
	// The compiled text must parse under the repo's own grammar (the other
	// federation side is an ontario-server).
	if _, err := sparql.Parse(q); err != nil {
		t.Fatalf("generated query does not re-parse: %v\n%s", err, q)
	}
}

func TestRemoteWrapperRetriesFlakyEndpoint(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			http.Error(w, "try later", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, resultsDoc)
	}))
	defer srv.Close()
	w := newRemote(t, srv.URL, fastResilience())
	s, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personStar()}})
	if err != nil {
		t.Fatalf("Execute after 2x503: %v", err)
	}
	if sols := drain(t, s); len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2", len(sols))
	}
	if calls != 3 {
		t.Fatalf("endpoint saw %d requests, want 3", calls)
	}
	snap := w.health.Snapshot()
	if len(snap) != 1 || snap[0].Retries != 2 {
		t.Fatalf("health = %+v, want 2 retries recorded", snap)
	}
}

func TestRemoteWrapperTruncatedBodyIsRetryable(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			// A valid-looking prefix with no closing braces: the upstream
			// died mid-stream.
			io.WriteString(w, resultsDoc[:len(resultsDoc)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			if hj, ok := w.(http.Hijacker); ok {
				conn, _, _ := hj.Hijack()
				conn.Close()
			}
			return
		}
		fmt.Fprint(w, resultsDoc)
	}))
	defer srv.Close()
	w := newRemote(t, srv.URL, fastResilience())
	s, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personStar()}})
	if err != nil {
		t.Fatalf("Execute after truncated first attempt: %v", err)
	}
	if sols := drain(t, s); len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2", len(sols))
	}
	if calls < 2 {
		t.Fatal("truncated body was not retried")
	}
}

func TestRemoteWrapperBadRequestIsPermanent(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "parse error", http.StatusBadRequest)
	}))
	defer srv.Close()
	w := newRemote(t, srv.URL, fastResilience())
	_, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personStar()}})
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("Execute = %v, want HTTP 400 error", err)
	}
	if calls != 1 {
		t.Fatalf("endpoint saw %d requests, want 1 (400 is permanent)", calls)
	}
}

func TestRemoteWrapperDownEndpointOpensCircuit(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // fully down: connection refused
	cfg := fastResilience()
	cfg.MaxRetries = 1
	cfg.BreakerThreshold = 2
	h := NewHealthRegistry(cfg)
	w := NewRemoteSPARQLWrapper("remote", url, h, nil, 0)
	req := &Request{Stars: []*StarQuery{personStar()}}
	if _, err := w.Execute(context.Background(), req); err == nil {
		t.Fatal("Execute against a down endpoint succeeded")
	}
	if st := h.State("remote"); st != BreakerOpen {
		t.Fatalf("breaker = %v after %d consecutive failures, want open", st, cfg.BreakerThreshold)
	}
	_, err := w.Execute(context.Background(), req)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Execute with open circuit = %v, want ErrCircuitOpen", err)
	}
}

func TestRemoteWrapperSeedBlockFilter(t *testing.T) {
	var gotQuery atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		gotQuery.Store(string(body))
		fmt.Fprint(w, resultsDoc)
	}))
	defer srv.Close()
	w := newRemote(t, srv.URL, fastResilience())
	seeds := []sparql.Binding{
		{"s": rdf.NewIRI("http://ex/p1")},
		{"s": rdf.NewIRI("http://ex/p3")},
	}
	s, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personStar()}, Seeds: seeds})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sols := drain(t, s)
	// p2 is not among the seeds: the local re-check drops it even though the
	// canned endpoint returned it.
	if len(sols) != 1 || sols[0]["s"] != rdf.NewIRI("http://ex/p1") {
		t.Fatalf("block solutions = %v, want just p1", sols)
	}
	q, _ := gotQuery.Load().(string)
	if !strings.Contains(q, `?s = <http://ex/p1>`) || !strings.Contains(q, "||") {
		t.Fatalf("query %q lacks the seed disjunction", q)
	}
	if _, err := sparql.Parse(q); err != nil {
		t.Fatalf("generated block query does not re-parse: %v\n%s", err, q)
	}
}

func TestRemoteWrapperSingleSeedSubstitutedAndMerged(t *testing.T) {
	var gotQuery atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		gotQuery.Store(string(body))
		// Seeded subject: only name comes back.
		fmt.Fprint(w, `{"head":{"vars":["name"]},"results":{"bindings":[{"name":{"type":"literal","value":"Ada"}}]}}`)
	}))
	defer srv.Close()
	w := newRemote(t, srv.URL, fastResilience())
	seed := sparql.Binding{"s": rdf.NewIRI("http://ex/p1")}
	s, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personStar()}, Seed: seed})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sols := drain(t, s)
	if len(sols) != 1 {
		t.Fatalf("got %d solutions, want 1", len(sols))
	}
	// Bind-join semantics: the seed is merged back into the answer.
	if sols[0]["s"] != rdf.NewIRI("http://ex/p1") || sols[0]["name"] != rdf.NewLiteral("Ada") {
		t.Fatalf("merged solution = %v", sols[0])
	}
	q, _ := gotQuery.Load().(string)
	if !strings.Contains(q, "<http://ex/p1> <http://ex/name> ?name .") {
		t.Fatalf("query %q does not substitute the seed", q)
	}
}
