package wrapper

import (
	"context"
	"sync"

	"ontario/internal/engine"
	"ontario/internal/sparql"
)

// SourceLimiter bounds the number of in-flight requests per source. It is
// shared across every query execution of an engine, so a burst of
// bind-join blocks issued by many concurrent queries cannot stampede a
// single source: at most Limit() requests per source are executing (from
// wrapper invocation until the response stream is fully consumed) and the
// rest wait in FIFO-ish order on the source's semaphore, honouring context
// cancellation while they wait.
type SourceLimiter struct {
	limit int

	mu       sync.Mutex
	sems     map[string]chan struct{}
	inflight map[string]int
	peak     map[string]int
}

// NewSourceLimiter returns a limiter allowing perSource concurrent
// in-flight requests for each source. perSource < 1 is treated as 1.
func NewSourceLimiter(perSource int) *SourceLimiter {
	if perSource < 1 {
		perSource = 1
	}
	return &SourceLimiter{
		limit:    perSource,
		sems:     make(map[string]chan struct{}),
		inflight: make(map[string]int),
		peak:     make(map[string]int),
	}
}

// Limit returns the per-source in-flight limit.
func (l *SourceLimiter) Limit() int { return l.limit }

func (l *SourceLimiter) sem(sourceID string) chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.sems[sourceID]
	if !ok {
		s = make(chan struct{}, l.limit)
		l.sems[sourceID] = s
	}
	return s
}

// Acquire blocks until the source has a free in-flight slot or the context
// is cancelled.
func (l *SourceLimiter) Acquire(ctx context.Context, sourceID string) error {
	select {
	case l.sem(sourceID) <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	l.mu.Lock()
	l.inflight[sourceID]++
	if l.inflight[sourceID] > l.peak[sourceID] {
		l.peak[sourceID] = l.inflight[sourceID]
	}
	l.mu.Unlock()
	return nil
}

// Release frees one in-flight slot of the source.
func (l *SourceLimiter) Release(sourceID string) {
	l.mu.Lock()
	l.inflight[sourceID]--
	s := l.sems[sourceID]
	l.mu.Unlock()
	<-s
}

// InFlight returns the source's current number of in-flight requests.
func (l *SourceLimiter) InFlight(sourceID string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight[sourceID]
}

// Peak returns the highest number of simultaneously in-flight requests
// observed for the source.
func (l *SourceLimiter) Peak(sourceID string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peak[sourceID]
}

// Sources lists the sources that have seen at least one request.
func (l *SourceLimiter) Sources() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.sems))
	for id := range l.sems {
		out = append(out, id)
	}
	return out
}

// Limited wraps w so that every Execute holds one of the limiter's
// in-flight slots for the source from invocation until the response stream
// is drained (or the context is cancelled), except when a slow consumer
// falls relayBacklogCap batches behind — then the slot is released early
// rather than held while blocked (see Execute). A nil limiter returns w
// unchanged.
func Limited(w Wrapper, l *SourceLimiter) Wrapper {
	if l == nil {
		return w
	}
	return &limitedWrapper{inner: w, lim: l}
}

type limitedWrapper struct {
	inner Wrapper
	lim   *SourceLimiter
}

// SourceID implements Wrapper.
func (w *limitedWrapper) SourceID() string { return w.inner.SourceID() }

// relayBacklogCap bounds how many batches the limiter's relay buffers on
// behalf of a slow consumer. Below the cap the relay absorbs batches so a
// dependent join waiting on another request to the same source cannot
// deadlock the limiter; at the cap it gives the source slot back and
// relays the rest with backpressure instead of buffering the whole
// response in memory.
const relayBacklogCap = 64

// Execute implements Wrapper. The slot is held while the source produces
// the response — from invocation until the inner stream closes (all
// simulated response messages transferred) — but never while blocked on
// the downstream consumer: up to relayBacklogCap batches the consumer is
// slow to read are buffered locally (and opportunistically drained
// between receives), and once the consumer falls the full cap behind, the
// slot is released BEFORE the relay starts blocking sends. Either way a
// dependent join waiting on another request to the same source cannot
// deadlock the limiter — at the price, past the cap, of the source's true
// concurrency briefly exceeding the limit.
func (w *limitedWrapper) Execute(ctx context.Context, req *Request) (*engine.Stream, error) {
	id := w.inner.SourceID()
	if err := w.lim.Acquire(ctx, id); err != nil {
		return nil, err
	}
	in, err := w.inner.Execute(ctx, req)
	if err != nil {
		w.lim.Release(id)
		return nil, err
	}
	out := engine.NewStream(4)
	go func() {
		defer out.Close()
		released := false
		release := func() {
			if !released {
				released = true
				w.lim.Release(id)
			}
		}
		defer release()
		var backlog [][]sparql.Binding
		for batch := range in.Batches() {
			// Drain whatever the consumer will take before growing the
			// backlog; order is preserved because the backlog always goes
			// first.
			for len(backlog) > 0 && out.TrySendBatch(backlog[0]) {
				backlog[0] = nil
				backlog = backlog[1:]
			}
			if len(backlog) == 0 && out.TrySendBatch(batch) {
				continue
			}
			backlog = append(backlog, batch)
			if len(backlog) >= relayBacklogCap {
				// The consumer is a full cap behind: stop absorbing and relay
				// with backpressure. Release the slot first — blocking on the
				// consumer while holding it would reintroduce the dependent-
				// join deadlock the backlog exists to prevent (the consumer
				// may be waiting on another request to this same source).
				release()
				for _, b := range backlog {
					if !out.SendBatch(ctx, b) {
						return
					}
				}
				backlog = nil
			}
		}
		release()
		for _, batch := range backlog {
			if !out.SendBatch(ctx, batch) {
				// SendBatch only fails on cancellation; the inner producer
				// observes the same context and has already closed.
				return
			}
		}
	}()
	return out, nil
}
