package wrapper

import (
	"strings"
	"testing"

	"ontario/internal/catalog"
	"ontario/internal/netsim"
	"ontario/internal/rdb"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

func personSeed(id string) sparql.Binding {
	return sparql.Binding{"p": rdf.NewIRI("http://e/person/" + id)}
}

// TestSQLWrapperMultiSeedIN: a block of subject seeds becomes ONE SQL
// query whose WHERE carries an IN predicate over the subject column, and
// the answers are exactly the union of the per-seed sequential results.
func TestSQLWrapperMultiSeedIN(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	stars := []*StarQuery{star(t, "p", "http://c/Person", `?p <http://p/name> ?n .`)}

	var want []sparql.Binding
	for _, id := range []string{"1", "3", "5"} {
		want = append(want, collect(t, w, &Request{Stars: stars, Seed: personSeed(id)})...)
	}

	got := collect(t, w, &Request{Stars: stars, Seeds: []sparql.Binding{
		personSeed("1"), personSeed("3"), personSeed("5"),
	}})
	if len(got) != 3 || len(want) != 3 {
		t.Fatalf("got %d block answers, %d sequential answers, want 3", len(got), len(want))
	}
	gotKeys := map[string]bool{}
	for _, b := range got {
		gotKeys[b.FullKey()] = true
	}
	for _, b := range want {
		if !gotKeys[b.FullKey()] {
			t.Errorf("sequential answer %s missing from block result", b)
		}
	}

	sqls := w.LastSQL()
	if len(sqls) != 1 {
		t.Fatalf("block request issued %d SQL queries, want 1: %v", len(sqls), sqls)
	}
	if !strings.Contains(sqls[0], "IN (1, 3, 5)") {
		t.Errorf("expected IN seed predicate, got: %s", sqls[0])
	}
}

// TestSQLWrapperMultiSeedOR: seeds constraining two variables become an
// OR-of-conjunctions predicate in a single query.
func TestSQLWrapperMultiSeedOR(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	stars := []*StarQuery{star(t, "p", "http://c/Person", `?p <http://p/name> ?n . ?p <http://p/age> ?a .`)}
	seeds := []sparql.Binding{
		{"n": rdf.NewLiteral("ada"), "a": rdf.IntLiteral(20)},
		{"n": rdf.NewLiteral("alan"), "a": rdf.IntLiteral(40)},
	}
	got := collect(t, w, &Request{Stars: stars, Seeds: seeds})
	if len(got) != 2 {
		t.Fatalf("got %d answers, want 2: %v", len(got), got)
	}
	sqls := w.LastSQL()
	if len(sqls) != 1 {
		t.Fatalf("block request issued %d SQL queries, want 1: %v", len(sqls), sqls)
	}
	if !strings.Contains(sqls[0], " OR ") || !strings.Contains(sqls[0], "AND") {
		t.Errorf("expected OR-of-AND seed predicate, got: %s", sqls[0])
	}
}

// typedSource backs one class with a column of every storage type.
func typedSource(t *testing.T) *catalog.Source {
	t.Helper()
	db := rdb.NewDatabase("typed")
	m, err := db.CreateTable(&rdb.Schema{
		Name: "measurement",
		Columns: []rdb.Column{
			{Name: "id", Type: rdb.TypeInt, NotNull: true},
			{Name: "label", Type: rdb.TypeString, NotNull: true},
			{Name: "value", Type: rdb.TypeFloat, NotNull: true},
			{Name: "valid", Type: rdb.TypeBool, NotNull: true},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []rdb.Row{
		{rdb.IntValue(1), rdb.StringValue("alpha"), rdb.FloatValue(1.5), rdb.BoolValue(true)},
		{rdb.IntValue(2), rdb.StringValue("beta"), rdb.FloatValue(2.5), rdb.BoolValue(false)},
		{rdb.IntValue(3), rdb.StringValue("gamma"), rdb.FloatValue(3.5), rdb.BoolValue(true)},
	}
	for _, r := range rows {
		if err := m.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return &catalog.Source{
		ID:    "typed",
		Model: catalog.ModelRelational,
		DB:    db,
		Mappings: map[string]*catalog.ClassMapping{
			"http://c/M": {
				Class: "http://c/M", Table: "measurement",
				SubjectColumn: "id", SubjectTemplate: "http://e/m/{value}",
				Properties: map[string]*catalog.PropertyMapping{
					"http://p/label": {Predicate: "http://p/label", Column: "label"},
					"http://p/value": {Predicate: "http://p/value", Column: "value"},
					"http://p/valid": {Predicate: "http://p/valid", Column: "valid"},
				},
			},
		},
	}
}

// TestSQLWrapperMultiSeedTypeRoundTrip pushes a seed block down on each
// column type in turn and checks the decoded rows hand the exact seed
// terms back — the decodeRow round trip of the multi-seed path.
func TestSQLWrapperMultiSeedTypeRoundTrip(t *testing.T) {
	src := typedSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	stars := []*StarQuery{star(t, "m", "http://c/M",
		`?m <http://p/label> ?l . ?m <http://p/value> ?v . ?m <http://p/valid> ?ok .`)}

	cases := []struct {
		name string
		v    string // seeded variable
		seed []sparql.Binding
		rows int
	}{
		{"iri-subject(int column)", "m", []sparql.Binding{
			{"m": rdf.NewIRI("http://e/m/1")}, {"m": rdf.NewIRI("http://e/m/3")},
		}, 2},
		{"string", "l", []sparql.Binding{
			{"l": rdf.NewLiteral("alpha")}, {"l": rdf.NewLiteral("beta")},
		}, 2},
		{"float", "v", []sparql.Binding{
			{"v": rdf.FloatLiteral(2.5)}, {"v": rdf.FloatLiteral(3.5)},
		}, 2},
		{"bool", "ok", []sparql.Binding{
			{"ok": rdf.BoolLiteral(false)},
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := collect(t, w, &Request{Stars: stars, Seeds: tc.seed})
			if len(got) != tc.rows {
				t.Fatalf("got %d rows, want %d: %v", len(got), tc.rows, got)
			}
			for _, b := range got {
				found := false
				for _, s := range tc.seed {
					if b[tc.v] == s[tc.v] {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("decoded value %s for ?%s does not round-trip any seed term", b[tc.v], tc.v)
				}
			}
			sqls := w.LastSQL()
			if len(sqls) != 1 {
				t.Fatalf("issued %d SQL queries, want 1: %v", len(sqls), sqls)
			}
			if !strings.Contains(sqls[0], "IN (") && !strings.Contains(sqls[0], " = ") {
				t.Errorf("no seed predicate in: %s", sqls[0])
			}
		})
	}
}

// TestSQLWrapperMultiSeedUnsatisfiableSeeds: seeds outside the subject
// template's namespace cannot match; an all-unsatisfiable block returns
// empty without querying, a mixed block keeps only the valid disjunct.
func TestSQLWrapperMultiSeedUnsatisfiableSeeds(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	stars := []*StarQuery{star(t, "p", "http://c/Person", `?p <http://p/name> ?n .`)}

	got := collect(t, w, &Request{Stars: stars, Seeds: []sparql.Binding{
		{"p": rdf.NewIRI("http://other/42")},
	}})
	if len(got) != 0 {
		t.Fatalf("unsatisfiable block returned %d answers", len(got))
	}
	if sqls := w.LastSQL(); len(sqls) != 0 {
		t.Errorf("unsatisfiable block still queried the source: %v", sqls)
	}

	got = collect(t, w, &Request{Stars: stars, Seeds: []sparql.Binding{
		{"p": rdf.NewIRI("http://other/42")}, personSeed("2"),
	}})
	if len(got) != 1 || got[0]["n"].Value != "grace" {
		t.Fatalf("mixed block: got %v, want person 2 only", got)
	}
}

// TestSQLWrapperMultiSeedSingleMessage: however many rows a block answers,
// it crosses the simulated network as one message.
func TestSQLWrapperMultiSeedSingleMessage(t *testing.T) {
	src := testSource(t)
	sim := netsim.NewSimulator(netsim.NoDelay, 0, 1)
	w := NewSQLWrapper(src, sim, TranslationOptimized, 0)
	stars := []*StarQuery{star(t, "p", "http://c/Person", `?p <http://p/name> ?n .`)}
	got := collect(t, w, &Request{Stars: stars, Seeds: []sparql.Binding{
		personSeed("1"), personSeed("2"), personSeed("3"), personSeed("4"),
	}})
	if len(got) != 4 {
		t.Fatalf("got %d answers, want 4", len(got))
	}
	if sim.Messages() != 1 {
		t.Errorf("block answered in %d messages, want 1", sim.Messages())
	}
}

// TestRDFWrapperMultiSeedBlock: the RDF wrapper answers a block in one
// pass — and one message — returning exactly the union of the seeds'
// results.
func TestRDFWrapperMultiSeedBlock(t *testing.T) {
	g := rdf.NewGraph()
	for _, s := range []string{"a", "b", "c", "d"} {
		subj := rdf.NewIRI("http://e/thing/" + s)
		g.Add(rdf.Triple{S: subj, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI("http://c/Thing")})
		g.Add(rdf.Triple{S: subj, P: rdf.NewIRI("http://p/tag"), O: rdf.NewLiteral("tag-" + s)})
	}
	sim := netsim.NewSimulator(netsim.NoDelay, 0, 1)
	w := NewRDFWrapper("things", g, sim, 0)
	stars := []*StarQuery{star(t, "s", "http://c/Thing", `?s <http://p/tag> ?tag .`)}
	seeds := []sparql.Binding{
		{"s": rdf.NewIRI("http://e/thing/a")},
		{"s": rdf.NewIRI("http://e/thing/c")},
	}
	got := collect(t, w, &Request{Stars: stars, Seeds: seeds})
	if len(got) != 2 {
		t.Fatalf("got %d answers, want 2: %v", len(got), got)
	}
	for _, b := range got {
		if v := b["tag"].Value; v != "tag-a" && v != "tag-c" {
			t.Errorf("answer %s not produced by any seed", b)
		}
	}
	if sim.Messages() != 1 {
		t.Errorf("block answered in %d messages, want 1", sim.Messages())
	}
}
