package wrapper

import (
	"context"
	dbsql "database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ontario/internal/catalog"
	"ontario/internal/rdb"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// stubConn is a minimal database/sql/driver backend serving canned rows,
// recording the SQL it receives and optionally failing the first N
// queries (a flaky database).
type stubConn struct {
	mu      sync.Mutex
	queries []string
	fail    int32
	cols    []string
	rows    [][]driver.Value
}

func (c *stubConn) Queries() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.queries...)
}

type stubDriver struct{ conn *stubConn }

func (d *stubDriver) Open(string) (driver.Conn, error) { return d.conn, nil }

func (c *stubConn) Prepare(string) (driver.Stmt, error) {
	return nil, errors.New("stub: prepare unsupported")
}
func (c *stubConn) Close() error              { return nil }
func (c *stubConn) Begin() (driver.Tx, error) { return nil, errors.New("stub: no transactions") }

func (c *stubConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	c.mu.Lock()
	c.queries = append(c.queries, query)
	c.mu.Unlock()
	if atomic.AddInt32(&c.fail, -1) >= 0 {
		return nil, errors.New("stub: connection reset")
	}
	rows := make([][]driver.Value, len(c.rows))
	for i, r := range c.rows {
		rows[i] = append([]driver.Value(nil), r...)
	}
	return &stubRows{cols: c.cols, rows: rows}, nil
}

type stubRows struct {
	cols []string
	rows [][]driver.Value
	i    int
}

func (r *stubRows) Columns() []string { return r.cols }
func (r *stubRows) Close() error      { return nil }
func (r *stubRows) Next(dest []driver.Value) error {
	if r.i >= len(r.rows) {
		return io.EOF
	}
	copy(dest, r.rows[r.i])
	r.i++
	return nil
}

var stubSeq atomic.Int32

func openStub(t *testing.T, conn *stubConn) *dbsql.DB {
	t.Helper()
	name := fmt.Sprintf("ontario-stub-%d", stubSeq.Add(1))
	dbsql.Register(name, &stubDriver{conn: conn})
	db, err := dbsql.Open(name, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// personSQLSource builds a ModelSQLDatabase source: schema-only rdb for
// the translation, stub connection for execution.
func personSQLSource(t *testing.T, conn *stubConn) *catalog.Source {
	t.Helper()
	schema := rdb.NewDatabase("people")
	if _, err := schema.CreateTable(&rdb.Schema{
		Name: "person",
		Columns: []rdb.Column{
			{Name: "id", Type: rdb.TypeInt, NotNull: true},
			{Name: "name", Type: rdb.TypeString},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	return &catalog.Source{
		ID:    "db",
		Model: catalog.ModelSQLDatabase,
		DB:    schema,
		SQLDB: openStub(t, conn),
		Mappings: map[string]*catalog.ClassMapping{
			"http://ex/Person": {
				Class:           "http://ex/Person",
				Table:           "person",
				SubjectColumn:   "id",
				SubjectTemplate: "http://ex/person/{value}",
				Properties: map[string]*catalog.PropertyMapping{
					"http://ex/name": {Predicate: "http://ex/name", Column: "name"},
				},
			},
		},
	}
}

func personSQLStar() *StarQuery {
	return &StarQuery{
		SubjectVar: "s",
		Class:      "http://ex/Person",
		Patterns: []sparql.TriplePattern{
			{S: sparql.VarNode("s"), P: sparql.TermNode(rdf.NewIRI("http://ex/name")), O: sparql.VarNode("name")},
		},
	}
}

func TestDBSQLWrapperTranslatesAndDecodes(t *testing.T) {
	conn := &stubConn{
		cols: []string{"c0", "c1"},
		rows: [][]driver.Value{
			{int64(1), "Ada"},
			{int64(2), []byte("Grace")}, // drivers commonly hand strings back as []byte
		},
	}
	src := personSQLSource(t, conn)
	w := NewDBSQLWrapper(src, NewHealthRegistry(fastResilience()), nil, 0)
	s, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personSQLStar()}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sols := drain(t, s)
	if len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2", len(sols))
	}
	if sols[0]["s"] != rdf.NewIRI("http://ex/person/1") || sols[0]["name"] != rdf.NewLiteral("Ada") {
		t.Fatalf("sols[0] = %v", sols[0])
	}
	if sols[1]["name"] != rdf.NewLiteral("Grace") {
		t.Fatalf("sols[1] = %v", sols[1])
	}
	qs := conn.Queries()
	if len(qs) != 1 || !strings.Contains(qs[0], "SELECT") || !strings.Contains(qs[0], "person") {
		t.Fatalf("issued SQL = %v", qs)
	}
}

func TestDBSQLWrapperRetriesFlakyDatabase(t *testing.T) {
	conn := &stubConn{
		cols: []string{"c0", "c1"},
		rows: [][]driver.Value{{int64(1), "Ada"}},
		fail: 2,
	}
	src := personSQLSource(t, conn)
	h := NewHealthRegistry(fastResilience())
	w := NewDBSQLWrapper(src, h, nil, 0)
	s, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personSQLStar()}})
	if err != nil {
		t.Fatalf("Execute after 2 connection resets: %v", err)
	}
	if sols := drain(t, s); len(sols) != 1 {
		t.Fatalf("got %d solutions, want 1", len(sols))
	}
	if snap := h.Snapshot(); len(snap) != 1 || snap[0].Retries != 2 {
		t.Fatalf("health = %+v, want 2 retries", snap)
	}
}

func TestDBSQLWrapperSeedBlockPushdown(t *testing.T) {
	conn := &stubConn{
		cols: []string{"c0", "c1"},
		rows: [][]driver.Value{
			{int64(1), "Ada"},
			{int64(2), "Grace"},
		},
	}
	src := personSQLSource(t, conn)
	w := NewDBSQLWrapper(src, NewHealthRegistry(fastResilience()), nil, 0)
	seeds := []sparql.Binding{{"s": rdf.NewIRI("http://ex/person/1")}}
	s, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personSQLStar()}, Seeds: seeds})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sols := drain(t, s)
	// The stub ignores WHERE, so the local seed re-check must drop row 2.
	if len(sols) != 1 || sols[0]["s"] != rdf.NewIRI("http://ex/person/1") {
		t.Fatalf("block solutions = %v, want just person/1", sols)
	}
	qs := conn.Queries()
	if len(qs) != 1 || !strings.Contains(qs[0], "WHERE") || !strings.Contains(qs[0], "1") {
		t.Fatalf("seed block not pushed down: %v", qs)
	}
}

func TestDBSQLWrapperNullRowSkipped(t *testing.T) {
	conn := &stubConn{
		cols: []string{"c0", "c1"},
		rows: [][]driver.Value{
			{int64(1), nil}, // NULL name: no triple, no solution
			{int64(2), "Grace"},
		},
	}
	src := personSQLSource(t, conn)
	w := NewDBSQLWrapper(src, NewHealthRegistry(fastResilience()), nil, 0)
	s, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personSQLStar()}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sols := drain(t, s)
	if len(sols) != 1 || sols[0]["name"] != rdf.NewLiteral("Grace") {
		t.Fatalf("solutions = %v, want just Grace", sols)
	}
}
