package wrapper

import (
	"context"
	"sync"

	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/sparql"
)

// ResponseCache memoizes the decoded, dictionary-encoded response of a
// wrapper request across the executions of one engine. The lake is static
// (the rdb generation moves only on loads), so a repeated request —
// serving layers replay the same prepared plans over and over — can skip
// translation, source evaluation and term interning entirely and stream
// its remembered ID rows, while the network-simulation contract is
// honored live at replay time: one latency sample per solution for
// per-answer retrieval, one per block response.
//
// Keys lean on pointer identity: a prepared plan's star and filter slices
// are immutable and live as long as the plan, so the slice identity (first
// element pointer plus length) identifies the request shape without
// hashing pattern trees. Seeds vary per bind-join invocation and are
// content-hashed, with the stored bindings compared on every hit so a
// hash collision degrades to a miss, never to a wrong answer. Entries are
// tagged with the source's content generation and dropped when it moves.
//
// The cache must be scoped to one engine: entries hold IDs of that
// engine's dictionary and pointers into its prepared plans.
type ResponseCache struct {
	mu      sync.RWMutex
	entries map[respKey]*respEntry
}

// respCacheCap bounds the cache; crossing it drops everything (request
// mixes that large are churn — distinct bind-join blocks — not reuse).
const respCacheCap = 4096

// NewResponseCache returns an empty cache.
func NewResponseCache() *ResponseCache {
	return &ResponseCache{entries: make(map[respKey]*respEntry)}
}

type respKey struct {
	source string
	// variant disambiguates wrapper configurations that answer the same
	// request differently (the SQL translation mode).
	variant uint8
	// star0/nstars and filt0/nfilt are the identity of the request's star
	// and filter slices (nil/0 when absent).
	star0  *StarQuery
	nstars int
	filt0  *sparql.Expr
	nfilt  int
	// block distinguishes the multi-seed block form, whose response
	// contract (one message per block) differs from the per-answer form.
	block bool
	// seedH is the content hash of Seed (per-answer form) or of the Seeds
	// list (block form); the entry verifies the actual bindings on hit.
	seedH uint64
}

// respEntry is one remembered response: the decoded ID rows flattened in
// schema order (stride IDs per row), plus everything needed to replay the
// request's observable side effects — the SQL texts it recorded and the
// delay contract it follows.
type respEntry struct {
	gen    uint64
	seed   sparql.Binding
	seeds  []sparql.Binding
	stride int
	nrows  int
	rows   []dict.ID
	sql    []string
	// perRow selects the delay contract: one latency sample per row
	// (per-answer retrieval) versus one per response (block form). An
	// empty per-row response samples nothing; an empty block still costs
	// its one message.
	perRow bool
}

// respKeyFor builds the cache key of req as issued against source.
// Interning seed terms here is not wasted work: the miss path interns the
// same terms anyway, and on a hit they are already in the dictionary.
func respKeyFor(source string, variant uint8, req *Request, d *dict.Dict) respKey {
	k := respKey{
		source:  source,
		variant: variant,
		nstars:  len(req.Stars),
		nfilt:   len(req.Filters),
		block:   len(req.Seeds) > 0,
	}
	if len(req.Stars) > 0 {
		k.star0 = req.Stars[0]
	}
	if len(req.Filters) > 0 {
		k.filt0 = &req.Filters[0]
	}
	if k.block {
		h := uint64(0x9e3779b97f4a7c15)
		for _, s := range req.Seeds {
			h = mixResp(h ^ seedHash(s, d))
		}
		k.seedH = h
	} else {
		k.seedH = seedHash(req.Seed, d)
	}
	return k
}

// mixResp is the splitmix64 finalizer.
func mixResp(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// seedHash is an order-independent content hash of one seed binding: the
// dictionary makes term content a uint64, so each entry hashes as
// var-name-hash mixed with the term's ID, combined by XOR.
func seedHash(seed sparql.Binding, d *dict.Dict) uint64 {
	h := uint64(len(seed))
	for v, t := range seed {
		const prime = 1099511628211
		vh := uint64(14695981039346656037)
		for i := 0; i < len(v); i++ {
			vh = (vh ^ uint64(v[i])) * prime
		}
		h ^= mixResp(vh ^ (uint64(d.Intern(t)) * 0x9e3779b97f4a7c15))
	}
	return h
}

func bindingEq(a, b sparql.Binding) bool {
	if len(a) != len(b) {
		return false
	}
	for v, t := range a {
		if u, ok := b[v]; !ok || u != t {
			return false
		}
	}
	return true
}

// matches verifies the stored seed content against the request, guarding
// hash collisions in the key.
func (e *respEntry) matches(req *Request) bool {
	if len(e.seeds) != len(req.Seeds) {
		return false
	}
	for i := range e.seeds {
		if !bindingEq(e.seeds[i], req.Seeds[i]) {
			return false
		}
	}
	return bindingEq(e.seed, req.Seed)
}

// lookup returns the remembered response for k, or nil when there is
// none, the source's content moved past it, or the seed content differs
// (a key hash collision).
func (c *ResponseCache) lookup(k respKey, req *Request, gen uint64) *respEntry {
	c.mu.RLock()
	e := c.entries[k]
	c.mu.RUnlock()
	if e == nil || e.gen != gen || !e.matches(req) {
		return nil
	}
	return e
}

// store remembers e under k, dropping the whole cache at the cap.
func (c *ResponseCache) store(k respKey, e *respEntry) {
	c.mu.Lock()
	if len(c.entries) >= respCacheCap {
		clear(c.entries)
	}
	c.entries[k] = e
	c.mu.Unlock()
}

// stream replays the response on a fresh columnar stream, sampling the
// network simulation live — a cache hit changes where the rows come from,
// not what the execution observes: same rows, same per-message delay
// accounting, batched at the wrapper's current batch size.
func (e *respEntry) stream(ctx context.Context, sim *netsim.Simulator, schema *engine.Schema, batch int) *engine.CStream {
	out := engine.NewCStream(schema, 4)
	go func() {
		defer out.Close()
		if e.perRow {
			w := engine.NewColWriter(ctx, out, batch)
			defer w.Close()
			for i := 0; i < e.nrows; i++ {
				if sim != nil {
					sim.Delay()
				}
				if !w.AppendIDs(e.rows[i*e.stride : (i+1)*e.stride]) {
					return
				}
			}
			return
		}
		// Block form: the (possibly empty) response is one message.
		if sim != nil {
			sim.Delay()
		}
		if batch <= 0 {
			batch = engine.DefaultBatchSize
		}
		b := engine.NewColBuilderCap(schema, batch)
		for i := 0; i < e.nrows; i++ {
			b.AppendIDs(e.rows[i*e.stride : (i+1)*e.stride])
			if b.Rows() >= batch {
				if !out.SendBatch(ctx, b.Take()) {
					return
				}
			}
		}
		if b.Rows() > 0 {
			out.SendBatch(ctx, b.Take())
		}
	}()
	return out
}

// flattenSolutions interns row-model solutions into one flat ID block in
// schema order, reproducing the stream encoders' layout: the seed is
// interned once into a row template and each solution overwrites the
// positions it binds.
func flattenSolutions(seed sparql.Binding, sols []sparql.Binding, schema *engine.Schema, d *dict.Dict) ([]dict.ID, int) {
	stride := len(schema.Vars)
	template := make([]dict.ID, stride)
	for i, v := range schema.Vars {
		if t, ok := seed[v]; ok {
			template[i] = d.Intern(t)
		}
	}
	rows := make([]dict.ID, 0, len(sols)*stride)
	for _, b := range sols {
		start := len(rows)
		rows = append(rows, template...)
		row := rows[start:]
		for i, v := range schema.Vars {
			if t, ok := b[v]; ok {
				row[i] = d.Intern(t)
			}
		}
	}
	return rows, len(sols)
}
