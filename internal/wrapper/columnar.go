package wrapper

import (
	"context"
	"fmt"

	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/sparql"
)

// ColumnarWrapper is implemented by wrappers that can emit dictionary-
// encoded columnar batches natively: terms are interned into the
// execution's dictionary at the source and only uint64 IDs cross the
// exchange. Wrappers without the interface go through the row-to-columnar
// encoding adapter at the boundary instead (ExecuteColumnar below) —
// remote federation hops in particular keep speaking
// sparql-results+json and their decoded rows are interned on arrival.
type ColumnarWrapper interface {
	Wrapper
	// ExecuteColumnar runs the request, streaming columnar batches over
	// schema with all terms interned into d. The network-simulation
	// contract matches Execute: one latency sample per solution for
	// per-answer retrieval, one per block response.
	ExecuteColumnar(ctx context.Context, req *Request, schema *engine.Schema, d *dict.Dict) (*engine.CStream, error)
}

// ExecuteColumnar runs req on w with a columnar result stream: natively
// when the wrapper supports it, otherwise through the boundary adapter
// that interns each row batch as it arrives.
func ExecuteColumnar(ctx context.Context, w Wrapper, req *Request, schema *engine.Schema, d *dict.Dict) (*engine.CStream, error) {
	if cw, ok := w.(ColumnarWrapper); ok {
		return cw.ExecuteColumnar(ctx, req, schema, d)
	}
	s, err := w.Execute(ctx, req)
	if err != nil {
		return nil, err
	}
	return engine.EncodeStream(ctx, s, schema, d), nil
}

// ExecuteColumnar implements ColumnarWrapper: the BGP is evaluated as in
// Execute, and the solutions cross the exchange as interned IDs. Like the
// SQL wrapper, the decoded response is built as a respEntry so repeated
// requests replay from the engine's response cache instead of re-walking
// the graph.
func (w *RDFWrapper) ExecuteColumnar(ctx context.Context, req *Request, schema *engine.Schema, d *dict.Dict) (*engine.CStream, error) {
	if len(req.Stars) == 0 {
		return nil, fmt.Errorf("wrapper %s: empty request", w.id)
	}
	var key respKey
	if w.cache != nil {
		key = respKeyFor(w.id, 0, req, d)
		if e := w.cache.lookup(key, req, 0); e != nil {
			return e.stream(ctx, w.sim, schema, w.batch), nil
		}
	}
	e := w.columnarEntry(req, schema, d)
	if w.cache != nil {
		w.cache.store(key, e)
	}
	return e.stream(ctx, w.sim, schema, w.batch), nil
}

// columnarEntry evaluates the BGP and flattens the solutions into a
// response entry.
func (w *RDFWrapper) columnarEntry(req *Request, schema *engine.Schema, d *dict.Dict) *respEntry {
	e := &respEntry{stride: len(schema.Vars)}
	var patterns []sparql.TriplePattern
	for _, s := range req.Stars {
		patterns = append(patterns, s.Patterns...)
	}
	if len(req.Seeds) > 0 {
		e.seeds = append([]sparql.Binding(nil), req.Seeds...)
		sols := w.blockSolutions(req, patterns)
		e.rows, e.nrows = flattenSolutions(nil, sols, schema, d)
		return e
	}
	e.perRow = true
	e.seed = req.Seed
	patterns = substituteSeed(patterns, req.Seed)
	sols := w.filteredSolutions(req, patterns)
	e.rows, e.nrows = flattenSolutions(req.Seed, sols, schema, d)
	return e
}

// ExecuteColumnar implements ColumnarWrapper for the limited wrapper: the
// slot discipline is identical to Execute — held while the source
// produces, relinquished before the relay would block on a consumer that
// fell relayBacklogCap batches behind.
func (w *limitedWrapper) ExecuteColumnar(ctx context.Context, req *Request, schema *engine.Schema, d *dict.Dict) (*engine.CStream, error) {
	id := w.inner.SourceID()
	if err := w.lim.Acquire(ctx, id); err != nil {
		return nil, err
	}
	in, err := ExecuteColumnar(ctx, w.inner, req, schema, d)
	if err != nil {
		w.lim.Release(id)
		return nil, err
	}
	out := engine.NewCStream(schema, 4)
	go func() {
		defer out.Close()
		released := false
		release := func() {
			if !released {
				released = true
				w.lim.Release(id)
			}
		}
		defer release()
		var backlog []*engine.ColBatch
		for batch := range in.Batches() {
			for len(backlog) > 0 && out.TrySendBatch(backlog[0]) {
				backlog[0] = nil
				backlog = backlog[1:]
			}
			if len(backlog) == 0 && out.TrySendBatch(batch) {
				continue
			}
			backlog = append(backlog, batch)
			if len(backlog) >= relayBacklogCap {
				// Same reasoning as the row relay: release the slot before
				// blocking on the consumer, so a dependent join waiting on
				// another request to this source cannot deadlock the limiter.
				release()
				for _, b := range backlog {
					if !out.SendBatch(ctx, b) {
						return
					}
				}
				backlog = nil
			}
		}
		release()
		for _, b := range backlog {
			if !out.SendBatch(ctx, b) {
				return
			}
		}
	}()
	return out, nil
}
