package wrapper

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"ontario/internal/trace"
)

// TestRemoteWrapperPropagatesTraceparent covers the coordinator side of a
// federated hop: the wrapper must forward the query's W3C traceparent,
// adopt the peer's query ID from the response header, pick up the peer's
// own remote spans from the X-Ontario-Spans trailer, and record the whole
// hop as a RemoteSpan on the coordinator's trace.
func TestRemoteWrapperPropagatesTraceparent(t *testing.T) {
	var gotTraceparent atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTraceparent.Store(r.Header.Get("Traceparent"))
		w.Header().Set("X-Ontario-Query-Id", "feedfacecafef00d")
		w.Header().Set("Trailer", "X-Ontario-Spans")
		fmt.Fprint(w, resultsDoc)
		nested, _ := json.Marshal([]trace.RemoteSpan{{Source: "leaf-db", QueryID: "aaaabbbbccccdddd", Attempts: 1}})
		w.Header().Set(http.TrailerPrefix+"X-Ontario-Spans", string(nested))
	}))
	defer srv.Close()

	qt := trace.NewQueryTrace()
	ctx := trace.WithQuery(context.Background(), qt)
	w := newRemote(t, srv.URL, fastResilience())
	s, err := w.Execute(ctx, &Request{Stars: []*StarQuery{personStar()}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if sols := drain(t, s); len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2", len(sols))
	}

	hdr, _ := gotTraceparent.Load().(string)
	if want := qt.Traceparent(); hdr != want {
		t.Fatalf("peer saw traceparent %q, want %q", hdr, want)
	}

	spans := qt.RemoteSpans()
	if len(spans) != 1 {
		t.Fatalf("coordinator trace has %d remote spans, want 1: %+v", len(spans), spans)
	}
	sp := spans[0]
	if sp.Source != "remote" {
		t.Errorf("span source = %q, want %q", sp.Source, "remote")
	}
	if sp.QueryID != "feedfacecafef00d" {
		t.Errorf("span query id = %q, want the peer's", sp.QueryID)
	}
	if sp.Attempts != 1 {
		t.Errorf("span attempts = %d, want 1", sp.Attempts)
	}
	if sp.Breaker != "closed" {
		t.Errorf("span breaker = %q, want closed", sp.Breaker)
	}
	if sp.LatencyMS <= 0 {
		t.Errorf("span latency = %v, want > 0", sp.LatencyMS)
	}
	if sp.Error != "" {
		t.Errorf("span error = %q, want empty", sp.Error)
	}
	if len(sp.Children) != 1 || sp.Children[0].Source != "leaf-db" {
		t.Errorf("nested peer spans = %+v, want the leaf-db child", sp.Children)
	}
}

// TestRemoteWrapperNoTraceNoHeader: without a query trace in the context
// the wrapper must not invent a traceparent, and recording must not panic.
func TestRemoteWrapperNoTraceNoHeader(t *testing.T) {
	var gotTraceparent atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTraceparent.Store(r.Header.Get("Traceparent"))
		fmt.Fprint(w, resultsDoc)
	}))
	defer srv.Close()
	w := newRemote(t, srv.URL, fastResilience())
	s, err := w.Execute(context.Background(), &Request{Stars: []*StarQuery{personStar()}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	drain(t, s)
	if hdr, _ := gotTraceparent.Load().(string); hdr != "" {
		t.Fatalf("wrapper sent traceparent %q with no trace in context", hdr)
	}
}

// TestRemoteWrapperRecordsFailedHop: a hop that exhausts its retries must
// still land on the trace, with the error and the attempt count — a broken
// hop is exactly what the coordinator wants to see.
func TestRemoteWrapperRecordsFailedHop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	qt := trace.NewQueryTrace()
	ctx := trace.WithQuery(context.Background(), qt)
	w := newRemote(t, srv.URL, fastResilience())
	if _, err := w.Execute(ctx, &Request{Stars: []*StarQuery{personStar()}}); err == nil {
		t.Fatal("Execute should fail against an always-500 endpoint")
	}
	spans := qt.RemoteSpans()
	if len(spans) != 1 {
		t.Fatalf("failed hop produced %d spans, want 1", len(spans))
	}
	if spans[0].Error == "" {
		t.Error("failed hop span lacks the error")
	}
	if spans[0].Attempts < 2 {
		t.Errorf("failed hop attempts = %d, want >= 2 (retries)", spans[0].Attempts)
	}
}
