package wrapper

import (
	"context"
	"fmt"

	"ontario/internal/catalog"
	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/sparql"
)

// ExternalWrapper adapts a user-provided catalog.ExternalSource (a custom
// backend registered through the public lake API) to the Wrapper contract.
// It forwards star sub-queries, re-checks seed compatibility on the results
// (the custom implementation is free to ignore seeds), evaluates any pushed
// filters wrapper-side, and charges the simulated network like the built-in
// wrappers: one latency sample per answer for plain and single-seed
// requests, one per block for multi-seed block requests.
type ExternalWrapper struct {
	id    string
	src   catalog.ExternalSource
	sim   *netsim.Simulator
	batch int
}

// NewExternalWrapper wraps a custom source. sim may be nil for no network
// simulation; batch <= 0 means the engine's default batch size.
func NewExternalWrapper(id string, src catalog.ExternalSource, sim *netsim.Simulator, batch int) *ExternalWrapper {
	return &ExternalWrapper{id: id, src: src, sim: sim, batch: batch}
}

// SourceID implements Wrapper.
func (w *ExternalWrapper) SourceID() string { return w.id }

// Execute implements Wrapper.
func (w *ExternalWrapper) Execute(ctx context.Context, req *Request) (*engine.Stream, error) {
	if len(req.Stars) == 0 {
		return nil, fmt.Errorf("wrapper %s: empty request", w.id)
	}
	stars := make([]catalog.ExternalStar, len(req.Stars))
	for i, s := range req.Stars {
		stars[i] = catalog.ExternalStar{SubjectVar: s.SubjectVar, Class: s.Class, Patterns: s.Patterns}
	}
	seeds := req.Seeds
	if len(seeds) == 0 && len(req.Seed) > 0 {
		seeds = []sparql.Binding{req.Seed}
	}
	sols, err := w.src.ExecuteStars(ctx, stars, seeds)
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: %w", w.id, err)
	}
	kept := sols[:0:0]
	for _, b := range sols {
		if !matchesAnySeed(b, seeds) {
			continue
		}
		// Pushed filters reference the stars' own variables; evaluate over
		// the seed-merged binding so seeded variables resolve too.
		eval := b
		if len(req.Seed) > 0 {
			eval = req.Seed.Merge(b)
		}
		ok := true
		for _, f := range req.Filters {
			if !sparql.EvalBool(f, eval) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, b)
		}
	}
	if len(req.Seeds) > 0 {
		return streamBlock(ctx, w.sim, kept, w.batch), nil
	}
	return streamWithDelay(ctx, w.sim, req.Seed, kept, w.batch), nil
}
