package wrapper

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// This file is the shared resilience layer of the remote wrappers: every
// request to a live endpoint (HTTP SPARQL or database/sql) runs through
// HealthRegistry.Do, which applies a per-attempt timeout, bounded retries
// with exponential backoff and jitter, and a per-source circuit breaker.
// The registry doubles as the per-source health store: observed latency
// and failure rate are exported to /metrics and fed back into the cost
// model as the measured network profile of the source (replacing the
// static netsim gamma for remote sources).

// ResilienceConfig parameterizes the remote-source resilience layer. The
// zero value means "all defaults".
type ResilienceConfig struct {
	// Timeout bounds each individual attempt (request plus full response
	// read). Default 10s; negative disables the per-attempt timeout.
	Timeout time.Duration
	// MaxRetries is the number of re-attempts after the first failure.
	// Default 3; negative means no retries.
	MaxRetries int
	// RetryBase is the backoff before the first retry; it doubles per
	// attempt. Default 50ms.
	RetryBase time.Duration
	// RetryMax caps the backoff. Default 2s.
	RetryMax time.Duration
	// BreakerThreshold is the number of consecutive failures that opens the
	// source's circuit. Default 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects requests before
	// letting one probe through (half-open). Default 5s.
	BreakerCooldown time.Duration
	// Seed fixes the jitter random stream (0 means 1).
	Seed int64
}

// Resilience defaults.
const (
	DefaultRemoteTimeout    = 10 * time.Second
	DefaultMaxRetries       = 3
	DefaultRetryBase        = 50 * time.Millisecond
	DefaultRetryMax         = 2 * time.Second
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	switch {
	case c.Timeout == 0:
		c.Timeout = DefaultRemoteTimeout
	case c.Timeout < 0:
		c.Timeout = 0
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.RetryMax <= 0 {
		c.RetryMax = DefaultRetryMax
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// BreakerState enumerates the circuit-breaker states of one source.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests fail fast with ErrCircuitOpen until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; everything else
	// fails fast until it settles the state.
	BreakerHalfOpen
)

// String names the state (the /metrics gauge value is the integer).
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// ErrCircuitOpen reports a request rejected without contacting the source
// because its circuit breaker is open.
var ErrCircuitOpen = errors.New("wrapper: circuit breaker open")

// permanentError marks an error that retrying cannot fix (e.g. an HTTP
// 4xx: the request itself is wrong).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as non-retryable for HealthRegistry.Do.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// SourceHealth is a snapshot of one source's resilience state.
type SourceHealth struct {
	Source string
	State  BreakerState
	// Requests counts attempts issued (retries included), Failures the
	// failed ones, Retries the re-attempts after a failure.
	Requests int64
	Failures int64
	Retries  int64
	// ConsecutiveFailures is the current failure streak (reset by any
	// success).
	ConsecutiveFailures int
	// FailureRate is Failures/Requests.
	FailureRate float64
	// Latency is the exponentially-weighted moving average of successful
	// attempt latencies (0 until the first success).
	Latency time.Duration
	// LastError is the most recent failure's message.
	LastError string
}

// sourceHealth is the registry's mutable per-source record; the registry
// mutex guards it.
type sourceHealth struct {
	state       BreakerState
	openedAt    time.Time
	probing     bool
	consecFails int
	requests    int64
	failures    int64
	retries     int64
	ewmaMS      float64
	observed    bool
	lastErr     string
}

// ewmaAlpha weights the latest latency sample in the moving average.
const ewmaAlpha = 0.3

// HealthRegistry tracks per-source health and applies the resilience
// policy. It is shared across every execution of an engine (like the
// source limiter), so breaker state and measured latency reflect all
// traffic to a source. It is safe for concurrent use.
type HealthRegistry struct {
	cfg ResilienceConfig

	mu      sync.Mutex
	rng     *rand.Rand
	sources map[string]*sourceHealth
	nowFn   func() time.Time // test hook
}

// NewHealthRegistry returns a registry applying cfg (zero value = all
// defaults).
func NewHealthRegistry(cfg ResilienceConfig) *HealthRegistry {
	cfg = cfg.withDefaults()
	return &HealthRegistry{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		sources: make(map[string]*sourceHealth),
		nowFn:   time.Now,
	}
}

// Config returns the resolved configuration.
func (h *HealthRegistry) Config() ResilienceConfig { return h.cfg }

func (h *HealthRegistry) source(id string) *sourceHealth {
	s, ok := h.sources[id]
	if !ok {
		s = &sourceHealth{}
		h.sources[id] = s
	}
	return s
}

// allow gates one attempt through the source's breaker: err is nil when
// the attempt may proceed, ErrCircuitOpen when the source is failing
// fast. probe reports that the caller was granted the single half-open
// probe slot; the caller must settle it (recordSuccess/recordFailure) or
// give it back (clearProbe) — leaking it would reject every later
// request until restart.
func (h *HealthRegistry) allow(id string) (probe bool, err error) {
	if h.cfg.BreakerThreshold < 0 {
		return false, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.source(id)
	switch s.state {
	case BreakerClosed:
		return false, nil
	case BreakerOpen:
		if h.nowFn().Sub(s.openedAt) < h.cfg.BreakerCooldown {
			return false, ErrCircuitOpen
		}
		s.state = BreakerHalfOpen
		s.probing = true
		return true, nil
	default: // half-open
		if s.probing {
			return false, ErrCircuitOpen
		}
		s.probing = true
		return true, nil
	}
}

// clearProbe releases a half-open probe slot whose attempt ended without
// a verdict (the parent context was cancelled mid-attempt): the breaker
// returns to open and the cooldown restarts, so a later request can
// probe again.
func (h *HealthRegistry) clearProbe(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.source(id)
	s.probing = false
	if s.state == BreakerHalfOpen {
		s.state = BreakerOpen
		s.openedAt = h.nowFn()
	}
}

func (h *HealthRegistry) recordSuccess(id string, latency time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.source(id)
	s.requests++
	s.consecFails = 0
	s.probing = false
	s.state = BreakerClosed
	s.lastErr = ""
	ms := float64(latency) / float64(time.Millisecond)
	if !s.observed {
		s.ewmaMS, s.observed = ms, true
	} else {
		s.ewmaMS = ewmaAlpha*ms + (1-ewmaAlpha)*s.ewmaMS
	}
}

func (h *HealthRegistry) recordFailure(id string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.source(id)
	s.requests++
	s.failures++
	s.consecFails++
	s.lastErr = err.Error()
	if h.cfg.BreakerThreshold < 0 {
		return
	}
	if s.state == BreakerHalfOpen {
		// The probe failed: back to open, restart the cooldown.
		s.state = BreakerOpen
		s.openedAt = h.nowFn()
		s.probing = false
		return
	}
	if s.consecFails >= h.cfg.BreakerThreshold {
		s.state = BreakerOpen
		s.openedAt = h.nowFn()
	}
}

func (h *HealthRegistry) recordRetry(id string) {
	h.mu.Lock()
	h.source(id).retries++
	h.mu.Unlock()
}

// backoff returns the jittered backoff before retry number attempt
// (0-based): base·2^attempt capped at RetryMax, scaled by a random factor
// in [0.5, 1.0) so synchronized clients spread out.
func (h *HealthRegistry) backoff(attempt int) time.Duration {
	d := h.cfg.RetryBase << uint(attempt)
	if d <= 0 || d > h.cfg.RetryMax {
		d = h.cfg.RetryMax
	}
	h.mu.Lock()
	f := 0.5 + 0.5*h.rng.Float64()
	h.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// Do runs op under the source's resilience policy: breaker gate, per-
// attempt timeout, bounded retries with exponential backoff and jitter.
// op must be idempotent — it may run up to 1+MaxRetries times. Errors
// wrapped with Permanent (and parent-context cancellation) stop the retry
// loop immediately; a parent cancellation is returned as the context's
// error and does not count against the source — but if the cancelled
// attempt held the half-open probe, the probe is released (breaker back
// to open, cooldown restarted) so the source is not wedged forever.
func (h *HealthRegistry) Do(ctx context.Context, sourceID string, op func(context.Context) error) error {
	probe, err := h.allow(sourceID)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if h.cfg.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, h.cfg.Timeout)
		}
		start := h.nowFn()
		opErr := op(actx)
		cancel()
		if opErr == nil {
			h.recordSuccess(sourceID, h.nowFn().Sub(start))
			return nil
		}
		if ctx.Err() != nil {
			// The query itself was cancelled or timed out while the attempt
			// ran: not the source's fault, and retrying is pointless. A probe
			// this attempt held never got its verdict — give it back.
			if probe {
				h.clearProbe(sourceID)
			}
			return ctx.Err()
		}
		h.recordFailure(sourceID, opErr)
		probe = false // the failure settled any probe this attempt held
		lastErr = opErr
		if IsPermanent(opErr) || attempt >= h.cfg.MaxRetries {
			return lastErr
		}
		h.recordRetry(sourceID)
		select {
		case <-time.After(h.backoff(attempt)):
		case <-ctx.Done():
			return ctx.Err()
		}
		// This goroutine's own failures may have opened the breaker.
		if probe, err = h.allow(sourceID); err != nil {
			return lastErr
		}
	}
}

// ReportFailure records one externally observed failure against the
// source. Do covers request/response exchanges end to end, but a
// streaming consumer (the cluster's worker links) detects failures after
// Do's attempt window has closed — mid-stream, with results already
// forwarded, where a retry is no longer safe. Reporting keeps those
// failures feeding the source's breaker and failure rate.
func (h *HealthRegistry) ReportFailure(sourceID string, err error) {
	h.recordFailure(sourceID, err)
}

// State returns the source's breaker state.
func (h *HealthRegistry) State(sourceID string) BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.source(sourceID).state
}

// MeasuredLatency returns the source's observed per-request latency for
// the cost model: the EWMA of successful attempts inflated by the failure
// rate (a source answering in 2ms but failing half the time effectively
// costs a retry's worth of extra round trips). ok is false until the
// source has completed at least one successful request.
func (h *HealthRegistry) MeasuredLatency(sourceID string) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sources[sourceID]
	if !ok || !s.observed {
		return 0, false
	}
	rate := 0.0
	if s.requests > 0 {
		rate = float64(s.failures) / float64(s.requests)
	}
	if rate > 0.9 {
		rate = 0.9
	}
	// Expected attempts per success under independent failures: 1/(1-p).
	eff := s.ewmaMS / (1 - rate)
	return time.Duration(eff * float64(time.Millisecond)), true
}

// Snapshot returns every tracked source's health, sorted by source ID.
func (h *HealthRegistry) Snapshot() []SourceHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]SourceHealth, 0, len(h.sources))
	for id, s := range h.sources {
		sh := SourceHealth{
			Source:              id,
			State:               s.state,
			Requests:            s.requests,
			Failures:            s.failures,
			Retries:             s.retries,
			ConsecutiveFailures: s.consecFails,
			Latency:             time.Duration(s.ewmaMS * float64(time.Millisecond)),
			LastError:           s.lastErr,
		}
		if s.requests > 0 {
			sh.FailureRate = float64(s.failures) / float64(s.requests)
		}
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}
