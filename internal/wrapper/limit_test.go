package wrapper

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ontario/internal/engine"
	"ontario/internal/sparql"
)

// slowWrapper is a test wrapper whose Execute tracks its own concurrency
// and emits a fixed number of bindings with a small delay, so that many
// overlapping invocations are observable.
type slowWrapper struct {
	id      string
	delay   time.Duration
	answers int

	cur  atomic.Int32
	peak atomic.Int32
}

func (w *slowWrapper) SourceID() string { return w.id }

func (w *slowWrapper) Execute(ctx context.Context, req *Request) (*engine.Stream, error) {
	n := w.cur.Add(1)
	for {
		p := w.peak.Load()
		if n <= p || w.peak.CompareAndSwap(p, n) {
			break
		}
	}
	out := engine.NewStream(0)
	go func() {
		defer out.Close()
		defer w.cur.Add(-1)
		for i := 0; i < w.answers; i++ {
			time.Sleep(w.delay)
			if !out.Send(ctx, sparql.NewBinding()) {
				return
			}
		}
	}()
	return out, nil
}

func TestSourceLimiterBoundsInFlight(t *testing.T) {
	const limit, requests = 3, 20
	inner := &slowWrapper{id: "src", delay: time.Millisecond, answers: 2}
	lim := NewSourceLimiter(limit)
	w := Limited(inner, lim)

	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := w.Execute(context.Background(), &Request{})
			if err != nil {
				t.Errorf("Execute: %v", err)
				return
			}
			for range s.Batches() {
			}
		}()
	}
	wg.Wait()

	if got := inner.peak.Load(); int(got) > limit {
		t.Fatalf("peak in-flight %d exceeds limit %d", got, limit)
	}
	if got := lim.Peak("src"); got > limit {
		t.Fatalf("limiter peak %d exceeds limit %d", got, limit)
	}
	if got := lim.InFlight("src"); got != 0 {
		t.Fatalf("in-flight after completion = %d, want 0", got)
	}
}

// TestSourceLimiterManySourcesConcurrent interleaves Acquire/Release on
// many sources so releases race against first-use semaphore creation; run
// under -race it is the regression test for the unlocked sems-map read
// Release used to do.
func TestSourceLimiterManySourcesConcurrent(t *testing.T) {
	lim := NewSourceLimiter(2)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src := fmt.Sprintf("src-%d", (g+i)%10)
				if err := lim.Acquire(context.Background(), src); err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				lim.Release(src)
			}
		}(g)
	}
	wg.Wait()
	for _, src := range lim.Sources() {
		if lim.InFlight(src) != 0 {
			t.Errorf("source %s left with in-flight slots", src)
		}
	}
}

func TestSourceLimiterAcquireCancellation(t *testing.T) {
	lim := NewSourceLimiter(1)
	if err := lim.Acquire(context.Background(), "src"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := lim.Acquire(ctx, "src"); err == nil {
		t.Fatal("Acquire succeeded on a saturated source with a cancelled context")
	}
	lim.Release("src")
	if err := lim.Acquire(context.Background(), "src"); err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	lim.Release("src")
}

func TestLimitedReleasesOnConsumerCancellation(t *testing.T) {
	inner := &slowWrapper{id: "src", delay: time.Millisecond, answers: 1000}
	lim := NewSourceLimiter(1)
	w := Limited(inner, lim)

	ctx, cancel := context.WithCancel(context.Background())
	s, err := w.Execute(ctx, &Request{})
	if err != nil {
		t.Fatal(err)
	}
	<-s.Batches() // first answer arrived; request is mid-stream
	cancel()

	deadline := time.Now().Add(2 * time.Second)
	for lim.InFlight("src") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot not released after consumer cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

// fountainWrapper produces n single-binding batches as fast as the
// consumer will take them, counting how many it managed to hand over.
type fountainWrapper struct {
	id   string
	n    int
	sent atomic.Int32
}

func (w *fountainWrapper) SourceID() string { return w.id }

func (w *fountainWrapper) Execute(ctx context.Context, req *Request) (*engine.Stream, error) {
	out := engine.NewStream(0)
	go func() {
		defer out.Close()
		for i := 0; i < w.n; i++ {
			if !out.SendBatch(ctx, []sparql.Binding{sparql.NewBinding()}) {
				return
			}
			w.sent.Add(1)
		}
	}()
	return out, nil
}

// TestLimitedReleasesSlotAtBacklogCap is the regression test for the
// dependent-join deadlock past the backlog cap: once the relay stops
// absorbing on the source's behalf and has to block on a stalled
// consumer, it must give the source slot back — otherwise, at limit=1, a
// consumer that is itself waiting on another request to the same source
// (a dependent join over a large response) would deadlock.
func TestLimitedReleasesSlotAtBacklogCap(t *testing.T) {
	const total = relayBacklogCap * 4
	inner := &fountainWrapper{id: "src", n: total}
	lim := NewSourceLimiter(1)
	w := Limited(inner, lim)

	out, err := w.Execute(context.Background(), &Request{})
	if err != nil {
		t.Fatal(err)
	}
	// Nobody reads out: the relay fills its backlog to the cap and must
	// release the slot before its first blocking send.
	deadline := time.Now().Add(2 * time.Second)
	for lim.InFlight("src") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot still held while blocked on a stalled consumer at the backlog cap")
		}
		time.Sleep(time.Millisecond)
	}
	// A second request to the same source — what a dependent join issues
	// while the first response is still pending — runs to completion.
	out2, err := w.Execute(context.Background(), &Request{})
	if err != nil {
		t.Fatal(err)
	}
	got2 := 0
	for range out2.Batches() {
		got2++
	}
	if got2 != total {
		t.Fatalf("second request received %d batches, want %d", got2, total)
	}
	// The first response still arrives in full once its consumer reads.
	got := 0
	for range out.Batches() {
		got++
	}
	if got != total {
		t.Fatalf("first request received %d batches, want %d", got, total)
	}
}

// TestLimitedBacklogBounded is the regression test for the unbounded relay
// backlog: with a consumer that reads nothing, the relay must stop pulling
// from the source once its bounded backlog fills instead of buffering the
// whole response in memory.
func TestLimitedBacklogBounded(t *testing.T) {
	const total = relayBacklogCap * 20
	inner := &fountainWrapper{id: "src", n: total}
	w := Limited(inner, NewSourceLimiter(1))
	out, err := w.Execute(context.Background(), &Request{})
	if err != nil {
		t.Fatal(err)
	}
	// Nobody reads out yet: wait until the relay has absorbed what it will.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && int(inner.sent.Load()) < relayBacklogCap {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // would-be runaway time
	// Bound: the backlog cap plus the relay stream's small buffer and the
	// batches in hand.
	if got := int(inner.sent.Load()); got > relayBacklogCap+8 {
		t.Fatalf("relay buffered %d batches with an idle consumer (cap %d)", got, relayBacklogCap)
	}
	// Once the consumer starts reading, the full response still arrives.
	got := 0
	for range out.Batches() {
		got++
	}
	if got != total {
		t.Fatalf("consumer received %d batches, want %d", got, total)
	}
}
