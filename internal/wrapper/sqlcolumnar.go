package wrapper

import (
	"context"
	"fmt"

	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/rdb"
	"ontario/internal/sparql"
	"ontario/internal/sql"
)

// sqlColDecoder decodes SQL result rows straight into interned ID rows —
// the relational wrapper's native columnar boundary. No sparql.Binding is
// materialized per row: each projected column resolves to a schema
// position once, and each distinct storage value is converted to a term
// and interned exactly once per query (the per-column memo), so repeated
// foreign-key values cost a map hit instead of a template render plus a
// dictionary probe.
type sqlColDecoder struct {
	d *dict.Dict
	// template carries the IDs fixed for every row: the translation's
	// constant bindings overlaid by the request seed (seed wins, matching
	// seed.Merge(row) in the row pipeline).
	template []dict.ID
	row      []dict.ID
	cols     []sqlDecoderCol
}

type sqlDecoderCol struct {
	// pos is the schema position the decoded value lands in; -1 when the
	// value is seed-overridden or outside the schema (the column is then
	// only NULL-checked).
	pos     int
	iriTmpl string
	memo    map[rdb.Value]dict.ID
}

func newSQLColDecoder(tl *translation, seed sparql.Binding, schema *engine.Schema, d *dict.Dict) *sqlColDecoder {
	dec := &sqlColDecoder{
		d:        d,
		template: make([]dict.ID, len(schema.Vars)),
		row:      make([]dict.ID, len(schema.Vars)),
	}
	for v, t := range tl.constBindings {
		if p := schema.Pos(v); p >= 0 {
			dec.template[p] = d.Intern(t)
		}
	}
	for i, v := range schema.Vars {
		if t, ok := seed[v]; ok {
			dec.template[i] = d.Intern(t)
		}
	}
	dec.cols = make([]sqlDecoderCol, len(tl.varOrder))
	for i, v := range tl.varOrder {
		pos := schema.Pos(v)
		if _, seeded := seed[v]; seeded {
			pos = -1
		}
		dec.cols[i] = sqlDecoderCol{
			pos:     pos,
			iriTmpl: tl.varCols[v].template,
			memo:    make(map[rdb.Value]dict.ID),
		}
	}
	return dec
}

// decode interns one result row; ok is false when a decoded column is
// NULL (the property is absent, so the row does not match the star). The
// returned slice is reused by the next call — consumers copy (AppendIDs
// does).
func (dec *sqlColDecoder) decode(row rdb.Row) ([]dict.ID, bool) {
	for i := range dec.cols {
		if row[i].Null {
			return nil, false
		}
	}
	ids := dec.row
	copy(ids, dec.template)
	for i := range dec.cols {
		c := &dec.cols[i]
		if c.pos < 0 {
			continue
		}
		val := row[i]
		id, ok := c.memo[val]
		if !ok {
			id = dec.d.Intern(valueToTerm(val, c.iriTmpl))
			c.memo[val] = id
		}
		ids[c.pos] = id
	}
	return ids, true
}

// seedIDCheck is the multi-seed compatibility test over ID rows: one
// (position, ID) pair per translatable seed variable. A row matches a
// seed when every checked position is either unbound (compatible by the
// row model's rules) or equal — dictionary IDs make term equality an
// integer compare.
type seedIDCheck struct {
	pos []int
	ids []dict.ID
}

func buildSeedIDChecks(seeds []sparql.Binding, schema *engine.Schema, d *dict.Dict) []seedIDCheck {
	out := make([]seedIDCheck, 0, len(seeds))
	for _, seed := range seeds {
		var c seedIDCheck
		for v, t := range seed {
			if p := schema.Pos(v); p >= 0 {
				c.pos = append(c.pos, p)
				c.ids = append(c.ids, d.Intern(t))
			}
		}
		out = append(out, c)
	}
	return out
}

func matchesAnySeedIDs(ids []dict.ID, checks []seedIDCheck) bool {
	if len(checks) == 0 {
		return true
	}
	for _, c := range checks {
		ok := true
		for i, p := range c.pos {
			if id := ids[p]; id != dict.Unbound && id != c.ids[i] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// blockTranslation translates a multi-seed block request and pushes the
// seed predicate into the WHERE clause; empty is true when the
// translation proves the result empty before touching the database.
func (w *SQLWrapper) blockTranslation(req *Request, stars []*StarQuery) (*translation, bool, error) {
	tl, err := translateRequest(w.src, stars, req.Filters)
	if err != nil {
		return nil, false, err
	}
	if tl.empty {
		return nil, true, nil
	}
	seedCond, provablyEmpty := tl.seedPredicate(req.Seeds)
	if provablyEmpty {
		return nil, true, nil
	}
	if seedCond != nil {
		if tl.sel.Where == nil {
			tl.sel.Where = seedCond
		} else {
			tl.sel.Where = &sql.And{L: tl.sel.Where, R: seedCond}
		}
	}
	return tl, false, nil
}

// ExecuteColumnar implements ColumnarWrapper: the request is translated
// and queried exactly as in Execute, and the result rows are decoded
// straight into dictionary IDs (sqlColDecoder). Paths that must evaluate
// terms in the wrapper — unpushable local filters, the naive multi-star
// translation — decode rows as before and intern at the boundary.
//
// The decoded response is built as a respEntry and streamed from it, so a
// repeated request — the engine's response cache hits on the prepared
// plan's request identity plus seed content — skips translation, SQL
// execution and decoding entirely and replays the remembered ID rows
// under the live network simulation.
func (w *SQLWrapper) ExecuteColumnar(ctx context.Context, req *Request, schema *engine.Schema, d *dict.Dict) (*engine.CStream, error) {
	if len(req.Stars) == 0 {
		return nil, fmt.Errorf("wrapper %s: empty request", w.src.ID)
	}
	if w.mode == TranslationNaive && len(req.Stars) > 1 && len(req.Seeds) == 0 {
		// The naive translation joins star results inside the wrapper over
		// row bindings; reuse it through the boundary adapter (uncached —
		// the path exists to reproduce the paper's unoptimized behaviour).
		s, err := w.Execute(ctx, req)
		if err != nil {
			return nil, err
		}
		return engine.EncodeStream(ctx, s, schema, d), nil
	}
	gen := w.src.DB.Gen()
	var key respKey
	if w.cache != nil {
		key = respKeyFor(w.src.ID, uint8(w.mode), req, d)
		if e := w.cache.lookup(key, req, gen); e != nil {
			w.resetSQL()
			for _, stmt := range e.sql {
				w.recordSQL(stmt)
			}
			return e.stream(ctx, w.sim, schema, w.batch), nil
		}
	}
	var (
		e   *respEntry
		err error
	)
	if len(req.Seeds) > 0 {
		e, err = w.columnarBlockEntry(req, schema, d)
	} else {
		e, err = w.columnarEntry(req, schema, d)
	}
	if err != nil {
		return nil, err
	}
	e.gen = gen
	if w.cache != nil {
		w.cache.store(key, e)
	}
	return e.stream(ctx, w.sim, schema, w.batch), nil
}

// columnarEntry translates, executes and decodes a per-answer request
// into a response entry (one latency sample per row on replay).
func (w *SQLWrapper) columnarEntry(req *Request, schema *engine.Schema, d *dict.Dict) (*respEntry, error) {
	stars := req.Stars
	if len(req.Seed) > 0 {
		seeded := make([]*StarQuery, len(stars))
		for i, s := range stars {
			seeded[i] = &StarQuery{
				SubjectVar: s.SubjectVar,
				Class:      s.Class,
				Patterns:   substituteSeed(s.Patterns, req.Seed),
			}
		}
		stars = seeded
	}
	e := &respEntry{perRow: true, stride: len(schema.Vars), seed: req.Seed}
	w.resetSQL()
	tl, err := translateRequest(w.src, stars, req.Filters)
	if err != nil {
		return nil, err
	}
	if tl.empty {
		// Provably empty before touching the database: no SQL, no rows,
		// and on replay no latency samples.
		return e, nil
	}
	stmt := tl.sel.String()
	w.recordSQL(stmt)
	e.sql = []string{stmt}
	res, err := w.src.DB.QueryAST(tl.sel)
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: %w", w.src.ID, err)
	}
	if len(tl.localFilters) > 0 {
		var sols []sparql.Binding
		for _, row := range res.Rows {
			b, ok := tl.decodeRow(row)
			if !ok {
				continue
			}
			if !passes(withSeed(b, req.Seed), tl.localFilters) {
				continue
			}
			sols = append(sols, b)
		}
		e.rows, e.nrows = flattenSolutions(req.Seed, sols, schema, d)
		return e, nil
	}
	dec := newSQLColDecoder(tl, req.Seed, schema, d)
	for _, row := range res.Rows {
		ids, ok := dec.decode(row)
		if !ok {
			continue
		}
		e.rows = append(e.rows, ids...)
		e.nrows++
	}
	return e, nil
}

// columnarBlockEntry answers a multi-seed block request natively: one
// pushed SQL query, and the response decoded as ID rows with the
// (possibly lossy) seed predicate re-checked by integer comparison. The
// response is one simulated network message, sampled on replay.
func (w *SQLWrapper) columnarBlockEntry(req *Request, schema *engine.Schema, d *dict.Dict) (*respEntry, error) {
	e := &respEntry{
		stride: len(schema.Vars),
		seeds:  append([]sparql.Binding(nil), req.Seeds...),
	}
	w.resetSQL()
	tl, empty, err := w.blockTranslation(req, req.Stars)
	if err != nil {
		return nil, err
	}
	if empty {
		// The (empty) response still crosses the network as one message.
		return e, nil
	}
	stmt := tl.sel.String()
	w.recordSQL(stmt)
	e.sql = []string{stmt}
	res, err := w.src.DB.QueryAST(tl.sel)
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: %w", w.src.ID, err)
	}
	if len(tl.localFilters) > 0 {
		var sols []sparql.Binding
		for _, row := range res.Rows {
			b, ok := tl.decodeRow(row)
			if !ok {
				continue
			}
			if !matchesAnySeed(b, req.Seeds) {
				continue
			}
			if !passes(b, tl.localFilters) {
				continue
			}
			sols = append(sols, b)
		}
		e.rows, e.nrows = flattenSolutions(nil, sols, schema, d)
		return e, nil
	}
	dec := newSQLColDecoder(tl, nil, schema, d)
	checks := buildSeedIDChecks(req.Seeds, schema, d)
	for _, row := range res.Rows {
		ids, ok := dec.decode(row)
		if !ok || !matchesAnySeedIDs(ids, checks) {
			continue
		}
		e.rows = append(e.rows, ids...)
		e.nrows++
	}
	return e, nil
}
