package wrapper

import (
	"context"
	"sort"
	"strings"
	"testing"

	"ontario/internal/catalog"
	"ontario/internal/netsim"
	"ontario/internal/rdb"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// testSource builds a small relational source: person(id, name, age) with
// a side table person_friend(id, person_id, friend_id).
func testSource(t *testing.T) *catalog.Source {
	t.Helper()
	db := rdb.NewDatabase("people")
	person, err := db.CreateTable(&rdb.Schema{
		Name: "person",
		Columns: []rdb.Column{
			{Name: "id", Type: rdb.TypeInt, NotNull: true},
			{Name: "name", Type: rdb.TypeString},
			{Name: "age", Type: rdb.TypeInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	friend, err := db.CreateTable(&rdb.Schema{
		Name: "person_friend",
		Columns: []rdb.Column{
			{Name: "id", Type: rdb.TypeInt, NotNull: true},
			{Name: "person_id", Type: rdb.TypeInt},
			{Name: "friend_id", Type: rdb.TypeInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ada", "grace", "alan", "edsger", "barbara"}
	for i, n := range names {
		if err := person.Insert(rdb.Row{rdb.IntValue(int64(i + 1)), rdb.StringValue(n), rdb.IntValue(int64(20 + 10*i))}); err != nil {
			t.Fatal(err)
		}
	}
	links := [][2]int64{{1, 2}, {1, 3}, {2, 3}, {4, 5}}
	for i, l := range links {
		if err := friend.Insert(rdb.Row{rdb.IntValue(int64(i + 1)), rdb.IntValue(l[0]), rdb.IntValue(l[1])}); err != nil {
			t.Fatal(err)
		}
	}
	if err := person.CreateIndex(rdb.IndexSpec{Column: "name", Kind: rdb.IndexHash}); err != nil {
		t.Fatal(err)
	}
	if err := friend.CreateIndex(rdb.IndexSpec{Column: "person_id", Kind: rdb.IndexHash}); err != nil {
		t.Fatal(err)
	}
	return &catalog.Source{
		ID:    "people",
		Model: catalog.ModelRelational,
		DB:    db,
		Mappings: map[string]*catalog.ClassMapping{
			"http://c/Person": {
				Class: "http://c/Person", Table: "person",
				SubjectColumn: "id", SubjectTemplate: "http://e/person/{value}",
				Properties: map[string]*catalog.PropertyMapping{
					"http://p/name": {Predicate: "http://p/name", Column: "name"},
					"http://p/age":  {Predicate: "http://p/age", Column: "age"},
					"http://p/friend": {
						Predicate: "http://p/friend", JoinTable: "person_friend",
						JoinFK: "person_id", ValueColumn: "friend_id",
						ObjectTemplate: "http://e/person/{value}", ObjectClass: "http://c/Person",
					},
				},
			},
		},
	}
}

func star(t *testing.T, subjectVar, class, patterns string) *StarQuery {
	t.Helper()
	q, err := sparql.Parse("SELECT * WHERE { " + patterns + " }")
	if err != nil {
		t.Fatal(err)
	}
	return &StarQuery{SubjectVar: subjectVar, Class: class, Patterns: q.Patterns}
}

func collect(t *testing.T, w Wrapper, req *Request) []sparql.Binding {
	t.Helper()
	s, err := w.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return s.Collect()
}

func TestSQLWrapperSingleStar(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	req := &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `?p <http://p/name> ?n . ?p <http://p/age> ?a .`),
	}}
	got := collect(t, w, req)
	if len(got) != 5 {
		t.Fatalf("got %d bindings, want 5", len(got))
	}
	for _, b := range got {
		if !b["p"].IsIRI() || !strings.HasPrefix(b["p"].Value, "http://e/person/") {
			t.Fatalf("subject not an IRI: %v", b)
		}
		if b["n"].Kind != rdf.TermLiteral {
			t.Fatalf("name not a literal: %v", b)
		}
		if b["a"].Datatype != rdf.XSDInteger {
			t.Fatalf("age not an integer literal: %v", b)
		}
	}
	if sqls := w.LastSQL(); len(sqls) != 1 || !strings.Contains(sqls[0], "FROM person") {
		t.Errorf("LastSQL = %v", sqls)
	}
}

func TestSQLWrapperTypePattern(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	req := &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person",
			`?p <`+rdf.RDFType+`> <http://c/Person> . ?p <http://p/name> ?n . ?p <`+rdf.RDFType+`> ?t .`),
	}}
	got := collect(t, w, req)
	if len(got) != 5 {
		t.Fatalf("got %d, want 5", len(got))
	}
	if got[0]["t"].Value != "http://c/Person" {
		t.Fatalf("?t not bound to the class: %v", got[0])
	}
	// Wrong class constant: provably empty.
	req = &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `?p <`+rdf.RDFType+`> <http://c/Other> . ?p <http://p/name> ?n .`),
	}}
	if got := collect(t, w, req); len(got) != 0 {
		t.Fatalf("wrong class returned %d bindings", len(got))
	}
}

func TestSQLWrapperConstantSubjectAndObject(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	// Constant subject.
	req := &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `<http://e/person/2> <http://p/name> ?n .`),
	}}
	got := collect(t, w, req)
	if len(got) != 1 || got[0]["n"].Value != "grace" {
		t.Fatalf("constant subject: %v", got)
	}
	// Constant literal object.
	req = &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `?p <http://p/name> "alan" .`),
	}}
	got = collect(t, w, req)
	if len(got) != 1 || got[0]["p"].Value != "http://e/person/3" {
		t.Fatalf("constant object: %v", got)
	}
	// Constant IRI object through a side table.
	req = &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `?p <http://p/friend> <http://e/person/3> .`),
	}}
	got = collect(t, w, req)
	if len(got) != 2 {
		t.Fatalf("friend-of-3: got %d, want 2 (%v)", len(got), got)
	}
	// Subject IRI outside the namespace: empty.
	req = &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `<http://elsewhere/9> <http://p/name> ?n .`),
	}}
	if got := collect(t, w, req); len(got) != 0 {
		t.Fatalf("foreign subject matched: %v", got)
	}
}

func TestSQLWrapperSideTable(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	req := &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `?p <http://p/name> ?n . ?p <http://p/friend> ?f .`),
	}}
	got := collect(t, w, req)
	if len(got) != 4 {
		t.Fatalf("got %d friendship rows, want 4", len(got))
	}
	sqls := w.LastSQL()
	if len(sqls) != 1 || !strings.Contains(sqls[0], "JOIN person_friend") {
		t.Errorf("expected a JOIN in %v", sqls)
	}
}

func TestSQLWrapperFilterPushdown(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://p/age> ?a . FILTER (?a >= 40) }`)
	req := &Request{
		Stars:   []*StarQuery{{SubjectVar: "p", Class: "http://c/Person", Patterns: q.Patterns}},
		Filters: q.Filters,
	}
	got := collect(t, w, req)
	if len(got) != 3 {
		t.Fatalf("got %d, want 3 (ages 40,50,60)", len(got))
	}
	if !strings.Contains(w.LastSQL()[0], "age >= 40") {
		t.Errorf("filter not pushed into SQL: %v", w.LastSQL())
	}
}

func TestSQLWrapperContainsBecomesLike(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://p/name> ?n . FILTER (CONTAINS(?n, "ra")) }`)
	req := &Request{
		Stars:   []*StarQuery{{SubjectVar: "p", Class: "http://c/Person", Patterns: q.Patterns}},
		Filters: q.Filters,
	}
	got := collect(t, w, req)
	names := map[string]bool{}
	for _, b := range got {
		names[b["n"].Value] = true
	}
	if len(got) != 2 || !names["grace"] || !names["barbara"] {
		t.Fatalf("CONTAINS results: %v", got)
	}
	if !strings.Contains(w.LastSQL()[0], "LIKE '%ra%'") {
		t.Errorf("CONTAINS not translated to LIKE: %v", w.LastSQL())
	}
}

func TestSQLWrapperUntranslatableFilterRunsLocally(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	// REGEX is not translatable; it must still be applied (locally).
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://p/name> ?n . FILTER (REGEX(?n, "^a")) }`)
	req := &Request{
		Stars:   []*StarQuery{{SubjectVar: "p", Class: "http://c/Person", Patterns: q.Patterns}},
		Filters: q.Filters,
	}
	got := collect(t, w, req)
	if len(got) != 2 { // ada, alan
		t.Fatalf("got %d, want 2: %v", len(got), got)
	}
	if strings.Contains(w.LastSQL()[0], "LIKE") {
		t.Errorf("REGEX was wrongly pushed: %v", w.LastSQL())
	}
}

func TestSQLWrapperMergedStarsOptimizedVsNaive(t *testing.T) {
	src := testSource(t)
	stars := []*StarQuery{
		star(t, "p", "http://c/Person", `?p <http://p/name> ?n . ?p <http://p/friend> ?f .`),
		star(t, "f", "http://c/Person", `?f <http://p/name> ?fn . ?f <http://p/age> ?fa .`),
	}
	opt := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	naive := NewSQLWrapper(src, nil, TranslationNaive, 0)
	gotOpt := collect(t, opt, &Request{Stars: stars})
	gotNaive := collect(t, naive, &Request{Stars: stars})
	if len(gotOpt) != 4 || len(gotNaive) != 4 {
		t.Fatalf("optimized %d, naive %d; want 4 each", len(gotOpt), len(gotNaive))
	}
	key := func(bs []sparql.Binding) []string {
		out := make([]string, len(bs))
		for i, x := range bs {
			out[i] = x.FullKey()
		}
		sort.Strings(out)
		return out
	}
	ko, kn := key(gotOpt), key(gotNaive)
	for i := range ko {
		if ko[i] != kn[i] {
			t.Fatalf("optimized and naive results differ:\n%v\n%v", gotOpt, gotNaive)
		}
	}
	if len(opt.LastSQL()) != 1 {
		t.Errorf("optimized issued %d statements, want 1", len(opt.LastSQL()))
	}
	if len(naive.LastSQL()) != 2 {
		t.Errorf("naive issued %d statements, want 2", len(naive.LastSQL()))
	}
}

func TestSQLWrapperSeed(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	req := &Request{
		Stars: []*StarQuery{star(t, "p", "http://c/Person", `?p <http://p/name> ?n .`)},
		Seed:  sparql.Binding{"p": rdf.NewIRI("http://e/person/4")},
	}
	got := collect(t, w, req)
	if len(got) != 1 || got[0]["n"].Value != "edsger" {
		t.Fatalf("seeded request: %v", got)
	}
	if got[0]["p"].Value != "http://e/person/4" {
		t.Fatalf("seed variable not re-merged: %v", got[0])
	}
}

func TestSQLWrapperVariablePredicateRejected(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	req := &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `?p ?any ?o .`),
	}}
	if _, err := w.Execute(context.Background(), req); err == nil {
		t.Fatal("variable predicate accepted at a relational source")
	}
}

func TestSQLWrapperUnknownPredicateEmpty(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	req := &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `?p <http://p/unknown> ?x .`),
	}}
	if got := collect(t, w, req); len(got) != 0 {
		t.Fatalf("unknown predicate matched: %v", got)
	}
}

func TestRDFWrapper(t *testing.T) {
	g := rdf.NewGraph()
	name := rdf.NewIRI("http://p/name")
	for i, n := range []string{"ada", "grace"} {
		g.Add(rdf.Triple{S: rdf.NewIRI("http://e/person/" + string(rune('1'+i))), P: name, O: rdf.NewLiteral(n)})
	}
	sim := netsim.NewSimulator(netsim.NoDelay, 0, 1)
	w := NewRDFWrapper("g", g, sim, 0)
	if w.SourceID() != "g" {
		t.Error("SourceID wrong")
	}
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://p/name> ?n . FILTER (CONTAINS(?n, "a")) }`)
	req := &Request{
		Stars:   []*StarQuery{{SubjectVar: "p", Patterns: q.Patterns}},
		Filters: q.Filters,
	}
	got := collect(t, w, req)
	if len(got) != 2 {
		t.Fatalf("RDF wrapper: %v", got)
	}
	if sim.Messages() != 2 {
		t.Errorf("messages = %d, want 2", sim.Messages())
	}
	// Seeded execution.
	req.Seed = sparql.Binding{"n": rdf.NewLiteral("ada")}
	got = collect(t, w, req)
	if len(got) != 1 {
		t.Fatalf("seeded RDF wrapper: %v", got)
	}
}

func TestNullColumnsDropRows(t *testing.T) {
	src := testSource(t)
	// Add a person with NULL age: the star requiring age must not match.
	person := src.DB.Table("person")
	if err := person.Insert(rdb.Row{rdb.IntValue(99), rdb.StringValue("ghost"), rdb.NullValue(rdb.TypeInt)}); err != nil {
		t.Fatal(err)
	}
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	req := &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `?p <http://p/name> ?n . ?p <http://p/age> ?a .`),
	}}
	got := collect(t, w, req)
	if len(got) != 5 {
		t.Fatalf("NULL age row leaked: %d bindings (want 5)", len(got))
	}
	// Without the age pattern the ghost appears.
	req = &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `?p <http://p/name> ?n .`),
	}}
	if got := collect(t, w, req); len(got) != 6 {
		t.Fatalf("got %d names, want 6", len(got))
	}
}
