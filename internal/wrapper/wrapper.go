// Package wrapper implements the source wrappers of the mediator/wrapper
// architecture: the engine hands a wrapper a star-shaped sub-query (or a
// combination of them, when Heuristic 1 pushed a join down) in SPARQL
// terms, and the wrapper answers it in the source's native model — direct
// BGP evaluation for RDF sources, SPARQL-to-SQL translation for relational
// sources. Network latency is simulated per retrieved answer, as in the
// paper's modified Ontario.
package wrapper

import (
	"context"
	"fmt"

	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// StarQuery is one star-shaped sub-query: all triple patterns share the
// subject variable, and source selection has resolved the molecule class.
type StarQuery struct {
	SubjectVar string
	Class      string // class IRI selected for this star
	Patterns   []sparql.TriplePattern
}

// Vars returns the distinct variables of the star.
func (s *StarQuery) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, tp := range s.Patterns {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Request is a wrapper invocation: one or more stars (more than one only
// for relational sources under Heuristic 1) plus the filters the planner
// decided to push to the source (Heuristic 2).
type Request struct {
	Stars   []*StarQuery
	Filters []sparql.Expr
	// Seed instantiates variables before execution (used by bind joins).
	Seed sparql.Binding
}

// Vars returns the distinct variables across all stars.
func (r *Request) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range r.Stars {
		for _, v := range s.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Wrapper answers requests against one source.
type Wrapper interface {
	// SourceID identifies the wrapped source.
	SourceID() string
	// Execute runs the request, streaming bindings as they are retrieved
	// across the simulated network.
	Execute(ctx context.Context, req *Request) (*engine.Stream, error)
}

// substituteSeed replaces seed-bound variables in the patterns with
// constant terms.
func substituteSeed(patterns []sparql.TriplePattern, seed sparql.Binding) []sparql.TriplePattern {
	if len(seed) == 0 {
		return patterns
	}
	out := make([]sparql.TriplePattern, len(patterns))
	sub := func(n sparql.Node) sparql.Node {
		if n.IsVar {
			if t, ok := seed[n.Var]; ok {
				return sparql.TermNode(t)
			}
		}
		return n
	}
	for i, tp := range patterns {
		out[i] = sparql.TriplePattern{S: sub(tp.S), P: sub(tp.P), O: sub(tp.O)}
	}
	return out
}

// streamWithDelay emits the bindings on a new stream, delaying each message
// by one latency sample, then re-merging the seed (bind-join semantics).
func streamWithDelay(ctx context.Context, sim *netsim.Simulator, seed sparql.Binding, sols []sparql.Binding) *engine.Stream {
	out := engine.NewStream(16)
	go func() {
		defer out.Close()
		for _, b := range sols {
			if sim != nil {
				sim.Delay()
			}
			if len(seed) > 0 {
				b = seed.Merge(b)
			}
			if !out.Send(ctx, b) {
				return
			}
		}
	}()
	return out
}

// RDFWrapper answers star queries by BGP evaluation over an in-memory
// graph.
type RDFWrapper struct {
	id    string
	graph *rdf.Graph
	sim   *netsim.Simulator
}

// NewRDFWrapper wraps an RDF graph. sim may be nil for no network
// simulation.
func NewRDFWrapper(id string, g *rdf.Graph, sim *netsim.Simulator) *RDFWrapper {
	return &RDFWrapper{id: id, graph: g, sim: sim}
}

// SourceID implements Wrapper.
func (w *RDFWrapper) SourceID() string { return w.id }

// Execute implements Wrapper.
func (w *RDFWrapper) Execute(ctx context.Context, req *Request) (*engine.Stream, error) {
	if len(req.Stars) == 0 {
		return nil, fmt.Errorf("wrapper %s: empty request", w.id)
	}
	var patterns []sparql.TriplePattern
	for _, s := range req.Stars {
		patterns = append(patterns, s.Patterns...)
	}
	patterns = substituteSeed(patterns, req.Seed)
	sols := sparql.EvalBGP(w.graph, patterns)
	if len(req.Filters) > 0 {
		var kept []sparql.Binding
		for _, b := range sols {
			// Filters may reference seeded variables that became
			// constants; evaluate them over the merged binding.
			eval := b
			if len(req.Seed) > 0 {
				eval = req.Seed.Merge(b)
			}
			ok := true
			for _, f := range req.Filters {
				if !sparql.EvalBool(f, eval) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, b)
			}
		}
		sols = kept
	}
	return streamWithDelay(ctx, w.sim, req.Seed, sols), nil
}
