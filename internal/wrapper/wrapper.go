// Package wrapper implements the source wrappers of the mediator/wrapper
// architecture: the engine hands a wrapper a star-shaped sub-query (or a
// combination of them, when Heuristic 1 pushed a join down) in SPARQL
// terms, and the wrapper answers it in the source's native model — direct
// BGP evaluation for RDF sources, SPARQL-to-SQL translation for relational
// sources. Network latency is simulated per retrieved answer, as in the
// paper's modified Ontario.
package wrapper

import (
	"context"
	"fmt"

	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// StarQuery is one star-shaped sub-query: all triple patterns share the
// subject variable, and source selection has resolved the molecule class.
type StarQuery struct {
	SubjectVar string
	Class      string // class IRI selected for this star
	Patterns   []sparql.TriplePattern
}

// Vars returns the distinct variables of the star.
func (s *StarQuery) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, tp := range s.Patterns {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Request is a wrapper invocation: one or more stars (more than one only
// for relational sources under Heuristic 1) plus the filters the planner
// decided to push to the source (Heuristic 2).
type Request struct {
	Stars   []*StarQuery
	Filters []sparql.Expr
	// Seed instantiates variables before execution (used by the sequential
	// bind join).
	Seed sparql.Binding
	// Seeds is the multi-seed block of the block bind join: one invocation
	// — and one simulated network message — answers the union of the
	// request over every seed. The wrapper returns each matching solution
	// exactly once, unmerged (the solutions bind the seeded variables
	// themselves); relational sources push the block down as a single SQL
	// query with an IN/OR seed predicate, RDF sources evaluate the patterns
	// in one graph pass. Seed and Seeds are mutually exclusive.
	Seeds []sparql.Binding
}

// matchesAnySeed reports whether the solution is compatible with at least
// one seed of the block (always true for an unconstrained block request).
func matchesAnySeed(b sparql.Binding, seeds []sparql.Binding) bool {
	if len(seeds) == 0 {
		return true
	}
	for _, s := range seeds {
		if s.Compatible(b) {
			return true
		}
	}
	return false
}

// Vars returns the distinct variables across all stars.
func (r *Request) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range r.Stars {
		for _, v := range s.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Wrapper answers requests against one source.
type Wrapper interface {
	// SourceID identifies the wrapped source.
	SourceID() string
	// Execute runs the request, streaming bindings as they are retrieved
	// across the simulated network.
	Execute(ctx context.Context, req *Request) (*engine.Stream, error)
}

// substituteSeed replaces seed-bound variables in the patterns with
// constant terms.
func substituteSeed(patterns []sparql.TriplePattern, seed sparql.Binding) []sparql.TriplePattern {
	if len(seed) == 0 {
		return patterns
	}
	out := make([]sparql.TriplePattern, len(patterns))
	sub := func(n sparql.Node) sparql.Node {
		if n.IsVar {
			if t, ok := seed[n.Var]; ok {
				return sparql.TermNode(t)
			}
		}
		return n
	}
	for i, tp := range patterns {
		out[i] = sparql.TriplePattern{S: sub(tp.S), P: sub(tp.P), O: sub(tp.O)}
	}
	return out
}

// streamWithDelay emits the bindings on a new stream, delaying each message
// by one latency sample, then re-merging the seed (bind-join semantics).
// The per-answer latency accounting is unchanged by batching: one sample
// per binding, however many bindings share a channel send. Batches are cut
// at batch bindings and flushed on the engine's flush interval so answers
// keep streaming under real (scaled) network sleeps.
func streamWithDelay(ctx context.Context, sim *netsim.Simulator, seed sparql.Binding, sols []sparql.Binding, batch int) *engine.Stream {
	out := engine.NewStream(4)
	go func() {
		defer out.Close()
		w := engine.NewBatchWriter(ctx, out, batch)
		defer w.Close()
		for _, b := range sols {
			if sim != nil {
				sim.Delay()
			}
			if len(seed) > 0 {
				b = seed.Merge(b)
			}
			if !w.Send(b) {
				return
			}
		}
	}()
	return out
}

// streamBlock emits the solutions of a multi-seed block request as one
// batched response: a single latency sample — one simulated network
// message — covers the whole block, regardless of how many solutions it
// carries. The message is accounted even for an empty result, because the
// response itself still crosses the network. The materialized response is
// relayed in batch-sized chunks; no flush timer is needed because nothing
// trickles after the block's single delay.
func streamBlock(ctx context.Context, sim *netsim.Simulator, sols []sparql.Binding, batch int) *engine.Stream {
	out := engine.NewStream(4)
	go func() {
		defer out.Close()
		if sim != nil {
			sim.Delay()
		}
		out.SendChunked(ctx, sols, batch)
	}()
	return out
}

// RDFWrapper answers star queries by BGP evaluation over an in-memory
// graph.
type RDFWrapper struct {
	id    string
	graph *rdf.Graph
	sim   *netsim.Simulator
	batch int

	// cache, when non-nil, memoizes decoded columnar responses across
	// executions. The graph is loaded once and treated as read-only by the
	// engine (there is no content generation to track), matching the
	// static-lake premise of the shared dictionary.
	cache *ResponseCache
}

// NewRDFWrapper wraps an RDF graph. sim may be nil for no network
// simulation; batch <= 0 means the engine's default batch size.
func NewRDFWrapper(id string, g *rdf.Graph, sim *netsim.Simulator, batch int) *RDFWrapper {
	return &RDFWrapper{id: id, graph: g, sim: sim, batch: batch}
}

// SourceID implements Wrapper.
func (w *RDFWrapper) SourceID() string { return w.id }

// SetResponseCache installs the engine's shared response cache (see
// SQLWrapper.SetResponseCache).
func (w *RDFWrapper) SetResponseCache(c *ResponseCache) { w.cache = c }

// Execute implements Wrapper.
func (w *RDFWrapper) Execute(ctx context.Context, req *Request) (*engine.Stream, error) {
	if len(req.Stars) == 0 {
		return nil, fmt.Errorf("wrapper %s: empty request", w.id)
	}
	var patterns []sparql.TriplePattern
	for _, s := range req.Stars {
		patterns = append(patterns, s.Patterns...)
	}
	if len(req.Seeds) > 0 {
		return w.executeBlock(ctx, req, patterns)
	}
	patterns = substituteSeed(patterns, req.Seed)
	sols := w.filteredSolutions(req, patterns)
	return streamWithDelay(ctx, w.sim, req.Seed, sols, w.batch), nil
}

// filteredSolutions evaluates the (already seed-substituted) patterns and
// applies the pushed filters; shared by the row and columnar paths.
func (w *RDFWrapper) filteredSolutions(req *Request, patterns []sparql.TriplePattern) []sparql.Binding {
	sols := sparql.EvalBGP(w.graph, patterns)
	if len(req.Filters) == 0 {
		return sols
	}
	var kept []sparql.Binding
	for _, b := range sols {
		// Filters may reference seeded variables that became constants;
		// evaluate them over the merged binding.
		eval := b
		if len(req.Seed) > 0 {
			eval = req.Seed.Merge(b)
		}
		ok := true
		for _, f := range req.Filters {
			if !sparql.EvalBool(f, eval) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, b)
		}
	}
	return kept
}

// executeBlock answers a multi-seed block request in one graph pass: the
// patterns are evaluated un-instantiated, the solutions are restricted to
// those compatible with at least one seed, and the whole block crosses the
// simulated network as a single message.
func (w *RDFWrapper) executeBlock(ctx context.Context, req *Request, patterns []sparql.TriplePattern) (*engine.Stream, error) {
	return streamBlock(ctx, w.sim, w.blockSolutions(req, patterns), w.batch), nil
}

// blockSolutions answers a multi-seed block request's solution set in one
// graph pass; shared by the row and columnar paths.
func (w *RDFWrapper) blockSolutions(req *Request, patterns []sparql.TriplePattern) []sparql.Binding {
	var sols []sparql.Binding
	for _, b := range sparql.EvalBGP(w.graph, patterns) {
		if !matchesAnySeed(b, req.Seeds) {
			continue
		}
		// Pushed filters only reference the stars' own variables, which the
		// un-instantiated evaluation binds directly.
		ok := true
		for _, f := range req.Filters {
			if !sparql.EvalBool(f, b) {
				ok = false
				break
			}
		}
		if ok {
			sols = append(sols, b)
		}
	}
	return sols
}
