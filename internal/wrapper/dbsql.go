package wrapper

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"ontario/internal/catalog"
	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/rdb"
	"ontario/internal/sparql"
	"ontario/internal/sql"
	"ontario/internal/trace"
)

// DBSQLWrapper answers star queries against a live relational database
// through database/sql, reusing the SPARQL-to-SQL translation: the
// catalog source carries the schema in its (row-less) rdb database for
// the translation to plan against, and the generated SQL text executes on
// the wrapped connection. Requests run under the shared resilience layer;
// rows are fully materialized per attempt so retries never replay a
// half-read result set.
type DBSQLWrapper struct {
	src    *catalog.Source
	health *HealthRegistry
	sim    *netsim.Simulator
	batch  int
}

// NewDBSQLWrapper wraps a ModelSQLDatabase source. health must be
// non-nil; sim may carry a message-accounting simulator; batch <= 0 means
// the engine default.
func NewDBSQLWrapper(src *catalog.Source, health *HealthRegistry, sim *netsim.Simulator, batch int) *DBSQLWrapper {
	return &DBSQLWrapper{src: src, health: health, sim: sim, batch: batch}
}

// SourceID implements Wrapper.
func (w *DBSQLWrapper) SourceID() string { return w.src.ID }

// Execute implements Wrapper.
func (w *DBSQLWrapper) Execute(ctx context.Context, req *Request) (*engine.Stream, error) {
	if len(req.Stars) == 0 {
		return nil, fmt.Errorf("wrapper %s: empty request", w.src.ID)
	}
	stars := req.Stars
	if len(req.Seeds) == 0 && len(req.Seed) > 0 {
		seeded := make([]*StarQuery, len(stars))
		for i, s := range stars {
			seeded[i] = &StarQuery{
				SubjectVar: s.SubjectVar,
				Class:      s.Class,
				Patterns:   substituteSeed(s.Patterns, req.Seed),
			}
		}
		stars = seeded
	}
	tl, err := translateRequest(w.src, stars, req.Filters)
	if err != nil {
		return nil, err
	}
	if tl.empty {
		return streamBlock(ctx, w.sim, nil, w.batch), nil
	}
	if len(req.Seeds) > 0 {
		seedCond, provablyEmpty := tl.seedPredicate(req.Seeds)
		if provablyEmpty {
			return streamBlock(ctx, w.sim, nil, w.batch), nil
		}
		if seedCond != nil {
			if tl.sel.Where == nil {
				tl.sel.Where = seedCond
			} else {
				tl.sel.Where = &sql.And{L: tl.sel.Where, R: seedCond}
			}
		}
	}
	rows, err := w.query(ctx, tl)
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: %w", w.src.ID, err)
	}
	var sols []sparql.Binding
	for _, row := range rows {
		b, ok := tl.decodeRow(row)
		if !ok {
			continue
		}
		if !matchesAnySeed(b, req.Seeds) {
			continue
		}
		if !passes(withSeed(b, req.Seed), tl.localFilters) {
			continue
		}
		sols = append(sols, b)
	}
	if len(req.Seeds) > 0 {
		return streamBlock(ctx, w.sim, sols, w.batch), nil
	}
	return streamWithDelay(ctx, w.sim, req.Seed, sols, w.batch), nil
}

// query runs the translated SELECT on the live connection under the
// resilience policy and materializes the rows in translation column order.
// Each call records a remote span in the query trace (a database hop has
// no traceparent to forward, but its attempts, breaker state and latency
// belong in the federation tree).
func (w *DBSQLWrapper) query(ctx context.Context, tl *translation) ([]rdb.Row, error) {
	stmt := tl.sel.String()
	var out []rdb.Row
	var attempts atomic.Int64
	started := time.Now()
	defer func() {
		qt := trace.FromContext(ctx)
		if qt == nil {
			return
		}
		qt.AddRemoteSpan(trace.RemoteSpan{
			Source:    w.src.ID,
			Attempts:  int(attempts.Load()),
			Breaker:   w.health.State(w.src.ID).String(),
			LatencyMS: float64(time.Since(started)) / float64(time.Millisecond),
		})
	}()
	err := w.health.Do(ctx, w.src.ID, func(actx context.Context) error {
		attempts.Add(1)
		rows, err := w.src.SQLDB.QueryContext(actx, stmt)
		if err != nil {
			return err
		}
		defer rows.Close()
		cols, err := rows.Columns()
		if err != nil {
			return err
		}
		if len(cols) < len(tl.varOrder) {
			return Permanent(fmt.Errorf("result has %d columns, translation expects %d", len(cols), len(tl.varOrder)))
		}
		var got []rdb.Row
		for rows.Next() {
			raw := make([]any, len(cols))
			ptrs := make([]any, len(cols))
			for i := range raw {
				ptrs[i] = &raw[i]
			}
			if err := rows.Scan(ptrs...); err != nil {
				return err
			}
			row := make(rdb.Row, len(tl.varOrder))
			for i, v := range tl.varOrder {
				val, cerr := sqlValueToRDB(raw[i], tl.varCols[v].typ)
				if cerr != nil {
					return Permanent(fmt.Errorf("column %s: %w", cols[i], cerr))
				}
				row[i] = val
			}
			got = append(got, row)
		}
		if err := rows.Err(); err != nil {
			return err
		}
		out = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sqlValueToRDB converts one driver value into the rdb value of the
// declared column type.
func sqlValueToRDB(v any, typ rdb.Type) (rdb.Value, error) {
	if v == nil {
		return rdb.NullValue(typ), nil
	}
	if b, ok := v.([]byte); ok {
		v = string(b)
	}
	switch typ {
	case rdb.TypeInt:
		switch x := v.(type) {
		case int64:
			return rdb.IntValue(x), nil
		case float64:
			return rdb.IntValue(int64(x)), nil
		case string:
			n, err := strconv.ParseInt(x, 10, 64)
			if err != nil {
				return rdb.Value{}, fmt.Errorf("cannot read %q as integer", x)
			}
			return rdb.IntValue(n), nil
		}
	case rdb.TypeFloat:
		switch x := v.(type) {
		case float64:
			return rdb.FloatValue(x), nil
		case int64:
			return rdb.FloatValue(float64(x)), nil
		case string:
			f, err := strconv.ParseFloat(x, 64)
			if err != nil {
				return rdb.Value{}, fmt.Errorf("cannot read %q as double", x)
			}
			return rdb.FloatValue(f), nil
		}
	case rdb.TypeString:
		switch x := v.(type) {
		case string:
			return rdb.StringValue(x), nil
		case int64:
			return rdb.StringValue(strconv.FormatInt(x, 10)), nil
		case float64:
			return rdb.StringValue(strconv.FormatFloat(x, 'g', -1, 64)), nil
		case bool:
			return rdb.StringValue(strconv.FormatBool(x)), nil
		}
	case rdb.TypeBool:
		switch x := v.(type) {
		case bool:
			return rdb.BoolValue(x), nil
		case int64:
			return rdb.BoolValue(x != 0), nil
		case string:
			b, err := strconv.ParseBool(x)
			if err != nil {
				return rdb.Value{}, fmt.Errorf("cannot read %q as boolean", x)
			}
			return rdb.BoolValue(b), nil
		}
	}
	return rdb.Value{}, fmt.Errorf("unsupported driver value %T for %s column", v, typ)
}
