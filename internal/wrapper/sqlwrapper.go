package wrapper

import (
	"context"
	"fmt"
	"sync"

	"ontario/internal/catalog"
	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/sparql"
)

// TranslationMode selects the quality of the SPARQL-to-SQL translation.
//
// The paper reports that Ontario's translation "is not optimized for
// combining star-shaped sub-queries", which made Heuristic 1 backfire, and
// that forcing the optimized SQL for Q2 approximately halved the execution
// time. TranslationNaive reproduces the unoptimized behaviour: each star is
// translated and fetched separately and the join runs as a nested loop in
// the wrapper. TranslationOptimized emits a single flattened SQL query so
// the relational engine can use its indexes for the join.
type TranslationMode int

// Translation modes.
const (
	TranslationOptimized TranslationMode = iota
	TranslationNaive
)

// String names the mode.
func (m TranslationMode) String() string {
	if m == TranslationNaive {
		return "naive"
	}
	return "optimized"
}

// SQLWrapper answers star queries against a relational source by
// translating them to SQL.
type SQLWrapper struct {
	src   *catalog.Source
	sim   *netsim.Simulator
	mode  TranslationMode
	batch int

	// cache, when non-nil, memoizes decoded columnar responses across
	// executions (see ResponseCache); entries are invalidated by the
	// source database's content generation.
	cache *ResponseCache

	// lastSQL records the SQL text(s) of the most recent request, for
	// EXPLAIN output and tests. The mutex makes the record safe under the
	// block bind join's concurrent invocations.
	sqlMu   sync.Mutex
	lastSQL []string
}

// NewSQLWrapper wraps a relational source. sim may be nil to disable
// network simulation; batch <= 0 means the engine's default batch size.
func NewSQLWrapper(src *catalog.Source, sim *netsim.Simulator, mode TranslationMode, batch int) *SQLWrapper {
	return &SQLWrapper{src: src, sim: sim, mode: mode, batch: batch}
}

// SourceID implements Wrapper.
func (w *SQLWrapper) SourceID() string { return w.src.ID }

// SetResponseCache installs the engine's shared response cache. The cache
// must belong to the same engine as the dictionary the wrapper interns
// into — entries hold its IDs.
func (w *SQLWrapper) SetResponseCache(c *ResponseCache) { w.cache = c }

// LastSQL returns the SQL statements issued by the most recent Execute.
func (w *SQLWrapper) LastSQL() []string {
	w.sqlMu.Lock()
	defer w.sqlMu.Unlock()
	return append([]string(nil), w.lastSQL...)
}

func (w *SQLWrapper) resetSQL() {
	w.sqlMu.Lock()
	w.lastSQL = nil
	w.sqlMu.Unlock()
}

func (w *SQLWrapper) recordSQL(stmt string) {
	w.sqlMu.Lock()
	w.lastSQL = append(w.lastSQL, stmt)
	w.sqlMu.Unlock()
}

// Execute implements Wrapper.
func (w *SQLWrapper) Execute(ctx context.Context, req *Request) (*engine.Stream, error) {
	if len(req.Stars) == 0 {
		return nil, fmt.Errorf("wrapper %s: empty request", w.src.ID)
	}
	stars := req.Stars
	if len(req.Seeds) > 0 {
		// Multi-seed block requests always use the single-query translation:
		// the whole point of the block is one pushed-down query per block.
		w.resetSQL()
		return w.executeBlock(ctx, req, stars)
	}
	if len(req.Seed) > 0 {
		seeded := make([]*StarQuery, len(stars))
		for i, s := range stars {
			seeded[i] = &StarQuery{
				SubjectVar: s.SubjectVar,
				Class:      s.Class,
				Patterns:   substituteSeed(s.Patterns, req.Seed),
			}
		}
		stars = seeded
	}
	w.resetSQL()
	if w.mode == TranslationNaive && len(stars) > 1 {
		return w.executeNaive(ctx, req, stars)
	}
	return w.executeOptimized(ctx, req, stars)
}

// executeBlock answers a multi-seed block request with a single SQL query:
// the seed block is pushed down as an IN (...) predicate (one seeded
// variable) or an OR-of-conjunctions (several), and the result rows cross
// the simulated network as one batched response message.
func (w *SQLWrapper) executeBlock(ctx context.Context, req *Request, stars []*StarQuery) (*engine.Stream, error) {
	tl, empty, err := w.blockTranslation(req, stars)
	if err != nil {
		return nil, err
	}
	if empty {
		return streamBlock(ctx, w.sim, nil, w.batch), nil
	}
	w.recordSQL(tl.sel.String())
	res, err := w.src.DB.QueryAST(tl.sel)
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: %w", w.src.ID, err)
	}
	var sols []sparql.Binding
	for _, row := range res.Rows {
		b, ok := tl.decodeRow(row)
		if !ok {
			continue
		}
		// The pushed predicate may be lossy (a seeded variable may not be
		// translatable); re-check seed compatibility on the decoded row.
		if !matchesAnySeed(b, req.Seeds) {
			continue
		}
		if !passes(b, tl.localFilters) {
			continue
		}
		sols = append(sols, b)
	}
	return streamBlock(ctx, w.sim, sols, w.batch), nil
}

// executeOptimized issues one flattened SQL query for all stars.
func (w *SQLWrapper) executeOptimized(ctx context.Context, req *Request, stars []*StarQuery) (*engine.Stream, error) {
	tl, err := translateRequest(w.src, stars, req.Filters)
	if err != nil {
		return nil, err
	}
	if tl.empty {
		return emptyStream(), nil
	}
	w.recordSQL(tl.sel.String())
	res, err := w.src.DB.QueryAST(tl.sel)
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: %w", w.src.ID, err)
	}
	var sols []sparql.Binding
	for _, row := range res.Rows {
		b, ok := tl.decodeRow(row)
		if !ok {
			continue
		}
		if !passes(withSeed(b, req.Seed), tl.localFilters) {
			continue
		}
		sols = append(sols, b)
	}
	return streamWithDelay(ctx, w.sim, req.Seed, sols, w.batch), nil
}

// withSeed merges the seed into b for filter evaluation; filters may
// reference seeded variables that the translation turned into constants.
func withSeed(b, seed sparql.Binding) sparql.Binding {
	if len(seed) == 0 {
		return b
	}
	return seed.Merge(b)
}

// executeNaive translates and fetches each star separately (every row of
// every star crossing the simulated network) and joins the results with a
// nested loop inside the wrapper — Ontario's unoptimized combined-star
// translation.
func (w *SQLWrapper) executeNaive(ctx context.Context, req *Request, stars []*StarQuery) (*engine.Stream, error) {
	perStar := make([][]sparql.Binding, len(stars))
	var leftoverFilters []sparql.Expr
	usedFilter := make([]bool, len(req.Filters))
	for i, star := range stars {
		// Only filters fully covered by this star's variables may be
		// pushed into its SQL.
		starVars := map[string]bool{}
		for _, v := range star.Vars() {
			starVars[v] = true
		}
		var pushed []sparql.Expr
		for fi, f := range req.Filters {
			if usedFilter[fi] {
				continue
			}
			covered := true
			for _, v := range f.Vars() {
				if !starVars[v] {
					covered = false
					break
				}
			}
			if covered {
				pushed = append(pushed, f)
				usedFilter[fi] = true
			}
		}
		tl, err := translateRequest(w.src, []*StarQuery{star}, pushed)
		if err != nil {
			return nil, err
		}
		if tl.empty {
			return emptyStream(), nil
		}
		w.recordSQL(tl.sel.String())
		res, err := w.src.DB.QueryAST(tl.sel)
		if err != nil {
			return nil, fmt.Errorf("wrapper %s: %w", w.src.ID, err)
		}
		for _, row := range res.Rows {
			b, ok := tl.decodeRow(row)
			if !ok {
				continue
			}
			if !passes(withSeed(b, req.Seed), tl.localFilters) {
				continue
			}
			// Every intermediate row is retrieved across the network.
			if w.sim != nil {
				w.sim.Delay()
			}
			perStar[i] = append(perStar[i], b)
		}
	}
	for fi, f := range req.Filters {
		if !usedFilter[fi] {
			leftoverFilters = append(leftoverFilters, f)
		}
	}

	// Nested-loop join across the stars inside the wrapper.
	joined := perStar[0]
	for i := 1; i < len(perStar); i++ {
		var next []sparql.Binding
		for _, l := range joined {
			for _, r := range perStar[i] {
				if l.Compatible(r) {
					next = append(next, l.Merge(r))
				}
			}
		}
		joined = next
	}
	var sols []sparql.Binding
	for _, b := range joined {
		if passes(withSeed(b, req.Seed), leftoverFilters) {
			sols = append(sols, b)
		}
	}
	// The joined rows were already transferred; stream without extra
	// delay.
	return streamWithDelay(ctx, nil, req.Seed, sols, w.batch), nil
}

func passes(b sparql.Binding, filters []sparql.Expr) bool {
	for _, f := range filters {
		if !sparql.EvalBool(f, b) {
			return false
		}
	}
	return true
}

func emptyStream() *engine.Stream {
	s := engine.NewStream(0)
	s.Close()
	return s
}
