package wrapper

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
	"ontario/internal/trace"
)

// RemoteSPARQLWrapper answers star queries against a live SPARQL-protocol
// endpoint over HTTP — typically another ontario-server node, but any
// endpoint speaking POST application/sparql-query with
// application/sparql-results+json answers works. Star patterns, pushed
// filters, and bind-join seed blocks are compiled back to SPARQL text; the
// request runs under the shared resilience layer (per-attempt timeout,
// retries, circuit breaker), and the response is fully materialized before
// streaming so a retry never replays a half-consumed stream.
type RemoteSPARQLWrapper struct {
	id       string
	endpoint string
	client   *http.Client
	health   *HealthRegistry
	sim      *netsim.Simulator
	batch    int
}

// NewRemoteSPARQLWrapper wraps the SPARQL endpoint at endpoint (the full
// query URL, e.g. http://host:port/sparql). health must be non-nil: remote
// sources always run under a resilience policy. sim may carry a simulator
// for message accounting (typically netsim.NoDelay: the real network
// provides the latency); batch <= 0 means the engine default.
func NewRemoteSPARQLWrapper(id, endpoint string, health *HealthRegistry, sim *netsim.Simulator, batch int) *RemoteSPARQLWrapper {
	return &RemoteSPARQLWrapper{
		id:       id,
		endpoint: endpoint,
		client:   &http.Client{},
		health:   health,
		sim:      sim,
		batch:    batch,
	}
}

// SourceID implements Wrapper.
func (w *RemoteSPARQLWrapper) SourceID() string { return w.id }

// Endpoint returns the wrapped query URL.
func (w *RemoteSPARQLWrapper) Endpoint() string { return w.endpoint }

// Execute implements Wrapper.
func (w *RemoteSPARQLWrapper) Execute(ctx context.Context, req *Request) (*engine.Stream, error) {
	if len(req.Stars) == 0 {
		return nil, fmt.Errorf("wrapper %s: empty request", w.id)
	}
	query := buildRemoteQuery(req)
	qt := trace.FromContext(ctx)
	var sols []sparql.Binding
	var attempts atomic.Int64
	var peer peerTrace
	started := time.Now()
	err := w.health.Do(ctx, w.id, func(actx context.Context) error {
		attempts.Add(1)
		got, p, ferr := w.fetch(actx, query, qt)
		if ferr != nil {
			return ferr
		}
		sols, peer = got, p
		return nil
	})
	if qt != nil {
		span := trace.RemoteSpan{
			Source:    w.id,
			QueryID:   peer.queryID,
			Attempts:  int(attempts.Load()),
			Breaker:   w.health.State(w.id).String(),
			LatencyMS: float64(time.Since(started)) / float64(time.Millisecond),
			Children:  peer.spans,
		}
		if err != nil {
			span.Error = err.Error()
		}
		qt.AddRemoteSpan(span)
	}
	if err != nil {
		return nil, fmt.Errorf("wrapper %s: endpoint %s: %w", w.id, w.endpoint, err)
	}
	if len(req.Seeds) > 0 {
		// The seed block went down as a FILTER disjunction; re-check locally
		// so a permissive endpoint cannot widen the join.
		kept := sols[:0]
		for _, b := range sols {
			if matchesAnySeed(b, req.Seeds) {
				kept = append(kept, b)
			}
		}
		return streamBlock(ctx, w.sim, kept, w.batch), nil
	}
	return streamWithDelay(ctx, w.sim, req.Seed, sols, w.batch), nil
}

// buildRemoteQuery compiles the request back to SPARQL text. A single
// bind-join seed is substituted into the patterns as constants; a
// multi-seed block becomes a FILTER disjunction of per-seed equality
// conjunctions (the grammar subset has no VALUES), with the solutions
// binding the seeded variables themselves — exactly the block-bind
// contract the in-process wrappers implement.
func buildRemoteQuery(req *Request) string {
	var patterns []sparql.TriplePattern
	for _, s := range req.Stars {
		patterns = append(patterns, s.Patterns...)
	}
	patterns = substituteSeed(patterns, req.Seed)
	var b strings.Builder
	b.WriteString("SELECT * WHERE {")
	for _, tp := range patterns {
		b.WriteString(" ")
		b.WriteString(tp.String())
		b.WriteString(" .")
	}
	for _, f := range req.Filters {
		b.WriteString(" FILTER(")
		b.WriteString(f.String())
		b.WriteString(")")
	}
	if cond := seedsFilter(req.Seeds, patterns); cond != "" {
		b.WriteString(" FILTER(")
		b.WriteString(cond)
		b.WriteString(")")
	}
	b.WriteString(" }")
	return b.String()
}

// seedsFilter renders the block's seeds as a disjunction of equality
// conjunctions over the seeded variables that actually occur in the
// patterns (a seed variable the star never mentions cannot constrain it).
func seedsFilter(seeds []sparql.Binding, patterns []sparql.TriplePattern) string {
	if len(seeds) == 0 {
		return ""
	}
	used := map[string]bool{}
	for _, tp := range patterns {
		for _, v := range tp.Vars() {
			used[v] = true
		}
	}
	var alts []string
	for _, seed := range seeds {
		vars := make([]string, 0, len(seed))
		for v := range seed {
			vars = append(vars, v)
		}
		sort.Strings(vars) // deterministic text keys the upstream plan cache
		var conj []string
		for _, v := range vars {
			if used[v] {
				conj = append(conj, "?"+v+" = "+seed[v].String())
			}
		}
		if len(conj) == 0 {
			// One unconstrained seed makes the whole block unconstrained.
			return ""
		}
		alts = append(alts, "("+strings.Join(conj, " && ")+")")
	}
	return strings.Join(alts, " || ")
}

// remoteTerm is one RDF term of the SPARQL results-JSON wire format.
type remoteTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Datatype string `json:"datatype"`
	Lang     string `json:"xml:lang"`
}

func (t remoteTerm) term() rdf.Term {
	switch t.Type {
	case "uri":
		return rdf.NewIRI(t.Value)
	case "bnode":
		return rdf.NewBlank(t.Value)
	default:
		switch {
		case t.Lang != "":
			return rdf.NewLangLiteral(t.Value, t.Lang)
		case t.Datatype != "":
			return rdf.NewTypedLiteral(t.Value, t.Datatype)
		default:
			return rdf.NewLiteral(t.Value)
		}
	}
}

// maxErrorBody bounds how much of an error response is read into the error
// message.
const maxErrorBody = 4 << 10

// peerTrace is what a remote hop reports back for the coordinator's trace:
// the peer's query ID (when the endpoint is an ontario server) and the
// peer's own remote spans, nesting deeper federation levels.
type peerTrace struct {
	queryID string
	spans   []trace.RemoteSpan
}

// fetch runs one attempt: POST the query, read and decode the full result
// document. A truncated body (an upstream node that died mid-stream writes
// a valid-looking prefix with no closing braces) surfaces as a JSON decode
// error, and an ontario-server upstream that failed mid-stream announces it
// in the X-Ontario-Error trailer — both are retryable. When qt is non-nil
// the hop propagates the W3C traceparent header and collects the peer's
// trace identity from the response.
func (w *RemoteSPARQLWrapper) fetch(ctx context.Context, query string, qt *trace.QueryTrace) ([]sparql.Binding, peerTrace, error) {
	var peer peerTrace
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.endpoint, strings.NewReader(query))
	if err != nil {
		return nil, peer, Permanent(err)
	}
	hreq.Header.Set("Content-Type", "application/sparql-query")
	hreq.Header.Set("Accept", "application/sparql-results+json")
	if qt != nil {
		hreq.Header.Set("Traceparent", qt.Traceparent())
	}
	resp, err := w.client.Do(hreq)
	if err != nil {
		return nil, peer, err
	}
	defer resp.Body.Close()
	peer.queryID = resp.Header.Get("X-Ontario-Query-Id")
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		err := fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 &&
			resp.StatusCode != http.StatusRequestTimeout && resp.StatusCode != http.StatusTooManyRequests {
			// The request itself is wrong (parse error, bad parameter):
			// retrying the same text cannot help.
			return nil, peer, Permanent(err)
		}
		return nil, peer, err
	}
	var doc struct {
		Results struct {
			Bindings []map[string]remoteTerm `json:"bindings"`
		} `json:"results"`
	}
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&doc); err != nil {
		return nil, peer, fmt.Errorf("decoding results: %w", err)
	}
	// Trailers are only populated once the body has been fully read.
	io.Copy(io.Discard, resp.Body)
	if raw := resp.Trailer.Get("X-Ontario-Spans"); raw != "" {
		// Best effort: a peer sending malformed spans only loses its
		// subtree in the coordinator trace.
		_ = json.Unmarshal([]byte(raw), &peer.spans)
	}
	if msg := resp.Trailer.Get("X-Ontario-Error"); msg != "" {
		return nil, peer, fmt.Errorf("upstream failed mid-stream: %s", msg)
	}
	sols := make([]sparql.Binding, 0, len(doc.Results.Bindings))
	for _, row := range doc.Results.Bindings {
		b := make(sparql.Binding, len(row))
		for v, t := range row {
			b[v] = t.term()
		}
		sols = append(sols, b)
	}
	return sols, peer, nil
}

// NoDelaySim returns a simulator that accounts request/response messages
// without sleeping — the profile remote wrappers use, where the real
// network provides the latency.
func NoDelaySim(seed int64) *netsim.Simulator {
	return netsim.NewSimulator(netsim.NoDelay, 0, seed)
}
