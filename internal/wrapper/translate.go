package wrapper

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ontario/internal/catalog"
	"ontario/internal/rdb"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
	"ontario/internal/sql"
)

// colInfo describes where a SPARQL variable lives in the translated SQL
// query.
type colInfo struct {
	ref      sql.ColumnRef
	typ      rdb.Type
	template string // non-empty when the column stores an IRI key
	nullable bool
}

// translation is the result of translating a request into one SQL query.
type translation struct {
	sel *sql.Select
	// varOrder lists the variables in projection order (c0, c1, ...).
	varOrder []string
	// varCols maps variable name to its column info.
	varCols map[string]colInfo
	// constBindings are variables bound to constants (e.g. ?t from
	// "?s a ?t" with a known class).
	constBindings sparql.Binding
	// localFilters could not be pushed into SQL and must run in the
	// wrapper.
	localFilters []sparql.Expr
	// empty marks a provably empty result (e.g. subject IRI outside the
	// mapping's namespace).
	empty bool
}

// translator builds a SQL query for one or more stars over one relational
// source.
type translator struct {
	src     *catalog.Source
	sel     *sql.Select
	varCols map[string]colInfo
	varSeen []string
	aliasN  int
	empty   bool
	// extraEq accumulates equality conditions from repeated variables.
	conds []sql.BoolExpr
	// notNull tracks direct nullable columns that must be IS NOT NULL.
	notNull map[string]sql.ColumnRef
	consts  sparql.Binding
}

// translateRequest translates the stars and as many filters as possible
// into a single SQL SELECT (the optimized translation of the paper's
// future-work discussion).
func translateRequest(src *catalog.Source, stars []*StarQuery, filters []sparql.Expr) (*translation, error) {
	tr := &translator{
		src:     src,
		sel:     &sql.Select{Limit: -1},
		varCols: map[string]colInfo{},
		notNull: map[string]sql.ColumnRef{},
		consts:  sparql.NewBinding(),
	}
	for _, star := range stars {
		if err := tr.addStar(star); err != nil {
			return nil, err
		}
	}
	out := &translation{
		varCols:       tr.varCols,
		constBindings: tr.consts,
		empty:         tr.empty,
	}
	// Push translatable filters.
	for _, f := range filters {
		if cond, ok := tr.translateFilter(f); ok {
			tr.conds = append(tr.conds, cond)
		} else {
			out.localFilters = append(out.localFilters, f)
		}
	}
	// NOT NULL guards for nullable direct columns bound to variables.
	for _, ref := range tr.notNull {
		tr.conds = append(tr.conds, &sql.IsNull{Col: ref, Not: true})
	}
	tr.sel.Where = sql.AndAll(tr.conds)
	// Projection: one output column per variable, in first-seen order.
	for i, v := range tr.varSeen {
		info := tr.varCols[v]
		tr.sel.Columns = append(tr.sel.Columns, sql.SelectItem{
			Col:   info.ref,
			Alias: fmt.Sprintf("c%d", i),
		})
	}
	if len(tr.sel.Columns) == 0 && len(tr.sel.From) > 0 {
		// Constant-only request: project the first base table's PK so the
		// row count survives.
		base := tr.sel.From[0]
		t := src.DB.Table(base.Table)
		tr.sel.Columns = append(tr.sel.Columns, sql.SelectItem{
			Col:   sql.ColumnRef{Table: base.Name(), Column: t.Schema.PrimaryKey},
			Alias: "c_probe",
		})
	}
	out.varOrder = tr.varSeen
	out.sel = tr.sel
	return out, nil
}

func (tr *translator) nextAlias() string {
	tr.aliasN++
	return fmt.Sprintf("t%d", tr.aliasN)
}

// bindVar records that variable v is stored at info; repeated occurrences
// add equality conditions.
func (tr *translator) bindVar(v string, info colInfo) {
	if prev, ok := tr.varCols[v]; ok {
		tr.conds = append(tr.conds, &sql.Comparison{
			Op: sql.CmpEq,
			L:  sql.ColOperand(prev.ref),
			R:  sql.ColOperand(info.ref),
		})
		return
	}
	tr.varCols[v] = info
	tr.varSeen = append(tr.varSeen, v)
	if info.nullable {
		tr.notNull[info.ref.String()] = info.ref
	}
}

func (tr *translator) addStar(star *StarQuery) error {
	cm := tr.src.Mapping(star.Class)
	if cm == nil {
		return fmt.Errorf("wrapper: source %s has no mapping for class %s", tr.src.ID, star.Class)
	}
	baseTable := tr.src.DB.Table(cm.Table)
	if baseTable == nil {
		return fmt.Errorf("wrapper: source %s: mapped table %s missing", tr.src.ID, cm.Table)
	}
	baseAlias := tr.nextAlias()
	tr.sel.From = append(tr.sel.From, sql.TableRef{Table: cm.Table, Alias: baseAlias})
	if cm.Denormalized {
		// Wide-table layouts repeat the subject across rows; de-duplicate
		// to recover RDF set semantics.
		tr.sel.Distinct = true
	}
	pkType, _ := baseTable.Schema.ColumnType(cm.SubjectColumn)
	subjectRef := sql.ColumnRef{Table: baseAlias, Column: cm.SubjectColumn}
	subjectInfo := colInfo{ref: subjectRef, typ: pkType, template: cm.SubjectTemplate}

	for _, tp := range star.Patterns {
		// Subject position.
		switch {
		case tp.S.IsVar:
			if tp.S.Var != star.SubjectVar {
				return fmt.Errorf("wrapper: pattern %s does not share star subject ?%s", tp, star.SubjectVar)
			}
			tr.bindVar(tp.S.Var, subjectInfo)
		case tp.S.Term.IsIRI():
			key, ok := cm.SubjectKey(tp.S.Term.Value)
			if !ok {
				tr.empty = true
				continue
			}
			lit, err := keyLiteral(key, pkType)
			if err != nil {
				tr.empty = true
				continue
			}
			tr.conds = append(tr.conds, &sql.Comparison{
				Op: sql.CmpEq, L: sql.ColOperand(subjectRef), R: sql.LitOperand(lit),
			})
		default:
			return fmt.Errorf("wrapper: unsupported subject %s", tp.S)
		}

		// Predicate must be a constant IRI at a relational source.
		if tp.P.IsVar {
			return fmt.Errorf("wrapper: variable predicates are not supported over relational sources (%s)", tp)
		}
		pred := tp.P.Term.Value

		// rdf:type pattern.
		if pred == rdf.RDFType {
			switch {
			case tp.O.IsVar:
				tr.consts[tp.O.Var] = rdf.NewIRI(star.Class)
			case tp.O.Term.IsIRI():
				if tp.O.Term.Value != star.Class {
					tr.empty = true
				}
			default:
				tr.empty = true
			}
			continue
		}

		pm := cm.Property(pred)
		if pm == nil {
			// The molecule does not carry this predicate: empty result.
			tr.empty = true
			continue
		}

		var valRef sql.ColumnRef
		var valType rdb.Type
		var nullable bool
		if pm.IsJoin() {
			jt := tr.src.DB.Table(pm.JoinTable)
			if jt == nil {
				return fmt.Errorf("wrapper: source %s: join table %s missing", tr.src.ID, pm.JoinTable)
			}
			alias := tr.nextAlias()
			tr.sel.Joins = append(tr.sel.Joins, sql.Join{
				Table: sql.TableRef{Table: pm.JoinTable, Alias: alias},
				On: &sql.Comparison{
					Op: sql.CmpEq,
					L:  sql.ColOperand(sql.ColumnRef{Table: alias, Column: pm.JoinFK}),
					R:  sql.ColOperand(subjectRef),
				},
			})
			valRef = sql.ColumnRef{Table: alias, Column: pm.ValueColumn}
			valType, _ = jt.Schema.ColumnType(pm.ValueColumn)
		} else {
			valRef = sql.ColumnRef{Table: baseAlias, Column: pm.Column}
			valType, _ = baseTable.Schema.ColumnType(pm.Column)
			ci := baseTable.Schema.ColumnIndex(pm.Column)
			nullable = !baseTable.Schema.Columns[ci].NotNull
		}

		switch {
		case tp.O.IsVar:
			tr.bindVar(tp.O.Var, colInfo{ref: valRef, typ: valType, template: pm.ObjectTemplate, nullable: nullable})
		default:
			lit, ok := tr.objectLiteral(tp.O.Term, pm, valType)
			if !ok {
				tr.empty = true
				continue
			}
			tr.conds = append(tr.conds, &sql.Comparison{
				Op: sql.CmpEq, L: sql.ColOperand(valRef), R: sql.LitOperand(lit),
			})
		}
	}
	return nil
}

// objectLiteral converts a constant RDF object into the SQL literal to
// compare against the storage column.
func (tr *translator) objectLiteral(t rdf.Term, pm *catalog.PropertyMapping, colType rdb.Type) (sql.Literal, bool) {
	if t.IsIRI() {
		if pm.ObjectTemplate == "" {
			return sql.Literal{}, false
		}
		key, ok := catalog.TemplateKey(pm.ObjectTemplate, t.Value)
		if !ok {
			return sql.Literal{}, false
		}
		lit, err := keyLiteral(key, colType)
		if err != nil {
			return sql.Literal{}, false
		}
		return lit, true
	}
	if !t.IsLiteral() {
		return sql.Literal{}, false
	}
	lit, err := termToSQLLiteral(t, colType)
	if err != nil {
		return sql.Literal{}, false
	}
	return lit, true
}

// keyLiteral converts an IRI key string to a literal of the column type.
func keyLiteral(key string, t rdb.Type) (sql.Literal, error) {
	switch t {
	case rdb.TypeInt:
		n, err := strconv.ParseInt(key, 10, 64)
		if err != nil {
			return sql.Literal{}, err
		}
		return sql.Literal{Kind: sql.LitInt, Int: n}, nil
	case rdb.TypeFloat:
		f, err := strconv.ParseFloat(key, 64)
		if err != nil {
			return sql.Literal{}, err
		}
		return sql.Literal{Kind: sql.LitFloat, Float: f}, nil
	default:
		return sql.Literal{Kind: sql.LitString, Str: key}, nil
	}
}

// termToSQLLiteral converts an RDF literal to a SQL literal of the column
// type.
func termToSQLLiteral(t rdf.Term, colType rdb.Type) (sql.Literal, error) {
	switch colType {
	case rdb.TypeInt:
		n, err := strconv.ParseInt(t.Value, 10, 64)
		if err != nil {
			return sql.Literal{}, err
		}
		return sql.Literal{Kind: sql.LitInt, Int: n}, nil
	case rdb.TypeFloat:
		f, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return sql.Literal{}, err
		}
		return sql.Literal{Kind: sql.LitFloat, Float: f}, nil
	case rdb.TypeBool:
		switch t.Value {
		case "true", "1":
			return sql.Literal{Kind: sql.LitBool, Bool: true}, nil
		case "false", "0":
			return sql.Literal{Kind: sql.LitBool, Bool: false}, nil
		}
		return sql.Literal{}, fmt.Errorf("not a boolean: %s", t.Value)
	default:
		return sql.Literal{Kind: sql.LitString, Str: t.Value}, nil
	}
}

// translateFilter converts a SPARQL filter into a SQL predicate over the
// translated columns; ok is false when the filter must stay in the
// wrapper/engine.
func (tr *translator) translateFilter(e sparql.Expr) (sql.BoolExpr, bool) {
	switch v := e.(type) {
	case *sparql.CompareExpr:
		return tr.translateCompare(v)
	case *sparql.LogicExpr:
		l, ok := tr.translateFilter(v.L)
		if !ok {
			return nil, false
		}
		r, ok := tr.translateFilter(v.R)
		if !ok {
			return nil, false
		}
		if v.Op == sparql.OpAnd {
			return &sql.And{L: l, R: r}, true
		}
		return &sql.Or{L: l, R: r}, true
	case *sparql.NotExpr:
		x, ok := tr.translateFilter(v.X)
		if !ok {
			return nil, false
		}
		return &sql.Not{X: x}, true
	case *sparql.FuncExpr:
		return tr.translateFunc(v)
	default:
		return nil, false
	}
}

func (tr *translator) translateCompare(c *sparql.CompareExpr) (sql.BoolExpr, bool) {
	ve, konst, op, ok := splitVarConst(c)
	if !ok {
		return nil, false
	}
	info, bound := tr.varCols[ve.Name]
	if !bound {
		return nil, false
	}
	var lit sql.Literal
	if info.template != "" {
		// IRI-valued column: only equality against a matching IRI.
		if op != sql.CmpEq && op != sql.CmpNeq {
			return nil, false
		}
		if !konst.IsIRI() {
			return nil, false
		}
		key, okKey := catalog.TemplateKey(info.template, konst.Value)
		if !okKey {
			return nil, false
		}
		l, err := keyLiteral(key, info.typ)
		if err != nil {
			return nil, false
		}
		lit = l
	} else {
		if !konst.IsLiteral() {
			return nil, false
		}
		l, err := termToSQLLiteral(konst, info.typ)
		if err != nil {
			return nil, false
		}
		lit = l
	}
	return &sql.Comparison{Op: op, L: sql.ColOperand(info.ref), R: sql.LitOperand(lit)}, true
}

// splitVarConst normalizes a comparison to (variable, constant, op).
func splitVarConst(c *sparql.CompareExpr) (*sparql.VarExpr, rdf.Term, sql.CmpOp, bool) {
	toSQLOp := func(op sparql.CompareOp) sql.CmpOp {
		switch op {
		case sparql.OpEq:
			return sql.CmpEq
		case sparql.OpNeq:
			return sql.CmpNeq
		case sparql.OpLt:
			return sql.CmpLt
		case sparql.OpLe:
			return sql.CmpLe
		case sparql.OpGt:
			return sql.CmpGt
		default:
			return sql.CmpGe
		}
	}
	flip := func(op sql.CmpOp) sql.CmpOp {
		switch op {
		case sql.CmpLt:
			return sql.CmpGt
		case sql.CmpLe:
			return sql.CmpGe
		case sql.CmpGt:
			return sql.CmpLt
		case sql.CmpGe:
			return sql.CmpLe
		default:
			return op
		}
	}
	if v, ok := c.L.(*sparql.VarExpr); ok {
		if k, ok2 := c.R.(*sparql.ConstExpr); ok2 {
			return v, k.Term, toSQLOp(c.Op), true
		}
	}
	if v, ok := c.R.(*sparql.VarExpr); ok {
		if k, ok2 := c.L.(*sparql.ConstExpr); ok2 {
			return v, k.Term, flip(toSQLOp(c.Op)), true
		}
	}
	return nil, rdf.Term{}, 0, false
}

func (tr *translator) translateFunc(f *sparql.FuncExpr) (sql.BoolExpr, bool) {
	if len(f.Args) != 2 {
		return nil, false
	}
	v, ok := f.Args[0].(*sparql.VarExpr)
	if !ok {
		return nil, false
	}
	k, ok := f.Args[1].(*sparql.ConstExpr)
	if !ok || !k.Term.IsLiteral() {
		return nil, false
	}
	info, bound := tr.varCols[v.Name]
	if !bound || info.template != "" || info.typ != rdb.TypeString {
		return nil, false
	}
	s := k.Term.Value
	// SQL LIKE lacks an escape in our subset; bail out when the constant
	// contains wildcard characters.
	if strings.ContainsAny(s, "%_") {
		return nil, false
	}
	var pattern string
	switch f.Name {
	case "CONTAINS":
		pattern = "%" + s + "%"
	case "STRSTARTS":
		pattern = s + "%"
	case "STRENDS":
		pattern = "%" + s
	default:
		return nil, false
	}
	return &sql.Like{Col: info.ref, Pattern: pattern}, true
}

// seedPredicate builds the multi-seed pushdown predicate of a block bind
// join over the translated columns: a single `col IN (...)` when every
// seed binds exactly one translatable variable, an OR of per-seed equality
// conjunctions otherwise. It returns a nil condition when the block cannot
// restrict the query (some seed constrains no translatable variable, so
// the disjunction would be trivially true); the caller then relies on the
// post-hoc seed-compatibility check. provablyEmpty reports that every seed
// is unsatisfiable at this source (e.g. all seed IRIs fall outside the
// mapping's namespace), so the query need not run at all.
func (t *translation) seedPredicate(seeds []sparql.Binding) (cond sql.BoolExpr, provablyEmpty bool) {
	if len(seeds) == 0 {
		return nil, false
	}
	var disjuncts []sql.BoolExpr
	for _, seed := range seeds {
		vars := make([]string, 0, len(seed))
		for v := range seed {
			if _, ok := t.varCols[v]; ok {
				vars = append(vars, v)
			}
		}
		sort.Strings(vars)
		if len(vars) == 0 {
			// This seed cannot be expressed over the translated columns;
			// ORing a tautology in would defeat the pushdown entirely.
			return nil, false
		}
		var conj []sql.BoolExpr
		unsat := false
		for _, v := range vars {
			info := t.varCols[v]
			lit, ok := seedEqLiteral(info, seed[v])
			if !ok {
				unsat = true
				break
			}
			conj = append(conj, &sql.Comparison{
				Op: sql.CmpEq, L: sql.ColOperand(info.ref), R: sql.LitOperand(lit),
			})
		}
		if unsat {
			// The seed matches no row of this source; it contributes no
			// disjunct.
			continue
		}
		disjuncts = append(disjuncts, sql.AndAll(conj))
	}
	if len(disjuncts) == 0 {
		return nil, true
	}
	if col, lits, ok := inShape(disjuncts); ok {
		return &sql.In{Col: col, List: lits}, false
	}
	return orAll(disjuncts), false
}

// inShape reports whether every disjunct is a single equality on the same
// column, collapsing the disjunction into one IN list.
func inShape(disjuncts []sql.BoolExpr) (sql.ColumnRef, []sql.Literal, bool) {
	var col sql.ColumnRef
	lits := make([]sql.Literal, 0, len(disjuncts))
	for i, d := range disjuncts {
		cmp, ok := d.(*sql.Comparison)
		if !ok || cmp.Op != sql.CmpEq || !cmp.L.IsCol || cmp.R.IsCol {
			return sql.ColumnRef{}, nil, false
		}
		if i == 0 {
			col = cmp.L.Col
		} else if cmp.L.Col != col {
			return sql.ColumnRef{}, nil, false
		}
		lits = append(lits, cmp.R.Lit)
	}
	return col, lits, true
}

// orAll combines the expressions into a right-leaning OR chain.
func orAll(es []sql.BoolExpr) sql.BoolExpr {
	var out sql.BoolExpr
	for i := len(es) - 1; i >= 0; i-- {
		if out == nil {
			out = es[i]
		} else {
			out = &sql.Or{L: es[i], R: out}
		}
	}
	return out
}

// seedEqLiteral converts a seed value into the SQL literal to compare
// against the variable's storage column; ok is false when the value can
// never equal a column value (wrong shape or outside the IRI template).
func seedEqLiteral(info colInfo, term rdf.Term) (sql.Literal, bool) {
	if info.template != "" {
		if !term.IsIRI() {
			return sql.Literal{}, false
		}
		key, ok := catalog.TemplateKey(info.template, term.Value)
		if !ok {
			return sql.Literal{}, false
		}
		lit, err := keyLiteral(key, info.typ)
		if err != nil {
			return sql.Literal{}, false
		}
		return lit, true
	}
	if !term.IsLiteral() {
		return sql.Literal{}, false
	}
	lit, err := termToSQLLiteral(term, info.typ)
	if err != nil {
		return sql.Literal{}, false
	}
	return lit, true
}

// decodeRow converts one SQL result row into a solution binding; ok is
// false when a decoded column is NULL (the property is absent, so the row
// does not match the star).
func (t *translation) decodeRow(row rdb.Row) (sparql.Binding, bool) {
	b := sparql.NewBinding()
	for i, v := range t.varOrder {
		val := row[i]
		if val.Null {
			return nil, false
		}
		info := t.varCols[v]
		b[v] = valueToTerm(val, info.template)
	}
	for v, term := range t.constBindings {
		b[v] = term
	}
	return b, true
}

// valueToTerm converts a storage value into an RDF term, applying the IRI
// template when present.
func valueToTerm(v rdb.Value, template string) rdf.Term {
	if template != "" {
		return rdf.NewIRI(catalog.RenderTemplate(template, v.String()))
	}
	switch v.Type {
	case rdb.TypeInt:
		return rdf.IntLiteral(v.Int)
	case rdb.TypeFloat:
		return rdf.FloatLiteral(v.Float)
	case rdb.TypeBool:
		return rdf.BoolLiteral(v.Bool)
	default:
		return rdf.NewLiteral(v.Str)
	}
}
