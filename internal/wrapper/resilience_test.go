package wrapper

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fastResilience() ResilienceConfig {
	return ResilienceConfig{
		Timeout:          time.Second,
		MaxRetries:       3,
		RetryBase:        time.Millisecond,
		RetryMax:         4 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
		Seed:             7,
	}
}

func TestDoRetriesTransientFailure(t *testing.T) {
	h := NewHealthRegistry(fastResilience())
	var calls int32
	err := h.Do(context.Background(), "s", func(ctx context.Context) error {
		if atomic.AddInt32(&calls, 1) < 3 {
			return errors.New("503")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want success after retries", err)
	}
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
	snap := h.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d sources, want 1", len(snap))
	}
	s := snap[0]
	if s.Requests != 3 || s.Failures != 2 || s.Retries != 2 {
		t.Fatalf("health = %+v, want 3 requests / 2 failures / 2 retries", s)
	}
	if s.State != BreakerClosed || s.ConsecutiveFailures != 0 {
		t.Fatalf("health after success = %+v, want closed breaker, streak 0", s)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	h := NewHealthRegistry(fastResilience())
	var calls int32
	boom := errors.New("400 bad request")
	err := h.Do(context.Background(), "s", func(ctx context.Context) error {
		atomic.AddInt32(&calls, 1)
		return Permanent(boom)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want wrapped %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("permanent error retried: op ran %d times", calls)
	}
}

func TestDoGivesUpAfterMaxRetries(t *testing.T) {
	cfg := fastResilience()
	cfg.BreakerThreshold = -1 // don't let the circuit cut the retry loop short
	h := NewHealthRegistry(cfg)
	var calls int32
	err := h.Do(context.Background(), "s", func(ctx context.Context) error {
		atomic.AddInt32(&calls, 1)
		return errors.New("down")
	})
	if err == nil || err.Error() != "down" {
		t.Fatalf("Do = %v, want the op's error", err)
	}
	if calls != 4 { // 1 initial + MaxRetries
		t.Fatalf("op ran %d times, want 4", calls)
	}
}

func TestDoParentCancellationNotCountedAgainstSource(t *testing.T) {
	h := NewHealthRegistry(fastResilience())
	ctx, cancel := context.WithCancel(context.Background())
	err := h.Do(ctx, "s", func(c context.Context) error {
		cancel()
		return c.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	snap := h.Snapshot()
	if len(snap) != 1 || snap[0].Failures != 0 {
		t.Fatalf("parent cancellation recorded as source failure: %+v", snap)
	}
}

func TestDoPerAttemptTimeout(t *testing.T) {
	cfg := fastResilience()
	cfg.Timeout = 5 * time.Millisecond
	cfg.MaxRetries = 1
	h := NewHealthRegistry(cfg)
	var calls int32
	err := h.Do(context.Background(), "s", func(ctx context.Context) error {
		atomic.AddInt32(&calls, 1)
		<-ctx.Done() // a hung endpoint: blocks until the attempt deadline
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want DeadlineExceeded", err)
	}
	if calls != 2 {
		t.Fatalf("op ran %d times, want 2 (timeouts are retryable)", calls)
	}
}

func TestBreakerOpensAndFailsFast(t *testing.T) {
	cfg := fastResilience()
	cfg.MaxRetries = -1 // no retries: each Do is one attempt
	h := NewHealthRegistry(cfg)
	down := errors.New("connection refused")
	for i := 0; i < cfg.BreakerThreshold; i++ {
		if err := h.Do(context.Background(), "s", func(ctx context.Context) error { return down }); !errors.Is(err, down) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if st := h.State("s"); st != BreakerOpen {
		t.Fatalf("state after %d consecutive failures = %v, want open", cfg.BreakerThreshold, st)
	}
	var calls int32
	err := h.Do(context.Background(), "s", func(ctx context.Context) error {
		atomic.AddInt32(&calls, 1)
		return nil
	})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Do with open breaker = %v, want ErrCircuitOpen", err)
	}
	if calls != 0 {
		t.Fatal("open breaker still contacted the source")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	cfg := fastResilience()
	cfg.MaxRetries = -1 // no retries: each Do is one attempt
	h := NewHealthRegistry(cfg)
	down := errors.New("down")
	for i := 0; i < cfg.BreakerThreshold; i++ {
		h.Do(context.Background(), "s", func(ctx context.Context) error { return down })
	}
	if st := h.State("s"); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	time.Sleep(cfg.BreakerCooldown + 5*time.Millisecond)
	// First request after the cooldown is the half-open probe; it succeeds
	// and closes the circuit.
	if err := h.Do(context.Background(), "s", func(ctx context.Context) error { return nil }); err != nil {
		t.Fatalf("half-open probe = %v, want success", err)
	}
	if st := h.State("s"); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	cfg := fastResilience()
	cfg.MaxRetries = -1 // no retries: each Do is one attempt
	h := NewHealthRegistry(cfg)
	down := errors.New("down")
	for i := 0; i < cfg.BreakerThreshold; i++ {
		h.Do(context.Background(), "s", func(ctx context.Context) error { return down })
	}
	time.Sleep(cfg.BreakerCooldown + 5*time.Millisecond)
	if err := h.Do(context.Background(), "s", func(ctx context.Context) error { return down }); !errors.Is(err, down) {
		t.Fatalf("probe = %v", err)
	}
	if st := h.State("s"); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open again", st)
	}
	// And the fresh cooldown applies: immediate requests fail fast.
	if err := h.Do(context.Background(), "s", func(ctx context.Context) error { return nil }); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Do right after reopen = %v, want ErrCircuitOpen", err)
	}
}

// TestDoCancelledProbeDoesNotWedgeBreaker is the regression test for the
// leaked half-open probe: when the parent context is cancelled while the
// probe attempt is running, Do returns before recordSuccess/recordFailure
// could settle the probe. The probe must be released (breaker back to
// open, cooldown restarted) — before the fix the source stayed half-open
// with probing=true forever, rejecting every request with ErrCircuitOpen.
func TestDoCancelledProbeDoesNotWedgeBreaker(t *testing.T) {
	cfg := fastResilience()
	cfg.MaxRetries = -1 // no retries: each Do is one attempt
	h := NewHealthRegistry(cfg)
	down := errors.New("down")
	for i := 0; i < cfg.BreakerThreshold; i++ {
		h.Do(context.Background(), "s", func(ctx context.Context) error { return down })
	}
	time.Sleep(cfg.BreakerCooldown + 5*time.Millisecond)

	// The half-open probe starts; the query deadline expires mid-attempt —
	// exactly when probes happen in practice, since the source was slow.
	ctx, cancel := context.WithCancel(context.Background())
	err := h.Do(ctx, "s", func(c context.Context) error {
		cancel()
		return c.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled probe Do = %v, want context.Canceled", err)
	}
	if st := h.State("s"); st != BreakerOpen {
		t.Fatalf("state after cancelled probe = %v, want open (cooldown restarted)", st)
	}

	// After the fresh cooldown a healthy request must get through as the
	// next probe and close the circuit.
	time.Sleep(cfg.BreakerCooldown + 5*time.Millisecond)
	if err := h.Do(context.Background(), "s", func(ctx context.Context) error { return nil }); err != nil {
		t.Fatalf("Do after cancelled probe = %v, want success", err)
	}
	if st := h.State("s"); st != BreakerClosed {
		t.Fatalf("state after recovery = %v, want closed", st)
	}
}

func TestMeasuredLatencyReflectsFailureRate(t *testing.T) {
	cfg := fastResilience()
	cfg.MaxRetries = -1       // no retries: each Do is one attempt
	cfg.BreakerThreshold = -1 // keep the circuit out of the way
	h := NewHealthRegistry(cfg)
	if _, ok := h.MeasuredLatency("s"); ok {
		t.Fatal("MeasuredLatency reported ok before any observation")
	}
	// One success and one failure: the effective latency doubles.
	h.recordSuccess("s", 10*time.Millisecond)
	base, ok := h.MeasuredLatency("s")
	if !ok || base <= 0 {
		t.Fatalf("MeasuredLatency = %v, %v", base, ok)
	}
	h.recordFailure("s", errors.New("503"))
	inflated, ok := h.MeasuredLatency("s")
	if !ok {
		t.Fatal("MeasuredLatency lost its observation")
	}
	if inflated < 2*base-time.Millisecond {
		t.Fatalf("latency with 50%% failures = %v, want ~2x the base %v", inflated, base)
	}
}

// TestHealthRegistryConcurrent exercises the registry from many goroutines
// under -race: mixed successes and failures against several sources while
// snapshots and latency reads run concurrently.
func TestHealthRegistryConcurrent(t *testing.T) {
	cfg := fastResilience()
	cfg.RetryBase = 100 * time.Microsecond
	h := NewHealthRegistry(cfg)
	sources := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := sources[i%len(sources)]
			for j := 0; j < 50; j++ {
				h.Do(context.Background(), src, func(ctx context.Context) error {
					if (i+j)%3 == 0 {
						return errors.New("flaky")
					}
					return nil
				})
				h.MeasuredLatency(src)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	snap := h.Snapshot()
	if len(snap) != len(sources) {
		t.Fatalf("snapshot has %d sources, want %d", len(snap), len(sources))
	}
	var reqs int64
	for _, s := range snap {
		reqs += s.Requests
	}
	if reqs == 0 {
		t.Fatal("no requests recorded")
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
	} {
		if got := st.String(); got != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", st, got, want)
		}
	}
}
