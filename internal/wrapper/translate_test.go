package wrapper

import (
	"context"
	"strings"
	"testing"

	"ontario/internal/rdb"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

func TestKeyLiteral(t *testing.T) {
	lit, err := keyLiteral("42", rdb.TypeInt)
	if err != nil || lit.Int != 42 {
		t.Errorf("int key: %v/%v", lit, err)
	}
	if _, err := keyLiteral("abc", rdb.TypeInt); err == nil {
		t.Error("non-numeric key accepted for INTEGER column")
	}
	lit, err = keyLiteral("2.5", rdb.TypeFloat)
	if err != nil || lit.Float != 2.5 {
		t.Errorf("float key: %v/%v", lit, err)
	}
	lit, err = keyLiteral("x-1", rdb.TypeString)
	if err != nil || lit.Str != "x-1" {
		t.Errorf("string key: %v/%v", lit, err)
	}
}

func TestTermToSQLLiteral(t *testing.T) {
	lit, err := termToSQLLiteral(rdf.IntLiteral(7), rdb.TypeInt)
	if err != nil || lit.Int != 7 {
		t.Errorf("int: %v/%v", lit, err)
	}
	lit, err = termToSQLLiteral(rdf.NewLiteral("3.5"), rdb.TypeFloat)
	if err != nil || lit.Float != 3.5 {
		t.Errorf("float: %v/%v", lit, err)
	}
	if _, err := termToSQLLiteral(rdf.NewLiteral("x"), rdb.TypeFloat); err == nil {
		t.Error("non-numeric literal accepted for DOUBLE column")
	}
	lit, err = termToSQLLiteral(rdf.BoolLiteral(true), rdb.TypeBool)
	if err != nil || !lit.Bool {
		t.Errorf("bool: %v/%v", lit, err)
	}
	if _, err := termToSQLLiteral(rdf.NewLiteral("maybe"), rdb.TypeBool); err == nil {
		t.Error("non-boolean literal accepted for BOOLEAN column")
	}
}

func TestValueToTerm(t *testing.T) {
	if got := valueToTerm(rdb.IntValue(5), ""); got.Datatype != rdf.XSDInteger {
		t.Errorf("int term = %v", got)
	}
	if got := valueToTerm(rdb.FloatValue(1.5), ""); got.Datatype != rdf.XSDDouble {
		t.Errorf("float term = %v", got)
	}
	if got := valueToTerm(rdb.BoolValue(true), ""); got.Datatype != rdf.XSDBoolean {
		t.Errorf("bool term = %v", got)
	}
	if got := valueToTerm(rdb.StringValue("s"), ""); got.Kind != rdf.TermLiteral || got.Datatype != "" {
		t.Errorf("string term = %v", got)
	}
	if got := valueToTerm(rdb.IntValue(9), "http://e/{value}"); !got.IsIRI() || got.Value != "http://e/9" {
		t.Errorf("templated term = %v", got)
	}
}

func TestFilterWithWildcardNeedleStaysLocal(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	// '%' in the needle cannot be expressed in our LIKE subset — the
	// filter must run locally yet still be applied.
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://p/name> ?n . FILTER (CONTAINS(?n, "100%")) }`)
	req := &Request{
		Stars:   []*StarQuery{{SubjectVar: "p", Class: "http://c/Person", Patterns: q.Patterns}},
		Filters: q.Filters,
	}
	got := collect(t, w, req)
	if len(got) != 0 {
		t.Fatalf("wildcard needle matched: %v", got)
	}
	for _, s := range w.LastSQL() {
		if strings.Contains(s, "LIKE") {
			t.Errorf("wildcard needle was pushed as LIKE: %s", s)
		}
	}
}

func TestIRIEqualityFilterPushed(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://p/friend> ?f . FILTER (?f = <http://e/person/3>) }`)
	req := &Request{
		Stars:   []*StarQuery{{SubjectVar: "p", Class: "http://c/Person", Patterns: q.Patterns}},
		Filters: q.Filters,
	}
	got := collect(t, w, req)
	if len(got) != 2 {
		t.Fatalf("IRI equality filter: got %d, want 2", len(got))
	}
	if !strings.Contains(w.LastSQL()[0], "= 3") {
		t.Errorf("IRI filter not pushed as key equality: %v", w.LastSQL())
	}
}

func TestIRIRangeFilterNotPushed(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	// Ordering over IRIs cannot be pushed; it also fails at the engine
	// (type error), so zero results — but no SQL ordering on the key.
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://p/friend> ?f . FILTER (?f > <http://e/person/1>) }`)
	req := &Request{
		Stars:   []*StarQuery{{SubjectVar: "p", Class: "http://c/Person", Patterns: q.Patterns}},
		Filters: q.Filters,
	}
	got := collect(t, w, req)
	if len(got) != 0 {
		t.Fatalf("IRI ordering filter matched: %v", got)
	}
	if strings.Contains(w.LastSQL()[0], ">") {
		t.Errorf("IRI ordering pushed into SQL: %v", w.LastSQL())
	}
}

func TestDisjunctionPushedWhenBothSidesTranslate(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://p/age> ?a . FILTER (?a = 20 || ?a = 60) }`)
	req := &Request{
		Stars:   []*StarQuery{{SubjectVar: "p", Class: "http://c/Person", Patterns: q.Patterns}},
		Filters: q.Filters,
	}
	got := collect(t, w, req)
	if len(got) != 2 {
		t.Fatalf("disjunction: got %d, want 2", len(got))
	}
	if !strings.Contains(w.LastSQL()[0], "OR") {
		t.Errorf("disjunction not pushed: %v", w.LastSQL())
	}
}

func TestNegationPushed(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://p/age> ?a . FILTER (!(?a < 40)) }`)
	req := &Request{
		Stars:   []*StarQuery{{SubjectVar: "p", Class: "http://c/Person", Patterns: q.Patterns}},
		Filters: q.Filters,
	}
	got := collect(t, w, req)
	if len(got) != 3 {
		t.Fatalf("negation: got %d, want 3", len(got))
	}
	if !strings.Contains(w.LastSQL()[0], "NOT") {
		t.Errorf("negation not pushed: %v", w.LastSQL())
	}
}

func TestRepeatedObjectVariableAddsEquality(t *testing.T) {
	// ?x appears as the object of two different predicates: the SQL must
	// contain an equality between the two columns.
	src := testSource(t)
	// name and age are different types; equality can never hold, but the
	// translation must still be well-formed.
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	req := &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Person", `?p <http://p/name> ?x . ?p <http://p/age> ?x .`),
	}}
	got := collect(t, w, req)
	if len(got) != 0 {
		t.Fatalf("impossible repeated-var star matched: %v", got)
	}
	if !strings.Contains(w.LastSQL()[0], "t1.name = t1.age") &&
		!strings.Contains(w.LastSQL()[0], "t1.age = t1.name") {
		t.Errorf("repeated variable equality missing: %v", w.LastSQL())
	}
}

func TestEmptyRequestRejected(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	if _, err := w.Execute(context.Background(), &Request{}); err == nil {
		t.Error("empty request accepted")
	}
	rw := NewRDFWrapper("r", rdf.NewGraph(), nil, 0)
	if _, err := rw.Execute(context.Background(), &Request{}); err == nil {
		t.Error("empty RDF request accepted")
	}
}

func TestUnknownClassRejected(t *testing.T) {
	src := testSource(t)
	w := NewSQLWrapper(src, nil, TranslationOptimized, 0)
	req := &Request{Stars: []*StarQuery{
		star(t, "p", "http://c/Unknown", `?p <http://p/name> ?n .`),
	}}
	if _, err := w.Execute(context.Background(), req); err == nil {
		t.Error("unknown class accepted")
	}
}
