package netsim

import (
	"math"
	"testing"
	"time"
)

func TestNoDelayProfile(t *testing.T) {
	s := NewSimulator(NoDelay, 0, 1)
	for i := 0; i < 100; i++ {
		if d := s.Sample(); d != 0 {
			t.Fatalf("NoDelay sampled %v", d)
		}
	}
	if s.SimulatedDelay() != 0 {
		t.Errorf("SimulatedDelay = %v, want 0", s.SimulatedDelay())
	}
	if s.Messages() != 100 {
		t.Errorf("Messages = %d, want 100", s.Messages())
	}
}

func TestGammaMeans(t *testing.T) {
	// Empirical mean must approximate α·β within a loose tolerance.
	for _, p := range []Profile{Gamma1, Gamma2, Gamma3} {
		s := NewSimulator(p, 0, 42)
		const n = 20000
		var total time.Duration
		for i := 0; i < n; i++ {
			total += s.Sample()
		}
		got := float64(total) / float64(n) / float64(time.Millisecond)
		want := p.Alpha * p.Beta
		if math.Abs(got-want) > 0.12*want {
			t.Errorf("%s: empirical mean %.3f ms, want ≈ %.3f ms", p.Name, got, want)
		}
	}
}

func TestGammaVariance(t *testing.T) {
	// Var = α·β². Check Gamma2 (α=3, β=1): var ≈ 3.
	s := NewSimulator(Gamma2, 0, 7)
	const n = 20000
	samples := make([]float64, n)
	var mean float64
	for i := range samples {
		samples[i] = float64(s.Sample()) / float64(time.Millisecond)
		mean += samples[i]
	}
	mean /= n
	var variance float64
	for _, x := range samples {
		variance += (x - mean) * (x - mean)
	}
	variance /= n
	if math.Abs(variance-3) > 0.5 {
		t.Errorf("Gamma2 variance = %.3f, want ≈ 3", variance)
	}
}

func TestSamplesNonNegative(t *testing.T) {
	s := NewSimulator(Gamma3, 0, 3)
	for i := 0; i < 10000; i++ {
		if d := s.Sample(); d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
}

func TestSubUnitAlpha(t *testing.T) {
	// Exercise the alpha<1 branch directly.
	s := NewSimulator(Profile{Name: "frac", Alpha: 0.5, Beta: 2}, 0, 9)
	const n = 30000
	var total time.Duration
	for i := 0; i < n; i++ {
		total += s.Sample()
	}
	got := float64(total) / float64(n) / float64(time.Millisecond)
	if math.Abs(got-1.0) > 0.15 {
		t.Errorf("Gamma(0.5,2) empirical mean %.3f ms, want ≈ 1.0 ms", got)
	}
}

func TestMeanLatency(t *testing.T) {
	for _, tc := range []struct {
		p    Profile
		want time.Duration
	}{
		{NoDelay, 0},
		{Gamma1, 300 * time.Microsecond},
		{Gamma2, 3 * time.Millisecond},
		{Gamma3, 4500 * time.Microsecond},
	} {
		if got := tc.p.MeanLatency(); got != tc.want {
			t.Errorf("%s MeanLatency = %v, want %v", tc.p.Name, got, tc.want)
		}
	}
}

func TestIsSlow(t *testing.T) {
	if NoDelay.IsSlow() || Gamma1.IsSlow() {
		t.Error("fast profiles reported slow")
	}
	if !Gamma2.IsSlow() || !Gamma3.IsSlow() {
		t.Error("slow profiles reported fast")
	}
}

func TestDeterministicSeed(t *testing.T) {
	a := NewSimulator(Gamma2, 0, 123)
	b := NewSimulator(Gamma2, 0, 123)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDelaySleepsScaled(t *testing.T) {
	// With scale=0 Delay must not sleep appreciable time.
	s := NewSimulator(Gamma3, 0, 5)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		s.Delay()
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("scale=0 slept %v", elapsed)
	}
	if s.SimulatedDelay() == 0 {
		t.Error("simulated delay not accounted")
	}
}
