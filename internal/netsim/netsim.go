// Package netsim simulates network conditions between the federated query
// engine and the data sources, reproducing the paper's setup: the retrieval
// of each answer from a source is delayed by a sample from a gamma
// distribution. The four profiles match Section 3 of the paper:
//
//	No Delay — perfect network
//	Gamma 1  — fast network, gamma(α=1, β=0.3)  ≈ 0.3 ms mean latency
//	Gamma 2  — medium network, gamma(α=3, β=1)   ≈ 3 ms mean latency
//	Gamma 3  — slow network, gamma(α=3, β=1.5)   ≈ 4.5 ms mean latency
//
// The paper samples with numpy.random.gamma and sleeps with time.sleep
// inside the SQL wrapper; here the wrapper calls Profile.Delay per message.
// A configurable time scale lets tests and benchmarks shrink real sleeping
// while keeping the sampled (reported) delays intact.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Profile describes one simulated network condition.
type Profile struct {
	// Name identifies the profile in reports.
	Name string
	// Alpha and Beta are the gamma distribution's shape and scale in
	// milliseconds. Alpha == 0 means no delay.
	Alpha, Beta float64
}

// The paper's four network settings.
var (
	NoDelay = Profile{Name: "No Delay"}
	Gamma1  = Profile{Name: "Gamma 1", Alpha: 1, Beta: 0.3}
	Gamma2  = Profile{Name: "Gamma 2", Alpha: 3, Beta: 1}
	Gamma3  = Profile{Name: "Gamma 3", Alpha: 3, Beta: 1.5}
)

// Profiles lists the paper's network settings in evaluation order.
func Profiles() []Profile { return []Profile{NoDelay, Gamma1, Gamma2, Gamma3} }

// ProfileByName resolves a profile from its CLI/HTTP-parameter name. The
// empty string, "none", "nodelay" and "no-delay" all mean NoDelay.
func ProfileByName(name string) (Profile, error) {
	switch strings.ToLower(name) {
	case "", "none", "nodelay", "no-delay":
		return NoDelay, nil
	case "gamma1":
		return Gamma1, nil
	case "gamma2":
		return Gamma2, nil
	case "gamma3":
		return Gamma3, nil
	default:
		return Profile{}, fmt.Errorf("netsim: unknown network profile %q", name)
	}
}

// MeanLatency returns the distribution mean (α·β) as a duration.
func (p Profile) MeanLatency() time.Duration {
	return time.Duration(p.Alpha * p.Beta * float64(time.Millisecond))
}

// IsSlow reports whether the profile counts as a "slow network" for
// Heuristic 2. The paper treats its medium and slow settings (mean latency
// of 3 ms and above) as slow enough to push filters to the source.
func (p Profile) IsSlow() bool {
	return p.MeanLatency() >= 3*time.Millisecond
}

// Simulator draws per-message delays for one source connection. It is safe
// for concurrent use.
type Simulator struct {
	profile Profile
	scale   float64

	mu  sync.Mutex
	rng *rand.Rand
	// simulated accumulates the sampled (unscaled) delay.
	simulated time.Duration
	messages  int
}

// NewSimulator returns a delay simulator for the profile. Scale multiplies
// the actual sleeping (1.0 reproduces the sampled delay in real time, 0
// disables sleeping entirely); the sampled delay is accounted in
// SimulatedDelay either way. Seed fixes the random stream for
// reproducibility.
func NewSimulator(p Profile, scale float64, seed int64) *Simulator {
	return &Simulator{profile: p, scale: scale, rng: rand.New(&splitmix{state: uint64(seed)})}
}

// splitmix is a seeded rand.Source64 (SplitMix64). Its state is two
// words, versus the ~5KB lagged-Fibonacci table rand.NewSource seeds:
// simulators are built per source per execution, so construction cost
// dominates and the generator's statistical quality is more than enough
// for latency sampling.
type splitmix struct{ state uint64 }

func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Profile returns the simulator's profile.
func (s *Simulator) Profile() Profile { return s.profile }

// Delay samples one message latency, sleeps scale×latency, and returns the
// sampled latency.
func (s *Simulator) Delay() time.Duration {
	d := s.Sample()
	if d > 0 && s.scale > 0 {
		time.Sleep(time.Duration(float64(d) * s.scale))
	}
	return d
}

// Sample draws one latency without sleeping.
func (s *Simulator) Sample() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.messages++
	if s.profile.Alpha == 0 {
		return 0
	}
	ms := gammaSample(s.rng, s.profile.Alpha, s.profile.Beta)
	d := time.Duration(ms * float64(time.Millisecond))
	s.simulated += d
	return d
}

// SimulatedDelay returns the total sampled delay so far.
func (s *Simulator) SimulatedDelay() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simulated
}

// Messages returns the number of delayed messages so far.
func (s *Simulator) Messages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.messages
}

// gammaSample draws from Gamma(alpha, beta) using the Marsaglia–Tsang
// squeeze method (with Johnk-style boosting for alpha < 1). beta is the
// scale parameter, matching numpy.random.gamma(shape, scale).
func gammaSample(rng *rand.Rand, alpha, beta float64) float64 {
	if alpha < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, alpha+1, beta) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * beta
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * beta
		}
	}
}
