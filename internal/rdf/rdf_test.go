package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndPredicates(t *testing.T) {
	iri := NewIRI("http://x/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Error("IRI kind predicates wrong")
	}
	lit := NewLiteral("hello")
	if !lit.IsLiteral() {
		t.Error("literal kind predicate wrong")
	}
	bn := NewBlank("b0")
	if !bn.IsBlank() {
		t.Error("blank kind predicate wrong")
	}
	if !iri.Equal(NewIRI("http://x/a")) {
		t.Error("equal IRIs not equal")
	}
	if lit.Equal(NewLangLiteral("hello", "en")) {
		t.Error("plain and lang literal equal")
	}
}

func TestTermString(t *testing.T) {
	for _, tc := range []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/a"), "<http://x/a>"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewTypedLiteral("5", XSDInteger), `"5"^^<` + XSDInteger + `>`},
		{NewTypedLiteral("s", XSDString), `"s"`},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("a\"b\\c\nd\te"), `"a\"b\\c\nd\te"`},
		{IntLiteral(-7), `"-7"^^<` + XSDInteger + `>`},
		{BoolLiteral(true), `"true"^^<` + XSDBoolean + `>`},
	} {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("String() = %s, want %s", got, tc.want)
		}
	}
}

func mkGraph() *Graph {
	g := NewGraph()
	a, b, c := NewIRI("http://s/a"), NewIRI("http://s/b"), NewIRI("http://s/c")
	p1, p2 := NewIRI("http://p/1"), NewIRI("http://p/2")
	g.Add(Triple{a, p1, NewLiteral("x")})
	g.Add(Triple{a, p2, b})
	g.Add(Triple{b, p1, NewLiteral("y")})
	g.Add(Triple{c, p2, b})
	return g
}

func TestGraphAddDuplicate(t *testing.T) {
	g := NewGraph()
	tr := Triple{NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o")}
	if !g.Add(tr) {
		t.Error("first Add returned false")
	}
	if g.Add(tr) {
		t.Error("duplicate Add returned true")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if !g.Contains(tr) {
		t.Error("Contains(added) = false")
	}
}

func TestGraphMatchPatterns(t *testing.T) {
	g := mkGraph()
	a := NewIRI("http://s/a")
	b := NewIRI("http://s/b")
	p1 := NewIRI("http://p/1")
	p2 := NewIRI("http://p/2")
	lx := NewLiteral("x")

	cases := []struct {
		s, p, o *Term
		want    int
	}{
		{nil, nil, nil, 4},
		{&a, nil, nil, 2},
		{nil, &p1, nil, 2},
		{nil, nil, &b, 2},
		{&a, &p1, nil, 1},
		{nil, &p2, &b, 2},
		{&a, nil, &lx, 1},
		{&a, &p1, &lx, 1},
		{&b, &p2, nil, 0},
	}
	for i, tc := range cases {
		if got := len(g.Match(tc.s, tc.p, tc.o)); got != tc.want {
			t.Errorf("case %d: Match = %d triples, want %d", i, got, tc.want)
		}
		if got := g.Count(tc.s, tc.p, tc.o); got != tc.want {
			t.Errorf("case %d: Count = %d, want %d", i, got, tc.want)
		}
	}
}

func TestGraphAccessors(t *testing.T) {
	g := mkGraph()
	p2 := NewIRI("http://p/2")
	b := NewIRI("http://s/b")
	subs := g.Subjects(&p2, &b)
	if len(subs) != 2 {
		t.Errorf("Subjects = %v", subs)
	}
	preds := g.Predicates()
	if len(preds) != 2 || preds[0].Value != "http://p/1" {
		t.Errorf("Predicates = %v", preds)
	}
	a := NewIRI("http://s/a")
	objs := g.Objects(&a, nil)
	if len(objs) != 2 {
		t.Errorf("Objects = %v", objs)
	}
	if len(g.Triples()) != 4 {
		t.Error("Triples() wrong length")
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	in := []Triple{
		{NewIRI("http://s/a"), NewIRI("http://p/1"), NewLiteral("plain")},
		{NewIRI("http://s/a"), NewIRI("http://p/2"), NewLangLiteral("hallo", "de")},
		{NewIRI("http://s/b"), NewIRI("http://p/3"), NewTypedLiteral("42", XSDInteger)},
		{NewBlank("n0"), NewIRI("http://p/4"), NewIRI("http://s/b")},
		{NewIRI("http://s/c"), NewIRI("http://p/5"), NewLiteral("esc \"quotes\"\nand\ttabs\\")},
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseNTriples(&buf)
	if err != nil {
		t.Fatalf("parse failed on %q: %v", buf.String(), err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d triples, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("triple %d: %s != %s", i, in[i], out[i])
		}
	}
}

func TestNTriplesCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
<http://s> <http://p> "o" .

<http://s> <http://p> <http://o> . # no trailing comment support needed
`
	_, err := ParseNTriples(strings.NewReader(src))
	if err == nil {
		t.Fatal("trailing comment should be rejected (strict N-Triples)")
	}
	ts, err := ParseNTriples(strings.NewReader("# only comment\n\n<http://s> <http://p> \"o\" .\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("got %d triples, want 1", len(ts))
	}
}

func TestNTriplesErrors(t *testing.T) {
	for _, in := range []string{
		"<http://s> <http://p> .",
		"<http://s> <http://p> \"unterminated .",
		"<http://s <http://p> \"o\" .",
		"_: <http://p> \"o\" .",
		"<http://s> <http://p> \"o\"",
		"<http://s> <http://p> \"o\" . extra",
		`<http://s> <http://p> "bad\q" .`,
	} {
		if _, err := ParseNTriples(strings.NewReader(in)); err == nil {
			t.Errorf("ParseNTriples(%q) should fail", in)
		}
	}
}

func TestNTriplesDatatypeAndLang(t *testing.T) {
	ts, err := ParseNTriples(strings.NewReader(
		`<http://s> <http://p> "5"^^<` + XSDInteger + `> .` + "\n" +
			`<http://s> <http://p> "hi"@en-GB .` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].O.Datatype != XSDInteger {
		t.Errorf("datatype = %s", ts[0].O.Datatype)
	}
	if ts[1].O.Lang != "en-GB" {
		t.Errorf("lang = %s", ts[1].O.Lang)
	}
}

// Property: writing then parsing any set of simple triples is lossless.
func TestQuickNTriplesRoundTrip(t *testing.T) {
	f := func(subjects, values []string) bool {
		var ts []Triple
		for i := range subjects {
			s := "http://s/" + sanitize(subjects[i])
			v := "fixed"
			if len(values) > 0 {
				v = values[i%len(values)]
			}
			ts = append(ts, Triple{NewIRI(s), NewIRI("http://p"), NewLiteral(v)})
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, ts); err != nil {
			return false
		}
		got, err := ParseNTriples(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(ts) {
			return false
		}
		for i := range ts {
			if ts[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > 0x20 && r != '>' && r != '<' && r < 0x7f {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}
