package rdf

import (
	"sort"
	"sync"
)

// Graph is an in-memory triple store. It maintains three hash indexes
// (SPO, POS, OSP) so that any triple pattern with at least one bound
// position can be answered without a full scan. Graph is safe for
// concurrent readers; writes must not run concurrently with reads.
type Graph struct {
	mu      sync.RWMutex
	triples []Triple
	spo     map[Term]map[Term][]int // subject -> predicate -> triple ids
	pos     map[Term]map[Term][]int // predicate -> object -> triple ids
	osp     map[Term]map[Term][]int // object -> subject -> triple ids
	seen    map[Triple]bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo:  make(map[Term]map[Term][]int),
		pos:  make(map[Term]map[Term][]int),
		osp:  make(map[Term]map[Term][]int),
		seen: make(map[Triple]bool),
	}
}

// Add inserts the triple, ignoring exact duplicates. It reports whether the
// triple was newly added.
func (g *Graph) Add(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.seen[t] {
		return false
	}
	id := len(g.triples)
	g.triples = append(g.triples, t)
	g.seen[t] = true
	addIdx(g.spo, t.S, t.P, id)
	addIdx(g.pos, t.P, t.O, id)
	addIdx(g.osp, t.O, t.S, id)
	return true
}

// AddAll inserts every triple in ts.
func (g *Graph) AddAll(ts []Triple) {
	for _, t := range ts {
		g.Add(t)
	}
}

func addIdx(idx map[Term]map[Term][]int, a, b Term, id int) {
	m := idx[a]
	if m == nil {
		m = make(map[Term][]int)
		idx[a] = m
	}
	m[b] = append(m[b], id)
}

// Len returns the number of distinct triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.triples)
}

// Contains reports whether the graph holds the exact triple.
func (g *Graph) Contains(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.seen[t]
}

// Match returns all triples matching the pattern. A nil position is a
// wildcard. The result order is deterministic (insertion order).
func (g *Graph) Match(s, p, o *Term) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()

	ids := g.matchIDs(s, p, o)
	out := make([]Triple, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.triples[id])
	}
	return out
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (g *Graph) Count(s, p, o *Term) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.matchIDs(s, p, o))
}

func (g *Graph) matchIDs(s, p, o *Term) []int {
	switch {
	case s != nil && p != nil && o != nil:
		if g.seen[Triple{*s, *p, *o}] {
			for _, id := range g.spo[*s][*p] {
				if g.triples[id].O == *o {
					return []int{id}
				}
			}
		}
		return nil
	case s != nil && p != nil:
		return g.spo[*s][*p]
	case p != nil && o != nil:
		return g.pos[*p][*o]
	case s != nil && o != nil:
		return filterIDs(g.osp[*o][*s], nil)
	case s != nil:
		return sortedUnion(g.spo[*s])
	case p != nil:
		return sortedUnion(g.pos[*p])
	case o != nil:
		return sortedUnion(g.osp[*o])
	default:
		ids := make([]int, len(g.triples))
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
}

func filterIDs(ids []int, keep func(int) bool) []int {
	if keep == nil {
		return ids
	}
	var out []int
	for _, id := range ids {
		if keep(id) {
			out = append(out, id)
		}
	}
	return out
}

func sortedUnion(m map[Term][]int) []int {
	var out []int
	for _, ids := range m {
		out = append(out, ids...)
	}
	sort.Ints(out)
	return out
}

// Subjects returns the distinct subjects of triples with predicate p and
// object o (either may be nil as a wildcard).
func (g *Graph) Subjects(p, o *Term) []Term {
	seen := make(map[Term]bool)
	var out []Term
	for _, t := range g.Match(nil, p, o) {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
	}
	return out
}

// Predicates returns the distinct predicates appearing in the graph, sorted
// by IRI for determinism.
func (g *Graph) Predicates() []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Term, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// Objects returns the distinct objects of triples with subject s and
// predicate p (either may be nil as a wildcard).
func (g *Graph) Objects(s, p *Term) []Term {
	seen := make(map[Term]bool)
	var out []Term
	for _, t := range g.Match(s, p, nil) {
		if !seen[t.O] {
			seen[t.O] = true
			out = append(out, t.O)
		}
	}
	return out
}

// Triples returns a copy of all triples in insertion order.
func (g *Graph) Triples() []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Triple, len(g.triples))
	copy(out, g.triples)
	return out
}
