// Package rdf implements the RDF data model used throughout the data lake:
// terms (IRIs, literals, blank nodes), triples, and an in-memory triple store
// with SPO/POS/OSP hash indexes. It also provides an N-Triples reader and
// writer so datasets can be serialized and reloaded.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind enumerates the kinds of RDF terms.
type TermKind uint8

const (
	// TermIRI is an IRI reference such as <http://example.org/x>.
	TermIRI TermKind = iota
	// TermLiteral is a literal, optionally carrying a datatype IRI or a
	// language tag.
	TermLiteral
	// TermBlank is a blank node identified by a label local to a graph.
	TermBlank
)

// Common XSD datatype IRIs.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
)

// RDFType is the rdf:type predicate IRI.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// Term is an RDF term. The zero value is not a valid term; use the
// constructors NewIRI, NewLiteral, NewTypedLiteral, NewLangLiteral and
// NewBlank.
type Term struct {
	Kind     TermKind
	Value    string // IRI string, literal lexical form, or blank node label
	Datatype string // literal datatype IRI; empty means xsd:string
	Lang     string // literal language tag; mutually exclusive with Datatype
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: TermIRI, Value: iri} }

// NewLiteral returns a plain string literal.
func NewLiteral(lex string) Term { return Term{Kind: TermLiteral, Value: lex} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: TermLiteral, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged string literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: TermLiteral, Value: lex, Lang: lang}
}

// NewBlank returns a blank node with the given label (without the "_:"
// prefix).
func NewBlank(label string) Term { return Term{Kind: TermBlank, Value: label} }

// IntLiteral returns an xsd:integer literal for v.
func IntLiteral(v int64) Term {
	return NewTypedLiteral(fmt.Sprintf("%d", v), XSDInteger)
}

// FloatLiteral returns an xsd:double literal for v.
func FloatLiteral(v float64) Term {
	return NewTypedLiteral(fmt.Sprintf("%g", v), XSDDouble)
}

// BoolLiteral returns an xsd:boolean literal for v.
func BoolLiteral(v bool) Term {
	if v {
		return NewTypedLiteral("true", XSDBoolean)
	}
	return NewTypedLiteral("false", XSDBoolean)
}

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == TermIRI }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == TermLiteral }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == TermBlank }

// Equal reports whether two terms are identical.
func (t Term) Equal(o Term) bool { return t == o }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case TermIRI:
		return "<" + t.Value + ">"
	case TermBlank:
		return "_:" + t.Value
	default:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" && t.Datatype != XSDString {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
}

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is an RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple in N-Triples syntax (without the trailing dot).
func (tr Triple) String() string {
	return tr.S.String() + " " + tr.P.String() + " " + tr.O.String()
}
