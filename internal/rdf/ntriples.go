package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseNTriples reads N-Triples from r and returns the parsed triples.
// Comment lines (starting with '#') and blank lines are skipped. The parser
// accepts the W3C N-Triples grammar restricted to IRIs, blank nodes and
// literals with optional language tags or datatypes.
func ParseNTriples(r io.Reader) ([]Triple, error) {
	var out []Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTLine(line)
		if err != nil {
			return nil, fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ntriples: %w", err)
	}
	return out, nil
}

func parseNTLine(line string) (Triple, error) {
	p := &ntParser{in: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	if !p.eat('.') {
		return Triple{}, fmt.Errorf("expected '.' at %q", p.rest())
	}
	p.skipWS()
	if !p.done() {
		return Triple{}, fmt.Errorf("trailing content %q", p.rest())
	}
	return Triple{S: s, P: pr, O: o}, nil
}

type ntParser struct {
	in  string
	pos int
}

func (p *ntParser) done() bool    { return p.pos >= len(p.in) }
func (p *ntParser) rest() string  { return p.in[p.pos:] }
func (p *ntParser) peek() byte    { return p.in[p.pos] }
func (p *ntParser) advance() byte { c := p.in[p.pos]; p.pos++; return c }

func (p *ntParser) eat(c byte) bool {
	if !p.done() && p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func (p *ntParser) skipWS() {
	for !p.done() && (p.peek() == ' ' || p.peek() == '\t') {
		p.pos++
	}
}

func (p *ntParser) term() (Term, error) {
	p.skipWS()
	if p.done() {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.peek())
	}
}

func (p *ntParser) iri() (Term, error) {
	p.advance() // '<'
	start := p.pos
	for !p.done() && p.peek() != '>' {
		p.pos++
	}
	if p.done() {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.in[start:p.pos]
	p.advance() // '>'
	return NewIRI(iri), nil
}

func (p *ntParser) blank() (Term, error) {
	p.advance() // '_'
	if !p.eat(':') {
		return Term{}, fmt.Errorf("malformed blank node")
	}
	start := p.pos
	for !p.done() && p.peek() != ' ' && p.peek() != '\t' && p.peek() != '.' {
		p.pos++
	}
	label := p.in[start:p.pos]
	if label == "" {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	return NewBlank(label), nil
}

func (p *ntParser) literal() (Term, error) {
	p.advance() // '"'
	var b strings.Builder
	for {
		if p.done() {
			return Term{}, fmt.Errorf("unterminated literal")
		}
		c := p.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if p.done() {
				return Term{}, fmt.Errorf("dangling escape")
			}
			e := p.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Term{}, fmt.Errorf("unsupported escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	lex := b.String()
	if p.eat('@') {
		start := p.pos
		for !p.done() && p.peek() != ' ' && p.peek() != '\t' && p.peek() != '.' {
			p.pos++
		}
		return NewLangLiteral(lex, p.in[start:p.pos]), nil
	}
	if !p.done() && p.peek() == '^' {
		p.advance()
		if !p.eat('^') {
			return Term{}, fmt.Errorf("malformed datatype marker")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

// WriteNTriples serializes the triples to w in N-Triples syntax.
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if _, err := bw.WriteString(" .\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
