package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	m.Inc("queries_total")
	m.Add("queries_total", 2)
	m.Add("answers_total", 10)
	if got := m.Counter("queries_total"); got != 3 {
		t.Errorf("queries_total = %d, want 3", got)
	}
	if got := m.Counter("answers_total"); got != 10 {
		t.Errorf("answers_total = %d, want 10", got)
	}
	if got := m.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
}

func TestMetricsHistogram(t *testing.T) {
	m := NewMetrics()
	for _, ms := range []int{1, 2, 4, 8, 40, 400} {
		m.Observe("query_ms", time.Duration(ms)*time.Millisecond)
	}
	h := m.HistogramSnapshot("query_ms", "")
	if h == nil {
		t.Fatal("histogram missing")
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 455 {
		t.Errorf("sum = %g, want 455", h.Sum())
	}
	// p50 of {1,2,4,8,40,400} sits in the le=5 bucket (value 4).
	if q := h.Quantile(0.5); q != 5 {
		t.Errorf("p50 = %g, want bucket bound 5", q)
	}
	if q := h.Quantile(1.0); q != 500 {
		t.Errorf("p100 = %g, want bucket bound 500", q)
	}
}

func TestMetricsPrometheusOutput(t *testing.T) {
	m := NewMetrics()
	m.Add("ontario_queries_total", 7)
	m.Observe("ontario_query_duration_ms", 3*time.Millisecond)
	m.ObserveSource("ontario_source_delay_ms", "drugbank", 2*time.Millisecond)
	m.ObserveSource("ontario_source_delay_ms", "kegg", 12*time.Millisecond)

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ontario_queries_total counter",
		"ontario_queries_total 7",
		"# TYPE ontario_query_duration_ms histogram",
		`ontario_query_duration_ms_bucket{le="+Inf"} 1`,
		"ontario_query_duration_ms_count 1",
		`ontario_source_delay_ms_bucket{source="drugbank",le="2.5"} 1`,
		`ontario_source_delay_ms_count{source="kegg"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering.
	var b2 strings.Builder
	if err := m.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WritePrometheus output not deterministic")
	}
}

func TestMetricsConcurrentUpdates(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Inc("n")
				m.Observe("h", time.Millisecond)
				m.ObserveSource("s", "src", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("n"); got != 800 {
		t.Errorf("n = %d, want 800", got)
	}
	if got := m.HistogramSnapshot("h", "").Count(); got != 800 {
		t.Errorf("h count = %d, want 800", got)
	}
}
