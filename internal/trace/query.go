package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"ontario/internal/engine"
)

// QueryTrace is the per-query runtime trace: the identity of one query
// execution (W3C trace-context IDs) plus every operator's runtime stats
// and the spans of the federated requests it fanned out. The coordinator
// creates one per query (or adopts the IDs from an incoming traceparent
// header), the executor registers each plan operator into it, and the
// remote wrapper appends a span per federated source — so after execution
// the trace shows the whole federation tree.
type QueryTrace struct {
	// TraceID is the 32-hex-digit W3C trace ID, shared by every node a
	// federated query touches.
	TraceID string
	// QueryID is this node's 16-hex-digit span ID; it doubles as the query
	// ID in logs and the slow-query log.
	QueryID string
	// ParentID is the caller's span ID when the query arrived with a
	// traceparent header; empty at the federation root.
	ParentID string

	Start time.Time

	mu      sync.Mutex
	ops     []*engine.OpStats
	remotes []RemoteSpan
}

// RemoteSpan records one federated request to a source: how many HTTP
// attempts the resilience layer made, the breaker state after the call,
// the total latency, and — when the peer is an ontario server — the peer's
// query ID and its own remote spans, nesting the full federation tree.
// The JSON encoding is the wire format of the X-Ontario-Spans trailer.
type RemoteSpan struct {
	Source    string       `json:"source"`
	QueryID   string       `json:"query_id,omitempty"`
	Attempts  int          `json:"attempts"`
	Breaker   string       `json:"breaker,omitempty"`
	LatencyMS float64      `json:"latency_ms"`
	Error     string       `json:"error,omitempty"`
	Children  []RemoteSpan `json:"children,omitempty"`
}

// NewQueryTrace starts a trace with fresh random IDs (a federation root).
func NewQueryTrace() *QueryTrace {
	return &QueryTrace{
		TraceID: randHex(16),
		QueryID: randHex(8),
		Start:   time.Now(),
	}
}

// ParseTraceparent starts a trace continuing an incoming W3C traceparent
// header ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"): the
// trace ID is adopted, the caller's span becomes the parent, and this node
// gets a fresh query ID. Malformed headers report ok == false; callers
// fall back to NewQueryTrace.
func ParseTraceparent(header string) (*QueryTrace, bool) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) != 4 || parts[0] != "00" ||
		!isHex(parts[1], 32) || !isHex(parts[2], 16) || !isHex(parts[3], 2) {
		return nil, false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return nil, false
	}
	return &QueryTrace{
		TraceID:  parts[1],
		QueryID:  randHex(8),
		ParentID: parts[2],
		Start:    time.Now(),
	}, true
}

// Traceparent renders the header to forward on federated hops: this node's
// query ID becomes the peer's parent.
func (q *QueryTrace) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", q.TraceID, q.QueryID)
}

// Register creates and records the stats of one plan operator.
func (q *QueryTrace) Register(kind, label string) *engine.OpStats {
	st := engine.NewOpStats(kind, label)
	q.mu.Lock()
	q.ops = append(q.ops, st)
	q.mu.Unlock()
	return st
}

// Ops returns the registered operator stats in registration order.
func (q *QueryTrace) Ops() []*engine.OpStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]*engine.OpStats(nil), q.ops...)
}

// AddRemoteSpan records one federated request span. Safe for concurrent
// use (wrappers run on many goroutines).
func (q *QueryTrace) AddRemoteSpan(s RemoteSpan) {
	q.mu.Lock()
	q.remotes = append(q.remotes, s)
	q.mu.Unlock()
}

// RemoteSpans returns the recorded federated request spans.
func (q *QueryTrace) RemoteSpans() []RemoteSpan {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]RemoteSpan(nil), q.remotes...)
}

type queryTraceKey struct{}

// WithQuery attaches the query trace to the context; the executor adopts
// it and the remote wrapper forwards its traceparent on every hop.
func WithQuery(ctx context.Context, q *QueryTrace) context.Context {
	if q == nil {
		return ctx
	}
	return context.WithValue(ctx, queryTraceKey{}, q)
}

// FromContext returns the query trace attached with WithQuery, or nil.
func FromContext(ctx context.Context) *QueryTrace {
	q, _ := ctx.Value(queryTraceKey{}).(*QueryTrace)
	return q
}

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is unrecoverable; fall back to a fixed
		// non-zero ID rather than panicking in a query path.
		for i := range b {
			b[i] = byte(i + 1)
		}
	}
	return hex.EncodeToString(b)
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for _, c := range []byte(s) {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
