package trace

import (
	"context"
	"strings"
	"testing"
)

func TestNewQueryTraceIdentity(t *testing.T) {
	qt := NewQueryTrace()
	if !isHex(qt.TraceID, 32) {
		t.Fatalf("trace id %q not 32 hex chars", qt.TraceID)
	}
	if !isHex(qt.QueryID, 16) {
		t.Fatalf("query id %q not 16 hex chars", qt.QueryID)
	}
	if qt.ParentID != "" {
		t.Fatalf("fresh trace has parent %q", qt.ParentID)
	}
	hdr := qt.Traceparent()
	if want := "00-" + qt.TraceID + "-" + qt.QueryID + "-01"; hdr != want {
		t.Fatalf("traceparent = %q, want %q", hdr, want)
	}
}

func TestParseTraceparentAdoptsCaller(t *testing.T) {
	up := NewQueryTrace()
	qt, ok := ParseTraceparent(up.Traceparent())
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if qt.TraceID != up.TraceID {
		t.Fatalf("trace id not adopted: %q vs %q", qt.TraceID, up.TraceID)
	}
	if qt.ParentID != up.QueryID {
		t.Fatalf("caller span %q should become parent, got %q", up.QueryID, qt.ParentID)
	}
	if qt.QueryID == up.QueryID {
		t.Fatal("child must mint its own span id")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // unknown version
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",     // missing flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // all-zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",  // all-zero span
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",  // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",   // short span
		"00-0af7651916cd43dd8448eb211c80319cz-b7ad6b7169203331-01", // non-hex
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", h)
		}
	}
}

func TestQueryTraceContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("bare context should have no query trace")
	}
	qt := NewQueryTrace()
	if got := FromContext(WithQuery(ctx, qt)); got != qt {
		t.Fatal("query trace lost in context round trip")
	}
}

func TestQueryTraceRegisterAndRemoteSpans(t *testing.T) {
	qt := NewQueryTrace()
	a := qt.Register("service", "diseasome")
	b := qt.Register("hash-join", "gene")
	if a == nil || b == nil || a == b {
		t.Fatal("Register must mint distinct stats records")
	}
	ops := qt.Ops()
	if len(ops) != 2 {
		t.Fatalf("Ops() = %d records, want 2", len(ops))
	}
	qt.AddRemoteSpan(RemoteSpan{Source: "peer-b", QueryID: "feedfacecafebeef", Attempts: 2})
	spans := qt.RemoteSpans()
	if len(spans) != 1 || spans[0].Source != "peer-b" || spans[0].Attempts != 2 {
		t.Fatalf("remote spans = %+v", spans)
	}
	// The returned slices must be copies: mutating them cannot corrupt the
	// trace that the server is about to serialize.
	spans[0].Source = "mutated"
	if qt.RemoteSpans()[0].Source != "peer-b" {
		t.Fatal("RemoteSpans returned aliased storage")
	}
}

func TestEscapeLabel(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`quo"te`:       `quo\"te`,
		"back\\slash":  `back\\slash`,
		"new\nline":    `new\nline`,
		`all"three\` + "\n": `all\"three\\\n`,
	}
	for in, want := range cases {
		if got := EscapeLabel(in); got != want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestObserveValueCustomBuckets(t *testing.T) {
	m := NewMetrics()
	bounds := []float64{0.5, 1, 2}
	m.ObserveValue("card_err", "op", `svc"x`, 0.7, bounds)
	m.ObserveValue("card_err", "op", `svc"x`, 3.0, bounds)
	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `le="0.5"`) || !strings.Contains(out, `le="2"`) {
		t.Fatalf("custom bucket bounds missing from exposition:\n%s", out)
	}
	if !strings.Contains(out, `op="svc\"x"`) {
		t.Fatalf("label value not escaped in exposition:\n%s", out)
	}
	if strings.Contains(out, "op=\"svc\"x\"") {
		t.Fatalf("raw quote leaked into label value:\n%s", out)
	}
	if !strings.Contains(out, "card_err_count") || !strings.Contains(out, "card_err_sum") {
		t.Fatalf("histogram summary series missing:\n%s", out)
	}
}
