package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultBuckets are the histogram bucket upper bounds in milliseconds,
// spanning sub-millisecond simulated latencies up to multi-second query
// executions.
var DefaultBuckets = []float64{
	0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// Histogram is a fixed-bucket latency histogram (milliseconds). It mirrors
// the Prometheus histogram model: cumulative bucket counts plus sum and
// count.
type Histogram struct {
	bounds []float64
	counts []uint64 // one per bound, plus +Inf at the end
	sum    float64
	total  uint64
}

// NewHistogram returns a histogram over the given bucket upper bounds
// (must be sorted ascending); nil uses DefaultBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// observe records one value (not concurrency-safe; Metrics serializes).
func (h *Histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) assuming
// observations sit at their bucket's upper bound — the same upper-bound
// estimate Prometheus makes without interpolation.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	var rank uint64
	if r := math.Ceil(q * float64(h.total)); r >= 1 {
		rank = uint64(r) - 1
	}
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			// +Inf bucket: report the largest finite bound.
			if len(h.bounds) > 0 {
				return h.bounds[len(h.bounds)-1]
			}
			return 0
		}
	}
	return 0
}

// EscapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double quote, and newline must be escaped. Label
// values reach the registry from caller-supplied source IDs, so this is a
// correctness (and injection-safety) requirement, not cosmetics.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

type histKey struct {
	name       string
	labelName  string // e.g. "source" or "op"; empty for unlabeled
	labelValue string
}

// Metrics is a concurrency-safe registry of counters, gauges and latency
// histograms, exported in the Prometheus text format by the server's
// /metrics endpoint. Counter, gauge and histogram names are created on
// first use.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[histKey]float64
	hists    map[histKey]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[histKey]float64),
		hists:    make(map[histKey]*Histogram),
	}
}

// SetGauge sets the named unlabeled gauge to v (gauges report the last
// set value, unlike monotonically accumulating counters).
func (m *Metrics) SetGauge(name string, v float64) {
	m.SetGaugeLabeled(name, "", "", v)
}

// SetGaugeLabeled sets one series of the named gauge family, keyed by an
// arbitrary label pair (e.g. worker="0"); both empty means unlabeled.
func (m *Metrics) SetGaugeLabeled(name, labelName, labelValue string, v float64) {
	m.mu.Lock()
	m.gauges[histKey{name: name, labelName: labelName, labelValue: labelValue}] = v
	m.mu.Unlock()
}

// Gauge returns the gauge series' current value (0 when never set).
func (m *Metrics) Gauge(name, labelName, labelValue string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[histKey{name: name, labelName: labelName, labelValue: labelValue}]
}

// Add increments the named counter by delta.
func (m *Metrics) Add(name string, delta int64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Inc increments the named counter by one.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Counter returns the counter's current value.
func (m *Metrics) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Observe records a duration into the named (unlabeled) histogram.
func (m *Metrics) Observe(name string, d time.Duration) {
	m.ObserveSource(name, "", d)
}

// ObserveSource records a duration into the histogram labeled with the
// given source (empty source means unlabeled).
func (m *Metrics) ObserveSource(name, source string, d time.Duration) {
	label := ""
	if source != "" {
		label = "source"
	}
	m.ObserveValue(name, label, source, float64(d)/float64(time.Millisecond), nil)
}

// ObserveLabeled records a duration into the histogram carrying an
// arbitrary label (e.g. op="bind-join").
func (m *Metrics) ObserveLabeled(name, labelName, labelValue string, d time.Duration) {
	m.ObserveValue(name, labelName, labelValue, float64(d)/float64(time.Millisecond), nil)
}

// ObserveValue records a raw value into the named histogram with the given
// label pair (both empty means unlabeled). bounds selects the bucket
// layout when the series is created (nil means DefaultBuckets); it is
// ignored on later observations.
func (m *Metrics) ObserveValue(name, labelName, labelValue string, v float64, bounds []float64) {
	m.mu.Lock()
	k := histKey{name: name, labelName: labelName, labelValue: labelValue}
	h, ok := m.hists[k]
	if !ok {
		h = NewHistogram(bounds)
		m.hists[k] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// HistogramSnapshot returns a copy of the named histogram (source may be
// empty for the unlabeled series), or nil when nothing was observed.
func (m *Metrics) HistogramSnapshot(name, source string) *Histogram {
	label := ""
	if source != "" {
		label = "source"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[histKey{name: name, labelName: label, labelValue: source}]
	if !ok {
		return nil
	}
	cp := &Histogram{
		bounds: h.bounds,
		counts: append([]uint64(nil), h.counts...),
		sum:    h.sum,
		total:  h.total,
	}
	return cp
}

// WritePrometheus renders every counter and histogram in the Prometheus
// text exposition format, sorted by name for deterministic output.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	counters := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	type histEntry struct {
		key histKey
		h   *Histogram
	}
	hists := make([]histEntry, 0, len(m.hists))
	for k, h := range m.hists {
		hists = append(hists, histEntry{key: k, h: &Histogram{
			bounds: h.bounds,
			counts: append([]uint64(nil), h.counts...),
			sum:    h.sum,
			total:  h.total,
		}})
	}
	type gaugeEntry struct {
		key histKey
		v   float64
	}
	gauges := make([]gaugeEntry, 0, len(m.gauges))
	for k, v := range m.gauges {
		gauges = append(gauges, gaugeEntry{key: k, v: v})
	}
	m.mu.Unlock()

	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, counters[n]); err != nil {
			return err
		}
	}

	sort.Slice(gauges, func(i, j int) bool {
		if gauges[i].key.name != gauges[j].key.name {
			return gauges[i].key.name < gauges[j].key.name
		}
		if gauges[i].key.labelName != gauges[j].key.labelName {
			return gauges[i].key.labelName < gauges[j].key.labelName
		}
		return gauges[i].key.labelValue < gauges[j].key.labelValue
	})
	lastGauge := ""
	for _, g := range gauges {
		if g.key.name != lastGauge {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", g.key.name); err != nil {
				return err
			}
			lastGauge = g.key.name
		}
		series := g.key.name
		if g.key.labelName != "" {
			series += fmt.Sprintf(`{%s="%s"}`, g.key.labelName, EscapeLabel(g.key.labelValue))
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", series, g.v); err != nil {
			return err
		}
	}

	sort.Slice(hists, func(i, j int) bool {
		if hists[i].key.name != hists[j].key.name {
			return hists[i].key.name < hists[j].key.name
		}
		if hists[i].key.labelName != hists[j].key.labelName {
			return hists[i].key.labelName < hists[j].key.labelName
		}
		return hists[i].key.labelValue < hists[j].key.labelValue
	})
	lastType := ""
	for _, e := range hists {
		if e.key.name != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", e.key.name); err != nil {
				return err
			}
			lastType = e.key.name
		}
		label := func(extra string) string {
			if e.key.labelName == "" {
				if extra == "" {
					return ""
				}
				return "{" + extra + "}"
			}
			pair := fmt.Sprintf(`%s="%s"`, e.key.labelName, EscapeLabel(e.key.labelValue))
			if extra == "" {
				return "{" + pair + "}"
			}
			return "{" + pair + "," + extra + "}"
		}
		var cum uint64
		for i, bound := range e.h.bounds {
			cum += e.h.counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				e.key.name, label(fmt.Sprintf(`le="%g"`, bound)), cum); err != nil {
				return err
			}
		}
		cum += e.h.counts[len(e.h.bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.key.name, label(`le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", e.key.name, label(""), e.h.sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", e.key.name, label(""), e.h.total); err != nil {
			return err
		}
	}
	return nil
}
