// Package trace records answer traces: the arrival time of every answer of
// a query execution, as plotted in Figure 2 of the paper. It also derives
// the summary metrics the evaluation reports (execution time, time to
// first answer, answer count) and the dief@t continuous-efficiency metric.
package trace

import (
	"fmt"
	"io"
	"time"

	"ontario/internal/engine"
	"ontario/internal/sparql"
)

// Point is one answer arrival.
type Point struct {
	// Elapsed is the time since execution start.
	Elapsed time.Duration
	// Count is the cumulative number of answers (1-based).
	Count int
}

// Trace is the answer trace of one query execution.
type Trace struct {
	// Label identifies the configuration (e.g. "Q3 aware Gamma 2").
	Label string
	// Points holds one entry per answer in arrival order.
	Points []Point
	// Total is the time from start to stream completion.
	Total time.Duration
	// Answers caches the bindings when collected with CollectAnswers.
	Answers []sparql.Binding
}

// Collect drains the stream, timestamping every answer relative to start.
func Collect(label string, start time.Time, s *engine.Stream) *Trace {
	return collect(label, start, s, false)
}

// CollectAnswers is Collect but also retains the bindings.
func CollectAnswers(label string, start time.Time, s *engine.Stream) *Trace {
	return collect(label, start, s, true)
}

func collect(label string, start time.Time, s *engine.Stream, keep bool) *Trace {
	t := &Trace{Label: label}
	n := 0
	for batch := range s.Batches() {
		for _, b := range batch {
			n++
			t.Points = append(t.Points, Point{Elapsed: time.Since(start), Count: n})
			if keep {
				t.Answers = append(t.Answers, b)
			}
		}
	}
	t.Total = time.Since(start)
	return t
}

// Count returns the number of answers.
func (t *Trace) Count() int { return len(t.Points) }

// TimeToFirst returns the arrival time of the first answer, or Total when
// no answer arrived.
func (t *Trace) TimeToFirst() time.Duration {
	if len(t.Points) == 0 {
		return t.Total
	}
	return t.Points[0].Elapsed
}

// AnswersAt returns how many answers had arrived by elapsed time d.
func (t *Trace) AnswersAt(d time.Duration) int {
	n := 0
	for _, p := range t.Points {
		if p.Elapsed <= d {
			n = p.Count
		} else {
			break
		}
	}
	return n
}

// DiefAt computes dief@t (Acosta et al.): the area under the answer trace
// until time d — higher means answers arrive earlier. The unit is
// answer·seconds.
func (t *Trace) DiefAt(d time.Duration) float64 {
	if len(t.Points) == 0 {
		return 0
	}
	area := 0.0
	for i, p := range t.Points {
		if p.Elapsed > d {
			break
		}
		end := d
		if i+1 < len(t.Points) && t.Points[i+1].Elapsed < d {
			end = t.Points[i+1].Elapsed
		}
		area += float64(p.Count) * (end - p.Elapsed).Seconds()
	}
	return area
}

// WriteCSV emits "elapsed_ms,count" rows for plotting.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "label,elapsed_ms,answer\n"); err != nil {
		return err
	}
	for _, p := range t.Points {
		if _, err := fmt.Fprintf(w, "%s,%.3f,%d\n", t.Label, float64(p.Elapsed)/1e6, p.Count); err != nil {
			return err
		}
	}
	return nil
}

// Summary is the row format of the experiment tables.
type Summary struct {
	Label           string
	ExecutionTime   time.Duration
	TimeFirstAnswer time.Duration
	AnswerCount     int
}

// Summarize extracts the summary metrics.
func (t *Trace) Summarize() Summary {
	return Summary{
		Label:           t.Label,
		ExecutionTime:   t.Total,
		TimeFirstAnswer: t.TimeToFirst(),
		AnswerCount:     t.Count(),
	}
}
