package trace

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"ontario/internal/engine"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

func mkTrace(times ...time.Duration) *Trace {
	t := &Trace{Label: "t"}
	for i, d := range times {
		t.Points = append(t.Points, Point{Elapsed: d, Count: i + 1})
	}
	if len(times) > 0 {
		t.Total = times[len(times)-1] + 10*time.Millisecond
	}
	return t
}

func TestCollect(t *testing.T) {
	ctx := context.Background()
	bindings := []sparql.Binding{
		{"x": rdf.IntLiteral(1)},
		{"x": rdf.IntLiteral(2)},
	}
	start := time.Now()
	tr := CollectAnswers("lbl", start, engine.FromSlice(ctx, bindings))
	if tr.Count() != 2 || len(tr.Answers) != 2 {
		t.Fatalf("collected %d/%d", tr.Count(), len(tr.Answers))
	}
	if tr.Label != "lbl" {
		t.Error("label lost")
	}
	if tr.Points[1].Elapsed < tr.Points[0].Elapsed {
		t.Error("timestamps not monotone")
	}
	if tr.Total < tr.Points[1].Elapsed {
		t.Error("total before last answer")
	}
	tr2 := Collect("x", time.Now(), engine.FromSlice(ctx, bindings))
	if tr2.Answers != nil {
		t.Error("Collect retained answers")
	}
}

func TestTimeToFirst(t *testing.T) {
	tr := mkTrace(5*time.Millisecond, 9*time.Millisecond)
	if got := tr.TimeToFirst(); got != 5*time.Millisecond {
		t.Errorf("TimeToFirst = %v", got)
	}
	empty := &Trace{Total: 3 * time.Second}
	if got := empty.TimeToFirst(); got != 3*time.Second {
		t.Errorf("empty TimeToFirst = %v", got)
	}
}

func TestAnswersAt(t *testing.T) {
	tr := mkTrace(1*time.Millisecond, 2*time.Millisecond, 8*time.Millisecond)
	for _, tc := range []struct {
		at   time.Duration
		want int
	}{
		{0, 0},
		{time.Millisecond, 1},
		{3 * time.Millisecond, 2},
		{time.Second, 3},
	} {
		if got := tr.AnswersAt(tc.at); got != tc.want {
			t.Errorf("AnswersAt(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
}

func TestDiefAt(t *testing.T) {
	// Two traces with the same completion time; the earlier producer has a
	// larger dief@t (answers available sooner).
	early := mkTrace(1*time.Millisecond, 2*time.Millisecond, 3*time.Millisecond)
	late := mkTrace(90*time.Millisecond, 95*time.Millisecond, 99*time.Millisecond)
	at := 100 * time.Millisecond
	if early.DiefAt(at) <= late.DiefAt(at) {
		t.Errorf("dief: early %.4f <= late %.4f", early.DiefAt(at), late.DiefAt(at))
	}
	if (&Trace{}).DiefAt(at) != 0 {
		t.Error("dief of empty trace != 0")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := mkTrace(1500 * time.Microsecond)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "label,elapsed_ms,answer\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "t,1.500,1") {
		t.Errorf("missing data row: %q", out)
	}
}

func TestSummarize(t *testing.T) {
	tr := mkTrace(2*time.Millisecond, 4*time.Millisecond)
	s := tr.Summarize()
	if s.AnswerCount != 2 || s.TimeFirstAnswer != 2*time.Millisecond || s.ExecutionTime != tr.Total {
		t.Errorf("summary = %+v", s)
	}
}
