package rdb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// buildPair creates two databases with identical content where one carries
// every secondary index and the other none: any query must return the same
// multiset of rows on both (access-path independence).
func buildPair(t testing.TB, seed int64, rows int) (indexed, plain *Database) {
	t.Helper()
	mk := func(withIdx bool) *Database {
		db := NewDatabase("p")
		left, err := db.CreateTable(&Schema{
			Name: "l",
			Columns: []Column{
				{Name: "id", Type: TypeInt, NotNull: true},
				{Name: "k", Type: TypeInt},
				{Name: "s", Type: TypeString},
				{Name: "f", Type: TypeFloat},
			},
			PrimaryKey: "id",
		})
		if err != nil {
			t.Fatal(err)
		}
		right, err := db.CreateTable(&Schema{
			Name: "r",
			Columns: []Column{
				{Name: "id", Type: TypeInt, NotNull: true},
				{Name: "k", Type: TypeInt},
				{Name: "v", Type: TypeString},
			},
			PrimaryKey: "id",
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < rows; i++ {
			sv := StringValue(fmt.Sprintf("s%02d", rng.Intn(40)))
			if rng.Intn(10) == 0 {
				sv = NullValue(TypeString)
			}
			if err := left.Insert(Row{
				IntValue(int64(i)),
				IntValue(int64(rng.Intn(25))),
				sv,
				FloatValue(rng.Float64() * 100),
			}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < rows/2; i++ {
			if err := right.Insert(Row{
				IntValue(int64(i)),
				IntValue(int64(rng.Intn(25))),
				StringValue(fmt.Sprintf("v%d", rng.Intn(10))),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if withIdx {
			for _, spec := range []IndexSpec{
				{Column: "k", Kind: IndexHash},
				{Column: "f", Kind: IndexBTree},
				{Column: "s", Kind: IndexHash},
			} {
				if err := left.CreateIndex(spec); err != nil {
					t.Fatal(err)
				}
			}
			if err := right.CreateIndex(IndexSpec{Column: "k", Kind: IndexHash}); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	return mk(true), mk(false)
}

func rowsKey(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.String())
			b.WriteByte('|')
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

// queryFromSpec derives a deterministic query from fuzz inputs.
func queryFromSpec(kSel, fSel, join, order uint8) string {
	var b strings.Builder
	if join%2 == 0 {
		b.WriteString("SELECT l.id, l.k, l.s FROM l")
	} else {
		b.WriteString("SELECT l.id, r.v FROM l JOIN r ON l.k = r.k")
	}
	var conds []string
	switch kSel % 4 {
	case 0:
		conds = append(conds, fmt.Sprintf("l.k = %d", kSel%25))
	case 1:
		conds = append(conds, fmt.Sprintf("l.k >= %d", kSel%25))
	case 2:
		conds = append(conds, fmt.Sprintf("l.s = 's%02d'", kSel%40))
	}
	switch fSel % 3 {
	case 0:
		conds = append(conds, fmt.Sprintf("l.f < %d", 10+int(fSel)%90))
	case 1:
		conds = append(conds, "l.s IS NOT NULL")
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	if order%2 == 0 {
		b.WriteString(" ORDER BY l.id")
	}
	return b.String()
}

// TestQuickAccessPathIndependence: any derived query returns the same
// multiset of rows with and without indexes.
func TestQuickAccessPathIndependence(t *testing.T) {
	indexed, plain := buildPair(t, 99, 400)
	f := func(kSel, fSel, join, order uint8) bool {
		q := queryFromSpec(kSel, fSel, join, order)
		ri, err := indexed.Query(q)
		if err != nil {
			t.Logf("query %q failed: %v", q, err)
			return false
		}
		rp, err := plain.Query(q)
		if err != nil {
			return false
		}
		a, b := rowsKey(ri), rowsKey(rp)
		if len(a) != len(b) {
			t.Logf("query %q: %d vs %d rows", q, len(a), len(b))
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("query %q: row multiset differs", q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOrderByIsSorted: ORDER BY output is sorted regardless of access
// path.
func TestQuickOrderByIsSorted(t *testing.T) {
	indexed, _ := buildPair(t, 7, 300)
	f := func(kSel uint8, desc bool) bool {
		dir := ""
		if desc {
			dir = " DESC"
		}
		q := fmt.Sprintf("SELECT id, f FROM l WHERE k >= %d ORDER BY f%s", kSel%25, dir)
		res, err := indexed.Query(q)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			c, ok := res.Rows[i-1][1].Compare(res.Rows[i][1])
			if !ok {
				continue
			}
			if !desc && c > 0 || desc && c < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLikeMatchesContains: for wildcard-free needles wrapped in '%',
// LIKE agrees with strings.Contains.
func TestQuickLikeMatchesContains(t *testing.T) {
	f := func(hay string, needle uint8) bool {
		n := fmt.Sprintf("s%d", needle%30)
		return likeMatch("%"+n+"%", hay) == strings.Contains(hay, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLikeMatchPatterns(t *testing.T) {
	for _, tc := range []struct {
		pattern, s string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "abx", false},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%", "", true},
		{"", "", true},
		{"", "x", false},
		{"%%", "anything", true},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "acb", false},
		{"_", "x", true},
		{"_", "", false},
	} {
		if got := likeMatch(tc.pattern, tc.s); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tc.pattern, tc.s, got, tc.want)
		}
	}
}
