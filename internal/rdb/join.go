package rdb

import (
	"fmt"
	"strings"

	"ontario/internal/sql"
)

// join combines cur with next using the cross predicates that connect them.
// It prefers an index nested-loop join when next is an unfiltered base
// relation with an index on its join column, then a hash join, and falls
// back to a nested-loop cross product with residual filtering.
//
// Consumed predicates are nil-ed out of crossPreds.
func (ex *execution) join(cur, next *tupleSet, crossPreds []sql.BoolExpr, crossRels [][]string) (*tupleSet, error) {
	// Collect equi-join predicates connecting cur and next.
	type eqPred struct {
		idx        int
		curCol     int // index into cur.cols
		nextCol    int // index into next.cols
		nextColRef boundCol
	}
	var eqs []eqPred
	for i, p := range crossPreds {
		if p == nil {
			continue
		}
		cmp, ok := p.(*sql.Comparison)
		if !ok || cmp.Op != sql.CmpEq || !cmp.L.IsCol || !cmp.R.IsCol {
			continue
		}
		covered := true
		for _, r := range crossRels[i] {
			if !cur.rels[r] && !next.rels[r] {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		lIdx, lIn := findCol(cur, next, cmp.L.Col)
		rIdx, rIn := findCol(cur, next, cmp.R.Col)
		if lIn == 0 || rIn == 0 || lIn == rIn {
			continue
		}
		if lIn == 1 { // L in cur, R in next
			eqs = append(eqs, eqPred{idx: i, curCol: lIdx, nextCol: rIdx, nextColRef: next.cols[rIdx]})
		} else {
			eqs = append(eqs, eqPred{idx: i, curCol: rIdx, nextCol: lIdx, nextColRef: next.cols[lIdx]})
		}
	}

	outCols := append(append([]boundCol{}, cur.cols...), next.cols...)
	outRels := map[string]bool{}
	for r := range cur.rels {
		outRels[r] = true
	}
	for r := range next.rels {
		outRels[r] = true
	}

	out := &tupleSet{cols: outCols, rels: outRels}

	if len(eqs) == 0 {
		// Cross product.
		for _, lt := range cur.tuples {
			for _, rt := range next.tuples {
				out.tuples = append(out.tuples, concatTuple(lt, rt))
			}
		}
		out.plan = &PlanNode{
			Op:       "NestedLoopJoin",
			Detail:   "cross",
			EstRows:  float64(len(cur.tuples)) * float64(len(next.tuples)),
			Children: []*PlanNode{cur.plan, next.plan},
		}
		return out, nil
	}

	// Hash join on the first equi predicate; remaining ones become
	// residual checks on the joined tuples.
	first := eqs[0]
	crossPreds[first.idx] = nil

	// Index nested-loop: possible when next is a single base relation whose
	// join column is indexed and next was not pre-filtered (its tuple set
	// is the raw table). We approximate "raw table" by checking its plan is
	// a SeqScan with no children.
	useINL := false
	var nextRel relation
	if len(next.rels) == 1 && next.plan.Op == "SeqScan" && len(next.plan.Children) == 0 {
		for name := range next.rels {
			for _, r := range ex.rels {
				if r.name == name {
					nextRel = r
				}
			}
		}
		if nextRel.table != nil && nextRel.table.HasIndexOn(first.nextColRef.column) &&
			len(cur.tuples) <= nextRel.table.RowCount() {
			useINL = true
		}
	}

	if useINL {
		for _, lt := range cur.tuples {
			v := lt[first.curCol]
			if v.Null {
				continue
			}
			ids, _ := nextRel.table.lookupEq(first.nextColRef.column, v)
			for _, id := range ids {
				out.tuples = append(out.tuples, concatTuple(lt, nextRel.table.Row(id)))
			}
		}
		out.plan = &PlanNode{
			Op: "IndexNLJoin",
			Detail: fmt.Sprintf("%s.%s", first.nextColRef.rel,
				first.nextColRef.column),
			EstRows:  float64(len(out.tuples)),
			Children: []*PlanNode{cur.plan, next.plan},
		}
	} else {
		// Hash join: build on the smaller side.
		build, probe := next, cur
		buildCol, probeCol := first.nextCol, first.curCol
		swapped := false
		if len(cur.tuples) < len(next.tuples) {
			build, probe = cur, next
			buildCol, probeCol = first.curCol, first.nextCol
			swapped = true
		}
		ht := make(map[string][][]Value, len(build.tuples))
		for _, bt := range build.tuples {
			v := bt[buildCol]
			if v.Null {
				continue
			}
			k := v.IndexKey()
			ht[k] = append(ht[k], bt)
		}
		for _, pt := range probe.tuples {
			v := pt[probeCol]
			if v.Null {
				continue
			}
			for _, bt := range ht[v.IndexKey()] {
				if swapped {
					// build side is cur (left of output)
					out.tuples = append(out.tuples, concatTuple(bt, pt))
				} else {
					out.tuples = append(out.tuples, concatTuple(pt, bt))
				}
			}
		}
		out.plan = &PlanNode{
			Op:       "HashJoin",
			Detail:   fmt.Sprintf("%s.%s = probe", first.nextColRef.rel, first.nextColRef.column),
			EstRows:  float64(len(out.tuples)),
			Children: []*PlanNode{cur.plan, next.plan},
		}
	}

	// Residual equi predicates between the two inputs.
	var residual []sql.BoolExpr
	for _, e := range eqs[1:] {
		if crossPreds[e.idx] != nil {
			residual = append(residual, crossPreds[e.idx])
			crossPreds[e.idx] = nil
		}
	}
	// Also any non-equi cross predicate now fully covered.
	for i, p := range crossPreds {
		if p == nil {
			continue
		}
		covered := true
		for _, r := range crossRels[i] {
			if !outRels[r] {
				covered = false
				break
			}
		}
		if covered {
			residual = append(residual, p)
			crossPreds[i] = nil
		}
	}
	if len(residual) > 0 {
		return ex.filterTuples(out, residual, "JoinFilter")
	}
	return out, nil
}

// findCol locates a column reference in cur (returns in=1) or next (in=2);
// in=0 when not found or ambiguous without qualification.
func findCol(cur, next *tupleSet, c sql.ColumnRef) (idx, in int) {
	if c.Table != "" {
		if i := cur.colIndex(c.Table, c.Column); i >= 0 {
			return i, 1
		}
		if i := next.colIndex(c.Table, c.Column); i >= 0 {
			return i, 2
		}
		return -1, 0
	}
	found, where := -1, 0
	for i, bc := range cur.cols {
		if bc.column == c.Column {
			if found >= 0 {
				return -1, 0
			}
			found, where = i, 1
		}
	}
	for i, bc := range next.cols {
		if bc.column == c.Column {
			if found >= 0 && where != 0 {
				// present in both inputs: ambiguous
				if where == 1 {
					return -1, 0
				}
			}
			if found >= 0 {
				return -1, 0
			}
			found, where = i, 2
		}
	}
	return found, where
}

func concatTuple(a, b []Value) []Value {
	out := make([]Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// finalize applies projection, DISTINCT, ORDER BY, LIMIT/OFFSET.
func (ex *execution) finalize(ts *tupleSet) (*Result, error) {
	sel := ex.sel

	// Resolve projection.
	type proj struct {
		name string
		idx  int
	}
	var projs []proj
	if len(sel.Columns) == 0 {
		for i, c := range ts.cols {
			projs = append(projs, proj{name: c.column, idx: i})
		}
	} else {
		for _, item := range sel.Columns {
			idx := -1
			if item.Col.Table != "" {
				idx = ts.colIndex(item.Col.Table, item.Col.Column)
			} else {
				for i, bc := range ts.cols {
					if bc.column == item.Col.Column {
						if idx >= 0 {
							return nil, fmt.Errorf("rdb: ambiguous projected column %s", item.Col.Column)
						}
						idx = i
					}
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("rdb: unknown projected column %s", item.Col)
			}
			name := item.Alias
			if name == "" {
				name = item.Col.Column
			}
			projs = append(projs, proj{name: name, idx: idx})
		}
	}

	// ORDER BY must be resolved against the pre-projection tuple.
	type order struct {
		idx  int
		desc bool
	}
	var orders []order
	for _, o := range sel.OrderBy {
		idx := -1
		if o.Col.Table != "" {
			idx = ts.colIndex(o.Col.Table, o.Col.Column)
		} else {
			for i, bc := range ts.cols {
				if bc.column == o.Col.Column {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("rdb: unknown ORDER BY column %s", o.Col)
		}
		orders = append(orders, order{idx: idx, desc: o.Desc})
	}

	tuples := ts.tuples
	if len(orders) > 0 {
		sortTuples(tuples, func(a, b []Value) int {
			for _, o := range orders {
				c, ok := a[o.idx].Compare(b[o.idx])
				if !ok {
					// Sort NULLs first.
					switch {
					case a[o.idx].Null && b[o.idx].Null:
						continue
					case a[o.idx].Null:
						c = -1
					default:
						c = 1
					}
				}
				if c == 0 {
					continue
				}
				if o.desc {
					return -c
				}
				return c
			}
			return 0
		})
	}

	res := &Result{Plan: ts.plan}
	for _, p := range projs {
		res.Columns = append(res.Columns, p.name)
	}
	seen := map[string]bool{}
	for _, tup := range tuples {
		row := make(Row, len(projs))
		for i, p := range projs {
			row[i] = tup[p.idx]
		}
		if sel.Distinct {
			k := rowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		res.Rows = append(res.Rows, row)
	}
	if sel.Offset > 0 {
		if sel.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[sel.Offset:]
		}
	}
	if sel.Limit >= 0 && sel.Limit < len(res.Rows) {
		res.Rows = res.Rows[:sel.Limit]
	}

	detail := make([]string, len(projs))
	for i, p := range projs {
		detail[i] = p.name
	}
	res.Plan = &PlanNode{
		Op:       "Project",
		Detail:   strings.Join(detail, ", "),
		EstRows:  float64(len(res.Rows)),
		Children: []*PlanNode{ts.plan},
	}
	return res, nil
}

func rowKey(r Row) string {
	var b strings.Builder
	for _, v := range r {
		if v.Null {
			b.WriteString("\x00N")
		} else {
			b.WriteString(v.IndexKey())
		}
		b.WriteByte('\x01')
	}
	return b.String()
}

// sortTuples is a stable merge sort over tuples with a three-way
// comparator.
func sortTuples(ts [][]Value, cmp func(a, b []Value) int) {
	if len(ts) < 2 {
		return
	}
	buf := make([][]Value, len(ts))
	mergeSort(ts, buf, cmp)
}

func mergeSort(ts, buf [][]Value, cmp func(a, b []Value) int) {
	if len(ts) < 2 {
		return
	}
	mid := len(ts) / 2
	mergeSort(ts[:mid], buf[:mid], cmp)
	mergeSort(ts[mid:], buf[mid:], cmp)
	copy(buf, ts)
	i, j, k := 0, mid, 0
	for i < mid && j < len(ts) {
		if cmp(buf[i], buf[j]) <= 0 {
			ts[k] = buf[i]
			i++
		} else {
			ts[k] = buf[j]
			j++
		}
		k++
	}
	for i < mid {
		ts[k] = buf[i]
		i++
		k++
	}
	// remaining right side already in place
}
