package rdb

import (
	"fmt"
	"testing"
)

// newTestDB builds a small 3NF-style database: gene(gene_id PK, name,
// disease_id FK, length) and disease(disease_id PK, label, class).
func newTestDB(t *testing.T, indexFK bool) *Database {
	t.Helper()
	db := NewDatabase("testdb")
	gene, err := db.CreateTable(&Schema{
		Name: "gene",
		Columns: []Column{
			{Name: "gene_id", Type: TypeInt, NotNull: true},
			{Name: "name", Type: TypeString},
			{Name: "disease_id", Type: TypeInt},
			{Name: "length", Type: TypeInt},
		},
		PrimaryKey: "gene_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	disease, err := db.CreateTable(&Schema{
		Name: "disease",
		Columns: []Column{
			{Name: "disease_id", Type: TypeInt, NotNull: true},
			{Name: "label", Type: TypeString},
			{Name: "class", Type: TypeString},
		},
		PrimaryKey: "disease_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		err := gene.Insert(Row{
			IntValue(int64(i)),
			StringValue(fmt.Sprintf("GENE%03d", i)),
			IntValue(int64(i % 10)),
			IntValue(int64(1000 + i*7)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		err := disease.Insert(Row{
			IntValue(int64(i)),
			StringValue(fmt.Sprintf("disease-%d", i)),
			StringValue([]string{"cancer", "metabolic"}[i%2]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if indexFK {
		if err := gene.CreateIndex(IndexSpec{Column: "disease_id", Kind: IndexHash}); err != nil {
			t.Fatal(err)
		}
		if err := gene.CreateIndex(IndexSpec{Column: "length", Kind: IndexBTree}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestInsertValidation(t *testing.T) {
	db := NewDatabase("v")
	tab, err := db.CreateTable(&Schema{
		Name:       "t",
		Columns:    []Column{{Name: "id", Type: TypeInt}, {Name: "s", Type: TypeString}},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Row{IntValue(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tab.Insert(Row{StringValue("x"), StringValue("y")}); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := tab.Insert(Row{IntValue(1), StringValue("a")}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Row{IntValue(1), StringValue("b")}); err == nil {
		t.Error("duplicate primary key accepted")
	}
	if err := tab.Insert(Row{NullValue(TypeInt), StringValue("c")}); err == nil {
		t.Error("NULL primary key accepted")
	}
}

func TestCreateTableErrors(t *testing.T) {
	db := NewDatabase("e")
	if _, err := db.CreateTable(&Schema{Name: "nopk", Columns: []Column{{Name: "a", Type: TypeInt}}}); err == nil {
		t.Error("table without primary key accepted")
	}
	if _, err := db.CreateTable(&Schema{Name: "badpk", Columns: []Column{{Name: "a", Type: TypeInt}}, PrimaryKey: "zz"}); err == nil {
		t.Error("unknown primary key column accepted")
	}
	if _, err := db.CreateTable(&Schema{Name: "ok", Columns: []Column{{Name: "a", Type: TypeInt}}, PrimaryKey: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(&Schema{Name: "ok", Columns: []Column{{Name: "a", Type: TypeInt}}, PrimaryKey: "a"}); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestPointQueryViaPK(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT name FROM gene WHERE gene_id = 42")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "GENE042" {
		t.Fatalf("got %v, want one row GENE042", res.Rows)
	}
	if !res.Plan.UsesIndex() {
		t.Errorf("PK lookup did not use an index:\n%s", res.Plan)
	}
}

func TestSeqScanWithFilter(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT gene_id FROM gene WHERE name = 'GENE007'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 7 {
		t.Fatalf("got %v, want gene_id 7", res.Rows)
	}
	if res.Plan.UsesIndex() {
		t.Errorf("unindexed filter used an index:\n%s", res.Plan)
	}
}

func TestHashIndexLookup(t *testing.T) {
	db := newTestDB(t, true)
	res, err := db.Query("SELECT gene_id FROM gene WHERE disease_id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
	if !res.Plan.UsesIndex() {
		t.Errorf("indexed equality did not use index:\n%s", res.Plan)
	}
}

func TestBTreeRangeScan(t *testing.T) {
	db := newTestDB(t, true)
	// length = 1000 + 7i, so length < 1070 covers i in [0, 9].
	res, err := db.Query("SELECT gene_id FROM gene WHERE length < 1070")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
	if !res.Plan.UsesIndex() {
		t.Errorf("range over B+tree column did not use index:\n%s", res.Plan)
	}
}

func TestRangeBounds(t *testing.T) {
	db := newTestDB(t, true)
	for _, tc := range []struct {
		where string
		want  int
	}{
		{"length <= 1070", 11},
		{"length < 1070", 10},
		{"length >= 1630", 10},
		{"length > 1630", 9},
		{"length >= 1000 AND length <= 1007", 2},
	} {
		res, err := db.Query("SELECT gene_id FROM gene WHERE " + tc.where)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != tc.want {
			t.Errorf("WHERE %s: got %d rows, want %d", tc.where, len(res.Rows), tc.want)
		}
	}
}

func TestJoinResultsIdenticalWithAndWithoutIndexes(t *testing.T) {
	q := "SELECT g.name, d.label FROM gene g JOIN disease d ON g.disease_id = d.disease_id WHERE d.class = 'cancer'"
	resNoIdx, err := newTestDB(t, false).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	resIdx, err := newTestDB(t, true).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resNoIdx.Rows) != 50 || len(resIdx.Rows) != 50 {
		t.Fatalf("got %d / %d rows, want 50 each", len(resNoIdx.Rows), len(resIdx.Rows))
	}
	// Same multiset of rows.
	count := map[string]int{}
	for _, r := range resNoIdx.Rows {
		count[r[0].Str+"|"+r[1].Str]++
	}
	for _, r := range resIdx.Rows {
		count[r[0].Str+"|"+r[1].Str]--
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("row multiset differs at %q (delta %d)", k, c)
		}
	}
}

func TestImplicitJoinCommaSyntax(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT g.name FROM gene g, disease d WHERE g.disease_id = d.disease_id AND d.label = 'disease-4'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT gene_id FROM gene ORDER BY gene_id DESC LIMIT 3 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{98, 97, 96}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for i, w := range want {
		if res.Rows[i][0].Int != w {
			t.Errorf("row %d = %d, want %d", i, res.Rows[i][0].Int, w)
		}
	}
}

func TestDistinct(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT DISTINCT disease_id FROM gene")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d distinct values, want 10", len(res.Rows))
	}
}

func TestLikePredicate(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT gene_id FROM gene WHERE name LIKE 'GENE00%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("LIKE 'GENE00%%': got %d rows, want 10", len(res.Rows))
	}
	res, err = db.Query("SELECT gene_id FROM gene WHERE name LIKE 'GENE0_0'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("LIKE 'GENE0_0': got %d rows, want 10", len(res.Rows))
	}
}

func TestInPredicate(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT gene_id FROM gene WHERE disease_id IN (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("got %d rows, want 20", len(res.Rows))
	}
	res, err = db.Query("SELECT gene_id FROM gene WHERE disease_id NOT IN (0,1,2,3,4,5,6,7,8)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("NOT IN: got %d rows, want 10", len(res.Rows))
	}
}

func TestOrAndNot(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT gene_id FROM gene WHERE (disease_id = 1 OR disease_id = 2) AND NOT (gene_id < 50)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
}

func TestIsNull(t *testing.T) {
	db := NewDatabase("n")
	tab, _ := db.CreateTable(&Schema{
		Name:       "t",
		Columns:    []Column{{Name: "id", Type: TypeInt}, {Name: "v", Type: TypeString}},
		PrimaryKey: "id",
	})
	_ = tab.Insert(Row{IntValue(1), StringValue("a")})
	_ = tab.Insert(Row{IntValue(2), NullValue(TypeString)})
	res, err := db.Query("SELECT id FROM t WHERE v IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 {
		t.Fatalf("IS NULL: got %v", res.Rows)
	}
	res, err = db.Query("SELECT id FROM t WHERE v IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 1 {
		t.Fatalf("IS NOT NULL: got %v", res.Rows)
	}
}

func TestStats(t *testing.T) {
	db := newTestDB(t, false)
	st := db.Table("gene").Stats()
	if st.RowCount != 100 {
		t.Fatalf("RowCount = %d, want 100", st.RowCount)
	}
	if st.DistinctCount["disease_id"] != 10 {
		t.Errorf("distinct disease_id = %d, want 10", st.DistinctCount["disease_id"])
	}
	if got := st.MaxValueFraction["disease_id"]; got != 0.1 {
		t.Errorf("MaxValueFraction disease_id = %g, want 0.1", got)
	}
	if got := st.Selectivity("gene_id"); got != 0.01 {
		t.Errorf("Selectivity(gene_id) = %g, want 0.01", got)
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := newTestDB(t, true)
	// Add a third table linking diseases to drugs.
	drug, err := db.CreateTable(&Schema{
		Name: "drug",
		Columns: []Column{
			{Name: "drug_id", Type: TypeInt, NotNull: true},
			{Name: "disease_id", Type: TypeInt},
			{Name: "dname", Type: TypeString},
		},
		PrimaryKey: "drug_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_ = drug.Insert(Row{IntValue(int64(i)), IntValue(int64(i % 10)), StringValue(fmt.Sprintf("drug%d", i))})
	}
	res, err := db.Query("SELECT g.name, dr.dname FROM gene g JOIN disease d ON g.disease_id = d.disease_id JOIN drug dr ON dr.disease_id = d.disease_id WHERE d.label = 'disease-3'")
	if err != nil {
		t.Fatal(err)
	}
	// disease 3: 10 genes x 2 drugs = 20 rows.
	if len(res.Rows) != 20 {
		t.Fatalf("got %d rows, want 20", len(res.Rows))
	}
}

func TestSelectStar(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT * FROM disease WHERE disease_id = 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 || len(res.Rows) != 1 {
		t.Fatalf("got cols=%v rows=%d", res.Columns, len(res.Rows))
	}
}

func TestQueryErrors(t *testing.T) {
	db := newTestDB(t, false)
	for _, q := range []string{
		"SELECT x FROM gene",
		"SELECT name FROM missing",
		"SELECT g.name FROM gene g WHERE zz.name = 'a'",
		"SELECT disease_id FROM gene, disease", // ambiguous projection
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestAliasedColumns(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT name AS n FROM gene WHERE gene_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "n" {
		t.Fatalf("alias not applied: %v", res.Columns)
	}
}

func TestValueCompare(t *testing.T) {
	if c, ok := IntValue(3).Compare(FloatValue(3.5)); !ok || c != -1 {
		t.Errorf("3 vs 3.5 = %d,%v", c, ok)
	}
	if c, ok := StringValue("a").Compare(StringValue("b")); !ok || c != -1 {
		t.Errorf("a vs b = %d,%v", c, ok)
	}
	if _, ok := NullValue(TypeInt).Compare(IntValue(1)); ok {
		t.Error("NULL comparable")
	}
	if IntValue(1).Equal(NullValue(TypeInt)) {
		t.Error("1 == NULL")
	}
	if c, ok := BoolValue(false).Compare(BoolValue(true)); !ok || c != -1 {
		t.Errorf("false vs true = %d,%v", c, ok)
	}
}

func TestIndexKeyOrderPreserving(t *testing.T) {
	ints := []int64{-1000, -1, 0, 1, 42, 1 << 40}
	for i := 1; i < len(ints); i++ {
		a, b := IntValue(ints[i-1]).IndexKey(), IntValue(ints[i]).IndexKey()
		if !(a < b) {
			t.Errorf("IndexKey order violated for %d < %d", ints[i-1], ints[i])
		}
	}
	floats := []float64{-1e9, -2.5, -0.0, 0.0, 1e-9, 3.14, 1e9}
	for i := 1; i < len(floats); i++ {
		a, b := FloatValue(floats[i-1]).IndexKey(), FloatValue(floats[i]).IndexKey()
		if a > b {
			t.Errorf("IndexKey order violated for %g <= %g", floats[i-1], floats[i])
		}
	}
}
