package rdb

import (
	"strings"
	"testing"
)

func TestMultiPredicateJoin(t *testing.T) {
	db := NewDatabase("m")
	a, _ := db.CreateTable(&Schema{
		Name: "a",
		Columns: []Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "x", Type: TypeInt}, {Name: "y", Type: TypeInt},
		},
		PrimaryKey: "id",
	})
	c, _ := db.CreateTable(&Schema{
		Name: "b",
		Columns: []Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "x", Type: TypeInt}, {Name: "y", Type: TypeInt},
		},
		PrimaryKey: "id",
	})
	for i := 0; i < 30; i++ {
		_ = a.Insert(Row{IntValue(int64(i)), IntValue(int64(i % 5)), IntValue(int64(i % 3))})
		_ = c.Insert(Row{IntValue(int64(i)), IntValue(int64(i % 5)), IntValue(int64(i % 3))})
	}
	// Join on BOTH x and y: the second predicate must apply as a residual.
	res, err := db.Query("SELECT a.id, b.id FROM a JOIN b ON a.x = b.x AND a.y = b.y")
	if err != nil {
		t.Fatal(err)
	}
	// Reference count: pairs with i%5==j%5 and i%3==j%3, i.e. i≡j (mod 15):
	// each i matches exactly 2 js in [0,30).
	if len(res.Rows) != 60 {
		t.Fatalf("multi-predicate join returned %d rows, want 60", len(res.Rows))
	}
}

func TestCrossJoinNoPredicate(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT g.gene_id, d.disease_id FROM gene g, disease d WHERE g.gene_id < 3 AND d.disease_id < 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("cross join = %d rows, want 6", len(res.Rows))
	}
}

func TestNonEquiJoinPredicate(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT g.gene_id FROM gene g, disease d WHERE g.disease_id = d.disease_id AND g.gene_id < d.disease_id")
	if err != nil {
		t.Fatal(err)
	}
	// gene i has disease i%10; need i < i%10 — impossible for i >= 10, and
	// for i < 10, i%10 == i, so never. 0 rows.
	if len(res.Rows) != 0 {
		t.Fatalf("non-equi join = %d rows, want 0", len(res.Rows))
	}
	res, err = db.Query("SELECT g.gene_id FROM gene g, disease d WHERE g.disease_id = d.disease_id AND g.gene_id > 95")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("join with residual = %d rows, want 4", len(res.Rows))
	}
}

func TestExplainShowsAccessPath(t *testing.T) {
	db := newTestDB(t, true)
	plan, err := db.Explain("SELECT gene_id FROM gene WHERE disease_id = 3")
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	if !strings.Contains(out, "IndexLookup") {
		t.Errorf("explain missing IndexLookup:\n%s", out)
	}
	plan, err = db.Explain("SELECT gene_id FROM gene WHERE name = 'GENE001'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "SeqScan") {
		t.Errorf("explain missing SeqScan:\n%s", plan.String())
	}
}

func TestIndexNLJoinChosen(t *testing.T) {
	db := newTestDB(t, true)
	// disease filtered to one row; gene.disease_id indexed: expect an
	// index nested-loop join.
	plan, err := db.Explain("SELECT g.name FROM disease d JOIN gene g ON g.disease_id = d.disease_id WHERE d.disease_id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "IndexNLJoin") {
		t.Errorf("expected IndexNLJoin:\n%s", plan.String())
	}
}

func TestOffsetBeyondSize(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT gene_id FROM gene LIMIT 5 OFFSET 1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("offset beyond size returned %d rows", len(res.Rows))
	}
}

func TestLimitZero(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT gene_id FROM gene LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(res.Rows))
	}
}

func TestDuplicateAliasRejected(t *testing.T) {
	db := newTestDB(t, false)
	if _, err := db.Query("SELECT g.name FROM gene g, disease g"); err == nil {
		t.Fatal("duplicate alias accepted")
	}
}

func TestConstantPredicate(t *testing.T) {
	db := newTestDB(t, false)
	res, err := db.Query("SELECT gene_id FROM gene WHERE 1 = 1 AND gene_id = 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("constant predicate broke query: %d rows", len(res.Rows))
	}
	res, err = db.Query("SELECT gene_id FROM gene WHERE 1 = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("false constant predicate returned %d rows", len(res.Rows))
	}
}

func TestOrderByStringAndNulls(t *testing.T) {
	db := NewDatabase("o")
	tab, _ := db.CreateTable(&Schema{
		Name:       "t",
		Columns:    []Column{{Name: "id", Type: TypeInt, NotNull: true}, {Name: "s", Type: TypeString}},
		PrimaryKey: "id",
	})
	_ = tab.Insert(Row{IntValue(1), StringValue("b")})
	_ = tab.Insert(Row{IntValue(2), NullValue(TypeString)})
	_ = tab.Insert(Row{IntValue(3), StringValue("a")})
	res, err := db.Query("SELECT id FROM t ORDER BY s")
	if err != nil {
		t.Fatal(err)
	}
	// NULLs sort first, then a, b.
	want := []int64{2, 3, 1}
	for i, w := range want {
		if res.Rows[i][0].Int != w {
			t.Fatalf("order = %v, want %v", res.Rows, want)
		}
	}
}

func TestRangeOnBothBounds(t *testing.T) {
	db := newTestDB(t, true)
	res, err := db.Query("SELECT gene_id FROM gene WHERE length > 1000 AND length < 1050")
	if err != nil {
		t.Fatal(err)
	}
	// lengths are 1000+7i: 1007..1049 -> i in 1..7.
	if len(res.Rows) != 7 {
		t.Fatalf("double-bounded range = %d rows, want 7", len(res.Rows))
	}
}

func TestSelectivityChoosesBestIndex(t *testing.T) {
	db := NewDatabase("sel")
	tab, _ := db.CreateTable(&Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "coarse", Type: TypeInt}, // 2 distinct values
			{Name: "fine", Type: TypeInt},   // ~500 distinct values
		},
		PrimaryKey: "id",
	})
	for i := 0; i < 1000; i++ {
		_ = tab.Insert(Row{IntValue(int64(i)), IntValue(int64(i % 2)), IntValue(int64(i % 500))})
	}
	_ = tab.CreateIndex(IndexSpec{Column: "coarse", Kind: IndexHash})
	_ = tab.CreateIndex(IndexSpec{Column: "fine", Kind: IndexHash})
	plan, err := db.Explain("SELECT id FROM t WHERE coarse = 1 AND fine = 7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "fine = 7") {
		t.Errorf("planner picked the coarse index:\n%s", plan.String())
	}
}
