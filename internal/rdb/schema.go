package rdb

import (
	"fmt"
	"sort"
)

// Column describes one table column.
type Column struct {
	Name string
	Type Type
	// NotNull marks the column as non-nullable.
	NotNull bool
}

// IndexKind enumerates secondary index representations.
type IndexKind int

// Index kinds.
const (
	// IndexHash is an equality-only hash index.
	IndexHash IndexKind = iota
	// IndexBTree is an ordered B+tree index supporting ranges.
	IndexBTree
)

// String names the kind.
func (k IndexKind) String() string {
	if k == IndexHash {
		return "HASH"
	}
	return "BTREE"
}

// IndexSpec describes a (single-column) secondary index.
type IndexSpec struct {
	Name   string
	Column string
	Kind   IndexKind
	Unique bool
}

// Schema describes a table.
type Schema struct {
	Name       string
	Columns    []Column
	PrimaryKey string // single-column primary key (the paper's 3NF layout)
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ColumnType returns the type of the named column.
func (s *Schema) ColumnType(name string) (Type, error) {
	i := s.ColumnIndex(name)
	if i < 0 {
		return 0, fmt.Errorf("rdb: table %s has no column %s", s.Name, name)
	}
	return s.Columns[i].Type, nil
}

// ColumnNames returns the column names in declaration order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Row is one table row; values are positional per the schema.
type Row []Value

// Stats holds per-table statistics maintained on load and used by the
// planner for selectivity estimation, and by the data-lake designer for the
// paper's "no index when a value exceeds 15% of records" rule.
type Stats struct {
	RowCount int
	// DistinctCount maps column name to the number of distinct non-null
	// values.
	DistinctCount map[string]int
	// MaxValueFraction maps column name to the frequency of its most
	// common value as a fraction of RowCount.
	MaxValueFraction map[string]float64
}

// Selectivity estimates the fraction of rows matching an equality predicate
// on the column (1/distinct, defaulting pessimistically to 0.1).
func (st *Stats) Selectivity(column string) float64 {
	if st == nil || st.RowCount == 0 {
		return 0.1
	}
	d := st.DistinctCount[column]
	if d <= 0 {
		return 0.1
	}
	return 1.0 / float64(d)
}

// computeStats scans the rows and derives statistics.
func computeStats(schema *Schema, rows []Row) *Stats {
	st := &Stats{
		RowCount:         len(rows),
		DistinctCount:    make(map[string]int, len(schema.Columns)),
		MaxValueFraction: make(map[string]float64, len(schema.Columns)),
	}
	for ci, col := range schema.Columns {
		counts := make(map[string]int)
		for _, r := range rows {
			if r[ci].Null {
				continue
			}
			counts[r[ci].IndexKey()]++
		}
		st.DistinctCount[col.Name] = len(counts)
		maxN := 0
		for _, n := range counts {
			if n > maxN {
				maxN = n
			}
		}
		if len(rows) > 0 {
			st.MaxValueFraction[col.Name] = float64(maxN) / float64(len(rows))
		}
	}
	return st
}

// SortedColumns returns column names sorted alphabetically (deterministic
// iteration helper).
func (s *Schema) SortedColumns() []string {
	out := s.ColumnNames()
	sort.Strings(out)
	return out
}
