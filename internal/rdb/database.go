package rdb

import (
	"fmt"
	"sort"
	"sync"
)

// Database is a named collection of tables; it models one of the paper's
// per-dataset MySQL containers.
type Database struct {
	Name string

	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDatabase returns an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table)}
}

// CreateTable creates a table from the schema.
func (db *Database) CreateTable(schema *Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[schema.Name]; dup {
		return nil, fmt.Errorf("rdb: table %s already exists in %s", schema.Name, db.Name)
	}
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	db.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames returns the sorted table names.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalRows returns the sum of row counts across tables.
func (db *Database) TotalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	total := 0
	for _, t := range db.tables {
		total += t.RowCount()
	}
	return total
}
