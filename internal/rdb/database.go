package rdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Database is a named collection of tables; it models one of the paper's
// per-dataset MySQL containers.
type Database struct {
	Name string

	mu     sync.RWMutex
	tables map[string]*Table

	// gen versions the database's contents: every table create, row
	// insert, and index create bumps it, invalidating the result cache.
	// In the federated setting the lake loads once and is then read-only,
	// so after loading the generation never moves and a repeated SELECT
	// (the same statement text) is answered from the cache.
	gen   atomic.Uint64
	resMu sync.RWMutex
	// results caches materialized results by statement text, tagged with
	// the generation they were computed under. Entries and their rows are
	// shared read-only between cache hits.
	results map[string]cachedResult
}

type cachedResult struct {
	gen uint64
	res *Result
}

// resultCacheCap bounds the result cache; crossing it drops the whole
// cache (statement mixes that large are churn, not reuse).
const resultCacheCap = 1024

// Gen returns the database's current content generation. Consumers that
// cache derived data (the wrapper's response cache) tag entries with the
// generation they were computed under and discard them when it moves.
func (db *Database) Gen() uint64 { return db.gen.Load() }

// NewDatabase returns an empty database.
func NewDatabase(name string) *Database {
	return &Database{
		Name:    name,
		tables:  make(map[string]*Table),
		results: make(map[string]cachedResult),
	}
}

// CreateTable creates a table from the schema.
func (db *Database) CreateTable(schema *Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[schema.Name]; dup {
		return nil, fmt.Errorf("rdb: table %s already exists in %s", schema.Name, db.Name)
	}
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	t.mutated = func() { db.gen.Add(1) }
	db.gen.Add(1)
	db.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames returns the sorted table names.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalRows returns the sum of row counts across tables.
func (db *Database) TotalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	total := 0
	for _, t := range db.tables {
		total += t.RowCount()
	}
	return total
}
