// Package rdb implements the in-memory relational engine that plays the
// role of the per-dataset MySQL instances in the paper's data lake: typed
// tables with primary keys, hash and B+tree secondary indexes, per-column
// statistics, and an executor for the SQL subset of package sql with a
// cost-guided access-path and join-order planner.
//
// The engine deliberately honours physical design the way a production
// RDBMS does — predicates over indexed columns become index scans, and
// equi-joins over indexed columns become index nested-loop joins — because
// the paper's heuristics are precisely about whether the federated layer
// can exploit those indexes.
package rdb

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"ontario/internal/sql"
)

// Type enumerates column types.
type Type int

// Column types.
const (
	TypeInt Type = iota
	TypeFloat
	TypeString
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	default:
		return "BOOLEAN"
	}
}

// Value is a typed SQL value. Null values have Null == true; the remaining
// fields are then meaningless.
type Value struct {
	Type  Type
	Null  bool
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// NullValue returns the NULL of the given type.
func NullValue(t Type) Value { return Value{Type: t, Null: true} }

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{Type: TypeInt, Int: v} }

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{Type: TypeFloat, Float: v} }

// StringValue wraps a string.
func StringValue(v string) Value { return Value{Type: TypeString, Str: v} }

// BoolValue wraps a bool.
func BoolValue(v bool) Value { return Value{Type: TypeBool, Bool: v} }

// String renders the value for display.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case TypeBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.Str
	}
}

// Equal reports whether two values are equal. NULL equals nothing,
// including NULL (SQL semantics would yield unknown; we return false).
func (v Value) Equal(o Value) bool {
	if v.Null || o.Null {
		return false
	}
	c, ok := v.compare(o)
	return ok && c == 0
}

// Compare returns -1/0/1 and whether the values are comparable. NULLs are
// incomparable.
func (v Value) Compare(o Value) (int, bool) {
	if v.Null || o.Null {
		return 0, false
	}
	return v.compare(o)
}

func (v Value) compare(o Value) (int, bool) {
	// Numeric cross-type comparison.
	if v.isNumeric() && o.isNumeric() {
		a, b := v.asFloat(), o.asFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.Type != o.Type {
		return 0, false
	}
	switch v.Type {
	case TypeString:
		return strings.Compare(v.Str, o.Str), true
	case TypeBool:
		switch {
		case v.Bool == o.Bool:
			return 0, true
		case !v.Bool:
			return -1, true
		default:
			return 1, true
		}
	default:
		return 0, false
	}
}

func (v Value) isNumeric() bool { return v.Type == TypeInt || v.Type == TypeFloat }

func (v Value) asFloat() float64 {
	if v.Type == TypeInt {
		return float64(v.Int)
	}
	return v.Float
}

// FromLiteral converts a sql.Literal to a Value, coercing to the column
// type t when possible.
func FromLiteral(l sql.Literal, t Type) (Value, error) {
	switch l.Kind {
	case sql.LitNull:
		return NullValue(t), nil
	case sql.LitString:
		switch t {
		case TypeString:
			return StringValue(l.Str), nil
		case TypeInt:
			n, err := strconv.ParseInt(l.Str, 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("rdb: cannot coerce %q to INTEGER", l.Str)
			}
			return IntValue(n), nil
		case TypeFloat:
			f, err := strconv.ParseFloat(l.Str, 64)
			if err != nil {
				return Value{}, fmt.Errorf("rdb: cannot coerce %q to DOUBLE", l.Str)
			}
			return FloatValue(f), nil
		case TypeBool:
			switch strings.ToLower(l.Str) {
			case "true", "1":
				return BoolValue(true), nil
			case "false", "0":
				return BoolValue(false), nil
			}
			return Value{}, fmt.Errorf("rdb: cannot coerce %q to BOOLEAN", l.Str)
		}
	case sql.LitInt:
		switch t {
		case TypeInt:
			return IntValue(l.Int), nil
		case TypeFloat:
			return FloatValue(float64(l.Int)), nil
		case TypeString:
			return StringValue(strconv.FormatInt(l.Int, 10)), nil
		case TypeBool:
			return BoolValue(l.Int != 0), nil
		}
	case sql.LitFloat:
		switch t {
		case TypeFloat:
			return FloatValue(l.Float), nil
		case TypeInt:
			return IntValue(int64(l.Float)), nil
		case TypeString:
			return StringValue(strconv.FormatFloat(l.Float, 'g', -1, 64)), nil
		}
	case sql.LitBool:
		if t == TypeBool {
			return BoolValue(l.Bool), nil
		}
		if t == TypeString {
			if l.Bool {
				return StringValue("true"), nil
			}
			return StringValue("false"), nil
		}
	}
	return Value{}, fmt.Errorf("rdb: cannot coerce literal %s to %s", l.String(), t)
}

// IndexKey encodes the value as an order-preserving byte-comparable string
// so B+tree iteration yields values in type order. NULLs sort first.
func (v Value) IndexKey() string {
	if v.Null {
		return "\x00"
	}
	switch v.Type {
	case TypeInt:
		var buf [9]byte
		buf[0] = 0x01
		binary.BigEndian.PutUint64(buf[1:], uint64(v.Int)^(1<<63))
		return string(buf[:])
	case TypeFloat:
		bits := math.Float64bits(v.Float)
		if v.Float >= 0 || bits == 0 {
			bits |= 1 << 63
		} else {
			bits = ^bits
		}
		var buf [9]byte
		buf[0] = 0x01
		binary.BigEndian.PutUint64(buf[1:], bits)
		return string(buf[:])
	case TypeBool:
		if v.Bool {
			return "\x02\x01"
		}
		return "\x02\x00"
	default:
		return "\x03" + v.Str
	}
}
