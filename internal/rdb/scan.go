package rdb

import (
	"fmt"
	"strings"

	"ontario/internal/sql"
)

// scanRelation materializes one base relation, choosing the best access
// path for the local predicates: primary-key/hash lookup for equality on an
// indexed column, B+tree range scan for inequalities on a tree-indexed
// column, else a sequential scan. Remaining predicates are applied as a
// residual filter.
func (ex *execution) scanRelation(r relation, preds []sql.BoolExpr) (*tupleSet, error) {
	schema := r.table.Schema
	cols := make([]boundCol, len(schema.Columns))
	for i, c := range schema.Columns {
		cols[i] = boundCol{rel: r.name, column: c.Name, typ: c.Type}
	}

	// Find the best indexable predicate.
	type eqCand struct {
		predIdx int
		column  string
		value   Value
	}
	type rangeCand struct {
		predIdx int
		column  string
		lo, hi  *Value
		loIncl  bool
		hiIncl  bool
	}
	var bestEq *eqCand
	var bestRange *rangeCand
	stats := r.table.Stats()
	for i, p := range preds {
		cmp, ok := p.(*sql.Comparison)
		if !ok {
			continue
		}
		col, lit, op, ok := normalizeComparison(cmp)
		if !ok || (col.Table != "" && col.Table != r.name) {
			continue
		}
		colType, err := schema.ColumnType(col.Column)
		if err != nil {
			continue
		}
		v, err := FromLiteral(lit, colType)
		if err != nil {
			continue
		}
		hasHash, hasTree := r.table.indexKindOn(col.Column)
		switch op {
		case sql.CmpEq:
			if !hasHash && !hasTree {
				continue
			}
			if bestEq == nil || stats.Selectivity(col.Column) < stats.Selectivity(bestEq.column) {
				v := v
				bestEq = &eqCand{predIdx: i, column: col.Column, value: v}
			}
		case sql.CmpLt, sql.CmpLe:
			if !hasTree {
				continue
			}
			v := v
			bestRange = &rangeCand{predIdx: i, column: col.Column, hi: &v, hiIncl: op == sql.CmpLe}
		case sql.CmpGt, sql.CmpGe:
			if !hasTree {
				continue
			}
			v := v
			bestRange = &rangeCand{predIdx: i, column: col.Column, lo: &v, loIncl: op == sql.CmpGe}
		}
	}

	var ids []int
	var plan *PlanNode
	used := -1
	switch {
	case bestEq != nil:
		ids, _ = r.table.lookupEq(bestEq.column, bestEq.value)
		used = bestEq.predIdx
		op := "IndexLookup"
		if bestEq.column == schema.PrimaryKey {
			op = "IndexLookup/PK"
		}
		plan = &PlanNode{
			Op:      op,
			Detail:  fmt.Sprintf("%s.%s = %s", r.name, bestEq.column, bestEq.value),
			EstRows: float64(stats.RowCount) * stats.Selectivity(bestEq.column),
		}
	case bestRange != nil:
		var ok bool
		ids, ok = r.table.lookupRange(bestRange.column, bestRange.lo, bestRange.loIncl, bestRange.hi, bestRange.hiIncl)
		if ok {
			used = bestRange.predIdx
			plan = &PlanNode{
				Op:      "IndexRangeScan",
				Detail:  fmt.Sprintf("%s.%s %s", r.name, bestRange.column, rangeDetail(bestRange.lo, bestRange.loIncl, bestRange.hi, bestRange.hiIncl)),
				EstRows: float64(stats.RowCount) / 3,
			}
		} else {
			ids = r.table.scanIDs()
			plan = &PlanNode{Op: "SeqScan", Detail: r.name, EstRows: float64(stats.RowCount)}
		}
	default:
		ids = r.table.scanIDs()
		plan = &PlanNode{Op: "SeqScan", Detail: r.name, EstRows: float64(stats.RowCount)}
	}

	ts := &tupleSet{cols: cols, plan: plan, rels: map[string]bool{r.name: true}}
	var residual []sql.BoolExpr
	for i, p := range preds {
		if i != used {
			residual = append(residual, p)
		}
	}
	for _, id := range ids {
		ts.tuples = append(ts.tuples, r.table.Row(id))
	}
	if len(residual) > 0 {
		return ex.filterTuples(ts, residual, "Filter")
	}
	return ts, nil
}

func rangeDetail(lo *Value, loIncl bool, hi *Value, hiIncl bool) string {
	var parts []string
	if lo != nil {
		op := ">"
		if loIncl {
			op = ">="
		}
		parts = append(parts, op+" "+lo.String())
	}
	if hi != nil {
		op := "<"
		if hiIncl {
			op = "<="
		}
		parts = append(parts, op+" "+hi.String())
	}
	return strings.Join(parts, " AND ")
}

// normalizeComparison rewrites "lit op col" to "col op' lit" and returns
// the parts; ok is false unless exactly one side is a column and the other
// a literal.
func normalizeComparison(c *sql.Comparison) (col sql.ColumnRef, lit sql.Literal, op sql.CmpOp, ok bool) {
	switch {
	case c.L.IsCol && !c.R.IsCol:
		return c.L.Col, c.R.Lit, c.Op, true
	case !c.L.IsCol && c.R.IsCol:
		return c.R.Col, c.L.Lit, flipOp(c.Op), true
	default:
		return sql.ColumnRef{}, sql.Literal{}, 0, false
	}
}

func flipOp(op sql.CmpOp) sql.CmpOp {
	switch op {
	case sql.CmpLt:
		return sql.CmpGt
	case sql.CmpLe:
		return sql.CmpGe
	case sql.CmpGt:
		return sql.CmpLt
	case sql.CmpGe:
		return sql.CmpLe
	default:
		return op
	}
}

// filterTuples applies the predicates to every tuple.
func (ex *execution) filterTuples(ts *tupleSet, preds []sql.BoolExpr, opName string) (*tupleSet, error) {
	out := &tupleSet{cols: ts.cols, rels: ts.rels}
	var kept [][]Value
	for _, tup := range ts.tuples {
		ok := true
		for _, p := range preds {
			v, err := evalPredicate(p, ts, tup)
			if err != nil {
				return nil, err
			}
			if !v {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, tup)
		}
	}
	out.tuples = kept
	details := make([]string, len(preds))
	for i, p := range preds {
		details[i] = p.String()
	}
	out.plan = &PlanNode{
		Op:       opName,
		Detail:   strings.Join(details, " AND "),
		EstRows:  float64(len(kept)),
		Children: []*PlanNode{ts.plan},
	}
	return out, nil
}

// evalPredicate evaluates a boolean expression over a tuple. NULL
// comparisons yield false (SQL unknown treated as not-satisfied).
func evalPredicate(e sql.BoolExpr, ts *tupleSet, tup []Value) (bool, error) {
	switch v := e.(type) {
	case *sql.Comparison:
		lv, err := operandValue(v.L, ts, tup)
		if err != nil {
			return false, err
		}
		rv, err := operandValue(v.R, ts, tup)
		if err != nil {
			return false, err
		}
		c, ok := lv.Compare(rv)
		if !ok {
			return false, nil
		}
		switch v.Op {
		case sql.CmpEq:
			return c == 0, nil
		case sql.CmpNeq:
			return c != 0, nil
		case sql.CmpLt:
			return c < 0, nil
		case sql.CmpLe:
			return c <= 0, nil
		case sql.CmpGt:
			return c > 0, nil
		default:
			return c >= 0, nil
		}
	case *sql.Like:
		val, err := columnValue(v.Col, ts, tup)
		if err != nil {
			return false, err
		}
		if val.Null || val.Type != TypeString {
			return false, nil
		}
		m := likeMatch(v.Pattern, val.Str)
		if v.Not {
			m = !m
		}
		return m, nil
	case *sql.In:
		val, err := columnValue(v.Col, ts, tup)
		if err != nil {
			return false, err
		}
		if val.Null {
			return false, nil
		}
		hit := false
		for _, lit := range v.List {
			lv, err := FromLiteral(lit, val.Type)
			if err != nil {
				continue
			}
			if val.Equal(lv) {
				hit = true
				break
			}
		}
		if v.Not {
			hit = !hit
		}
		return hit, nil
	case *sql.IsNull:
		val, err := columnValue(v.Col, ts, tup)
		if err != nil {
			return false, err
		}
		if v.Not {
			return !val.Null, nil
		}
		return val.Null, nil
	case *sql.And:
		l, err := evalPredicate(v.L, ts, tup)
		if err != nil || !l {
			return false, err
		}
		return evalPredicate(v.R, ts, tup)
	case *sql.Or:
		l, err := evalPredicate(v.L, ts, tup)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return evalPredicate(v.R, ts, tup)
	case *sql.Not:
		x, err := evalPredicate(v.X, ts, tup)
		if err != nil {
			return false, err
		}
		return !x, nil
	default:
		return false, fmt.Errorf("rdb: unsupported predicate %T", e)
	}
}

func operandValue(o sql.Operand, ts *tupleSet, tup []Value) (Value, error) {
	if o.IsCol {
		return columnValue(o.Col, ts, tup)
	}
	// Untyped literal: infer a natural type.
	switch o.Lit.Kind {
	case sql.LitString:
		return StringValue(o.Lit.Str), nil
	case sql.LitInt:
		return IntValue(o.Lit.Int), nil
	case sql.LitFloat:
		return FloatValue(o.Lit.Float), nil
	case sql.LitBool:
		return BoolValue(o.Lit.Bool), nil
	default:
		return NullValue(TypeString), nil
	}
}

func columnValue(c sql.ColumnRef, ts *tupleSet, tup []Value) (Value, error) {
	if c.Table != "" {
		i := ts.colIndex(c.Table, c.Column)
		if i < 0 {
			return Value{}, fmt.Errorf("rdb: unresolved column %s", c)
		}
		return tup[i], nil
	}
	found := -1
	for i, bc := range ts.cols {
		if bc.column == c.Column {
			if found >= 0 {
				return Value{}, fmt.Errorf("rdb: ambiguous column %s", c.Column)
			}
			found = i
		}
	}
	if found < 0 {
		return Value{}, fmt.Errorf("rdb: unresolved column %s", c.Column)
	}
	return tup[found], nil
}

// likeMatch implements SQL LIKE: '%' matches any run, '_' one character.
func likeMatch(pattern, s string) bool {
	return likeRec(pattern, s)
}

func likeRec(p, s string) bool {
	for {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			// collapse consecutive %
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if p == "" {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if s == "" {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if s == "" || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
}
