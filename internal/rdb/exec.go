package rdb

import (
	"fmt"
	"sort"
	"strings"

	"ontario/internal/sql"
)

// Result is a materialized query result.
type Result struct {
	// Columns are the output column names in projection order.
	Columns []string
	// Rows are the result rows.
	Rows []Row
	// Plan is the physical plan that produced the result.
	Plan *PlanNode
}

// PlanNode describes one physical operator for EXPLAIN-style output.
type PlanNode struct {
	Op       string  // e.g. "IndexLookup", "SeqScan", "HashJoin"
	Detail   string  // operator-specific description
	EstRows  float64 // planner cardinality estimate
	Children []*PlanNode
}

// String renders the plan as an indented tree.
func (p *PlanNode) String() string {
	var b strings.Builder
	p.write(&b, 0)
	return b.String()
}

func (p *PlanNode) write(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(p.Op)
	if p.Detail != "" {
		b.WriteString("(" + p.Detail + ")")
	}
	fmt.Fprintf(b, " est=%.1f", p.EstRows)
	b.WriteByte('\n')
	for _, c := range p.Children {
		c.write(b, depth+1)
	}
}

// UsesIndex reports whether any node in the plan tree uses an index access
// path or index join.
func (p *PlanNode) UsesIndex() bool {
	if strings.HasPrefix(p.Op, "Index") {
		return true
	}
	for _, c := range p.Children {
		if c.UsesIndex() {
			return true
		}
	}
	return false
}

// Query parses and executes a SELECT statement.
func (db *Database) Query(stmt string) (*Result, error) {
	sel, err := sql.Parse(stmt)
	if err != nil {
		return nil, err
	}
	return db.QueryAST(sel)
}

// QueryAST executes a parsed SELECT statement. Results for the current
// database generation are served from the statement cache — a loaded
// lake is read-only, so the federation's repeated per-block and repeated
// per-query statements hit without re-scanning; any mutation invalidates
// every cached entry at once. Cached results (rows included) are shared:
// callers must treat a Result as read-only, which every consumer already
// does.
func (db *Database) QueryAST(sel *sql.Select) (*Result, error) {
	key := sel.String()
	gen := db.gen.Load()
	db.resMu.RLock()
	c, ok := db.results[key]
	db.resMu.RUnlock()
	if ok && c.gen == gen {
		return c.res, nil
	}
	ex, err := newExecution(db, sel)
	if err != nil {
		return nil, err
	}
	res, err := ex.run()
	if err != nil {
		return nil, err
	}
	db.resMu.Lock()
	if len(db.results) >= resultCacheCap {
		clear(db.results)
	}
	db.results[key] = cachedResult{gen: gen, res: res}
	db.resMu.Unlock()
	return res, nil
}

// Explain plans the statement without running the final projection; it
// returns the physical plan.
func (db *Database) Explain(stmt string) (*PlanNode, error) {
	res, err := db.Query(stmt)
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// relation is one bound FROM/JOIN entry.
type relation struct {
	name  string // alias or table name, unique within the query
	table *Table
}

// boundCol is one column of the flattened intermediate tuple.
type boundCol struct {
	rel    string
	column string
	typ    Type
}

type execution struct {
	db   *Database
	sel  *sql.Select
	rels []relation
	// conjuncts of WHERE plus all JOIN ... ON conditions
	preds []sql.BoolExpr
}

func newExecution(db *Database, sel *sql.Select) (*execution, error) {
	ex := &execution{db: db, sel: sel}
	add := func(ref sql.TableRef) error {
		t := db.Table(ref.Table)
		if t == nil {
			return fmt.Errorf("rdb: %s: unknown table %s", db.Name, ref.Table)
		}
		name := ref.Name()
		for _, r := range ex.rels {
			if r.name == name {
				return fmt.Errorf("rdb: duplicate table name/alias %s", name)
			}
		}
		ex.rels = append(ex.rels, relation{name: name, table: t})
		return nil
	}
	for _, ref := range sel.From {
		if err := add(ref); err != nil {
			return nil, err
		}
	}
	for _, j := range sel.Joins {
		if err := add(j.Table); err != nil {
			return nil, err
		}
		ex.preds = append(ex.preds, sql.Conjuncts(j.On)...)
	}
	ex.preds = append(ex.preds, sql.Conjuncts(sel.Where)...)
	return ex, nil
}

// resolveCol finds the relation and column ordinal for a reference.
func (ex *execution) resolveCol(c sql.ColumnRef) (relName string, err error) {
	if c.Table != "" {
		for _, r := range ex.rels {
			if r.name == c.Table {
				if r.table.Schema.ColumnIndex(c.Column) < 0 {
					return "", fmt.Errorf("rdb: table %s has no column %s", c.Table, c.Column)
				}
				return r.name, nil
			}
		}
		return "", fmt.Errorf("rdb: unknown table %s in column reference", c.Table)
	}
	var found string
	for _, r := range ex.rels {
		if r.table.Schema.ColumnIndex(c.Column) >= 0 {
			if found != "" {
				return "", fmt.Errorf("rdb: ambiguous column %s", c.Column)
			}
			found = r.name
		}
	}
	if found == "" {
		return "", fmt.Errorf("rdb: unknown column %s", c.Column)
	}
	return found, nil
}

// predRels returns the distinct relation names a predicate references.
func (ex *execution) predRels(e sql.BoolExpr) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	addCol := func(c sql.ColumnRef) error {
		rel, err := ex.resolveCol(c)
		if err != nil {
			return err
		}
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
		return nil
	}
	var walk func(e sql.BoolExpr) error
	walk = func(e sql.BoolExpr) error {
		switch v := e.(type) {
		case *sql.Comparison:
			if v.L.IsCol {
				if err := addCol(v.L.Col); err != nil {
					return err
				}
			}
			if v.R.IsCol {
				if err := addCol(v.R.Col); err != nil {
					return err
				}
			}
		case *sql.Like:
			return addCol(v.Col)
		case *sql.In:
			return addCol(v.Col)
		case *sql.IsNull:
			return addCol(v.Col)
		case *sql.And:
			if err := walk(v.L); err != nil {
				return err
			}
			return walk(v.R)
		case *sql.Or:
			if err := walk(v.L); err != nil {
				return err
			}
			return walk(v.R)
		case *sql.Not:
			return walk(v.X)
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// tupleSet is a materialized intermediate relation: a flattened schema of
// bound columns plus tuples.
type tupleSet struct {
	cols   []boundCol
	tuples [][]Value
	plan   *PlanNode
	// rels are the relation names this set covers.
	rels map[string]bool
}

func (ts *tupleSet) colIndex(rel, column string) int {
	for i, c := range ts.cols {
		if c.rel == rel && c.column == column {
			return i
		}
	}
	return -1
}

func (ex *execution) run() (*Result, error) {
	// Validate predicates early (resolve all columns).
	type classified struct {
		expr sql.BoolExpr
		rels []string
	}
	var preds []classified
	for _, p := range ex.preds {
		rels, err := ex.predRels(p)
		if err != nil {
			return nil, err
		}
		preds = append(preds, classified{expr: p, rels: rels})
	}

	// Per-relation local predicates and cross-relation predicates.
	local := map[string][]sql.BoolExpr{}
	var cross []classified
	for _, p := range preds {
		if len(p.rels) <= 1 {
			rel := ""
			if len(p.rels) == 1 {
				rel = p.rels[0]
			} else if len(ex.rels) > 0 {
				rel = ex.rels[0].name // constant predicate: attach to first
			}
			local[rel] = append(local[rel], p.expr)
		} else {
			cross = append(cross, p)
		}
	}

	// Build base tuple sets with access-path selection.
	bases := make([]*tupleSet, 0, len(ex.rels))
	for _, r := range ex.rels {
		ts, err := ex.scanRelation(r, local[r.name])
		if err != nil {
			return nil, err
		}
		bases = append(bases, ts)
	}

	// Greedy join order: start from the smallest base; repeatedly join the
	// connected base with the smallest cardinality.
	crossPreds := make([]sql.BoolExpr, len(cross))
	crossRels := make([][]string, len(cross))
	for i, c := range cross {
		crossPreds[i] = c.expr
		crossRels[i] = c.rels
	}
	cur, rest := pickSmallest(bases)
	for len(rest) > 0 {
		bestIdx := -1
		bestConnected := false
		for i, ts := range rest {
			connected := connectedTo(cur, ts, crossRels)
			switch {
			case bestIdx == -1,
				connected && !bestConnected,
				connected == bestConnected && len(ts.tuples) < len(rest[bestIdx].tuples):
				bestIdx, bestConnected = i, connected
			}
		}
		next := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		joined, err := ex.join(cur, next, crossPreds, crossRels)
		if err != nil {
			return nil, err
		}
		cur = joined
	}

	// Any remaining cross predicates (e.g. referencing 3+ relations or not
	// consumed during joins) are applied as residual filters.
	residual, err := ex.residualPreds(cur, crossPreds, crossRels)
	if err != nil {
		return nil, err
	}
	if len(residual) > 0 {
		cur, err = ex.filterTuples(cur, residual, "ResidualFilter")
		if err != nil {
			return nil, err
		}
	}

	return ex.finalize(cur)
}

func pickSmallest(sets []*tupleSet) (*tupleSet, []*tupleSet) {
	best := 0
	for i, ts := range sets {
		if len(ts.tuples) < len(sets[best].tuples) {
			best = i
		}
	}
	cur := sets[best]
	rest := append(append([]*tupleSet{}, sets[:best]...), sets[best+1:]...)
	return cur, rest
}

func connectedTo(cur, other *tupleSet, crossRels [][]string) bool {
	for _, rels := range crossRels {
		if rels == nil {
			continue
		}
		hitCur, hitOther, miss := false, false, false
		for _, r := range rels {
			switch {
			case cur.rels[r]:
				hitCur = true
			case other.rels[r]:
				hitOther = true
			default:
				miss = true
			}
		}
		if hitCur && hitOther && !miss {
			return true
		}
	}
	return false
}

// residualPreds returns the cross predicates fully covered by ts that have
// not been nil-ed out by join consumption.
func (ex *execution) residualPreds(ts *tupleSet, crossPreds []sql.BoolExpr, crossRels [][]string) ([]sql.BoolExpr, error) {
	var out []sql.BoolExpr
	for i, p := range crossPreds {
		if p == nil {
			continue
		}
		covered := true
		for _, r := range crossRels[i] {
			if !ts.rels[r] {
				covered = false
				break
			}
		}
		if covered {
			out = append(out, p)
			crossPreds[i] = nil
		}
	}
	return out, nil
}
