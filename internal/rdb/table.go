package rdb

import (
	"fmt"
	"sync"

	"ontario/internal/btree"
)

// Table is an in-memory table with optional secondary indexes. The primary
// key is always indexed (hash). Tables are safe for concurrent reads;
// loading must complete before queries run.
type Table struct {
	Schema *Schema

	mu      sync.RWMutex
	rows    []Row
	pk      map[string]int // primary-key IndexKey -> row id
	hashIdx map[string]map[string][]int
	treeIdx map[string]*btree.Tree
	specs   []IndexSpec
	stats   *Stats

	// mutated, when set by the owning database, is called (under the
	// table lock) on every successful Insert or CreateIndex so the
	// database can invalidate its result cache.
	mutated func()
}

// NewTable creates an empty table for the schema. The schema must declare a
// primary key column.
func NewTable(schema *Schema) (*Table, error) {
	if schema.PrimaryKey == "" {
		return nil, fmt.Errorf("rdb: table %s has no primary key", schema.Name)
	}
	if schema.ColumnIndex(schema.PrimaryKey) < 0 {
		return nil, fmt.Errorf("rdb: table %s primary key %s is not a column", schema.Name, schema.PrimaryKey)
	}
	return &Table{
		Schema:  schema,
		pk:      make(map[string]int),
		hashIdx: make(map[string]map[string][]int),
		treeIdx: make(map[string]*btree.Tree),
	}, nil
}

// Insert appends a row, maintaining all indexes. The row must match the
// schema arity and the primary key must be unique and non-null.
func (t *Table) Insert(r Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(r) != len(t.Schema.Columns) {
		return fmt.Errorf("rdb: %s: row has %d values, schema has %d columns",
			t.Schema.Name, len(r), len(t.Schema.Columns))
	}
	for i, c := range t.Schema.Columns {
		if r[i].Null {
			if c.NotNull || c.Name == t.Schema.PrimaryKey {
				return fmt.Errorf("rdb: %s: NULL in non-nullable column %s", t.Schema.Name, c.Name)
			}
			continue
		}
		if r[i].Type != c.Type {
			return fmt.Errorf("rdb: %s.%s: value type %s does not match column type %s",
				t.Schema.Name, c.Name, r[i].Type, c.Type)
		}
	}
	pkIdx := t.Schema.ColumnIndex(t.Schema.PrimaryKey)
	key := r[pkIdx].IndexKey()
	if _, dup := t.pk[key]; dup {
		return fmt.Errorf("rdb: %s: duplicate primary key %s", t.Schema.Name, r[pkIdx])
	}
	id := len(t.rows)
	t.rows = append(t.rows, r)
	t.pk[key] = id
	for _, spec := range t.specs {
		t.indexRow(spec, r, id)
	}
	t.stats = nil // invalidate
	if t.mutated != nil {
		t.mutated()
	}
	return nil
}

func (t *Table) indexRow(spec IndexSpec, r Row, id int) {
	ci := t.Schema.ColumnIndex(spec.Column)
	v := r[ci]
	if v.Null {
		return
	}
	key := v.IndexKey()
	switch spec.Kind {
	case IndexHash:
		m := t.hashIdx[spec.Column]
		m[key] = append(m[key], id)
	case IndexBTree:
		t.treeIdx[spec.Column].Insert(key, id)
	}
}

// CreateIndex builds a secondary index over an existing column, indexing
// any rows already present.
func (t *Table) CreateIndex(spec IndexSpec) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ci := t.Schema.ColumnIndex(spec.Column)
	if ci < 0 {
		return fmt.Errorf("rdb: %s: cannot index unknown column %s", t.Schema.Name, spec.Column)
	}
	for _, s := range t.specs {
		if s.Column == spec.Column && s.Kind == spec.Kind {
			return fmt.Errorf("rdb: %s: duplicate index on %s", t.Schema.Name, spec.Column)
		}
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("idx_%s_%s", t.Schema.Name, spec.Column)
	}
	switch spec.Kind {
	case IndexHash:
		if _, ok := t.hashIdx[spec.Column]; !ok {
			t.hashIdx[spec.Column] = make(map[string][]int)
		}
	case IndexBTree:
		if _, ok := t.treeIdx[spec.Column]; !ok {
			t.treeIdx[spec.Column] = btree.New()
		}
	}
	t.specs = append(t.specs, spec)
	for id, r := range t.rows {
		t.indexRow(spec, r, id)
	}
	if t.mutated != nil {
		t.mutated()
	}
	return nil
}

// Indexes returns the secondary index specs (copy).
func (t *Table) Indexes() []IndexSpec {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]IndexSpec(nil), t.specs...)
}

// HasIndexOn reports whether the column is indexed (secondary index or
// primary key).
func (t *Table) HasIndexOn(column string) bool {
	if column == t.Schema.PrimaryKey {
		return true
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, s := range t.specs {
		if s.Column == column {
			return true
		}
	}
	return false
}

// indexKindOn returns the best index available on the column:
// (hasHash, hasTree). The primary key counts as a hash index.
func (t *Table) indexKindOn(column string) (hasHash, hasTree bool) {
	if column == t.Schema.PrimaryKey {
		hasHash = true
	}
	for _, s := range t.specs {
		if s.Column != column {
			continue
		}
		switch s.Kind {
		case IndexHash:
			hasHash = true
		case IndexBTree:
			hasTree = true
		}
	}
	return
}

// RowCount returns the number of rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Row returns the row with the given id.
func (t *Table) Row(id int) Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[id]
}

// Stats returns (computing lazily) the table statistics.
func (t *Table) Stats() *Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats == nil {
		t.stats = computeStats(t.Schema, t.rows)
	}
	return t.stats
}

// lookupEq returns the ids of rows whose column equals v, using the best
// available index or a scan.
func (t *Table) lookupEq(column string, v Value) (ids []int, usedIndex bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if v.Null {
		return nil, true // NULL matches nothing under '='
	}
	key := v.IndexKey()
	if column == t.Schema.PrimaryKey {
		if id, ok := t.pk[key]; ok {
			return []int{id}, true
		}
		return nil, true
	}
	if m, ok := t.hashIdx[column]; ok {
		return m[key], true
	}
	if tr, ok := t.treeIdx[column]; ok {
		return tr.Get(key), true
	}
	ci := t.Schema.ColumnIndex(column)
	for id, r := range t.rows {
		if !r[ci].Null && r[ci].IndexKey() == key {
			ids = append(ids, id)
		}
	}
	return ids, false
}

// lookupRange returns ids of rows with column in the given bounds using a
// B+tree index when available. ok is false when no ordered index exists.
func (t *Table) lookupRange(column string, lo *Value, loIncl bool, hi *Value, hiIncl bool) (ids []int, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tr, exists := t.treeIdx[column]
	if !exists {
		return nil, false
	}
	loKey, hasLo := "", false
	if lo != nil {
		loKey, hasLo = lo.IndexKey(), true
	}
	hiKey, hasHi, hiExcl := "", false, false
	if hi != nil {
		hiKey, hasHi, hiExcl = hi.IndexKey(), true, !hiIncl
	}
	loExcl := lo != nil && !loIncl
	tr.Range(loKey, hasLo, hiKey, hasHi, hiExcl, func(k string, id int) bool {
		if loExcl && k == loKey {
			return true
		}
		ids = append(ids, id)
		return true
	})
	return ids, true
}

// scanIDs returns all row ids.
func (t *Table) scanIDs() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := make([]int, len(t.rows))
	for i := range ids {
		ids[i] = i
	}
	return ids
}
