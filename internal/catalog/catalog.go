// Package catalog describes the Semantic Data Lake to the federated query
// engine: the sources (RDF graphs and relational databases), the RDF
// Molecule Templates (RDF-MTs, following MULDER) used for source selection,
// the R2RML-style mappings from RDF classes to 3NF relational stars, and
// the physical-design metadata (which columns are indexed) the paper's
// heuristics depend on.
package catalog

import (
	"context"
	dbsql "database/sql"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ontario/internal/rdb"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// DataModel enumerates the data models present in the lake.
type DataModel int

// Data models.
const (
	ModelRDF DataModel = iota
	ModelRelational
	// ModelCustom marks a source backed by a user-provided implementation
	// registered through the public lake API (CSV files, JSON documents,
	// remote APIs, ...). The engine reaches it through ExternalSource.
	ModelCustom
	// ModelSPARQLEndpoint marks a live remote SPARQL-protocol endpoint
	// (typically another ontario-server node) reached over HTTP.
	ModelSPARQLEndpoint
	// ModelSQLDatabase marks a relational source executed through a live
	// database/sql connection; DB still carries the schema the SPARQL-to-SQL
	// translation plans against, SQLDB runs the generated queries.
	ModelSQLDatabase
)

// String names the model.
func (m DataModel) String() string {
	switch m {
	case ModelRDF:
		return "RDF"
	case ModelRelational:
		return "Relational"
	case ModelSPARQLEndpoint:
		return "SPARQLEndpoint"
	case ModelSQLDatabase:
		return "SQLDatabase"
	default:
		return "Custom"
	}
}

// Remote reports whether the model reaches outside the process (and so
// runs under the resilience layer).
func (m DataModel) Remote() bool {
	return m == ModelSPARQLEndpoint || m == ModelSQLDatabase
}

// ExternalStar is one star-shaped sub-query handed to a custom source: all
// patterns share the subject variable and source selection has resolved the
// molecule class.
type ExternalStar struct {
	SubjectVar string
	Class      string
	Patterns   []sparql.TriplePattern
}

// ExternalSource answers star sub-queries for custom sources. Implementations
// evaluate the patterns against their backing data and return every matching
// solution; when seeds are present they may (but need not) restrict the
// evaluation to solutions compatible with at least one seed — the wrapper
// layer re-checks compatibility either way. Implementations must be safe for
// concurrent use: every running query calls into the same value.
type ExternalSource interface {
	ExecuteStars(ctx context.Context, stars []ExternalStar, seeds []sparql.Binding) ([]sparql.Binding, error)
}

// PropertyMapping maps one RDF predicate of a class to relational storage.
// Exactly one of Column or (JoinTable, JoinFK, ValueColumn) is set: a
// direct column on the class's base table, or a 3NF side table holding a
// multi-valued attribute or link.
type PropertyMapping struct {
	Predicate string
	// Direct attribute on the base table.
	Column string
	// Normalized side table: JoinTable.JoinFK references the base table's
	// primary key and ValueColumn holds the value.
	JoinTable   string
	JoinFK      string
	ValueColumn string
	// ObjectTemplate, when non-empty, renders the stored value into an IRI
	// ("...{value}..."), marking the object as a resource rather than a
	// literal. ObjectClass optionally names the class of that resource.
	ObjectTemplate string
	ObjectClass    string
}

// IsJoin reports whether the property lives in a side table.
func (pm *PropertyMapping) IsJoin() bool { return pm.JoinTable != "" }

// ClassMapping maps one RDF class onto a relational star rooted at Table.
// Following the paper (and MapSDI), the SPARQL subject corresponds to the
// base table's primary key — except for denormalized layouts, where the
// subject column repeats across rows (the paper's future-work "not
// normalized tables" setting).
type ClassMapping struct {
	Class string // class IRI
	Table string // base table name
	// SubjectColumn identifies the subject: the primary key for 3NF
	// layouts, a repeated (indexed) column for denormalized layouts.
	SubjectColumn string
	// SubjectTemplate renders a key into the subject IRI, e.g.
	// "http://lake/diseasome/disease/{id}".
	SubjectTemplate string
	// Denormalized marks a non-3NF wide-table layout: one row per
	// combination of multi-valued attributes, with single-valued
	// attributes repeated. Wrappers must de-duplicate (SELECT DISTINCT) to
	// recover RDF set semantics.
	Denormalized bool
	Properties   map[string]*PropertyMapping
}

// Property returns the mapping for a predicate IRI, or nil.
func (cm *ClassMapping) Property(pred string) *PropertyMapping {
	return cm.Properties[pred]
}

// SubjectIRI renders the subject IRI for a key value.
func (cm *ClassMapping) SubjectIRI(key string) string {
	return strings.Replace(cm.SubjectTemplate, "{value}", key, 1)
}

// SubjectKey extracts the key from a subject IRI; ok is false when the IRI
// does not match the template.
func (cm *ClassMapping) SubjectKey(iri string) (string, bool) {
	return templateKey(cm.SubjectTemplate, iri)
}

// templateKey inverts a "{value}" template.
func templateKey(template, s string) (string, bool) {
	i := strings.Index(template, "{value}")
	if i < 0 {
		return "", false
	}
	prefix, suffix := template[:i], template[i+len("{value}"):]
	if !strings.HasPrefix(s, prefix) || !strings.HasSuffix(s, suffix) {
		return "", false
	}
	v := s[len(prefix) : len(s)-len(suffix)]
	if v == "" {
		return "", false
	}
	return v, true
}

// RenderTemplate renders the "{value}" template with v.
func RenderTemplate(template, v string) string {
	return strings.Replace(template, "{value}", v, 1)
}

// TemplateKey exposes templateKey for wrappers.
func TemplateKey(template, s string) (string, bool) { return templateKey(template, s) }

// Source is one dataset in the lake.
type Source struct {
	ID    string
	Model DataModel

	// Graph backs RDF sources.
	Graph *rdf.Graph
	// DB and Mappings back relational sources. For ModelSQLDatabase DB
	// holds only the schema (no rows): the translation plans against it
	// while SQLDB executes.
	DB       *rdb.Database
	Mappings map[string]*ClassMapping // by class IRI
	// External backs custom sources.
	External ExternalSource
	// Endpoint is the query URL of a ModelSPARQLEndpoint source.
	Endpoint string
	// SQLDB is the live connection of a ModelSQLDatabase source.
	SQLDB *dbsql.DB

	// Partition records the hash-partition this source's rows were
	// thinned to (set by cluster.PartitionCatalog on workers); nil means
	// the source holds the whole dataset. Planning reads this to prove
	// co-partitioned joins shuffle-free.
	Partition *SourcePartition
}

// SourcePartition identifies one hash-partition of a source. Scheme
// names the routing function; "subject" means every row routes by the
// FNV-1a hash of its star's subject term, so a subject's whole star —
// RDF triples and relational base/side rows alike — lives on exactly
// one partition.
type SourcePartition struct {
	Scheme string
	Part   int
	Of     int
}

// relational reports whether the source answers through the SPARQL-to-SQL
// translation (in-memory rdb or a live database/sql connection).
func (s *Source) relational() bool {
	return s.Model == ModelRelational || s.Model == ModelSQLDatabase
}

// Mapping returns the class mapping for a class IRI, or nil.
func (s *Source) Mapping(class string) *ClassMapping {
	if s.Mappings == nil {
		return nil
	}
	return s.Mappings[class]
}

// HasIndexOn reports whether, under mapping cm, the storage column backing
// predicate pred is indexed (including primary keys). For side-table
// properties the relevant access column is the value column when filtering
// and the FK when joining; joinSide selects which.
func (s *Source) HasIndexOn(cm *ClassMapping, pred string, joinSide bool) bool {
	if !s.relational() || s.DB == nil {
		return false
	}
	pm := cm.Property(pred)
	if pm == nil {
		return false
	}
	if !pm.IsJoin() {
		t := s.DB.Table(cm.Table)
		return t != nil && t.HasIndexOn(pm.Column)
	}
	t := s.DB.Table(pm.JoinTable)
	if t == nil {
		return false
	}
	if joinSide {
		return t.HasIndexOn(pm.JoinFK)
	}
	return t.HasIndexOn(pm.ValueColumn)
}

// SubjectIndexed reports whether the class's subject column is indexed; it
// is always true for a well-formed mapping because the subject is the
// primary key.
func (s *Source) SubjectIndexed(cm *ClassMapping) bool {
	if !s.relational() || s.DB == nil {
		return false
	}
	t := s.DB.Table(cm.Table)
	return t != nil && t.HasIndexOn(cm.SubjectColumn)
}

// PredicateDesc describes one predicate of an RDF-MT.
type PredicateDesc struct {
	Predicate string
	// LinkedClass names the class of the objects when the predicate links
	// to another molecule (an intra- or inter-source link).
	LinkedClass string
}

// RDFMT is an RDF Molecule Template: the abstract description of the
// entities of one class, with the predicates they share and the sources
// able to answer them (MULDER / Ontario source descriptions).
type RDFMT struct {
	Class      string
	Predicates []PredicateDesc
	Sources    []string // source IDs
}

// HasPredicate reports whether the molecule offers the predicate.
func (mt *RDFMT) HasPredicate(p string) bool {
	for _, pd := range mt.Predicates {
		if pd.Predicate == p {
			return true
		}
	}
	return false
}

// Catalog is the data-lake description handed to the engine.
type Catalog struct {
	sources map[string]*Source
	mts     map[string]*RDFMT // by class IRI
	// predIndex maps predicate IRI -> class IRIs of molecules containing it.
	predIndex map[string][]string

	// shared holds lake-lifetime caches keyed by consumer (see Shared).
	sharedMu sync.Mutex
	shared   map[string]any
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		sources:   make(map[string]*Source),
		mts:       make(map[string]*RDFMT),
		predIndex: make(map[string][]string),
	}
}

// Shared returns the catalog's lake-lifetime cache slot for key, creating
// it with mk on first use. The catalog describes one static lake, so
// derived read-mostly state whose validity follows the data — the term
// dictionary, the wrapper response cache, the serving layer's marshaled-
// term cache — belongs here rather than to any single engine: every
// engine built over the catalog shares one instance and a new engine
// starts warm. Values are held as any so the catalog does not depend on
// its consumers' types.
func (c *Catalog) Shared(key string, mk func() any) any {
	c.sharedMu.Lock()
	defer c.sharedMu.Unlock()
	if c.shared == nil {
		c.shared = make(map[string]any)
	}
	v, ok := c.shared[key]
	if !ok {
		v = mk()
		c.shared[key] = v
	}
	return v
}

// AddSource registers a source.
func (c *Catalog) AddSource(s *Source) error {
	if s.ID == "" {
		return fmt.Errorf("catalog: source has empty ID")
	}
	if _, dup := c.sources[s.ID]; dup {
		return fmt.Errorf("catalog: duplicate source %s", s.ID)
	}
	switch s.Model {
	case ModelRDF:
		if s.Graph == nil {
			return fmt.Errorf("catalog: RDF source %s has no graph", s.ID)
		}
	case ModelCustom:
		if s.External == nil {
			return fmt.Errorf("catalog: custom source %s has no implementation", s.ID)
		}
	case ModelSPARQLEndpoint:
		if s.Endpoint == "" {
			return fmt.Errorf("catalog: remote source %s has no endpoint URL", s.ID)
		}
	case ModelSQLDatabase:
		if s.SQLDB == nil {
			return fmt.Errorf("catalog: SQL-database source %s has no connection", s.ID)
		}
		if s.DB == nil {
			return fmt.Errorf("catalog: SQL-database source %s has no schema database", s.ID)
		}
		if err := validateMappings(s); err != nil {
			return err
		}
	case ModelRelational:
		if s.DB == nil {
			return fmt.Errorf("catalog: relational source %s has no database", s.ID)
		}
		if err := validateMappings(s); err != nil {
			return err
		}
	}
	c.sources[s.ID] = s
	return nil
}

// validateMappings checks every class mapping of a relational source (in-
// memory or live database/sql) against the schema in s.DB.
func validateMappings(s *Source) error {
	for class, cm := range s.Mappings {
		t := s.DB.Table(cm.Table)
		if t == nil {
			return fmt.Errorf("catalog: source %s maps class %s to unknown table %s", s.ID, class, cm.Table)
		}
		if cm.Denormalized {
			if t.Schema.ColumnIndex(cm.SubjectColumn) < 0 {
				return fmt.Errorf("catalog: source %s class %s: denormalized subject column %s missing in %s",
					s.ID, class, cm.SubjectColumn, cm.Table)
			}
		} else if t.Schema.PrimaryKey != cm.SubjectColumn {
			return fmt.Errorf("catalog: source %s class %s: subject column %s is not the primary key of %s",
				s.ID, class, cm.SubjectColumn, cm.Table)
		}
		for pred, pm := range cm.Properties {
			if pm.IsJoin() {
				jt := s.DB.Table(pm.JoinTable)
				if jt == nil {
					return fmt.Errorf("catalog: source %s: predicate %s uses unknown table %s", s.ID, pred, pm.JoinTable)
				}
				if jt.Schema.ColumnIndex(pm.JoinFK) < 0 || jt.Schema.ColumnIndex(pm.ValueColumn) < 0 {
					return fmt.Errorf("catalog: source %s: predicate %s references missing columns in %s", s.ID, pred, pm.JoinTable)
				}
			} else if t.Schema.ColumnIndex(pm.Column) < 0 {
				return fmt.Errorf("catalog: source %s: predicate %s maps to unknown column %s.%s", s.ID, pred, cm.Table, pm.Column)
			}
		}
	}
	return nil
}

// AddMT registers a molecule template, merging sources and predicates if
// the class is already present.
func (c *Catalog) AddMT(mt *RDFMT) {
	existing, ok := c.mts[mt.Class]
	if !ok {
		cp := &RDFMT{Class: mt.Class}
		cp.Predicates = append(cp.Predicates, mt.Predicates...)
		cp.Sources = append(cp.Sources, mt.Sources...)
		c.mts[mt.Class] = cp
		for _, pd := range mt.Predicates {
			c.addPredClass(pd.Predicate, mt.Class)
		}
		return
	}
	for _, pd := range mt.Predicates {
		if !existing.HasPredicate(pd.Predicate) {
			existing.Predicates = append(existing.Predicates, pd)
			c.addPredClass(pd.Predicate, mt.Class)
		}
	}
	for _, src := range mt.Sources {
		found := false
		for _, s := range existing.Sources {
			if s == src {
				found = true
				break
			}
		}
		if !found {
			existing.Sources = append(existing.Sources, src)
		}
	}
}

func (c *Catalog) addPredClass(pred, class string) {
	for _, cl := range c.predIndex[pred] {
		if cl == class {
			return
		}
	}
	c.predIndex[pred] = append(c.predIndex[pred], class)
}

// Source returns the source with the given ID, or nil.
func (c *Catalog) Source(id string) *Source { return c.sources[id] }

// SourceIDs returns the sorted registered source IDs.
func (c *Catalog) SourceIDs() []string {
	out := make([]string, 0, len(c.sources))
	for id := range c.sources {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// MT returns the molecule template for a class IRI, or nil.
func (c *Catalog) MT(class string) *RDFMT { return c.mts[class] }

// Classes returns the sorted class IRIs with registered molecules.
func (c *Catalog) Classes() []string {
	out := make([]string, 0, len(c.mts))
	for cl := range c.mts {
		out = append(out, cl)
	}
	sort.Strings(out)
	return out
}

// ClassesWithPredicate returns the classes whose molecules contain the
// predicate, sorted.
func (c *Catalog) ClassesWithPredicate(pred string) []string {
	out := append([]string(nil), c.predIndex[pred]...)
	sort.Strings(out)
	return out
}
