package catalog

import (
	"testing"

	"ontario/internal/rdb"
	"ontario/internal/rdf"
)

func TestTemplateKey(t *testing.T) {
	tmpl := "http://lake/disease/{value}"
	if got := RenderTemplate(tmpl, "42"); got != "http://lake/disease/42" {
		t.Errorf("RenderTemplate = %s", got)
	}
	k, ok := TemplateKey(tmpl, "http://lake/disease/42")
	if !ok || k != "42" {
		t.Errorf("TemplateKey = %q/%v", k, ok)
	}
	if _, ok := TemplateKey(tmpl, "http://other/disease/42"); ok {
		t.Error("TemplateKey matched wrong prefix")
	}
	if _, ok := TemplateKey(tmpl, "http://lake/disease/"); ok {
		t.Error("TemplateKey matched empty key")
	}
	if _, ok := TemplateKey("no-placeholder", "no-placeholder"); ok {
		t.Error("TemplateKey without placeholder matched")
	}
	// Template with suffix.
	k, ok = TemplateKey("http://x/{value}/end", "http://x/7/end")
	if !ok || k != "7" {
		t.Errorf("TemplateKey with suffix = %q/%v", k, ok)
	}
}

func TestClassMappingSubject(t *testing.T) {
	cm := &ClassMapping{SubjectTemplate: "http://lake/gene/{value}"}
	if got := cm.SubjectIRI("9"); got != "http://lake/gene/9" {
		t.Errorf("SubjectIRI = %s", got)
	}
	k, ok := cm.SubjectKey("http://lake/gene/9")
	if !ok || k != "9" {
		t.Errorf("SubjectKey = %q/%v", k, ok)
	}
}

func relSource(t *testing.T) *Source {
	t.Helper()
	db := rdb.NewDatabase("d")
	tab, err := db.CreateTable(&rdb.Schema{
		Name: "thing",
		Columns: []rdb.Column{
			{Name: "id", Type: rdb.TypeInt, NotNull: true},
			{Name: "label", Type: rdb.TypeString},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.CreateTable(&rdb.Schema{
		Name: "thing_link",
		Columns: []rdb.Column{
			{Name: "id", Type: rdb.TypeInt, NotNull: true},
			{Name: "thing_id", Type: rdb.TypeInt},
			{Name: "other_id", Type: rdb.TypeInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex(rdb.IndexSpec{Column: "label", Kind: rdb.IndexHash}); err != nil {
		t.Fatal(err)
	}
	return &Source{
		ID:    "d",
		Model: ModelRelational,
		DB:    db,
		Mappings: map[string]*ClassMapping{
			"http://c/Thing": {
				Class: "http://c/Thing", Table: "thing",
				SubjectColumn: "id", SubjectTemplate: "http://e/thing/{value}",
				Properties: map[string]*PropertyMapping{
					"http://p/label": {Predicate: "http://p/label", Column: "label"},
					"http://p/link": {
						Predicate: "http://p/link", JoinTable: "thing_link",
						JoinFK: "thing_id", ValueColumn: "other_id",
						ObjectTemplate: "http://e/thing/{value}",
					},
				},
			},
		},
	}
}

func TestAddSourceValidation(t *testing.T) {
	c := New()
	if err := c.AddSource(&Source{}); err == nil {
		t.Error("empty source accepted")
	}
	if err := c.AddSource(&Source{ID: "r", Model: ModelRDF}); err == nil {
		t.Error("RDF source without graph accepted")
	}
	if err := c.AddSource(&Source{ID: "q", Model: ModelRelational}); err == nil {
		t.Error("relational source without DB accepted")
	}
	src := relSource(t)
	if err := c.AddSource(src); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSource(src); err == nil {
		t.Error("duplicate source accepted")
	}
	if got := c.Source("d"); got != src {
		t.Error("Source lookup failed")
	}
	if ids := c.SourceIDs(); len(ids) != 1 || ids[0] != "d" {
		t.Errorf("SourceIDs = %v", ids)
	}
}

func TestAddSourceMappingValidation(t *testing.T) {
	src := relSource(t)
	src.Mappings["http://c/Bad"] = &ClassMapping{
		Class: "http://c/Bad", Table: "missing", SubjectColumn: "id",
	}
	if err := New().AddSource(src); err == nil {
		t.Error("mapping to missing table accepted")
	}
	delete(src.Mappings, "http://c/Bad")

	src2 := relSource(t)
	src2.Mappings["http://c/Thing"].SubjectColumn = "label"
	if err := New().AddSource(src2); err == nil {
		t.Error("non-PK subject column accepted")
	}

	src3 := relSource(t)
	src3.Mappings["http://c/Thing"].Properties["http://p/bad"] = &PropertyMapping{Column: "nope"}
	if err := New().AddSource(src3); err == nil {
		t.Error("property mapping to unknown column accepted")
	}

	src4 := relSource(t)
	src4.Mappings["http://c/Thing"].Properties["http://p/bad"] = &PropertyMapping{
		JoinTable: "thing_link", JoinFK: "missing_fk", ValueColumn: "other_id",
	}
	if err := New().AddSource(src4); err == nil {
		t.Error("join property with bad FK accepted")
	}
}

func TestHasIndexOn(t *testing.T) {
	src := relSource(t)
	cm := src.Mapping("http://c/Thing")
	if cm == nil {
		t.Fatal("mapping missing")
	}
	if !src.SubjectIndexed(cm) {
		t.Error("primary key not reported indexed")
	}
	if !src.HasIndexOn(cm, "http://p/label", false) {
		t.Error("indexed label column not reported")
	}
	// The link side table has no index on either column.
	if src.HasIndexOn(cm, "http://p/link", false) {
		t.Error("unindexed value column reported indexed")
	}
	if src.HasIndexOn(cm, "http://p/link", true) {
		t.Error("unindexed FK column reported indexed")
	}
	if src.HasIndexOn(cm, "http://p/none", false) {
		t.Error("unknown predicate reported indexed")
	}
	// RDF sources never report indexes.
	rsrc := &Source{ID: "r", Model: ModelRDF, Graph: rdf.NewGraph()}
	if rsrc.HasIndexOn(cm, "http://p/label", false) {
		t.Error("RDF source reported an index")
	}
}

func TestMTRegistryAndMerge(t *testing.T) {
	c := New()
	c.AddMT(&RDFMT{
		Class:      "http://c/A",
		Predicates: []PredicateDesc{{Predicate: "http://p/1"}},
		Sources:    []string{"s1"},
	})
	c.AddMT(&RDFMT{
		Class:      "http://c/A",
		Predicates: []PredicateDesc{{Predicate: "http://p/1"}, {Predicate: "http://p/2"}},
		Sources:    []string{"s1", "s2"},
	})
	mt := c.MT("http://c/A")
	if mt == nil || len(mt.Predicates) != 2 {
		t.Fatalf("merged MT = %+v", mt)
	}
	if len(mt.Sources) != 2 {
		t.Errorf("merged sources = %v", mt.Sources)
	}
	if !mt.HasPredicate("http://p/2") || mt.HasPredicate("http://p/3") {
		t.Error("HasPredicate wrong")
	}
	if got := c.ClassesWithPredicate("http://p/1"); len(got) != 1 || got[0] != "http://c/A" {
		t.Errorf("ClassesWithPredicate = %v", got)
	}
	if got := c.Classes(); len(got) != 1 {
		t.Errorf("Classes = %v", got)
	}
}
