// Package dict implements dictionary encoding of RDF terms: every
// distinct term a query execution touches is interned once into a dense
// uint64 ID at the wrapper boundary, and the engine's operators hash,
// compare and copy raw IDs instead of string-sized terms. Strings are
// materialized late — at the public Results cursor and the server's JSON
// writer — by the reverse lookup.
//
// The executor shares one Dict across every execution of an engine: the
// data lake is static, so the dictionary converges to the lake's
// distinct terms (its memory is bounded by the lake, not by query
// volume) and a warm query interns terms through the read-locked hit
// path only.
//
// A Dict is safe for concurrent use: the intern map is sharded by term
// hash, so parallel wrappers and morsel workers intern without contending
// on a single lock. The reverse direction is lock-free: each shard
// publishes its append-only term slice behind an atomic pointer, so
// Lookup — the materialization hot path under a serving load — costs one
// atomic load and an index.
package dict

import (
	"sync"
	"sync/atomic"

	"ontario/internal/rdf"
)

// ID is a dictionary-encoded RDF term. The zero ID means "unbound" — it
// is never assigned to a term, so a columnar batch can use 0 directly as
// the absence marker of an OPTIONAL column.
type ID uint64

// Unbound is the reserved ID of an absent value.
const Unbound ID = 0

const (
	shardBits  = 4
	shardCount = 1 << shardBits // 16
	shardMask  = shardCount - 1
)

// Dict interns RDF terms into dense IDs and resolves them back. The zero
// value is not usable; call New.
type Dict struct {
	shards [shardCount]shard
}

type shard struct {
	mu  sync.RWMutex
	ids map[rdf.Term]ID
	// terms is the canonical ID->term slice, guarded by mu. Elements are
	// immutable once appended, so the published header (rterms) can be
	// read without the lock: a reader's header never covers an element
	// still being written.
	terms []rdf.Term
	// rterms is the published header of terms, re-stored after every
	// append (the elements are shared with the canonical slice).
	rterms atomic.Pointer[[]rdf.Term]
}

// New returns an empty dictionary.
func New() *Dict {
	d := &Dict{}
	for i := range d.shards {
		s := &d.shards[i]
		s.ids = make(map[rdf.Term]ID)
		var noTerms []rdf.Term
		s.rterms.Store(&noTerms)
	}
	return d
}

// hashTerm is FNV-1a over the term's fields; it only picks the shard, so
// speed matters more than quality.
func hashTerm(t rdf.Term) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(t.Kind)) * prime
	for i := 0; i < len(t.Value); i++ {
		h = (h ^ uint64(t.Value[i])) * prime
	}
	for i := 0; i < len(t.Datatype); i++ {
		h = (h ^ uint64(t.Datatype[i])) * prime
	}
	for i := 0; i < len(t.Lang); i++ {
		h = (h ^ uint64(t.Lang[i])) * prime
	}
	return h
}

// Intern returns the ID of t, assigning a fresh one on first sight.
func (d *Dict) Intern(t rdf.Term) ID {
	h := hashTerm(t) & shardMask
	s := &d.shards[h]
	s.mu.RLock()
	id, ok := s.ids[t]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	if id, ok = s.ids[t]; !ok {
		// ID layout: per-shard index in the high bits, shard in the low
		// bits, +1 so 0 stays reserved for Unbound.
		id = ID(uint64(len(s.terms))<<shardBits|h) + 1
		s.ids[t] = id
		s.terms = append(s.terms, t)
		terms := s.terms
		s.rterms.Store(&terms)
	}
	s.mu.Unlock()
	return id
}

// Lookup resolves an ID back to its term without locking. Looking up
// Unbound or an ID this dictionary never issued returns the zero term
// and false.
func (d *Dict) Lookup(id ID) (rdf.Term, bool) {
	if id == Unbound {
		return rdf.Term{}, false
	}
	v := uint64(id - 1)
	s := &d.shards[v&shardMask]
	idx := v >> shardBits
	terms := *s.rterms.Load()
	if idx < uint64(len(terms)) {
		return terms[idx], true
	}
	// The published header can lag an in-flight append only briefly; the
	// locked read settles whether the ID truly exists.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if idx >= uint64(len(s.terms)) {
		return rdf.Term{}, false
	}
	return s.terms[idx], true
}

// MustLookup resolves an ID, panicking on an ID the dictionary never
// issued (an engine invariant violation, not an input error).
func (d *Dict) MustLookup(id ID) rdf.Term {
	t, ok := d.Lookup(id)
	if !ok {
		panic("dict: lookup of unknown ID")
	}
	return t
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		n += len(s.terms)
		s.mu.RUnlock()
	}
	return n
}
