package dict

import (
	"fmt"
	"sync"
	"testing"

	"ontario/internal/rdf"
)

func TestInternLookupRoundTrip(t *testing.T) {
	d := New()
	terms := []rdf.Term{
		rdf.NewIRI("http://example.org/a"),
		rdf.NewIRI("http://example.org/b"),
		rdf.NewLiteral("hello"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
		rdf.NewLangLiteral("bonjour", "fr"),
		rdf.NewBlank("b0"),
		// Same lexical form, different kind/type: must get distinct IDs.
		rdf.NewLiteral("http://example.org/a"),
		rdf.NewTypedLiteral("hello", rdf.XSDString),
	}
	ids := make([]ID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Intern(tm)
		if ids[i] == Unbound {
			t.Fatalf("Intern(%v) returned Unbound", tm)
		}
	}
	seen := map[ID]bool{}
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate ID %d for distinct term %v", id, terms[i])
		}
		seen[id] = true
		got, ok := d.Lookup(id)
		if !ok || got != terms[i] {
			t.Fatalf("Lookup(%d) = %v, %v; want %v", id, got, ok, terms[i])
		}
	}
	// Re-interning returns the same IDs.
	for i, tm := range terms {
		if got := d.Intern(tm); got != ids[i] {
			t.Fatalf("re-Intern(%v) = %d, want %d", tm, got, ids[i])
		}
	}
	if d.Len() != len(terms) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(terms))
	}
}

func TestLookupUnknown(t *testing.T) {
	d := New()
	if _, ok := d.Lookup(Unbound); ok {
		t.Fatal("Lookup(Unbound) reported ok")
	}
	if _, ok := d.Lookup(ID(1 << 40)); ok {
		t.Fatal("Lookup of never-issued ID reported ok")
	}
}

func TestConcurrentInternIsConsistent(t *testing.T) {
	d := New()
	const goroutines = 8
	const terms = 512
	results := make([][]ID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]ID, terms)
			for i := 0; i < terms; i++ {
				ids[i] = d.Intern(rdf.NewIRI(fmt.Sprintf("http://example.org/%d", i)))
			}
			results[g] = ids
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d got ID %d for term %d, goroutine 0 got %d",
					g, results[g][i], i, results[0][i])
			}
		}
	}
	if d.Len() != terms {
		t.Fatalf("Len = %d, want %d", d.Len(), terms)
	}
}

// BenchmarkIntern measures interning a repeating working set (the common
// case: most terms of a batch are already in the dictionary).
func BenchmarkIntern(b *testing.B) {
	d := New()
	terms := make([]rdf.Term, 1024)
	for i := range terms {
		terms[i] = rdf.NewIRI(fmt.Sprintf("http://lake.tib.eu/entity/%d", i))
	}
	for _, tm := range terms {
		d.Intern(tm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Intern(terms[i&1023])
	}
}

// BenchmarkInternParallel measures interning under concurrency: every
// worker hammers the same hot working set, the contention profile of
// parallel wrappers feeding one execution's dictionary.
func BenchmarkInternParallel(b *testing.B) {
	d := New()
	terms := make([]rdf.Term, 1024)
	for i := range terms {
		terms[i] = rdf.NewIRI(fmt.Sprintf("http://lake.tib.eu/entity/%d", i))
	}
	for _, tm := range terms {
		d.Intern(tm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			d.Intern(terms[i&1023])
			i++
		}
	})
}

// BenchmarkLookup measures the late-materialization path.
func BenchmarkLookup(b *testing.B) {
	d := New()
	ids := make([]ID, 1024)
	for i := range ids {
		ids[i] = d.Intern(rdf.NewIRI(fmt.Sprintf("http://lake.tib.eu/entity/%d", i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup(ids[i&1023]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkLookupParallel measures concurrent materialization (several
// result writers resolving IDs at once).
func BenchmarkLookupParallel(b *testing.B) {
	d := New()
	ids := make([]ID, 1024)
	for i := range ids {
		ids[i] = d.Intern(rdf.NewIRI(fmt.Sprintf("http://lake.tib.eu/entity/%d", i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			d.Lookup(ids[i&1023])
			i++
		}
	})
}
