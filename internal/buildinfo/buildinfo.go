// Package buildinfo carries the binary's build identity for /healthz and
// startup logs. Version and Commit are meant to be stamped at link time:
//
//	go build -ldflags "-X ontario/internal/buildinfo.Version=v1.2.3 \
//	                   -X ontario/internal/buildinfo.Commit=abc1234" ./cmd/...
//
// When they are not stamped, Commit falls back to the VCS revision Go
// embeds in the build metadata (runtime/debug.ReadBuildInfo).
package buildinfo

import "runtime/debug"

// Version is the human-readable release version, stamped via -ldflags -X.
var Version = "dev"

// Commit is the VCS commit the binary was built from, stamped via
// -ldflags -X.
var Commit = ""

// Info returns the effective version and commit, consulting the embedded
// build metadata for anything not stamped at link time.
func Info() (version, commit string) {
	version, commit = Version, Commit
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, commit
	}
	if version == "dev" && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	if commit == "" {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				commit = s.Value
				break
			}
		}
	}
	return version, commit
}

// GoVersion returns the Go toolchain version the binary was built with.
func GoVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		return bi.GoVersion
	}
	return ""
}
