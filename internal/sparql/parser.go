package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"ontario/internal/rdf"
)

// Parse parses a SPARQL SELECT query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, q: &Query{Prefixes: map[string]string{}, Limit: -1}}
	if err := p.query(); err != nil {
		return nil, err
	}
	return p.q, nil
}

// MustParse is Parse that panics on error; intended for tests and
// compiled-in benchmark queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	pos  int
	q    *Query
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(k tokenKind) bool {
	if p.cur().kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, fmt.Errorf("sparql: expected %s, got %s", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) query() error {
	for p.keyword("PREFIX") {
		t, err := p.expect(tokPName, "prefix name")
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(t.text, ":")
		// tokPName carries "prefix:local"; for a PREFIX declaration the
		// local part must be empty.
		idx := strings.IndexByte(t.text, ':')
		name = t.text[:idx]
		if t.text[idx+1:] != "" {
			return fmt.Errorf("sparql: malformed PREFIX declaration %q", t.text)
		}
		iri, err := p.expect(tokIRI, "prefix IRI")
		if err != nil {
			return err
		}
		p.q.Prefixes[name] = iri.text
	}
	if !p.keyword("SELECT") {
		return fmt.Errorf("sparql: expected SELECT, got %s", p.cur())
	}
	if p.keyword("DISTINCT") {
		p.q.Distinct = true
	}
	if p.accept(tokStar) {
		// SELECT * — leave SelectVars empty.
	} else {
		for p.cur().kind == tokVar {
			p.q.SelectVars = append(p.q.SelectVars, p.next().text)
		}
		if len(p.q.SelectVars) == 0 {
			return fmt.Errorf("sparql: SELECT requires '*' or variables, got %s", p.cur())
		}
	}
	if !p.keyword("WHERE") {
		return fmt.Errorf("sparql: expected WHERE, got %s", p.cur())
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return err
	}
	if err := p.groupGraphPattern(); err != nil {
		return err
	}
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return err
	}
	if err := p.solutionModifiers(); err != nil {
		return err
	}
	if p.cur().kind != tokEOF {
		return fmt.Errorf("sparql: trailing input %s", p.cur())
	}
	return nil
}

func (p *parser) groupGraphPattern() error {
	for {
		switch {
		case p.cur().kind == tokRBrace || p.cur().kind == tokEOF:
			return nil
		case p.keyword("FILTER"):
			if _, err := p.expect(tokLParen, "'(' after FILTER"); err != nil {
				return err
			}
			e, err := p.orExpr()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen, "')' after FILTER expression"); err != nil {
				return err
			}
			p.q.Filters = append(p.q.Filters, e)
			p.accept(tokDot)
		case p.keyword("OPTIONAL"):
			if err := p.optionalGroup(); err != nil {
				return err
			}
			p.accept(tokDot)
		case p.cur().kind == tokLBrace:
			if err := p.unionGroup(); err != nil {
				return err
			}
			p.accept(tokDot)
		default:
			if err := p.triplesSameSubject(); err != nil {
				return err
			}
		}
	}
}

// bracedGroup parses "{ patterns / filters }" by temporarily redirecting
// pattern and filter collection; nested OPTIONAL/UNION inside the braces is
// rejected.
func (p *parser) bracedGroup(what string) (OptionalGroup, error) {
	if _, err := p.expect(tokLBrace, "'{' starting "+what); err != nil {
		return OptionalGroup{}, err
	}
	savedPatterns, savedFilters := p.q.Patterns, p.q.Filters
	savedOptionals, savedUnions := p.q.Optionals, p.q.Unions
	p.q.Patterns, p.q.Filters = nil, nil
	if err := p.groupGraphPattern(); err != nil {
		return OptionalGroup{}, err
	}
	if len(p.q.Optionals) != len(savedOptionals) || len(p.q.Unions) != len(savedUnions) {
		return OptionalGroup{}, fmt.Errorf("sparql: nested OPTIONAL/UNION inside %s is not supported", what)
	}
	og := OptionalGroup{Patterns: p.q.Patterns, Filters: p.q.Filters}
	p.q.Patterns, p.q.Filters = savedPatterns, savedFilters
	if len(og.Patterns) == 0 {
		return OptionalGroup{}, fmt.Errorf("sparql: empty %s", what)
	}
	if _, err := p.expect(tokRBrace, "'}' closing "+what); err != nil {
		return OptionalGroup{}, err
	}
	return og, nil
}

// optionalGroup parses "OPTIONAL { patterns / filters }".
func (p *parser) optionalGroup() error {
	og, err := p.bracedGroup("OPTIONAL group")
	if err != nil {
		return err
	}
	p.q.Optionals = append(p.q.Optionals, og)
	return nil
}

// unionGroup parses "{ A } UNION { B } [UNION { C } ...]".
func (p *parser) unionGroup() error {
	first, err := p.bracedGroup("group pattern")
	if err != nil {
		return err
	}
	ug := UnionGroup{Branches: []OptionalGroup{first}}
	for p.keyword("UNION") {
		br, err := p.bracedGroup("UNION branch")
		if err != nil {
			return err
		}
		ug.Branches = append(ug.Branches, br)
	}
	if len(ug.Branches) < 2 {
		return fmt.Errorf("sparql: a braced group must be part of a UNION")
	}
	p.q.Unions = append(p.q.Unions, ug)
	return nil
}

// triplesSameSubject parses "subject predicateObjectList ." including ';'
// and ',' abbreviations.
func (p *parser) triplesSameSubject() error {
	s, err := p.node("subject")
	if err != nil {
		return err
	}
	for {
		pr, err := p.verb()
		if err != nil {
			return err
		}
		for {
			o, err := p.node("object")
			if err != nil {
				return err
			}
			p.q.Patterns = append(p.q.Patterns, TriplePattern{S: s, P: pr, O: o})
			if !p.accept(tokComma) {
				break
			}
		}
		if !p.accept(tokSemi) {
			break
		}
		// allow trailing ';' before '.'
		if p.cur().kind == tokDot || p.cur().kind == tokRBrace {
			break
		}
	}
	if !p.accept(tokDot) && p.cur().kind != tokRBrace {
		return fmt.Errorf("sparql: expected '.' after triple, got %s", p.cur())
	}
	return nil
}

func (p *parser) verb() (Node, error) {
	if p.accept(tokA) {
		return TermNode(rdf.NewIRI(rdf.RDFType)), nil
	}
	return p.node("predicate")
}

func (p *parser) node(what string) (Node, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.pos++
		return VarNode(t.text), nil
	case tokIRI:
		p.pos++
		return TermNode(rdf.NewIRI(t.text)), nil
	case tokPName:
		p.pos++
		iri, err := p.expandPName(t.text)
		if err != nil {
			return Node{}, err
		}
		return TermNode(rdf.NewIRI(iri)), nil
	case tokString:
		p.pos++
		return TermNode(p.literalTail(t.text)), nil
	case tokNumber:
		p.pos++
		return TermNode(numberTerm(t.text)), nil
	default:
		return Node{}, fmt.Errorf("sparql: expected %s, got %s", what, t)
	}
}

// literalTail consumes an optional language tag or datatype after a string.
func (p *parser) literalTail(lex string) rdf.Term {
	switch p.cur().kind {
	case tokLangTag:
		return rdf.NewLangLiteral(lex, p.next().text)
	case tokDTypeM:
		p.pos++
		switch p.cur().kind {
		case tokIRI:
			return rdf.NewTypedLiteral(lex, p.next().text)
		case tokPName:
			iri, err := p.expandPName(p.next().text)
			if err == nil {
				return rdf.NewTypedLiteral(lex, iri)
			}
		}
		return rdf.NewLiteral(lex)
	default:
		return rdf.NewLiteral(lex)
	}
}

func numberTerm(text string) rdf.Term {
	if strings.ContainsAny(text, ".eE") {
		return rdf.NewTypedLiteral(text, rdf.XSDDouble)
	}
	return rdf.NewTypedLiteral(text, rdf.XSDInteger)
}

func (p *parser) expandPName(pname string) (string, error) {
	idx := strings.IndexByte(pname, ':')
	prefix, local := pname[:idx], pname[idx+1:]
	base, ok := p.q.Prefixes[prefix]
	if !ok {
		return "", fmt.Errorf("sparql: undeclared prefix %q", prefix)
	}
	return base + local, nil
}

// Expression grammar: or -> and -> unary -> primary.

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOr) {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &LogicExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAnd) {
		r, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		l = &LogicExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) relExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	var op CompareOp
	switch p.cur().kind {
	case tokEq:
		op = OpEq
	case tokNeq:
		op = OpNeq
	case tokLt:
		op = OpLt
	case tokLe:
		op = OpLe
	case tokGt:
		op = OpGt
	case tokGe:
		op = OpGe
	default:
		return l, nil
	}
	p.pos++
	r, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	return &CompareExpr{Op: op, L: l, R: r}, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tokBang) {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokLParen:
		p.pos++
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokVar:
		p.pos++
		return &VarExpr{Name: t.text}, nil
	case tokString:
		p.pos++
		return &ConstExpr{Term: p.literalTail(t.text)}, nil
	case tokNumber:
		p.pos++
		return &ConstExpr{Term: numberTerm(t.text)}, nil
	case tokIRI:
		p.pos++
		return &ConstExpr{Term: rdf.NewIRI(t.text)}, nil
	case tokPName:
		p.pos++
		iri, err := p.expandPName(t.text)
		if err != nil {
			return nil, err
		}
		return &ConstExpr{Term: rdf.NewIRI(iri)}, nil
	case tokIdent:
		// builtin function call
		p.pos++
		name := strings.ToUpper(t.text)
		if _, err := p.expect(tokLParen, "'(' after function name"); err != nil {
			return nil, err
		}
		var args []Expr
		if p.cur().kind != tokRParen {
			for {
				a, err := p.orExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokComma) {
					break
				}
			}
		}
		if _, err := p.expect(tokRParen, "')' after function arguments"); err != nil {
			return nil, err
		}
		return &FuncExpr{Name: name, Args: args}, nil
	default:
		return nil, fmt.Errorf("sparql: unexpected token %s in expression", t)
	}
}

func (p *parser) solutionModifiers() error {
	for {
		switch {
		case p.keyword("ORDER"):
			if !p.keyword("BY") {
				return fmt.Errorf("sparql: expected BY after ORDER")
			}
			for {
				if p.keyword("DESC") {
					if _, err := p.expect(tokLParen, "'(' after DESC"); err != nil {
						return err
					}
					v, err := p.expect(tokVar, "variable")
					if err != nil {
						return err
					}
					if _, err := p.expect(tokRParen, "')'"); err != nil {
						return err
					}
					p.q.OrderBy = append(p.q.OrderBy, OrderKey{Var: v.text, Desc: true})
					continue
				}
				if p.keyword("ASC") {
					if _, err := p.expect(tokLParen, "'(' after ASC"); err != nil {
						return err
					}
					v, err := p.expect(tokVar, "variable")
					if err != nil {
						return err
					}
					if _, err := p.expect(tokRParen, "')'"); err != nil {
						return err
					}
					p.q.OrderBy = append(p.q.OrderBy, OrderKey{Var: v.text})
					continue
				}
				if p.cur().kind == tokVar {
					p.q.OrderBy = append(p.q.OrderBy, OrderKey{Var: p.next().text})
					continue
				}
				break
			}
			if len(p.q.OrderBy) == 0 {
				return fmt.Errorf("sparql: empty ORDER BY")
			}
		case p.keyword("LIMIT"):
			t, err := p.expect(tokNumber, "limit count")
			if err != nil {
				return err
			}
			n, err := strconv.Atoi(t.text)
			if err != nil || n < 0 {
				return fmt.Errorf("sparql: bad LIMIT %q", t.text)
			}
			p.q.Limit = n
		case p.keyword("OFFSET"):
			t, err := p.expect(tokNumber, "offset count")
			if err != nil {
				return err
			}
			n, err := strconv.Atoi(t.text)
			if err != nil || n < 0 {
				return fmt.Errorf("sparql: bad OFFSET %q", t.text)
			}
			p.q.Offset = n
		default:
			return nil
		}
	}
}
