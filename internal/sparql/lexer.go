package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVar     // ?name
	tokIRI     // <...>
	tokPName   // prefix:local or :local
	tokString  // "..."
	tokNumber  // 123, 1.5, -2
	tokLBrace  // {
	tokRBrace  // }
	tokLParen  // (
	tokRParen  // )
	tokDot     // .
	tokSemi    // ;
	tokComma   // ,
	tokEq      // =
	tokNeq     // !=
	tokLt      // <  (disambiguated from IRI by lookahead)
	tokGt      // >
	tokLe      // <=
	tokGe      // >=
	tokAnd     // &&
	tokOr      // ||
	tokBang    // !
	tokStar    // *
	tokLangTag // @en
	tokDTypeM  // ^^
	tokA       // the keyword 'a' (rdf:type)
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	in   string
	pos  int
	toks []token
}

func lex(input string) ([]token, error) {
	l := &lexer{in: input}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

func (l *lexer) run() error {
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.in) {
			l.emit(tokEOF, "")
			return nil
		}
		start := l.pos
		c := l.in[l.pos]
		switch {
		case c == '{':
			l.pos++
			l.emit(tokLBrace, "{")
		case c == '}':
			l.pos++
			l.emit(tokRBrace, "}")
		case c == '(':
			l.pos++
			l.emit(tokLParen, "(")
		case c == ')':
			l.pos++
			l.emit(tokRParen, ")")
		case c == '.':
			l.pos++
			l.emit(tokDot, ".")
		case c == ';':
			l.pos++
			l.emit(tokSemi, ";")
		case c == ',':
			l.pos++
			l.emit(tokComma, ",")
		case c == '*':
			l.pos++
			l.emit(tokStar, "*")
		case c == '=':
			l.pos++
			l.emit(tokEq, "=")
		case c == '!':
			l.pos++
			if l.peekIs('=') {
				l.pos++
				l.emit(tokNeq, "!=")
			} else {
				l.emit(tokBang, "!")
			}
		case c == '&':
			l.pos++
			if !l.peekIs('&') {
				return fmt.Errorf("sparql: lex error at %d: single '&'", start)
			}
			l.pos++
			l.emit(tokAnd, "&&")
		case c == '|':
			l.pos++
			if !l.peekIs('|') {
				return fmt.Errorf("sparql: lex error at %d: single '|'", start)
			}
			l.pos++
			l.emit(tokOr, "||")
		case c == '>':
			l.pos++
			if l.peekIs('=') {
				l.pos++
				l.emit(tokGe, ">=")
			} else {
				l.emit(tokGt, ">")
			}
		case c == '<':
			if l.looksLikeIRI() {
				if err := l.lexIRI(); err != nil {
					return err
				}
			} else {
				l.pos++
				if l.peekIs('=') {
					l.pos++
					l.emit(tokLe, "<=")
				} else {
					l.emit(tokLt, "<")
				}
			}
		case c == '?' || c == '$':
			l.pos++
			name := l.takeWhile(isNameChar)
			if name == "" {
				return fmt.Errorf("sparql: lex error at %d: empty variable name", start)
			}
			l.emit(tokVar, name)
		case c == '"':
			if err := l.lexString(); err != nil {
				return err
			}
		case c == '@':
			l.pos++
			tag := l.takeWhile(func(r byte) bool {
				return r == '-' || unicode.IsLetter(rune(r)) || unicode.IsDigit(rune(r))
			})
			if tag == "" {
				return fmt.Errorf("sparql: lex error at %d: empty language tag", start)
			}
			l.emit(tokLangTag, tag)
		case c == '^':
			l.pos++
			if !l.peekIs('^') {
				return fmt.Errorf("sparql: lex error at %d: single '^'", start)
			}
			l.pos++
			l.emit(tokDTypeM, "^^")
		case c == '-' || c == '+' || isDigit(c):
			l.lexNumber()
		case isNameStart(c) || c == ':':
			l.lexIdentOrPName()
		default:
			return fmt.Errorf("sparql: lex error at %d: unexpected character %q", start, c)
		}
	}
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) peekIs(c byte) bool {
	return l.pos < len(l.in) && l.in[l.pos] == c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' {
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

// looksLikeIRI distinguishes '<' starting an IRIREF from the less-than
// operator: an IRIREF contains no whitespace before its closing '>'.
func (l *lexer) looksLikeIRI() bool {
	for i := l.pos + 1; i < len(l.in); i++ {
		c := l.in[i]
		if c == '>' {
			return true
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '"' {
			return false
		}
	}
	return false
}

func (l *lexer) lexIRI() error {
	l.pos++ // '<'
	start := l.pos
	for l.pos < len(l.in) && l.in[l.pos] != '>' {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return fmt.Errorf("sparql: unterminated IRI at %d", start)
	}
	iri := l.in[start:l.pos]
	l.pos++ // '>'
	l.emit(tokIRI, iri)
	return nil
}

func (l *lexer) lexString() error {
	l.pos++ // '"'
	var b strings.Builder
	for {
		if l.pos >= len(l.in) {
			return fmt.Errorf("sparql: unterminated string literal")
		}
		c := l.in[l.pos]
		l.pos++
		if c == '"' {
			break
		}
		if c == '\\' {
			if l.pos >= len(l.in) {
				return fmt.Errorf("sparql: dangling escape in string literal")
			}
			e := l.in[l.pos]
			l.pos++
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return fmt.Errorf("sparql: unsupported escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	l.emit(tokString, b.String())
	return nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.in[l.pos] == '-' || l.in[l.pos] == '+' {
		l.pos++
	}
	for l.pos < len(l.in) && (isDigit(l.in[l.pos]) || l.in[l.pos] == '.') {
		// A '.' followed by a non-digit terminates the number (it is the
		// triple terminator).
		if l.in[l.pos] == '.' && (l.pos+1 >= len(l.in) || !isDigit(l.in[l.pos+1])) {
			break
		}
		l.pos++
	}
	l.emit(tokNumber, l.in[start:l.pos])
}

func (l *lexer) lexIdentOrPName() {
	start := l.pos
	for l.pos < len(l.in) && (isNameChar(l.in[l.pos]) || l.in[l.pos] == '-') {
		l.pos++
	}
	word := l.in[start:l.pos]
	// prefixed name: word ':' local  (word may be empty for the default
	// prefix, handled by the ':' case below)
	if l.pos < len(l.in) && l.in[l.pos] == ':' {
		l.pos++
		lstart := l.pos
		for l.pos < len(l.in) && (isNameChar(l.in[l.pos]) || l.in[l.pos] == '-') {
			l.pos++
		}
		l.emit(tokPName, word+":"+l.in[lstart:l.pos])
		return
	}
	if word == "a" {
		l.emit(tokA, "a")
		return
	}
	l.emit(tokIdent, word)
}

func (l *lexer) takeWhile(pred func(byte) bool) string {
	start := l.pos
	for l.pos < len(l.in) && pred(l.in[l.pos]) {
		l.pos++
	}
	return l.in[start:l.pos]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool { return isNameStart(c) || isDigit(c) }
