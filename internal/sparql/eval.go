package sparql

import (
	"sort"

	"ontario/internal/rdf"
)

// EvalBGP evaluates a basic graph pattern against a graph and returns the
// solution bindings. Patterns are reordered greedily by estimated
// selectivity (bound positions first) before evaluation.
func EvalBGP(g *rdf.Graph, patterns []TriplePattern) []Binding {
	if len(patterns) == 0 {
		return []Binding{NewBinding()}
	}
	ordered := orderPatterns(g, patterns)
	solutions := []Binding{NewBinding()}
	for _, tp := range ordered {
		var next []Binding
		for _, b := range solutions {
			next = append(next, matchPattern(g, tp, b)...)
		}
		solutions = next
		if len(solutions) == 0 {
			return nil
		}
	}
	return solutions
}

// EvalQuery evaluates a full query (BGP + filters + modifiers) against a
// single graph. It is used by the RDF source wrapper and in tests as a
// reference implementation.
func EvalQuery(g *rdf.Graph, q *Query) []Binding {
	sols := EvalBGP(g, q.Patterns)
	for _, ug := range q.Unions {
		var ub []Binding
		for _, br := range ug.Branches {
			brSols := EvalBGP(g, br.Patterns)
			for _, b := range brSols {
				ok := true
				for _, f := range br.Filters {
					if !EvalBool(f, b) {
						ok = false
						break
					}
				}
				if ok {
					ub = append(ub, b)
				}
			}
		}
		sols = JoinBindings(sols, ub)
	}
	for _, og := range q.Optionals {
		sols = LeftJoinBindings(sols, EvalBGP(g, og.Patterns), og.Filters)
	}
	if len(q.Filters) > 0 {
		var kept []Binding
		for _, b := range sols {
			ok := true
			for _, f := range q.Filters {
				if !EvalBool(f, b) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, b)
			}
		}
		sols = kept
	}
	if len(q.SelectVars) > 0 {
		for i, b := range sols {
			sols[i] = b.Project(q.SelectVars)
		}
	}
	if q.Distinct {
		seen := map[string]bool{}
		var kept []Binding
		for _, b := range sols {
			k := b.FullKey()
			if !seen[k] {
				seen[k] = true
				kept = append(kept, b)
			}
		}
		sols = kept
	}
	if len(q.OrderBy) > 0 {
		SortBindings(sols, q.OrderBy)
	}
	if q.Offset > 0 {
		if q.Offset >= len(sols) {
			sols = nil
		} else {
			sols = sols[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(sols) {
		sols = sols[:q.Limit]
	}
	return sols
}

// JoinBindings joins two solution sequences on compatibility (the SPARQL
// Join operator).
func JoinBindings(left, right []Binding) []Binding {
	var out []Binding
	for _, l := range left {
		for _, r := range right {
			if l.Compatible(r) {
				out = append(out, l.Merge(r))
			}
		}
	}
	return out
}

// LeftJoinBindings implements the SPARQL LeftJoin operator: every left
// binding is extended with each compatible right binding that satisfies the
// filters; left bindings with no such extension survive unextended.
func LeftJoinBindings(left, right []Binding, filters []Expr) []Binding {
	var out []Binding
	for _, l := range left {
		matched := false
		for _, r := range right {
			if !l.Compatible(r) {
				continue
			}
			m := l.Merge(r)
			ok := true
			for _, f := range filters {
				if !EvalBool(f, m) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, m)
				matched = true
			}
		}
		if !matched {
			out = append(out, l)
		}
	}
	return out
}

// SortBindings sorts bindings in place by the given order keys.
func SortBindings(sols []Binding, keys []OrderKey) {
	sort.SliceStable(sols, func(i, j int) bool {
		for _, k := range keys {
			c := compareTermsForOrder(sols[i][k.Var], sols[j][k.Var])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// CompareOrderTerms compares two terms with ORDER BY semantics (numeric
// when both coerce to numbers, lexical otherwise); it backs SortBindings
// and the columnar ORDER BY operator.
func CompareOrderTerms(a, b rdf.Term) int { return compareTermsForOrder(a, b) }

func compareTermsForOrder(a, b rdf.Term) int {
	av, bv := TermValue(a), TermValue(b)
	if av.Kind == ValNumber && bv.Kind == ValNumber {
		switch {
		case av.Num < bv.Num:
			return -1
		case av.Num > bv.Num:
			return 1
		default:
			return 0
		}
	}
	al, bl := a.Value, b.Value
	switch {
	case al < bl:
		return -1
	case al > bl:
		return 1
	default:
		return 0
	}
}

// orderPatterns reorders triple patterns greedily: start with the most
// selective pattern (fewest graph matches), then repeatedly pick the pattern
// sharing a variable with the already-chosen set that has the fewest
// matches, falling back to the globally cheapest remaining pattern.
func orderPatterns(g *rdf.Graph, patterns []TriplePattern) []TriplePattern {
	if len(patterns) <= 1 {
		return patterns
	}
	remaining := append([]TriplePattern(nil), patterns...)
	cost := func(tp TriplePattern) int {
		s, p, o := boundTerm(tp.S), boundTerm(tp.P), boundTerm(tp.O)
		return g.Count(s, p, o)
	}
	var out []TriplePattern
	bound := map[string]bool{}
	pick := func(onlyConnected bool) int {
		best, bestCost := -1, 0
		for i, tp := range remaining {
			if onlyConnected && !sharesVar(tp, bound) {
				continue
			}
			c := cost(tp)
			if best == -1 || c < bestCost {
				best, bestCost = i, c
			}
		}
		return best
	}
	for len(remaining) > 0 {
		i := -1
		if len(out) > 0 {
			i = pick(true)
		}
		if i == -1 {
			i = pick(false)
		}
		tp := remaining[i]
		remaining = append(remaining[:i], remaining[i+1:]...)
		out = append(out, tp)
		for _, v := range tp.Vars() {
			bound[v] = true
		}
	}
	return out
}

func sharesVar(tp TriplePattern, bound map[string]bool) bool {
	for _, v := range tp.Vars() {
		if bound[v] {
			return true
		}
	}
	return false
}

func boundTerm(n Node) *rdf.Term {
	if n.IsVar {
		return nil
	}
	t := n.Term
	return &t
}

// matchPattern extends binding b with all matches of tp in g.
func matchPattern(g *rdf.Graph, tp TriplePattern, b Binding) []Binding {
	s := resolve(tp.S, b)
	p := resolve(tp.P, b)
	o := resolve(tp.O, b)
	triples := g.Match(s, p, o)
	out := make([]Binding, 0, len(triples))
	for _, t := range triples {
		nb := b
		copied := false
		ok := true
		for _, bind := range []struct {
			n Node
			t rdf.Term
		}{{tp.S, t.S}, {tp.P, t.P}, {tp.O, t.O}} {
			if !bind.n.IsVar {
				continue
			}
			if cur, bound := nb[bind.n.Var]; bound {
				if cur != bind.t {
					ok = false
					break
				}
				continue
			}
			if !copied {
				nb = nb.Copy()
				copied = true
			}
			nb[bind.n.Var] = bind.t
		}
		if ok {
			if !copied {
				nb = nb.Copy()
			}
			out = append(out, nb)
		}
	}
	return out
}

func resolve(n Node, b Binding) *rdf.Term {
	if !n.IsVar {
		t := n.Term
		return &t
	}
	if t, ok := b[n.Var]; ok {
		return &t
	}
	return nil
}
