package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ontario/internal/rdf"
)

// randomGraph builds a deterministic random graph over small vocabularies.
func randomGraph(seed int64, n int) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://s/%d", rng.Intn(12)))
		p := rdf.NewIRI(fmt.Sprintf("http://p/%d", rng.Intn(4)))
		var o rdf.Term
		if rng.Intn(2) == 0 {
			o = rdf.NewIRI(fmt.Sprintf("http://s/%d", rng.Intn(12)))
		} else {
			o = rdf.IntLiteral(int64(rng.Intn(6)))
		}
		g.Add(rdf.Triple{S: s, P: p, O: o})
	}
	return g
}

// bruteForceBGP enumerates all solutions without index-based ordering: it
// extends bindings pattern-by-pattern in the written order over the full
// triple list.
func bruteForceBGP(g *rdf.Graph, patterns []TriplePattern) []Binding {
	sols := []Binding{NewBinding()}
	all := g.Triples()
	for _, tp := range patterns {
		var next []Binding
		for _, b := range sols {
			for _, tr := range all {
				nb, ok := tryExtend(b, tp, tr)
				if ok {
					next = append(next, nb)
				}
			}
		}
		sols = next
	}
	return sols
}

func tryExtend(b Binding, tp TriplePattern, tr rdf.Triple) (Binding, bool) {
	nb := b.Copy()
	for _, pair := range []struct {
		n Node
		t rdf.Term
	}{{tp.S, tr.S}, {tp.P, tr.P}, {tp.O, tr.O}} {
		if pair.n.IsVar {
			if cur, ok := nb[pair.n.Var]; ok {
				if cur != pair.t {
					return nil, false
				}
			} else {
				nb[pair.n.Var] = pair.t
			}
			continue
		}
		if pair.n.Term != pair.t {
			return nil, false
		}
	}
	return nb, true
}

func sortedFullKeys(bs []Binding) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.FullKey()
	}
	sort.Strings(out)
	return out
}

// TestQuickBGPMatchesBruteForce: the index-driven, reordered BGP evaluator
// agrees with brute-force enumeration on random graphs and patterns.
func TestQuickBGPMatchesBruteForce(t *testing.T) {
	f := func(seed int64, shape uint8) bool {
		g := randomGraph(seed%1000, 60)
		var patterns []TriplePattern
		switch shape % 4 {
		case 0: // single star
			patterns = []TriplePattern{
				{S: VarNode("x"), P: TermNode(rdf.NewIRI("http://p/0")), O: VarNode("a")},
				{S: VarNode("x"), P: TermNode(rdf.NewIRI("http://p/1")), O: VarNode("b")},
			}
		case 1: // path
			patterns = []TriplePattern{
				{S: VarNode("x"), P: TermNode(rdf.NewIRI("http://p/0")), O: VarNode("y")},
				{S: VarNode("y"), P: TermNode(rdf.NewIRI("http://p/1")), O: VarNode("z")},
			}
		case 2: // constant object
			patterns = []TriplePattern{
				{S: VarNode("x"), P: VarNode("p"), O: TermNode(rdf.IntLiteral(int64(shape % 6)))},
			}
		default: // triangle-ish with repeated var
			patterns = []TriplePattern{
				{S: VarNode("x"), P: TermNode(rdf.NewIRI("http://p/2")), O: VarNode("y")},
				{S: VarNode("y"), P: TermNode(rdf.NewIRI("http://p/3")), O: VarNode("x")},
			}
		}
		got := sortedFullKeys(EvalBGP(g, patterns))
		want := sortedFullKeys(bruteForceBGP(g, patterns))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestExprThreeValuedLogic covers SPARQL's error propagation in && and ||.
func TestExprThreeValuedLogic(t *testing.T) {
	// ?u is unbound: (?u > 1) is an error.
	errE := &CompareExpr{Op: OpGt, L: &VarExpr{Name: "u"}, R: &ConstExpr{Term: rdf.IntLiteral(1)}}
	trueE := &ConstExpr{Term: rdf.BoolLiteral(true)}
	falseE := &ConstExpr{Term: rdf.BoolLiteral(false)}
	b := NewBinding()

	// error && false = false; error && true = error; error || true = true;
	// error || false = error.
	if v, err := (&LogicExpr{Op: OpAnd, L: errE, R: falseE}).Eval(b); err != nil || v.Bool {
		t.Errorf("err && false = %v/%v, want false", v, err)
	}
	if _, err := (&LogicExpr{Op: OpAnd, L: errE, R: trueE}).Eval(b); err == nil {
		t.Error("err && true should be an error")
	}
	if v, err := (&LogicExpr{Op: OpOr, L: errE, R: trueE}).Eval(b); err != nil || !v.Bool {
		t.Errorf("err || true = %v/%v, want true", v, err)
	}
	if _, err := (&LogicExpr{Op: OpOr, L: errE, R: falseE}).Eval(b); err == nil {
		t.Error("err || false should be an error")
	}
}

func TestExprNumericStringMismatch(t *testing.T) {
	b := Binding{"x": rdf.NewLiteral("abc")}
	e := &CompareExpr{Op: OpLt, L: &VarExpr{Name: "x"}, R: &ConstExpr{Term: rdf.IntLiteral(3)}}
	if EvalBool(e, b) {
		t.Error("string < int should not hold")
	}
	// IRI equality works, ordering does not.
	b2 := Binding{"x": rdf.NewIRI("http://a")}
	eq := &CompareExpr{Op: OpEq, L: &VarExpr{Name: "x"}, R: &ConstExpr{Term: rdf.NewIRI("http://a")}}
	if !EvalBool(eq, b2) {
		t.Error("IRI equality failed")
	}
	lt := &CompareExpr{Op: OpLt, L: &VarExpr{Name: "x"}, R: &ConstExpr{Term: rdf.NewIRI("http://b")}}
	if EvalBool(lt, b2) {
		t.Error("IRI ordering should be an error (false)")
	}
}

func TestExprVars(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s ?p ?o . FILTER (?a > 1 && (CONTAINS(?b, "x") || ?a < ?c)) }`)
	vars := q.Filters[0].Vars()
	sort.Strings(vars)
	want := []string{"a", "b", "c"}
	if len(vars) != 3 {
		t.Fatalf("Vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestValueEBV(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want bool
		err  bool
	}{
		{BoolValue(true), true, false},
		{BoolValue(false), false, false},
		{NumberValue(0), false, false},
		{NumberValue(2.5), true, false},
		{StringValue(""), false, false},
		{StringValue("x"), true, false},
		{Null, false, true},
		{Value{Kind: ValTerm, Term: rdf.NewIRI("http://x")}, false, true},
	} {
		got, err := tc.v.EBV()
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("EBV(%v) = %v/%v, want %v/err=%v", tc.v, got, err, tc.want, tc.err)
		}
	}
}
