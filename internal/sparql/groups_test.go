package sparql

import (
	"strings"
	"testing"

	"ontario/internal/rdf"
)

func groupsGraph() *rdf.Graph {
	g := rdf.NewGraph()
	p1, p2, p3 := rdf.NewIRI("http://p/1"), rdf.NewIRI("http://p/2"), rdf.NewIRI("http://p/3")
	e := func(i string) rdf.Term { return rdf.NewIRI("http://e/" + i) }
	g.Add(rdf.Triple{S: e("a"), P: p1, O: rdf.IntLiteral(1)})
	g.Add(rdf.Triple{S: e("b"), P: p1, O: rdf.IntLiteral(2)})
	g.Add(rdf.Triple{S: e("c"), P: p1, O: rdf.IntLiteral(3)})
	g.Add(rdf.Triple{S: e("a"), P: p2, O: rdf.NewLiteral("x")})
	g.Add(rdf.Triple{S: e("b"), P: p3, O: rdf.NewLiteral("y")})
	return g
}

func TestEvalQueryOptional(t *testing.T) {
	g := groupsGraph()
	q := MustParse(`SELECT ?s ?v ?x WHERE {
		?s <http://p/1> ?v .
		OPTIONAL { ?s <http://p/2> ?x . }
	}`)
	sols := EvalQuery(g, q)
	if len(sols) != 3 {
		t.Fatalf("got %d solutions, want 3: %v", len(sols), sols)
	}
	extended := 0
	for _, s := range sols {
		if _, ok := s["x"]; ok {
			extended++
		}
	}
	if extended != 1 {
		t.Fatalf("extended = %d, want 1", extended)
	}
}

func TestEvalQueryOptionalWithFilter(t *testing.T) {
	g := groupsGraph()
	// The filter rejects the only candidate extension, so all rows stay
	// unextended.
	q := MustParse(`SELECT ?s ?x WHERE {
		?s <http://p/1> ?v .
		OPTIONAL { ?s <http://p/2> ?x . FILTER (?x = "nope") }
	}`)
	sols := EvalQuery(g, q)
	if len(sols) != 3 {
		t.Fatalf("got %d, want 3", len(sols))
	}
	for _, s := range sols {
		if _, ok := s["x"]; ok {
			t.Fatalf("extension survived a failing filter: %v", s)
		}
	}
}

func TestEvalQueryUnion(t *testing.T) {
	g := groupsGraph()
	q := MustParse(`SELECT ?s ?w WHERE {
		?s <http://p/1> ?v .
		{ ?s <http://p/2> ?w . } UNION { ?s <http://p/3> ?w . }
	}`)
	sols := EvalQuery(g, q)
	if len(sols) != 2 {
		t.Fatalf("got %d, want 2: %v", len(sols), sols)
	}
	vals := map[string]bool{}
	for _, s := range sols {
		vals[s["w"].Value] = true
	}
	if !vals["x"] || !vals["y"] {
		t.Fatalf("union values = %v", vals)
	}
}

func TestEvalQueryUnionBranchFilters(t *testing.T) {
	g := groupsGraph()
	q := MustParse(`SELECT ?s WHERE {
		{ ?s <http://p/1> ?v . FILTER (?v > 2) }
		UNION
		{ ?s <http://p/1> ?v . FILTER (?v = 1) }
	}`)
	sols := EvalQuery(g, q)
	if len(sols) != 2 {
		t.Fatalf("got %d, want 2 (v=3 and v=1): %v", len(sols), sols)
	}
}

func TestJoinBindings(t *testing.T) {
	l := []Binding{{"a": rdf.IntLiteral(1)}, {"a": rdf.IntLiteral(2)}}
	r := []Binding{{"a": rdf.IntLiteral(1), "b": rdf.IntLiteral(9)}, {"b": rdf.IntLiteral(8)}}
	got := JoinBindings(l, r)
	// (a=1)⋈(a=1,b=9), (a=1)⋈(b=8), (a=2)⋈(b=8): 3 results.
	if len(got) != 3 {
		t.Fatalf("join = %d, want 3: %v", len(got), got)
	}
}

func TestLeftJoinBindingsEmptyRight(t *testing.T) {
	l := []Binding{{"a": rdf.IntLiteral(1)}}
	got := LeftJoinBindings(l, nil, nil)
	if len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("left join with empty right = %v", got)
	}
}

func TestQueryStringWithGroups(t *testing.T) {
	q := MustParse(`SELECT ?s WHERE {
		?s <http://p/1> ?v .
		{ ?s <http://p/2> ?w . } UNION { ?s <http://p/3> ?w . }
		OPTIONAL { ?s <http://p/2> ?x . FILTER (?x != "q") }
		FILTER (?v > 0)
	} ORDER BY DESC(?v) LIMIT 3 OFFSET 1`)
	out := q.String()
	for _, want := range []string{"UNION", "OPTIONAL", "FILTER", "ORDER BY DESC(?v)", "LIMIT 3", "OFFSET 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	q2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, out)
	}
	if len(q2.Unions) != 1 || len(q2.Optionals) != 1 || q2.Limit != 3 || q2.Offset != 1 {
		t.Errorf("round trip lost structure: %+v", q2)
	}
	if len(q2.OrderBy) != 1 || !q2.OrderBy[0].Desc {
		t.Errorf("order by lost: %+v", q2.OrderBy)
	}
}

func TestVariablesIncludeGroups(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?s <http://p/1> ?v .
		{ ?s <http://p/2> ?u . } UNION { ?s <http://p/3> ?u . }
		OPTIONAL { ?s <http://p/2> ?o . }
	}`)
	vars := q.Variables()
	want := map[string]bool{"s": true, "v": true, "u": true, "o": true}
	if len(vars) != len(want) {
		t.Fatalf("Variables = %v", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Fatalf("unexpected variable %s", v)
		}
	}
}

func TestSolutionModifierASC(t *testing.T) {
	g := groupsGraph()
	q := MustParse(`SELECT ?s ?v WHERE { ?s <http://p/1> ?v . } ORDER BY ASC(?v)`)
	sols := EvalQuery(g, q)
	for i := 1; i < len(sols); i++ {
		a, b := sols[i-1]["v"], sols[i]["v"]
		if TermValue(a).Num > TermValue(b).Num {
			t.Fatalf("ASC order violated: %v", sols)
		}
	}
}

func TestLiteralTailDatatypes(t *testing.T) {
	q := MustParse(`PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
	SELECT * WHERE {
		?s ?p "5"^^xsd:integer .
		?s ?q "hi"@en .
		?s ?r "typed"^^<http://dt/custom> .
	}`)
	if q.Patterns[0].O.Term.Datatype != rdf.XSDInteger {
		t.Errorf("pname datatype = %s", q.Patterns[0].O.Term.Datatype)
	}
	if q.Patterns[1].O.Term.Lang != "en" {
		t.Errorf("lang = %s", q.Patterns[1].O.Term.Lang)
	}
	if q.Patterns[2].O.Term.Datatype != "http://dt/custom" {
		t.Errorf("iri datatype = %s", q.Patterns[2].O.Term.Datatype)
	}
}

func TestStringEscapesInQuery(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s ?p "a\"b\\c\nd\te" . }`)
	if q.Patterns[0].O.Term.Value != "a\"b\\c\nd\te" {
		t.Errorf("escapes = %q", q.Patterns[0].O.Term.Value)
	}
}

func TestExprStringRenderings(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s ?p ?o . FILTER (!(?a > 1) && CONTAINS(?b, "x") || ?c = <http://e/1>) }`)
	out := q.Filters[0].String()
	for _, want := range []string{"!(", "CONTAINS(?b", "<http://e/1>", "||", "&&"} {
		if !strings.Contains(out, want) {
			t.Errorf("expr String() missing %q: %s", want, out)
		}
	}
}

func TestSSQStringAndNodeString(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s <http://p/1> "lit" . }`)
	if got := q.Patterns[0].String(); !strings.Contains(got, "?s") || !strings.Contains(got, `"lit"`) {
		t.Errorf("pattern String = %s", got)
	}
}
