package sparql

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"ontario/internal/rdf"
)

// Expr is a SPARQL filter expression. Eval returns the value of the
// expression under a binding; EBV coercion is applied by callers that need a
// boolean (see EvalBool).
type Expr interface {
	Eval(b Binding) (Value, error)
	// Vars returns the variables the expression references.
	Vars() []string
	String() string
}

// ValueKind enumerates the runtime value kinds of expression evaluation.
type ValueKind int

const (
	// ValNull marks an error value (unbound variable, type error); filters
	// evaluating to ValNull reject the solution, per SPARQL semantics.
	ValNull ValueKind = iota
	ValBool
	ValNumber
	ValString
	ValTerm // a non-literal RDF term (IRI or blank node)
)

// Value is the result of expression evaluation.
type Value struct {
	Kind ValueKind
	Bool bool
	Num  float64
	Str  string
	Term rdf.Term
}

// Null is the error value.
var Null = Value{Kind: ValNull}

// BoolValue wraps a bool.
func BoolValue(b bool) Value { return Value{Kind: ValBool, Bool: b} }

// NumberValue wraps a number.
func NumberValue(f float64) Value { return Value{Kind: ValNumber, Num: f} }

// StringValue wraps a string.
func StringValue(s string) Value { return Value{Kind: ValString, Str: s} }

// TermValue wraps an RDF term, coercing literals to their typed value.
func TermValue(t rdf.Term) Value {
	if t.Kind != rdf.TermLiteral {
		return Value{Kind: ValTerm, Term: t}
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		if f, err := strconv.ParseFloat(t.Value, 64); err == nil {
			return NumberValue(f)
		}
		return Null
	case rdf.XSDBoolean:
		switch t.Value {
		case "true", "1":
			return BoolValue(true)
		case "false", "0":
			return BoolValue(false)
		}
		return Null
	default:
		return StringValue(t.Value)
	}
}

// EBV returns the SPARQL effective boolean value of v.
func (v Value) EBV() (bool, error) {
	switch v.Kind {
	case ValBool:
		return v.Bool, nil
	case ValNumber:
		return v.Num != 0, nil
	case ValString:
		return v.Str != "", nil
	case ValNull:
		return false, fmt.Errorf("sparql: type error in effective boolean value")
	default:
		return false, fmt.Errorf("sparql: EBV of non-literal term %s", v.Term)
	}
}

// EvalBool evaluates e under b and applies EBV coercion. Errors (including
// unbound variables) yield false, matching SPARQL filter semantics.
func EvalBool(e Expr, b Binding) bool {
	v, err := e.Eval(b)
	if err != nil {
		return false
	}
	ok, err := v.EBV()
	return err == nil && ok
}

// VarExpr references a variable.
type VarExpr struct{ Name string }

// Eval implements Expr.
func (e *VarExpr) Eval(b Binding) (Value, error) {
	t, ok := b[e.Name]
	if !ok {
		return Null, fmt.Errorf("sparql: unbound variable ?%s", e.Name)
	}
	return TermValue(t), nil
}

// Vars implements Expr.
func (e *VarExpr) Vars() []string { return []string{e.Name} }

func (e *VarExpr) String() string { return "?" + e.Name }

// ConstExpr is a constant RDF term.
type ConstExpr struct{ Term rdf.Term }

// Eval implements Expr.
func (e *ConstExpr) Eval(Binding) (Value, error) { return TermValue(e.Term), nil }

// Vars implements Expr.
func (e *ConstExpr) Vars() []string { return nil }

func (e *ConstExpr) String() string { return e.Term.String() }

// CompareOp enumerates comparison operators.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	default:
		return ">="
	}
}

// CompareExpr is a binary comparison.
type CompareExpr struct {
	Op   CompareOp
	L, R Expr
}

// Eval implements Expr.
func (e *CompareExpr) Eval(b Binding) (Value, error) {
	lv, err := e.L.Eval(b)
	if err != nil {
		return Null, err
	}
	rv, err := e.R.Eval(b)
	if err != nil {
		return Null, err
	}
	cmp, eqOnly, err := compareValues(lv, rv)
	if err != nil {
		return Null, err
	}
	if eqOnly && e.Op != OpEq && e.Op != OpNeq {
		return Null, fmt.Errorf("sparql: ordering not defined for operands")
	}
	switch e.Op {
	case OpEq:
		return BoolValue(cmp == 0), nil
	case OpNeq:
		return BoolValue(cmp != 0), nil
	case OpLt:
		return BoolValue(cmp < 0), nil
	case OpLe:
		return BoolValue(cmp <= 0), nil
	case OpGt:
		return BoolValue(cmp > 0), nil
	default:
		return BoolValue(cmp >= 0), nil
	}
}

// compareValues compares two values, returning (-1|0|1, whether only
// equality is meaningful, error).
func compareValues(l, r Value) (cmp int, eqOnly bool, err error) {
	if l.Kind == ValNull || r.Kind == ValNull {
		return 0, false, fmt.Errorf("sparql: comparison with error value")
	}
	if l.Kind == ValNumber && r.Kind == ValNumber {
		switch {
		case l.Num < r.Num:
			return -1, false, nil
		case l.Num > r.Num:
			return 1, false, nil
		default:
			return 0, false, nil
		}
	}
	if l.Kind == ValString && r.Kind == ValString {
		return strings.Compare(l.Str, r.Str), false, nil
	}
	if l.Kind == ValBool && r.Kind == ValBool {
		switch {
		case l.Bool == r.Bool:
			return 0, true, nil
		default:
			return 1, true, nil
		}
	}
	if l.Kind == ValTerm && r.Kind == ValTerm {
		if l.Term == r.Term {
			return 0, true, nil
		}
		return 1, true, nil
	}
	return 0, false, fmt.Errorf("sparql: incomparable operand kinds")
}

// Vars implements Expr.
func (e *CompareExpr) Vars() []string { return unionVars(e.L.Vars(), e.R.Vars()) }

func (e *CompareExpr) String() string {
	return e.L.String() + " " + e.Op.String() + " " + e.R.String()
}

// LogicOp enumerates && and ||.
type LogicOp int

// Logical operators.
const (
	OpAnd LogicOp = iota
	OpOr
)

// LogicExpr is a binary logical expression with SPARQL three-valued
// semantics.
type LogicExpr struct {
	Op   LogicOp
	L, R Expr
}

// Eval implements Expr.
func (e *LogicExpr) Eval(b Binding) (Value, error) {
	lv, lerr := evalEBV(e.L, b)
	rv, rerr := evalEBV(e.R, b)
	if e.Op == OpAnd {
		switch {
		case lerr == nil && rerr == nil:
			return BoolValue(lv && rv), nil
		case lerr == nil && !lv:
			return BoolValue(false), nil
		case rerr == nil && !rv:
			return BoolValue(false), nil
		default:
			return Null, fmt.Errorf("sparql: error in && operand")
		}
	}
	switch {
	case lerr == nil && rerr == nil:
		return BoolValue(lv || rv), nil
	case lerr == nil && lv:
		return BoolValue(true), nil
	case rerr == nil && rv:
		return BoolValue(true), nil
	default:
		return Null, fmt.Errorf("sparql: error in || operand")
	}
}

func evalEBV(e Expr, b Binding) (bool, error) {
	v, err := e.Eval(b)
	if err != nil {
		return false, err
	}
	return v.EBV()
}

// Vars implements Expr.
func (e *LogicExpr) Vars() []string { return unionVars(e.L.Vars(), e.R.Vars()) }

func (e *LogicExpr) String() string {
	op := " && "
	if e.Op == OpOr {
		op = " || "
	}
	return "(" + e.L.String() + op + e.R.String() + ")"
}

// NotExpr is logical negation.
type NotExpr struct{ X Expr }

// Eval implements Expr.
func (e *NotExpr) Eval(b Binding) (Value, error) {
	v, err := evalEBV(e.X, b)
	if err != nil {
		return Null, err
	}
	return BoolValue(!v), nil
}

// Vars implements Expr.
func (e *NotExpr) Vars() []string { return e.X.Vars() }

func (e *NotExpr) String() string { return "!(" + e.X.String() + ")" }

// FuncExpr is a builtin function call. Supported: REGEX, CONTAINS,
// STRSTARTS, STRENDS, STR, BOUND, LANG, DATATYPE, UCASE, LCASE, STRLEN.
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
}

// Eval implements Expr.
func (e *FuncExpr) Eval(b Binding) (Value, error) {
	switch e.Name {
	case "BOUND":
		v, ok := e.Args[0].(*VarExpr)
		if !ok {
			return Null, fmt.Errorf("sparql: BOUND requires a variable")
		}
		_, bound := b[v.Name]
		return BoolValue(bound), nil
	case "REGEX":
		s, err := e.argString(0, b)
		if err != nil {
			return Null, err
		}
		pat, err := e.argString(1, b)
		if err != nil {
			return Null, err
		}
		flags := ""
		if len(e.Args) > 2 {
			flags, err = e.argString(2, b)
			if err != nil {
				return Null, err
			}
		}
		if strings.Contains(flags, "i") {
			pat = "(?i)" + pat
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return Null, fmt.Errorf("sparql: bad REGEX pattern: %w", err)
		}
		return BoolValue(re.MatchString(s)), nil
	case "CONTAINS":
		return e.binaryString(b, strings.Contains)
	case "STRSTARTS":
		return e.binaryString(b, strings.HasPrefix)
	case "STRENDS":
		return e.binaryString(b, strings.HasSuffix)
	case "STR":
		v, err := e.Args[0].Eval(b)
		if err != nil {
			return Null, err
		}
		return StringValue(valueLexical(v)), nil
	case "UCASE":
		s, err := e.argString(0, b)
		if err != nil {
			return Null, err
		}
		return StringValue(strings.ToUpper(s)), nil
	case "LCASE":
		s, err := e.argString(0, b)
		if err != nil {
			return Null, err
		}
		return StringValue(strings.ToLower(s)), nil
	case "STRLEN":
		s, err := e.argString(0, b)
		if err != nil {
			return Null, err
		}
		return NumberValue(float64(len([]rune(s)))), nil
	case "LANG":
		v, ok := e.Args[0].(*VarExpr)
		if !ok {
			return Null, fmt.Errorf("sparql: LANG requires a variable")
		}
		t, bound := b[v.Name]
		if !bound || t.Kind != rdf.TermLiteral {
			return Null, fmt.Errorf("sparql: LANG of non-literal")
		}
		return StringValue(t.Lang), nil
	case "DATATYPE":
		v, ok := e.Args[0].(*VarExpr)
		if !ok {
			return Null, fmt.Errorf("sparql: DATATYPE requires a variable")
		}
		t, bound := b[v.Name]
		if !bound || t.Kind != rdf.TermLiteral {
			return Null, fmt.Errorf("sparql: DATATYPE of non-literal")
		}
		dt := t.Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return Value{Kind: ValTerm, Term: rdf.NewIRI(dt)}, nil
	default:
		return Null, fmt.Errorf("sparql: unsupported function %s", e.Name)
	}
}

func (e *FuncExpr) binaryString(b Binding, f func(string, string) bool) (Value, error) {
	s, err := e.argString(0, b)
	if err != nil {
		return Null, err
	}
	t, err := e.argString(1, b)
	if err != nil {
		return Null, err
	}
	return BoolValue(f(s, t)), nil
}

func (e *FuncExpr) argString(i int, b Binding) (string, error) {
	if i >= len(e.Args) {
		return "", fmt.Errorf("sparql: %s: missing argument %d", e.Name, i)
	}
	v, err := e.Args[i].Eval(b)
	if err != nil {
		return "", err
	}
	if v.Kind == ValString {
		return v.Str, nil
	}
	return "", fmt.Errorf("sparql: %s: argument %d is not a string", e.Name, i)
}

func valueLexical(v Value) string {
	switch v.Kind {
	case ValString:
		return v.Str
	case ValNumber:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case ValBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case ValTerm:
		return v.Term.Value
	default:
		return ""
	}
}

// Vars implements Expr.
func (e *FuncExpr) Vars() []string {
	var out []string
	for _, a := range e.Args {
		out = unionVars(out, a.Vars())
	}
	return out
}

func (e *FuncExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

func unionVars(a, b []string) []string {
	seen := make(map[string]bool, len(a))
	out := append([]string(nil), a...)
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
