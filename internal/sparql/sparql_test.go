package sparql

import (
	"strings"
	"testing"

	"ontario/internal/rdf"
)

const exampleQuery = `
PREFIX dise: <http://example.org/diseasome/>
PREFIX affy: <http://example.org/affymetrix/>
SELECT DISTINCT ?gene ?disease ?species WHERE {
  ?gene a dise:genes .
  ?gene dise:associatedWith ?disease .
  ?disease dise:name ?dname .
  ?probe affy:transcribedFrom ?gene ;
         affy:species ?species .
  FILTER (?species = "Homo sapiens")
} LIMIT 50
`

func TestParseExample(t *testing.T) {
	q, err := Parse(exampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 5 {
		t.Fatalf("got %d patterns, want 5", len(q.Patterns))
	}
	if !q.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if q.Limit != 50 {
		t.Errorf("Limit = %d, want 50", q.Limit)
	}
	if len(q.Filters) != 1 {
		t.Fatalf("got %d filters, want 1", len(q.Filters))
	}
	if got := q.Patterns[0].P.Term.Value; got != rdf.RDFType {
		t.Errorf("'a' not expanded to rdf:type: %s", got)
	}
	if got := q.Patterns[1].P.Term.Value; got != "http://example.org/diseasome/associatedWith" {
		t.Errorf("prefix not expanded: %s", got)
	}
	// The ';' abbreviation must reuse the subject.
	if q.Patterns[3].S.Var != "probe" || q.Patterns[4].S.Var != "probe" {
		t.Errorf("';' abbreviation broken: %s / %s", q.Patterns[3], q.Patterns[4])
	}
	if got := q.ProjectedVars(); len(got) != 3 {
		t.Errorf("ProjectedVars = %v", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	q := MustParse(exampleQuery)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse of %q failed: %v", q.String(), err)
	}
	if len(q2.Patterns) != len(q.Patterns) || q2.Limit != q.Limit || q2.Distinct != q.Distinct {
		t.Errorf("round trip changed query: %s vs %s", q, q2)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"SELECT WHERE { ?s ?p ?o }",
		"SELECT * { ?s ?p ?o }",                        // missing WHERE
		"SELECT * WHERE { ?s ?p }",                     // incomplete triple
		"SELECT * WHERE { ?s ?p ?o . } LIMIT x",        // bad limit
		"SELECT * WHERE { ?s ex:p ?o . }",              // undeclared prefix
		"SELECT * WHERE { ?s ?p ?o . FILTER (?x = ) }", // bad expr
		"SELECT * WHERE { ?s ?p ?o . } trailing",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseNumbersAndComparisons(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x <http://p> ?v . FILTER (?v >= 10 && ?v < 20.5) }`)
	if err != nil {
		t.Fatal(err)
	}
	b := Binding{"v": rdf.IntLiteral(15)}
	if !EvalBool(q.Filters[0], b) {
		t.Error("15 should satisfy ?v >= 10 && ?v < 20.5")
	}
	b["v"] = rdf.IntLiteral(25)
	if EvalBool(q.Filters[0], b) {
		t.Error("25 should not satisfy filter")
	}
}

func TestFilterFunctions(t *testing.T) {
	for _, tc := range []struct {
		expr string
		b    Binding
		want bool
	}{
		{`CONTAINS(?s, "sapiens")`, Binding{"s": rdf.NewLiteral("Homo sapiens")}, true},
		{`CONTAINS(?s, "mus")`, Binding{"s": rdf.NewLiteral("Homo sapiens")}, false},
		{`STRSTARTS(?s, "Homo")`, Binding{"s": rdf.NewLiteral("Homo sapiens")}, true},
		{`STRENDS(?s, "ens")`, Binding{"s": rdf.NewLiteral("Homo sapiens")}, true},
		{`REGEX(?s, "^h.*s$", "i")`, Binding{"s": rdf.NewLiteral("Homo sapiens")}, true},
		{`REGEX(?s, "^x")`, Binding{"s": rdf.NewLiteral("Homo sapiens")}, false},
		{`BOUND(?s)`, Binding{"s": rdf.NewLiteral("x")}, true},
		{`BOUND(?t)`, Binding{"s": rdf.NewLiteral("x")}, false},
		{`!BOUND(?t)`, Binding{"s": rdf.NewLiteral("x")}, true},
		{`STRLEN(?s) = 4`, Binding{"s": rdf.NewLiteral("abcd")}, true},
		{`UCASE(?s) = "ABC"`, Binding{"s": rdf.NewLiteral("abc")}, true},
		{`LCASE(?s) = "abc"`, Binding{"s": rdf.NewLiteral("ABC")}, true},
		{`LANG(?s) = "en"`, Binding{"s": rdf.NewLangLiteral("hi", "en")}, true},
		{`STR(?x) = "42"`, Binding{"x": rdf.IntLiteral(42)}, true},
		{`?a = ?b || ?a > 5`, Binding{"a": rdf.IntLiteral(7), "b": rdf.IntLiteral(1)}, true},
	} {
		q, err := Parse("SELECT ?s WHERE { ?s ?p ?o . FILTER (" + tc.expr + ") }")
		if err != nil {
			t.Fatalf("parse %q: %v", tc.expr, err)
		}
		if got := EvalBool(q.Filters[0], tc.b); got != tc.want {
			t.Errorf("EvalBool(%s, %s) = %v, want %v", tc.expr, tc.b, got, tc.want)
		}
	}
}

func testGraph() *rdf.Graph {
	g := rdf.NewGraph()
	gene := func(i string) rdf.Term { return rdf.NewIRI("http://g/" + i) }
	dis := func(i string) rdf.Term { return rdf.NewIRI("http://d/" + i) }
	assoc := rdf.NewIRI("http://p/assoc")
	name := rdf.NewIRI("http://p/name")
	typ := rdf.NewIRI(rdf.RDFType)
	geneCls := rdf.NewIRI("http://c/Gene")
	g.Add(rdf.Triple{S: gene("1"), P: typ, O: geneCls})
	g.Add(rdf.Triple{S: gene("2"), P: typ, O: geneCls})
	g.Add(rdf.Triple{S: gene("1"), P: assoc, O: dis("a")})
	g.Add(rdf.Triple{S: gene("2"), P: assoc, O: dis("b")})
	g.Add(rdf.Triple{S: dis("a"), P: name, O: rdf.NewLiteral("asthma")})
	g.Add(rdf.Triple{S: dis("b"), P: name, O: rdf.NewLiteral("cancer")})
	return g
}

func TestEvalBGP(t *testing.T) {
	g := testGraph()
	q := MustParse(`SELECT ?g ?n WHERE {
		?g <` + rdf.RDFType + `> <http://c/Gene> .
		?g <http://p/assoc> ?d .
		?d <http://p/name> ?n .
	}`)
	sols := EvalBGP(g, q.Patterns)
	if len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2: %v", len(sols), sols)
	}
	names := map[string]bool{}
	for _, s := range sols {
		names[s["n"].Value] = true
	}
	if !names["asthma"] || !names["cancer"] {
		t.Errorf("names = %v", names)
	}
}

func TestEvalQueryWithFilterAndModifiers(t *testing.T) {
	g := testGraph()
	q := MustParse(`SELECT ?n WHERE {
		?g <http://p/assoc> ?d .
		?d <http://p/name> ?n .
		FILTER (CONTAINS(?n, "a"))
	} ORDER BY ?n LIMIT 1`)
	sols := EvalQuery(g, q)
	if len(sols) != 1 || sols[0]["n"].Value != "asthma" {
		t.Fatalf("got %v, want [asthma]", sols)
	}
}

func TestEvalQueryDistinct(t *testing.T) {
	g := testGraph()
	q := MustParse(`SELECT DISTINCT ?g WHERE { ?g ?p ?o . }`)
	sols := EvalQuery(g, q)
	// subjects: gene1, gene2, disease a, disease b
	if len(sols) != 4 {
		t.Fatalf("got %d distinct subjects, want 4", len(sols))
	}
}

func TestBindingOps(t *testing.T) {
	a := Binding{"x": rdf.IntLiteral(1), "y": rdf.NewLiteral("s")}
	b := Binding{"y": rdf.NewLiteral("s"), "z": rdf.IntLiteral(2)}
	if !a.Compatible(b) {
		t.Error("compatible bindings reported incompatible")
	}
	c := Binding{"y": rdf.NewLiteral("other")}
	if a.Compatible(c) {
		t.Error("incompatible bindings reported compatible")
	}
	m := a.Merge(b)
	if len(m) != 3 {
		t.Errorf("merge has %d vars, want 3", len(m))
	}
	p := m.Project([]string{"x", "z"})
	if len(p) != 2 {
		t.Errorf("project has %d vars, want 2", len(p))
	}
	if a.Key([]string{"x", "y"}) == c.Key([]string{"x", "y"}) {
		t.Error("distinct bindings share a key")
	}
	if !strings.Contains(a.String(), "?x") {
		t.Errorf("String() = %s", a)
	}
}

func TestSharedVars(t *testing.T) {
	got := SharedVars([]string{"a", "b", "c"}, []string{"c", "d", "a"})
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("SharedVars = %v, want [a c]", got)
	}
}

func TestPatternReorderingSelectivity(t *testing.T) {
	// A graph where one pattern is far more selective; just verify results
	// are correct regardless of written order.
	g := testGraph()
	q1 := MustParse(`SELECT ?g WHERE { ?g <http://p/assoc> ?d . ?d <http://p/name> "cancer" . }`)
	q2 := MustParse(`SELECT ?g WHERE { ?d <http://p/name> "cancer" . ?g <http://p/assoc> ?d . }`)
	s1, s2 := EvalBGP(g, q1.Patterns), EvalBGP(g, q2.Patterns)
	if len(s1) != 1 || len(s2) != 1 {
		t.Fatalf("got %d / %d solutions, want 1 each", len(s1), len(s2))
	}
	if s1[0]["g"] != s2[0]["g"] {
		t.Error("reordered evaluation differs")
	}
}
