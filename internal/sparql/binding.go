package sparql

import (
	"sort"
	"strconv"
	"strings"

	"ontario/internal/rdf"
)

// Binding is a solution mapping from variable names to RDF terms.
type Binding map[string]rdf.Term

// NewBinding returns an empty binding.
func NewBinding() Binding { return make(Binding) }

// Copy returns a shallow copy of b.
func (b Binding) Copy() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Compatible reports whether b and o agree on every shared variable.
func (b Binding) Compatible(o Binding) bool {
	if len(o) < len(b) {
		b, o = o, b
	}
	for k, v := range b {
		if ov, ok := o[k]; ok && ov != v {
			return false
		}
	}
	return true
}

// Merge returns the union of b and o. The caller must have checked
// compatibility; on conflict the value from o wins.
func (b Binding) Merge(o Binding) Binding {
	out := make(Binding, len(b)+len(o))
	for k, v := range b {
		out[k] = v
	}
	for k, v := range o {
		out[k] = v
	}
	return out
}

// Project returns a new binding restricted to vars.
func (b Binding) Project(vars []string) Binding {
	out := make(Binding, len(vars))
	for _, v := range vars {
		if t, ok := b[v]; ok {
			out[v] = t
		}
	}
	return out
}

// Key returns a deterministic string key identifying the binding restricted
// to vars; it is used for hashing in joins and DISTINCT. Every term
// component is length-prefixed, so values containing the separator bytes
// ('|', ';', '=') cannot make two distinct bindings collide.
func (b Binding) Key(vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		t, ok := b[v]
		sb.WriteString(v)
		sb.WriteByte('=')
		if ok {
			sb.WriteByte(byte('0' + t.Kind))
			keyComponent(&sb, t.Value)
			keyComponent(&sb, t.Datatype)
			keyComponent(&sb, t.Lang)
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// keyComponent writes one length-prefixed key component: the decimal
// length delimits the content exactly, whatever bytes it contains.
func keyComponent(sb *strings.Builder, s string) {
	sb.WriteString(strconv.Itoa(len(s)))
	sb.WriteByte(':')
	sb.WriteString(s)
}

// FullKey returns a deterministic key over all bound variables.
func (b Binding) FullKey() string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return b.Key(vars)
}

// String renders the binding deterministically for debugging.
func (b Binding) String() string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range vars {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("?" + v + " -> " + b[v].String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// SharedVars returns the sorted intersection of two variable lists.
func SharedVars(a, b []string) []string {
	set := make(map[string]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	var out []string
	for _, v := range b {
		if set[v] {
			out = append(out, v)
			set[v] = false
		}
	}
	sort.Strings(out)
	return out
}
