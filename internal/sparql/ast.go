// Package sparql implements the subset of SPARQL 1.1 used by the federated
// engine: basic graph patterns with filters, DISTINCT, projection, ORDER BY,
// LIMIT and OFFSET. It provides the abstract syntax, a lexer and recursive
// descent parser, an expression evaluator over solution bindings, and
// evaluation of basic graph patterns against in-memory RDF graphs.
package sparql

import (
	"sort"
	"strings"

	"ontario/internal/rdf"
)

// Node is one position of a triple pattern: either a variable or a concrete
// RDF term.
type Node struct {
	IsVar bool
	Var   string   // variable name without the leading '?'
	Term  rdf.Term // valid when !IsVar
}

// VarNode returns a variable node.
func VarNode(name string) Node { return Node{IsVar: true, Var: name} }

// TermNode returns a concrete-term node.
func TermNode(t rdf.Term) Node { return Node{Term: t} }

// String renders the node in SPARQL syntax.
func (n Node) String() string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.String()
}

// TriplePattern is a triple pattern within a basic graph pattern.
type TriplePattern struct {
	S, P, O Node
}

// String renders the pattern in SPARQL syntax.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// Vars returns the distinct variables of the pattern in S, P, O order.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.IsVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	return out
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Var  string
	Desc bool
}

// OptionalGroup is one OPTIONAL { ... } block: its patterns are
// left-joined to the required part of the query. The same shape describes
// the branches of a UNION group.
type OptionalGroup struct {
	Patterns []TriplePattern
	Filters  []Expr
}

// UnionGroup is "{ A } UNION { B } [UNION { C } ...]": the branches'
// solutions are concatenated and the result is joined with the rest of the
// group.
type UnionGroup struct {
	Branches []OptionalGroup
}

// Vars returns the distinct variables across all branches.
func (ug *UnionGroup) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, br := range ug.Branches {
		for _, tp := range br.Patterns {
			for _, v := range tp.Vars() {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// Query is a parsed SPARQL SELECT query.
type Query struct {
	Prefixes   map[string]string
	SelectVars []string // empty means SELECT *
	Distinct   bool
	Patterns   []TriplePattern
	Filters    []Expr
	Optionals  []OptionalGroup
	Unions     []UnionGroup
	OrderBy    []OrderKey
	Limit      int // -1 when absent
	Offset     int // 0 when absent
}

// Variables returns the distinct variables mentioned in the query's basic
// graph pattern (including OPTIONAL groups), sorted for determinism.
func (q *Query) Variables() []string {
	seen := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			seen[v] = true
		}
	}
	for _, og := range q.Optionals {
		for _, tp := range og.Patterns {
			for _, v := range tp.Vars() {
				seen[v] = true
			}
		}
	}
	for _, ug := range q.Unions {
		for _, v := range ug.Vars() {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ProjectedVars returns the variables the query projects: SelectVars when
// present, otherwise all pattern variables.
func (q *Query) ProjectedVars() []string {
	if len(q.SelectVars) > 0 {
		return q.SelectVars
	}
	return q.Variables()
}

// String renders the query in SPARQL syntax. The rendering is canonical
// enough to be reparsed by this package.
func (q *Query) String() string {
	var b strings.Builder
	prefixes := make([]string, 0, len(q.Prefixes))
	for p := range q.Prefixes {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		b.WriteString("PREFIX ")
		b.WriteString(p)
		b.WriteString(": <")
		b.WriteString(q.Prefixes[p])
		b.WriteString(">\n")
	}
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(q.SelectVars) == 0 {
		b.WriteString("*")
	} else {
		for i, v := range q.SelectVars {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString("?" + v)
		}
	}
	b.WriteString(" WHERE {\n")
	for _, tp := range q.Patterns {
		b.WriteString("  ")
		b.WriteString(tp.String())
		b.WriteString(" .\n")
	}
	for _, f := range q.Filters {
		b.WriteString("  FILTER (")
		b.WriteString(f.String())
		b.WriteString(")\n")
	}
	for _, ug := range q.Unions {
		b.WriteString("  ")
		for i, br := range ug.Branches {
			if i > 0 {
				b.WriteString(" UNION ")
			}
			b.WriteString("{ ")
			for _, tp := range br.Patterns {
				b.WriteString(tp.String())
				b.WriteString(" . ")
			}
			for _, f := range br.Filters {
				b.WriteString("FILTER (")
				b.WriteString(f.String())
				b.WriteString(") ")
			}
			b.WriteString("}")
		}
		b.WriteString("\n")
	}
	for _, og := range q.Optionals {
		b.WriteString("  OPTIONAL {\n")
		for _, tp := range og.Patterns {
			b.WriteString("    ")
			b.WriteString(tp.String())
			b.WriteString(" .\n")
		}
		for _, f := range og.Filters {
			b.WriteString("    FILTER (")
			b.WriteString(f.String())
			b.WriteString(")\n")
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}")
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, k := range q.OrderBy {
			if k.Desc {
				b.WriteString(" DESC(?" + k.Var + ")")
			} else {
				b.WriteString(" ?" + k.Var)
			}
		}
	}
	if q.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(itoa(q.Limit))
	}
	if q.Offset > 0 {
		b.WriteString(" OFFSET ")
		b.WriteString(itoa(q.Offset))
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
