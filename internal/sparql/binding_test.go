package sparql

import (
	"testing"

	"ontario/internal/rdf"
)

// The pre-fix Key concatenated term components with bare '|' and ';'
// separators, so values containing those bytes could make distinct
// bindings collide. These are regression tests for the length-prefixed
// encoding.
func TestKeySeparatorValuesDoNotCollide(t *testing.T) {
	cases := []struct{ a, b Binding }{
		// '|' migrating between value and datatype:
		// old keys were both "v=1a|b|c|;".
		{
			Binding{"v": rdf.NewTypedLiteral("a|b", "c")},
			Binding{"v": rdf.NewTypedLiteral("a", "b|c")},
		},
		// '|' migrating between datatype and lang.
		{
			Binding{"v": rdf.Term{Kind: rdf.TermLiteral, Datatype: "a|b"}},
			Binding{"v": rdf.Term{Kind: rdf.TermLiteral, Datatype: "a", Lang: "b"}},
		},
		// A value embedding a whole "…;w=…" suffix, colliding with a
		// second bound variable.
		{
			Binding{"v": rdf.NewLiteral("a0:0:0:;w=1" + "1:b0:0:")},
			Binding{"v": rdf.NewLiteral("a"), "w": rdf.NewLiteral("b")},
		},
	}
	for i, c := range cases {
		ka, kb := c.a.FullKey(), c.b.FullKey()
		if ka == kb {
			t.Errorf("case %d: FullKey collision: %v and %v both map to %q", i, c.a, c.b, ka)
		}
	}
}

func TestKeyDeterministicAndDistinguishesUnbound(t *testing.T) {
	b := Binding{"v": rdf.NewLiteral("x")}
	vars := []string{"v", "w"}
	if b.Key(vars) != b.Key(vars) {
		t.Fatal("Key is not deterministic")
	}
	bound := Binding{"v": rdf.NewLiteral("x"), "w": rdf.NewLiteral("")}
	if b.Key(vars) == bound.Key(vars) {
		t.Fatal("Key does not distinguish unbound from empty literal")
	}
	// Same restriction, extra variables outside vars: keys agree.
	extra := Binding{"v": rdf.NewLiteral("x"), "u": rdf.NewLiteral("y")}
	if b.Key(vars) != extra.Key(vars) {
		t.Fatal("Key depends on variables outside vars")
	}
}
