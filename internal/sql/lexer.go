package sql

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber
	tComma
	tDot
	tLParen
	tRParen
	tStar
	tEq
	tNeq
	tLt
	tLe
	tGt
	tGe
)

type tok struct {
	kind tokKind
	text string
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

func lexSQL(in string) ([]tok, error) {
	var toks []tok
	i := 0
	for i < len(in) {
		c := in[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, tok{tComma, ","})
			i++
		case c == '.':
			toks = append(toks, tok{tDot, "."})
			i++
		case c == '(':
			toks = append(toks, tok{tLParen, "("})
			i++
		case c == ')':
			toks = append(toks, tok{tRParen, ")"})
			i++
		case c == '*':
			toks = append(toks, tok{tStar, "*"})
			i++
		case c == '=':
			toks = append(toks, tok{tEq, "="})
			i++
		case c == '!':
			if i+1 < len(in) && in[i+1] == '=' {
				toks = append(toks, tok{tNeq, "!="})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at %d", i)
			}
		case c == '<':
			switch {
			case i+1 < len(in) && in[i+1] == '=':
				toks = append(toks, tok{tLe, "<="})
				i += 2
			case i+1 < len(in) && in[i+1] == '>':
				toks = append(toks, tok{tNeq, "<>"})
				i += 2
			default:
				toks = append(toks, tok{tLt, "<"})
				i++
			}
		case c == '>':
			if i+1 < len(in) && in[i+1] == '=' {
				toks = append(toks, tok{tGe, ">="})
				i += 2
			} else {
				toks = append(toks, tok{tGt, ">"})
				i++
			}
		case c == '\'':
			i++
			var b strings.Builder
			for {
				if i >= len(in) {
					return nil, fmt.Errorf("sql: unterminated string literal")
				}
				if in[i] == '\'' {
					if i+1 < len(in) && in[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(in[i])
				i++
			}
			toks = append(toks, tok{tString, b.String()})
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(in) && in[i+1] >= '0' && in[i+1] <= '9':
			start := i
			if c == '-' {
				i++
			}
			for i < len(in) && (in[i] >= '0' && in[i] <= '9' || in[i] == '.') {
				// '.' followed by non-digit ends the number
				if in[i] == '.' && (i+1 >= len(in) || in[i+1] < '0' || in[i+1] > '9') {
					break
				}
				i++
			}
			toks = append(toks, tok{tNumber, in[start:i]})
		case isSQLIdentStart(c):
			start := i
			for i < len(in) && isSQLIdentChar(in[i]) {
				i++
			}
			toks = append(toks, tok{tIdent, in[start:i]})
		case c == '`' || c == '"':
			// quoted identifier
			quote := c
			i++
			start := i
			for i < len(in) && in[i] != quote {
				i++
			}
			if i >= len(in) {
				return nil, fmt.Errorf("sql: unterminated quoted identifier")
			}
			toks = append(toks, tok{tIdent, in[start:i]})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, tok{tEOF, ""})
	return toks, nil
}

func isSQLIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isSQLIdentChar(c byte) bool {
	return isSQLIdentStart(c) || c >= '0' && c <= '9'
}
