// Package sql defines the SQL subset spoken between the federated engine's
// SQL wrapper and the relational engine: an AST, a lexer and parser, and a
// printer. The subset covers SELECT [DISTINCT] with qualified columns,
// multi-table FROM with INNER JOIN ... ON, WHERE with boolean expressions
// over comparisons/LIKE/IN/IS NULL, ORDER BY and LIMIT/OFFSET.
package sql

import (
	"strconv"
	"strings"
)

// Select is a parsed SELECT statement.
type Select struct {
	Distinct bool
	Columns  []SelectItem // empty means '*'
	From     []TableRef   // first entry plus any comma-joined tables
	Joins    []Join       // explicit JOIN ... ON clauses
	Where    BoolExpr     // nil when absent
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int // 0 when absent
}

// SelectItem is one projected column, optionally aliased.
type SelectItem struct {
	Col   ColumnRef
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the alias when present, else the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// Join is an INNER JOIN clause.
type Join struct {
	Table TableRef
	On    BoolExpr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

// ColumnRef references a column, optionally qualified by table name or
// alias.
type ColumnRef struct {
	Table  string // empty when unqualified
	Column string
}

// String renders the reference.
func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// LiteralKind enumerates literal types.
type LiteralKind int

// Literal kinds.
const (
	LitString LiteralKind = iota
	LitInt
	LitFloat
	LitBool
	LitNull
)

// Literal is a constant value.
type Literal struct {
	Kind  LiteralKind
	Str   string
	Int   int64
	Float float64
	Bool  bool
}

// String renders the literal in SQL syntax.
func (l Literal) String() string {
	switch l.Kind {
	case LitString:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	case LitInt:
		return strconv.FormatInt(l.Int, 10)
	case LitFloat:
		return strconv.FormatFloat(l.Float, 'g', -1, 64)
	case LitBool:
		if l.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "NULL"
	}
}

// Operand is a comparison operand: a column reference or a literal.
type Operand struct {
	IsCol bool
	Col   ColumnRef
	Lit   Literal
}

// ColOperand returns a column operand.
func ColOperand(c ColumnRef) Operand { return Operand{IsCol: true, Col: c} }

// LitOperand returns a literal operand.
func LitOperand(l Literal) Operand { return Operand{Lit: l} }

// String renders the operand.
func (o Operand) String() string {
	if o.IsCol {
		return o.Col.String()
	}
	return o.Lit.String()
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNeq
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNeq:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	default:
		return ">="
	}
}

// BoolExpr is a boolean WHERE/ON expression.
type BoolExpr interface {
	String() string
	boolExpr()
}

// Comparison is "operand op operand".
type Comparison struct {
	Op   CmpOp
	L, R Operand
}

func (*Comparison) boolExpr() {}

// String renders the comparison.
func (c *Comparison) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

// Like is "col LIKE 'pattern'" with optional NOT. The pattern uses SQL
// semantics: '%' matches any run, '_' matches one character.
type Like struct {
	Col     ColumnRef
	Pattern string
	Not     bool
}

func (*Like) boolExpr() {}

// String renders the LIKE predicate.
func (l *Like) String() string {
	not := ""
	if l.Not {
		not = "NOT "
	}
	return l.Col.String() + " " + not + "LIKE '" + strings.ReplaceAll(l.Pattern, "'", "''") + "'"
}

// In is "col IN (lit, ...)" with optional NOT.
type In struct {
	Col  ColumnRef
	List []Literal
	Not  bool
}

func (*In) boolExpr() {}

// String renders the IN predicate.
func (i *In) String() string {
	parts := make([]string, len(i.List))
	for j, l := range i.List {
		parts[j] = l.String()
	}
	not := ""
	if i.Not {
		not = "NOT "
	}
	return i.Col.String() + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
}

// IsNull is "col IS [NOT] NULL".
type IsNull struct {
	Col ColumnRef
	Not bool
}

func (*IsNull) boolExpr() {}

// String renders the predicate.
func (n *IsNull) String() string {
	if n.Not {
		return n.Col.String() + " IS NOT NULL"
	}
	return n.Col.String() + " IS NULL"
}

// And is a conjunction.
type And struct{ L, R BoolExpr }

func (*And) boolExpr() {}

// String renders the conjunction.
func (a *And) String() string { return a.L.String() + " AND " + a.R.String() }

// Or is a disjunction.
type Or struct{ L, R BoolExpr }

func (*Or) boolExpr() {}

// String renders the disjunction.
func (o *Or) String() string { return "(" + o.L.String() + " OR " + o.R.String() + ")" }

// Not is a negation.
type Not struct{ X BoolExpr }

func (*Not) boolExpr() {}

// String renders the negation.
func (n *Not) String() string { return "NOT (" + n.X.String() + ")" }

// Conjuncts flattens nested ANDs into a list of conjuncts.
func Conjuncts(e BoolExpr) []BoolExpr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []BoolExpr{e}
}

// AndAll combines the expressions into a right-leaning AND chain; it returns
// nil for an empty list.
func AndAll(es []BoolExpr) BoolExpr {
	var out BoolExpr
	for i := len(es) - 1; i >= 0; i-- {
		if out == nil {
			out = es[i]
		} else {
			out = &And{L: es[i], R: out}
		}
	}
	return out
}

// String renders the SELECT statement as SQL text parsable by this package.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(s.Columns) == 0 {
		b.WriteString("*")
	} else {
		for i, c := range s.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Col.String())
			if c.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(c.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		writeTableRef(&b, t)
	}
	for _, j := range s.Joins {
		b.WriteString(" JOIN ")
		writeTableRef(&b, j.Table)
		b.WriteString(" ON ")
		b.WriteString(j.On.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Col.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(s.Limit))
	}
	if s.Offset > 0 {
		b.WriteString(" OFFSET ")
		b.WriteString(strconv.Itoa(s.Offset))
	}
	return b.String()
}

func writeTableRef(b *strings.Builder, t TableRef) {
	b.WriteString(t.Table)
	if t.Alias != "" {
		b.WriteString(" AS ")
		b.WriteString(t.Alias)
	}
}
