package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a SELECT statement.
func Parse(input string) (*Select, error) {
	toks, err := lexSQL(input)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("sql: trailing input %s", p.cur())
	}
	return sel, nil
}

// MustParse is Parse that panics on error; for tests.
func MustParse(input string) *Select {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type sqlParser struct {
	toks []tok
	pos  int
}

func (p *sqlParser) cur() tok  { return p.toks[p.pos] }
func (p *sqlParser) next() tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) accept(k tokKind) bool {
	if p.cur().kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tIdent && strings.EqualFold(t.text, kw)
}

func (p *sqlParser) ident(what string) (string, error) {
	t := p.cur()
	if t.kind != tIdent {
		return "", fmt.Errorf("sql: expected %s, got %s", what, t)
	}
	p.pos++
	return t.text, nil
}

var reservedAfterTable = map[string]bool{
	"JOIN": true, "ON": true, "WHERE": true, "ORDER": true, "LIMIT": true,
	"OFFSET": true, "INNER": true, "LEFT": true, "GROUP": true, "AS": true,
}

func (p *sqlParser) selectStmt() (*Select, error) {
	if !p.keyword("SELECT") {
		return nil, fmt.Errorf("sql: expected SELECT, got %s", p.cur())
	}
	sel := &Select{Limit: -1}
	if p.keyword("DISTINCT") {
		sel.Distinct = true
	}
	if p.accept(tStar) {
		// SELECT *
	} else {
		for {
			col, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Col: col}
			if p.keyword("AS") {
				a, err := p.ident("alias")
				if err != nil {
					return nil, err
				}
				item.Alias = a
			}
			sel.Columns = append(sel.Columns, item)
			if !p.accept(tComma) {
				break
			}
		}
	}
	if !p.keyword("FROM") {
		return nil, fmt.Errorf("sql: expected FROM, got %s", p.cur())
	}
	for {
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, tr)
		if !p.accept(tComma) {
			break
		}
	}
	for {
		if p.keyword("INNER") {
			if !p.keyword("JOIN") {
				return nil, fmt.Errorf("sql: expected JOIN after INNER")
			}
		} else if !p.keyword("JOIN") {
			break
		}
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if !p.keyword("ON") {
			return nil, fmt.Errorf("sql: expected ON, got %s", p.cur())
		}
		cond, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, Join{Table: tr, On: cond})
	}
	if p.keyword("WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.keyword("ORDER") {
		if !p.keyword("BY") {
			return nil, fmt.Errorf("sql: expected BY after ORDER")
		}
		for {
			col, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.keyword("DESC") {
				item.Desc = true
			} else {
				p.keyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tComma) {
				break
			}
		}
	}
	if p.keyword("LIMIT") {
		n, err := p.intLit("LIMIT count")
		if err != nil {
			return nil, err
		}
		sel.Limit = int(n)
	}
	if p.keyword("OFFSET") {
		n, err := p.intLit("OFFSET count")
		if err != nil {
			return nil, err
		}
		sel.Offset = int(n)
	}
	return sel, nil
}

func (p *sqlParser) intLit(what string) (int64, error) {
	t := p.cur()
	if t.kind != tNumber {
		return 0, fmt.Errorf("sql: expected %s, got %s", what, t)
	}
	p.pos++
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("sql: bad %s %q", what, t.text)
	}
	return n, nil
}

func (p *sqlParser) tableRef() (TableRef, error) {
	name, err := p.ident("table name")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	if p.keyword("AS") {
		a, err := p.ident("table alias")
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.cur().kind == tIdent && !reservedAfterTable[strings.ToUpper(p.cur().text)] {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *sqlParser) columnRef() (ColumnRef, error) {
	a, err := p.ident("column reference")
	if err != nil {
		return ColumnRef{}, err
	}
	if p.accept(tDot) {
		b, err := p.ident("column name")
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: a, Column: b}, nil
	}
	return ColumnRef{Column: a}, nil
}

// Boolean expression grammar: or -> and -> unary -> predicate.

func (p *sqlParser) orExpr() (BoolExpr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) andExpr() (BoolExpr, error) {
	l, err := p.unaryBool()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.unaryBool()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) unaryBool() (BoolExpr, error) {
	if p.keyword("NOT") {
		x, err := p.unaryBool()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	if p.accept(tLParen) {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tRParen) {
			return nil, fmt.Errorf("sql: expected ')', got %s", p.cur())
		}
		return e, nil
	}
	return p.predicate()
}

func (p *sqlParser) predicate() (BoolExpr, error) {
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	// col IS [NOT] NULL / col [NOT] LIKE / col [NOT] IN
	if l.IsCol {
		if p.keyword("IS") {
			not := p.keyword("NOT")
			if !p.keyword("NULL") {
				return nil, fmt.Errorf("sql: expected NULL after IS")
			}
			return &IsNull{Col: l.Col, Not: not}, nil
		}
		notKw := false
		if p.peekKeyword("NOT") {
			// lookahead: NOT LIKE / NOT IN
			save := p.pos
			p.pos++
			if p.peekKeyword("LIKE") || p.peekKeyword("IN") {
				notKw = true
			} else {
				p.pos = save
			}
		}
		if p.keyword("LIKE") {
			t := p.cur()
			if t.kind != tString {
				return nil, fmt.Errorf("sql: expected string after LIKE, got %s", t)
			}
			p.pos++
			return &Like{Col: l.Col, Pattern: t.text, Not: notKw}, nil
		}
		if p.keyword("IN") {
			if !p.accept(tLParen) {
				return nil, fmt.Errorf("sql: expected '(' after IN")
			}
			var list []Literal
			for {
				lit, err := p.literal()
				if err != nil {
					return nil, err
				}
				list = append(list, lit)
				if !p.accept(tComma) {
					break
				}
			}
			if !p.accept(tRParen) {
				return nil, fmt.Errorf("sql: expected ')' after IN list")
			}
			return &In{Col: l.Col, List: list, Not: notKw}, nil
		}
	}
	var op CmpOp
	switch p.cur().kind {
	case tEq:
		op = CmpEq
	case tNeq:
		op = CmpNeq
	case tLt:
		op = CmpLt
	case tLe:
		op = CmpLe
	case tGt:
		op = CmpGt
	case tGe:
		op = CmpGe
	default:
		return nil, fmt.Errorf("sql: expected comparison operator, got %s", p.cur())
	}
	p.pos++
	r, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &Comparison{Op: op, L: l, R: r}, nil
}

func (p *sqlParser) operand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tString:
		p.pos++
		return LitOperand(Literal{Kind: LitString, Str: t.text}), nil
	case tNumber:
		p.pos++
		lit, err := numberLiteral(t.text)
		if err != nil {
			return Operand{}, err
		}
		return LitOperand(lit), nil
	case tIdent:
		up := strings.ToUpper(t.text)
		switch up {
		case "TRUE":
			p.pos++
			return LitOperand(Literal{Kind: LitBool, Bool: true}), nil
		case "FALSE":
			p.pos++
			return LitOperand(Literal{Kind: LitBool, Bool: false}), nil
		case "NULL":
			p.pos++
			return LitOperand(Literal{Kind: LitNull}), nil
		}
		col, err := p.columnRef()
		if err != nil {
			return Operand{}, err
		}
		return ColOperand(col), nil
	default:
		return Operand{}, fmt.Errorf("sql: expected operand, got %s", t)
	}
}

func (p *sqlParser) literal() (Literal, error) {
	t := p.cur()
	switch t.kind {
	case tString:
		p.pos++
		return Literal{Kind: LitString, Str: t.text}, nil
	case tNumber:
		p.pos++
		return numberLiteral(t.text)
	case tIdent:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			p.pos++
			return Literal{Kind: LitBool, Bool: true}, nil
		case "FALSE":
			p.pos++
			return Literal{Kind: LitBool, Bool: false}, nil
		case "NULL":
			p.pos++
			return Literal{Kind: LitNull}, nil
		}
	}
	return Literal{}, fmt.Errorf("sql: expected literal, got %s", t)
}

func numberLiteral(text string) (Literal, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Literal{}, fmt.Errorf("sql: bad number %q", text)
		}
		return Literal{Kind: LitFloat, Float: f}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Literal{}, fmt.Errorf("sql: bad number %q", text)
	}
	return Literal{Kind: LitInt, Int: n}, nil
}
