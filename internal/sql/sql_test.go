package sql

import (
	"strings"
	"testing"
)

func TestParseSimple(t *testing.T) {
	s, err := Parse("SELECT a, b FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Columns) != 2 || s.From[0].Table != "t" {
		t.Fatalf("parsed %+v", s)
	}
	cmp, ok := s.Where.(*Comparison)
	if !ok || cmp.Op != CmpEq {
		t.Fatalf("where = %#v", s.Where)
	}
}

func TestParseJoinAndAliases(t *testing.T) {
	s, err := Parse("SELECT g.name AS n FROM gene AS g JOIN disease d ON g.disease_id = d.disease_id WHERE d.class = 'cancer' ORDER BY g.name DESC LIMIT 10 OFFSET 2")
	if err != nil {
		t.Fatal(err)
	}
	if s.From[0].Alias != "g" || len(s.Joins) != 1 || s.Joins[0].Table.Alias != "d" {
		t.Fatalf("parsed %+v", s)
	}
	if s.Columns[0].Alias != "n" {
		t.Error("AS alias lost")
	}
	if s.Limit != 10 || s.Offset != 2 {
		t.Errorf("limit/offset = %d/%d", s.Limit, s.Offset)
	}
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Errorf("order by = %+v", s.OrderBy)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, in := range []string{
		"SELECT * FROM t",
		"SELECT DISTINCT a FROM t WHERE a <> 2",
		"SELECT a FROM t WHERE s LIKE 'x%' AND n IN (1, 2, 3)",
		"SELECT a FROM t WHERE s IS NOT NULL",
		"SELECT a FROM t WHERE (a = 1 OR b = 2) AND NOT (c < 3)",
		"SELECT t1.a, t2.b FROM t1, t2 WHERE t1.x = t2.y",
		"SELECT a FROM t WHERE s = 'it''s'",
		"SELECT a FROM t ORDER BY a, b DESC LIMIT 5",
	} {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		s2, err := Parse(s.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", s.String(), in, err)
		}
		if s.String() != s2.String() {
			t.Errorf("round trip unstable:\n%s\n%s", s, s2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a ==",
		"SELECT a FROM t WHERE a LIKE 5",
		"SELECT a FROM t WHERE a IN 1",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t JOIN u",
		"SELECT a FROM t extra garbage here ~",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestConjuncts(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)")
	cs := Conjuncts(s.Where)
	if len(cs) != 3 {
		t.Fatalf("got %d conjuncts, want 3", len(cs))
	}
	back := AndAll(cs)
	if back.String() != s.Where.String() {
		t.Errorf("AndAll(Conjuncts(x)) != x: %s vs %s", back, s.Where)
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if got := Conjuncts(nil); got != nil {
		t.Errorf("Conjuncts(nil) = %v", got)
	}
}

func TestLiteralString(t *testing.T) {
	for _, tc := range []struct {
		lit  Literal
		want string
	}{
		{Literal{Kind: LitString, Str: "a'b"}, "'a''b'"},
		{Literal{Kind: LitInt, Int: -5}, "-5"},
		{Literal{Kind: LitFloat, Float: 2.5}, "2.5"},
		{Literal{Kind: LitBool, Bool: true}, "TRUE"},
		{Literal{Kind: LitNull}, "NULL"},
	} {
		if got := tc.lit.String(); got != tc.want {
			t.Errorf("Literal.String() = %s, want %s", got, tc.want)
		}
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	s, err := Parse("SELECT `weird name` FROM \"my table\"")
	if err != nil {
		t.Fatal(err)
	}
	if s.Columns[0].Col.Column != "weird name" || s.From[0].Table != "my table" {
		t.Fatalf("parsed %+v", s)
	}
}

func TestImplicitAlias(t *testing.T) {
	s := MustParse("SELECT a FROM gene g WHERE g.a = 1")
	if s.From[0].Alias != "g" {
		t.Fatalf("implicit alias not parsed: %+v", s.From[0])
	}
	// Reserved words must not be eaten as aliases.
	s = MustParse("SELECT a FROM gene WHERE a = 1")
	if s.From[0].Alias != "" {
		t.Fatalf("WHERE consumed as alias: %+v", s.From[0])
	}
}

func TestStringRendering(t *testing.T) {
	s := MustParse("SELECT DISTINCT g.a FROM gene g JOIN d ON g.x = d.y WHERE g.s LIKE 'a_c' LIMIT 3")
	out := s.String()
	for _, want := range []string{"DISTINCT", "JOIN d", "ON g.x = d.y", "LIKE 'a_c'", "LIMIT 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}
