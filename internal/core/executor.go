package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ontario/internal/catalog"
	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/sparql"
	"ontario/internal/wrapper"
)

// Executor runs plans against the data lake, instantiating one wrapper per
// source with a per-source network simulator.
type Executor struct {
	cat *catalog.Catalog

	mu       sync.Mutex
	wrappers map[string]wrapper.Wrapper
	sims     map[string]*netsim.Simulator

	// NetworkScale multiplies real sleeping in the network simulation
	// (1.0 reproduces the sampled delays; 0 disables sleeping).
	NetworkScale float64
	// Seed fixes the latency random streams.
	Seed int64
}

// NewExecutor returns an executor over the catalog.
func NewExecutor(cat *catalog.Catalog) *Executor {
	return &Executor{
		cat:          cat,
		wrappers:     make(map[string]wrapper.Wrapper),
		sims:         make(map[string]*netsim.Simulator),
		NetworkScale: 1.0,
		Seed:         1,
	}
}

// Reset discards cached wrappers and simulators (e.g. when switching the
// network profile between runs).
func (e *Executor) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wrappers = make(map[string]wrapper.Wrapper)
	e.sims = make(map[string]*netsim.Simulator)
}

func (e *Executor) wrapperFor(sourceID string, opts Options) (wrapper.Wrapper, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if w, ok := e.wrappers[sourceID]; ok {
		return w, nil
	}
	src := e.cat.Source(sourceID)
	if src == nil {
		return nil, fmt.Errorf("core: unknown source %s", sourceID)
	}
	sim := netsim.NewSimulator(opts.Network, e.NetworkScale, e.Seed+int64(len(e.sims)))
	e.sims[sourceID] = sim
	var w wrapper.Wrapper
	switch src.Model {
	case catalog.ModelRDF:
		w = wrapper.NewRDFWrapper(sourceID, src.Graph, sim)
	case catalog.ModelRelational:
		w = wrapper.NewSQLWrapper(src, sim, opts.Translation)
	default:
		return nil, fmt.Errorf("core: source %s has unsupported model", sourceID)
	}
	e.wrappers[sourceID] = w
	return w, nil
}

// TotalSimulatedDelay sums the sampled network delay across sources since
// the last Reset.
func (e *Executor) TotalSimulatedDelay() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	var total time.Duration
	for _, s := range e.sims {
		total += s.SimulatedDelay()
	}
	return total
}

// TotalMessages sums the simulated network messages since the last Reset.
func (e *Executor) TotalMessages() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	for _, s := range e.sims {
		total += s.Messages()
	}
	return total
}

// Execute runs the plan and returns the answer stream. The stream applies
// the query's solution modifiers (projection, DISTINCT, ORDER BY,
// LIMIT/OFFSET).
func (e *Executor) Execute(ctx context.Context, p *Plan) (*engine.Stream, error) {
	root, err := e.run(ctx, p.Root, p.Opts)
	if err != nil {
		return nil, err
	}
	q := p.Query
	s := root
	if vars := q.ProjectedVars(); len(vars) > 0 {
		s = engine.Project(ctx, s, vars)
	}
	if q.Distinct {
		s = engine.Distinct(ctx, s)
	}
	if len(q.OrderBy) > 0 {
		s = engine.OrderBy(ctx, s, q.OrderBy)
	}
	if q.Offset > 0 {
		s = engine.Offset(ctx, s, q.Offset)
	}
	if q.Limit >= 0 {
		s = engine.Limit(ctx, s, q.Limit)
	}
	return s, nil
}

func (e *Executor) run(ctx context.Context, n PlanNode, opts Options) (*engine.Stream, error) {
	switch v := n.(type) {
	case *ServiceNode:
		w, err := e.wrapperFor(v.SourceID, opts)
		if err != nil {
			return nil, err
		}
		return w.Execute(ctx, v.Req)
	case *JoinNode:
		if v.Op == JoinBind || v.Op == JoinBlockBind {
			if svc, ok := v.R.(*ServiceNode); ok {
				left, err := e.run(ctx, v.L, opts)
				if err != nil {
					return nil, err
				}
				w, err := e.wrapperFor(svc.SourceID, opts)
				if err != nil {
					return nil, err
				}
				if v.Op == JoinBlockBind {
					service := func(ctx context.Context, seeds []sparql.Binding) *engine.Stream {
						if len(seeds) == 0 {
							// An unconstrained block (cross product) is still
							// one block request — and one response message —
							// not a fallback to per-answer retrieval.
							seeds = []sparql.Binding{sparql.NewBinding()}
						}
						req := &wrapper.Request{
							Stars:   svc.Req.Stars,
							Filters: svc.Req.Filters,
							Seeds:   seeds,
						}
						s, err := w.Execute(ctx, req)
						if err != nil {
							empty := engine.NewStream(0)
							empty.Close()
							return empty
						}
						return s
					}
					return engine.BlockBindJoin(ctx, left, service, v.JoinVars,
						opts.EffectiveBindBlockSize(), opts.EffectiveBindConcurrency()), nil
				}
				service := func(ctx context.Context, seed sparql.Binding) *engine.Stream {
					req := &wrapper.Request{
						Stars:   svc.Req.Stars,
						Filters: svc.Req.Filters,
						Seed:    seed,
					}
					s, err := w.Execute(ctx, req)
					if err != nil {
						empty := engine.NewStream(0)
						empty.Close()
						return empty
					}
					return s
				}
				return engine.BindJoin(ctx, left, service, v.JoinVars), nil
			}
			// Fall through to symmetric hash when the right side is not a
			// plain service.
		}
		left, err := e.run(ctx, v.L, opts)
		if err != nil {
			return nil, err
		}
		right, err := e.run(ctx, v.R, opts)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case JoinNestedLoop:
			return engine.NestedLoopJoin(ctx, left, right, v.JoinVars), nil
		default:
			return engine.SymmetricHashJoin(ctx, left, right, v.JoinVars), nil
		}
	case *LeftJoinNode:
		left, err := e.run(ctx, v.L, opts)
		if err != nil {
			return nil, err
		}
		right, err := e.run(ctx, v.R, opts)
		if err != nil {
			return nil, err
		}
		return engine.LeftJoin(ctx, left, right, v.Filters), nil
	case *FilterNode:
		in, err := e.run(ctx, v.Child, opts)
		if err != nil {
			return nil, err
		}
		return engine.Filter(ctx, in, v.Exprs), nil
	case *UnionNode:
		var streams []*engine.Stream
		for _, c := range v.Children {
			s, err := e.run(ctx, c, opts)
			if err != nil {
				return nil, err
			}
			streams = append(streams, s)
		}
		return engine.Union(ctx, streams...), nil
	default:
		return nil, fmt.Errorf("core: unknown plan node %T", n)
	}
}

// Engine bundles planner and executor behind the public entry point used
// by the facade package and the benchmark harness.
type Engine struct {
	Planner  *Planner
	Executor *Executor
}

// NewEngine returns an engine over the catalog.
func NewEngine(cat *catalog.Catalog) *Engine {
	return &Engine{Planner: NewPlanner(cat), Executor: NewExecutor(cat)}
}

// Run plans and executes the query, returning the answer stream and the
// plan.
func (e *Engine) Run(ctx context.Context, q *sparql.Query, opts Options) (*engine.Stream, *Plan, error) {
	p, err := e.Planner.Plan(q, opts)
	if err != nil {
		return nil, nil, err
	}
	s, err := e.Executor.Execute(ctx, p)
	if err != nil {
		return nil, nil, err
	}
	return s, p, nil
}
