package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"strings"

	"ontario/internal/catalog"
	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/sparql"
	"ontario/internal/trace"
	"ontario/internal/wrapper"
)

// Executor runs plans against the data lake. It is a factory for
// per-query Executions: each execution owns its wrappers and network
// simulators, so any number of queries can run concurrently over the same
// executor without sharing mutable state. The NetworkScale/Seed fields and
// the Execute/Reset/Total* methods remain as the single-query convenience
// API used by tests and the CLI; they delegate to one lazily-created
// execution.
type Executor struct {
	cat *catalog.Catalog

	// Limiter, when non-nil, bounds concurrent in-flight requests per
	// source across every execution created from this executor.
	Limiter *wrapper.SourceLimiter

	// Health applies the resilience policy (timeouts, retries, circuit
	// breakers) to remote sources and accumulates their measured latency
	// and failure rate. Like the limiter it is shared across every
	// execution, so breaker state and measured gamma reflect all traffic.
	Health *wrapper.HealthRegistry

	// NetworkScale multiplies real sleeping in the network simulation
	// (1.0 reproduces the sampled delays; 0 disables sleeping). Consulted
	// when the next single-query execution is created.
	NetworkScale float64
	// Seed fixes the latency random streams of the next single-query
	// execution.
	Seed int64

	// terms is the lake-lifetime term dictionary shared by every
	// execution's columnar data plane. The lake is static, so the
	// dictionary converges to the lake's distinct terms: after warm-up,
	// interning at the wrapper boundary is a read-locked map hit and the
	// IDs — stable across queries and across engines over the same
	// catalog — let the serving layer cache per-term work (like the JSON
	// encoding) across queries too.
	terms *dict.Dict

	// responses memoizes decoded wrapper responses (as rows of the shared
	// dictionary's IDs) across executions: a served workload replaying
	// prepared plans answers repeated wrapper requests without translating,
	// querying or decoding again, while the per-request network simulation
	// still runs live. Shared at lake lifetime alongside the dictionary
	// whose IDs its entries hold.
	responses *wrapper.ResponseCache

	mu     sync.Mutex
	legacy *Execution
}

// NewExecutor returns an executor over the catalog. The term dictionary
// and the response cache come from the catalog's shared slots, so every
// executor over one catalog sees the lake already interned and decoded by
// its predecessors.
func NewExecutor(cat *catalog.Catalog) *Executor {
	terms := cat.Shared("dict", func() any { return dict.New() }).(*dict.Dict)
	responses := cat.Shared("wrapper.responses", func() any { return wrapper.NewResponseCache() }).(*wrapper.ResponseCache)
	return &Executor{
		cat:          cat,
		NetworkScale: 1.0,
		Seed:         1,
		Health:       wrapper.NewHealthRegistry(wrapper.ResilienceConfig{}),
		terms:        terms,
		responses:    responses,
	}
}

// NewExecution returns an isolated execution with its own wrappers and
// simulators; concurrent executions only share the catalog (concurrent-
// read-safe) and the optional per-source limiter (that is its purpose).
func (e *Executor) NewExecution(scale float64, seed int64) *Execution {
	return &Execution{
		cat:       e.cat,
		limiter:   e.Limiter,
		health:    e.Health,
		dict:      e.terms,
		responses: e.responses,
		scale:     scale,
		seed:      seed,
		wrappers:  make(map[string]wrapper.Wrapper),
		sims:      make(map[string]*netsim.Simulator),
	}
}

func (e *Executor) current() *Execution {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.legacy == nil {
		e.legacy = e.NewExecution(e.NetworkScale, e.Seed)
	}
	return e.legacy
}

// Reset discards the cached single-query execution (e.g. when switching
// the network profile between runs); the next Execute starts fresh with
// the executor's current NetworkScale and Seed.
func (e *Executor) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.legacy = nil
}

// TotalSimulatedDelay sums the sampled network delay across sources since
// the last Reset.
func (e *Executor) TotalSimulatedDelay() time.Duration {
	return e.current().SimulatedDelay()
}

// TotalMessages sums the simulated network messages since the last Reset.
func (e *Executor) TotalMessages() int {
	return e.current().Messages()
}

// Execute runs the plan on the executor's single-query execution. For
// concurrent queries use NewExecution.
func (e *Executor) Execute(ctx context.Context, p *Plan) (*engine.Stream, error) {
	return e.current().Execute(ctx, p)
}

// Execution is one query's executor state: wrappers and per-source
// network simulators live here, so executions never share mutable state
// and an engine may run any number of them concurrently.
type Execution struct {
	cat       *catalog.Catalog
	limiter   *wrapper.SourceLimiter
	health    *wrapper.HealthRegistry
	dict      *dict.Dict
	responses *wrapper.ResponseCache
	scale     float64
	seed      int64

	mu       sync.Mutex
	wrappers map[string]wrapper.Wrapper
	sims     map[string]*netsim.Simulator

	// fmu guards the deferred execution error: a source failing inside a
	// dependent-join service callback cannot surface synchronously (the
	// stream API has no error channel), so the first such failure is parked
	// here and consumers read it through Err once the stream drains.
	fmu sync.Mutex
	err error

	// qt is the query trace every operator's runtime stats register into;
	// nodeStats maps plan nodes to their stats so EXPLAIN ANALYZE can pair
	// actuals with the plan's estimates. Both are set by Execute (adopting
	// a trace from the context or creating one) and guarded by mu.
	qt        *trace.QueryTrace
	nodeStats map[PlanNode]*engine.OpStats
	modStats  []*engine.OpStats
}

// Trace returns the query trace of the last Execute (nil before the first).
func (x *Execution) Trace() *trace.QueryTrace {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.qt
}

// NodeActuals returns the observed runtime stats of one plan node,
// populated while Execute's stream runs (safe to snapshot mid-flight).
func (x *Execution) NodeActuals(n PlanNode) (engine.OpActuals, bool) {
	x.mu.Lock()
	st, ok := x.nodeStats[n]
	x.mu.Unlock()
	if !ok {
		return engine.OpActuals{}, false
	}
	return st.Snapshot(), true
}

// stats registers one plan operator's stats record, remembering which plan
// node it belongs to.
func (x *Execution) stats(n PlanNode, kind, label string) *engine.OpStats {
	x.mu.Lock()
	qt := x.qt
	x.mu.Unlock()
	if qt == nil {
		return nil
	}
	st := qt.Register(kind, label)
	x.mu.Lock()
	if x.nodeStats == nil {
		x.nodeStats = make(map[PlanNode]*engine.OpStats)
	}
	x.nodeStats[n] = st
	x.mu.Unlock()
	return st
}

// modifierStats registers a solution-modifier operator (no plan node).
func (x *Execution) modifierStats(kind, label string) *engine.OpStats {
	x.mu.Lock()
	qt := x.qt
	x.mu.Unlock()
	if qt == nil {
		return nil
	}
	st := qt.Register(kind, label)
	x.mu.Lock()
	x.modStats = append(x.modStats, st)
	x.mu.Unlock()
	return st
}

// ModifierActuals returns the observed runtime stats of the solution
// modifiers (projection, DISTINCT, ORDER BY, OFFSET, LIMIT) in pipeline
// order.
func (x *Execution) ModifierActuals() []engine.OpActuals {
	x.mu.Lock()
	mods := append([]*engine.OpStats(nil), x.modStats...)
	x.mu.Unlock()
	out := make([]engine.OpActuals, len(mods))
	for i, st := range mods {
		out[i] = st.Snapshot()
	}
	return out
}

// fail parks the first deferred execution error. Context cancellation is
// not an execution error: the consumer cancelled (or timed out) and learns
// that from its own context.
func (x *Execution) fail(err error) {
	if err == nil || errors.Is(err, context.Canceled) {
		return
	}
	x.fmu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.fmu.Unlock()
}

// Err returns the first deferred execution error: a source that failed
// mid-stream inside a dependent join. Meaningful once the answer stream
// has drained.
func (x *Execution) Err() error {
	x.fmu.Lock()
	defer x.fmu.Unlock()
	return x.err
}

func (x *Execution) wrapperFor(sourceID string, opts Options) (wrapper.Wrapper, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if w, ok := x.wrappers[sourceID]; ok {
		return w, nil
	}
	src := x.cat.Source(sourceID)
	if src == nil {
		return nil, fmt.Errorf("core: unknown source %s", sourceID)
	}
	profile := opts.Network
	if src.Model.Remote() {
		// Remote sources cross a real network; the simulator only keeps the
		// message accounting.
		profile = netsim.NoDelay
	}
	sim := netsim.NewSimulator(profile, x.scale, x.seed+int64(len(x.sims)))
	x.sims[sourceID] = sim
	batch := opts.EffectiveBatchSize()
	var w wrapper.Wrapper
	switch src.Model {
	case catalog.ModelRDF:
		rw := wrapper.NewRDFWrapper(sourceID, src.Graph, sim, batch)
		rw.SetResponseCache(x.responses)
		w = rw
	case catalog.ModelRelational:
		sw := wrapper.NewSQLWrapper(src, sim, opts.Translation, batch)
		sw.SetResponseCache(x.responses)
		w = sw
	case catalog.ModelCustom:
		w = wrapper.NewExternalWrapper(sourceID, src.External, sim, batch)
	case catalog.ModelSPARQLEndpoint:
		w = wrapper.NewRemoteSPARQLWrapper(sourceID, src.Endpoint, x.healthRegistry(), sim, batch)
	case catalog.ModelSQLDatabase:
		w = wrapper.NewDBSQLWrapper(src, x.healthRegistry(), sim, batch)
	default:
		return nil, fmt.Errorf("core: source %s has unsupported model", sourceID)
	}
	w = wrapper.Limited(w, x.limiter)
	x.wrappers[sourceID] = w
	return w, nil
}

// healthRegistry returns the shared registry, creating a default one when
// the execution was built without an executor (tests).
func (x *Execution) healthRegistry() *wrapper.HealthRegistry {
	if x.health == nil {
		x.health = wrapper.NewHealthRegistry(wrapper.ResilienceConfig{})
	}
	return x.health
}

// SimulatedDelay sums the sampled network delay across this execution's
// sources.
func (x *Execution) SimulatedDelay() time.Duration {
	x.mu.Lock()
	defer x.mu.Unlock()
	var total time.Duration
	for _, s := range x.sims {
		total += s.SimulatedDelay()
	}
	return total
}

// Messages sums the simulated network messages of this execution.
func (x *Execution) Messages() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	total := 0
	for _, s := range x.sims {
		total += s.Messages()
	}
	return total
}

// SourceDelays returns the sampled network delay per contacted source.
func (x *Execution) SourceDelays() map[string]time.Duration {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make(map[string]time.Duration, len(x.sims))
	for id, s := range x.sims {
		out[id] = s.SimulatedDelay()
	}
	return out
}

// SourceMessages returns the simulated message count per contacted source.
func (x *Execution) SourceMessages() map[string]int {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make(map[string]int, len(x.sims))
	for id, s := range x.sims {
		out[id] = s.Messages()
	}
	return out
}

// Execute runs the plan and returns the answer stream. The stream applies
// the query's solution modifiers (projection, DISTINCT, ORDER BY,
// LIMIT/OFFSET).
func (x *Execution) Execute(ctx context.Context, p *Plan) (*engine.Stream, error) {
	// Adopt the query trace from the context (the server attaches one per
	// request) or start a fresh one, so every execution is traced.
	qt := trace.FromContext(ctx)
	if qt == nil {
		qt = trace.NewQueryTrace()
		ctx = trace.WithQuery(ctx, qt)
	}
	x.mu.Lock()
	x.qt = qt
	x.mu.Unlock()

	root, err := x.run(ctx, p.Root, p.Opts)
	if err != nil {
		return nil, err
	}
	q := p.Query
	s := root
	batch := p.Opts.EffectiveBatchSize()
	if vars := q.ProjectedVars(); len(vars) > 0 {
		mctx := engine.WithOpStats(ctx, x.modifierStats("project", strings.Join(vars, ",")))
		s = engine.Project(mctx, s, vars, batch)
	}
	if q.Distinct {
		mctx := engine.WithOpStats(ctx, x.modifierStats("distinct", ""))
		s = engine.Distinct(mctx, s, batch)
	}
	if len(q.OrderBy) > 0 {
		mctx := engine.WithOpStats(ctx, x.modifierStats("order-by", ""))
		s = engine.OrderBy(mctx, s, q.OrderBy, batch)
	}
	if q.Offset > 0 {
		mctx := engine.WithOpStats(ctx, x.modifierStats("offset", ""))
		s = engine.Offset(mctx, s, q.Offset, batch)
	}
	if q.Limit >= 0 {
		mctx := engine.WithOpStats(ctx, x.modifierStats("limit", ""))
		s = engine.Limit(mctx, s, q.Limit, batch)
	}
	return s, nil
}

func (x *Execution) run(ctx context.Context, n PlanNode, opts Options) (*engine.Stream, error) {
	switch v := n.(type) {
	case *ServiceNode:
		w, err := x.wrapperFor(v.SourceID, opts)
		if err != nil {
			return nil, err
		}
		s, err := w.Execute(ctx, v.Req)
		if err != nil {
			return nil, err
		}
		// Leaf streams are produced inside the wrapper; a metering relay
		// attributes the production to the service node's stats.
		return engine.Meter(ctx, s, x.stats(v, "service", v.SourceID)), nil
	case *JoinNode:
		if v.Op == JoinBind || v.Op == JoinBlockBind {
			if svc, ok := v.R.(*ServiceNode); ok {
				left, err := x.run(ctx, v.L, opts)
				if err != nil {
					return nil, err
				}
				w, err := x.wrapperFor(svc.SourceID, opts)
				if err != nil {
					return nil, err
				}
				svcStats := x.stats(svc, "service", svc.SourceID)
				if v.Op == JoinBlockBind {
					service := func(ctx context.Context, seeds []sparql.Binding) *engine.Stream {
						if len(seeds) == 0 {
							// An unconstrained block (cross product) is still
							// one block request — and one response message —
							// not a fallback to per-answer retrieval.
							seeds = []sparql.Binding{sparql.NewBinding()}
						}
						req := &wrapper.Request{
							Stars:   svc.Req.Stars,
							Filters: svc.Req.Filters,
							Seeds:   seeds,
						}
						s, err := w.Execute(ctx, req)
						if err != nil {
							// The join keeps draining other blocks; park the
							// failure so the consumer sees it after the stream.
							x.fail(fmt.Errorf("source %s: %w", svc.SourceID, err))
							empty := engine.NewStream(0)
							empty.Close()
							return empty
						}
						return engine.Meter(ctx, s, svcStats)
					}
					jctx := engine.WithOpStats(ctx,
						x.stats(v, "block-bind-join", strings.Join(v.JoinVars, ",")))
					return engine.BlockBindJoin(jctx, left, service, v.JoinVars,
						opts.EffectiveBindBlockSize(), opts.EffectiveBindConcurrency(),
						opts.EffectiveBatchSize()), nil
				}
				service := func(ctx context.Context, seed sparql.Binding) *engine.Stream {
					req := &wrapper.Request{
						Stars:   svc.Req.Stars,
						Filters: svc.Req.Filters,
						Seed:    seed,
					}
					s, err := w.Execute(ctx, req)
					if err != nil {
						x.fail(fmt.Errorf("source %s: %w", svc.SourceID, err))
						empty := engine.NewStream(0)
						empty.Close()
						return empty
					}
					return engine.Meter(ctx, s, svcStats)
				}
				jctx := engine.WithOpStats(ctx,
					x.stats(v, "bind-join", strings.Join(v.JoinVars, ",")))
				return engine.BindJoin(jctx, left, service, v.JoinVars, opts.EffectiveBatchSize()), nil
			}
			// Fall through to symmetric hash when the right side is not a
			// plain service.
		}
		left, err := x.run(ctx, v.L, opts)
		if err != nil {
			return nil, err
		}
		right, err := x.run(ctx, v.R, opts)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case JoinNestedLoop:
			jctx := engine.WithOpStats(ctx,
				x.stats(v, "nested-loop-join", strings.Join(v.JoinVars, ",")))
			return engine.NestedLoopJoin(jctx, left, right, v.JoinVars, opts.EffectiveBatchSize()), nil
		default:
			jctx := engine.WithOpStats(ctx,
				x.stats(v, "hash-join", strings.Join(v.JoinVars, ",")))
			return engine.SymmetricHashJoin(jctx, left, right, v.JoinVars,
				opts.EffectiveProbeParallelism(), opts.EffectiveBatchSize()), nil
		}
	case *LeftJoinNode:
		left, err := x.run(ctx, v.L, opts)
		if err != nil {
			return nil, err
		}
		right, err := x.run(ctx, v.R, opts)
		if err != nil {
			return nil, err
		}
		jctx := engine.WithOpStats(ctx, x.stats(v, "left-join", ""))
		return engine.LeftJoin(jctx, left, right, v.Filters, opts.EffectiveBatchSize()), nil
	case *FilterNode:
		in, err := x.run(ctx, v.Child, opts)
		if err != nil {
			return nil, err
		}
		fctx := engine.WithOpStats(ctx, x.stats(v, "filter", ""))
		return engine.Filter(fctx, in, v.Exprs, opts.EffectiveBatchSize()), nil
	case *UnionNode:
		var streams []*engine.Stream
		for _, c := range v.Children {
			s, err := x.run(ctx, c, opts)
			if err != nil {
				return nil, err
			}
			streams = append(streams, s)
		}
		uctx := engine.WithOpStats(ctx, x.stats(v, "union", ""))
		return engine.Union(uctx, opts.EffectiveBatchSize(), streams...), nil
	default:
		return nil, fmt.Errorf("core: unknown plan node %T", n)
	}
}

// Engine bundles planner and executor behind the public entry point used
// by the facade package and the benchmark harness.
type Engine struct {
	Planner  *Planner
	Executor *Executor
}

// NewEngine returns an engine over the catalog.
func NewEngine(cat *catalog.Catalog) *Engine {
	return &Engine{Planner: NewPlanner(cat), Executor: NewExecutor(cat)}
}

// Run plans and executes the query, returning the answer stream and the
// plan.
func (e *Engine) Run(ctx context.Context, q *sparql.Query, opts Options) (*engine.Stream, *Plan, error) {
	p, err := e.Planner.Plan(q, opts)
	if err != nil {
		return nil, nil, err
	}
	s, err := e.Executor.Execute(ctx, p)
	if err != nil {
		return nil, nil, err
	}
	return s, p, nil
}
