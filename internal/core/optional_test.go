package core

import (
	"strings"
	"testing"

	"ontario/internal/lslod"
	"ontario/internal/netsim"
	"ontario/internal/sparql"
)

// optionalQueries are federated queries with OPTIONAL groups over the lake.
func optionalQueries() map[string]string {
	return map[string]string{
		// Every disease, optionally with its trials (LinkedCT is another
		// source: a cross-source left join).
		"disease-trials": `
SELECT ?disease ?dname ?title WHERE {
  ?disease <` + rdfType + `> <` + lslod.ClassDisease + `> .
  ?disease <` + lslod.PredDiseaseName + `> ?dname .
  OPTIONAL {
    ?trial <` + lslod.PredCondition + `> ?disease .
    ?trial <` + lslod.PredTrialTitle + `> ?title .
  }
}`,
		// Genes with their probesets when the probe is on the same
		// chromosome (filter inside OPTIONAL, SPARQL LeftJoin semantics).
		"gene-probe-chrom": `
SELECT ?gene ?glabel ?probe WHERE {
  ?gene <` + rdfType + `> <` + lslod.ClassGene + `> .
  ?gene <` + lslod.PredGeneLabel + `> ?glabel .
  ?gene <` + lslod.PredGeneChromosome + `> ?chrom .
  OPTIONAL {
    ?probe <` + lslod.PredTranscribedFrom + `> ?gene .
    ?probe <` + lslod.PredProbeChromosome + `> ?pchrom .
    FILTER (?pchrom = ?chrom)
  }
}`,
		// Two OPTIONAL groups.
		"drug-two-optionals": `
SELECT ?drug ?gname ?effect ?title WHERE {
  ?drug <` + rdfType + `> <` + lslod.ClassDrug + `> .
  ?drug <` + lslod.PredGenericName + `> ?gname .
  OPTIONAL { ?se <` + lslod.PredCausedBy + `> ?drug . ?se <` + lslod.PredEffectName + `> ?effect . }
  OPTIONAL { ?t <` + lslod.PredIntervention + `> ?drug . ?t <` + lslod.PredTrialTitle + `> ?title . }
}`,
	}
}

const rdfType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

func TestOptionalMatchesReference(t *testing.T) {
	lake := testLake(t)
	ref := referenceGraph(t, lake)
	for name, text := range optionalQueries() {
		q := sparql.MustParse(text)
		want := sparql.EvalQuery(ref, q)
		if len(want) == 0 {
			t.Fatalf("%s: reference returned no answers", name)
		}
		// Some left rows must be unextended (true left-join behaviour).
		unbound := 0
		for _, b := range want {
			if len(b) < len(q.ProjectedVars()) {
				unbound++
			}
		}
		if unbound == 0 {
			t.Logf("%s: warning: every left row matched; left-join not exercised", name)
		}
		for _, cfg := range []struct {
			label string
			opts  Options
		}{
			{"unaware", UnawareOptions(netsim.NoDelay)},
			{"aware", AwareOptions(netsim.NoDelay)},
		} {
			got := runQuery(t, lake, q, cfg.opts)
			assertSameBindings(t, name+"/"+cfg.label, got, want, q.ProjectedVars())
		}
	}
}

func TestOptionalPlanShape(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	q := sparql.MustParse(optionalQueries()["disease-trials"])
	p, err := planner.Plan(q, AwareOptions(netsim.NoDelay))
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	if !strings.Contains(out, "LeftJoin[optional]") {
		t.Errorf("plan missing LeftJoin:\n%s", out)
	}
	if CountServices(p.Root) != 2 {
		t.Errorf("optional plan services = %d, want 2:\n%s", CountServices(p.Root), out)
	}
}

func TestOptionalParser(t *testing.T) {
	q := sparql.MustParse(`SELECT ?a WHERE {
		?a <http://p/1> ?b .
		OPTIONAL { ?a <http://p/2> ?c . FILTER (?c > 1) }
	}`)
	if len(q.Optionals) != 1 {
		t.Fatalf("optionals = %d", len(q.Optionals))
	}
	if len(q.Optionals[0].Patterns) != 1 || len(q.Optionals[0].Filters) != 1 {
		t.Fatalf("optional group = %+v", q.Optionals[0])
	}
	// Round trip.
	q2, err := sparql.Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if len(q2.Optionals) != 1 {
		t.Error("optional lost in round trip")
	}
	// Errors.
	for _, bad := range []string{
		`SELECT ?a WHERE { ?a ?p ?b . OPTIONAL { } }`,
		`SELECT ?a WHERE { ?a ?p ?b . OPTIONAL { OPTIONAL { ?a ?p ?c . } } }`,
		`SELECT ?a WHERE { ?a ?p ?b . OPTIONAL ?a ?p ?c . }`,
	} {
		if _, err := sparql.Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
