package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"ontario/internal/catalog"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

func runWithMessages(t *testing.T, cat *catalog.Catalog, q *sparql.Query, opts Options) ([]sparql.Binding, int, *Plan) {
	t.Helper()
	eng := NewEngine(cat)
	eng.Executor.NetworkScale = 0
	stream, plan, err := eng.Run(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	answers := stream.Collect()
	return answers, eng.Executor.TotalMessages(), plan
}

// TestCostOptimizerMessageParity is the headline property of the cost-based
// optimizer: on every LSLOD benchmark query it sends no more simulated
// network messages than the greedy planner, and strictly fewer on at least
// two, with identical answer multisets.
func TestCostOptimizerMessageParity(t *testing.T) {
	lake := testLake(t)
	strictlyFewer := 0
	for _, bq := range lslod.Queries() {
		q := sparql.MustParse(bq.Text)
		greedyOpts := AwareOptions(netsim.NoDelay)
		greedyOpts.Optimizer = OptimizerGreedy
		costOpts := AwareOptions(netsim.NoDelay)

		wantAnswers, greedyMsgs, _ := runWithMessages(t, lake.Catalog, q, greedyOpts)
		gotAnswers, costMsgs, plan := runWithMessages(t, lake.Catalog, q, costOpts)

		assertSameBindings(t, bq.ID+"/cost-vs-greedy", gotAnswers, wantAnswers, q.ProjectedVars())
		if costMsgs > greedyMsgs {
			t.Errorf("%s: cost optimizer sent MORE messages (%d > %d):\n%s",
				bq.ID, costMsgs, greedyMsgs, plan.Explain())
		}
		if costMsgs < greedyMsgs {
			strictlyFewer++
		}
	}
	if strictlyFewer < 2 {
		t.Errorf("cost optimizer strictly reduced messages on only %d queries, want >= 2", strictlyFewer)
	}
}

// TestCostOptimizerExplainEstimates: cost plans carry estimates in EXPLAIN.
func TestCostOptimizerExplainEstimates(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	p, err := planner.Plan(lslod.Query("Q5"), AwareOptions(netsim.Gamma2))
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	for _, want := range []string{"optimizer=cost", "{est card=", "msgs=", "cost="} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "Join[block-bind]") {
		t.Errorf("Q5 cost plan lost its dependent joins:\n%s", out)
	}
}

const (
	hubReading = "http://hub/Reading"
	hubSensor  = "http://hub/Sensor"
	hubDay     = "http://hub/Day"
	hubPSensor = "http://hub/sensor"
	hubPDay    = "http://hub/day"
	hubPLabel  = "http://hub/label"
	hubPWeek   = "http://hub/weekday"
)

// hubLake builds a three-source hub: a large Reading extent fanning out to
// few sensors and days. After the first dependent join the intermediate
// result is far larger than the remaining satellite extents, so re-scanning
// a satellite (hash join) beats seeding it — the shape that makes per-join
// operator selection produce MIXED operators in one plan.
func hubLake(t *testing.T, readings, sensors, days int) *catalog.Catalog {
	t.Helper()
	g := rdf.NewGraph()
	for i := 1; i <= sensors; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://hub/s/%d", i))
		g.Add(rdf.Triple{S: s, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(hubSensor)})
		g.Add(rdf.Triple{S: s, P: rdf.NewIRI(hubPLabel), O: rdf.NewLiteral(fmt.Sprintf("sensor-%d", i))})
	}
	dayG := rdf.NewGraph()
	for i := 1; i <= days; i++ {
		d := rdf.NewIRI(fmt.Sprintf("http://hub/d/%d", i))
		dayG.Add(rdf.Triple{S: d, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(hubDay)})
		dayG.Add(rdf.Triple{S: d, P: rdf.NewIRI(hubPWeek), O: rdf.NewLiteral(fmt.Sprintf("wd-%d", i%7))})
	}
	readG := rdf.NewGraph()
	for i := 1; i <= readings; i++ {
		r := rdf.NewIRI(fmt.Sprintf("http://hub/r/%d", i))
		readG.Add(rdf.Triple{S: r, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(hubReading)})
		readG.Add(rdf.Triple{S: r, P: rdf.NewIRI(hubPSensor), O: rdf.NewIRI(fmt.Sprintf("http://hub/s/%d", 1+i%sensors))})
		readG.Add(rdf.Triple{S: r, P: rdf.NewIRI(hubPDay), O: rdf.NewIRI(fmt.Sprintf("http://hub/d/%d", 1+i%days))})
	}
	cat := catalog.New()
	for id, graph := range map[string]*rdf.Graph{"sensors": g, "days": dayG, "readings": readG} {
		if err := cat.AddSource(&catalog.Source{ID: id, Model: catalog.ModelRDF, Graph: graph}); err != nil {
			t.Fatal(err)
		}
	}
	cat.AddMT(&catalog.RDFMT{Class: hubReading, Sources: []string{"readings"}, Predicates: []catalog.PredicateDesc{
		{Predicate: rdf.RDFType}, {Predicate: hubPSensor, LinkedClass: hubSensor}, {Predicate: hubPDay, LinkedClass: hubDay},
	}})
	cat.AddMT(&catalog.RDFMT{Class: hubSensor, Sources: []string{"sensors"}, Predicates: []catalog.PredicateDesc{
		{Predicate: rdf.RDFType}, {Predicate: hubPLabel},
	}})
	cat.AddMT(&catalog.RDFMT{Class: hubDay, Sources: []string{"days"}, Predicates: []catalog.PredicateDesc{
		{Predicate: rdf.RDFType}, {Predicate: hubPWeek},
	}})
	return cat
}

// TestCostOptimizerMixedOperators: on the hub shape the cost optimizer must
// combine a dependent join (seeding the big hub from a small satellite)
// with a hash join (re-scanning the other small satellite against the now
// large intermediate result) — and still answer correctly.
func TestCostOptimizerMixedOperators(t *testing.T) {
	cat := hubLake(t, 600, 30, 10)
	q := sparql.MustParse(fmt.Sprintf(`SELECT ?r ?sl ?w WHERE {
		?r <%s> <%s> . ?r <%s> ?s . ?r <%s> ?d .
		?s <%s> <%s> . ?s <%s> ?sl .
		?d <%s> <%s> . ?d <%s> ?w .
	}`, rdf.RDFType, hubReading, hubPSensor, hubPDay,
		rdf.RDFType, hubSensor, hubPLabel,
		rdf.RDFType, hubDay, hubPWeek))

	opts := Options{Network: netsim.NoDelay, Optimizer: OptimizerCost}
	want, hashMsgs, _ := runWithMessages(t, cat, q, Options{Network: netsim.NoDelay})
	got, costMsgs, plan := runWithMessages(t, cat, q, opts)
	assertSameBindings(t, "hub/mixed", got, want, q.ProjectedVars())

	explain := plan.Explain()
	if !strings.Contains(explain, "Join[symmetric-hash]") {
		t.Errorf("mixed plan has no hash join:\n%s", explain)
	}
	if !strings.Contains(explain, "Join[block-bind]") && !strings.Contains(explain, "Join[bind]") {
		t.Errorf("mixed plan has no dependent join:\n%s", explain)
	}
	if costMsgs > hashMsgs {
		t.Errorf("mixed plan sent more messages than all-hash (%d > %d):\n%s", costMsgs, hashMsgs, explain)
	}
}

// TestCostOptimizerManyLeaves drives the cost-greedy fallback above the DP
// limit: a 10-star chain must still plan (one service per star) and answer
// correctly.
func TestCostOptimizerManyLeaves(t *testing.T) {
	const n = 10
	g := rdf.NewGraph()
	cat := catalog.New()
	class := func(i int) string { return fmt.Sprintf("http://chain/C%d", i) }
	pred := func(i int) string { return fmt.Sprintf("http://chain/p%d", i) }
	ent := func(i, k int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://chain/e%d/%d", i, k)) }
	const per = 5
	for i := 0; i < n; i++ {
		for k := 0; k < per; k++ {
			g.Add(rdf.Triple{S: ent(i, k), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(class(i))})
			if i+1 < n {
				g.Add(rdf.Triple{S: ent(i, k), P: rdf.NewIRI(pred(i)), O: ent(i+1, k)})
			}
		}
	}
	if err := cat.AddSource(&catalog.Source{ID: "chain", Model: catalog.ModelRDF, Graph: g}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		preds := []catalog.PredicateDesc{{Predicate: rdf.RDFType}}
		if i+1 < n {
			preds = append(preds, catalog.PredicateDesc{Predicate: pred(i), LinkedClass: class(i + 1)})
		}
		cat.AddMT(&catalog.RDFMT{Class: class(i), Sources: []string{"chain"}, Predicates: preds})
	}
	var b strings.Builder
	b.WriteString("SELECT ?x0 WHERE {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "?x%d <%s> <%s> .\n", i, rdf.RDFType, class(i))
		if i+1 < n {
			fmt.Fprintf(&b, "?x%d <%s> ?x%d .\n", i, pred(i), i+1)
		}
	}
	b.WriteString("}")
	q := sparql.MustParse(b.String())

	want, _, _ := runWithMessages(t, cat, q, Options{Network: netsim.NoDelay})
	got, _, plan := runWithMessages(t, cat, q, Options{Network: netsim.NoDelay, Optimizer: OptimizerCost})
	if len(want) != per {
		t.Fatalf("reference chain answered %d, want %d", len(want), per)
	}
	assertSameBindings(t, "chain/cost-greedy", got, want, q.ProjectedVars())
	if n := CountServices(plan.Root); n != 10 {
		t.Errorf("chain plan has %d services, want 10:\n%s", n, plan.Explain())
	}
}
