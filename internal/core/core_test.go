package core

import (
	"context"
	"sort"
	"strings"
	"testing"

	"ontario/internal/catalog"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
	"ontario/internal/wrapper"
)

// testLake builds one small lake shared by the package tests.
func testLake(t *testing.T) *lslod.Lake {
	t.Helper()
	lake, err := lslod.BuildLake(lslod.SmallScale(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return lake
}

// referenceGraph materializes the whole lake as one RDF graph for oracle
// evaluation.
func referenceGraph(t *testing.T, lake *lslod.Lake) *rdf.Graph {
	t.Helper()
	g := rdf.NewGraph()
	for _, id := range lake.Catalog.SourceIDs() {
		src := lake.Catalog.Source(id)
		sg, err := lslod.GraphFromSource(src)
		if err != nil {
			t.Fatal(err)
		}
		g.AddAll(sg.Triples())
	}
	return g
}

func runQuery(t *testing.T, lake *lslod.Lake, q *sparql.Query, opts Options) []sparql.Binding {
	t.Helper()
	eng := NewEngine(lake.Catalog)
	eng.Executor.NetworkScale = 0 // no real sleeping in tests
	stream, _, err := eng.Run(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return stream.Collect()
}

func sortedKeys(bs []sparql.Binding, vars []string) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Key(vars)
	}
	sort.Strings(out)
	return out
}

func assertSameBindings(t *testing.T, label string, got, want []sparql.Binding, vars []string) {
	t.Helper()
	g, w := sortedKeys(got, vars), sortedKeys(want, vars)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d answers, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: answer multiset differs at %d:\n got %s\nwant %s", label, i, g[i], w[i])
		}
	}
}

// TestQueriesMatchReference is the central correctness test: for every
// benchmark query, every plan mode and every translation mode, the
// federated engine must return exactly the answers that direct SPARQL
// evaluation over the materialized RDF view of the whole lake returns.
func TestQueriesMatchReference(t *testing.T) {
	lake := testLake(t)
	ref := referenceGraph(t, lake)
	for _, bq := range lslod.Queries() {
		q := sparql.MustParse(bq.Text)
		want := sparql.EvalQuery(ref, q)
		vars := q.ProjectedVars()
		if len(want) == 0 {
			t.Fatalf("%s: reference evaluation returned no answers; weak test data", bq.ID)
		}
		configs := []struct {
			name string
			opts Options
		}{
			{"unaware", UnawareOptions(netsim.NoDelay)},
			{"aware", AwareOptions(netsim.NoDelay)},
			{"aware-naive", func() Options {
				o := AwareOptions(netsim.NoDelay)
				o.Translation = wrapper.TranslationNaive
				return o
			}()},
			{"aware-h2", func() Options {
				o := AwareOptions(netsim.Gamma3)
				o.FilterPolicy = FilterHeuristic2
				return o
			}()},
			{"unaware-nl", func() Options {
				o := UnawareOptions(netsim.NoDelay)
				o.JoinOperator = JoinNestedLoop
				return o
			}()},
			{"aware-bind", func() Options {
				o := AwareOptions(netsim.NoDelay)
				o.JoinOperator = JoinBind
				return o
			}()},
		}
		for _, cfg := range configs {
			got := runQuery(t, lake, q, cfg.opts)
			assertSameBindings(t, bq.ID+"/"+cfg.name, got, want, vars)
		}
	}
}

// TestMixedLakeMatchesReference runs the queries against a lake where
// Diseasome and DrugBank stay native RDF.
func TestMixedLakeMatchesReference(t *testing.T) {
	relLake := testLake(t)
	ref := referenceGraph(t, relLake)
	mixed, err := lslod.BuildMixedLake(lslod.SmallScale(), 7, []string{lslod.DSDiseasome, lslod.DSDrugBank})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Q1", "Q2", "Q4", "Q5"} {
		q := lslod.Query(id)
		want := sparql.EvalQuery(ref, q)
		for _, opts := range []Options{UnawareOptions(netsim.NoDelay), AwareOptions(netsim.NoDelay)} {
			eng := NewEngine(mixed.Catalog)
			eng.Executor.NetworkScale = 0
			stream, _, err := eng.Run(context.Background(), q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := stream.Collect()
			assertSameBindings(t, "mixed/"+id, got, want, q.ProjectedVars())
		}
	}
}

func TestDecompose(t *testing.T) {
	q := lslod.Query("Q4")
	ssqs := Decompose(q)
	if len(ssqs) != 3 {
		t.Fatalf("Q4 decomposed into %d SSQs, want 3", len(ssqs))
	}
	subjects := []string{ssqs[0].SubjectVar, ssqs[1].SubjectVar, ssqs[2].SubjectVar}
	want := []string{"disease", "gene", "probe"}
	for i := range want {
		if subjects[i] != want[i] {
			t.Errorf("SSQ %d subject = %s, want %s", i, subjects[i], want[i])
		}
	}
	if c, ok := ssqs[0].TypeClass(); !ok || c != lslod.ClassDisease {
		t.Errorf("SSQ 0 class = %s/%v", c, ok)
	}
}

func TestDecomposeConstantSubject(t *testing.T) {
	q := sparql.MustParse(`SELECT ?n WHERE { <http://lake.tib.eu/diseasome/disease/1> <` + lslod.PredDiseaseName + `> ?n . }`)
	ssqs := Decompose(q)
	if len(ssqs) != 1 || ssqs[0].SubjectVar != "" {
		t.Fatalf("constant-subject decomposition broken: %+v", ssqs)
	}
}

func TestSourceSelectionByPredicate(t *testing.T) {
	lake := testLake(t)
	// No rdf:type: the class must be inferred from predicate coverage.
	q := sparql.MustParse(`SELECT ?d ?n WHERE { ?d <` + lslod.PredDiseaseName + `> ?n . ?d <` + lslod.PredDegree + `> ?deg . }`)
	ssqs := Decompose(q)
	cands, err := SelectSources(lake.Catalog, ssqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands[0]) != 1 || cands[0][0].Class != lslod.ClassDisease || cands[0][0].SourceID != lslod.DSDiseasome {
		t.Fatalf("candidates = %+v", cands[0])
	}
}

func TestSourceSelectionNoSource(t *testing.T) {
	lake := testLake(t)
	q := sparql.MustParse(`SELECT ?d WHERE { ?d <http://nowhere/unknownPredicate> ?x . }`)
	ssqs := Decompose(q)
	if _, err := SelectSources(lake.Catalog, ssqs); err == nil {
		t.Fatal("expected source-selection error for unknown predicate")
	}
}

// TestHeuristic1MergesQ2 checks the Q2 plan shape: aware merges the two
// Diseasome stars into one service; unaware keeps two services joined at
// the engine.
func TestHeuristic1MergesQ2(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	q := lslod.Query("Q2")

	aware, err := planner.Plan(q, AwareOptions(netsim.NoDelay))
	if err != nil {
		t.Fatal(err)
	}
	if n := CountServices(aware.Root); n != 1 {
		t.Errorf("aware Q2 has %d services, want 1 (merged):\n%s", n, aware.Explain())
	}
	if len(mergedServices(aware.Root)) != 1 {
		t.Errorf("aware Q2 has no merged service:\n%s", aware.Explain())
	}

	unaware, err := planner.Plan(q, UnawareOptions(netsim.NoDelay))
	if err != nil {
		t.Fatal(err)
	}
	if n := CountServices(unaware.Root); n != 2 {
		t.Errorf("unaware Q2 has %d services, want 2:\n%s", n, unaware.Explain())
	}
	if len(mergedServices(unaware.Root)) != 0 {
		t.Errorf("unaware Q2 merged services:\n%s", unaware.Explain())
	}
}

// TestHeuristic1RequiresIndex: joining on a NON-indexed attribute must not
// merge. Patient gender is denied an index; a query joining patient and
// gene stars via an unindexed path cannot exist directly, so instead probe
// mergeability of two stars sharing only an unindexed variable: species is
// unindexed, but it is not a join column; craft a same-source query joined
// on the probeset signal (unindexed at... signal is btree-indexed). Use
// tcga: patient star and a second patient star joined on gender.
func TestHeuristic1RequiresIndex(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	// Two stars over affymetrix joined on ?species (denied an index by the
	// 15% rule): Heuristic 1 must NOT merge them.
	q := sparql.MustParse(`SELECT ?a ?b WHERE {
		?a <` + rdf.RDFType + `> <` + lslod.ClassProbeset + `> .
		?a <` + lslod.PredSpecies + `> ?species .
		?b <` + rdf.RDFType + `> <` + lslod.ClassProbeset + `> .
		?b <` + lslod.PredSpecies + `> ?species .
		?b <` + lslod.PredProbeChromosome + `> "chr1" .
	}`)
	p, err := planner.Plan(q, AwareOptions(netsim.NoDelay))
	if err != nil {
		t.Fatal(err)
	}
	if n := CountServices(p.Root); n != 2 {
		t.Errorf("join over unindexed attribute was merged (%d services):\n%s", n, p.Explain())
	}
}

// TestHeuristic2FilterPlacement checks filter placement across policies
// for Q3 (indexed attribute).
func TestHeuristic2FilterPlacement(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	q := lslod.Query("Q3")

	pushedCount := func(p *Plan) int {
		total := 0
		var walk func(PlanNode)
		walk = func(n PlanNode) {
			switch v := n.(type) {
			case *ServiceNode:
				total += len(v.Req.Filters)
			case *JoinNode:
				walk(v.L)
				walk(v.R)
			case *FilterNode:
				walk(v.Child)
			case *UnionNode:
				for _, c := range v.Children {
					walk(c)
				}
			}
		}
		walk(p.Root)
		return total
	}

	// Unaware: never pushed.
	p, _ := planner.Plan(q, UnawareOptions(netsim.NoDelay))
	if pushedCount(p) != 0 {
		t.Errorf("unaware pushed filters:\n%s", p.Explain())
	}
	// Aware (source-if-indexed): pushed.
	p, _ = planner.Plan(q, AwareOptions(netsim.NoDelay))
	if pushedCount(p) != 1 {
		t.Errorf("aware did not push Q3's indexed filter:\n%s", p.Explain())
	}
	// Heuristic 2 on a fast network: engine level.
	opts := AwareOptions(netsim.Gamma1)
	opts.FilterPolicy = FilterHeuristic2
	p, _ = planner.Plan(q, opts)
	if pushedCount(p) != 0 {
		t.Errorf("heuristic2 pushed on a fast network:\n%s", p.Explain())
	}
	// Heuristic 2 on a slow network: pushed.
	opts = AwareOptions(netsim.Gamma3)
	opts.FilterPolicy = FilterHeuristic2
	p, _ = planner.Plan(q, opts)
	if pushedCount(p) != 1 {
		t.Errorf("heuristic2 did not push on a slow network:\n%s", p.Explain())
	}
	// Q4's species filter: denied an index, never pushed even when aware.
	p, _ = planner.Plan(lslod.Query("Q4"), AwareOptions(netsim.Gamma3))
	if pushedCount(p) != 0 {
		t.Errorf("aware pushed the unindexed species filter:\n%s", p.Explain())
	}
}

// TestMotivatingExamplePlans reproduces Figure 1's plan shapes for Q4.
func TestMotivatingExamplePlans(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	q := lslod.MotivatingExample()

	aware, _ := planner.Plan(q, AwareOptions(netsim.NoDelay))
	if n := CountServices(aware.Root); n != 2 {
		t.Errorf("aware Q4: %d services, want 2 (diseasome merged + affymetrix):\n%s", n, aware.Explain())
	}
	explain := aware.Explain()
	if !strings.Contains(explain, "MergedService[diseasome]") {
		t.Errorf("aware Q4 did not merge the diseasome stars:\n%s", explain)
	}
	if !strings.Contains(explain, "Filter{") {
		t.Errorf("aware Q4 lost the engine-level species filter:\n%s", explain)
	}

	unaware, _ := planner.Plan(q, UnawareOptions(netsim.NoDelay))
	if n := CountServices(unaware.Root); n != 3 {
		t.Errorf("unaware Q4: %d services, want 3:\n%s", n, unaware.Explain())
	}
}

// TestUnionWhenClassAmbiguous: a star whose predicates exist in two
// molecules must produce a union.
func TestUnionWhenClassAmbiguous(t *testing.T) {
	cat := catalog.New()
	g1, g2 := rdf.NewGraph(), rdf.NewGraph()
	p := "http://x/p"
	g1.Add(rdf.Triple{S: rdf.NewIRI("http://x/a1"), P: rdf.NewIRI(p), O: rdf.NewLiteral("v1")})
	g2.Add(rdf.Triple{S: rdf.NewIRI("http://x/b1"), P: rdf.NewIRI(p), O: rdf.NewLiteral("v2")})
	if err := cat.AddSource(&catalog.Source{ID: "s1", Model: catalog.ModelRDF, Graph: g1}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddSource(&catalog.Source{ID: "s2", Model: catalog.ModelRDF, Graph: g2}); err != nil {
		t.Fatal(err)
	}
	cat.AddMT(&catalog.RDFMT{Class: "http://x/C1", Predicates: []catalog.PredicateDesc{{Predicate: p}}, Sources: []string{"s1"}})
	cat.AddMT(&catalog.RDFMT{Class: "http://x/C2", Predicates: []catalog.PredicateDesc{{Predicate: p}}, Sources: []string{"s2"}})

	eng := NewEngine(cat)
	eng.Executor.NetworkScale = 0
	q := sparql.MustParse(`SELECT ?s ?v WHERE { ?s <` + p + `> ?v . }`)
	plan, err := eng.Planner.Plan(q, UnawareOptions(netsim.NoDelay))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.Root.(*UnionNode); !ok {
		t.Fatalf("expected a union plan, got:\n%s", plan.Explain())
	}
	stream, err := eng.Executor.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := stream.Collect(); len(got) != 2 {
		t.Fatalf("union answered %d, want 2: %v", len(got), got)
	}
}

// TestSolutionModifiers exercises DISTINCT/ORDER BY/LIMIT end to end.
func TestSolutionModifiers(t *testing.T) {
	lake := testLake(t)
	q := sparql.MustParse(`SELECT DISTINCT ?class WHERE {
		?d <` + rdf.RDFType + `> <` + lslod.ClassDisease + `> .
		?d <` + lslod.PredDiseaseClass + `> ?class .
	} ORDER BY ?class LIMIT 5`)
	got := runQuery(t, lake, q, AwareOptions(netsim.NoDelay))
	if len(got) != 5 {
		t.Fatalf("got %d answers, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1]["class"].Value > got[i]["class"].Value {
			t.Fatalf("ORDER BY violated: %v", got)
		}
	}
}

// TestExplainOutput sanity-checks the plan rendering.
func TestExplainOutput(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	p, err := planner.Plan(lslod.Query("Q2"), AwareOptions(netsim.Gamma2))
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	for _, want := range []string{"physical-design-aware", "MergedService[diseasome]", "pushed-filters"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestExecutorAccounting(t *testing.T) {
	lake := testLake(t)
	eng := NewEngine(lake.Catalog)
	eng.Executor.NetworkScale = 0
	stream, _, err := eng.Run(context.Background(), lslod.Query("Q3"), UnawareOptions(netsim.Gamma2))
	if err != nil {
		t.Fatal(err)
	}
	stream.Collect()
	if eng.Executor.TotalMessages() == 0 {
		t.Error("no messages accounted")
	}
	if eng.Executor.TotalSimulatedDelay() == 0 {
		t.Error("no simulated delay accounted")
	}
	eng.Executor.Reset()
	if eng.Executor.TotalMessages() != 0 || eng.Executor.TotalSimulatedDelay() != 0 {
		t.Error("Reset did not clear accounting")
	}
}

func TestPlanNodeStringAndPolicyNames(t *testing.T) {
	for _, p := range []FilterPolicy{FilterAtEngine, FilterAtSourceIfIndexed, FilterHeuristic2} {
		if p.String() == "" {
			t.Error("empty policy name")
		}
	}
	for _, j := range []JoinOperator{JoinSymmetricHash, JoinNestedLoop, JoinBind} {
		if j.String() == "" {
			t.Error("empty join operator name")
		}
	}
	for _, d := range []DecompositionMode{DecomposeStars, DecomposeTriples} {
		if d.String() == "" {
			t.Error("empty decomposition name")
		}
	}
}

func TestUnionNodeVarsAndExplain(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	q := sparql.MustParse(`SELECT ?x ?g WHERE {
		{ ?x <` + lslod.PredPAGene + `> ?g . } UNION { ?x <` + lslod.PredTargetGene + `> ?g . }
	}`)
	p, err := planner.Plan(q, UnawareOptions(netsim.NoDelay))
	if err != nil {
		t.Fatal(err)
	}
	vars := p.Root.Vars()
	if len(vars) != 2 {
		t.Errorf("union root vars = %v", vars)
	}
	if !strings.Contains(p.Explain(), "Union") {
		t.Errorf("explain missing Union:\n%s", p.Explain())
	}
}
