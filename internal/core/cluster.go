package core

import (
	"context"
	"sort"

	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/sparql"
	"ontario/internal/wrapper"
)

// Distributor executes plan fragments on a cluster of partitioned
// workers. internal/cluster provides the implementation; core only
// depends on this interface so the executor stays free of any transport
// concern.
type Distributor interface {
	// Workers returns the size of the worker pool.
	Workers() int
	// Service runs one wrapper request on every worker's partition of
	// the source, streaming the union of their batches.
	Service(ctx context.Context, sourceID string, req *wrapper.Request, schema *engine.Schema, d *dict.Dict, env FragmentEnv) (*engine.CStream, error)
	// ShuffleJoin hash-partitions both inputs by join key across the
	// workers and streams back the union of the per-worker symmetric
	// hash joins.
	ShuffleJoin(ctx context.Context, left, right *engine.CStream, joinVars []string, out *engine.Schema, d *dict.Dict, env FragmentEnv) (*engine.CStream, error)
	// Colocated reports whether the pool is a complete co-partitioned
	// cut of the lake under a common partition scheme — the precondition
	// for pushing a partition-aligned join down whole via RunFragment.
	Colocated(ctx context.Context, d *dict.Dict) bool
	// RunFragment runs a serializable plan subtree on every worker's
	// partition and streams back the union of their local results; the
	// caller must have proven (via partition analysis plus Colocated)
	// that local evaluation distributes over the partitioning.
	RunFragment(ctx context.Context, root PlanNode, out *engine.Schema, d *dict.Dict, env FragmentEnv) (*engine.CStream, error)
}

// FragmentEnv carries the per-execution context a distributor forwards to
// workers: the execution-shaping options plus the simulation parameters,
// and the execution's error sink for asynchronous fragment failures.
type FragmentEnv struct {
	Opts  Options
	Scale float64
	Seed  int64
	// Fail parks an asynchronous fragment failure on the execution (the
	// cursor's Err reports the first one); cancellation is ignored.
	Fail func(error)
}

// fragmentEnv builds the distributor context for this execution.
func (x *Execution) fragmentEnv(opts Options) FragmentEnv {
	return FragmentEnv{Opts: opts, Scale: x.scale, Seed: x.seed, Fail: x.fail}
}

// RunService executes one wrapper request on the columnar plane against
// this execution's catalog — the worker-side entry point for distributed
// scan fragments.
func (x *Execution) RunService(ctx context.Context, sourceID string, req *wrapper.Request, schema *engine.Schema, opts Options) (*engine.CStream, error) {
	w, err := x.wrapperFor(sourceID, opts)
	if err != nil {
		return nil, err
	}
	return wrapper.ExecuteColumnar(ctx, w, req, schema, x.dict)
}

// Dict returns the executor's shared term dictionary (the lake-lifetime
// dictionary every execution interns into).
func (e *Executor) Dict() *dict.Dict { return e.terms }

// unmergeServices rewrites every Heuristic-1 merged service (one request
// joining several stars inside a single relational source) into an
// engine-level symmetric-hash join of single-star services. Partitioned
// workers hold disjoint row-slices of a source, so a pushed-down
// intra-source join would silently drop every pair of stars living on
// different partitions; unmerging routes those joins through the
// distributed shuffle, which sees all partitions. The rewrite builds
// fresh nodes and leaves the (shared, read-only) plan tree untouched.
func unmergeServices(n PlanNode) PlanNode {
	switch v := n.(type) {
	case *ServiceNode:
		if v.Req == nil || len(v.Req.Stars) <= 1 {
			return v
		}
		return splitMergedService(v)
	case *JoinNode:
		l, r := unmergeServices(v.L), unmergeServices(v.R)
		if l == v.L && r == v.R {
			return v
		}
		c := *v
		c.L, c.R = l, r
		return &c
	case *LeftJoinNode:
		l, r := unmergeServices(v.L), unmergeServices(v.R)
		if l == v.L && r == v.R {
			return v
		}
		c := *v
		c.L, c.R = l, r
		return &c
	case *FilterNode:
		ch := unmergeServices(v.Child)
		if ch == v.Child {
			return v
		}
		c := *v
		c.Child = ch
		return &c
	case *UnionNode:
		changed := false
		children := make([]PlanNode, len(v.Children))
		for i, ch := range v.Children {
			children[i] = unmergeServices(ch)
			changed = changed || children[i] != ch
		}
		if !changed {
			return v
		}
		return &UnionNode{Children: children}
	default:
		return n
	}
}

// splitMergedService turns one merged multi-star service into a left-deep
// chain of symmetric-hash joins over single-star services. Pushed filters
// follow the first star that covers their variables; filters spanning
// stars lift to an engine-level FilterNode above the chain.
func splitMergedService(v *ServiceNode) PlanNode {
	stars := v.Req.Stars
	starVars := make([]map[string]bool, len(stars))
	for i, s := range stars {
		set := make(map[string]bool)
		for _, vn := range s.Vars() {
			set[vn] = true
		}
		starVars[i] = set
	}

	perStar := make([][]sparql.Expr, len(stars))
	var lifted []sparql.Expr
	for _, f := range v.Req.Filters {
		placed := false
		for i := range stars {
			covered := true
			for _, fv := range f.Vars() {
				if !starVars[i][fv] {
					covered = false
					break
				}
			}
			if covered {
				perStar[i] = append(perStar[i], f)
				placed = true
				break
			}
		}
		if !placed {
			lifted = append(lifted, f)
		}
	}

	var node PlanNode
	acc := make(map[string]bool)
	for i, st := range stars {
		svc := &ServiceNode{
			SourceID: v.SourceID,
			Req:      &wrapper.Request{Stars: []*wrapper.StarQuery{st}, Filters: perStar[i]},
		}
		if node == nil {
			node = svc
			for vn := range starVars[i] {
				acc[vn] = true
			}
			continue
		}
		var joinVars []string
		for vn := range starVars[i] {
			if acc[vn] {
				joinVars = append(joinVars, vn)
			}
		}
		sort.Strings(joinVars)
		node = &JoinNode{L: node, R: svc, JoinVars: joinVars, Op: JoinSymmetricHash}
		for vn := range starVars[i] {
			acc[vn] = true
		}
	}
	if len(lifted) > 0 {
		node = &FilterNode{Child: node, Exprs: lifted}
	}
	return node
}
