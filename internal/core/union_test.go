package core

import (
	"testing"

	"ontario/internal/lslod"
	"ontario/internal/netsim"
	"ontario/internal/sparql"
)

func unionQueries() map[string]string {
	return map[string]string{
		// Entities linked to a gene either via PharmGKB associations or
		// via DrugBank targets (two different sources).
		"gene-links": `
SELECT ?gene ?x WHERE {
  ?gene <` + rdfType + `> <` + lslod.ClassGene + `> .
  ?gene <` + lslod.PredGeneChromosome + `> "chr3" .
  { ?x <` + lslod.PredPAGene + `> ?gene . }
  UNION
  { ?x <` + lslod.PredTargetGene + `> ?gene . }
}`,
		// Union with branch filters.
		"heavy-or-charged": `
SELECT ?c WHERE {
  { ?c <` + lslod.PredMass + `> ?m . FILTER (?m > 700) }
  UNION
  { ?c <` + lslod.PredCharge + `> ?q . FILTER (?q = 3) }
}`,
		// Three branches across three sources.
		"drug-context": `
SELECT ?drug ?y WHERE {
  ?drug <` + rdfType + `> <` + lslod.ClassDrug + `> .
  ?drug <` + lslod.PredDrugCategory + `> "statin" .
  { ?y <` + lslod.PredCausedBy + `> ?drug . }
  UNION
  { ?y <` + lslod.PredIntervention + `> ?drug . }
  UNION
  { ?y <` + lslod.PredPADrug + `> ?drug . }
}`,
	}
}

func TestUnionMatchesReference(t *testing.T) {
	lake := testLake(t)
	ref := referenceGraph(t, lake)
	for name, text := range unionQueries() {
		q := sparql.MustParse(text)
		want := sparql.EvalQuery(ref, q)
		if len(want) == 0 {
			t.Fatalf("%s: reference returned no answers; weak test data", name)
		}
		for _, cfg := range []struct {
			label string
			opts  Options
		}{
			{"unaware", UnawareOptions(netsim.NoDelay)},
			{"aware", AwareOptions(netsim.NoDelay)},
		} {
			got := runQuery(t, lake, q, cfg.opts)
			assertSameBindings(t, name+"/"+cfg.label, got, want, q.ProjectedVars())
		}
	}
}

func TestUnionParser(t *testing.T) {
	q := sparql.MustParse(`SELECT ?x WHERE {
		?x <http://p/0> ?y .
		{ ?y <http://p/1> ?z . } UNION { ?y <http://p/2> ?z . FILTER (?z > 1) }
	}`)
	if len(q.Unions) != 1 || len(q.Unions[0].Branches) != 2 {
		t.Fatalf("unions = %+v", q.Unions)
	}
	if len(q.Unions[0].Branches[1].Filters) != 1 {
		t.Error("branch filter lost")
	}
	// Round trip.
	q2, err := sparql.Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if len(q2.Unions) != 1 || len(q2.Unions[0].Branches) != 2 {
		t.Error("union lost in round trip")
	}
	for _, bad := range []string{
		`SELECT ?x WHERE { { ?x ?p ?y . } }`,                                               // braced group without UNION
		`SELECT ?x WHERE { { ?x ?p ?y . } UNION { } }`,                                     // empty branch
		`SELECT ?x WHERE { { { ?x ?p ?y . } UNION { ?x ?p ?z . } } UNION { ?a ?b ?c . } }`, // nested
	} {
		if _, err := sparql.Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestPureUnionQuery(t *testing.T) {
	lake := testLake(t)
	ref := referenceGraph(t, lake)
	q := sparql.MustParse(`SELECT ?x WHERE {
		{ ?x <` + lslod.PredPathway + `> "glycolysis" . }
		UNION
		{ ?x <` + lslod.PredChebiName + `> "chebi-entity-1" . }
	}`)
	want := sparql.EvalQuery(ref, q)
	got := runQuery(t, lake, q, AwareOptions(netsim.NoDelay))
	assertSameBindings(t, "pure-union", got, want, q.ProjectedVars())
	if len(got) == 0 {
		t.Fatal("pure union returned nothing")
	}
}

func TestUnionPlanShape(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	q := sparql.MustParse(unionQueries()["drug-context"])
	p, err := planner.Plan(q, UnawareOptions(netsim.NoDelay))
	if err != nil {
		t.Fatal(err)
	}
	// Drug star + 3 branch services.
	if n := CountServices(p.Root); n != 4 {
		t.Errorf("union plan services = %d, want 4:\n%s", n, p.Explain())
	}
}
