package core

import (
	"fmt"
	"testing"

	"ontario/internal/catalog"
	"ontario/internal/netsim"
	"ontario/internal/rdb"
	"ontario/internal/sparql"
)

const (
	fpItemClass = "http://store/Item"
	fpSku       = "http://store/sku"  // backed by an indexed column
	fpNote      = "http://store/note" // backed by an unindexed column
)

// filterPolicyLake builds one relational source whose class has an indexed
// attribute (sku) and an unindexed one (note) — the minimal fixture to
// cross filter policies with index availability.
func filterPolicyLake(t *testing.T) *catalog.Catalog {
	t.Helper()
	db := rdb.NewDatabase("store")
	item, err := db.CreateTable(&rdb.Schema{
		Name: "item",
		Columns: []rdb.Column{
			{Name: "id", Type: rdb.TypeInt, NotNull: true},
			{Name: "sku", Type: rdb.TypeString, NotNull: true},
			{Name: "note", Type: rdb.TypeString, NotNull: true},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := item.Insert(rdb.Row{
			rdb.IntValue(int64(i)),
			rdb.StringValue(fmt.Sprintf("sku-%d", i)),
			rdb.StringValue(fmt.Sprintf("note-%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := item.CreateIndex(rdb.IndexSpec{Column: "sku", Kind: rdb.IndexHash}); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	if err := cat.AddSource(&catalog.Source{
		ID:    "store",
		Model: catalog.ModelRelational,
		DB:    db,
		Mappings: map[string]*catalog.ClassMapping{
			fpItemClass: {
				Class: fpItemClass, Table: "item",
				SubjectColumn: "id", SubjectTemplate: "http://store/item/{value}",
				Properties: map[string]*catalog.PropertyMapping{
					fpSku:  {Predicate: fpSku, Column: "sku"},
					fpNote: {Predicate: fpNote, Column: "note"},
				},
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	cat.AddMT(&catalog.RDFMT{
		Class:   fpItemClass,
		Sources: []string{"store"},
		Predicates: []catalog.PredicateDesc{
			{Predicate: fpSku}, {Predicate: fpNote},
		},
	})
	return cat
}

func pushedFilterCount(n PlanNode) int {
	total := 0
	switch v := n.(type) {
	case *ServiceNode:
		total += len(v.Req.Filters)
	case *JoinNode:
		total += pushedFilterCount(v.L) + pushedFilterCount(v.R)
	case *LeftJoinNode:
		total += pushedFilterCount(v.L) + pushedFilterCount(v.R)
	case *FilterNode:
		total += pushedFilterCount(v.Child)
	case *UnionNode:
		for _, c := range v.Children {
			total += pushedFilterCount(c)
		}
	}
	return total
}

// TestFilterPlacementPolicyTable crosses every filter policy with fast and
// slow network profiles and indexed/unindexed filtered attributes:
//
//   - FilterAtEngine never pushes;
//   - FilterAtSourceIfIndexed pushes exactly when the attribute is indexed,
//     regardless of the network;
//   - FilterHeuristic2 pushes only when the attribute is indexed AND the
//     network is slow (the paper's Heuristic 2 verbatim).
func TestFilterPlacementPolicyTable(t *testing.T) {
	cat := filterPolicyLake(t)
	queryFor := func(pred string) *sparql.Query {
		return sparql.MustParse(fmt.Sprintf(
			`SELECT ?i WHERE { ?i <%s> ?v . ?i <%s> ?w . FILTER (?v = "needle") }`, pred, fpNote))
	}
	networks := map[string]netsim.Profile{"fast": netsim.Gamma1, "slow": netsim.Gamma3}
	attrs := map[string]struct {
		pred    string
		indexed bool
	}{
		"indexed":   {fpSku, true},
		"unindexed": {fpNote, false},
	}
	cases := []struct {
		policy FilterPolicy
		// want reports, per (indexed, slow), whether the filter is pushed.
		want func(indexed, slow bool) bool
	}{
		{FilterAtEngine, func(indexed, slow bool) bool { return false }},
		{FilterAtSourceIfIndexed, func(indexed, slow bool) bool { return indexed }},
		{FilterHeuristic2, func(indexed, slow bool) bool { return indexed && slow }},
	}
	for _, tc := range cases {
		for netName, profile := range networks {
			for attrName, attr := range attrs {
				name := fmt.Sprintf("%s/%s/%s", tc.policy, netName, attrName)
				t.Run(name, func(t *testing.T) {
					opts := Options{Aware: true, FilterPolicy: tc.policy, Network: profile}
					plan, err := NewPlanner(cat).Plan(queryFor(attr.pred), opts)
					if err != nil {
						t.Fatal(err)
					}
					pushed := pushedFilterCount(plan.Root) > 0
					want := tc.want(attr.indexed, profile.IsSlow())
					if pushed != want {
						t.Errorf("pushed = %v, want %v:\n%s", pushed, want, plan.Explain())
					}
				})
			}
		}
	}
}

// TestFilterPlacementUnawareForcesEngine: without Aware the policy field is
// ignored and filters always run at the engine.
func TestFilterPlacementUnawareForcesEngine(t *testing.T) {
	cat := filterPolicyLake(t)
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?i WHERE { ?i <%s> ?v . FILTER (?v = "needle") }`, fpSku))
	opts := Options{Aware: false, FilterPolicy: FilterAtSourceIfIndexed, Network: netsim.Gamma3}
	plan, err := NewPlanner(cat).Plan(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pushedFilterCount(plan.Root) != 0 {
		t.Errorf("unaware plan pushed a filter:\n%s", plan.Explain())
	}
}
