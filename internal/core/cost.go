package core

import (
	"fmt"
	"math"
	"strings"
	"time"

	"ontario/internal/rdf"
	"ontario/internal/stats"
	"ontario/internal/wrapper"
)

// Estimate is the cost model's prediction for one plan node.
type Estimate struct {
	// Card is the estimated number of output bindings.
	Card float64
	// Msgs is the estimated number of simulated network messages needed to
	// produce the node's output.
	Msgs float64
	// Cost is the scalar optimization objective in millisecond-equivalents:
	// message latency under the active network profile plus transferred-
	// binding volume.
	Cost float64
}

// explain appends the estimate to an EXPLAIN line.
func (e *Estimate) explain(b *strings.Builder) {
	if e == nil {
		return
	}
	fmt.Fprintf(b, "  {est card=%.0f msgs=%.0f cost=%.1f}", e.Card, e.Msgs, e.Cost)
}

const (
	// unknownCard is the pessimistic cardinality for shapes the statistics
	// cannot describe; overestimating keeps batching the safe default.
	unknownCard = 1e7
	// perBindingMS prices shipping and processing one binding, so transfer
	// volume matters even on a zero-latency profile.
	perBindingMS = 0.01
	// minRTTMS floors the per-message latency so message counts keep
	// steering the optimizer under the No Delay profile.
	minRTTMS = 0.05
	// filterSelectivity is the flat selectivity charged per filter
	// expression (the model does not inspect filter shapes).
	filterSelectivity = 0.25
	// dpMaxLeaves bounds the dynamic-programming join ordering; above it
	// the ordering falls back to cost-greedy accumulation.
	dpMaxLeaves = 8
)

// costModel estimates cardinality, message count and cost for plan nodes
// from the statistics provider, pricing messages with the active network
// profile's mean latency.
type costModel struct {
	prov  stats.Provider
	opts  Options
	rtt   float64 // per-message latency, ms
	block int
	conc  int
}

func newCostModel(prov stats.Provider, opts Options) *costModel {
	rtt := float64(opts.Network.MeanLatency()) / float64(time.Millisecond)
	if rtt < minRTTMS {
		rtt = minRTTMS
	}
	return &costModel{
		prov:  prov,
		opts:  opts,
		rtt:   rtt,
		block: opts.EffectiveBindBlockSize(),
		conc:  opts.EffectiveBindConcurrency(),
	}
}

// rttFor resolves the per-message latency to price a service node with:
// the source's measured latency (a remote source's observed EWMA, inflated
// by its failure rate) when Options.MeasuredLatency knows it, the static
// network profile's mean otherwise.
func (cm *costModel) rttFor(n PlanNode) float64 {
	svc, ok := n.(*ServiceNode)
	if !ok || cm.opts.MeasuredLatency == nil {
		return cm.rtt
	}
	d, ok := cm.opts.MeasuredLatency(svc.SourceID)
	if !ok {
		return cm.rtt
	}
	ms := float64(d) / float64(time.Millisecond)
	if ms < minRTTMS {
		ms = minRTTMS
	}
	return ms
}

// estimate derives the estimate of a sub-plan, caching it on service and
// join nodes so EXPLAIN can render it.
func (cm *costModel) estimate(n PlanNode) Estimate {
	switch v := n.(type) {
	case *ServiceNode:
		if v.Est == nil {
			e := cm.serviceEstimate(v)
			v.Est = &e
		}
		return *v.Est
	case *JoinNode:
		if v.Est == nil {
			e := cm.operatorEstimate(v.Op, v.L, v.R, v.JoinVars)
			v.Est = &e
		}
		return *v.Est
	case *LeftJoinNode:
		l, r := cm.estimate(v.L), cm.estimate(v.R)
		return Estimate{Card: l.Card, Msgs: l.Msgs + r.Msgs, Cost: l.Cost + r.Cost}
	case *FilterNode:
		e := cm.estimate(v.Child)
		e.Card = math.Max(e.Card*filterSelectivity, 1)
		return e
	case *UnionNode:
		var out Estimate
		for _, c := range v.Children {
			e := cm.estimate(c)
			out.Card += e.Card
			out.Msgs += e.Msgs
			out.Cost += e.Cost
		}
		return out
	default:
		return Estimate{Card: unknownCard, Msgs: unknownCard, Cost: unknownCard * perBindingMS}
	}
}

// serviceEstimate prices a full scan of the request: every answer crosses
// the network as one message.
func (cm *costModel) serviceEstimate(n *ServiceNode) Estimate {
	card := unknownCard
	if src := cm.prov.Source(n.SourceID); src != nil {
		card = cm.requestCard(src, n.Req)
	}
	return Estimate{Card: card, Msgs: card, Cost: card * (cm.rttFor(n) + perBindingMS)}
}

// requestCard estimates a wrapper request's answers: per-star extents scaled
// by pattern selectivities; merged stars (Heuristic 1) join on an indexed
// attribute, approximated by the most selective star; pushed filters apply
// last.
func (cm *costModel) requestCard(src *stats.SourceStats, req *wrapper.Request) float64 {
	card := -1.0
	for _, star := range req.Stars {
		sc := cm.starCard(src, star)
		if card < 0 {
			card = sc
		} else {
			card = math.Max(math.Min(card, sc), 1)
		}
	}
	if card < 0 {
		card = unknownCard
	}
	for range req.Filters {
		card = math.Max(card*filterSelectivity, 1)
	}
	return card
}

// starCard estimates one star's answers at a source from the class extent
// and per-predicate statistics: variable objects multiply by the
// predicate's coverage×fanout, constant objects additionally divide by the
// distinct object count (equality selectivity).
func (cm *costModel) starCard(src *stats.SourceStats, star *wrapper.StarQuery) float64 {
	cs := src.Class(star.Class)
	if cs == nil {
		cs = src.Class("")
	}
	if cs == nil {
		return unknownCard
	}
	extent := math.Max(float64(cs.Extent), 1)
	card := extent
	if star.SubjectVar == "" {
		card = 1 // constant subject: one entity's star
	}
	for _, tp := range star.Patterns {
		if tp.P.IsVar || tp.P.Term.Value == rdf.RDFType {
			continue
		}
		ps := cs.Predicate(tp.P.Term.Value)
		if ps == nil {
			continue
		}
		var mult float64
		if star.SubjectVar == "" {
			mult = ps.Fanout()
		} else {
			mult = float64(ps.Count) / extent
		}
		if !tp.O.IsVar {
			mult /= math.Max(float64(ps.DistinctObjects), 1)
		}
		card *= mult
	}
	return math.Max(card, 1)
}

// joinCard estimates a join's output with the classic independence
// assumption |L ⋈ R| = |L|·|R| / max(V(L,v), V(R,v)), using per-variable
// distinct-value estimates so fanouts (one left value matching several
// right rows) grow the result instead of being clamped to the smaller
// input.
func (cm *costModel) joinCard(lNode, rNode PlanNode, joinVars []string) float64 {
	l, r := cm.estimate(lNode), cm.estimate(rNode)
	if len(joinVars) == 0 {
		return l.Card * r.Card
	}
	maxV := 1.0
	for _, v := range joinVars {
		dv := math.Max(cm.distinctOf(lNode, v), cm.distinctOf(rNode, v))
		if dv > maxV {
			maxV = dv
		}
	}
	return math.Max(l.Card*r.Card/maxV, 1)
}

// distinctOf estimates how many distinct values the sub-plan's output binds
// for variable v, capped by the output cardinality.
func (cm *costModel) distinctOf(n PlanNode, v string) float64 {
	card := cm.estimate(n).Card
	switch node := n.(type) {
	case *ServiceNode:
		if src := cm.prov.Source(node.SourceID); src != nil {
			if d := serviceDistinct(src, node.Req, v); d > 0 {
				return math.Min(d, card)
			}
		}
		return card
	case *JoinNode:
		return math.Min(cm.childDistinct(node.L, node.R, v), card)
	case *LeftJoinNode:
		return math.Min(cm.childDistinct(node.L, node.R, v), card)
	case *FilterNode:
		return math.Min(cm.distinctOf(node.Child, v), card)
	case *UnionNode:
		total := 0.0
		for _, c := range node.Children {
			total += cm.distinctOf(c, v)
		}
		return math.Min(math.Max(total, 1), card)
	default:
		return card
	}
}

func (cm *costModel) childDistinct(l, r PlanNode, v string) float64 {
	lHas, rHas := hasVar(l.Vars(), v), hasVar(r.Vars(), v)
	switch {
	case lHas && rHas:
		return math.Min(cm.distinctOf(l, v), cm.distinctOf(r, v))
	case lHas:
		return cm.distinctOf(l, v)
	case rHas:
		return cm.distinctOf(r, v)
	default:
		return 1
	}
}

func hasVar(vars []string, v string) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

// serviceDistinct reads the distinct-value statistic backing v in the
// request's stars: the class extent when v is a star subject, the
// predicate's distinct object count when v is a pattern object; 0 when the
// statistics do not cover v.
func serviceDistinct(src *stats.SourceStats, req *wrapper.Request, v string) float64 {
	for _, star := range req.Stars {
		cs := src.Class(star.Class)
		if cs == nil {
			cs = src.Class("")
		}
		if cs == nil {
			continue
		}
		if star.SubjectVar == v {
			return math.Max(float64(cs.Extent), 1)
		}
		for _, tp := range star.Patterns {
			if tp.O.IsVar && tp.O.Var == v && !tp.P.IsVar {
				if ps := cs.Predicate(tp.P.Term.Value); ps != nil {
					return math.Max(float64(ps.DistinctObjects), 1)
				}
			}
		}
	}
	return 0
}

// operatorEstimate prices a join under one physical operator. Dependent
// operators require a plain service on the right; the executor falls back
// to the hash join otherwise, and so does the estimate.
func (cm *costModel) operatorEstimate(op JoinOperator, lNode, rNode PlanNode, joinVars []string) Estimate {
	if op == JoinBind || op == JoinBlockBind {
		if _, ok := rNode.(*ServiceNode); ok {
			if op == JoinBlockBind {
				return cm.blockBindEstimate(lNode, rNode, joinVars)
			}
			return cm.bindEstimate(lNode, rNode, joinVars)
		}
	}
	return cm.hashEstimate(lNode, rNode, joinVars)
}

// hashEstimate: both inputs stream in full and are merged at the engine.
func (cm *costModel) hashEstimate(lNode, rNode PlanNode, joinVars []string) Estimate {
	l, r := cm.estimate(lNode), cm.estimate(rNode)
	card := cm.joinCard(lNode, rNode, joinVars)
	return Estimate{
		Card: card,
		Msgs: l.Msgs + r.Msgs,
		Cost: l.Cost + r.Cost + card*perBindingMS,
	}
}

// bindEstimate: one instantiated request per left binding, strictly
// sequential; every right answer crosses as its own message, and each
// request round-trips before the next.
func (cm *costModel) bindEstimate(lNode, rNode PlanNode, joinVars []string) Estimate {
	l := cm.estimate(lNode)
	card := cm.joinCard(lNode, rNode, joinVars)
	rtt := cm.rttFor(rNode)
	return Estimate{
		Card: card,
		Msgs: l.Msgs + card,
		Cost: l.Cost + l.Card*(rtt+perBindingMS) + card*(rtt+perBindingMS),
	}
}

// blockBindEstimate: ⌈|L|/B⌉ multi-seed requests, one response message per
// block; the whole left side ships to the source as seed bindings.
func (cm *costModel) blockBindEstimate(lNode, rNode PlanNode, joinVars []string) Estimate {
	l := cm.estimate(lNode)
	card := cm.joinCard(lNode, rNode, joinVars)
	blocks := math.Max(math.Ceil(l.Card/float64(cm.block)), 1)
	return Estimate{
		Card: card,
		Msgs: l.Msgs + blocks,
		Cost: l.Cost + blocks*cm.rttFor(rNode) + l.Card*perBindingMS + card*perBindingMS,
	}
}

// chooseJoin builds the cheapest join of l and r on their shared variables:
// a forced Options.JoinOperator is honored as-is (the ablation override);
// otherwise the physical operator is picked per join from the estimated
// left cardinality and the cost of re-scanning versus seeding the right
// side.
func (cm *costModel) chooseJoin(l, r *orderedPlan, shared []string) *orderedPlan {
	op := JoinSymmetricHash
	est := cm.hashEstimate(l.node, r.node, shared)
	if cm.opts.JoinOperator != JoinSymmetricHash {
		op = cm.opts.JoinOperator
		est = cm.operatorEstimate(op, l.node, r.node, shared)
	} else if _, isSvc := r.node.(*ServiceNode); isSvc && len(shared) > 0 {
		depOp := JoinBind
		if cm.block > 1 && l.est.Card >= float64(cm.block) {
			depOp = JoinBlockBind
		}
		depEst := cm.operatorEstimate(depOp, l.node, r.node, shared)
		if depEst.Cost < est.Cost {
			op, est = depOp, depEst
		}
	}
	node := &JoinNode{L: l.node, R: r.node, JoinVars: shared, Op: op, Est: &est}
	return &orderedPlan{node: node, est: est}
}

// partitionVars returns the set of variables the node's output stream is
// hash-partitioned by under cluster execution, or nil when the output is
// scattered. A single-star unseeded service is partitioned by its
// subject variable (PartitionLake routes every model's rows by the
// subject-term hash); a symmetric-hash join whose sides share a
// partition variable among its join variables keeps both sides' keys; a
// filter inherits its child; a union keeps the variables all children
// agree on. A non-nil result also proves the subtree serializes as a
// worker fragment: only those four node kinds can produce one.
//
// The analysis runs at execution time, not planning time: plans are
// cluster-agnostic (Options.Cluster is an execution option), so a cached
// plan shared between clustered and single-node runs carries no
// partition assumptions.
func partitionVars(n PlanNode) map[string]bool {
	switch v := n.(type) {
	case *ServiceNode:
		if v.Req == nil || len(v.Req.Stars) != 1 || v.Req.Seed != nil || len(v.Req.Seeds) > 0 {
			return nil
		}
		s := v.Req.Stars[0]
		if s.SubjectVar == "" {
			return nil
		}
		return map[string]bool{s.SubjectVar: true}
	case *JoinNode:
		if v.Op != JoinSymmetricHash {
			return nil
		}
		pl := partitionVars(v.L)
		if pl == nil {
			return nil
		}
		pr := partitionVars(v.R)
		if pr == nil {
			return nil
		}
		aligned := false
		for _, u := range v.JoinVars {
			if pl[u] && pr[u] {
				aligned = true
				break
			}
		}
		if !aligned {
			return nil
		}
		// Joined rows co-reside with both inputs, so every partition
		// variable of either side still locates the row's worker.
		out := make(map[string]bool, len(pl)+len(pr))
		for u := range pl {
			out[u] = true
		}
		for u := range pr {
			out[u] = true
		}
		return out
	case *FilterNode:
		return partitionVars(v.Child)
	case *UnionNode:
		if len(v.Children) == 0 {
			return nil
		}
		acc := partitionVars(v.Children[0])
		for _, c := range v.Children[1:] {
			if acc == nil {
				return nil
			}
			p := partitionVars(c)
			if p == nil {
				return nil
			}
			for u := range acc {
				if !p[u] {
					delete(acc, u)
				}
			}
		}
		if len(acc) == 0 {
			return nil
		}
		return acc
	default:
		return nil
	}
}

// coPartitioned reports whether the join's matching row pairs provably
// co-reside on single workers — both sides partitioned by a common join
// variable — so each worker can join its partition locally and ship only
// results: zero shuffled batches.
func coPartitioned(v *JoinNode) bool { return partitionVars(v) != nil }
