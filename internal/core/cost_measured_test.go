package core

import (
	"testing"
	"time"

	"ontario/internal/netsim"
)

// TestCostModelMeasuredLatency checks that a source's observed latency
// replaces the static network profile in the cost model, and that sources
// without a measurement keep the profile's mean.
func TestCostModelMeasuredLatency(t *testing.T) {
	measured := map[string]time.Duration{
		"slow-remote": 80 * time.Millisecond,
		"fast-remote": 100 * time.Microsecond,
	}
	opts := Options{
		Network: netsim.Gamma1,
		MeasuredLatency: func(id string) (time.Duration, bool) {
			d, ok := measured[id]
			return d, ok
		},
	}
	cm := newCostModel(nil, opts)

	if got := cm.rttFor(&ServiceNode{SourceID: "slow-remote"}); got != 80 {
		t.Fatalf("measured slow source rtt = %v ms, want 80", got)
	}
	if got := cm.rttFor(&ServiceNode{SourceID: "fast-remote"}); got != 0.1 {
		t.Fatalf("measured fast source rtt = %v ms, want 0.1", got)
	}
	if got := cm.rttFor(&ServiceNode{SourceID: "local"}); got != cm.rtt {
		t.Fatalf("unmeasured source rtt = %v ms, want profile mean %v", got, cm.rtt)
	}
	// A sub-millisecond-floor measurement must not collapse to zero cost.
	measured["fast-remote"] = time.Nanosecond
	if got := cm.rttFor(&ServiceNode{SourceID: "fast-remote"}); got != minRTTMS {
		t.Fatalf("floored rtt = %v ms, want %v", got, minRTTMS)
	}

	// Without MeasuredLatency every node prices at the profile mean.
	cm2 := newCostModel(nil, Options{Network: netsim.Gamma1})
	if got := cm2.rttFor(&ServiceNode{SourceID: "slow-remote"}); got != cm2.rtt {
		t.Fatalf("static rtt = %v ms, want %v", got, cm2.rtt)
	}
}
