package core

import (
	"fmt"

	"ontario/internal/catalog"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
	"ontario/internal/stats"
	"ontario/internal/wrapper"
)

// Planner generates query execution plans over a data-lake catalog.
type Planner struct {
	cat  *catalog.Catalog
	prov *stats.CatalogProvider
}

// NewPlanner returns a planner for the catalog.
func NewPlanner(cat *catalog.Catalog) *Planner {
	return &Planner{cat: cat, prov: stats.NewProvider(cat)}
}

// Stats exposes the planner's statistics provider (shared across plans, so
// per-source statistics are computed once per catalog).
func (p *Planner) Stats() stats.Provider { return p.prov }

// unit is one plan-generation unit: a set of stars bound to a candidate.
type unit struct {
	stars []*SSQ
	// classes holds the resolved class per star (parallel to stars); it is
	// authoritative for single-candidate and merged units.
	classes []string
	// cands holds the alternative (class, source) pairs; merging only
	// happens for single-candidate units.
	cands  []Candidate
	merged bool
}

func (u *unit) vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range u.stars {
		for _, v := range s.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Plan decomposes, selects sources, applies the heuristics per opts, and
// returns the execution plan.
func (p *Planner) Plan(q *sparql.Query, opts Options) (*Plan, error) {
	var ssqs []*SSQ
	if opts.Decomposition == DecomposeTriples {
		ssqs = DecomposeTriplePatterns(q)
	} else {
		ssqs = Decompose(q)
	}
	if len(ssqs) == 0 && len(q.Unions) == 0 {
		return nil, fmt.Errorf("core: query has no triple patterns")
	}
	if len(ssqs) == 0 {
		// Pure-union query: plan the union groups and join them.
		return p.planUnionOnly(q, opts)
	}
	cands, err := SelectSources(p.cat, ssqs)
	if err != nil {
		return nil, err
	}

	units := make([]*unit, len(ssqs))
	for i := range ssqs {
		u := &unit{stars: []*SSQ{ssqs[i]}, cands: cands[i]}
		if len(cands[i]) == 1 {
			u.classes = []string{cands[i][0].Class}
		}
		units[i] = u
	}

	// Heuristic 1: combine SSQs over the same relational endpoint when the
	// join attribute is indexed.
	if opts.Aware {
		units = p.applyHeuristic1(units)
	}

	// Filter placement (Heuristic 2 family).
	policy := FilterAtEngine
	if opts.Aware {
		policy = opts.FilterPolicy
	}
	pushed := make([][]sparql.Expr, len(units))
	var engineFilters []sparql.Expr
	for _, f := range q.Filters {
		ui := p.placeFilter(f, units, policy, opts)
		if ui >= 0 {
			pushed[ui] = append(pushed[ui], f)
		} else {
			engineFilters = append(engineFilters, f)
		}
	}

	// Build leaf nodes.
	leaves := make([]PlanNode, len(units))
	for i, u := range units {
		leaves[i] = p.unitNode(u, pushed[i])
	}

	// Join ordering: cost-based (DP/cost-greedy with per-join operator
	// selection) or the legacy shared-variable greedy tree.
	cm := newCostModel(p.prov, opts)
	root := p.buildJoinTree(leaves, opts, cm)

	// UNION groups are planned per branch and joined with the required
	// part on the shared variables.
	for _, ug := range q.Unions {
		un, err := p.planUnionGroup(ug, opts)
		if err != nil {
			return nil, err
		}
		root = &JoinNode{
			L: root, R: un,
			JoinVars: sparql.SharedVars(root.Vars(), un.Vars()),
			Op:       opts.JoinOperator,
		}
	}

	// OPTIONAL groups are planned as sub-plans left-joined at the engine;
	// their filters follow SPARQL LeftJoin semantics (evaluated over the
	// merged binding).
	for _, og := range q.Optionals {
		sub, err := p.planPatterns(og.Patterns, opts)
		if err != nil {
			return nil, err
		}
		root = &LeftJoinNode{L: root, R: sub, Filters: og.Filters}
	}

	// Engine-level filters: attach at the lowest node covering their vars
	// (here: group on top; sub-tree placement happens for single-unit
	// coverage via placeFilter already).
	if len(engineFilters) > 0 {
		root = &FilterNode{Child: root, Exprs: engineFilters}
	}

	p.finishPlan(root, opts, cm)
	return &Plan{Query: q, Root: root, Opts: opts}, nil
}

// buildJoinTree orders the leaves into one join tree — the single ordering
// routine behind Plan and planPatterns.
func (p *Planner) buildJoinTree(leaves []PlanNode, opts Options, cm *costModel) PlanNode {
	if opts.Optimizer == OptimizerCost {
		return cm.orderJoins(leaves)
	}
	return orderJoinsGreedyVars(leaves, opts.JoinOperator)
}

// finishPlan applies the bind-join promotion and leaves the tree's
// estimates consistent: after a promotion the stale join estimates (priced
// for the sequential operator) are recomputed; greedy plans render without
// estimates, as before the cost optimizer existed.
func (p *Planner) finishPlan(root PlanNode, opts Options, cm *costModel) {
	promoted := p.applyBindJoinHeuristic(root, opts, cm)
	if opts.Optimizer != OptimizerCost {
		clearEstimates(root, true)
		return
	}
	if promoted {
		clearEstimates(root, false)
		cm.estimate(root)
	}
}

// clearEstimates drops the join estimates of the tree (they embed operator
// prices); withServices also drops the service-scan estimates.
func clearEstimates(n PlanNode, withServices bool) {
	switch v := n.(type) {
	case *ServiceNode:
		if withServices {
			v.Est = nil
		}
	case *JoinNode:
		v.Est = nil
		clearEstimates(v.L, withServices)
		clearEstimates(v.R, withServices)
	case *LeftJoinNode:
		clearEstimates(v.L, withServices)
		clearEstimates(v.R, withServices)
	case *FilterNode:
		clearEstimates(v.Child, withServices)
	case *UnionNode:
		for _, c := range v.Children {
			clearEstimates(c, withServices)
		}
	}
}

// applyBindJoinHeuristic upgrades sequential bind joins to block bind
// joins when the left input is estimated to deliver at least one full
// block of bindings: that is when batching pays — one multi-seed request
// replaces a block's worth of per-binding requests. Small left inputs stay
// on the sequential operator, which reaches the source without waiting for
// a block to fill. Cardinalities come from the statistics-backed cost
// model; under the cost optimizer the pass only matters for a forced
// JoinBind (the per-join selection already decided everything else). It
// reports whether any join was promoted, so the caller can refresh stale
// estimates.
func (p *Planner) applyBindJoinHeuristic(n PlanNode, opts Options, cm *costModel) bool {
	promoted := false
	switch v := n.(type) {
	case *JoinNode:
		promoted = p.applyBindJoinHeuristic(v.L, opts, cm) || promoted
		promoted = p.applyBindJoinHeuristic(v.R, opts, cm) || promoted
		if v.Op != JoinBind {
			return promoted
		}
		if _, ok := v.R.(*ServiceNode); !ok {
			return promoted
		}
		// A block size of 1 disables the promotion entirely — it is the
		// explicit way to keep the sequential operator (e.g. as a
		// measurement baseline) — regardless of the cardinality estimate.
		blockSize := opts.EffectiveBindBlockSize()
		if blockSize <= 1 {
			return promoted
		}
		if cm.estimate(v.L).Card >= float64(blockSize) {
			v.Op = JoinBlockBind
			promoted = true
		}
	case *LeftJoinNode:
		promoted = p.applyBindJoinHeuristic(v.L, opts, cm) || promoted
		promoted = p.applyBindJoinHeuristic(v.R, opts, cm) || promoted
	case *FilterNode:
		promoted = p.applyBindJoinHeuristic(v.Child, opts, cm)
	case *UnionNode:
		for _, c := range v.Children {
			promoted = p.applyBindJoinHeuristic(c, opts, cm) || promoted
		}
	}
	return promoted
}

// planUnionGroup plans every branch (patterns plus branch filters at the
// engine) and unions them.
func (p *Planner) planUnionGroup(ug sparql.UnionGroup, opts Options) (PlanNode, error) {
	un := &UnionNode{}
	for _, br := range ug.Branches {
		sub, err := p.planPatterns(br.Patterns, opts)
		if err != nil {
			return nil, err
		}
		if len(br.Filters) > 0 {
			sub = &FilterNode{Child: sub, Exprs: br.Filters}
		}
		un.Children = append(un.Children, sub)
	}
	return un, nil
}

// planUnionOnly handles queries whose WHERE clause is only UNION groups.
func (p *Planner) planUnionOnly(q *sparql.Query, opts Options) (*Plan, error) {
	var root PlanNode
	for _, ug := range q.Unions {
		un, err := p.planUnionGroup(ug, opts)
		if err != nil {
			return nil, err
		}
		if root == nil {
			root = un
			continue
		}
		root = &JoinNode{
			L: root, R: un,
			JoinVars: sparql.SharedVars(root.Vars(), un.Vars()),
			Op:       opts.JoinOperator,
		}
	}
	if root == nil {
		return nil, fmt.Errorf("core: query has no triple patterns")
	}
	for _, og := range q.Optionals {
		sub, err := p.planPatterns(og.Patterns, opts)
		if err != nil {
			return nil, err
		}
		root = &LeftJoinNode{L: root, R: sub, Filters: og.Filters}
	}
	if len(q.Filters) > 0 {
		root = &FilterNode{Child: root, Exprs: q.Filters}
	}
	p.finishPlan(root, opts, newCostModel(p.prov, opts))
	return &Plan{Query: q, Root: root, Opts: opts}, nil
}

// planPatterns plans a bare basic graph pattern (no filter placement):
// decomposition, source selection, Heuristic 1, join ordering. Used for
// OPTIONAL groups.
func (p *Planner) planPatterns(patterns []sparql.TriplePattern, opts Options) (PlanNode, error) {
	sub := &sparql.Query{Patterns: patterns}
	var ssqs []*SSQ
	if opts.Decomposition == DecomposeTriples {
		ssqs = DecomposeTriplePatterns(sub)
	} else {
		ssqs = Decompose(sub)
	}
	cands, err := SelectSources(p.cat, ssqs)
	if err != nil {
		return nil, err
	}
	units := make([]*unit, len(ssqs))
	for i := range ssqs {
		u := &unit{stars: []*SSQ{ssqs[i]}, cands: cands[i]}
		if len(cands[i]) == 1 {
			u.classes = []string{cands[i][0].Class}
		}
		units[i] = u
	}
	if opts.Aware {
		units = p.applyHeuristic1(units)
	}
	leaves := make([]PlanNode, len(units))
	for i, u := range units {
		leaves[i] = p.unitNode(u, nil)
	}
	return p.buildJoinTree(leaves, opts, newCostModel(p.prov, opts)), nil
}

// applyHeuristic1 merges star units pairwise (transitively) when they have
// a single candidate over the same relational source, share a join
// variable, and the attribute backing that variable is indexed on both
// sides.
func (p *Planner) applyHeuristic1(units []*unit) []*unit {
	changed := true
	for changed {
		changed = false
	outer:
		for i := 0; i < len(units); i++ {
			for j := i + 1; j < len(units); j++ {
				if p.mergeable(units[i], units[j]) {
					units[i].stars = append(units[i].stars, units[j].stars...)
					units[i].classes = append(units[i].classes, units[j].classes...)
					units[i].merged = true
					units = append(units[:j], units[j+1:]...)
					changed = true
					break outer
				}
			}
		}
	}
	return units
}

// mergeable implements Heuristic 1's precondition.
func (p *Planner) mergeable(a, b *unit) bool {
	if len(a.cands) != 1 || len(b.cands) != 1 {
		return false
	}
	ca, cb := a.cands[0], b.cands[0]
	if ca.SourceID != cb.SourceID {
		return false
	}
	src := p.cat.Source(ca.SourceID)
	if src == nil || src.Model != catalog.ModelRelational {
		return false
	}
	shared := sparql.SharedVars(varsOfStars(a.stars), varsOfStars(b.stars))
	if len(shared) == 0 {
		return false
	}
	// The join attribute must be indexed on both sides for at least one
	// shared variable.
	for _, v := range shared {
		if p.varIndexedInUnit(src, a, v) && p.varIndexedInUnit(src, b, v) {
			return true
		}
	}
	return false
}

func varsOfStars(stars []*SSQ) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range stars {
		for _, v := range s.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// varIndexedInUnit reports whether, in every star of the unit where v
// occurs, the storage column backing v is indexed at src.
func (p *Planner) varIndexedInUnit(src *catalog.Source, u *unit, v string) bool {
	occurs := false
	for si, star := range u.stars {
		class := u.cands[0].Class
		if si < len(u.classes) {
			class = u.classes[si]
		}
		cm := src.Mapping(class)
		if cm == nil {
			return false
		}
		if star.SubjectVar == v {
			occurs = true
			if !src.SubjectIndexed(cm) {
				return false
			}
			continue
		}
		for _, tp := range star.Patterns {
			if tp.O.IsVar && tp.O.Var == v {
				occurs = true
				if tp.P.IsVar {
					return false
				}
				if tp.P.Term.Value == rdf.RDFType {
					continue
				}
				if !src.HasIndexOn(cm, tp.P.Term.Value, false) {
					return false
				}
			}
		}
	}
	return occurs
}

// placeFilter decides where a filter runs. It returns the index of the
// unit to push it into, or -1 for engine-level evaluation.
func (p *Planner) placeFilter(f sparql.Expr, units []*unit, policy FilterPolicy, opts Options) int {
	fvars := f.Vars()
	if len(fvars) == 0 {
		return -1
	}
	// Find the unique unit covering all filter variables.
	owner := -1
	for i, u := range units {
		if coversAll(u.vars(), fvars) {
			if owner >= 0 {
				return -1 // ambiguous: evaluate at engine
			}
			owner = i
		}
	}
	if owner < 0 {
		return -1
	}
	u := units[owner]
	if len(u.cands) != 1 {
		return -1 // unioned star: engine level
	}
	src := p.cat.Source(u.cands[0].SourceID)
	if src == nil {
		return -1
	}
	if src.Model == catalog.ModelRDF {
		// RDF endpoints accept the filter as part of the sub-query in both
		// plan types; pushing costs nothing model-wise. The paper's
		// heuristics only concern relational sources.
		if policy == FilterAtEngine {
			return -1
		}
		return owner
	}
	indexed := p.filterAttrsIndexed(src, u, fvars)
	switch policy {
	case FilterAtSourceIfIndexed:
		if indexed {
			return owner
		}
		return -1
	case FilterHeuristic2:
		if indexed && opts.Network.IsSlow() {
			return owner
		}
		return -1
	default:
		return -1
	}
}

func coversAll(have, need []string) bool {
	set := map[string]bool{}
	for _, v := range have {
		set[v] = true
	}
	for _, v := range need {
		if !set[v] {
			return false
		}
	}
	return true
}

// filterAttrsIndexed reports whether every filter variable is backed by an
// indexed column in the unit's stars.
func (p *Planner) filterAttrsIndexed(src *catalog.Source, u *unit, fvars []string) bool {
	for _, v := range fvars {
		if !p.varIndexedInUnit(src, u, v) {
			return false
		}
	}
	return true
}

// unitNode builds the plan node for a unit: a ServiceNode per candidate,
// wrapped in a Union when several candidates exist.
func (p *Planner) unitNode(u *unit, pushed []sparql.Expr) PlanNode {
	mkService := func(c Candidate) *ServiceNode {
		req := &wrapper.Request{Filters: pushed}
		for si, star := range u.stars {
			class := c.Class
			if si < len(u.classes) {
				class = u.classes[si]
			}
			if tc, ok := star.TypeClass(); ok {
				class = tc
			}
			req.Stars = append(req.Stars, &wrapper.StarQuery{
				SubjectVar: star.SubjectVar,
				Class:      class,
				Patterns:   starPatterns(star),
			})
		}
		return &ServiceNode{SourceID: c.SourceID, Req: req, Merged: u.merged}
	}
	if len(u.cands) == 1 {
		return mkService(u.cands[0])
	}
	un := &UnionNode{}
	for _, c := range u.cands {
		un.Children = append(un.Children, mkService(c))
	}
	return un
}

func starPatterns(star *SSQ) []sparql.TriplePattern {
	return append([]sparql.TriplePattern(nil), star.Patterns...)
}
