package core

import (
	"context"
	"fmt"
	"strings"

	"ontario/internal/dict"
	"ontario/internal/engine"
	"ontario/internal/sparql"
	"ontario/internal/trace"
	"ontario/internal/wrapper"
)

// ExecuteColumnar runs the plan on the dictionary-encoded columnar data
// plane — the default exchange — and returns the answer stream, plus the
// dictionary the consumer needs to materialize terms from the IDs (the
// Results cursor and the server's JSON writer do this late, at the very
// edge). The dictionary is the executor's engine-lifetime one, so
// repeated queries over the static lake re-intern nothing new; an
// execution created without an executor falls back to a private
// dictionary. The stream applies the query's solution modifiers.
//
// Execute remains the row-at-a-time reference pipeline; Options.
// RowExchange selects it.
func (x *Execution) ExecuteColumnar(ctx context.Context, p *Plan) (*engine.CStream, *dict.Dict, error) {
	qt := trace.FromContext(ctx)
	if qt == nil {
		qt = trace.NewQueryTrace()
		ctx = trace.WithQuery(ctx, qt)
	}
	x.mu.Lock()
	x.qt = qt
	x.mu.Unlock()

	d := x.dict
	if d == nil {
		d = dict.New()
	}
	rootNode := p.Root
	if p.Opts.Cluster != nil {
		// Partitioned workers cannot answer a pushed-down intra-source
		// join over rows split across partitions; route merged stars
		// through the distributed shuffle instead.
		rootNode = unmergeServices(rootNode)
	}
	root, err := x.runColumnar(ctx, rootNode, p.Opts, d)
	if err != nil {
		return nil, nil, err
	}
	q := p.Query
	s := root
	batch := p.Opts.EffectiveBatchSize()
	if vars := q.ProjectedVars(); len(vars) > 0 {
		mctx := engine.WithOpStats(ctx, x.modifierStats("project", strings.Join(vars, ",")))
		s = engine.CProject(mctx, s, vars, batch)
	}
	if q.Distinct {
		mctx := engine.WithOpStats(ctx, x.modifierStats("distinct", ""))
		s = engine.CDistinct(mctx, s, batch)
	}
	if len(q.OrderBy) > 0 {
		mctx := engine.WithOpStats(ctx, x.modifierStats("order-by", ""))
		s = engine.COrderBy(mctx, s, q.OrderBy, d, batch)
	}
	if q.Offset > 0 {
		mctx := engine.WithOpStats(ctx, x.modifierStats("offset", ""))
		s = engine.COffset(mctx, s, q.Offset, batch)
	}
	if q.Limit >= 0 {
		mctx := engine.WithOpStats(ctx, x.modifierStats("limit", ""))
		s = engine.CLimit(mctx, s, q.Limit, batch)
	}
	return s, d, nil
}

// emptyCStream returns a closed columnar stream (a failed service's
// stand-in while the join keeps draining).
func emptyCStream(schema *engine.Schema) *engine.CStream {
	s := engine.NewCStream(schema, 0)
	s.Close()
	return s
}

// runColumnar mirrors run over the columnar exchange: the same plan
// shapes, operator kinds and stats registration, with every operator's
// output schema fixed to its plan node's variables.
func (x *Execution) runColumnar(ctx context.Context, n PlanNode, opts Options, d *dict.Dict) (*engine.CStream, error) {
	switch v := n.(type) {
	case *ServiceNode:
		schema := engine.NewSchema(v.Vars())
		if dist := opts.Cluster; dist != nil {
			s, err := dist.Service(ctx, v.SourceID, v.Req, schema, d, x.fragmentEnv(opts))
			if err != nil {
				return nil, err
			}
			return engine.CMeter(ctx, s, x.stats(v, "service", v.SourceID)), nil
		}
		w, err := x.wrapperFor(v.SourceID, opts)
		if err != nil {
			return nil, err
		}
		s, err := wrapper.ExecuteColumnar(ctx, w, v.Req, schema, d)
		if err != nil {
			return nil, err
		}
		// Leaf streams are produced inside the wrapper; a metering relay
		// attributes the production to the service node's stats.
		return engine.CMeter(ctx, s, x.stats(v, "service", v.SourceID)), nil
	case *JoinNode:
		out := engine.NewSchema(v.Vars())
		if dist := opts.Cluster; dist != nil && coPartitioned(v) && dist.Colocated(ctx, d) {
			// Both sides are partitioned by a shared join variable and the
			// pool is a complete co-partitioned cut of the lake: ship the
			// subtree whole, each worker joins its own partition locally,
			// and only results cross the wire — zero shuffled batches.
			st := x.stats(v, "co-join", strings.Join(v.JoinVars, ","))
			jctx := engine.WithOpStats(ctx, st)
			s, err := dist.RunFragment(jctx, v, out, d, x.fragmentEnv(opts))
			if err != nil {
				return nil, err
			}
			return engine.CMeter(jctx, s, st), nil
		}
		if v.Op == JoinBind || v.Op == JoinBlockBind {
			if svc, ok := v.R.(*ServiceNode); ok {
				left, err := x.runColumnar(ctx, v.L, opts, d)
				if err != nil {
					return nil, err
				}
				// Under cluster execution seeded requests fan out to the
				// worker pool instead of a local wrapper; the partitions are
				// disjoint so the union over workers answers each seed
				// exactly once.
				dist := opts.Cluster
				var w wrapper.Wrapper
				if dist == nil {
					var err error
					w, err = x.wrapperFor(svc.SourceID, opts)
					if err != nil {
						return nil, err
					}
				}
				runSvc := func(ctx context.Context, req *wrapper.Request, schema *engine.Schema) (*engine.CStream, error) {
					if dist != nil {
						return dist.Service(ctx, svc.SourceID, req, schema, d, x.fragmentEnv(opts))
					}
					return wrapper.ExecuteColumnar(ctx, w, req, schema, d)
				}
				svcStats := x.stats(svc, "service", svc.SourceID)
				// One schema per service node: every seeded invocation of
				// the right side shares it, so the join resolves the right
				// layout once.
				svcSchema := engine.NewSchema(svc.Vars())
				if v.Op == JoinBlockBind {
					service := func(ctx context.Context, seeds []sparql.Binding) *engine.CStream {
						if len(seeds) == 0 {
							// An unconstrained block (cross product) is still
							// one block request — and one response message —
							// not a fallback to per-answer retrieval.
							seeds = []sparql.Binding{sparql.NewBinding()}
						}
						req := &wrapper.Request{
							Stars:   svc.Req.Stars,
							Filters: svc.Req.Filters,
							Seeds:   seeds,
						}
						s, err := runSvc(ctx, req, svcSchema)
						if err != nil {
							// The join keeps draining other blocks; park the
							// failure so the consumer sees it after the stream.
							x.fail(fmt.Errorf("source %s: %w", svc.SourceID, err))
							return emptyCStream(svcSchema)
						}
						return engine.CMeter(ctx, s, svcStats)
					}
					jctx := engine.WithOpStats(ctx,
						x.stats(v, "block-bind-join", strings.Join(v.JoinVars, ",")))
					return engine.CBlockBindJoin(jctx, left, service, v.JoinVars, out, d,
						opts.EffectiveBindBlockSize(), opts.EffectiveBindConcurrency(),
						opts.EffectiveBatchSize()), nil
				}
				service := func(ctx context.Context, seed sparql.Binding) *engine.CStream {
					req := &wrapper.Request{
						Stars:   svc.Req.Stars,
						Filters: svc.Req.Filters,
						Seed:    seed,
					}
					s, err := runSvc(ctx, req, svcSchema)
					if err != nil {
						x.fail(fmt.Errorf("source %s: %w", svc.SourceID, err))
						return emptyCStream(svcSchema)
					}
					return engine.CMeter(ctx, s, svcStats)
				}
				jctx := engine.WithOpStats(ctx,
					x.stats(v, "bind-join", strings.Join(v.JoinVars, ",")))
				return engine.CBindJoin(jctx, left, service, v.JoinVars, out, d,
					opts.EffectiveBatchSize()), nil
			}
			// Fall through to symmetric hash when the right side is not a
			// plain service.
		}
		left, err := x.runColumnar(ctx, v.L, opts, d)
		if err != nil {
			return nil, err
		}
		right, err := x.runColumnar(ctx, v.R, opts, d)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case JoinNestedLoop:
			jctx := engine.WithOpStats(ctx,
				x.stats(v, "nested-loop-join", strings.Join(v.JoinVars, ",")))
			return engine.CNestedLoopJoin(jctx, left, right, v.JoinVars, out,
				opts.EffectiveBatchSize()), nil
		default:
			if dist := opts.Cluster; dist != nil {
				// The morsel-sharded exchange becomes the distributed
				// shuffle: rows shard by join-key hash across workers
				// instead of across local shard workers.
				jctx := engine.WithOpStats(ctx,
					x.stats(v, "shuffle-join", strings.Join(v.JoinVars, ",")))
				return dist.ShuffleJoin(jctx, left, right, v.JoinVars, out, d, x.fragmentEnv(opts))
			}
			jctx := engine.WithOpStats(ctx,
				x.stats(v, "hash-join", strings.Join(v.JoinVars, ",")))
			return engine.CSymmetricHashJoin(jctx, left, right, v.JoinVars, out,
				opts.EffectiveProbeParallelism(), opts.EffectiveBatchSize()), nil
		}
	case *LeftJoinNode:
		left, err := x.runColumnar(ctx, v.L, opts, d)
		if err != nil {
			return nil, err
		}
		right, err := x.runColumnar(ctx, v.R, opts, d)
		if err != nil {
			return nil, err
		}
		jctx := engine.WithOpStats(ctx, x.stats(v, "left-join", ""))
		return engine.CLeftJoin(jctx, left, right, v.Filters, engine.NewSchema(v.Vars()), d,
			opts.EffectiveBatchSize()), nil
	case *FilterNode:
		in, err := x.runColumnar(ctx, v.Child, opts, d)
		if err != nil {
			return nil, err
		}
		fctx := engine.WithOpStats(ctx, x.stats(v, "filter", ""))
		return engine.CFilter(fctx, in, v.Exprs, d, opts.EffectiveBatchSize()), nil
	case *UnionNode:
		var streams []*engine.CStream
		for _, c := range v.Children {
			s, err := x.runColumnar(ctx, c, opts, d)
			if err != nil {
				return nil, err
			}
			streams = append(streams, s)
		}
		uctx := engine.WithOpStats(ctx, x.stats(v, "union", ""))
		return engine.CUnion(uctx, engine.NewSchema(v.Vars()), opts.EffectiveBatchSize(), streams...), nil
	default:
		return nil, fmt.Errorf("core: unknown plan node %T", n)
	}
}
