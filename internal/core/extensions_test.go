package core

import (
	"strings"
	"testing"

	"ontario/internal/lslod"
	"ontario/internal/netsim"
	"ontario/internal/sparql"
)

// TestTripleDecomposition checks the alternative decomposition produces
// one sub-query per pattern and still returns reference-correct answers.
func TestTripleDecomposition(t *testing.T) {
	q := lslod.Query("Q2")
	ssqs := DecomposeTriplePatterns(q)
	if len(ssqs) != len(q.Patterns) {
		t.Fatalf("triple decomposition produced %d SSQs, want %d", len(ssqs), len(q.Patterns))
	}
	for i, s := range ssqs {
		if len(s.Patterns) != 1 {
			t.Fatalf("SSQ %d has %d patterns", i, len(s.Patterns))
		}
	}

	lake := testLake(t)
	ref := referenceGraph(t, lake)
	for _, id := range []string{"Q1", "Q2", "Q5"} {
		q := lslod.Query(id)
		want := sparql.EvalQuery(ref, q)
		opts := UnawareOptions(netsim.NoDelay)
		opts.Decomposition = DecomposeTriples
		got := runQuery(t, lake, q, opts)
		assertSameBindings(t, id+"/triple-unaware", got, want, q.ProjectedVars())

		// Aware mode re-merges same-source triples via Heuristic 1.
		aopts := AwareOptions(netsim.NoDelay)
		aopts.Decomposition = DecomposeTriples
		got = runQuery(t, lake, q, aopts)
		assertSameBindings(t, id+"/triple-aware", got, want, q.ProjectedVars())
	}
}

// TestTripleDecompositionMoreServices: triple-based plans issue at least
// as many service requests as star-shaped plans (the reason star-shaped
// decomposition wins).
func TestTripleDecompositionMoreServices(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	for _, id := range []string{"Q2", "Q4", "Q5"} {
		q := lslod.Query(id)
		star, err := planner.Plan(q, UnawareOptions(netsim.NoDelay))
		if err != nil {
			t.Fatal(err)
		}
		opts := UnawareOptions(netsim.NoDelay)
		opts.Decomposition = DecomposeTriples
		triple, err := planner.Plan(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if CountServices(triple.Root) <= CountServices(star.Root) {
			t.Errorf("%s: triple plan has %d services, star plan %d — expected strictly more",
				id, CountServices(triple.Root), CountServices(star.Root))
		}
	}
}

// TestDenormalizedLakeMatchesReference: the denormalized Diseasome layout
// must return exactly the answers of the 3NF layout.
func TestDenormalizedLakeMatchesReference(t *testing.T) {
	normal := testLake(t)
	ref := referenceGraph(t, normal)
	den, err := lslod.BuildDenormalizedLake(lslod.SmallScale(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Q1", "Q2", "Q4"} {
		q := lslod.Query(id)
		want := sparql.EvalQuery(ref, q)
		for _, cfg := range []struct {
			name string
			opts Options
		}{
			{"unaware", UnawareOptions(netsim.NoDelay)},
			{"aware", AwareOptions(netsim.NoDelay)},
		} {
			got := runQuery(t, den, q, cfg.opts)
			assertSameBindings(t, "denorm/"+id+"/"+cfg.name, got, want, q.ProjectedVars())
		}
	}
}

// TestDenormalizedPlanUsesDistinct: the SQL issued against a denormalized
// mapping must de-duplicate.
func TestDenormalizedPlanUsesDistinct(t *testing.T) {
	den, err := lslod.BuildDenormalizedLake(lslod.SmallScale(), 7)
	if err != nil {
		t.Fatal(err)
	}
	src := den.Catalog.Source(lslod.DSDiseasome)
	cm := src.Mapping(lslod.ClassDisease)
	if cm == nil || !cm.Denormalized {
		t.Fatal("diseasome mapping is not denormalized")
	}
	if src.DB.Table("disease_wide") == nil {
		t.Fatal("wide table missing")
	}
	// The wide table must be strictly larger than the number of diseases
	// (denormalization blow-up).
	if src.DB.Table("disease_wide").RowCount() <= len(den.Data.Diseases) {
		t.Error("denormalized table did not blow up row count")
	}
}

// TestExplainMentionsDecomposition sanity-checks the plan header.
func TestExplainMentionsDecomposition(t *testing.T) {
	lake := testLake(t)
	planner := NewPlanner(lake.Catalog)
	opts := UnawareOptions(netsim.NoDelay)
	opts.Decomposition = DecomposeTriples
	p, err := planner.Plan(lslod.Query("Q1"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Explain(), "decomposition=triple-based") {
		t.Errorf("explain missing decomposition:\n%s", p.Explain())
	}
}
