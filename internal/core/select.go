package core

import (
	"fmt"
	"sort"

	"ontario/internal/catalog"
)

// Candidate is one (class, source) pair able to answer an SSQ.
type Candidate struct {
	Class    string
	SourceID string
}

// SelectSources determines, for every SSQ, the candidate molecules and
// sources using the catalog's RDF-MTs (MULDER-style source selection): a
// molecule is a candidate when it carries every constant predicate of the
// star; an explicit rdf:type constraint pins the class directly.
func SelectSources(cat *catalog.Catalog, ssqs []*SSQ) ([][]Candidate, error) {
	out := make([][]Candidate, len(ssqs))
	for i, ssq := range ssqs {
		cands, err := selectForStar(cat, ssq)
		if err != nil {
			return nil, err
		}
		out[i] = cands
	}
	return out, nil
}

func selectForStar(cat *catalog.Catalog, ssq *SSQ) ([]Candidate, error) {
	preds := ssq.Predicates()

	var classes []string
	if class, ok := ssq.TypeClass(); ok {
		mt := cat.MT(class)
		if mt == nil {
			return nil, fmt.Errorf("core: %s: no molecule for class %s", ssq, class)
		}
		classes = []string{class}
	} else {
		classes = classesCoveringPredicates(cat, preds)
	}

	var cands []Candidate
	for _, class := range classes {
		mt := cat.MT(class)
		if mt == nil {
			continue
		}
		covers := true
		for _, p := range preds {
			if !mt.HasPredicate(p) {
				covers = false
				break
			}
		}
		if !covers {
			continue
		}
		srcs := append([]string(nil), mt.Sources...)
		sort.Strings(srcs)
		for _, s := range srcs {
			cands = append(cands, Candidate{Class: class, SourceID: s})
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: no source can answer %s (predicates %v)", ssq, preds)
	}
	return cands, nil
}

// classesCoveringPredicates intersects the per-predicate class lists.
func classesCoveringPredicates(cat *catalog.Catalog, preds []string) []string {
	if len(preds) == 0 {
		return cat.Classes()
	}
	counts := map[string]int{}
	for _, p := range preds {
		for _, cl := range cat.ClassesWithPredicate(p) {
			counts[cl]++
		}
	}
	var out []string
	for cl, n := range counts {
		if n == len(preds) {
			out = append(out, cl)
		}
	}
	sort.Strings(out)
	return out
}
