package core

import (
	"math/bits"

	"ontario/internal/sparql"
)

// orderedPlan pairs a plan (sub-)tree with its estimate during ordering.
type orderedPlan struct {
	node PlanNode
	est  Estimate
}

// orderJoins builds the join tree over the leaves with the cost model:
// exact dynamic programming over connected sub-plans up to dpMaxLeaves
// leaves, cost-greedy accumulation above. Cross products are admitted only
// for leaf sets no variable-connected split can join.
func (cm *costModel) orderJoins(leaves []PlanNode) PlanNode {
	if len(leaves) == 0 {
		return nil
	}
	plans := make([]*orderedPlan, len(leaves))
	for i, l := range leaves {
		plans[i] = &orderedPlan{node: l, est: cm.estimate(l)}
	}
	if len(plans) == 1 {
		return plans[0].node
	}
	if len(plans) <= dpMaxLeaves {
		return cm.orderDP(plans)
	}
	return cm.orderGreedy(plans)
}

// orderDP is textbook DP over leaf bitmasks: best[mask] is the cheapest
// tree covering exactly the leaves of mask. Both orientations of every
// split are enumerated (the split and its complement each occur as the
// left side), so dependent operators see every candidate right service.
func (cm *costModel) orderDP(plans []*orderedPlan) PlanNode {
	n := len(plans)
	best := make([]*orderedPlan, 1<<n)
	for i, p := range plans {
		best[1<<i] = p
	}
	for mask := 1; mask < 1<<n; mask++ {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		// First pass admits only variable-connected splits; the second,
		// reached when the mask's leaves cannot be connected, admits cross
		// products so planning never fails.
		for pass := 0; pass < 2 && best[mask] == nil; pass++ {
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				l, r := best[sub], best[mask^sub]
				if l == nil || r == nil {
					continue
				}
				shared := sparql.SharedVars(l.node.Vars(), r.node.Vars())
				if pass == 0 && len(shared) == 0 {
					continue
				}
				cand := cm.chooseJoin(l, r, shared)
				if best[mask] == nil || cand.est.Cost < best[mask].est.Cost {
					best[mask] = cand
				}
			}
		}
	}
	return best[(1<<n)-1].node
}

// orderGreedy accumulates a join tree left-to-right: it starts from the
// cheapest leaf and repeatedly attaches the variable-connected leaf whose
// join is cheapest (falling back to a cross product only when nothing
// connects).
func (cm *costModel) orderGreedy(plans []*orderedPlan) PlanNode {
	rootIdx := 0
	for i, p := range plans {
		if p.est.Cost < plans[rootIdx].est.Cost {
			rootIdx = i
		}
	}
	root := plans[rootIdx]
	remaining := append(append([]*orderedPlan(nil), plans[:rootIdx]...), plans[rootIdx+1:]...)
	for len(remaining) > 0 {
		bestIdx := -1
		var bestJoin *orderedPlan
		for pass := 0; pass < 2 && bestIdx == -1; pass++ {
			for i, cand := range remaining {
				shared := sparql.SharedVars(root.node.Vars(), cand.node.Vars())
				if pass == 0 && len(shared) == 0 {
					continue
				}
				j := cm.chooseJoin(root, cand, shared)
				if bestIdx == -1 || j.est.Cost < bestJoin.est.Cost {
					bestIdx, bestJoin = i, j
				}
			}
		}
		root = bestJoin
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return root.node
}

// orderJoinsGreedyVars is the legacy physical-design-unaware ordering: a
// left-deep tree built greedily by shared-variable count with one global
// operator — the single routine behind both Plan and planPatterns.
func orderJoinsGreedyVars(leaves []PlanNode, op JoinOperator) PlanNode {
	if len(leaves) == 0 {
		return nil
	}
	root := leaves[0]
	remaining := append([]PlanNode(nil), leaves[1:]...)
	for len(remaining) > 0 {
		best := -1
		var bestShared []string
		for i, cand := range remaining {
			shared := sparql.SharedVars(root.Vars(), cand.Vars())
			if best == -1 || len(shared) > len(bestShared) {
				best, bestShared = i, shared
			}
		}
		next := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		root = &JoinNode{L: root, R: next, JoinVars: bestShared, Op: op}
	}
	return root
}
