package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"ontario/internal/catalog"
	"ontario/internal/lslod"
	"ontario/internal/netsim"
	"ontario/internal/rdb"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

const (
	bbDrugClass   = "http://c/Drug"
	bbPersonClass = "http://c/Person"
	bbTargets     = "http://p/targets"
	bbName        = "http://p/name"
	bbFriend      = "http://p/friend"
)

// blockBindLake builds a two-source lake tailored to the bind-join message
// story: an RDF source with nDrugs drugs, each targeting one person, and a
// relational source with the persons, each carrying `fanOut` friend rows
// in a side table. A dependent join from drugs to persons therefore
// retrieves fanOut answers per left binding.
func blockBindLake(t *testing.T, nDrugs, fanOut int) *catalog.Catalog {
	t.Helper()

	g := rdf.NewGraph()
	for i := 1; i <= nDrugs; i++ {
		d := rdf.NewIRI(fmt.Sprintf("http://e/drug/%d", i))
		g.Add(rdf.Triple{S: d, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(bbDrugClass)})
		g.Add(rdf.Triple{S: d, P: rdf.NewIRI(bbTargets), O: rdf.NewIRI(fmt.Sprintf("http://e/person/%d", i))})
	}

	db := rdb.NewDatabase("people")
	person, err := db.CreateTable(&rdb.Schema{
		Name: "person",
		Columns: []rdb.Column{
			{Name: "id", Type: rdb.TypeInt, NotNull: true},
			{Name: "name", Type: rdb.TypeString, NotNull: true},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	friend, err := db.CreateTable(&rdb.Schema{
		Name: "person_friend",
		Columns: []rdb.Column{
			{Name: "id", Type: rdb.TypeInt, NotNull: true},
			{Name: "person_id", Type: rdb.TypeInt, NotNull: true},
			{Name: "friend_id", Type: rdb.TypeInt, NotNull: true},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	rowID := 0
	for i := 1; i <= nDrugs; i++ {
		if err := person.Insert(rdb.Row{rdb.IntValue(int64(i)), rdb.StringValue(fmt.Sprintf("person-%d", i))}); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < fanOut; f++ {
			rowID++
			if err := friend.Insert(rdb.Row{rdb.IntValue(int64(rowID)), rdb.IntValue(int64(i)), rdb.IntValue(int64(1 + (i+f)%nDrugs))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := friend.CreateIndex(rdb.IndexSpec{Column: "person_id", Kind: rdb.IndexHash}); err != nil {
		t.Fatal(err)
	}

	cat := catalog.New()
	if err := cat.AddSource(&catalog.Source{ID: "pharma", Model: catalog.ModelRDF, Graph: g}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddSource(&catalog.Source{
		ID:    "people",
		Model: catalog.ModelRelational,
		DB:    db,
		Mappings: map[string]*catalog.ClassMapping{
			bbPersonClass: {
				Class: bbPersonClass, Table: "person",
				SubjectColumn: "id", SubjectTemplate: "http://e/person/{value}",
				Properties: map[string]*catalog.PropertyMapping{
					bbName: {Predicate: bbName, Column: "name"},
					bbFriend: {
						Predicate: bbFriend, JoinTable: "person_friend",
						JoinFK: "person_id", ValueColumn: "friend_id",
						ObjectTemplate: "http://e/person/{value}", ObjectClass: bbPersonClass,
					},
				},
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	cat.AddMT(&catalog.RDFMT{
		Class: bbDrugClass,
		Predicates: []catalog.PredicateDesc{
			{Predicate: rdf.RDFType},
			{Predicate: bbTargets, LinkedClass: bbPersonClass},
		},
		Sources: []string{"pharma"},
	})
	cat.AddMT(&catalog.RDFMT{
		Class: bbPersonClass,
		Predicates: []catalog.PredicateDesc{
			{Predicate: bbName},
			{Predicate: bbFriend, LinkedClass: bbPersonClass},
		},
		Sources: []string{"people"},
	})
	return cat
}

func blockBindQuery(t *testing.T) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(fmt.Sprintf(
		`SELECT ?d ?p ?nm ?f WHERE { ?d a <%s> . ?d <%s> ?p . ?p <%s> ?nm . ?p <%s> ?f . }`,
		bbDrugClass, bbTargets, bbName, bbFriend))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func runBlockBind(t *testing.T, cat *catalog.Catalog, opts Options) ([]sparql.Binding, int, *Plan) {
	t.Helper()
	eng := NewEngine(cat)
	eng.Executor.NetworkScale = 0
	stream, plan, err := eng.Run(context.Background(), blockBindQuery(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	answers := stream.Collect()
	return answers, eng.Executor.TotalMessages(), plan
}

// TestBlockBindJoinMessageReduction is the end-to-end regression test of
// the bind-join batching story: for a two-star query over an RDF +
// relational source pair, the block bind join must answer the dependent
// side in ⌈n/B⌉ messages where the sequential bind join needs one request
// — and here fanOut response messages — per left binding, with identical
// answer multisets.
func TestBlockBindJoinMessageReduction(t *testing.T) {
	const (
		nDrugs  = 64
		fanOut  = 4
		block   = 16
		answers = nDrugs * fanOut
	)
	cat := blockBindLake(t, nDrugs, fanOut)
	vars := []string{"d", "p", "nm", "f"}

	baseline := Options{Network: netsim.NoDelay, JoinOperator: JoinSymmetricHash}
	wantAnswers, _, _ := runBlockBind(t, cat, baseline)
	if len(wantAnswers) != answers {
		t.Fatalf("symmetric-hash reference produced %d answers, want %d", len(wantAnswers), answers)
	}

	// Sequential bind join: block size 1 keeps the planner from promoting.
	seq := Options{Network: netsim.NoDelay, JoinOperator: JoinBind, BindBlockSize: 1}
	seqAnswers, seqMessages, seqPlan := runBlockBind(t, cat, seq)
	assertSameBindings(t, "sequential bind join", seqAnswers, wantAnswers, vars)
	if !strings.Contains(seqPlan.Explain(), "Join[bind]") {
		t.Fatalf("sequential plan lost its bind join:\n%s", seqPlan.Explain())
	}
	// n left answers cross the network, then every right answer does.
	if want := nDrugs + nDrugs*fanOut; seqMessages != want {
		t.Errorf("sequential bind join used %d messages, want %d", seqMessages, want)
	}

	blk := Options{Network: netsim.NoDelay, JoinOperator: JoinBlockBind, BindBlockSize: block, BindConcurrency: 4}
	blkAnswers, blkMessages, blkPlan := runBlockBind(t, cat, blk)
	assertSameBindings(t, "block bind join", blkAnswers, wantAnswers, vars)
	if !strings.Contains(blkPlan.Explain(), "Join[block-bind]") {
		t.Fatalf("block plan lost its block bind join:\n%s", blkPlan.Explain())
	}

	// The dependent side collapses to ⌈n/B⌉ block responses; the left star
	// still streams its n answers.
	leftMessages := nDrugs
	blocks := (nDrugs + block - 1) / block
	if want := leftMessages + blocks; blkMessages > want {
		t.Errorf("block bind join used %d messages, want <= %d (= %d left + %d blocks)",
			blkMessages, want, leftMessages, blocks)
	}
	if ratio := float64(seqMessages) / float64(blkMessages); ratio < 4 {
		t.Errorf("block bind join reduced messages only %.2fx (seq %d vs block %d), want >= 4x",
			ratio, seqMessages, blkMessages)
	}
}

// TestPlannerPromotesBindJoinToBlock: with the plain bind operator
// selected and a left star whose extent fills at least one block, the
// planner upgrades to the block variant on its own — and leaves it alone
// when the block size is 1 or the left side is small.
func TestPlannerPromotesBindJoinToBlock(t *testing.T) {
	big := blockBindLake(t, 64, 1)
	small := blockBindLake(t, 3, 1)
	q := blockBindQuery(t)

	plan, err := NewPlanner(big).Plan(q, Options{JoinOperator: JoinBind})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "Join[block-bind]") {
		t.Errorf("planner did not promote bind join over 64-drug left star:\n%s", plan.Explain())
	}

	plan, err = NewPlanner(small).Plan(q, Options{JoinOperator: JoinBind})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "Join[bind]") {
		t.Errorf("planner promoted bind join despite a 3-drug left star:\n%s", plan.Explain())
	}

	plan, err = NewPlanner(big).Plan(q, Options{JoinOperator: JoinBind, BindBlockSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "Join[bind]") {
		t.Errorf("block size 1 must keep the sequential bind join:\n%s", plan.Explain())
	}
}

// TestBlockBindJoinAgainstLSLODReference runs every benchmark query on the
// synthetic lake with the block bind join forced and checks the answers
// against the symmetric-hash plan, so batching is exercised on realistic
// plans (unions, merged stars, filters).
func TestBlockBindJoinAgainstLSLODReference(t *testing.T) {
	lake := testLake(t)
	for _, id := range []string{"Q1", "Q2", "Q3", "Q4", "Q5"} {
		q := lslod.Query(id)
		want := runQuery(t, lake, q, Options{Network: netsim.NoDelay})
		for _, blockSize := range []int{2, 16} {
			got := runQuery(t, lake, q, Options{
				Network:       netsim.NoDelay,
				JoinOperator:  JoinBlockBind,
				BindBlockSize: blockSize,
			})
			assertSameBindings(t, fmt.Sprintf("%s block-bind B=%d", id, blockSize), got, want, q.ProjectedVars())
		}
	}
}
