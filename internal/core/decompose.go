// Package core implements the paper's contribution: a federated SPARQL
// query engine for Semantic Data Lakes whose plan generator exploits the
// physical design of the sources. Queries are decomposed into star-shaped
// sub-queries (SSQs), sources are selected via RDF Molecule Templates, and
// two source-specific heuristics shape the plan:
//
//   - Heuristic 1 (pushing down joins): SSQs over the same relational
//     endpoint are combined into a single SQL query when the join
//     attribute is indexed.
//   - Heuristic 2 (pushing up instantiations): filters over relational
//     sources run at the engine unless the filtered attribute is indexed
//     and the network is slow.
//
// A physical-design-unaware mode reproduces the baseline QEPs of the
// paper's experiment.
package core

import (
	"fmt"
	"sort"

	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// SSQ is a star-shaped sub-query: the triple patterns sharing one subject.
type SSQ struct {
	// SubjectVar is the shared subject variable; empty when the subject is
	// a constant term.
	SubjectVar string
	// Subject is the constant subject when SubjectVar is empty.
	Subject rdf.Term
	// Patterns are the star's triple patterns in query order.
	Patterns []sparql.TriplePattern
}

// Vars returns the distinct variables of the star in first-seen order.
func (s *SSQ) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, tp := range s.Patterns {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// TypeClass returns the constant class IRI from an "?s rdf:type <C>"
// pattern, if any.
func (s *SSQ) TypeClass() (string, bool) {
	for _, tp := range s.Patterns {
		if !tp.P.IsVar && tp.P.Term.Value == rdf.RDFType && !tp.O.IsVar && tp.O.Term.IsIRI() {
			return tp.O.Term.Value, true
		}
	}
	return "", false
}

// Predicates returns the constant non-type predicate IRIs of the star,
// sorted and de-duplicated.
func (s *SSQ) Predicates() []string {
	seen := map[string]bool{}
	for _, tp := range s.Patterns {
		if tp.P.IsVar {
			continue
		}
		p := tp.P.Term.Value
		if p == rdf.RDFType {
			continue
		}
		seen[p] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// String labels the star for diagnostics.
func (s *SSQ) String() string {
	if s.SubjectVar != "" {
		return fmt.Sprintf("SSQ(?%s, %d patterns)", s.SubjectVar, len(s.Patterns))
	}
	return fmt.Sprintf("SSQ(%s, %d patterns)", s.Subject, len(s.Patterns))
}

// DecompositionMode selects how the basic graph pattern is partitioned
// into sub-queries. The paper's engine uses star-shaped sub-queries;
// triple-based decomposition (each triple pattern its own sub-query, as in
// early federated engines) is the alternative its future-work section
// proposes to study.
type DecompositionMode int

// Decomposition modes.
const (
	DecomposeStars DecompositionMode = iota
	DecomposeTriples
)

// String names the mode.
func (m DecompositionMode) String() string {
	if m == DecomposeTriples {
		return "triple-based"
	}
	return "star-shaped"
}

// DecomposeTriplePatterns partitions the query with one sub-query per
// triple pattern.
func DecomposeTriplePatterns(q *sparql.Query) []*SSQ {
	out := make([]*SSQ, 0, len(q.Patterns))
	for _, tp := range q.Patterns {
		ssq := &SSQ{Patterns: []sparql.TriplePattern{tp}}
		if tp.S.IsVar {
			ssq.SubjectVar = tp.S.Var
		} else {
			ssq.Subject = tp.S.Term
		}
		out = append(out, ssq)
	}
	return out
}

// Decompose partitions the query's basic graph pattern into star-shaped
// sub-queries, grouping triple patterns by subject (Vidal et al., ESWC
// 2010). Stars are returned in order of first appearance.
func Decompose(q *sparql.Query) []*SSQ {
	var order []string
	groups := map[string]*SSQ{}
	keyOf := func(n sparql.Node) string {
		if n.IsVar {
			return "?" + n.Var
		}
		return "T" + n.Term.String()
	}
	for _, tp := range q.Patterns {
		k := keyOf(tp.S)
		g, ok := groups[k]
		if !ok {
			g = &SSQ{}
			if tp.S.IsVar {
				g.SubjectVar = tp.S.Var
			} else {
				g.Subject = tp.S.Term
			}
			groups[k] = g
			order = append(order, k)
		}
		g.Patterns = append(g.Patterns, tp)
	}
	out := make([]*SSQ, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}
