package core

import (
	"fmt"
	"strings"
	"time"

	"ontario/internal/engine"
	"ontario/internal/netsim"
	"ontario/internal/sparql"
	"ontario/internal/wrapper"
)

// FilterPolicy controls where filters over relational sources execute.
type FilterPolicy int

// Filter policies.
const (
	// FilterAtEngine always evaluates filters at the engine — the
	// physical-design-unaware behaviour and Heuristic 2's default.
	FilterAtEngine FilterPolicy = iota
	// FilterAtSourceIfIndexed pushes a filter into the source whenever
	// every filtered attribute is indexed — the paper's
	// physical-design-aware QEP ("using indexes whenever possible").
	FilterAtSourceIfIndexed
	// FilterHeuristic2 applies Heuristic 2 verbatim: engine level unless
	// the filtered attribute is indexed AND the network is slow.
	FilterHeuristic2
)

// String names the policy.
func (p FilterPolicy) String() string {
	switch p {
	case FilterAtEngine:
		return "engine"
	case FilterAtSourceIfIndexed:
		return "source-if-indexed"
	default:
		return "heuristic2"
	}
}

// JoinOperator selects the engine-level join implementation.
type JoinOperator int

// Join operators.
const (
	// JoinSymmetricHash is the non-blocking adaptive operator (default).
	JoinSymmetricHash JoinOperator = iota
	// JoinNestedLoop is the blocking baseline.
	JoinNestedLoop
	// JoinBind re-invokes the right service once per left binding,
	// strictly sequentially.
	JoinBind
	// JoinBlockBind gathers left bindings into blocks and answers each
	// block with a single multi-seed service request, dispatching several
	// blocks concurrently (the FedX/ANAPSID-lineage bound join).
	JoinBlockBind
)

// String names the operator.
func (j JoinOperator) String() string {
	switch j {
	case JoinSymmetricHash:
		return "symmetric-hash"
	case JoinNestedLoop:
		return "nested-loop"
	case JoinBlockBind:
		return "block-bind"
	default:
		return "bind"
	}
}

// Default block bind-join parameters, used when the corresponding Options
// fields are zero.
const (
	DefaultBindBlockSize   = 16
	DefaultBindConcurrency = 4
)

// OptimizerMode selects the join-ordering and operator-selection strategy.
type OptimizerMode int

// Optimizer modes.
const (
	// OptimizerGreedy is the legacy strategy: order joins greedily by
	// shared-variable count and apply one global join operator.
	OptimizerGreedy OptimizerMode = iota
	// OptimizerCost orders joins with the statistics-backed cost model
	// (dynamic programming up to dpMaxLeaves leaves, cost-greedy above) and
	// picks the physical operator per join.
	OptimizerCost
)

// String names the mode.
func (m OptimizerMode) String() string {
	if m == OptimizerCost {
		return "cost"
	}
	return "greedy"
}

// OptimizerByName resolves an optimizer mode from its CLI/HTTP-parameter
// name ("cost" or "greedy", case-insensitive).
func OptimizerByName(name string) (OptimizerMode, error) {
	switch strings.ToLower(name) {
	case "cost":
		return OptimizerCost, nil
	case "greedy":
		return OptimizerGreedy, nil
	default:
		return 0, fmt.Errorf("core: unknown optimizer %q (want cost or greedy)", name)
	}
}

// Options configure plan generation.
type Options struct {
	// Aware enables the physical-design-aware plan: Heuristic 1 join
	// pushdown and index-aware filter placement. When false the planner
	// produces the paper's physical-design-unaware baseline.
	Aware bool
	// FilterPolicy places filters; ignored (forced to FilterAtEngine) when
	// Aware is false.
	FilterPolicy FilterPolicy
	// Network is the simulated network profile, consulted by
	// FilterHeuristic2.
	Network netsim.Profile
	// Translation selects the SPARQL-to-SQL translation quality used for
	// merged stars.
	Translation wrapper.TranslationMode
	// JoinOperator selects the engine-level join implementation.
	JoinOperator JoinOperator
	// Decomposition selects star-shaped (default) or triple-based
	// sub-queries.
	Decomposition DecompositionMode
	// BindBlockSize is the number of left bindings gathered into one
	// multi-seed service request by the block bind join (0 means
	// DefaultBindBlockSize; 1 degenerates to the sequential bind join's
	// request pattern).
	BindBlockSize int
	// BindConcurrency bounds the number of in-flight block requests the
	// block bind join dispatches concurrently (0 means
	// DefaultBindConcurrency).
	BindConcurrency int
	// Optimizer selects the planning strategy. Under OptimizerCost a
	// JoinOperator other than JoinSymmetricHash acts as a forced override
	// for ablations: every join uses it instead of the per-join choice.
	Optimizer OptimizerMode
	// BatchSize is the number of bindings the execution data plane packs
	// into one exchange batch — the granularity wrappers emit and
	// operators consume (0 means engine.DefaultBatchSize; 1 degenerates
	// to binding-at-a-time execution).
	BatchSize int
	// ProbeParallelism is the number of morsel-parallel probe workers —
	// and hash-table shards — of every symmetric hash join (0 means a
	// default derived from GOMAXPROCS; 1 disables intra-operator
	// parallelism).
	ProbeParallelism int
	// MeasuredLatency, when set, reports the observed per-request latency
	// of a source (typically a remote endpoint's health EWMA inflated by
	// its failure rate). The cost model prices service calls against a
	// source with this measured gamma instead of the static Network
	// profile; ok=false falls back to the profile.
	MeasuredLatency func(sourceID string) (d time.Duration, ok bool)
	// Cluster, when set, distributes execution across a worker pool: leaf
	// services fan out over every worker's lake partition and symmetric
	// hash joins become distributed shuffles (see internal/cluster). It
	// is an execution-time setting, injected when a query starts rather
	// than at plan time — plan shapes do not depend on it (the
	// merged-star unmerge rewrite it requires runs at execution start),
	// so cached prepared plans stay shareable between clustered and
	// single-node runs.
	Cluster Distributor
	// RowExchange opts out of the dictionary-encoded columnar exchange
	// and runs the row-at-a-time reference pipeline (batches of
	// map[var]Term). The columnar data plane is the default; the row
	// pipeline remains as the semantics reference for equivalence tests
	// and ablation. Internal-only: the public API always uses the default.
	RowExchange bool
}

// EffectiveBindBlockSize returns BindBlockSize with the default applied.
func (o Options) EffectiveBindBlockSize() int {
	if o.BindBlockSize <= 0 {
		return DefaultBindBlockSize
	}
	return o.BindBlockSize
}

// EffectiveBindConcurrency returns BindConcurrency with the default
// applied.
func (o Options) EffectiveBindConcurrency() int {
	if o.BindConcurrency <= 0 {
		return DefaultBindConcurrency
	}
	return o.BindConcurrency
}

// EffectiveBatchSize returns BatchSize with the engine default applied.
func (o Options) EffectiveBatchSize() int {
	if o.BatchSize <= 0 {
		return engine.DefaultBatchSize
	}
	return o.BatchSize
}

// EffectiveProbeParallelism returns ProbeParallelism with the engine
// default applied.
func (o Options) EffectiveProbeParallelism() int {
	if o.ProbeParallelism <= 0 {
		return engine.DefaultProbeParallelism()
	}
	return o.ProbeParallelism
}

// AwareOptions returns the paper's physical-design-aware configuration.
// Exploiting the physical design includes the statistics-backed cost
// optimizer; OptimizerGreedy remains available as the ordering ablation.
func AwareOptions(network netsim.Profile) Options {
	return Options{
		Aware:        true,
		FilterPolicy: FilterAtSourceIfIndexed,
		Network:      network,
		Translation:  wrapper.TranslationOptimized,
		Optimizer:    OptimizerCost,
	}
}

// UnawareOptions returns the paper's physical-design-unaware baseline.
func UnawareOptions(network netsim.Profile) Options {
	return Options{Aware: false, Network: network}
}

// Plan is a query execution plan.
type Plan struct {
	Query *sparql.Query
	Root  PlanNode
	Opts  Options
}

// PlanNode is a node of the logical/physical plan tree.
type PlanNode interface {
	// Vars returns the variables the node's output binds.
	Vars() []string
	explain(b *strings.Builder, depth int)
}

// ServiceNode evaluates a wrapper request at one source. Under Heuristic 1
// the request may contain several merged stars.
type ServiceNode struct {
	SourceID string
	Req      *wrapper.Request
	// Merged marks a Heuristic-1 combined request.
	Merged bool
	// Est is the cost model's prediction, set when the cost optimizer
	// planned the node (rendered by EXPLAIN).
	Est *Estimate
}

// Vars implements PlanNode.
func (n *ServiceNode) Vars() []string { return n.Req.Vars() }

func (n *ServiceNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	kind := "Service"
	if n.Merged {
		kind = "MergedService"
	}
	fmt.Fprintf(b, "%s[%s]", kind, n.SourceID)
	for _, s := range n.Req.Stars {
		fmt.Fprintf(b, " star(?%s:%s, %d patterns)", s.SubjectVar, localName(s.Class), len(s.Patterns))
	}
	if len(n.Req.Filters) > 0 {
		b.WriteString(" pushed-filters{")
		for i, f := range n.Req.Filters {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(f.String())
		}
		b.WriteString("}")
	}
	n.Est.explain(b)
	b.WriteByte('\n')
}

// JoinNode joins two sub-plans on their shared variables.
type JoinNode struct {
	L, R     PlanNode
	JoinVars []string
	Op       JoinOperator
	// Est is the cost model's prediction, set when the cost optimizer
	// planned the node (rendered by EXPLAIN).
	Est *Estimate
}

// Vars implements PlanNode.
func (n *JoinNode) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range append(n.L.Vars(), n.R.Vars()...) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func (n *JoinNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "Join[%s] on %v", n.Op, n.JoinVars)
	n.Est.explain(b)
	b.WriteByte('\n')
	n.L.explain(b, depth+1)
	n.R.explain(b, depth+1)
}

// LeftJoinNode left-joins an OPTIONAL sub-plan to the required part.
type LeftJoinNode struct {
	L, R PlanNode
	// Filters are the OPTIONAL group's filters, evaluated over the merged
	// binding per SPARQL LeftJoin semantics.
	Filters []sparql.Expr
}

// Vars implements PlanNode.
func (n *LeftJoinNode) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range append(n.L.Vars(), n.R.Vars()...) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func (n *LeftJoinNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	b.WriteString("LeftJoin[optional]")
	if len(n.Filters) > 0 {
		b.WriteString(" filters{")
		for i, f := range n.Filters {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(f.String())
		}
		b.WriteString("}")
	}
	b.WriteByte('\n')
	n.L.explain(b, depth+1)
	n.R.explain(b, depth+1)
}

// FilterNode evaluates engine-level filters.
type FilterNode struct {
	Child PlanNode
	Exprs []sparql.Expr
}

// Vars implements PlanNode.
func (n *FilterNode) Vars() []string { return n.Child.Vars() }

func (n *FilterNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	b.WriteString("Filter{")
	for i, f := range n.Exprs {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(f.String())
	}
	b.WriteString("}\n")
	n.Child.explain(b, depth+1)
}

// UnionNode merges alternative sub-plans (an SSQ answerable by several
// molecules/sources).
type UnionNode struct {
	Children []PlanNode
}

// Vars implements PlanNode.
func (n *UnionNode) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range n.Children {
		for _, v := range c.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func (n *UnionNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	b.WriteString("Union\n")
	for _, c := range n.Children {
		c.explain(b, depth+1)
	}
}

// Explain renders the plan tree, including the cost model's estimates when
// the cost optimizer produced the plan.
func (p *Plan) Explain() string {
	var b strings.Builder
	mode := "physical-design-unaware"
	if p.Opts.Aware {
		mode = "physical-design-aware"
	}
	join := p.Opts.JoinOperator.String()
	if p.Opts.Optimizer == OptimizerCost && p.Opts.JoinOperator == JoinSymmetricHash {
		join = "per-join"
	}
	fmt.Fprintf(&b, "Plan[%s, optimizer=%s, filters=%s, translation=%s, join=%s, decomposition=%s]\n",
		mode, p.Opts.Optimizer, p.effectiveFilterPolicy(), p.Opts.Translation, join, p.Opts.Decomposition)
	p.Root.explain(&b, 1)
	return b.String()
}

func (p *Plan) effectiveFilterPolicy() FilterPolicy {
	if !p.Opts.Aware {
		return FilterAtEngine
	}
	return p.Opts.FilterPolicy
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func localName(iri string) string {
	if i := strings.LastIndexAny(iri, "/#"); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}

// CountServices returns the number of service requests in the plan (the
// paper's "number of requests" consideration).
func CountServices(n PlanNode) int {
	switch v := n.(type) {
	case *ServiceNode:
		return 1
	case *JoinNode:
		return CountServices(v.L) + CountServices(v.R)
	case *LeftJoinNode:
		return CountServices(v.L) + CountServices(v.R)
	case *FilterNode:
		return CountServices(v.Child)
	case *UnionNode:
		total := 0
		for _, c := range v.Children {
			total += CountServices(c)
		}
		return total
	default:
		return 0
	}
}

// mergedServices returns the Heuristic-1 merged service nodes in the plan.
func mergedServices(n PlanNode) []*ServiceNode {
	var out []*ServiceNode
	var walk func(PlanNode)
	walk = func(n PlanNode) {
		switch v := n.(type) {
		case *ServiceNode:
			if v.Merged {
				out = append(out, v)
			}
		case *JoinNode:
			walk(v.L)
			walk(v.R)
		case *LeftJoinNode:
			walk(v.L)
			walk(v.R)
		case *FilterNode:
			walk(v.Child)
		case *UnionNode:
			for _, c := range v.Children {
				walk(c)
			}
		}
	}
	walk(n)
	return out
}
