package engine

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

func b(kv ...string) sparql.Binding {
	out := sparql.NewBinding()
	for i := 0; i+1 < len(kv); i += 2 {
		out[kv[i]] = rdf.NewLiteral(kv[i+1])
	}
	return out
}

func keysOf(bs []sparql.Binding) []string {
	out := make([]string, len(bs))
	for i, x := range bs {
		out[i] = x.FullKey()
	}
	sort.Strings(out)
	return out
}

func assertSame(t *testing.T, got, want []sparql.Binding) {
	t.Helper()
	g, w := keysOf(got), keysOf(want)
	if len(g) != len(w) {
		t.Fatalf("got %d bindings, want %d\n got: %v\nwant: %v", len(g), len(w), got, want)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("binding multiset differs:\n got: %v\nwant: %v", got, want)
		}
	}
}

// referenceJoin is the oracle: nested loops with compatibility semantics.
func referenceJoin(left, right []sparql.Binding) []sparql.Binding {
	var out []sparql.Binding
	for _, l := range left {
		for _, r := range right {
			if l.Compatible(r) {
				out = append(out, l.Merge(r))
			}
		}
	}
	return out
}

func TestSymmetricHashJoinBasic(t *testing.T) {
	ctx := context.Background()
	left := []sparql.Binding{b("x", "1", "y", "a"), b("x", "2", "y", "b"), b("x", "3", "y", "c")}
	right := []sparql.Binding{b("x", "2", "z", "q"), b("x", "3", "z", "r"), b("x", "3", "z", "s"), b("x", "9", "z", "t")}
	got := SymmetricHashJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), []string{"x"}, 4, 0).Collect()
	assertSame(t, got, referenceJoin(left, right))
	if len(got) != 3 {
		t.Fatalf("join produced %d, want 3", len(got))
	}
}

func TestSymmetricHashJoinCrossProduct(t *testing.T) {
	ctx := context.Background()
	left := []sparql.Binding{b("a", "1"), b("a", "2")}
	right := []sparql.Binding{b("c", "x"), b("c", "y"), b("c", "z")}
	got := SymmetricHashJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), nil, 4, 0).Collect()
	if len(got) != 6 {
		t.Fatalf("cross product produced %d, want 6", len(got))
	}
}

func TestSymmetricHashJoinEmitsExactlyOncePerPair(t *testing.T) {
	// Heavily duplicated keys: every (l, r) pair with equal keys must be
	// emitted exactly once even under concurrency.
	ctx := context.Background()
	var left, right []sparql.Binding
	for i := 0; i < 50; i++ {
		left = append(left, b("k", fmt.Sprint(i%5), "l", fmt.Sprint(i)))
		right = append(right, b("k", fmt.Sprint(i%5), "r", fmt.Sprint(i)))
	}
	for round := 0; round < 20; round++ {
		// Alternate probe parallelism so both the serial and the sharded
		// paths prove exactly-once emission.
		got := SymmetricHashJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), []string{"k"}, 1+round%4, 1+round%3).Collect()
		if len(got) != 500 { // 5 groups x 10 x 10
			t.Fatalf("round %d: got %d, want 500", round, len(got))
		}
	}
}

func TestNestedLoopJoinMatchesReference(t *testing.T) {
	ctx := context.Background()
	left := []sparql.Binding{b("x", "1", "y", "a"), b("x", "2", "y", "b")}
	right := []sparql.Binding{b("x", "1", "z", "p"), b("x", "1", "z", "q"), b("x", "5", "z", "r")}
	got := NestedLoopJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), []string{"x"}, 0).Collect()
	assertSame(t, got, referenceJoin(left, right))
}

func TestBindJoin(t *testing.T) {
	ctx := context.Background()
	left := []sparql.Binding{b("x", "1"), b("x", "2"), b("x", "3")}
	// The right service answers only for x in {2,3} with two rows each.
	svc := func(ctx context.Context, seed sparql.Binding) *Stream {
		var rows []sparql.Binding
		if v, ok := seed["x"]; ok && (v.Value == "2" || v.Value == "3") {
			rows = []sparql.Binding{
				seed.Merge(b("w", "a"+v.Value)),
				seed.Merge(b("w", "b"+v.Value)),
			}
		}
		return FromSlice(ctx, rows)
	}
	got := BindJoin(ctx, FromSlice(ctx, left), svc, []string{"x"}, 0).Collect()
	if len(got) != 4 {
		t.Fatalf("bind join produced %d, want 4: %v", len(got), got)
	}
	for _, g := range got {
		if _, ok := g["w"]; !ok {
			t.Fatalf("missing right-side binding: %v", g)
		}
	}
}

// Property: symmetric hash join equals the reference join for arbitrary
// small inputs.
func TestQuickJoinEquivalence(t *testing.T) {
	ctx := context.Background()
	f := func(lKeys, rKeys []uint8) bool {
		var left, right []sparql.Binding
		for i, k := range lKeys {
			left = append(left, b("k", fmt.Sprint(k%8), "l", fmt.Sprint(i)))
		}
		for i, k := range rKeys {
			right = append(right, b("k", fmt.Sprint(k%8), "r", fmt.Sprint(i)))
		}
		got := SymmetricHashJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), []string{"k"}, 3, 0).Collect()
		want := referenceJoin(left, right)
		if len(got) != len(want) {
			return false
		}
		g, w := keysOf(got), keysOf(want)
		for i := range g {
			if g[i] != w[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterOperator(t *testing.T) {
	ctx := context.Background()
	q := sparql.MustParse(`SELECT ?x WHERE { ?s ?p ?x . FILTER (?v > 5) }`)
	in := []sparql.Binding{
		{"v": rdf.IntLiteral(3)},
		{"v": rdf.IntLiteral(7)},
		{"v": rdf.IntLiteral(10)},
	}
	got := Filter(ctx, FromSlice(ctx, in), q.Filters, 0).Collect()
	if len(got) != 2 {
		t.Fatalf("filter kept %d, want 2", len(got))
	}
	// No filters: pass-through.
	s := FromSlice(ctx, in)
	if Filter(ctx, s, nil, 0) != s {
		t.Error("empty filter should return the input stream")
	}
}

func TestProjectDistinctLimitOffset(t *testing.T) {
	ctx := context.Background()
	in := []sparql.Binding{
		b("x", "1", "y", "a"),
		b("x", "1", "y", "b"),
		b("x", "2", "y", "c"),
		b("x", "2", "y", "d"),
	}
	got := Distinct(ctx, Project(ctx, FromSlice(ctx, in), []string{"x"}, 0), 0).Collect()
	if len(got) != 2 {
		t.Fatalf("distinct projection = %d, want 2", len(got))
	}
	got = Limit(ctx, FromSlice(ctx, in), 3, 0).Collect()
	if len(got) != 3 {
		t.Fatalf("limit = %d, want 3", len(got))
	}
	got = Offset(ctx, FromSlice(ctx, in), 3, 0).Collect()
	if len(got) != 1 {
		t.Fatalf("offset = %d, want 1", len(got))
	}
	got = Limit(ctx, FromSlice(ctx, in), 0, 0).Collect()
	if len(got) != 0 {
		t.Fatalf("limit 0 = %d, want 0", len(got))
	}
}

func TestUnionOperator(t *testing.T) {
	ctx := context.Background()
	a := []sparql.Binding{b("x", "1"), b("x", "2")}
	c := []sparql.Binding{b("x", "3")}
	got := Union(ctx, 0, FromSlice(ctx, a), FromSlice(ctx, c), FromSlice(ctx, nil)).Collect()
	if len(got) != 3 {
		t.Fatalf("union = %d, want 3", len(got))
	}
}

func TestOrderByOperator(t *testing.T) {
	ctx := context.Background()
	in := []sparql.Binding{
		{"v": rdf.IntLiteral(5)},
		{"v": rdf.IntLiteral(1)},
		{"v": rdf.IntLiteral(3)},
	}
	got := OrderBy(ctx, FromSlice(ctx, in), []sparql.OrderKey{{Var: "v", Desc: true}}, 0).Collect()
	want := []int64{5, 3, 1}
	for i, w := range want {
		if got[i]["v"].Value != fmt.Sprint(w) {
			t.Fatalf("order by desc: %v", got)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// An infinite producer.
	src := NewStream(0)
	go func() {
		for i := 0; ; i++ {
			if !src.Send(ctx, b("x", fmt.Sprint(i))) {
				src.Close()
				return
			}
		}
	}()
	out := Project(ctx, src, []string{"x"}, 0)
	<-out.Batches() // take one batch
	cancel()
	// The pipeline must terminate quickly after cancellation.
	done := make(chan struct{})
	go func() {
		for range out.Batches() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pipeline did not shut down after cancellation")
	}
}

func TestLeftJoinOperator(t *testing.T) {
	ctx := context.Background()
	left := []sparql.Binding{b("x", "1"), b("x", "2"), b("x", "3")}
	right := []sparql.Binding{b("x", "1", "y", "a"), b("x", "1", "y", "b"), b("x", "9", "y", "z")}
	got := LeftJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), nil, 0).Collect()
	// x=1 extends twice; x=2 and x=3 pass through unextended.
	if len(got) != 4 {
		t.Fatalf("left join produced %d, want 4: %v", len(got), got)
	}
	withY, withoutY := 0, 0
	for _, g := range got {
		if _, ok := g["y"]; ok {
			withY++
		} else {
			withoutY++
		}
	}
	if withY != 2 || withoutY != 2 {
		t.Fatalf("left join shape: %d extended / %d bare", withY, withoutY)
	}
}

func TestLeftJoinWithFilter(t *testing.T) {
	ctx := context.Background()
	q := sparql.MustParse(`SELECT ?x WHERE { ?s ?p ?o . FILTER (?v > 5) }`)
	left := []sparql.Binding{{"x": rdf.IntLiteral(1)}}
	right := []sparql.Binding{
		{"v": rdf.IntLiteral(3)},
		{"v": rdf.IntLiteral(9)},
	}
	got := LeftJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), q.Filters, 0).Collect()
	// Only v=9 passes; the left row is extended once (not also emitted bare).
	if len(got) != 1 {
		t.Fatalf("left join with filter: %v", got)
	}
	if got[0]["v"].Value != "9" {
		t.Fatalf("wrong extension: %v", got[0])
	}
}

func TestLeftJoinAllFilteredOutKeepsLeft(t *testing.T) {
	ctx := context.Background()
	q := sparql.MustParse(`SELECT ?x WHERE { ?s ?p ?o . FILTER (?v > 100) }`)
	left := []sparql.Binding{{"x": rdf.IntLiteral(1)}}
	right := []sparql.Binding{{"v": rdf.IntLiteral(3)}}
	got := LeftJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), q.Filters, 0).Collect()
	if len(got) != 1 {
		t.Fatalf("left join: %v", got)
	}
	if _, ok := got[0]["v"]; ok {
		t.Fatalf("left row should be unextended: %v", got[0])
	}
}
