package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// sliceService mimics a wrapper's sequential bind-join contract over a
// materialized right relation: rights compatible with the seed, merged
// with it.
func sliceService(rights []sparql.Binding) Service {
	return func(ctx context.Context, seed sparql.Binding) *Stream {
		var out []sparql.Binding
		for _, rb := range rights {
			if seed.Compatible(rb) {
				out = append(out, seed.Merge(rb))
			}
		}
		return FromSlice(ctx, out)
	}
}

// sliceBlockService mimics a wrapper's multi-seed contract: every right
// binding compatible with at least one seed, each exactly once, unmerged.
func sliceBlockService(rights []sparql.Binding) BlockService {
	return func(ctx context.Context, seeds []sparql.Binding) *Stream {
		var out []sparql.Binding
		for _, rb := range rights {
			ok := len(seeds) == 0
			for _, s := range seeds {
				if s.Compatible(rb) {
					ok = true
					break
				}
			}
			if ok {
				out = append(out, rb)
			}
		}
		return FromSlice(ctx, out)
	}
}

func multiset(bs []sparql.Binding) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.FullKey()
	}
	sort.Strings(out)
	return out
}

func assertSameMultiset(t *testing.T, label string, got, want []sparql.Binding) {
	t.Helper()
	g, w := multiset(got), multiset(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d answers, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: multiset differs at %d:\n got %s\nwant %s", label, i, g[i], w[i])
		}
	}
}

// randomRelation draws a relation over vars with values from a small
// domain, so joins hit both matches and misses. Every listed var is bound.
func randomRelation(rng *rand.Rand, vars []string, n int) []sparql.Binding {
	out := make([]sparql.Binding, n)
	for i := range out {
		b := sparql.NewBinding()
		for _, v := range vars {
			b[v] = rdf.IntLiteral(int64(rng.Intn(4)))
		}
		out[i] = b
	}
	return out
}

// TestJoinOperatorEquivalence is the property test: on randomized inputs —
// including empty sides and an empty join-variable set (cross product) —
// BlockBindJoin, BindJoin, SymmetricHashJoin and NestedLoopJoin must all
// produce the reference multiset of answers.
func TestJoinOperatorEquivalence(t *testing.T) {
	shapes := []struct {
		leftVars, rightVars, joinVars []string
	}{
		{[]string{"x", "a"}, []string{"x", "b"}, []string{"x"}},
		{[]string{"x", "y", "a"}, []string{"x", "y", "b"}, []string{"x", "y"}},
		{[]string{"a"}, []string{"b"}, nil}, // no shared vars: cross product
	}
	for iter := 0; iter < 60; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		shape := shapes[iter%len(shapes)]
		nl := rng.Intn(40)
		nr := rng.Intn(40)
		if iter%7 == 0 {
			nl = 0 // force an empty left now and then
		}
		if iter%11 == 0 {
			nr = 0
		}
		lefts := randomRelation(rng, shape.leftVars, nl)
		rights := randomRelation(rng, shape.rightVars, nr)
		want := referenceJoin(lefts, rights)
		ctx := context.Background()

		label := func(op string) string {
			return fmt.Sprintf("iter %d, %s join on %v (%dx%d)", iter, op, shape.joinVars, nl, nr)
		}
		got := BindJoin(ctx, FromSlice(ctx, lefts), sliceService(rights), shape.joinVars, 1+iter%5).Collect()
		assertSameMultiset(t, label("bind"), got, want)

		for _, cfg := range [][2]int{{1, 1}, {3, 2}, {16, 4}, {100, 8}} {
			got = BlockBindJoin(ctx, FromSlice(ctx, lefts), sliceBlockService(rights),
				shape.joinVars, cfg[0], cfg[1], 1+iter%5).Collect()
			assertSameMultiset(t, label(fmt.Sprintf("block-bind B=%d W=%d", cfg[0], cfg[1])), got, want)
		}

		got = SymmetricHashJoin(ctx, FromSlice(ctx, lefts), FromSlice(ctx, rights), shape.joinVars, 1+iter%4, 1+iter%5).Collect()
		assertSameMultiset(t, label("symmetric-hash"), got, want)

		got = NestedLoopJoin(ctx, FromSlice(ctx, lefts), FromSlice(ctx, rights), shape.joinVars, 1+iter%5).Collect()
		assertSameMultiset(t, label("nested-loop"), got, want)
	}
}

// TestBlockBindJoinUnboundLeftJoinVar exercises the unconstrained-block
// path: a left binding that does not bind the join variable joins with
// every right binding, exactly as in the sequential bind join.
func TestBlockBindJoinUnboundLeftJoinVar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 20; iter++ {
		lefts := randomRelation(rng, []string{"x", "a"}, 15)
		for i := range lefts {
			if rng.Intn(3) == 0 {
				delete(lefts[i], "x") // join var unbound on this left binding
			}
		}
		rights := randomRelation(rng, []string{"x", "b"}, 20)
		want := referenceJoin(lefts, rights)
		ctx := context.Background()
		for _, blockSize := range []int{1, 4, 64} {
			got := BlockBindJoin(ctx, FromSlice(ctx, lefts), sliceBlockService(rights),
				[]string{"x"}, blockSize, 3, 0).Collect()
			assertSameMultiset(t, fmt.Sprintf("iter %d B=%d", iter, blockSize), got, want)
		}
		got := BindJoin(ctx, FromSlice(ctx, lefts), sliceService(rights), []string{"x"}, 0).Collect()
		assertSameMultiset(t, fmt.Sprintf("iter %d bind", iter), got, want)
	}
}

// TestBlockBindJoinBatchesRequests checks the message story at the
// operator level: n left bindings and block size B mean exactly ⌈n/B⌉
// service invocations.
func TestBlockBindJoinBatchesRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, block, want int }{
		{64, 16, 4}, {65, 16, 5}, {5, 16, 1}, {0, 16, 0}, {10, 1, 10},
	} {
		lefts := randomRelation(rng, []string{"x"}, tc.n)
		var mu sync.Mutex
		calls := 0
		svc := func(ctx context.Context, seeds []sparql.Binding) *Stream {
			mu.Lock()
			calls++
			mu.Unlock()
			return FromSlice(ctx, nil)
		}
		ctx := context.Background()
		BlockBindJoin(ctx, FromSlice(ctx, lefts), svc, []string{"x"}, tc.block, 4, 0).Collect()
		if calls != tc.want {
			t.Errorf("n=%d B=%d: %d service calls, want %d", tc.n, tc.block, calls, tc.want)
		}
	}
}

// TestBlockBindJoinCancellation cancels the context mid-stream and expects
// every operator to terminate and close its output.
func TestBlockBindJoinCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lefts := randomRelation(rng, []string{"x", "a"}, 5000)
	rights := randomRelation(rng, []string{"x", "b"}, 200)

	streams := map[string]func(ctx context.Context) *Stream{
		"bind": func(ctx context.Context) *Stream {
			return BindJoin(ctx, FromSlice(ctx, lefts), sliceService(rights), []string{"x"}, 0)
		},
		"block-bind": func(ctx context.Context) *Stream {
			return BlockBindJoin(ctx, FromSlice(ctx, lefts), sliceBlockService(rights), []string{"x"}, 16, 4, 0)
		},
		"symmetric-hash": func(ctx context.Context) *Stream {
			return SymmetricHashJoin(ctx, FromSlice(ctx, lefts), FromSlice(ctx, rights), []string{"x"}, 4, 0)
		},
		"nested-loop": func(ctx context.Context) *Stream {
			return NestedLoopJoin(ctx, FromSlice(ctx, lefts), FromSlice(ctx, rights), []string{"x"}, 0)
		},
	}
	for name, mk := range streams {
		ctx, cancel := context.WithCancel(context.Background())
		out := mk(ctx)
		got := 0
		for batch := range out.Batches() {
			got += len(batch)
			if got >= 10 {
				cancel()
			}
		}
		cancel()
		if got < 10 {
			t.Errorf("%s: stream ended after %d answers, before cancellation", name, got)
		}
		// Reaching here at all means the stream closed after cancellation
		// instead of deadlocking; the watchdog below guards regressions.
	}
}

// TestBlockBindJoinCancellationDoesNotLeak gives the cancellation path a
// deadline: the output stream must close well before the test times out.
func TestBlockBindJoinCancellationDoesNotLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lefts := randomRelation(rng, []string{"x"}, 10000)
	rights := randomRelation(rng, []string{"x", "b"}, 500)
	ctx, cancel := context.WithCancel(context.Background())
	out := BlockBindJoin(ctx, FromSlice(ctx, lefts), sliceBlockService(rights), []string{"x"}, 8, 4, 0)
	<-out.Batches() // first answers prove the pipeline is running
	cancel()
	done := make(chan struct{})
	go func() {
		for range out.Batches() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("block bind join did not terminate after context cancellation")
	}
}
