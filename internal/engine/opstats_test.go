package engine

import (
	"context"
	"testing"
	"time"

	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

func bi(v string, n int64) sparql.Binding {
	return sparql.Binding{v: rdf.IntLiteral(n)}
}

func TestOpStatsNilSafe(t *testing.T) {
	// Every accounting method must be a no-op on a nil receiver: operators
	// run with no stats attached (the common non-analyze path) and must not
	// pay for nil checks beyond the receiver test.
	var st *OpStats
	ctx := context.Background()
	in := FromSlice(ctx, []sparql.Binding{b("x", "1")})
	got, ok := st.recv(in)
	if !ok || len(got) != 1 {
		t.Fatalf("nil recv = %v, %v", got, ok)
	}
	out := NewStream(4)
	if !st.send(ctx, out, []sparql.Binding{b("x", "1")}) {
		t.Fatal("nil send failed")
	}
	st.in(3)
	st.addHashEntries(5)
	st.AddBlock()
	st.close()
	if snap := st.Snapshot(); snap.Kind != "" || snap.BindingsIn != 0 {
		t.Fatalf("nil Snapshot = %+v", snap)
	}
}

func TestOpStatsCountsThroughContext(t *testing.T) {
	ctx := context.Background()
	st := NewOpStats("filter", "?x > 0")
	sctx := WithOpStats(ctx, st)
	if StatsFrom(sctx) != st {
		t.Fatal("StatsFrom did not return the attached stats")
	}
	if StatsFrom(ctx) != nil {
		t.Fatal("StatsFrom on a bare context should be nil")
	}

	q := sparql.MustParse(`SELECT ?x WHERE { ?s ?p ?x . FILTER (?x >= 0) }`)
	in := FromSlice(ctx, []sparql.Binding{bi("x", 1), bi("x", 2), bi("x", 3)})
	got := Filter(sctx, in, q.Filters, 2).Collect()
	if len(got) != 3 {
		t.Fatalf("filter passed %d, want 3", len(got))
	}
	snap := st.Snapshot()
	if snap.BindingsIn != 3 || snap.BindingsOut != 3 {
		t.Fatalf("in/out = %d/%d, want 3/3", snap.BindingsIn, snap.BindingsOut)
	}
	if snap.BatchesIn == 0 || snap.BatchesOut == 0 {
		t.Fatalf("batches in/out = %d/%d, want nonzero", snap.BatchesIn, snap.BatchesOut)
	}
	if snap.Kind != "filter" || snap.Label != "?x > 0" {
		t.Fatalf("identity = %q/%q", snap.Kind, snap.Label)
	}
	if snap.Wall <= 0 {
		t.Fatalf("wall = %v, want > 0", snap.Wall)
	}
}

func TestOpStatsChildrenNotShared(t *testing.T) {
	// Operators must build their children with the parent's plain context:
	// attaching stats for operator A must not leak into inputs it consumes.
	ctx := WithOpStats(context.Background(), NewOpStats("hash-join", "x"))
	inner := StatsFrom(ctx)
	left := FromSlice(context.Background(), []sparql.Binding{b("x", "1")})
	right := FromSlice(context.Background(), []sparql.Binding{b("x", "1", "y", "2")})
	got := SymmetricHashJoin(ctx, left, right, []string{"x"}, 4, 0).Collect()
	if len(got) != 1 {
		t.Fatalf("join produced %d, want 1", len(got))
	}
	snap := inner.Snapshot()
	if snap.BindingsIn != 2 {
		t.Fatalf("join saw %d inputs, want 2 (one per side)", snap.BindingsIn)
	}
	if snap.BindingsOut != 1 {
		t.Fatalf("join emitted %d, want 1", snap.BindingsOut)
	}
	if snap.HashEntries != 2 {
		t.Fatalf("hash entries = %d, want 2", snap.HashEntries)
	}
}

func TestMeterAttributesLeafStream(t *testing.T) {
	ctx := context.Background()
	st := NewOpStats("service", "diseasome")
	src := FromSlice(ctx, []sparql.Binding{b("x", "1"), b("x", "2")})
	got := Meter(ctx, src, st).Collect()
	if len(got) != 2 {
		t.Fatalf("metered stream delivered %d, want 2", len(got))
	}
	snap := st.Snapshot()
	if snap.BindingsOut != 2 || snap.BatchesOut == 0 {
		t.Fatalf("metered out = %d bindings / %d batches", snap.BindingsOut, snap.BatchesOut)
	}
	if snap.Wall <= 0 {
		t.Fatalf("wall = %v, want > 0", snap.Wall)
	}
	// Meter with nil stats must degrade to a passthrough.
	src2 := FromSlice(ctx, []sparql.Binding{b("x", "9")})
	if got := Meter(ctx, src2, nil).Collect(); len(got) != 1 {
		t.Fatalf("nil-stats Meter delivered %d, want 1", len(got))
	}
}

func TestOpStatsSnapshotWallWhileRunning(t *testing.T) {
	st := NewOpStats("service", "s")
	time.Sleep(2 * time.Millisecond)
	// Not closed yet: Snapshot must report elapsed-so-far, not zero.
	if snap := st.Snapshot(); snap.Wall < time.Millisecond {
		t.Fatalf("running wall = %v, want >= 1ms", snap.Wall)
	}
	st.close()
	frozen := st.Snapshot().Wall
	time.Sleep(2 * time.Millisecond)
	if again := st.Snapshot().Wall; again != frozen {
		t.Fatalf("wall moved after close: %v -> %v", frozen, again)
	}
}
