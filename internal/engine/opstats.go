package engine

import (
	"context"
	"sync/atomic"
	"time"

	"ontario/internal/sparql"
)

// OpStats is the per-operator runtime instrumentation record: every engine
// operator accumulates its observed batch/binding flow, wall time, and the
// time it spent blocked on the exchange into one OpStats. The counters are
// atomics and every update happens at batch granularity (one timed channel
// operation per exchange batch, not per binding), so the hot-path cost is
// near zero. A nil *OpStats is valid everywhere and records nothing — the
// operators are instrumented unconditionally and pay only a nil check when
// no trace is attached.
//
// Executors attach an OpStats to the context with WithOpStats immediately
// before constructing the operator it belongs to; the operator picks it up
// with StatsFrom at construction time.
type OpStats struct {
	// Kind is the operator kind ("symmetric-hash-join", "service", ...).
	Kind string
	// Label carries operator detail (source ID, join variables, ...).
	Label string

	start time.Time // registration time; set before any goroutine runs

	batchesIn   atomic.Int64
	bindingsIn  atomic.Int64
	batchesOut  atomic.Int64
	bindingsOut atomic.Int64
	recvNS      atomic.Int64 // time blocked receiving from inputs
	sendNS      atomic.Int64 // time blocked sending to the output
	wallNS      atomic.Int64 // construction -> output close (0 while running)

	hashEntries  atomic.Int64 // symmetric hash join: table entries across shards
	blocksIssued atomic.Int64 // bind joins: service requests issued
}

// NewOpStats returns a started stats record; the executor registers one per
// plan operator (tests may construct them directly).
func NewOpStats(kind, label string) *OpStats {
	return &OpStats{Kind: kind, Label: label, start: time.Now()}
}

// OpActuals is a plain-value snapshot of one operator's observed runtime
// behaviour — the "actual" counterpart of a cost-model estimate.
type OpActuals struct {
	Kind  string
	Label string
	// BindingsIn/BatchesIn count the operator's consumed input (both sides
	// of a join combined); BindingsOut/BatchesOut its produced output.
	BindingsIn  int64
	BatchesIn   int64
	BindingsOut int64
	BatchesOut  int64
	// Wall is construction-to-completion time (running time so far while
	// the operator is still live).
	Wall time.Duration
	// BlockedRecv is the time spent waiting on input batches, BlockedSend
	// the time spent waiting for the downstream consumer.
	BlockedRecv time.Duration
	BlockedSend time.Duration
	// HashEntries is the number of hash-table entries a symmetric hash
	// join inserted across its shards; BlocksIssued the number of service
	// requests a (block) bind join dispatched. Zero for other operators.
	HashEntries  int64
	BlocksIssued int64
}

// Snapshot returns the current counter values. Safe while the operator is
// still running.
func (o *OpStats) Snapshot() OpActuals {
	if o == nil {
		return OpActuals{}
	}
	wall := time.Duration(o.wallNS.Load())
	if wall == 0 {
		wall = time.Since(o.start)
	}
	return OpActuals{
		Kind:         o.Kind,
		Label:        o.Label,
		BindingsIn:   o.bindingsIn.Load(),
		BatchesIn:    o.batchesIn.Load(),
		BindingsOut:  o.bindingsOut.Load(),
		BatchesOut:   o.batchesOut.Load(),
		Wall:         wall,
		BlockedRecv:  time.Duration(o.recvNS.Load()),
		BlockedSend:  time.Duration(o.sendNS.Load()),
		HashEntries:  o.hashEntries.Load(),
		BlocksIssued: o.blocksIssued.Load(),
	}
}

// close marks the operator complete. The last close wins, so operators with
// several producing goroutines record the time the final one finished.
func (o *OpStats) close() {
	if o == nil {
		return
	}
	o.wallNS.Store(time.Since(o.start).Nanoseconds())
}

// in counts one consumed input batch.
func (o *OpStats) in(bindings int) {
	if o == nil {
		return
	}
	o.batchesIn.Add(1)
	o.bindingsIn.Add(int64(bindings))
}

// recv receives the next batch from in, accounting the blocked time and the
// consumed batch. The fast path (a batch already buffered) skips the clock
// reads entirely.
func (o *OpStats) recv(in *Stream) ([]sparql.Binding, bool) {
	if o == nil {
		b, ok := <-in.Batches()
		return b, ok
	}
	select {
	case b, ok := <-in.Batches():
		if ok {
			o.in(len(b))
		}
		return b, ok
	default:
	}
	t0 := time.Now()
	b, ok := <-in.Batches()
	o.recvNS.Add(time.Since(t0).Nanoseconds())
	if ok {
		o.in(len(b))
	}
	return b, ok
}

// send delivers a batch to out, accounting the blocked time and the
// produced batch; it mirrors Stream.SendBatch's contract (true on
// delivery, false when ctx is cancelled).
func (o *OpStats) send(ctx context.Context, out *Stream, batch []sparql.Binding) bool {
	if o == nil {
		return out.SendBatch(ctx, batch)
	}
	if len(batch) == 0 {
		return true
	}
	// Fast path: room in the exchange buffer, no clock reads.
	if out.TrySendBatch(batch) {
		o.batchesOut.Add(1)
		o.bindingsOut.Add(int64(len(batch)))
		return true
	}
	t0 := time.Now()
	ok := out.SendBatch(ctx, batch)
	o.sendNS.Add(time.Since(t0).Nanoseconds())
	if ok {
		o.batchesOut.Add(1)
		o.bindingsOut.Add(int64(len(batch)))
	}
	return ok
}

// addHashEntries accounts hash-table insertions (one call per morsel).
func (o *OpStats) addHashEntries(n int) {
	if o == nil {
		return
	}
	o.hashEntries.Add(int64(n))
}

// AddBlock accounts one dispatched bind-join service request.
func (o *OpStats) AddBlock() {
	if o == nil {
		return
	}
	o.blocksIssued.Add(1)
}

type opStatsKey struct{}

// WithOpStats attaches the operator stats the NEXT constructed operator
// should record into. Executors wrap the context immediately before each
// operator constructor; child sub-plans are built with the parent context,
// so every operator sees exactly its own record.
func WithOpStats(ctx context.Context, st *OpStats) context.Context {
	if st == nil {
		return ctx
	}
	return context.WithValue(ctx, opStatsKey{}, st)
}

// StatsFrom returns the stats attached with WithOpStats, or nil.
func StatsFrom(ctx context.Context) *OpStats {
	st, _ := ctx.Value(opStatsKey{}).(*OpStats)
	return st
}

// Meter relays in through a counting stage attributed to st: produced
// batches count as st's output, time waiting on in as blocked-recv, time
// waiting on the consumer as blocked-send, and st is closed when the
// relayed stream completes. It instruments leaf (service) streams, whose
// producers live inside the wrappers; st == nil returns in unchanged.
func Meter(ctx context.Context, in *Stream, st *OpStats) *Stream {
	if st == nil {
		return in
	}
	out := NewStream(1)
	go func() {
		defer out.Close()
		defer st.close()
		dead := false
		for {
			var batch []sparql.Binding
			var ok bool
			select {
			case batch, ok = <-in.Batches():
			default:
				t0 := time.Now()
				batch, ok = <-in.Batches()
				st.recvNS.Add(time.Since(t0).Nanoseconds())
			}
			if !ok {
				return
			}
			if dead {
				continue // drain so the wrapper's producer can finish
			}
			if !st.send(ctx, out, batch) {
				dead = true
			}
		}
	}()
	return out
}
