package engine

import (
	"context"
	"runtime"
	"sync"
	"time"

	"ontario/internal/sparql"
)

// DefaultFlushInterval bounds how long a leaf producer may hold a partial
// batch: once the oldest buffered binding has waited this long the batch is
// flushed regardless of fill, preserving time-to-first-answer under slow
// (simulated-latency) production.
const DefaultFlushInterval = time.Millisecond

// BatchWriter accumulates bindings into batches on behalf of a producer
// and flushes to the underlying stream when a batch fills, when the flush
// interval elapses with a partial batch pending, and on Close. It is safe
// for concurrent use (the flush timer fires on its own goroutine).
type BatchWriter struct {
	ctx   context.Context
	out   *Stream
	size  int
	every time.Duration

	mu     sync.Mutex
	buf    []sparql.Binding
	timer  *time.Timer
	failed bool
	// first is the arrival time of the oldest buffered binding; timed
	// flushes only fire once that binding has waited out the interval, so a
	// timer armed before a size-triggered flush cannot flush the next
	// partial batch early.
	first time.Time

	st *OpStats // optional: flushed batches are accounted as st's output
}

// SetStats attributes the writer's flushed batches to st (nil records
// nothing). Call before the first Send.
func (w *BatchWriter) SetStats(st *OpStats) {
	w.mu.Lock()
	w.st = st
	w.mu.Unlock()
}

// NewBatchWriter returns a writer cutting batches of at most size bindings
// (<= 0 means DefaultBatchSize) with the default flush interval.
func NewBatchWriter(ctx context.Context, out *Stream, size int) *BatchWriter {
	return NewBatchWriterInterval(ctx, out, size, DefaultFlushInterval)
}

// NewBatchWriterInterval is NewBatchWriter with an explicit flush interval
// (<= 0 disables timed flushing: only size and Close flush).
func NewBatchWriterInterval(ctx context.Context, out *Stream, size int, every time.Duration) *BatchWriter {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &BatchWriter{ctx: ctx, out: out, size: size, every: every}
}

// Send buffers one binding, flushing a full batch through to the stream.
// It returns false once the context is cancelled; after that every Send
// and Flush fails and buffered bindings are dropped.
func (w *BatchWriter) Send(b sparql.Binding) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed {
		return false
	}
	w.buf = append(w.buf, b)
	if len(w.buf) >= w.size {
		return w.flushLocked()
	}
	if len(w.buf) == 1 && w.every > 0 {
		w.first = time.Now()
		if w.timer == nil {
			w.timer = time.AfterFunc(w.every, w.timedFlush)
		} else {
			w.timer.Reset(w.every)
		}
	}
	return true
}

func (w *BatchWriter) timedFlush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed || len(w.buf) == 0 {
		return
	}
	// A stale fire: the batch this timer was armed for already went out via
	// a size-triggered flush and the buffer has since been refilled. Hold
	// the fresh partial batch for the remainder of its own interval.
	if wait := w.every - time.Since(w.first); wait > 0 {
		if w.timer != nil {
			w.timer.Reset(wait)
		}
		return
	}
	w.flushLocked()
}

// Flush sends any partial batch immediately.
func (w *BatchWriter) Flush() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

// Close flushes the remaining partial batch and stops the flush timer. It
// does not close the underlying stream — the producer typically defers
// stream.Close separately (several writers may share one stream).
func (w *BatchWriter) Close() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timer != nil {
		w.timer.Stop()
	}
	return w.flushLocked()
}

// flushLocked sends the buffered batch; the caller holds w.mu. The send
// may block on the consumer (or the context), which intentionally also
// blocks concurrent Sends: the exchange is the backpressure boundary.
func (w *BatchWriter) flushLocked() bool {
	if w.failed {
		return false
	}
	if len(w.buf) == 0 {
		return true
	}
	// The buffer empties (or the writer fails) below either way, so the
	// pending timer no longer has a batch to flush.
	if w.timer != nil {
		w.timer.Stop()
	}
	batch := w.buf
	w.buf = nil
	if !w.st.send(w.ctx, w.out, batch) {
		w.failed = true
		return false
	}
	return true
}

// DefaultProbeParallelism derives the default number of morsel-parallel
// probe workers (and hash-table shards) of a symmetric hash join from the
// machine, capped so a deep plan of many joins does not explode into
// thousands of goroutines.
func DefaultProbeParallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}
