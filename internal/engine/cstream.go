package engine

import (
	"context"
	"sync"
	"time"

	"ontario/internal/dict"
	"ontario/internal/sparql"
)

// CStream is the columnar counterpart of Stream: an asynchronous exchange
// of ColBatch values sharing one schema. The buffer is counted in
// batches. A batch, once sent, is owned by the receiver.
type CStream struct {
	ch     chan *ColBatch
	schema *Schema
}

// NewCStream returns a columnar stream over schema with the given buffer
// size (in batches).
func NewCStream(schema *Schema, buf int) *CStream {
	return &CStream{ch: make(chan *ColBatch, buf), schema: schema}
}

// Schema returns the stream's batch layout.
func (s *CStream) Schema() *Schema { return s.schema }

// SendBatch delivers a batch; it returns false when the context is
// cancelled. Sending an empty batch is a no-op and succeeds.
func (s *CStream) SendBatch(ctx context.Context, b *ColBatch) bool {
	if b == nil || b.Len == 0 {
		return true
	}
	select {
	case s.ch <- b:
		return true
	case <-ctx.Done():
		return false
	}
}

// TrySendBatch delivers a batch only if the buffer has room; it never
// blocks.
func (s *CStream) TrySendBatch(b *ColBatch) bool {
	if b == nil || b.Len == 0 {
		return true
	}
	select {
	case s.ch <- b:
		return true
	default:
		return false
	}
}

// Close marks the stream complete.
func (s *CStream) Close() { close(s.ch) }

// Batches exposes the receive side of the exchange.
func (s *CStream) Batches() <-chan *ColBatch { return s.ch }

// recvC receives the next columnar batch from in, accounting the blocked
// time and the consumed batch like recv does for row streams.
func (o *OpStats) recvC(in *CStream) (*ColBatch, bool) {
	if o == nil {
		b, ok := <-in.ch
		return b, ok
	}
	select {
	case b, ok := <-in.ch:
		if ok {
			o.in(b.Len)
		}
		return b, ok
	default:
	}
	t0 := time.Now()
	b, ok := <-in.ch
	o.recvNS.Add(time.Since(t0).Nanoseconds())
	if ok {
		o.in(b.Len)
	}
	return b, ok
}

// sendC delivers a columnar batch to out, accounting the blocked time and
// the produced rows; it mirrors OpStats.send.
func (o *OpStats) sendC(ctx context.Context, out *CStream, b *ColBatch) bool {
	if o == nil {
		return out.SendBatch(ctx, b)
	}
	if b == nil || b.Len == 0 {
		return true
	}
	if out.TrySendBatch(b) {
		o.batchesOut.Add(1)
		o.bindingsOut.Add(int64(b.Len))
		return true
	}
	t0 := time.Now()
	ok := out.SendBatch(ctx, b)
	o.sendNS.Add(time.Since(t0).Nanoseconds())
	if ok {
		o.batchesOut.Add(1)
		o.bindingsOut.Add(int64(b.Len))
	}
	return ok
}

// CMeter relays a columnar leaf stream through a counting stage
// attributed to st, mirroring Meter: produced batches count as st's
// output, blocked time is split into recv/send, and st closes when the
// relayed stream completes. st == nil returns in unchanged.
func CMeter(ctx context.Context, in *CStream, st *OpStats) *CStream {
	if st == nil {
		return in
	}
	out := NewCStream(in.schema, 1)
	go func() {
		defer out.Close()
		defer st.close()
		dead := false
		for {
			var b *ColBatch
			var ok bool
			select {
			case b, ok = <-in.ch:
			default:
				t0 := time.Now()
				b, ok = <-in.ch
				st.recvNS.Add(time.Since(t0).Nanoseconds())
			}
			if !ok {
				return
			}
			if dead {
				continue // drain so the producer can finish
			}
			if !st.sendC(ctx, out, b) {
				dead = true
			}
		}
	}()
	return out
}

// ColWriter is the columnar BatchWriter: a leaf producer appends rows and
// the writer cuts batches of at most size, flushing a partial batch after
// the flush interval (preserving time-to-first-answer under slow,
// simulated-latency production) and on Close. Safe for concurrent use.
type ColWriter struct {
	ctx   context.Context
	out   *CStream
	size  int
	every time.Duration

	mu     sync.Mutex
	b      *ColBuilder
	timer  *time.Timer
	failed bool
	first  time.Time

	st *OpStats
}

// NewColWriter returns a writer cutting batches of at most size rows
// (<= 0 means DefaultBatchSize) with the default flush interval.
func NewColWriter(ctx context.Context, out *CStream, size int) *ColWriter {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &ColWriter{ctx: ctx, out: out, size: size, every: DefaultFlushInterval,
		b: NewColBuilderCap(out.schema, size)}
}

// SetStats attributes the writer's flushed batches to st (nil records
// nothing). Call before the first append.
func (w *ColWriter) SetStats(st *OpStats) {
	w.mu.Lock()
	w.st = st
	w.mu.Unlock()
}

// AppendIDs appends one row (one ID per schema variable, in schema
// order), flushing a full batch through to the stream. It returns false
// once the context is cancelled.
func (w *ColWriter) AppendIDs(ids []dict.ID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed {
		return false
	}
	w.b.AppendIDs(ids)
	return w.appendedLocked()
}

// AppendMerged appends the merge of two batch rows (left wins when
// bound; see ColBuilder.AppendMerged); it returns false once the context
// is cancelled.
func (w *ColWriter) AppendMerged(l *ColBatch, lr int, lmap []int, r *ColBatch, rr int, rmap []int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed {
		return false
	}
	w.b.AppendMerged(l, lr, lmap, r, rr, rmap)
	return w.appendedLocked()
}

// AppendBinding appends a row-model binding, interning its terms into d;
// it returns false once the context is cancelled.
func (w *ColWriter) AppendBinding(bind sparql.Binding, d *dict.Dict) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed {
		return false
	}
	w.b.AppendBinding(bind, d)
	return w.appendedLocked()
}

// appendedLocked applies the size/interval flush rules after one append;
// the caller holds w.mu.
func (w *ColWriter) appendedLocked() bool {
	if w.b.Rows() >= w.size {
		return w.flushLocked()
	}
	if w.b.Rows() == 1 && w.every > 0 {
		w.first = time.Now()
		if w.timer == nil {
			w.timer = time.AfterFunc(w.every, w.timedFlush)
		} else {
			w.timer.Reset(w.every)
		}
	}
	return true
}

func (w *ColWriter) timedFlush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed || w.b.Rows() == 0 {
		return
	}
	// A stale fire for a batch that already went out size-triggered: hold
	// the fresh partial batch for the remainder of its own interval.
	if wait := w.every - time.Since(w.first); wait > 0 {
		if w.timer != nil {
			w.timer.Reset(wait)
		}
		return
	}
	w.flushLocked()
}

// Close flushes the remaining partial batch and stops the flush timer; it
// does not close the underlying stream.
func (w *ColWriter) Close() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timer != nil {
		w.timer.Stop()
	}
	return w.flushLocked()
}

func (w *ColWriter) flushLocked() bool {
	if w.failed {
		return false
	}
	if w.b.Rows() == 0 {
		return true
	}
	if w.timer != nil {
		w.timer.Stop()
	}
	if !w.st.sendC(w.ctx, w.out, w.b.Take()) {
		w.failed = true
		return false
	}
	return true
}

// EncodeStream adapts a row-model stream to the columnar exchange:
// every row batch becomes one columnar batch over schema with its terms
// interned into d. Batch boundaries are preserved, so the producer's
// flush cadence — and with it time-to-first-answer — carries through
// unchanged. It is the fallback wrapper boundary for sources without a
// native columnar path.
func EncodeStream(ctx context.Context, in *Stream, schema *Schema, d *dict.Dict) *CStream {
	out := NewCStream(schema, 1)
	go func() {
		defer out.Close()
		dead := false
		for rows := range in.Batches() {
			if dead {
				continue // drain so the producer can finish
			}
			if !out.SendBatch(ctx, EncodeBatch(rows, schema, d)) {
				dead = true
			}
		}
	}()
	return out
}

// DecodeStream adapts a columnar stream back to the row model, resolving
// IDs through d; batch boundaries are preserved. It exists for consumers
// that need materialized bindings (tests, the reference row pipeline).
func DecodeStream(ctx context.Context, in *CStream, d *dict.Dict) *Stream {
	out := NewStream(1)
	go func() {
		defer out.Close()
		dead := false
		for b := range in.ch {
			if dead {
				continue
			}
			if !out.SendBatch(ctx, DecodeBatch(b, d)) {
				dead = true
			}
		}
	}()
	return out
}

// CFromBindings returns a closed columnar stream delivering the given
// rows in batches of batch (<= 0 means DefaultBatchSize); a test helper
// mirroring FromSliceBatch.
func CFromBindings(ctx context.Context, rows []sparql.Binding, schema *Schema, d *dict.Dict, batch int) *CStream {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	out := NewCStream(schema, (len(rows)+batch-1)/batch)
	go func() {
		defer out.Close()
		for len(rows) > 0 {
			n := batch
			if n > len(rows) {
				n = len(rows)
			}
			if !out.SendBatch(ctx, EncodeBatch(rows[:n], schema, d)) {
				return
			}
			rows = rows[n:]
		}
	}()
	return out
}

// collectC drains a columnar stream into one concatenated batch,
// accounting the consumed batches to the operator (nil-safe).
func (o *OpStats) collectC(in *CStream) *ColBatch {
	b := NewColBuilder(in.schema)
	ident := in.schema.Positions(in.schema.Vars)
	for {
		batch, ok := o.recvC(in)
		if !ok {
			return b.Take()
		}
		for r := 0; r < batch.Len; r++ {
			b.AppendRow(batch, r, ident)
		}
	}
}
