package engine

import (
	"context"
	"sync"

	"ontario/internal/sparql"
)

// SymmetricHashJoin joins two streams on joinVars without blocking: each
// arriving binding is inserted into its side's hash table and immediately
// probed against the other side's table, so answers are emitted as soon as
// both matching inputs have arrived (the adaptive operator ANAPSID calls
// agjoin). When joinVars is empty the operator degrades to a cross product.
func SymmetricHashJoin(ctx context.Context, left, right *Stream, joinVars []string) *Stream {
	out := NewStream(64)
	var mu sync.Mutex
	leftTable := make(map[string][]sparql.Binding)
	rightTable := make(map[string][]sparql.Binding)
	var wg sync.WaitGroup
	wg.Add(2)

	consume := func(in *Stream, own, other map[string][]sparql.Binding, ownIsLeft bool) {
		defer wg.Done()
		// After a failed Send (output abandoned) keep draining the input so
		// its producer goroutine can finish instead of blocking forever.
		draining := false
		for b := range in.Chan() {
			if draining {
				continue
			}
			key := b.Key(joinVars)
			mu.Lock()
			own[key] = append(own[key], b)
			matches := append([]sparql.Binding(nil), other[key]...)
			mu.Unlock()
			for _, m := range matches {
				if !b.Compatible(m) {
					continue
				}
				var merged sparql.Binding
				if ownIsLeft {
					merged = b.Merge(m)
				} else {
					merged = m.Merge(b)
				}
				if !out.Send(ctx, merged) {
					draining = true
					break
				}
			}
		}
	}

	go consume(left, leftTable, rightTable, true)
	go consume(right, rightTable, leftTable, false)
	go func() {
		wg.Wait()
		out.Close()
	}()
	return out
}

// Service produces a stream of bindings for a (possibly instantiated)
// request; it abstracts a source wrapper invocation for the bind join.
type Service func(ctx context.Context, seed sparql.Binding) *Stream

// BindJoin is a dependent (nested-loop) join: for every left binding it
// invokes the right service instantiated with that binding and merges the
// results. It trades per-answer requests for smaller transfers, and serves
// as the ablation counterpart to the symmetric hash join.
func BindJoin(ctx context.Context, left *Stream, right Service, joinVars []string) *Stream {
	out := NewStream(64)
	go func() {
		defer out.Close()
		// After a failed Send the output is abandoned: stop invoking the
		// right service but keep draining the left (and any in-flight right)
		// stream so the producer goroutines can finish.
		cancelled := false
		for lb := range left.Chan() {
			if cancelled {
				continue
			}
			seed := lb.Project(joinVars)
			for rb := range right(ctx, seed).Chan() {
				if cancelled || !lb.Compatible(rb) {
					continue
				}
				if !out.Send(ctx, lb.Merge(rb)) {
					cancelled = true
				}
			}
		}
	}()
	return out
}

// BlockService produces a stream of bindings for a request instantiated
// with a whole block of seed bindings in a single invocation; it abstracts
// a multi-seed wrapper call for the block bind join. The service returns
// the union of the right solutions compatible with at least one seed, each
// underlying solution exactly once and NOT merged with the seeds (the
// solutions bind the join variables themselves, so the caller matches them
// back to the block's left bindings by compatibility). An empty seed list
// means an unconstrained request.
type BlockService func(ctx context.Context, seeds []sparql.Binding) *Stream

// BlockBindJoin is the block-based variant of BindJoin (the FedX/ANAPSID
// lineage "bound join"): left bindings are gathered into blocks of
// blockSize, each block's distinct seed projections are pushed to the right
// service in ONE invocation — and hence one simulated network message —
// and up to concurrency block requests are in flight at once. Output stays
// streaming: a block's answers are emitted as soon as its service call
// returns, independent of later blocks. When joinVars is empty the operator
// degrades to a cross product, like its sequential counterpart.
func BlockBindJoin(ctx context.Context, left *Stream, right BlockService, joinVars []string, blockSize, concurrency int) *Stream {
	if blockSize < 1 {
		blockSize = 1
	}
	if concurrency < 1 {
		concurrency = 1
	}
	out := NewStream(64)
	go func() {
		defer out.Close()
		sem := make(chan struct{}, concurrency)
		var wg sync.WaitGroup
		dispatch := func(block []sparql.Binding) {
			// Distinct seed projections; duplicates would only repeat work
			// at the source. A left binding with no bound join variable
			// joins with every right solution, so its presence forces an
			// unconstrained request for the whole block.
			var seeds []sparql.Binding
			seen := make(map[string]bool, len(block))
			for _, lb := range block {
				seed := lb.Project(joinVars)
				if len(seed) == 0 {
					seeds = nil
					break
				}
				k := seed.Key(joinVars)
				if seen[k] {
					continue
				}
				seen[k] = true
				seeds = append(seeds, seed)
			}
			sem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				// Keep draining the block's response after a failed Send so
				// the service's producer goroutine can finish.
				draining := false
				for rb := range right(ctx, seeds).Chan() {
					if draining {
						continue
					}
					for _, lb := range block {
						if !lb.Compatible(rb) {
							continue
						}
						if !out.Send(ctx, lb.Merge(rb)) {
							draining = true
							break
						}
					}
				}
			}()
		}
		var block []sparql.Binding
		for lb := range left.Chan() {
			block = append(block, lb)
			if len(block) >= blockSize {
				dispatch(block)
				block = nil
			}
		}
		if len(block) > 0 {
			dispatch(block)
		}
		wg.Wait()
	}()
	return out
}

// NestedLoopJoin materializes the right input, then joins every left
// binding against it; the fully blocking baseline operator.
func NestedLoopJoin(ctx context.Context, left, right *Stream, joinVars []string) *Stream {
	out := NewStream(64)
	go func() {
		defer out.Close()
		rights := right.Collect()
		draining := false
		for lb := range left.Chan() {
			if draining {
				continue // drain the left so its producer can finish
			}
			for _, rb := range rights {
				if !lb.Compatible(rb) {
					continue
				}
				if !out.Send(ctx, lb.Merge(rb)) {
					draining = true
					break
				}
			}
		}
	}()
	return out
}

// LeftJoin extends every left binding with the compatible right bindings
// that satisfy the filters, passing the left binding through unextended
// when none match (SPARQL OPTIONAL). The right input is materialized; a
// blocking operator.
func LeftJoin(ctx context.Context, left, right *Stream, filters []sparql.Expr) *Stream {
	out := NewStream(64)
	go func() {
		defer out.Close()
		rights := right.Collect()
		draining := false
		for lb := range left.Chan() {
			if draining {
				continue // drain the left so its producer can finish
			}
			matched := false
			for _, rb := range rights {
				if !lb.Compatible(rb) {
					continue
				}
				m := lb.Merge(rb)
				ok := true
				for _, f := range filters {
					if !sparql.EvalBool(f, m) {
						ok = false
						break
					}
				}
				if ok {
					matched = true
					if !out.Send(ctx, m) {
						draining = true
						break
					}
				}
			}
			if draining {
				continue
			}
			if !matched && !out.Send(ctx, lb) {
				draining = true
			}
		}
	}()
	return out
}

// Filter keeps the bindings satisfying every expression.
func Filter(ctx context.Context, in *Stream, exprs []sparql.Expr) *Stream {
	if len(exprs) == 0 {
		return in
	}
	out := NewStream(64)
	go func() {
		defer out.Close()
		for b := range in.Chan() {
			ok := true
			for _, e := range exprs {
				if !sparql.EvalBool(e, b) {
					ok = false
					break
				}
			}
			if ok && !out.Send(ctx, b) {
				return
			}
		}
	}()
	return out
}

// Project restricts every binding to vars.
func Project(ctx context.Context, in *Stream, vars []string) *Stream {
	out := NewStream(64)
	go func() {
		defer out.Close()
		for b := range in.Chan() {
			if !out.Send(ctx, b.Project(vars)) {
				return
			}
		}
	}()
	return out
}

// Distinct drops duplicate bindings.
func Distinct(ctx context.Context, in *Stream) *Stream {
	out := NewStream(64)
	go func() {
		defer out.Close()
		seen := make(map[string]bool)
		for b := range in.Chan() {
			k := b.FullKey()
			if seen[k] {
				continue
			}
			seen[k] = true
			if !out.Send(ctx, b) {
				return
			}
		}
	}()
	return out
}

// Limit passes through at most n bindings (and drains the input to let
// upstream goroutines finish).
func Limit(ctx context.Context, in *Stream, n int) *Stream {
	out := NewStream(64)
	go func() {
		defer out.Close()
		count := 0
		for b := range in.Chan() {
			if count < n {
				if !out.Send(ctx, b) {
					return
				}
				count++
			}
			// keep draining so producers are not blocked forever
		}
	}()
	return out
}

// Offset skips the first n bindings.
func Offset(ctx context.Context, in *Stream, n int) *Stream {
	out := NewStream(64)
	go func() {
		defer out.Close()
		skipped := 0
		for b := range in.Chan() {
			if skipped < n {
				skipped++
				continue
			}
			if !out.Send(ctx, b) {
				return
			}
		}
	}()
	return out
}

// Union merges the inputs in arrival order.
func Union(ctx context.Context, ins ...*Stream) *Stream {
	out := NewStream(64)
	var wg sync.WaitGroup
	wg.Add(len(ins))
	for _, in := range ins {
		go func(in *Stream) {
			defer wg.Done()
			draining := false
			for b := range in.Chan() {
				if draining {
					continue // drain the input so its producer can finish
				}
				if !out.Send(ctx, b) {
					draining = true
				}
			}
		}(in)
	}
	go func() {
		wg.Wait()
		out.Close()
	}()
	return out
}

// OrderBy materializes the input and emits it sorted; a blocking operator.
func OrderBy(ctx context.Context, in *Stream, keys []sparql.OrderKey) *Stream {
	out := NewStream(64)
	go func() {
		defer out.Close()
		all := in.Collect()
		sparql.SortBindings(all, keys)
		for _, b := range all {
			if !out.Send(ctx, b) {
				return
			}
		}
	}()
	return out
}
