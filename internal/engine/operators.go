package engine

import (
	"context"
	"hash/maphash"
	"sync"

	"ontario/internal/sparql"
)

// morsel is the unit of work the symmetric hash join's probe workers
// consume: the fragment of one input batch that hashes to a worker's
// shard, with the join keys precomputed by the partitioning reader.
type morsel struct {
	fromLeft bool
	keys     []string
	bindings []sparql.Binding
}

// hashSeed keys the shard hash; process-stable is all sharding needs.
var hashSeed = maphash.MakeSeed()

// emitter is the shared output side of the batch-building operators: it
// accumulates result bindings and forwards them as batches of at most
// size. After a failed send (context cancelled) it goes dead — every
// further add/flush is a cheap no-op and ok() reports false — so callers
// fall through to draining their inputs without special-casing dropped
// batches. Not safe for concurrent use; concurrent producers (block bind
// join dispatches, hash-join shard workers) each own one emitter. Sends
// are accounted to st (nil records nothing).
type emitter struct {
	ctx  context.Context
	out  *Stream
	size int
	st   *OpStats
	buf  []sparql.Binding
	dead bool
}

func newEmitter(ctx context.Context, out *Stream, size int, st *OpStats) *emitter {
	return &emitter{ctx: ctx, out: out, size: size, st: st}
}

// add buffers one result binding, forwarding a full batch.
func (e *emitter) add(b sparql.Binding) {
	if e.dead {
		return
	}
	e.buf = append(e.buf, b)
	if len(e.buf) >= e.size {
		e.flush()
	}
}

// flush forwards the buffered partial batch (typically at an input-batch
// boundary, to keep answers streaming).
func (e *emitter) flush() {
	if e.dead {
		e.buf = nil
		return
	}
	if !e.st.send(e.ctx, e.out, e.buf) {
		e.dead = true
	}
	e.buf = nil
}

// ok reports whether the output is still live (false after a cancelled
// send: keep draining inputs, stop producing).
func (e *emitter) ok() bool { return !e.dead }

// SymmetricHashJoin joins two streams on joinVars without blocking: each
// arriving binding is inserted into its side's hash table and immediately
// probed against the other side's table, so answers are emitted as soon as
// both matching inputs have arrived (the adaptive operator ANAPSID calls
// agjoin).
//
// The hash tables are sharded by join-key hash across par probe workers,
// morsel-style: each input batch is partitioned by key hash and each
// fragment is handed to the worker owning that shard. A worker owns its
// shard's two hash tables exclusively, so insert and probe run without any
// lock and probe matches are read in place — no defensive copy of the
// opposite side's match list. par <= 1 degrades to a single worker; when
// joinVars is empty every binding lands in one shard and the operator
// degrades to a cross product, like its predecessor. batch bounds the
// output batches (<= 0 means DefaultBatchSize).
func SymmetricHashJoin(ctx context.Context, left, right *Stream, joinVars []string, par, batch int) *Stream {
	if par < 1 {
		par = 1
	}
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	shardCh := make([]chan morsel, par)
	for i := range shardCh {
		shardCh[i] = make(chan morsel, 2)
	}

	var workers sync.WaitGroup
	workers.Add(par)
	for i := 0; i < par; i++ {
		go func(in <-chan morsel) {
			defer workers.Done()
			leftTable := make(map[string][]sparql.Binding)
			rightTable := make(map[string][]sparql.Binding)
			em := newEmitter(ctx, out, batch, st)
			// After a failed send (context cancelled) keep consuming morsels
			// so the partitioning readers — and through them the input
			// producers — can finish instead of blocking forever.
			for m := range in {
				if !em.ok() {
					continue
				}
				st.addHashEntries(len(m.bindings))
				own, other := leftTable, rightTable
				if !m.fromLeft {
					own, other = rightTable, leftTable
				}
				for j, b := range m.bindings {
					key := m.keys[j]
					own[key] = append(own[key], b)
					for _, o := range other[key] {
						if !b.Compatible(o) {
							continue
						}
						if m.fromLeft {
							em.add(b.Merge(o))
						} else {
							em.add(o.Merge(b))
						}
					}
				}
				// Flush at the morsel boundary so answers keep streaming.
				em.flush()
			}
		}(shardCh[i])
	}

	var readers sync.WaitGroup
	readers.Add(2)
	consume := func(in *Stream, fromLeft bool) {
		defer readers.Done()
		for {
			inBatch, open := st.recv(in)
			if !open {
				return
			}
			keys := make([]string, len(inBatch))
			for i, b := range inBatch {
				keys[i] = b.Key(joinVars)
			}
			if par == 1 {
				shardCh[0] <- morsel{fromLeft: fromLeft, keys: keys, bindings: inBatch}
				continue
			}
			parts := make([][]sparql.Binding, par)
			partKeys := make([][]string, par)
			for i, b := range inBatch {
				s := int(maphash.String(hashSeed, keys[i]) % uint64(par))
				parts[s] = append(parts[s], b)
				partKeys[s] = append(partKeys[s], keys[i])
			}
			for s := range parts {
				if len(parts[s]) > 0 {
					shardCh[s] <- morsel{fromLeft: fromLeft, keys: partKeys[s], bindings: parts[s]}
				}
			}
		}
	}

	go consume(left, true)
	go consume(right, false)
	go func() {
		readers.Wait()
		for _, ch := range shardCh {
			close(ch)
		}
		workers.Wait()
		st.close()
		out.Close()
	}()
	return out
}

// Service produces a stream of bindings for a (possibly instantiated)
// request; it abstracts a source wrapper invocation for the bind join.
type Service func(ctx context.Context, seed sparql.Binding) *Stream

// BindJoin is a dependent (nested-loop) join: for every left binding it
// invokes the right service instantiated with that binding and merges the
// results. It trades per-answer requests for smaller transfers, and serves
// as the ablation counterpart to the symmetric hash join. batch bounds
// the output batches (<= 0 means DefaultBatchSize).
func BindJoin(ctx context.Context, left *Stream, right Service, joinVars []string, batch int) *Stream {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		// Results trickle in per sequential service call, so the output is
		// batched like a leaf producer's: a BatchWriter accumulates across
		// seeds (selective seeds would otherwise emit per-tuple batches)
		// and its flush interval preserves time-to-first-answer while
		// service calls are slow. After a failed send the output is
		// abandoned: stop invoking the right service but keep draining the
		// left (and any in-flight right) stream so producers can finish.
		w := NewBatchWriter(ctx, out, batch)
		w.SetStats(st)
		defer w.Close()
		cancelled := false
		for {
			lbatch, open := st.recv(left)
			if !open {
				break
			}
			for _, lb := range lbatch {
				if cancelled {
					continue
				}
				seed := lb.Project(joinVars)
				st.AddBlock()
				for rbatch := range right(ctx, seed).Batches() {
					for _, rb := range rbatch {
						if cancelled || !lb.Compatible(rb) {
							continue
						}
						if !w.Send(lb.Merge(rb)) {
							cancelled = true
						}
					}
				}
			}
		}
	}()
	return out
}

// BlockService produces a stream of bindings for a request instantiated
// with a whole block of seed bindings in a single invocation; it abstracts
// a multi-seed wrapper call for the block bind join. The service returns
// the union of the right solutions compatible with at least one seed, each
// underlying solution exactly once and NOT merged with the seeds (the
// solutions bind the join variables themselves, so the caller matches them
// back to the block's left bindings by compatibility). An empty seed list
// means an unconstrained request.
type BlockService func(ctx context.Context, seeds []sparql.Binding) *Stream

// BlockBindJoin is the block-based variant of BindJoin (the FedX/ANAPSID
// lineage "bound join"): left bindings are gathered into blocks of
// blockSize, each block's distinct seed projections are pushed to the right
// service in ONE invocation — and hence one simulated network message —
// and up to concurrency block requests are in flight at once. Output stays
// streaming: a block's answers are emitted as soon as its service call
// returns, independent of later blocks. When joinVars is empty the operator
// degrades to a cross product, like its sequential counterpart. batch
// bounds the output batches (<= 0 means DefaultBatchSize).
func BlockBindJoin(ctx context.Context, left *Stream, right BlockService, joinVars []string, blockSize, concurrency, batch int) *Stream {
	if blockSize < 1 {
		blockSize = 1
	}
	if concurrency < 1 {
		concurrency = 1
	}
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		sem := make(chan struct{}, concurrency)
		var wg sync.WaitGroup
		dispatch := func(block []sparql.Binding) {
			// Distinct seed projections; duplicates would only repeat work
			// at the source. A left binding with no bound join variable
			// joins with every right solution, so its presence forces an
			// unconstrained request for the whole block.
			var seeds []sparql.Binding
			seen := make(map[string]bool, len(block))
			for _, lb := range block {
				seed := lb.Project(joinVars)
				if len(seed) == 0 {
					seeds = nil
					break
				}
				k := seed.Key(joinVars)
				if seen[k] {
					continue
				}
				seen[k] = true
				seeds = append(seeds, seed)
			}
			sem <- struct{}{}
			wg.Add(1)
			st.AddBlock()
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				// Keep draining the block's response after a failed send so
				// the service's producer goroutine can finish.
				em := newEmitter(ctx, out, batch, st)
				for rbatch := range right(ctx, seeds).Batches() {
					if !em.ok() {
						continue
					}
					for _, rb := range rbatch {
						for _, lb := range block {
							if lb.Compatible(rb) {
								em.add(lb.Merge(rb))
							}
						}
					}
					em.flush()
				}
			}()
		}
		var block []sparql.Binding
		for {
			lbatch, open := st.recv(left)
			if !open {
				break
			}
			for _, lb := range lbatch {
				block = append(block, lb)
				if len(block) >= blockSize {
					dispatch(block)
					block = nil
				}
			}
		}
		if len(block) > 0 {
			dispatch(block)
		}
		wg.Wait()
	}()
	return out
}

// NestedLoopJoin materializes the right input, then joins every left
// binding against it; the fully blocking baseline operator. batch bounds
// the output batches (<= 0 means DefaultBatchSize).
func NestedLoopJoin(ctx context.Context, left, right *Stream, joinVars []string, batch int) *Stream {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		rights := st.collect(right)
		em := newEmitter(ctx, out, batch, st)
		for {
			lbatch, open := st.recv(left)
			if !open {
				break
			}
			if !em.ok() {
				continue // drain the left so its producer can finish
			}
			for _, lb := range lbatch {
				for _, rb := range rights {
					if lb.Compatible(rb) {
						em.add(lb.Merge(rb))
					}
				}
			}
			em.flush()
		}
	}()
	return out
}

// LeftJoin extends every left binding with the compatible right bindings
// that satisfy the filters, passing the left binding through unextended
// when none match (SPARQL OPTIONAL). The right input is materialized; a
// blocking operator. batch bounds the output batches (<= 0 means
// DefaultBatchSize).
func LeftJoin(ctx context.Context, left, right *Stream, filters []sparql.Expr, batch int) *Stream {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		rights := st.collect(right)
		em := newEmitter(ctx, out, batch, st)
		for {
			lbatch, open := st.recv(left)
			if !open {
				break
			}
			if !em.ok() {
				continue // drain the left so its producer can finish
			}
			for _, lb := range lbatch {
				matched := false
				for _, rb := range rights {
					if !lb.Compatible(rb) {
						continue
					}
					m := lb.Merge(rb)
					ok := true
					for _, f := range filters {
						if !sparql.EvalBool(f, m) {
							ok = false
							break
						}
					}
					if ok {
						matched = true
						em.add(m)
					}
				}
				if !matched {
					em.add(lb)
				}
			}
			em.flush()
		}
	}()
	return out
}

// collect drains a stream into a flat slice, accounting the consumed
// batches to the operator (nil st behaves like Stream.Collect).
func (o *OpStats) collect(in *Stream) []sparql.Binding {
	var out []sparql.Binding
	for {
		batch, ok := o.recv(in)
		if !ok {
			return out
		}
		out = append(out, batch...)
	}
}

// Filter keeps the bindings satisfying every expression. batch only sizes
// the output buffer (output granularity follows the input batches).
func Filter(ctx context.Context, in *Stream, exprs []sparql.Expr, batch int) *Stream {
	if len(exprs) == 0 {
		return in
	}
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		for {
			batch, open := st.recv(in)
			if !open {
				return
			}
			// The operator owns the received batch, so it filters in place:
			// the common all-pass batch is forwarded without any copy.
			kept := batch[:0]
			for _, b := range batch {
				ok := true
				for _, e := range exprs {
					if !sparql.EvalBool(e, b) {
						ok = false
						break
					}
				}
				if ok {
					kept = append(kept, b)
				}
			}
			if !st.send(ctx, out, kept) {
				return
			}
		}
	}()
	return out
}

// Project restricts every binding to vars. batch only sizes the output
// buffer (output granularity follows the input batches).
func Project(ctx context.Context, in *Stream, vars []string, batch int) *Stream {
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		for {
			batch, open := st.recv(in)
			if !open {
				return
			}
			for i, b := range batch {
				batch[i] = b.Project(vars) // owned batch: rewrite in place
			}
			if !st.send(ctx, out, batch) {
				return
			}
		}
	}()
	return out
}

// Distinct drops duplicate bindings. batch only sizes the output buffer
// (output granularity follows the input batches).
func Distinct(ctx context.Context, in *Stream, batch int) *Stream {
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		seen := make(map[string]bool)
		for {
			batch, open := st.recv(in)
			if !open {
				return
			}
			kept := batch[:0] // owned batch: dedup in place, no copy
			for _, b := range batch {
				k := b.FullKey()
				if seen[k] {
					continue
				}
				seen[k] = true
				kept = append(kept, b)
			}
			if !st.send(ctx, out, kept) {
				return
			}
		}
	}()
	return out
}

// Limit passes through at most n bindings (and drains the input to let
// upstream goroutines finish). batch only sizes the output buffer.
func Limit(ctx context.Context, in *Stream, n, batch int) *Stream {
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		count := 0
		for {
			batch, open := st.recv(in)
			if !open {
				return
			}
			if count >= n {
				continue // keep draining so producers are not blocked forever
			}
			if count+len(batch) > n {
				batch = batch[:n-count]
			}
			count += len(batch)
			if !st.send(ctx, out, batch) {
				return
			}
		}
	}()
	return out
}

// Offset skips the first n bindings. batch only sizes the output buffer.
func Offset(ctx context.Context, in *Stream, n, batch int) *Stream {
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		skipped := 0
		for {
			batch, open := st.recv(in)
			if !open {
				return
			}
			if skipped < n {
				drop := n - skipped
				if drop > len(batch) {
					drop = len(batch)
				}
				skipped += drop
				batch = batch[drop:]
			}
			if !st.send(ctx, out, batch) {
				return
			}
		}
	}()
	return out
}

// Union merges the inputs in batch-arrival order. batch only sizes the
// output buffer.
func Union(ctx context.Context, batch int, ins ...*Stream) *Stream {
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	var wg sync.WaitGroup
	wg.Add(len(ins))
	for _, in := range ins {
		go func(in *Stream) {
			defer wg.Done()
			draining := false
			for {
				batch, open := st.recv(in)
				if !open {
					return
				}
				if draining {
					continue // drain the input so its producer can finish
				}
				if !st.send(ctx, out, batch) {
					draining = true
				}
			}
		}(in)
	}
	go func() {
		wg.Wait()
		st.close()
		out.Close()
	}()
	return out
}

// OrderBy materializes the input and emits it sorted in batches of batch
// (<= 0 means DefaultBatchSize); a blocking operator.
func OrderBy(ctx context.Context, in *Stream, keys []sparql.OrderKey, batch int) *Stream {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	out := NewStream(bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		all := st.collect(in)
		sparql.SortBindings(all, keys)
		for len(all) > 0 {
			n := batch
			if n > len(all) {
				n = len(all)
			}
			if !st.send(ctx, out, all[:n:n]) {
				return
			}
			all = all[n:]
		}
	}()
	return out
}
