package engine

import (
	"context"
	"sort"
	"sync"

	"ontario/internal/dict"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// The columnar operators mirror the row operators' semantics exactly —
// same join compatibility, same streaming/flush behaviour, same
// draining discipline after a cancelled send — over the dictionary-
// encoded layout. The hot paths hash and compare raw uint64 IDs; terms
// are only materialized where a value is genuinely needed (FILTER
// expressions, ORDER BY keys, bind-join seeds crossing the wrapper
// boundary).
//
// Join-key semantics, matching Binding.Key: two rows fall in the same
// bucket only when their join-variable IDs are EXACTLY equal, with
// unbound (0) a value of its own — a row with ?v unbound never hash-joins
// a row with ?v bound, just like the row model's string keys. The
// remaining shared variables are then checked with the laxer Compatible
// rule (unbound matches anything).

// sharedPairs returns the column-position pairs of the variables both
// schemas carry, excluding the given join variables (those are handled by
// exact key equality).
func sharedPairs(l, r *Schema, exclude []string) (lp, rp []int) {
	ex := make(map[string]bool, len(exclude))
	for _, v := range exclude {
		ex[v] = true
	}
	for i, v := range l.Vars {
		if ex[v] {
			continue
		}
		if j := r.Pos(v); j >= 0 {
			lp = append(lp, i)
			rp = append(rp, j)
		}
	}
	return lp, rp
}

// hashRowPos combines the IDs of one row's key columns into a hash; a
// position of -1 (a variable the schema does not carry) contributes
// Unbound.
func hashRowPos(b *ColBatch, row int, pos []int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, c := range pos {
		var id dict.ID
		if c >= 0 {
			id = b.Cols[c][row]
		}
		h = mix64(h ^ uint64(id))
	}
	return h
}

// compatBB reports whether row lr of l and row rr of r agree on the
// pre-resolved shared column pairs (Compatible semantics: unbound on
// either side passes).
func compatBB(l *ColBatch, lr int, r *ColBatch, rr int, lp, rp []int) bool {
	for i := range lp {
		a, b := l.Cols[lp[i]][lr], r.Cols[rp[i]][rr]
		if a != dict.Unbound && b != dict.Unbound && a != b {
			return false
		}
	}
	return true
}

// colTable is a hash table over dictionary-encoded rows: the rows are
// stored flattened (stride IDs per row) in one arena, and the buckets map
// a key hash to row indices. Collisions are resolved by the caller
// comparing the key columns of the candidate rows. Owned by one goroutine.
type colTable struct {
	stride  int
	rows    int
	data    []dict.ID
	buckets map[uint64][]int32
}

func newColTable(stride int) *colTable {
	return &colTable{stride: stride, buckets: make(map[uint64][]int32)}
}

// insert appends row r of b and returns its index. A zero-column schema
// (a cross-product input binding nothing) still counts rows: every row
// gets its own index, so the cross product multiplies correctly.
func (t *colTable) insert(b *ColBatch, r int, h uint64) int32 {
	idx := int32(t.rows)
	t.rows++
	for c := 0; c < t.stride; c++ {
		t.data = append(t.data, b.Cols[c][r])
	}
	t.buckets[h] = append(t.buckets[h], idx)
	return idx
}

// id returns the ID at column pos of a stored row; pos < 0 means a
// variable the stored schema does not carry (Unbound).
func (t *colTable) id(row int32, pos int) dict.ID {
	if pos < 0 {
		return dict.Unbound
	}
	return t.data[int(row)*t.stride+pos]
}

// keysEqualBT reports exact key equality between row r of batch b (key
// columns bPos) and stored row tr of t (key columns tPos).
func keysEqualBT(b *ColBatch, r int, bPos []int, t *colTable, tr int32, tPos []int) bool {
	for i := range bPos {
		var a dict.ID
		if bPos[i] >= 0 {
			a = b.Cols[bPos[i]][r]
		}
		if a != t.id(tr, tPos[i]) {
			return false
		}
	}
	return true
}

// compatBT checks Compatible semantics between a batch row and a stored
// table row over pre-resolved shared pairs.
func compatBT(b *ColBatch, r int, bPos []int, t *colTable, tr int32, tPos []int) bool {
	for i := range bPos {
		var a dict.ID
		if bPos[i] >= 0 {
			a = b.Cols[bPos[i]][r]
		}
		o := t.id(tr, tPos[i])
		if a != dict.Unbound && o != dict.Unbound && a != o {
			return false
		}
	}
	return true
}

// cEmitter is the columnar emitter: it accumulates result rows and
// forwards batches of at most size, going dead after a failed send like
// its row counterpart. Not safe for concurrent use.
type cEmitter struct {
	ctx  context.Context
	out  *CStream
	size int
	st   *OpStats
	b    *ColBuilder
	dead bool
}

func newCEmitter(ctx context.Context, out *CStream, size int, st *OpStats) *cEmitter {
	return &cEmitter{ctx: ctx, out: out, size: size, st: st, b: NewColBuilderCap(out.schema, size)}
}

func (e *cEmitter) ok() bool { return !e.dead }

func (e *cEmitter) full() {
	if e.b.Rows() >= e.size {
		e.flush()
	}
}

// row forwards one row of b mapped into the output schema.
func (e *cEmitter) row(b *ColBatch, r int, mapping []int) {
	if e.dead {
		return
	}
	e.b.AppendRow(b, r, mapping)
	e.full()
}

// ids forwards one row given directly as output-schema IDs.
func (e *cEmitter) ids(ids []dict.ID) {
	if e.dead {
		return
	}
	e.b.AppendIDs(ids)
	e.full()
}

// merge forwards the merge of two batch rows (left wins when bound).
func (e *cEmitter) merge(l *ColBatch, lr int, lmap []int, r *ColBatch, rr int, rmap []int) {
	if e.dead {
		return
	}
	e.b.AppendMerged(l, lr, lmap, r, rr, rmap)
	e.full()
}

// mergeBT forwards the merge of a batch row (left side) with a stored
// table row (right side).
func (e *cEmitter) mergeBT(l *ColBatch, lr int, lmap []int, t *colTable, tr int32, tmap []int) {
	if e.dead {
		return
	}
	row := e.b.growRow()
	for c := range e.b.cols {
		id := dict.Unbound
		if lc := lmap[c]; lc >= 0 {
			id = l.Cols[lc][lr]
		}
		if id == dict.Unbound {
			if tc := tmap[c]; tc >= 0 {
				id = t.id(tr, tc)
			}
		}
		if id != dict.Unbound {
			e.b.cols[c][row] = id
			e.b.setBit(c, row)
		}
	}
	e.full()
}

// mergeTB forwards the merge of a stored table row (left side) with a
// batch row (right side).
func (e *cEmitter) mergeTB(t *colTable, tr int32, tmap []int, r *ColBatch, rr int, rmap []int) {
	if e.dead {
		return
	}
	row := e.b.growRow()
	for c := range e.b.cols {
		id := dict.Unbound
		if tc := tmap[c]; tc >= 0 {
			id = t.id(tr, tc)
		}
		if id == dict.Unbound {
			if rc := rmap[c]; rc >= 0 {
				id = r.Cols[rc][rr]
			}
		}
		if id != dict.Unbound {
			e.b.cols[c][row] = id
			e.b.setBit(c, row)
		}
	}
	e.full()
}

// flush forwards the buffered partial batch (typically at a morsel or
// input-batch boundary, keeping answers streaming).
func (e *cEmitter) flush() {
	if e.b.Rows() == 0 {
		return
	}
	batch := e.b.Take()
	if e.dead {
		return
	}
	if !e.st.sendC(e.ctx, e.out, batch) {
		e.dead = true
	}
}

// cMorsel is one partitioned fragment of an input batch with its join-key
// hashes precomputed by the reader.
type cMorsel struct {
	fromLeft bool
	hashes   []uint64
	batch    *ColBatch
}

// CSymmetricHashJoin is the columnar symmetric hash join: identical
// morsel-sharded dataflow to SymmetricHashJoin, but the shard hash, the
// bucket key and the compatibility check all operate on raw dictionary
// IDs — no string key is ever built. out is the operator's output schema
// (the plan node's variables); par and batch as in the row operator.
func CSymmetricHashJoin(ctx context.Context, left, right *CStream, joinVars []string, out *Schema, par, batch int) *CStream {
	if par < 1 {
		par = 1
	}
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	outS := NewCStream(out, bufBatches(batch))

	lKey := left.schema.Positions(joinVars)
	rKey := right.schema.Positions(joinVars)
	pairL, pairR := sharedPairs(left.schema, right.schema, joinVars)
	outL := make([]int, len(out.Vars))
	outR := make([]int, len(out.Vars))
	for i, v := range out.Vars {
		outL[i] = left.schema.Pos(v)
		outR[i] = right.schema.Pos(v)
	}

	shardCh := make([]chan cMorsel, par)
	for i := range shardCh {
		shardCh[i] = make(chan cMorsel, 2)
	}

	var workers sync.WaitGroup
	workers.Add(par)
	for i := 0; i < par; i++ {
		go func(in <-chan cMorsel) {
			defer workers.Done()
			leftTbl := newColTable(len(left.schema.Vars))
			rightTbl := newColTable(len(right.schema.Vars))
			em := newCEmitter(ctx, outS, batch, st)
			for m := range in {
				if !em.ok() {
					continue // keep consuming so the readers can finish
				}
				st.addHashEntries(m.batch.Len)
				if m.fromLeft {
					for r := 0; r < m.batch.Len; r++ {
						h := m.hashes[r]
						leftTbl.insert(m.batch, r, h)
						for _, oi := range rightTbl.buckets[h] {
							if !keysEqualBT(m.batch, r, lKey, rightTbl, oi, rKey) {
								continue
							}
							if !compatBT(m.batch, r, pairL, rightTbl, oi, pairR) {
								continue
							}
							em.mergeBT(m.batch, r, outL, rightTbl, oi, outR)
						}
					}
				} else {
					for r := 0; r < m.batch.Len; r++ {
						h := m.hashes[r]
						rightTbl.insert(m.batch, r, h)
						for _, oi := range leftTbl.buckets[h] {
							if !keysEqualBT(m.batch, r, rKey, leftTbl, oi, lKey) {
								continue
							}
							if !compatBT(m.batch, r, pairR, leftTbl, oi, pairL) {
								continue
							}
							em.mergeTB(leftTbl, oi, outL, m.batch, r, outR)
						}
					}
				}
				em.flush() // morsel boundary: keep answers streaming
			}
		}(shardCh[i])
	}

	var readers sync.WaitGroup
	readers.Add(2)
	consume := func(in *CStream, keyPos []int, fromLeft bool) {
		defer readers.Done()
		ident := in.schema.Positions(in.schema.Vars)
		for {
			b, open := st.recvC(in)
			if !open {
				return
			}
			hashes := make([]uint64, b.Len)
			for r := 0; r < b.Len; r++ {
				hashes[r] = hashRowPos(b, r, keyPos)
			}
			if par == 1 {
				shardCh[0] <- cMorsel{fromLeft: fromLeft, hashes: hashes, batch: b}
				continue
			}
			parts := make([]*ColBuilder, par)
			partHashes := make([][]uint64, par)
			for r := 0; r < b.Len; r++ {
				s := int(hashes[r] % uint64(par))
				if parts[s] == nil {
					parts[s] = NewColBuilder(in.schema)
				}
				parts[s].AppendRow(b, r, ident)
				partHashes[s] = append(partHashes[s], hashes[r])
			}
			for s := range parts {
				if parts[s] != nil {
					shardCh[s] <- cMorsel{fromLeft: fromLeft, hashes: partHashes[s], batch: parts[s].Take()}
				}
			}
		}
	}

	go consume(left, lKey, true)
	go consume(right, rKey, false)
	go func() {
		readers.Wait()
		for _, ch := range shardCh {
			close(ch)
		}
		workers.Wait()
		st.close()
		outS.Close()
	}()
	return outS
}

// CService produces a columnar stream for a seed-instantiated request;
// the seed crosses the wrapper boundary as a materialized binding because
// remote hops and SQL translation speak terms, not IDs.
type CService func(ctx context.Context, seed sparql.Binding) *CStream

// seedBinding materializes the bound join variables of one row as a seed
// (Project semantics: unbound variables are omitted).
func seedBinding(b *ColBatch, r int, joinVars []string, pos []int, d *dict.Dict) sparql.Binding {
	seed := sparql.NewBinding()
	for i, p := range pos {
		if p < 0 {
			continue
		}
		if id := b.Cols[p][r]; id != dict.Unbound {
			seed[joinVars[i]] = d.MustLookup(id)
		}
	}
	return seed
}

// CBindJoin is the columnar dependent join: per left row it extracts the
// bound join variables as a seed, invokes the right service, and merges
// compatible results. Output batching matches the row operator: a
// flush-interval writer accumulates across seeds.
func CBindJoin(ctx context.Context, left *CStream, right CService, joinVars []string, out *Schema, d *dict.Dict, batch int) *CStream {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	outS := NewCStream(out, bufBatches(batch))
	go func() {
		defer outS.Close()
		defer st.close()
		lPos := left.schema.Positions(joinVars)
		outL := make([]int, len(out.Vars))
		for i, v := range out.Vars {
			outL[i] = left.schema.Pos(v)
		}
		w := NewColWriter(ctx, outS, batch)
		w.SetStats(st)
		defer w.Close()
		cancelled := false
		var pairL, pairR, outR []int
		var rSchema *Schema
		for {
			lb, open := st.recvC(left)
			if !open {
				break
			}
			for lr := 0; lr < lb.Len; lr++ {
				if cancelled {
					continue
				}
				seed := seedBinding(lb, lr, joinVars, lPos, d)
				st.AddBlock()
				rs := right(ctx, seed)
				if rSchema != rs.Schema() {
					// Resolve the right-side layout once per distinct schema
					// (service streams share one schema per plan node).
					rSchema = rs.Schema()
					pairL, pairR = sharedPairs(left.schema, rSchema, nil)
					outR = make([]int, len(out.Vars))
					for i, v := range out.Vars {
						outR[i] = rSchema.Pos(v)
					}
				}
				for rb := range rs.Batches() {
					for rr := 0; rr < rb.Len; rr++ {
						if cancelled || !compatBB(lb, lr, rb, rr, pairL, pairR) {
							continue
						}
						if !w.AppendMerged(lb, lr, outL, rb, rr, outR) {
							cancelled = true
						}
					}
				}
			}
		}
	}()
	return outS
}

// CBlockService answers a whole block of seeds in one invocation (see
// BlockService for the contract; an empty seed list means unconstrained).
type CBlockService func(ctx context.Context, seeds []sparql.Binding) *CStream

// CBlockBindJoin is the columnar block bind join: left rows are gathered
// into blocks, each block's distinct seeds (deduplicated on raw ID tuples
// — no string keys) go to the right service in one invocation, and up to
// concurrency blocks are in flight at once.
func CBlockBindJoin(ctx context.Context, left *CStream, right CBlockService, joinVars []string, out *Schema, d *dict.Dict, blockSize, concurrency, batch int) *CStream {
	if blockSize < 1 {
		blockSize = 1
	}
	if concurrency < 1 {
		concurrency = 1
	}
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	outS := NewCStream(out, bufBatches(batch))
	go func() {
		defer outS.Close()
		defer st.close()
		lPos := left.schema.Positions(joinVars)
		ident := left.schema.Positions(left.schema.Vars)
		outL := make([]int, len(out.Vars))
		for i, v := range out.Vars {
			outL[i] = left.schema.Pos(v)
		}
		sem := make(chan struct{}, concurrency)
		var wg sync.WaitGroup
		var pmu sync.Mutex // guards the lazily resolved right-side layout
		var pairL, pairR, outR []int
		var rSchema *Schema
		dispatch := func(block *ColBatch) {
			// Distinct seeds by their join-variable ID tuple; a row with no
			// bound join variable joins with every right solution, so it
			// forces an unconstrained request for the whole block.
			var seeds []sparql.Binding
			seedTbl := newColTable(len(lPos))
			unconstrained := false
			for r := 0; r < block.Len && !unconstrained; r++ {
				allUnbound := true
				for _, p := range lPos {
					if p >= 0 && block.Cols[p][r] != dict.Unbound {
						allUnbound = false
						break
					}
				}
				if allUnbound {
					seeds = nil
					unconstrained = true
					break
				}
				h := hashRowPos(block, r, lPos)
				dup := false
				for _, si := range seedTbl.buckets[h] {
					eq := true
					for i, p := range lPos {
						var id dict.ID
						if p >= 0 {
							id = block.Cols[p][r]
						}
						if id != seedTbl.id(si, i) {
							eq = false
							break
						}
					}
					if eq {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				idx := int32(len(seeds))
				for _, p := range lPos {
					var id dict.ID
					if p >= 0 {
						id = block.Cols[p][r]
					}
					seedTbl.data = append(seedTbl.data, id)
				}
				seedTbl.buckets[h] = append(seedTbl.buckets[h], idx)
				seeds = append(seeds, seedBinding(block, r, joinVars, lPos, d))
			}
			sem <- struct{}{}
			wg.Add(1)
			st.AddBlock()
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				em := newCEmitter(ctx, outS, batch, st)
				rs := right(ctx, seeds)
				pmu.Lock()
				if rSchema != rs.Schema() {
					rSchema = rs.Schema()
					pairL, pairR = sharedPairs(left.schema, rSchema, nil)
					outR = make([]int, len(out.Vars))
					for i, v := range out.Vars {
						outR[i] = rSchema.Pos(v)
					}
				}
				pL, pR, oR := pairL, pairR, outR
				pmu.Unlock()
				for rb := range rs.Batches() {
					if !em.ok() {
						continue // drain so the service's producer can finish
					}
					for rr := 0; rr < rb.Len; rr++ {
						for lr := 0; lr < block.Len; lr++ {
							if compatBB(block, lr, rb, rr, pL, pR) {
								em.merge(block, lr, outL, rb, rr, oR)
							}
						}
					}
					em.flush()
				}
			}()
		}
		blockB := NewColBuilder(left.schema)
		for {
			lb, open := st.recvC(left)
			if !open {
				break
			}
			for r := 0; r < lb.Len; r++ {
				blockB.AppendRow(lb, r, ident)
				if blockB.Rows() >= blockSize {
					dispatch(blockB.Take())
				}
			}
		}
		if blockB.Rows() > 0 {
			dispatch(blockB.Take())
		}
		wg.Wait()
	}()
	return outS
}

// CNestedLoopJoin materializes the right input and joins every left row
// against it; the blocking baseline, columnar.
func CNestedLoopJoin(ctx context.Context, left, right *CStream, joinVars []string, out *Schema, batch int) *CStream {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	outS := NewCStream(out, bufBatches(batch))
	go func() {
		defer outS.Close()
		defer st.close()
		rights := st.collectC(right)
		pairL, pairR := sharedPairs(left.schema, right.schema, nil)
		outL := make([]int, len(out.Vars))
		outR := make([]int, len(out.Vars))
		for i, v := range out.Vars {
			outL[i] = left.schema.Pos(v)
			outR[i] = right.schema.Pos(v)
		}
		em := newCEmitter(ctx, outS, batch, st)
		for {
			lb, open := st.recvC(left)
			if !open {
				break
			}
			if !em.ok() {
				continue // drain the left so its producer can finish
			}
			for lr := 0; lr < lb.Len; lr++ {
				for rr := 0; rr < rights.Len; rr++ {
					if compatBB(lb, lr, rights, rr, pairL, pairR) {
						em.merge(lb, lr, outL, rights, rr, outR)
					}
				}
			}
			em.flush()
		}
	}()
	return outS
}

// scratchEval evaluates row-model filter expressions against columnar
// rows through one reusable scratch binding: only the variables the
// expressions actually reference are materialized, and the map is cleared
// and refilled per row instead of allocated.
type scratchEval struct {
	vars []string
	pos  []int
	m    sparql.Binding
	d    *dict.Dict
}

func newScratchEval(exprs []sparql.Expr, s *Schema, d *dict.Dict) *scratchEval {
	seen := map[string]bool{}
	var vars []string
	for _, e := range exprs {
		for _, v := range e.Vars() {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	return &scratchEval{vars: vars, pos: s.Positions(vars), m: sparql.NewBinding(), d: d}
}

// bind fills the scratch binding from row r of b (a variable the schema
// does not carry, or an unbound column, stays absent — expression
// evaluation then errors and EvalBool yields false, the row semantics).
func (s *scratchEval) bind(b *ColBatch, r int) sparql.Binding {
	clear(s.m)
	for i, p := range s.pos {
		if p < 0 {
			continue
		}
		if id := b.Cols[p][r]; id != dict.Unbound {
			s.m[s.vars[i]] = s.d.MustLookup(id)
		}
	}
	return s.m
}

// bindIDs fills the scratch binding from a raw output-schema row.
func (s *scratchEval) bindIDs(ids []dict.ID) sparql.Binding {
	clear(s.m)
	for i, p := range s.pos {
		if p < 0 {
			continue
		}
		if id := ids[p]; id != dict.Unbound {
			s.m[s.vars[i]] = s.d.MustLookup(id)
		}
	}
	return s.m
}

// CLeftJoin extends every left row with the compatible right rows
// passing the filters, emitting the left row unextended when none match
// (SPARQL OPTIONAL); the right input is materialized.
func CLeftJoin(ctx context.Context, left, right *CStream, filters []sparql.Expr, out *Schema, d *dict.Dict, batch int) *CStream {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	outS := NewCStream(out, bufBatches(batch))
	go func() {
		defer outS.Close()
		defer st.close()
		rights := st.collectC(right)
		pairL, pairR := sharedPairs(left.schema, right.schema, nil)
		outL := make([]int, len(out.Vars))
		outR := make([]int, len(out.Vars))
		for i, v := range out.Vars {
			outL[i] = left.schema.Pos(v)
			outR[i] = right.schema.Pos(v)
		}
		var ev *scratchEval
		if len(filters) > 0 {
			ev = newScratchEval(filters, out, d)
		}
		merged := make([]dict.ID, len(out.Vars))
		em := newCEmitter(ctx, outS, batch, st)
		for {
			lb, open := st.recvC(left)
			if !open {
				break
			}
			if !em.ok() {
				continue // drain the left so its producer can finish
			}
			for lr := 0; lr < lb.Len; lr++ {
				matched := false
				for rr := 0; rr < rights.Len; rr++ {
					if !compatBB(lb, lr, rights, rr, pairL, pairR) {
						continue
					}
					if ev != nil {
						for c := range merged {
							id := dict.Unbound
							if lc := outL[c]; lc >= 0 {
								id = lb.Cols[lc][lr]
							}
							if id == dict.Unbound {
								if rc := outR[c]; rc >= 0 {
									id = rights.Cols[rc][rr]
								}
							}
							merged[c] = id
						}
						m := ev.bindIDs(merged)
						ok := true
						for _, f := range filters {
							if !sparql.EvalBool(f, m) {
								ok = false
								break
							}
						}
						if !ok {
							continue
						}
						matched = true
						em.ids(merged)
						continue
					}
					matched = true
					em.merge(lb, lr, outL, rights, rr, outR)
				}
				if !matched {
					em.row(lb, lr, outL)
				}
			}
			em.flush()
		}
	}()
	return outS
}

// CFilter keeps the rows satisfying every expression. All-pass batches
// are forwarded without a copy.
func CFilter(ctx context.Context, in *CStream, exprs []sparql.Expr, d *dict.Dict, batch int) *CStream {
	if len(exprs) == 0 {
		return in
	}
	st := StatsFrom(ctx)
	out := NewCStream(in.schema, bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		ev := newScratchEval(exprs, in.schema, d)
		ident := in.schema.Positions(in.schema.Vars)
		var kept []int32
		for {
			b, open := st.recvC(in)
			if !open {
				return
			}
			kept = kept[:0]
			for r := 0; r < b.Len; r++ {
				m := ev.bind(b, r)
				ok := true
				for _, e := range exprs {
					if !sparql.EvalBool(e, m) {
						ok = false
						break
					}
				}
				if ok {
					kept = append(kept, int32(r))
				}
			}
			if len(kept) == b.Len {
				if !st.sendC(ctx, out, b) {
					return
				}
				continue
			}
			if len(kept) == 0 {
				continue
			}
			nb := NewColBuilder(in.schema)
			for _, r := range kept {
				nb.AppendRow(b, int(r), ident)
			}
			if !st.sendC(ctx, out, nb.Take()) {
				return
			}
		}
	}()
	return out
}

// CProject restricts batches to vars. Projection is column selection: a
// projected batch shares the kept columns' backing arrays with its input
// — O(columns) per batch, no per-row work at all. A projected variable
// the input schema does not carry yields an all-unbound column.
func CProject(ctx context.Context, in *CStream, vars []string, batch int) *CStream {
	st := StatsFrom(ctx)
	schema := NewSchema(vars)
	pos := in.schema.Positions(vars)
	out := NewCStream(schema, bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		for {
			b, open := st.recvC(in)
			if !open {
				return
			}
			nb := &ColBatch{
				Schema:  schema,
				Len:     b.Len,
				Cols:    make([][]dict.ID, len(vars)),
				Present: make([][]uint64, len(vars)),
			}
			for c, p := range pos {
				if p >= 0 {
					nb.Cols[c] = b.Cols[p]
					nb.Present[c] = b.Present[p]
				} else {
					nb.Cols[c] = make([]dict.ID, b.Len)
					nb.Present[c] = make([]uint64, (b.Len+63)/64)
				}
			}
			if !st.sendC(ctx, out, nb) {
				return
			}
		}
	}()
	return out
}

// CDistinct drops duplicate rows: the seen-set hashes the full ID tuple
// and verifies collisions against an arena of stored rows — the full-key
// string of the row model is gone.
func CDistinct(ctx context.Context, in *CStream, batch int) *CStream {
	st := StatsFrom(ctx)
	out := NewCStream(in.schema, bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		allPos := in.schema.Positions(in.schema.Vars)
		seen := newColTable(len(in.schema.Vars))
		var kept []int32
		for {
			b, open := st.recvC(in)
			if !open {
				return
			}
			kept = kept[:0]
			for r := 0; r < b.Len; r++ {
				h := hashRowPos(b, r, allPos)
				dup := false
				for _, si := range seen.buckets[h] {
					eq := true
					for c := 0; c < seen.stride; c++ {
						if b.Cols[c][r] != seen.id(si, c) {
							eq = false
							break
						}
					}
					if eq {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				seen.insert(b, r, h)
				kept = append(kept, int32(r))
			}
			if len(kept) == b.Len {
				if !st.sendC(ctx, out, b) {
					return
				}
				continue
			}
			if len(kept) == 0 {
				continue
			}
			nb := NewColBuilder(in.schema)
			for _, r := range kept {
				nb.AppendRow(b, int(r), allPos)
			}
			if !st.sendC(ctx, out, nb.Take()) {
				return
			}
		}
	}()
	return out
}

// CLimit passes through at most n rows, draining the rest.
func CLimit(ctx context.Context, in *CStream, n, batch int) *CStream {
	st := StatsFrom(ctx)
	out := NewCStream(in.schema, bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		ident := in.schema.Positions(in.schema.Vars)
		count := 0
		for {
			b, open := st.recvC(in)
			if !open {
				return
			}
			if count >= n {
				continue // keep draining so producers are not blocked forever
			}
			if count+b.Len > n {
				nb := NewColBuilder(in.schema)
				for r := 0; r < n-count; r++ {
					nb.AppendRow(b, r, ident)
				}
				b = nb.Take()
			}
			count += b.Len
			if !st.sendC(ctx, out, b) {
				return
			}
		}
	}()
	return out
}

// COffset skips the first n rows.
func COffset(ctx context.Context, in *CStream, n, batch int) *CStream {
	st := StatsFrom(ctx)
	out := NewCStream(in.schema, bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		ident := in.schema.Positions(in.schema.Vars)
		skipped := 0
		for {
			b, open := st.recvC(in)
			if !open {
				return
			}
			if skipped < n {
				drop := n - skipped
				if drop >= b.Len {
					skipped += b.Len
					continue
				}
				skipped += drop
				nb := NewColBuilder(in.schema)
				for r := drop; r < b.Len; r++ {
					nb.AppendRow(b, r, ident)
				}
				b = nb.Take()
			}
			if !st.sendC(ctx, out, b) {
				return
			}
		}
	}()
	return out
}

// CUnion merges the inputs in batch-arrival order, padding each child's
// batches to the union schema (variables a child does not bind stay
// unbound). A child whose schema already matches forwards batches
// untouched.
func CUnion(ctx context.Context, out *Schema, batch int, ins ...*CStream) *CStream {
	st := StatsFrom(ctx)
	outS := NewCStream(out, bufBatches(batch))
	var wg sync.WaitGroup
	wg.Add(len(ins))
	for _, in := range ins {
		mapping := in.schema.Positions(out.Vars)
		same := len(in.schema.Vars) == len(out.Vars)
		if same {
			for i, p := range mapping {
				if p != i {
					same = false
					break
				}
			}
		}
		go func(in *CStream, mapping []int, same bool) {
			defer wg.Done()
			draining := false
			for {
				b, open := st.recvC(in)
				if !open {
					return
				}
				if draining {
					continue // drain the input so its producer can finish
				}
				if !same {
					nb := NewColBuilder(out)
					for r := 0; r < b.Len; r++ {
						nb.AppendRow(b, r, mapping)
					}
					b = nb.Take()
					b.Schema = out
				}
				if !st.sendC(ctx, outS, b) {
					draining = true
				}
			}
		}(in, mapping, same)
	}
	go func() {
		wg.Wait()
		st.close()
		outS.Close()
	}()
	return outS
}

// COrderBy materializes the input and emits it sorted; a blocking
// operator. Only the ORDER BY key columns are materialized to terms —
// the sort permutes row indices and the output is rebuilt from IDs.
func COrderBy(ctx context.Context, in *CStream, keys []sparql.OrderKey, d *dict.Dict, batch int) *CStream {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st := StatsFrom(ctx)
	out := NewCStream(in.schema, bufBatches(batch))
	go func() {
		defer out.Close()
		defer st.close()
		all := st.collectC(in)
		ident := in.schema.Positions(in.schema.Vars)
		// Decode just the key columns (an unbound or uncarried key yields
		// the zero term, exactly like a missing map entry in SortBindings).
		keyTerms := make([][]rdf.Term, len(keys))
		for k, key := range keys {
			terms := make([]rdf.Term, all.Len)
			if p := in.schema.Pos(key.Var); p >= 0 {
				for r := 0; r < all.Len; r++ {
					if id := all.Cols[p][r]; id != dict.Unbound {
						terms[r] = d.MustLookup(id)
					}
				}
			}
			keyTerms[k] = terms
		}
		idx := make([]int, all.Len)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(i, j int) bool {
			for k, key := range keys {
				c := sparql.CompareOrderTerms(keyTerms[k][idx[i]], keyTerms[k][idx[j]])
				if c == 0 {
					continue
				}
				if key.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		nb := NewColBuilder(in.schema)
		for _, r := range idx {
			nb.AppendRow(all, r, ident)
			if nb.Rows() >= batch {
				if !st.sendC(ctx, out, nb.Take()) {
					return
				}
			}
		}
		if nb.Rows() > 0 {
			st.sendC(ctx, out, nb.Take())
		}
	}()
	return out
}
