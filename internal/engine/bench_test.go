package engine

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"ontario/internal/dict"
	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// benchRelation builds n bindings sharing nKeys distinct join keys on "k"
// plus one distinguishing variable.
func benchRelation(n, nKeys int, payloadVar string) []sparql.Binding {
	out := make([]sparql.Binding, n)
	for i := 0; i < n; i++ {
		out[i] = sparql.Binding{
			"k":        rdf.NewLiteral(fmt.Sprint(i % nKeys)),
			payloadVar: rdf.NewLiteral(fmt.Sprint(i)),
		}
	}
	return out
}

func drain(s *Stream) int {
	n := 0
	for batch := range s.Batches() {
		n += len(batch)
	}
	return n
}

func BenchmarkSymmetricHashJoinPar1(b *testing.B) { benchSymmetricHashJoin(b, 1) }
func BenchmarkSymmetricHashJoinPar4(b *testing.B) { benchSymmetricHashJoin(b, 4) }
func BenchmarkSymmetricHashJoinPar8(b *testing.B) { benchSymmetricHashJoin(b, 8) }

func benchSymmetricHashJoin(b *testing.B, par int) {
	ctx := context.Background()
	left := benchRelation(2048, 256, "l")
	right := benchRelation(2048, 256, "r")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := drain(SymmetricHashJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), []string{"k"}, par, 0))
		if n != 2048*8 {
			b.Fatalf("join produced %d, want %d", n, 2048*8)
		}
	}
}

// BenchmarkSymmetricHashJoinProbeAllocs is the allocation guard for the
// probe path: every input shares ONE join key but no pair is compatible,
// so nothing is emitted and the measured allocs/op are pure insert+probe
// overhead. The pre-batching operator defensively copied the whole
// opposite-side match list for every arriving binding (quadratic bytes on
// this workload); the sharded rewrite probes in place. A regression shows
// up as an explosion of B/op here.
func BenchmarkSymmetricHashJoinProbeAllocs(b *testing.B) {
	ctx := context.Background()
	n := 2048
	left := make([]sparql.Binding, n)
	right := make([]sparql.Binding, n)
	for i := 0; i < n; i++ {
		// Same key "k", clashing common var "v": compatible with nothing.
		left[i] = sparql.Binding{"k": rdf.NewLiteral("1"), "v": rdf.NewLiteral(fmt.Sprint(i))}
		right[i] = sparql.Binding{"k": rdf.NewLiteral("1"), "v": rdf.NewLiteral(fmt.Sprint(n + i))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := drain(SymmetricHashJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), []string{"k"}, 1, 0)); got != 0 {
			b.Fatalf("incompatible workload emitted %d bindings", got)
		}
	}
}

// TestSymmetricHashJoinNoQuadraticProbeCopy asserts the same property with
// a hard byte bound: on the incompatible single-key workload the join must
// allocate a roughly linear number of bytes per input binding. The old
// per-binding match-list copy allocated ~n/2 slice elements per input
// (about 8 KB per input at n=2048) and trips the bound by an order of
// magnitude.
func TestSymmetricHashJoinNoQuadraticProbeCopy(t *testing.T) {
	ctx := context.Background()
	const n = 2048
	left := make([]sparql.Binding, n)
	right := make([]sparql.Binding, n)
	for i := 0; i < n; i++ {
		left[i] = sparql.Binding{"k": rdf.NewLiteral("1"), "v": rdf.NewLiteral(fmt.Sprint(i))}
		right[i] = sparql.Binding{"k": rdf.NewLiteral("1"), "v": rdf.NewLiteral(fmt.Sprint(n + i))}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if got := drain(SymmetricHashJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), []string{"k"}, 1, 0)); got != 0 {
		t.Fatalf("incompatible workload emitted %d bindings", got)
	}
	runtime.ReadMemStats(&after)
	perInput := (after.TotalAlloc - before.TotalAlloc) / (2 * n)
	// Generous linear budget: key strings, table growth, morsel slices.
	if perInput > 2048 {
		t.Errorf("probe allocated %d bytes per input binding (budget 2048): defensive match-list copy reintroduced?", perInput)
	}
}

func BenchmarkBindJoin(b *testing.B) {
	ctx := context.Background()
	left := benchRelation(256, 64, "l")
	right := benchRelation(512, 64, "r")
	svc := func(ctx context.Context, seed sparql.Binding) *Stream {
		var rows []sparql.Binding
		for _, rb := range right {
			if seed.Compatible(rb) {
				rows = append(rows, rb)
			}
		}
		return FromSlice(ctx, rows)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(BindJoin(ctx, FromSlice(ctx, left), svc, []string{"k"}, 0))
	}
}

func BenchmarkBlockBindJoin(b *testing.B) {
	ctx := context.Background()
	left := benchRelation(256, 64, "l")
	right := benchRelation(512, 64, "r")
	svc := func(ctx context.Context, seeds []sparql.Binding) *Stream {
		var rows []sparql.Binding
		for _, rb := range right {
			for _, s := range seeds {
				if s.Compatible(rb) {
					rows = append(rows, rb)
					break
				}
			}
		}
		return FromSlice(ctx, rows)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(BlockBindJoin(ctx, FromSlice(ctx, left), svc, []string{"k"}, 16, 4, 0))
	}
}

func BenchmarkNestedLoopJoin(b *testing.B) {
	ctx := context.Background()
	left := benchRelation(512, 64, "l")
	right := benchRelation(512, 64, "r")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(NestedLoopJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), []string{"k"}, 0))
	}
}

func BenchmarkLeftJoin(b *testing.B) {
	ctx := context.Background()
	left := benchRelation(512, 64, "l")
	right := benchRelation(256, 128, "r")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(LeftJoin(ctx, FromSlice(ctx, left), FromSlice(ctx, right), nil, 0))
	}
}

func BenchmarkFilter(b *testing.B) {
	ctx := context.Background()
	q := sparql.MustParse(`SELECT ?x WHERE { ?s ?p ?x . FILTER (?v > 512) }`)
	in := make([]sparql.Binding, 2048)
	for i := range in {
		in[i] = sparql.Binding{"v": rdf.IntLiteral(int64(i))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(Filter(ctx, FromSlice(ctx, in), q.Filters, 0))
	}
}

func BenchmarkProjectDistinct(b *testing.B) {
	ctx := context.Background()
	in := benchRelation(2048, 128, "x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(Distinct(ctx, Project(ctx, FromSlice(ctx, in), []string{"k"}, 0), 0))
	}
}

func BenchmarkUnion(b *testing.B) {
	ctx := context.Background()
	a := benchRelation(1024, 64, "a")
	c := benchRelation(1024, 64, "c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(Union(ctx, 0, FromSlice(ctx, a), FromSlice(ctx, c)))
	}
}

func BenchmarkOrderBy(b *testing.B) {
	ctx := context.Background()
	in := make([]sparql.Binding, 2048)
	for i := range in {
		in[i] = sparql.Binding{"v": rdf.IntLiteral(int64((i * 7919) % 2048))}
	}
	keys := []sparql.OrderKey{{Var: "v"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(OrderBy(ctx, FromSlice(ctx, in), keys, 0))
	}
}

func BenchmarkLimitOffset(b *testing.B) {
	ctx := context.Background()
	in := benchRelation(2048, 64, "x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(Limit(ctx, Offset(ctx, FromSlice(ctx, in), 512, 0), 1024, 0))
	}
}

// BenchmarkExchangeBatchSize measures the raw exchange cost of pushing a
// fixed workload through a two-operator pipeline at different batch
// granularities: batch=1 is the pre-vectorization binding-at-a-time
// baseline paying one channel send per binding.
func BenchmarkExchangeBatchSize(b *testing.B) {
	ctx := context.Background()
	in := benchRelation(4096, 256, "x")
	for _, batch := range []int{1, 16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := FromSliceBatch(ctx, in, batch)
				if n := drain(Project(ctx, s, []string{"k", "x"}, batch)); n != len(in) {
					b.Fatalf("pipeline produced %d, want %d", n, len(in))
				}
			}
		})
	}
}

// BenchmarkBatchWriter measures the leaf-producer path: per-binding Send
// through the size/interval flush rules.
func BenchmarkBatchWriter(b *testing.B) {
	ctx := context.Background()
	in := benchRelation(4096, 256, "x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := NewStream(4)
		go func() {
			defer out.Close()
			w := NewBatchWriter(ctx, out, DefaultBatchSize)
			defer w.Close()
			for _, bd := range in {
				if !w.Send(bd) {
					return
				}
			}
		}()
		if n := drain(out); n != len(in) {
			b.Fatalf("writer delivered %d, want %d", n, len(in))
		}
	}
}

// benchColBatch builds one columnar batch of n rows over vars with dense,
// nonzero dictionary IDs — the raw material of the uint64 hot paths.
func benchColBatch(vars []string, n int) *ColBatch {
	schema := NewSchema(vars)
	cb := NewColBuilderCap(schema, n)
	ids := make([]dict.ID, len(vars))
	for r := 0; r < n; r++ {
		for c := range ids {
			ids[c] = dict.ID(uint64(r*len(vars)+c) + 1)
		}
		cb.AppendIDs(ids)
	}
	return cb.Take()
}

// BenchmarkColBatchHash measures the row-hash kernel every columnar join
// and DISTINCT runs per row: mixing the key columns' uint64 IDs. The
// whole point of dictionary encoding is that this replaces building a
// concatenated string key per row, so allocs/op must stay zero.
func BenchmarkColBatchHash(b *testing.B) {
	batch := benchColBatch([]string{"a", "k", "v"}, 1024)
	cols := []int{1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for r := 0; r < batch.Len; r++ {
			sink ^= hashRowIDs(batch, r, cols)
		}
	}
	_ = sink
}

// BenchmarkColBatchProject measures projecting batches onto a narrower
// schema (the columnar Project/Distinct input path): only the mapped
// columns are copied, row by row, through the builder.
func BenchmarkColBatchProject(b *testing.B) {
	batch := benchColBatch([]string{"a", "b", "c", "d"}, 1024)
	out := NewSchema([]string{"b", "d"})
	mapping := []int{1, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb := NewColBuilderCap(out, batch.Len)
		for r := 0; r < batch.Len; r++ {
			cb.AppendRow(batch, r, mapping)
		}
		if got := cb.Take(); got.Len != batch.Len {
			b.Fatalf("projected %d rows, want %d", got.Len, batch.Len)
		}
	}
}

// BenchmarkColBatchMerge measures the join output kernel: merging a left
// and a right row into one output row under the row model's Merge
// semantics (left wins when both bound), over raw ID columns.
func BenchmarkColBatchMerge(b *testing.B) {
	left := benchColBatch([]string{"k", "l"}, 1024)
	right := benchColBatch([]string{"k", "r"}, 1024)
	out := NewSchema([]string{"k", "l", "r"})
	lmap := []int{0, 1, -1}
	rmap := []int{0, -1, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb := NewColBuilderCap(out, left.Len)
		for r := 0; r < left.Len; r++ {
			cb.AppendMerged(left, r, lmap, right, r, rmap)
		}
		if got := cb.Take(); got.Len != left.Len {
			b.Fatalf("merged %d rows, want %d", got.Len, left.Len)
		}
	}
}

// TestProbeInnerLoopZeroAlloc is the layout regression guard: the
// symmetric hash join's probe inner loop — hash the key columns, look up
// the bucket, compare candidate keys — must run entirely on uint64 IDs
// with zero allocations per probed row. If this fails, something on the
// probe path fell back to materializing terms or string keys.
func TestProbeInnerLoopZeroAlloc(t *testing.T) {
	batch := benchColBatch([]string{"k", "v"}, 512)
	keyCols := []int{0}
	tbl := newColTable(2)
	for r := 0; r < batch.Len; r++ {
		tbl.insert(batch, r, hashRowIDs(batch, r, keyCols))
	}
	var matches int
	allocs := testing.AllocsPerRun(100, func() {
		for r := 0; r < batch.Len; r++ {
			h := hashRowIDs(batch, r, keyCols)
			for _, cand := range tbl.buckets[h] {
				if keysEqualBT(batch, r, keyCols, tbl, cand, keyCols) {
					matches++
				}
			}
		}
	})
	if matches == 0 {
		t.Fatal("probe loop found no matches; the guard is not exercising the path")
	}
	if allocs != 0 {
		t.Fatalf("probe inner loop allocates %.1f times per run, want 0", allocs)
	}
}
