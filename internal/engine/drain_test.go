package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ontario/internal/rdf"
	"ontario/internal/sparql"
)

// rawProducer feeds n bindings into a stream with plain channel sends — a
// producer that does NOT watch the context, the worst case for operators
// that stop consuming their inputs. It closes done when it finished.
func rawProducer(s *Stream, n int, v string) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer s.Close()
		for i := 0; i < n; i++ {
			s.ch <- []sparql.Binding{{v: rdf.NewLiteral(fmt.Sprint(i))}}
		}
	}()
	return done
}

func awaitDone(t *testing.T, label string, done chan struct{}) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: producer goroutine leaked (input not drained after cancellation)", label)
	}
}

// TestBindJoinDrainsInputsOnCancel: a bind join whose output is abandoned
// mid-stream must keep draining its left input so the producer goroutine
// can finish — the goroutine-leak regression under client disconnects.
func TestBindJoinDrainsInputsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	left := NewStream(4)
	leftDone := rawProducer(left, 500, "x")
	service := func(ctx context.Context, seed sparql.Binding) *Stream {
		return FromSlice(ctx, []sparql.Binding{seed})
	}
	out := BindJoin(ctx, left, service, []string{"x"}, 0)
	<-out.Batches() // one answer arrived, then the client goes away
	cancel()
	awaitDone(t, "bind-join", leftDone)
	for range out.Batches() {
	}
}

// TestSymmetricHashJoinDrainsInputsOnCancel: same property for the hash
// join, on both inputs.
func TestSymmetricHashJoinDrainsInputsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	left, right := NewStream(4), NewStream(4)
	leftDone := rawProducer(left, 500, "x")
	rightDone := rawProducer(right, 500, "x")
	out := SymmetricHashJoin(ctx, left, right, []string{"x"}, 4, 0)
	<-out.Batches()
	cancel()
	awaitDone(t, "hash-join left", leftDone)
	awaitDone(t, "hash-join right", rightDone)
	for range out.Batches() {
	}
}

// TestBlockBindJoinDrainsInputsOnCancel: the block variant must drain both
// the left input and the in-flight block responses.
func TestBlockBindJoinDrainsInputsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	left := NewStream(4)
	leftDone := rawProducer(left, 500, "x")
	service := func(ctx context.Context, seeds []sparql.Binding) *Stream {
		return FromSlice(ctx, seeds)
	}
	out := BlockBindJoin(ctx, left, service, []string{"x"}, 8, 2, 0)
	<-out.Batches()
	cancel()
	awaitDone(t, "block-bind-join", leftDone)
	for range out.Batches() {
	}
}
