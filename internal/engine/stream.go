// Package engine provides the physical operators of the federated query
// engine. Following ANAPSID (which Ontario inherits its operators from),
// joins are non-blocking: the symmetric hash join probes and emits answers
// as soon as they arrive from either input, so results are produced
// incrementally even under network delays.
//
// Execution is batch-at-a-time (vectorized): operators exchange batches of
// solution bindings instead of single bindings, amortizing the per-tuple
// channel send and context select over DefaultBatchSize solutions. The
// streaming semantics are preserved by the flush rules of BatchWriter:
// leaf producers flush a partial batch after DefaultFlushInterval (so the
// first answer is never held back behind an unfilled batch) and on close;
// interior operators forward their output at every input-batch boundary.
package engine

import (
	"context"

	"ontario/internal/sparql"
)

// DefaultBatchSize is the batch granularity of the exchange when no
// explicit size is configured: leaf producers and rebatching operators cut
// batches of at most this many bindings.
const DefaultBatchSize = 256

// Stream is an asynchronous exchange of binding batches. The buffer is
// counted in batches, not bindings. A batch, once sent, is owned by the
// receiver: producers must not retain or modify a sent slice.
type Stream struct {
	ch chan []sparql.Binding
}

// NewStream returns a stream with the given buffer size (in batches).
func NewStream(buf int) *Stream {
	return &Stream{ch: make(chan []sparql.Binding, buf)}
}

// SendBatch delivers a whole batch; it returns false when the context is
// cancelled. Sending an empty batch is a no-op and succeeds.
func (s *Stream) SendBatch(ctx context.Context, batch []sparql.Binding) bool {
	if len(batch) == 0 {
		return true
	}
	select {
	case s.ch <- batch:
		return true
	case <-ctx.Done():
		return false
	}
}

// Send delivers a single binding as a one-element batch; it returns false
// when the context is cancelled. Producers on a hot path should use a
// BatchWriter instead — Send exists for tests and one-off deliveries.
func (s *Stream) Send(ctx context.Context, b sparql.Binding) bool {
	return s.SendBatch(ctx, []sparql.Binding{b})
}

// TrySendBatch delivers a batch only if the stream's buffer has room; it
// never blocks. Producers that must not wait on their consumer (e.g. while
// holding a limited resource) use it and fall back to local buffering.
// Sending an empty batch is a no-op and succeeds.
func (s *Stream) TrySendBatch(batch []sparql.Binding) bool {
	if len(batch) == 0 {
		return true
	}
	select {
	case s.ch <- batch:
		return true
	default:
		return false
	}
}

// SendChunked delivers a materialized slice of bindings as batches of at
// most batch (<= 0 means DefaultBatchSize); it returns false when the
// context is cancelled mid-way. Ownership of sols passes to the
// receivers: the caller must not retain or modify the slice afterwards.
func (s *Stream) SendChunked(ctx context.Context, sols []sparql.Binding, batch int) bool {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	for len(sols) > 0 {
		n := batch
		if n > len(sols) {
			n = len(sols)
		}
		if !s.SendBatch(ctx, sols[:n:n]) {
			return false
		}
		sols = sols[n:]
	}
	return true
}

// Close marks the stream complete.
func (s *Stream) Close() { close(s.ch) }

// Batches exposes the receive side of the exchange.
func (s *Stream) Batches() <-chan []sparql.Binding { return s.ch }

// Collect drains the stream into a flat slice of bindings.
func (s *Stream) Collect() []sparql.Binding {
	var out []sparql.Binding
	for batch := range s.ch {
		out = append(out, batch...)
	}
	return out
}

// FromSlice returns a closed-ended stream delivering the given bindings in
// batches of DefaultBatchSize.
func FromSlice(ctx context.Context, bs []sparql.Binding) *Stream {
	return FromSliceBatch(ctx, bs, DefaultBatchSize)
}

// FromSliceBatch is FromSlice with an explicit batch size (<= 0 means
// DefaultBatchSize). Unlike SendChunked — whose caller hands over the
// slice — FromSliceBatch copies each chunk: the caller retains bs, and a
// sent batch becomes the receiver's to mutate (Filter/Distinct compact
// received batches in place).
func FromSliceBatch(ctx context.Context, bs []sparql.Binding, batch int) *Stream {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	out := NewStream((len(bs) + batch - 1) / batch)
	go func() {
		defer out.Close()
		for len(bs) > 0 {
			n := batch
			if n > len(bs) {
				n = len(bs)
			}
			if !out.SendBatch(ctx, append([]sparql.Binding(nil), bs[:n]...)) {
				return
			}
			bs = bs[n:]
		}
	}()
	return out
}

// bufBatches sizes an operator's output buffer in batches so the buffered
// binding count stays roughly constant across batch sizes: small batches
// get more buffered batches (batch=1 keeps the pre-vectorization 64
// in-flight bindings), large batches the minimum of 4.
func bufBatches(batch int) int {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if n := 64 / batch; n > 4 {
		return n
	}
	return 4
}
