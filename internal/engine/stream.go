// Package engine provides the streaming physical operators of the
// federated query engine. Following ANAPSID (which Ontario inherits its
// operators from), joins are non-blocking: the symmetric hash join probes
// and emits answers as soon as they arrive from either input, so results
// are produced incrementally even under network delays.
package engine

import (
	"context"

	"ontario/internal/sparql"
)

// Stream is an asynchronous stream of solution bindings.
type Stream struct {
	ch chan sparql.Binding
}

// NewStream returns a stream with the given buffer size.
func NewStream(buf int) *Stream {
	return &Stream{ch: make(chan sparql.Binding, buf)}
}

// Send delivers a binding; it returns false when the context is cancelled.
func (s *Stream) Send(ctx context.Context, b sparql.Binding) bool {
	select {
	case s.ch <- b:
		return true
	case <-ctx.Done():
		return false
	}
}

// TrySend delivers a binding only if the stream's buffer has room; it
// never blocks. Producers that must not wait on their consumer (e.g. while
// holding a limited resource) use it and fall back to local buffering.
func (s *Stream) TrySend(b sparql.Binding) bool {
	select {
	case s.ch <- b:
		return true
	default:
		return false
	}
}

// Close marks the stream complete.
func (s *Stream) Close() { close(s.ch) }

// Chan exposes the receive side.
func (s *Stream) Chan() <-chan sparql.Binding { return s.ch }

// Collect drains the stream into a slice.
func (s *Stream) Collect() []sparql.Binding {
	var out []sparql.Binding
	for b := range s.ch {
		out = append(out, b)
	}
	return out
}

// FromSlice returns a closed-ended stream delivering the given bindings.
func FromSlice(ctx context.Context, bs []sparql.Binding) *Stream {
	out := NewStream(len(bs))
	go func() {
		defer out.Close()
		for _, b := range bs {
			if !out.Send(ctx, b) {
				return
			}
		}
	}()
	return out
}
