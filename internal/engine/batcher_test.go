package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ontario/internal/sparql"
)

func TestBatchWriterFlushOnSize(t *testing.T) {
	ctx := context.Background()
	out := NewStream(8)
	w := NewBatchWriterInterval(ctx, out, 4, 0) // no timed flushing
	for i := 0; i < 8; i++ {
		if !w.Send(b("x", fmt.Sprint(i))) {
			t.Fatal("Send failed")
		}
	}
	w.Close()
	out.Close()
	var sizes []int
	for batch := range out.Batches() {
		sizes = append(sizes, len(batch))
	}
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 4 {
		t.Fatalf("batch sizes = %v, want [4 4]", sizes)
	}
}

func TestBatchWriterFlushOnClose(t *testing.T) {
	ctx := context.Background()
	out := NewStream(8)
	w := NewBatchWriterInterval(ctx, out, 100, 0)
	for i := 0; i < 3; i++ {
		w.Send(b("x", fmt.Sprint(i)))
	}
	w.Close()
	out.Close()
	var sizes []int
	for batch := range out.Batches() {
		sizes = append(sizes, len(batch))
	}
	if len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("batch sizes = %v, want [3]", sizes)
	}
}

// TestBatchWriterFlushOnInterval is the time-to-first-answer rule: a
// partial batch must reach the consumer after the flush interval even
// though the producer never fills it or closes.
func TestBatchWriterFlushOnInterval(t *testing.T) {
	ctx := context.Background()
	out := NewStream(8)
	w := NewBatchWriterInterval(ctx, out, 1000, time.Millisecond)
	start := time.Now()
	w.Send(b("x", "first"))
	select {
	case batch := <-out.Batches():
		if len(batch) != 1 || batch[0]["x"].Value != "first" {
			t.Fatalf("unexpected batch %v", batch)
		}
		if waited := time.Since(start); waited > time.Second {
			t.Fatalf("timed flush took %v", waited)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("partial batch never flushed on the interval")
	}
	w.Close()
}

// TestBatchWriterStaleTimerHoldsFreshBatch is the regression test for the
// stale-timer bug: a flush timer armed for a batch that has since gone out
// via a size-triggered flush must not flush the next partial batch almost
// immediately — the fresh batch gets its own full interval.
func TestBatchWriterStaleTimerHoldsFreshBatch(t *testing.T) {
	ctx := context.Background()
	out := NewStream(8)
	w := NewBatchWriterInterval(ctx, out, 2, time.Hour)
	// Fill and flush a batch on size; the timer armed by the first Send is
	// now stale.
	w.Send(b("x", "0"))
	w.Send(b("x", "1"))
	if batch := <-out.Batches(); len(batch) != 2 {
		t.Fatalf("size flush delivered %d bindings, want 2", len(batch))
	}
	// Start a fresh partial batch, then simulate the stale timer firing.
	w.Send(b("x", "2"))
	w.timedFlush()
	select {
	case batch := <-out.Batches():
		t.Fatalf("stale timed flush delivered a fresh partial batch %v", batch)
	default:
	}
	w.Close()
	out.Close()
}

// TestBatchWriterTimedFlushRearms: after a stale fire re-arms the timer,
// the partial batch still flushes once its own interval elapses.
func TestBatchWriterTimedFlushRearms(t *testing.T) {
	ctx := context.Background()
	out := NewStream(8)
	w := NewBatchWriterInterval(ctx, out, 2, 20*time.Millisecond)
	w.Send(b("x", "0"))
	w.Send(b("x", "1"))
	<-out.Batches()
	w.Send(b("x", "2"))
	w.timedFlush() // stale fire right after buffering: must hold and re-arm
	select {
	case batch := <-out.Batches():
		t.Fatalf("stale timed flush delivered %v", batch)
	case <-time.After(5 * time.Millisecond):
	}
	select {
	case batch := <-out.Batches():
		if len(batch) != 1 || batch[0]["x"].Value != "2" {
			t.Fatalf("unexpected batch %v", batch)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed timer never flushed the partial batch")
	}
	w.Close()
}

// TestBatchWriterTimerStopsAfterFailure: once a flush fails (cancelled
// context), a pending timed flush must not fire again.
func TestBatchWriterTimerStopsAfterFailure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := NewStream(0) // unbuffered, nobody reading
	w := NewBatchWriterInterval(ctx, out, 10, time.Hour)
	w.Send(b("x", "1"))
	cancel()
	w.Flush() // fails: context cancelled, nobody reading
	if !w.failed {
		t.Fatal("flush with a cancelled context did not fail the writer")
	}
	w.timedFlush() // must be a no-op, not a second SendBatch attempt
	if w.Send(b("x", "2")) {
		t.Fatal("Send succeeded after failure")
	}
}

func TestBatchWriterFailsAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := NewStream(0) // unbuffered, nobody reading
	w := NewBatchWriterInterval(ctx, out, 1, 0)
	cancel()
	if w.Send(b("x", "1")) {
		t.Fatal("Send succeeded with a cancelled context and a full stream")
	}
	if w.Send(b("x", "2")) {
		t.Fatal("Send succeeded after a failed flush")
	}
}

func TestSendBatchEmptyIsNoOp(t *testing.T) {
	ctx := context.Background()
	s := NewStream(0) // unbuffered: a real send would block
	if !s.SendBatch(ctx, nil) {
		t.Fatal("empty SendBatch failed")
	}
	if !s.TrySendBatch(nil) {
		t.Fatal("empty TrySendBatch failed")
	}
}

func TestFromSliceBatchChunks(t *testing.T) {
	ctx := context.Background()
	in := make([]sparql.Binding, 10)
	for i := range in {
		in[i] = b("x", fmt.Sprint(i))
	}
	s := FromSliceBatch(ctx, in, 4)
	var sizes []int
	total := 0
	for batch := range s.Batches() {
		sizes = append(sizes, len(batch))
		total += len(batch)
	}
	if total != 10 || len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Fatalf("chunking = %v (total %d), want [4 4 2]", sizes, total)
	}
}
