package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ontario/internal/sparql"
)

func TestBatchWriterFlushOnSize(t *testing.T) {
	ctx := context.Background()
	out := NewStream(8)
	w := NewBatchWriterInterval(ctx, out, 4, 0) // no timed flushing
	for i := 0; i < 8; i++ {
		if !w.Send(b("x", fmt.Sprint(i))) {
			t.Fatal("Send failed")
		}
	}
	w.Close()
	out.Close()
	var sizes []int
	for batch := range out.Batches() {
		sizes = append(sizes, len(batch))
	}
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 4 {
		t.Fatalf("batch sizes = %v, want [4 4]", sizes)
	}
}

func TestBatchWriterFlushOnClose(t *testing.T) {
	ctx := context.Background()
	out := NewStream(8)
	w := NewBatchWriterInterval(ctx, out, 100, 0)
	for i := 0; i < 3; i++ {
		w.Send(b("x", fmt.Sprint(i)))
	}
	w.Close()
	out.Close()
	var sizes []int
	for batch := range out.Batches() {
		sizes = append(sizes, len(batch))
	}
	if len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("batch sizes = %v, want [3]", sizes)
	}
}

// TestBatchWriterFlushOnInterval is the time-to-first-answer rule: a
// partial batch must reach the consumer after the flush interval even
// though the producer never fills it or closes.
func TestBatchWriterFlushOnInterval(t *testing.T) {
	ctx := context.Background()
	out := NewStream(8)
	w := NewBatchWriterInterval(ctx, out, 1000, time.Millisecond)
	start := time.Now()
	w.Send(b("x", "first"))
	select {
	case batch := <-out.Batches():
		if len(batch) != 1 || batch[0]["x"].Value != "first" {
			t.Fatalf("unexpected batch %v", batch)
		}
		if waited := time.Since(start); waited > time.Second {
			t.Fatalf("timed flush took %v", waited)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("partial batch never flushed on the interval")
	}
	w.Close()
}

func TestBatchWriterFailsAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := NewStream(0) // unbuffered, nobody reading
	w := NewBatchWriterInterval(ctx, out, 1, 0)
	cancel()
	if w.Send(b("x", "1")) {
		t.Fatal("Send succeeded with a cancelled context and a full stream")
	}
	if w.Send(b("x", "2")) {
		t.Fatal("Send succeeded after a failed flush")
	}
}

func TestSendBatchEmptyIsNoOp(t *testing.T) {
	ctx := context.Background()
	s := NewStream(0) // unbuffered: a real send would block
	if !s.SendBatch(ctx, nil) {
		t.Fatal("empty SendBatch failed")
	}
	if !s.TrySendBatch(nil) {
		t.Fatal("empty TrySendBatch failed")
	}
}

func TestFromSliceBatchChunks(t *testing.T) {
	ctx := context.Background()
	in := make([]sparql.Binding, 10)
	for i := range in {
		in[i] = b("x", fmt.Sprint(i))
	}
	s := FromSliceBatch(ctx, in, 4)
	var sizes []int
	total := 0
	for batch := range s.Batches() {
		sizes = append(sizes, len(batch))
		total += len(batch)
	}
	if total != 10 || len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Fatalf("chunking = %v (total %d), want [4 4 2]", sizes, total)
	}
}
