package engine

import (
	"ontario/internal/dict"
	"ontario/internal/sparql"
)

// Schema is the fixed variable layout of a columnar exchange: the plan
// derives one per operator from the node's output variables, and every
// batch flowing through that operator carries its columns in exactly this
// order. Operators resolve variable names to column positions once, at
// construction time — the per-row hot path indexes columns by position
// and never touches a variable name again.
type Schema struct {
	Vars []string
	pos  map[string]int
}

// NewSchema returns a schema over vars (in order).
func NewSchema(vars []string) *Schema {
	s := &Schema{Vars: vars, pos: make(map[string]int, len(vars))}
	for i, v := range vars {
		s.pos[v] = i
	}
	return s
}

// Pos returns the column position of v, or -1 when the schema does not
// carry it.
func (s *Schema) Pos(v string) int {
	if i, ok := s.pos[v]; ok {
		return i
	}
	return -1
}

// Positions resolves a variable list to column positions (-1 for
// variables the schema does not carry).
func (s *Schema) Positions(vars []string) []int {
	out := make([]int, len(vars))
	for i, v := range vars {
		out[i] = s.Pos(v)
	}
	return out
}

// ColBatch is one columnar exchange batch: Len solution rows laid out as
// one dictionary-ID column per schema variable, plus a presence bitmap
// per column marking the bound rows (OPTIONAL leaves columns partially
// bound). The two encodings are kept in lockstep — Cols[c][r] ==
// dict.Unbound exactly when bit r of Present[c] is clear — so hot loops
// test IDs directly while bitmap consumers (presence counts, padding)
// work a word at a time.
//
// Len is explicit rather than derived from a column length because a
// schema may be empty (a cross-product input binding nothing) while the
// batch still carries rows.
type ColBatch struct {
	Schema  *Schema
	Len     int
	Cols    [][]dict.ID
	Present [][]uint64
}

// Bound reports whether row r of column c is bound, reading the presence
// bitmap.
func (b *ColBatch) Bound(c, r int) bool {
	return b.Present[c][r>>6]&(1<<(uint(r)&63)) != 0
}

// ID returns the dictionary ID at column c, row r (dict.Unbound for an
// absent OPTIONAL value).
func (b *ColBatch) ID(c, r int) dict.ID { return b.Cols[c][r] }

// Binding materializes row r as a solution mapping, resolving IDs
// through d; unbound columns are omitted, like a row-model binding.
func (b *ColBatch) Binding(r int, d *dict.Dict) sparql.Binding {
	out := make(sparql.Binding, len(b.Schema.Vars))
	for c, col := range b.Cols {
		if id := col[r]; id != dict.Unbound {
			out[b.Schema.Vars[c]] = d.MustLookup(id)
		}
	}
	return out
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed mixer for
// combining column IDs into a row hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashRowIDs combines the IDs of one row's key columns into a hash.
// Unbound (0) participates like any value: the row model's string join
// keys distinguish "?v unbound" from every bound value, and so does this.
func hashRowIDs(b *ColBatch, row int, cols []int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, c := range cols {
		h = mix64(h ^ uint64(b.Cols[c][row]))
	}
	return h
}

// HashRowKey combines the IDs of row's key columns (given as column
// positions; -1 contributes Unbound) into the exchange's row hash. It is
// the exported face of the morsel exchange's shard hash, so a
// distributed shuffle partitions rows exactly like the in-process
// symmetric hash join shards them.
func HashRowKey(b *ColBatch, row int, cols []int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, c := range cols {
		id := dict.Unbound
		if c >= 0 {
			id = b.Cols[c][row]
		}
		h = mix64(h ^ uint64(id))
	}
	return h
}

// ColBuilder accumulates rows into a ColBatch. Builders are how every
// columnar producer — operators, wrappers, the row-to-columnar adapter —
// assembles output; Take hands the finished batch over and resets the
// builder for the next one.
type ColBuilder struct {
	schema *Schema
	cols   [][]dict.ID
	pres   [][]uint64
	rows   int
	// hint is the expected batch size; alloc seeds each column with a
	// small initial block when it is set (see colBuilderInitCap).
	hint int
}

// NewColBuilder returns an empty builder over the schema.
func NewColBuilder(schema *Schema) *ColBuilder {
	return NewColBuilderCap(schema, 0)
}

// colBuilderInitCap caps the up-front per-column allocation. Most streams
// carry far fewer rows than the exchange batch size (bind-join probes
// answer a handful of rows each), so committing the full batch capacity
// per column per builder costs more allocation and GC work than it saves;
// the builder starts at one small block and append growth reaches the
// full batch capacity only for the streams that actually fill it.
const colBuilderInitCap = 16

// NewColBuilderCap returns an empty builder sized for batches of capacity
// rows (0 means grow from empty). The capacity is a hint: columns start
// at a small initial block (see colBuilderInitCap) and grow on demand.
func NewColBuilderCap(schema *Schema, capacity int) *ColBuilder {
	b := &ColBuilder{schema: schema, hint: capacity}
	b.alloc()
	return b
}

// alloc starts fresh column slices at the clamped capacity hint.
func (b *ColBuilder) alloc() {
	b.cols = make([][]dict.ID, len(b.schema.Vars))
	b.pres = make([][]uint64, len(b.schema.Vars))
	if h := b.hint; h > 0 {
		if h > colBuilderInitCap {
			h = colBuilderInitCap
		}
		for c := range b.cols {
			b.cols[c] = make([]dict.ID, 0, h)
			b.pres[c] = make([]uint64, 0, (h+63)/64)
		}
	}
}

// Rows returns the number of buffered rows.
func (b *ColBuilder) Rows() int { return b.rows }

// setBit marks row r of column c bound, growing the bitmap as needed.
func (b *ColBuilder) setBit(c, r int) {
	w := r >> 6
	for len(b.pres[c]) <= w {
		b.pres[c] = append(b.pres[c], 0)
	}
	b.pres[c][w] |= 1 << (uint(r) & 63)
}

// growRow appends one all-unbound row to every column, returning its
// index; callers then overwrite the bound positions.
func (b *ColBuilder) growRow() int {
	r := b.rows
	b.rows++
	w := r >> 6
	for c := range b.cols {
		b.cols[c] = append(b.cols[c], dict.Unbound)
		for len(b.pres[c]) <= w {
			b.pres[c] = append(b.pres[c], 0)
		}
	}
	return r
}

// AppendIDs appends one row given as one ID per schema variable (in
// schema order; dict.Unbound marks absent values). The slice is copied.
func (b *ColBuilder) AppendIDs(ids []dict.ID) {
	r := b.growRow()
	for c, id := range ids {
		if id != dict.Unbound {
			b.cols[c][r] = id
			b.setBit(c, r)
		}
	}
}

// AppendRow appends row src of batch from, mapped into this builder's
// schema: mapping[c] is the source column feeding output column c, or -1
// for an output column the source does not carry (left unbound).
func (b *ColBuilder) AppendRow(from *ColBatch, src int, mapping []int) {
	r := b.growRow()
	for c, fc := range mapping {
		if fc < 0 {
			continue
		}
		if id := from.Cols[fc][src]; id != dict.Unbound {
			b.cols[c][r] = id
			b.setBit(c, r)
		}
	}
}

// AppendMerged appends the merge of row lr of l and row rr of r: for each
// output column, the left value wins when bound, else the right's (the
// inputs were checked compatible, so both-bound means equal — the row
// model's Merge semantics). lmap/rmap give each output column's position
// in l/r, -1 when that side does not carry the variable.
func (b *ColBuilder) AppendMerged(l *ColBatch, lr int, lmap []int, r *ColBatch, rr int, rmap []int) {
	row := b.growRow()
	for c := range b.cols {
		id := dict.Unbound
		if lc := lmap[c]; lc >= 0 {
			id = l.Cols[lc][lr]
		}
		if id == dict.Unbound {
			if rc := rmap[c]; rc >= 0 {
				id = r.Cols[rc][rr]
			}
		}
		if id != dict.Unbound {
			b.cols[c][row] = id
			b.setBit(c, row)
		}
	}
}

// AppendBinding appends a row-model binding, interning its terms into d.
// Variables outside the schema are dropped (the row operators tolerate
// extra variables; a columnar batch cannot carry them).
func (b *ColBuilder) AppendBinding(bind sparql.Binding, d *dict.Dict) {
	r := b.growRow()
	for c, v := range b.schema.Vars {
		if t, ok := bind[v]; ok {
			b.cols[c][r] = d.Intern(t)
			b.setBit(c, r)
		}
	}
}

// Take returns the accumulated batch and resets the builder (the returned
// batch owns its columns; the builder starts fresh slices).
func (b *ColBuilder) Take() *ColBatch {
	out := &ColBatch{Schema: b.schema, Len: b.rows, Cols: b.cols, Present: b.pres}
	b.alloc()
	b.rows = 0
	return out
}

// EncodeBatch converts a row-model batch into a columnar batch over
// schema, interning every term into d.
func EncodeBatch(rows []sparql.Binding, schema *Schema, d *dict.Dict) *ColBatch {
	b := NewColBuilder(schema)
	for _, bind := range rows {
		b.AppendBinding(bind, d)
	}
	return b.Take()
}

// DecodeBatch materializes a columnar batch back into row-model bindings
// through d (late materialization: only the consumers that truly need
// terms — the public cursor, filter expressions, ORDER BY keys — pay it).
func DecodeBatch(b *ColBatch, d *dict.Dict) []sparql.Binding {
	out := make([]sparql.Binding, b.Len)
	for r := 0; r < b.Len; r++ {
		out[r] = b.Binding(r, d)
	}
	return out
}
