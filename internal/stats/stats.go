// Package stats computes and caches per-source statistics of the data
// lake's catalog for the cost-based optimizer: class extents, per-predicate
// triple counts and distinct subject/object counts for RDF graphs, row
// counts and per-column distinct counts for relational tables, and index
// availability. Statistics are derived once per source on first use and
// cached; the catalog's in-memory sources are immutable after load, so the
// cache never needs invalidation during a run (Invalidate exists for lakes
// rebuilt in place).
package stats

import (
	"sync"

	"ontario/internal/catalog"
	"ontario/internal/rdf"
)

// Provider supplies per-source statistics to the cost model. Source returns
// nil for unknown sources; callers fall back to pessimistic defaults.
type Provider interface {
	Source(id string) *SourceStats
}

// PredicateStats describes one predicate of a class at a source.
type PredicateStats struct {
	Predicate string
	// Count is the number of (subject, predicate, object) facts: triples at
	// RDF sources, value rows (base-table or side-table) at relational ones.
	Count int
	// DistinctSubjects and DistinctObjects count distinct terms on each end.
	DistinctSubjects int
	DistinctObjects  int
	// Indexed reports whether the storage column backing the predicate is
	// indexed at the source (RDF graphs index every position).
	Indexed bool
}

// Fanout is the average number of facts per subject carrying the predicate.
func (ps *PredicateStats) Fanout() float64 {
	if ps == nil || ps.DistinctSubjects <= 0 {
		return 1
	}
	return float64(ps.Count) / float64(ps.DistinctSubjects)
}

// ObjectSelectivity estimates the fraction of the predicate's facts matching
// an equality constraint on the object (1/distinct objects).
func (ps *PredicateStats) ObjectSelectivity() float64 {
	if ps == nil || ps.DistinctObjects <= 0 {
		return 0.1
	}
	return 1.0 / float64(ps.DistinctObjects)
}

// ClassStats describes the extent of one class at a source.
type ClassStats struct {
	Class string
	// Extent is the number of class instances: typed subjects at RDF
	// sources, distinct subject keys at relational ones.
	Extent int
	// SubjectIndexed reports whether instance lookup by subject is an index
	// access (primary key or indexed subject column).
	SubjectIndexed bool
	Predicates     map[string]*PredicateStats
}

// Predicate returns the class's statistics for a predicate IRI, or nil.
func (cs *ClassStats) Predicate(p string) *PredicateStats {
	if cs == nil {
		return nil
	}
	return cs.Predicates[p]
}

// SourceStats describes one source of the lake.
type SourceStats struct {
	SourceID string
	Model    catalog.DataModel
	// Triples is the RDF graph size; Rows the total relational row count.
	Triples int
	Rows    int
	Classes map[string]*ClassStats
}

// Class returns the statistics of a class at the source, or nil.
func (ss *SourceStats) Class(class string) *ClassStats {
	if ss == nil {
		return nil
	}
	return ss.Classes[class]
}

// CatalogProvider computes statistics from a catalog.Catalog lazily and
// caches them per source. It is safe for concurrent use.
type CatalogProvider struct {
	cat   *catalog.Catalog
	mu    sync.Mutex
	cache map[string]*SourceStats
}

// NewProvider returns a caching provider over the catalog.
func NewProvider(cat *catalog.Catalog) *CatalogProvider {
	return &CatalogProvider{cat: cat, cache: make(map[string]*SourceStats)}
}

// Source implements Provider.
func (p *CatalogProvider) Source(id string) *SourceStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ss, ok := p.cache[id]; ok {
		return ss
	}
	src := p.cat.Source(id)
	if src == nil {
		return nil
	}
	var ss *SourceStats
	switch src.Model {
	case catalog.ModelRDF:
		ss = rdfStats(src)
	case catalog.ModelRelational:
		ss = relationalStats(src)
	default:
		return nil
	}
	p.cache[id] = ss
	return ss
}

// Invalidate drops the cached statistics of one source (or all when id is
// empty), e.g. after rebuilding a lake in place.
func (p *CatalogProvider) Invalidate(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == "" {
		p.cache = make(map[string]*SourceStats)
		return
	}
	delete(p.cache, id)
}

// rdfStats derives class and predicate statistics in two passes over the
// graph: one to type the subjects, one to attribute each triple to the
// classes of its subject.
func rdfStats(src *catalog.Source) *SourceStats {
	g := src.Graph
	ss := &SourceStats{
		SourceID: src.ID,
		Model:    catalog.ModelRDF,
		Triples:  g.Len(),
		Classes:  make(map[string]*ClassStats),
	}
	classOf := make(map[rdf.Term][]string)
	triples := g.Triples()
	for _, t := range triples {
		if t.P.Value != rdf.RDFType || !t.O.IsIRI() {
			continue
		}
		class := t.O.Value
		classOf[t.S] = append(classOf[t.S], class)
		cs := ss.class(class)
		cs.Extent++
	}
	type distinctSets struct {
		subjects map[rdf.Term]bool
		objects  map[rdf.Term]bool
	}
	distinct := make(map[string]map[string]*distinctSets) // class -> predicate
	for _, t := range triples {
		if t.P.Value == rdf.RDFType {
			continue
		}
		classes := classOf[t.S]
		if len(classes) == 0 {
			// Untyped subject: attribute under the pseudo-class "" so
			// predicate-only stars still find source-wide numbers.
			classes = []string{""}
		}
		for _, class := range classes {
			cs := ss.class(class)
			ps := cs.Predicates[t.P.Value]
			if ps == nil {
				ps = &PredicateStats{Predicate: t.P.Value, Indexed: true}
				cs.Predicates[t.P.Value] = ps
			}
			ps.Count++
			byPred := distinct[class]
			if byPred == nil {
				byPred = make(map[string]*distinctSets)
				distinct[class] = byPred
			}
			sets := byPred[t.P.Value]
			if sets == nil {
				sets = &distinctSets{subjects: make(map[rdf.Term]bool), objects: make(map[rdf.Term]bool)}
				byPred[t.P.Value] = sets
			}
			sets.subjects[t.S] = true
			sets.objects[t.O] = true
		}
	}
	for class, byPred := range distinct {
		cs := ss.Classes[class]
		for pred, sets := range byPred {
			cs.Predicates[pred].DistinctSubjects = len(sets.subjects)
			cs.Predicates[pred].DistinctObjects = len(sets.objects)
		}
	}
	for _, cs := range ss.Classes {
		cs.SubjectIndexed = true
		if cs.Extent == 0 {
			// Pseudo-class of untyped subjects: extent = max distinct
			// subjects over its predicates.
			for _, ps := range cs.Predicates {
				if ps.DistinctSubjects > cs.Extent {
					cs.Extent = ps.DistinctSubjects
				}
			}
		}
	}
	return ss
}

// relationalStats derives class and predicate statistics from the mapped
// tables' maintained rdb.Stats.
func relationalStats(src *catalog.Source) *SourceStats {
	ss := &SourceStats{
		SourceID: src.ID,
		Model:    catalog.ModelRelational,
		Rows:     src.DB.TotalRows(),
		Classes:  make(map[string]*ClassStats),
	}
	for class, cm := range src.Mappings {
		t := src.DB.Table(cm.Table)
		if t == nil {
			continue
		}
		tstats := t.Stats()
		extent := tstats.RowCount
		if cm.Denormalized {
			if d := tstats.DistinctCount[cm.SubjectColumn]; d > 0 {
				extent = d
			}
		}
		cs := &ClassStats{
			Class:          class,
			Extent:         extent,
			SubjectIndexed: src.SubjectIndexed(cm),
			Predicates:     make(map[string]*PredicateStats),
		}
		for pred, pm := range cm.Properties {
			ps := &PredicateStats{Predicate: pred, Indexed: src.HasIndexOn(cm, pred, false)}
			if pm.IsJoin() {
				jt := src.DB.Table(pm.JoinTable)
				if jt != nil {
					js := jt.Stats()
					ps.Count = js.RowCount
					ps.DistinctSubjects = js.DistinctCount[pm.JoinFK]
					ps.DistinctObjects = js.DistinctCount[pm.ValueColumn]
				}
			} else {
				ps.Count = tstats.RowCount
				ps.DistinctSubjects = extent
				ps.DistinctObjects = tstats.DistinctCount[pm.Column]
			}
			cs.Predicates[pred] = ps
		}
		ss.Classes[class] = cs
	}
	return ss
}

func (ss *SourceStats) class(name string) *ClassStats {
	cs := ss.Classes[name]
	if cs == nil {
		cs = &ClassStats{Class: name, Predicates: make(map[string]*PredicateStats)}
		ss.Classes[name] = cs
	}
	return cs
}
