package stats

import (
	"testing"

	"ontario/internal/catalog"
	"ontario/internal/lslod"
	"ontario/internal/rdf"
)

func TestRelationalSourceStats(t *testing.T) {
	lake, err := lslod.BuildLake(lslod.SmallScale(), 7)
	if err != nil {
		t.Fatal(err)
	}
	prov := NewProvider(lake.Catalog)
	ss := prov.Source(lslod.DSDiseasome)
	if ss == nil {
		t.Fatal("no stats for diseasome")
	}
	if ss.Model != catalog.ModelRelational {
		t.Fatalf("diseasome model = %v", ss.Model)
	}
	cs := ss.Class(lslod.ClassDisease)
	if cs == nil {
		t.Fatal("no class stats for Disease")
	}
	src := lake.Catalog.Source(lslod.DSDiseasome)
	wantExtent := src.DB.Table(src.Mapping(lslod.ClassDisease).Table).RowCount()
	if cs.Extent != wantExtent {
		t.Errorf("Disease extent = %d, want %d", cs.Extent, wantExtent)
	}
	if !cs.SubjectIndexed {
		t.Error("Disease subject (primary key) not reported as indexed")
	}
	name := cs.Predicate(lslod.PredDiseaseName)
	if name == nil {
		t.Fatal("no predicate stats for disease name")
	}
	if name.Count != wantExtent || name.DistinctSubjects != wantExtent {
		t.Errorf("name count/subjects = %d/%d, want %d", name.Count, name.DistinctSubjects, wantExtent)
	}
	if name.DistinctObjects <= 0 || name.DistinctObjects > name.Count {
		t.Errorf("name distinct objects = %d out of range (count %d)", name.DistinctObjects, name.Count)
	}
	// associatedGene lives in a side table: fanout above one, FK-backed.
	gene := cs.Predicate(lslod.PredAssociatedGene)
	if gene == nil {
		t.Fatal("no predicate stats for associatedGene")
	}
	if gene.Count <= gene.DistinctSubjects {
		t.Errorf("associatedGene fanout %d/%d not > 1", gene.Count, gene.DistinctSubjects)
	}
	if gene.Fanout() <= 1 {
		t.Errorf("Fanout() = %v, want > 1", gene.Fanout())
	}
}

func TestRDFSourceStats(t *testing.T) {
	mixed, err := lslod.BuildMixedLake(lslod.SmallScale(), 7, []string{lslod.DSDiseasome})
	if err != nil {
		t.Fatal(err)
	}
	prov := NewProvider(mixed.Catalog)
	ss := prov.Source(lslod.DSDiseasome)
	if ss == nil || ss.Model != catalog.ModelRDF {
		t.Fatalf("diseasome not RDF in mixed lake: %+v", ss)
	}
	if ss.Triples == 0 {
		t.Error("no triples counted")
	}
	cs := ss.Class(lslod.ClassDisease)
	if cs == nil || cs.Extent == 0 {
		t.Fatalf("Disease class stats missing or empty: %+v", cs)
	}
	g := mixed.Catalog.Source(lslod.DSDiseasome).Graph
	typeT := rdf.NewIRI(rdf.RDFType)
	classT := rdf.NewIRI(lslod.ClassDisease)
	if want := g.Count(nil, &typeT, &classT); cs.Extent != want {
		t.Errorf("Disease extent = %d, want %d", cs.Extent, want)
	}
	name := cs.Predicate(lslod.PredDiseaseName)
	if name == nil {
		t.Fatal("no predicate stats for disease name")
	}
	if name.DistinctSubjects != cs.Extent {
		t.Errorf("name distinct subjects = %d, want extent %d", name.DistinctSubjects, cs.Extent)
	}
	if !name.Indexed {
		t.Error("RDF predicates must report as indexed")
	}
}

func TestProviderCachesAndInvalidates(t *testing.T) {
	lake, err := lslod.BuildLake(lslod.SmallScale(), 7)
	if err != nil {
		t.Fatal(err)
	}
	prov := NewProvider(lake.Catalog)
	a := prov.Source(lslod.DSDiseasome)
	if b := prov.Source(lslod.DSDiseasome); a != b {
		t.Error("second lookup did not hit the cache")
	}
	prov.Invalidate(lslod.DSDiseasome)
	if c := prov.Source(lslod.DSDiseasome); c == a {
		t.Error("Invalidate did not drop the cached entry")
	}
	if prov.Source("no-such-source") != nil {
		t.Error("unknown source must return nil")
	}
}
