// Package bridge lets the public packages hand internal values to each
// other without exposing internal types in any exported signature: the
// ontario/lake package registers an extractor for its Lake type at init
// time, and the root ontario package (plus in-module tooling) uses it to
// reach the underlying catalog.
package bridge

import "ontario/internal/catalog"

// LakeCatalog extracts the internal catalog from a public *lake.Lake. It
// is set by ontario/lake's init function; it returns nil for any other
// value.
var LakeCatalog func(lake any) *catalog.Catalog

// ResultsNextBatch pulls the next whole exchange batch of solutions from a
// public *ontario.Results cursor; it is set by the root ontario package's
// init function. The returned batch is a []ontario.Binding (the caller
// type-asserts), ok is false once the cursor is exhausted or closed. It
// exists so the internal server can encode one batch per write without the
// exported cursor API growing a batch method.
var ResultsNextBatch func(results any) (batch any, ok bool)

// ResultsNextJSON pulls the next exchange batch from a public
// *ontario.Results cursor pre-encoded as sparql-results+json binding
// objects; it is set by the root ontario package's init function. The
// payload carries a ',' separator before every object (the caller drops
// the leading byte for the first object of the document), n is the number
// of solutions encoded, and ok is false once the cursor is exhausted,
// closed, or not an *ontario.Results. The payload aliases a buffer reused
// by the next call — write it out before pulling again. It exists so the
// server can stream results without materializing public Binding maps:
// in the default columnar mode the cursor encodes each distinct term once
// per query, keyed by its dictionary ID.
var ResultsNextJSON func(results any) (payload []byte, n int, ok bool)

// RowExchangeOption holds an ontario.Option (as any, the caller
// type-asserts) that switches one query execution to the row-at-a-time
// reference exchange instead of the default dictionary-encoded columnar
// data plane; it is set by the root ontario package's init function. It
// exists for in-module equivalence tests and the bench harness's
// row-vs-columnar ablation — the public option surface stays columnar-
// only on purpose.
var RowExchangeOption any

// ClusterOption holds a factory (set by the root ontario package's init
// function) turning a core.Distributor — passed as any — into an
// ontario.Option (returned as any, the caller type-asserts) that runs
// one query execution distributed over the cluster's worker pool. It
// exists so cmd/ontario-server's coordinator role can wire
// internal/cluster into the engine without the public API surface
// carrying an internal interface type.
var ClusterOption func(dist any) any
