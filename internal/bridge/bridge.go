// Package bridge lets the public packages hand internal values to each
// other without exposing internal types in any exported signature: the
// ontario/lake package registers an extractor for its Lake type at init
// time, and the root ontario package (plus in-module tooling) uses it to
// reach the underlying catalog.
package bridge

import "ontario/internal/catalog"

// LakeCatalog extracts the internal catalog from a public *lake.Lake. It
// is set by ontario/lake's init function; it returns nil for any other
// value.
var LakeCatalog func(lake any) *catalog.Catalog

// ResultsNextBatch pulls the next whole exchange batch of solutions from a
// public *ontario.Results cursor; it is set by the root ontario package's
// init function. The returned batch is a []ontario.Binding (the caller
// type-asserts), ok is false once the cursor is exhausted or closed. It
// exists so the internal server can encode one batch per write without the
// exported cursor API growing a batch method.
var ResultsNextBatch func(results any) (batch any, ok bool)
